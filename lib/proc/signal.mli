(** UNIX-style signals (the subset splice clients need).

    The paper's asynchronous splice completes by raising [SIGIO] in the
    caller; the movie-player example paces video frames with [SIGALRM]
    from [setitimer]. Handlers run in process context: delivery marks the
    signal pending and wakes the process if it is interruptibly blocked
    ([pause], interruptible sleeps); {!take_pending} then runs handlers
    from within the process coroutine. *)

type number = int
(** Signal number. *)

val sigio : number
(** I/O possible / async I/O completion (SIGIO = 23 on Ultrix). *)

val sigalrm : number
(** Interval-timer expiry (SIGALRM = 14). *)

val sigint : number
(** Interrupt (SIGINT = 2). *)

val handle : Process.t -> number -> (unit -> unit) -> unit
(** [handle p n fn] installs [fn] as [p]'s handler for signal [n],
    replacing any previous handler. *)

val ignore_signal : Process.t -> number -> unit
(** Remove any handler; future deliveries are discarded by
    {!take_pending}. *)

val deliver : Sched.t -> Process.t -> number -> unit
(** [deliver sched p n] posts signal [n] to [p]: marks it pending and, if
    [p] is interruptibly blocked, wakes it. Delivery to a zombie is a
    no-op. *)

val pending : Process.t -> number list
(** Currently pending signal numbers, ascending. *)

val take_pending : Process.t -> unit
(** Run (and clear) the handlers for every pending signal of the calling
    process. Called by the syscall layer on return from blocking calls,
    mirroring kernel signal delivery on syscall exit. *)
