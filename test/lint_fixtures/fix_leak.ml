(* Known-bad fixture: a buffer acquired via bread is released on the
   success branch only, leaking on the other path.
   Expected: exactly one [buf-leak] finding. *)

module Buf = struct
  type t = { mutable data : int }
end

module Cache = struct
  let bread (_dev : int) (_blkno : int) : Buf.t = { Buf.data = 0 }

  let brelse (_b : Buf.t) = ()
end

let use_block ok =
  let b = Cache.bread 0 7 in
  if ok then begin
    ignore b.Buf.data;
    Cache.brelse b
  end
