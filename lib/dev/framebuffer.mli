(** Framebuffer capture source.

    Models the paper's framebuffer-to-socket splice source: a device that
    produces a fixed-size frame at a fixed rate (e.g. screen capture for
    video transmission). Readers wait for the next frame; frames are
    synthesised deterministically so receivers can verify integrity. *)

open Kpath_sim

type t
(** A framebuffer device. *)

val create :
  name:string ->
  frame_bytes:int ->
  frames_per_sec:float ->
  engine:Engine.t ->
  unit ->
  t
(** [create ()] builds a framebuffer emitting [frame_bytes]-byte frames
    [frames_per_sec] times a second, starting at the first frame
    interval after creation. *)

val frame_bytes : t -> int

val frames_captured : t -> int
(** Frames produced so far. *)

val next_frame : t -> (seq:int -> bytes -> unit) -> unit
(** [next_frame t k] calls [k ~seq frame] when the next frame is
    captured. Multiple waiters all receive the same frame. The callback
    runs in interrupt-ish context (directly from the engine event). *)

val frame_pattern : seq:int -> size:int -> bytes
(** The deterministic contents of frame [seq] — receivers rebuild it to
    verify end-to-end integrity. *)

val stop : t -> unit
(** Stop capturing; pending waiters are dropped. *)
