(* Verifier fixture corpus runner for the @lint alias: every *.kvm on
   the command line must assemble, and the verifier's answer must match
   the "; expect: <rule|ok>" header. Mirrors Test_vm.test_corpus so the
   corpus also gates lint-only CI runs. *)

module Vm = Kpath_vm.Vm
module Asm = Kpath_vm.Asm

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let expectation path text =
  let line =
    match String.index_opt text '\n' with
    | Some i -> String.sub text 0 i
    | None -> text
  in
  let prefix = "; expect:" in
  let n = String.length prefix in
  if String.length line <= n || String.sub line 0 n <> prefix then begin
    Printf.eprintf "%s: first line must declare %S\n" path prefix;
    exit 2
  end;
  String.trim (String.sub line n (String.length line - n))

let () =
  let failures = ref 0 in
  let checked = ref 0 in
  let fail path fmt =
    incr failures;
    Printf.ksprintf (fun m -> Printf.eprintf "%s: %s\n" path m) fmt
  in
  Array.to_list Sys.argv |> List.tl
  |> List.filter (fun p -> Filename.check_suffix p ".kvm")
  |> List.sort String.compare
  |> List.iter (fun path ->
         incr checked;
         let text = read_file path in
         let expected = expectation path text in
         match Asm.parse text with
         | Error e -> fail path "does not assemble: %s" e
         | Ok spec -> (
           match (Vm.verify spec, expected) with
           | Ok _, "ok" -> ()
           | Ok _, rule -> fail path "accepted; expected rejection %s" rule
           | Error d, "ok" -> fail path "rejected: %s" (Vm.diag_to_string d)
           | Error d, rule ->
             if d.Vm.d_rule <> rule then
               fail path "rejected as %s (%s); expected %s" d.Vm.d_rule
                 d.Vm.d_msg rule));
  if !checked = 0 then begin
    Printf.eprintf "vm-fixture-check: no .kvm files given\n";
    exit 2
  end;
  Printf.printf "vm-fixture-check: %d fixture%s, %d failure%s\n" !checked
    (if !checked = 1 then "" else "s")
    !failures
    (if !failures = 1 then "" else "s");
  if !failures > 0 then exit 1
