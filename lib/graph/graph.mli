(** Splice graphs — in-kernel data-path routing.

    The two-endpoint splice of {!Kpath_core.Splice} generalised into a
    DAG of I/O objects: file sources connected to sinks by edges, with

    + {b fan-out}: one source feeding N sinks (one RZ58 file streamed to
      N TCP clients). Each source block is read from disk {e once}; the
      buffer is then {e aliased} to every outgoing edge under a
      reference count ({!Kpath_buf.Cache.pin}), each edge's write
      completion drops one reference, and the buffer is released when
      the count drains — the paper's no-copy trick, shared N ways;
    + {b fan-in}: N sources concatenated into one destination file (a
      log assembled from per-client spools). Each incoming edge owns a
      disjoint, precomputed physical block range of the destination, so
      the writes never contend;
    + {b filter stages}: a per-edge pipeline of in-kernel stages applied
      to each block between the shared read and that edge's write —
      checksumming, rate throttling, or a tee to an observer.

    Backpressure: every edge carries its own {!Kpath_core.Flowctl}
    watermarks, and a source only issues new reads while {e every} live
    outgoing edge is below its write watermark {e and} the number of
    aliased blocks is within the graph's window. A slow sink therefore
    pauses reads (it cannot exhaust the buffer cache), and a dead one
    can be cut loose with {!abort_edge} so it cannot stall the rest of
    the graph; its outstanding references are dropped at that moment,
    preserving the release-exactly-once invariant.

    Graph pumping is asynchronous and runs in interrupt/callout context,
    exactly like splice: {!start} (process context) builds the block
    maps and primes the reads, then returns. *)

open Kpath_sim
open Kpath_dev
open Kpath_buf
open Kpath_fs
open Kpath_net

type ctx
(** Shared graph machinery: buffer cache, callout list, CPU-interrupt
    injection and cost parameters. One per machine. *)

val make_ctx :
  engine:Engine.t ->
  callout:Callout.t ->
  cache:Cache.t ->
  intr:(service:Time.span -> (unit -> unit) -> unit) ->
  ?handler_cost:Time.span ->
  ?vm_insn_cost:Time.span ->
  ?vm_backend:[ `Interp | `Compiled | `Checked ] ->
  ?trace:Trace.t ->
  unit ->
  ctx
(** [make_ctx ()] wires the graph machinery. [handler_cost] is the CPU
    charged per handler or filter-stage activation (default 25 us);
    [vm_insn_cost] is the CPU charged per executed {!filter.Prog}
    instruction (default 100 ns — a handful of R3000 cycles per
    dispatched bytecode). [vm_backend] picks how programs execute
    (default [`Compiled]: closures compiled from the verified bytecode
    at load time; [`Interp]: the direct interpreter; [`Checked]: the
    compiled backend with the range analysis's check elision disabled,
    for pricing what the analysis buys) — all three are
    observationally identical, down to per-instruction CPU accounting,
    so the choice only moves host wall-clock. Pass [trace] to record
    per-block events under the ["graph"] category. *)

val preload_prog : ctx -> Kpath_vm.Vm.prog -> unit
(** Warm the context's compiled-code cache for [p] (a no-op under the
    [`Interp] backend). [Syscall.prog_load] calls this so compilation
    happens at load time, in process context, not on the first block
    through an edge. Attaching a program to any number of edges reuses
    the one compilation. *)

val ctx_stats : ctx -> Stats.t
(** Machinery-wide counters: [graph.started], [graph.completed],
    [graph.aborted], [graph.reads_issued], [graph.read_hits],
    [graph.writes_issued], [graph.retries], [graph.blocks_aliased],
    [graph.edges_completed], [graph.edges_aborted], [graph.filter_runs];
    for {!filter.Prog} stages also [graph.prog_runs],
    [graph.prog_insns] (executed program instructions, either backend),
    [graph.prog_drops],
    [graph.prog_redirects] and [graph.prog_faults]; plus the
    [graph.block_latency_us] histogram of read-issue to
    last-reference-released times per block. *)

(** {1 Building a graph} *)

type t
(** A splice graph. *)

type node
(** A source or sink vertex. *)

type edge
(** A directed source→sink connection. *)

type state = Running | Completed | Aborted of string

type sink_spec =
  | Sink_file of { fs : Fs.t; ino : Inode.t; off_blocks : int }
      (** written starting at a block-aligned offset; the only sink kind
          that accepts more than one incoming edge (fan-in) *)
  | Sink_chardev of Chardev.t
  | Sink_udp of { sock : Udp.t; dst : Udp.addr }
  | Sink_tcp of Tcp.conn
      (** blocks shipped straight off the shared read buffer are
          snapshotted once into a refcounted payload and streamed
          zero-copy ({!Tcp.send_view}) — a block fanned out to a
          million connections is stored once *)
  | Sink_fn of (lblk:int -> data:bytes -> len:int -> unit)
      (** capture sink: each block is handed to the callback
          synchronously ([data] is the shared buffer, valid only during
          the call — copy what you keep). The staging half of the
          sharded fan-out: one pass records the source timeline, then
          per-client delivery replays it per shard. *)

type filter =
  | Checksum
      (** fold every block into the edge's running checksum
          ({!edge_checksum}); order-independent, so out-of-order write
          completions do not perturb it *)
  | Throttle of float
      (** pace this edge to the given rate in bytes/second *)
  | Tee of (bytes -> int -> unit)
      (** pass each block's (data, length) to an in-kernel observer; the
          data buffer is the shared alias and must not be mutated *)
  | Prog of Kpath_vm.Vm.prog
      (** run a verified filter program over each block (charged to the
          simulated CPU per interpreted instruction). The program's
          verdict decides the block's fate: [Pass] continues down the
          stage pipeline with the program's output payload (private
          copy-on-write if it transformed bytes), [Drop] settles the
          block without delivering it, [Redirect k] delivers it through
          the sink of the source's [k]-th outgoing edge in connect
          order (delivery still accounts to this edge; an out-of-range
          index kills the edge), and [Fault] kills the edge like any
          other edge error. [Emit (0, v)] folds [v] into
          {!edge_checksum} exactly like the built-in [Checksum] stage;
          other keys accumulate in {!edge_emits}. Each edge gets a
          private VM state, so one program value can be attached to
          many edges. *)

val create : ctx -> ?window:int -> unit -> t
(** A fresh, empty graph. [window] bounds the number of source blocks
    simultaneously held (pending reads + aliased buffers) {e per
    source}, bounding the graph's buffer-cache footprint no matter how
    slow a sink is (default 16). *)

val add_file_source :
  t -> fs:Fs.t -> ino:Inode.t -> ?off_blocks:int -> ?size:int -> unit -> node
(** Add a file source streaming [size] bytes (default: to end of file)
    from the block-aligned offset [off_blocks] (default 0). *)

val add_sink : t -> sink_spec -> node

val connect :
  t ->
  ?config:Kpath_core.Flowctl.config ->
  ?filters:filter list ->
  src:node ->
  dst:node ->
  unit ->
  edge
(** Connect a source node to a sink node. [config] is this edge's flow
    control (default {!Kpath_core.Flowctl.default}); [filters] are
    applied to each block, in order, between the shared read and this
    edge's write. Raises [Invalid_argument] if the nodes are not a
    (source, sink) pair, the edge already exists, or the graph has
    started. *)

(** {1 Running} *)

val start : t -> unit
(** Validate the topology and launch the transfer. Process context (the
    block maps are built here); returns once the graph is
    self-sustaining. Rules enforced:

    - every source and every file sink must share one block size;
    - a sink with several incoming edges must be a file, and each
      contributing source except the last connected must be a
      block-multiple size (the edges concatenate at block granularity);
    - source ranges must not overlap file-sink ranges of the same file;
    - UDP sinks require the block size to fit in a datagram.

    Sparse sources raise [Fs_error.Error (Einval _)]; destination
    allocation may raise [Fs_error.Error Enospc]. *)

val state : t -> state

val id : t -> int

val bytes_delivered : t -> int
(** Total bytes written to sinks, summed over edges. *)

val wait : t -> (int, string) result
(** Block the calling process until the graph finishes; [Ok bytes]
    (total delivered) or [Error reason]. Process context. *)

val on_complete : t -> (t -> unit) -> unit
(** Register a callback fired (in interrupt context) exactly once, when
    the graph completes or aborts. Fires immediately if already done. *)

val abort : t -> reason:string -> unit
(** Interrupt the whole graph: every live edge dies, in-flight blocks
    are drained, then the graph completes as [Aborted]. Idempotent. *)

val abort_edge : t -> edge -> reason:string -> unit
(** Cut one edge loose without stopping the graph: its pending writes
    are abandoned and their buffer references dropped immediately, so a
    stalled sink stops gating the others. The graph completes normally
    when the remaining edges finish (or aborts if none remain). *)

(** {1 Introspection} *)

val edges : t -> edge list
(** Every edge, in connect order. *)

val edge_id : edge -> int

val edge_state : edge -> [ `Active | `Done | `Dead of string ]

val edge_delivered : edge -> int
(** Bytes this edge has written to its sink. *)

val edge_checksum : edge -> int option
(** The running checksum, if the edge carries a [Checksum] or [Prog]
    filter (a program feeds it through key-0 emits; one that never
    emits key 0 reads as [Some 0]). *)

val edge_emits : edge -> (int * int) list
(** Key/value pairs emitted by this edge's [Prog] stages with non-zero
    keys, oldest first. *)

val edge_pending_writes : edge -> int

val edge_peak_writes : edge -> int
(** High-water mark of this edge's pending writes — bounded by the
    smaller of the graph window and [write_hi - 1 + max_in_flight] for
    its flow-control config (new reads are gated at [write_hi], but the
    reads already in flight may still land). *)

val source_reads : t -> int
(** Read operations this graph has consumed (device reads it issued plus
    cache hits it reused) — for asserting the single-read invariant. *)

val pinned_blocks : t -> int
(** Source blocks currently aliased (read done, not every edge's write
    complete) across all sources. *)

val block_checksum : lblk:int -> bytes -> int -> int
(** The digest of one block's first [len] bytes, mixed with its logical
    block number. An edge's [Checksum] filter XORs these digests, so
    tests can recompute the expected value from file contents. *)
