(** Simulated time.

    Time is measured in integer nanoseconds from the start of the
    simulation. A [span] is a duration; both share the representation but
    the distinct names document intent at use sites. Nanosecond integers
    keep the event engine fully deterministic (no floating-point drift)
    while still resolving sub-microsecond device events; an OCaml [int]
    holds about 292 simulated years of nanoseconds. *)

type t = private int
(** An instant, in nanoseconds since simulation start. *)

type span = t
(** A duration, in nanoseconds. *)

val zero : t
(** The simulation epoch. *)

val ns : int -> t
(** [ns n] is [n] nanoseconds. *)

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val sec : int -> t
(** [sec n] is [n] seconds. *)

val of_sec_f : float -> t
(** [of_sec_f s] is [s] seconds, rounded to the nearest nanosecond. *)

val of_us_f : float -> t
(** [of_us_f u] is [u] microseconds, rounded to the nearest nanosecond. *)

val to_ns : t -> int
(** [to_ns t] is the raw nanosecond count. *)

val to_sec_f : t -> float
(** [to_sec_f t] is [t] in seconds. *)

val to_us_f : t -> float
(** [to_us_f t] is [t] in microseconds. *)

val add : t -> span -> t
(** [add t d] is the instant [d] after [t]. *)

val sub : t -> span -> t
(** [sub t d] is the instant [d] before [t]. Raises [Invalid_argument] if
    the result would be negative. *)

val diff : t -> t -> span
(** [diff a b] is [a - b]. Raises [Invalid_argument] if [b > a]. *)

val scale : span -> int -> span
(** [scale d k] is [k] times the duration [d]. *)

val compare : t -> t -> int
(** Total order on instants. *)

val equal : t -> t -> bool

val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val span_of_bytes : bytes_per_sec:float -> int -> span
(** [span_of_bytes ~bytes_per_sec n] is the time needed to move [n] bytes
    at the given rate. Raises [Invalid_argument] on a non-positive rate. *)

val rate_bytes_per_sec : bytes:int -> span -> float
(** [rate_bytes_per_sec ~bytes d] is the throughput, in bytes per second,
    of moving [bytes] bytes in duration [d]. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print with an adaptive unit (ns, us, ms, s). *)
