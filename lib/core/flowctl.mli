(** splice rate-based flow control (§5.5).

    The calling program cannot be blocked — it is not the one issuing
    reads and writes — so splice paces itself on the completion rate of
    writes: each descriptor counts pending reads and pending writes, and
    when both drop below their watermarks the write handler issues a
    burst of additional reads. The paper's values: read watermark 3,
    write watermark 5, burst 5 — "adequate to prevent both the source
    from being underutilized and the destination from being
    overwhelmed". *)

type config = {
  read_lo : int;  (** issue more reads when pending reads drop below this *)
  write_hi : int;  (** ... and pending writes are below this *)
  read_burst : int;  (** how many reads to issue then *)
}

val default : config
(** The paper's [{read_lo = 3; write_hi = 5; read_burst = 5}]. *)

val lockstep : config
(** [{1; 1; 1}]: at most one block in flight — the behaviour splice's
    callout decoupling exists to avoid (§5.4 ablation). *)

val make : read_lo:int -> write_hi:int -> read_burst:int -> config
(** Validated constructor; all fields must be positive. *)

val reads_to_issue : config -> pending_reads:int -> pending_writes:int -> int
(** How many new reads the write handler should start right now: the
    burst size when both counts are below their watermarks, 0
    otherwise. *)

val max_in_flight : config -> int
(** Upper bound on simultaneously pending reads, implied by the policy:
    reads are only issued below [read_lo], in bursts of [read_burst]. *)
