open Kpath_dev

let b_busy = 0x01
let b_done = 0x02
let b_delwri = 0x04
let b_async = 0x08
let b_call = 0x10
let b_read = 0x20
let b_error_flag = 0x40
let b_inval = 0x80

type t = {
  b_id : int;
  mutable b_dev : Blkdev.t option;
  mutable b_blkno : int;
  mutable b_lblkno : int;
  mutable b_splice : int;
  mutable b_refs : int;
  mutable b_data : bytes;
  mutable b_bcount : int;
  mutable b_flags : int;
  mutable b_error : Blkdev.error option;
  mutable b_iodone : (t -> unit) option;
  mutable b_waiters : (unit -> unit) list;
  mutable b_stamp : int;
  mutable b_in_hash : bool;
}

let make ~id ~data_size =
  {
    b_id = id;
    b_dev = None;
    b_blkno = -1;
    b_lblkno = -1;
    b_splice = -1;
    b_refs = 0;
    b_data = Bytes.make data_size '\000';
    b_bcount = data_size;
    b_flags = 0;
    b_error = None;
    b_iodone = None;
    b_waiters = [];
    b_stamp = 0;
    b_in_hash = false;
  }

let has b f = b.b_flags land f <> 0

let set b f = b.b_flags <- b.b_flags lor f

let clear b f = b.b_flags <- b.b_flags land lnot f

let valid b = has b b_done && not (has b b_error_flag)

let key b =
  match b.b_dev with
  | Some dev -> (dev.Blkdev.dv_id, b.b_blkno)
  | None -> invalid_arg "Buf.key: no device"

let pp fmt b =
  let flag name f = if has b f then name else "" in
  Format.fprintf fmt "buf#%d %s/%d [%s%s%s%s%s%s%s%s]" b.b_id
    (match b.b_dev with Some d -> d.Blkdev.dv_name | None -> "?")
    b.b_blkno (flag "B" b_busy) (flag "D" b_done) (flag "W" b_delwri)
    (flag "A" b_async) (flag "C" b_call) (flag "R" b_read)
    (flag "E" b_error_flag) (flag "I" b_inval)
