open Kpath_workloads

(* Small file sizes keep these integration tests fast while still
   exercising cache recycling (64 buffers of 8 KB = 512 KB cache vs
   1 MB files... our cache is 3.2 MB, so use 4 MB files where recycling
   matters and 256 KB where it does not). *)

let mb = 1024 * 1024

let test_measure_copy_verifies () =
  List.iter
    (fun mode ->
      let m = Experiments.measure_copy ~mode ~disk:`Ram ~file_bytes:(256 * 1024) () in
      Alcotest.(check bool) "verified" true m.Experiments.cm_verified;
      Alcotest.(check int) "bytes" (256 * 1024) m.Experiments.cm_bytes;
      Alcotest.(check bool) "rate positive" true (m.Experiments.cm_kb_per_sec > 0.0))
    [ `Cp; `Scp ]

let test_scp_beats_cp_on_ram () =
  let scp = Experiments.measure_copy ~mode:`Scp ~disk:`Ram ~file_bytes:(2 * mb) () in
  let cp = Experiments.measure_copy ~mode:`Cp ~disk:`Ram ~file_bytes:(2 * mb) () in
  Alcotest.(check bool) "substantially faster" true
    (scp.Experiments.cm_kb_per_sec > 1.5 *. cp.Experiments.cm_kb_per_sec)

let test_scp_at_least_cp_on_disk () =
  let scp = Experiments.measure_copy ~mode:`Scp ~disk:`Rz58 ~file_bytes:(2 * mb) () in
  let cp = Experiments.measure_copy ~mode:`Cp ~disk:`Rz58 ~file_bytes:(2 * mb) () in
  Alcotest.(check bool) "no slower" true
    (scp.Experiments.cm_kb_per_sec >= 0.95 *. cp.Experiments.cm_kb_per_sec)

let test_idle_baseline () =
  let t = Experiments.idle_seconds ~ops:100 in
  Alcotest.(check (float 0.01)) "100 ops of 1 ms" 0.1 t

let test_slowdown_direction () =
  let f_cp =
    Experiments.slowdown ~mode:`Cp ~disk:`Ram ~file_bytes:(2 * mb) ~pace:1.0e6
      ~ops:300 ()
  in
  let f_scp =
    Experiments.slowdown ~mode:`Scp ~disk:`Ram ~file_bytes:(2 * mb) ~pace:1.0e6
      ~ops:300 ()
  in
  Alcotest.(check bool) "both slowed" true (f_cp > 1.05 && f_scp > 1.0);
  Alcotest.(check bool) "splice leaves more CPU" true (f_scp < f_cp)

let test_watermark_sweep_runs () =
  let open Kpath_core in
  let rows =
    Experiments.watermark_sweep ~disk:`Ram ~file_bytes:(512 * 1024)
      [ Flowctl.lockstep; Flowctl.default ]
  in
  (match rows with
   | [ (_, lock); (_, dflt) ] ->
     Alcotest.(check bool) "both verified" true
       (lock.Experiments.cm_verified && dflt.Experiments.cm_verified);
     Alcotest.(check bool) "pipelining not slower" true
       (dflt.Experiments.cm_kb_per_sec >= 0.9 *. lock.Experiments.cm_kb_per_sec)
   | _ -> Alcotest.fail "expected two rows")

let test_same_disk_copy_slower_than_two_disks () =
  (* Use a file larger than the cache so write-back interleaves with
     reads and the single head must thrash. *)
  let sz = 4 * mb in
  let two = Experiments.measure_copy ~mode:`Cp ~disk:`Rz56 ~file_bytes:sz () in
  let one =
    Experiments.measure_copy ~mode:`Cp ~disk:`Rz56 ~file_bytes:sz ~same_disk:true ()
  in
  Alcotest.(check bool) "verified" true one.Experiments.cm_verified;
  Alcotest.(check bool) "head thrash costs throughput" true
    (one.Experiments.cm_kb_per_sec < two.Experiments.cm_kb_per_sec)

let test_relay_modes () =
  let p = Experiments.measure_relay ~mode:`Process ~datagrams:100 () in
  let s = Experiments.measure_relay ~mode:`Splice ~datagrams:100 () in
  Alcotest.(check int) "process relay delivers" 100 p.Experiments.rm_datagrams;
  Alcotest.(check int) "splice relay delivers" 100 s.Experiments.rm_datagrams;
  Alcotest.(check bool) "splice uses less CPU" true
    (s.Experiments.rm_cpu_busy_frac < p.Experiments.rm_cpu_busy_frac)

let test_pattern_helpers () =
  let b = Bytes.create 16 in
  Programs.fill_pattern b ~file_off:100;
  for i = 0 to 15 do
    Alcotest.(check char) "pattern" (Programs.pattern_byte (100 + i)) (Bytes.get b i)
  done

let test_media_playback () =
  let p = Experiments.measure_media ~player:`Process ~seconds:2 () in
  let s = Experiments.measure_media ~player:`Splice ~seconds:2 () in
  Alcotest.(check int) "process frames" 30 p.Experiments.md_frames;
  Alcotest.(check int) "splice frames" 30 s.Experiments.md_frames;
  Alcotest.(check bool) "splice player uses far less CPU" true
    (s.Experiments.md_player_cpu_sec < 0.25 *. p.Experiments.md_player_cpu_sec);
  Alcotest.(check bool) "both on schedule" true
    (p.Experiments.md_late_frames = 0 && s.Experiments.md_late_frames = 0)

let test_elevator_helps_same_disk_cp () =
  let sz = 2 * mb in
  let fifo =
    Experiments.measure_copy ~mode:`Cp ~disk:`Rz56 ~file_bytes:sz
      ~same_disk:true ~disk_queue:Kpath_dev.Disk.Fifo ()
  in
  let elev =
    Experiments.measure_copy ~mode:`Cp ~disk:`Rz56 ~file_bytes:sz
      ~same_disk:true ~disk_queue:Kpath_dev.Disk.Elevator ()
  in
  Alcotest.(check bool) "both verified" true
    (fifo.Experiments.cm_verified && elev.Experiments.cm_verified);
  Alcotest.(check bool) "elevator no slower" true
    (elev.Experiments.cm_kb_per_sec >= fifo.Experiments.cm_kb_per_sec)

let test_mcp_copy () =
  (* The mmap copier: verified, faster than cp on the RAM disk (one copy
     fewer) but slower than splice (faults + the user copy remain). *)
  let mcp = Experiments.measure_copy ~mode:`Mcp ~disk:`Ram ~file_bytes:(2 * mb) () in
  let cp = Experiments.measure_copy ~mode:`Cp ~disk:`Ram ~file_bytes:(2 * mb) () in
  let scp = Experiments.measure_copy ~mode:`Scp ~disk:`Ram ~file_bytes:(2 * mb) () in
  Alcotest.(check bool) "verified" true mcp.Experiments.cm_verified;
  Alcotest.(check bool) "mcp beats cp" true
    (mcp.Experiments.cm_kb_per_sec > cp.Experiments.cm_kb_per_sec);
  Alcotest.(check bool) "scp beats mcp" true
    (scp.Experiments.cm_kb_per_sec > mcp.Experiments.cm_kb_per_sec)

let test_determinism () =
  (* The simulation consults no wall clock or global entropy: identical
     runs produce identical measurements. *)
  let run () =
    let m = Experiments.measure_copy ~mode:`Scp ~disk:`Rz56 ~file_bytes:(512 * 1024) () in
    (m.Experiments.cm_seconds, m.Experiments.cm_kb_per_sec)
  in
  let a = run () and b = run () in
  Alcotest.(check (pair (float 0.0) (float 0.0))) "bit-identical" a b

let test_engine_parity () =
  (* The timing-wheel engine is a host-speed optimisation only: every
     simulated quantity — times, rates, event counts — must come out
     bit-identical to the binary-heap engine. *)
  let cfg engine =
    { Kpath_kernel.Config.decstation_5000_200 with
      Kpath_kernel.Config.sim_engine = engine }
  in
  let copy engine =
    let m =
      Experiments.measure_copy ~mode:`Scp ~disk:`Rz58 ~file_bytes:(512 * 1024)
        ~machine_config:(cfg engine) ()
    in
    Experiments.
      (m.cm_bytes, m.cm_seconds, m.cm_kb_per_sec, m.cm_verified, m.cm_events)
  in
  let hb, hs, hk, hv, he = copy `Heap and wb, ws, wk, wv, we = copy `Wheel in
  Alcotest.(check int) "copy bytes" hb wb;
  Alcotest.(check (float 0.0)) "copy seconds" hs ws;
  Alcotest.(check (float 0.0)) "copy KB/s" hk wk;
  Alcotest.(check bool) "copy verified" hv wv;
  Alcotest.(check int) "copy events" he we;
  let fanout engine =
    let m =
      Experiments.measure_fanout ~clients:4 ~file_bytes:(256 * 1024)
        ~machine_config:(cfg engine) ()
    in
    Experiments.
      ( (m.fo_clients, m.fo_bytes_per_client, m.fo_device_reads),
        (m.fo_seconds, m.fo_agg_kb_per_sec, m.fo_server_cpu_sec),
        (m.fo_verified, m.fo_pinned_after, m.fo_events) )
  in
  let hi, hf, hp = fanout `Heap and wi, wf, wp = fanout `Wheel in
  Alcotest.(check (triple int int int)) "fanout shape" hi wi;
  Alcotest.(check (triple (float 0.0) (float 0.0) (float 0.0)))
    "fanout timings" hf wf;
  Alcotest.(check (triple bool int int)) "fanout pins and events" hp wp

let test_timeline_shape () =
  let cp =
    Experiments.availability_timeline ~mode:`Cp ~disk:`Ram
      ~file_bytes:(2 * mb) ~pace:1.0e6 ~ops:400 ()
  in
  let scp =
    Experiments.availability_timeline ~mode:`Scp ~disk:`Ram
      ~file_bytes:(2 * mb) ~pace:1.0e6 ~ops:400 ()
  in
  let mean l =
    float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (max 1 (List.length l))
  in
  Alcotest.(check bool) "buckets collected" true
    (List.length cp > 0 && List.length scp > 0);
  Alcotest.(check bool) "scp leaves more CPU per interval" true
    (mean scp > mean cp)

let test_paper_shapes_hold () =
  (* The reproduction's headline claims, pinned at full scale (8 MB).
     These are the shape criteria from EXPERIMENTS.md; if a change to
     the substrate breaks any of them, this is the test that says so. *)
  let t2 = Experiments.table2 () in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Experiments.disk_name r.Experiments.tp_disk ^ ": scp >= cp")
        true
        (r.Experiments.tp_scp_kbps >= r.Experiments.tp_cp_kbps))
    t2;
  let ram = List.find (fun r -> r.Experiments.tp_disk = `Ram) t2 in
  let ratio = ram.Experiments.tp_scp_kbps /. ram.Experiments.tp_cp_kbps in
  Alcotest.(check bool) "RAM ratio near the paper's ~1.8x" true
    (ratio > 1.5 && ratio < 2.4);
  List.iter
    (fun r ->
      match r.Experiments.tp_disk with
      | `Rz56 | `Rz58 ->
        let pct =
          (r.Experiments.tp_scp_kbps -. r.Experiments.tp_cp_kbps)
          /. r.Experiments.tp_cp_kbps *. 100.
        in
        Alcotest.(check bool) "minor improvement on real disks" true
          (pct >= 0.0 && pct < 40.0)
      | `Ram -> ())
    t2;
  let t1 = Experiments.table1 ~ops:1000 () in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Experiments.disk_name r.Experiments.av_disk ^ ": F_scp < F_cp")
        true
        (r.Experiments.av_f_scp < r.Experiments.av_f_cp))
    t1;
  let ram1 = List.find (fun r -> r.Experiments.av_disk = `Ram) t1 in
  let best_disk =
    List.fold_left
      (fun acc r ->
        match r.Experiments.av_disk with
        | `Rz56 | `Rz58 -> max acc r.Experiments.av_pct
        | `Ram -> acc)
      0.0 t1
  in
  Alcotest.(check bool) "improvement largest on the fastest device" true
    (ram1.Experiments.av_pct > best_disk)

(* The clustering acceptance claim: multi-block transfers collapse
   per-block completion interrupts, so interrupts/MB must drop by at
   least the cluster factor's ballpark (>= 4x at max_cluster = 8), while
   the copy still verifies and throughput does not regress. *)
let test_clustering_cuts_interrupts () =
  let at cluster =
    Experiments.measure_cluster ~disk:`Rz58 ~file_bytes:mb ~ops:200 ~cluster ()
  in
  let c1 = at 1 and c8 = at 8 in
  Alcotest.(check bool) "interrupt rate drops at least 4x" true
    (c1.Experiments.cl_intrs_per_mb >= 4.0 *. c8.Experiments.cl_intrs_per_mb);
  Alcotest.(check bool) "throughput does not regress" true
    (c8.Experiments.cl_scp_kbps >= 0.97 *. c1.Experiments.cl_scp_kbps);
  Alcotest.(check bool) "clustered copy leaves more CPU available" true
    (c8.Experiments.cl_f_scp <= c1.Experiments.cl_f_scp +. 0.001)

(* Sharded fan-out parity: partitioning the client population over K
   domains is a pure host-side throughput knob — digest, event count,
   simulated seconds and the merged per-client completion sequence must
   be bit-identical at every K. *)

let check_sharded_equal label (a : Experiments.fanout_shard_measure)
    (b : Experiments.fanout_shard_measure) =
  Alcotest.(check bool) (label ^ ": verified") true (a.fsh_verified && b.fsh_verified);
  Alcotest.(check int) (label ^ ": events") a.fsh_events b.fsh_events;
  Alcotest.(check int) (label ^ ": stage events") a.fsh_stage_events b.fsh_stage_events;
  if a.fsh_digest <> b.fsh_digest then
    Alcotest.failf "%s: digest %016x <> %016x" label a.fsh_digest b.fsh_digest;
  if a.fsh_seconds <> b.fsh_seconds then
    Alcotest.failf "%s: seconds %.9f <> %.9f" label a.fsh_seconds b.fsh_seconds;
  Alcotest.(check int)
    (label ^ ": completion count")
    (Array.length a.fsh_completions)
    (Array.length b.fsh_completions);
  Array.iteri
    (fun i (t, c) ->
      let t', c' = b.fsh_completions.(i) in
      if t <> t' || c <> c' then
        Alcotest.failf "%s: completion %d differs: (%d,%d) <> (%d,%d)" label i
          t c t' c')
    a.fsh_completions

let test_sharded_parity () =
  let run k =
    Experiments.measure_fanout_sharded ~clients:24 ~domains:k
      ~file_bytes:(32 * 1024) ()
  in
  let r1 = run 1 in
  Alcotest.(check int) "domains recorded" 1 r1.Experiments.fsh_domains;
  Alcotest.(check int) "clients recorded" 24 r1.Experiments.fsh_clients;
  Alcotest.(check int)
    "bytes per client" (32 * 1024) r1.Experiments.fsh_bytes_per_client;
  check_sharded_equal "K=2" r1 (run 2);
  check_sharded_equal "K=4" r1 (run 4)

(* The same parity property on randomized scenarios: client count,
   file size, connect stagger and domain count drawn at random; K
   domains must reproduce K=1 exactly. *)
let prop_sharded_parity =
  QCheck.Test.make ~name:"sharded fan-out is partition-independent"
    ~count:8
    (QCheck.make
       ~print:(fun (clients, blocks, stagger_us, k) ->
         Printf.sprintf "clients=%d blocks=%d stagger=%dus domains=%d" clients
           blocks stagger_us k)
       QCheck.Gen.(
         quad (1 -- 20) (1 -- 4) (1 -- 50) (2 -- 5)))
    (fun (clients, blocks, stagger_us, k) ->
      let run domains =
        Experiments.measure_fanout_sharded ~clients ~domains
          ~file_bytes:(blocks * 8 * 1024) ~stagger_us ()
      in
      let r1 = run 1 in
      let rk = run k in
      check_sharded_equal (Printf.sprintf "K=%d" k) r1 rk;
      true)

let suite =
  [
    Alcotest.test_case "measure_copy verifies" `Quick test_measure_copy_verifies;
    Alcotest.test_case "scp beats cp on RAM" `Quick test_scp_beats_cp_on_ram;
    Alcotest.test_case "scp not slower on disk" `Quick test_scp_at_least_cp_on_disk;
    Alcotest.test_case "idle baseline" `Quick test_idle_baseline;
    Alcotest.test_case "slowdown direction" `Slow test_slowdown_direction;
    Alcotest.test_case "watermark sweep" `Quick test_watermark_sweep_runs;
    Alcotest.test_case "same-disk penalty" `Quick test_same_disk_copy_slower_than_two_disks;
    Alcotest.test_case "udp relay modes" `Quick test_relay_modes;
    Alcotest.test_case "pattern helpers" `Quick test_pattern_helpers;
    Alcotest.test_case "media playback" `Quick test_media_playback;
    Alcotest.test_case "elevator same-disk" `Quick test_elevator_helps_same_disk_cp;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "engine parity" `Quick test_engine_parity;
    Alcotest.test_case "mmap copier (related work)" `Quick test_mcp_copy;
    Alcotest.test_case "paper shapes hold at 8MB" `Slow test_paper_shapes_hold;
    Alcotest.test_case "availability timeline" `Quick test_timeline_shape;
    Alcotest.test_case "clustering cuts interrupts" `Quick
      test_clustering_cuts_interrupts;
    Alcotest.test_case "sharded fan-out parity K in {1,2,4}" `Quick
      test_sharded_parity;
    Util.qcheck prop_sharded_parity;
  ]
