(* Register VM for per-block filter programs: static verifier and
   fuel-bounded interpreter. See vm.mli for the safety argument. *)

type reg = int

type operand = Reg of reg | Imm of int

type insn =
  | Mov of reg * operand
  | Add of reg * operand
  | Sub of reg * operand
  | Mul of reg * operand
  | Div of reg * operand
  | Rem of reg * operand
  | And of reg * operand
  | Or of reg * operand
  | Xor of reg * operand
  | Shl of reg * operand
  | Shr of reg * operand
  | Len of reg
  | Blkno of reg
  | Ldp of reg * operand
  | Stp of operand * operand
  | Lds of reg * int
  | Sts of int * operand
  | Ldsx of reg * reg
  | Stsx of reg * operand
  | Jmp of int
  | Jeq of reg * operand * int
  | Jne of reg * operand * int
  | Jlt of reg * operand * int
  | Jge of reg * operand * int
  | Loop of operand * int
  | End
  | Emit of operand * operand
  | Drop
  | Redirect of operand
  | Ret

type context = Edge | Readonly

type spec = {
  s_insns : insn array;
  s_fuel : int;
  s_scratch : int;
  s_context : context;
}

let max_regs = 8
let max_scratch = 1024
let max_fuel = 1_000_000
let max_loop_count = 65_536
let max_loop_depth = 4
let max_insns = 4096

type prog = {
  p_insns : insn array;
  p_fuel : int;
  p_scratch : int;
  p_context : context;
  p_cost : int;
  (* For [Loop] at pc, the pc of its matching [End]; -1 elsewhere. *)
  p_end_of : int array;
}

type diag = { d_rule : string; d_pc : int; d_msg : string }

let diag_to_string d =
  if d.d_pc < 0 then Printf.sprintf "%s: %s" d.d_rule d.d_msg
  else Printf.sprintf "%s at pc %d: %s" d.d_rule d.d_pc d.d_msg

(* {1 Verifier} *)

exception Reject of diag

let reject rule pc fmt =
  Printf.ksprintf
    (fun msg -> raise (Reject { d_rule = rule; d_pc = pc; d_msg = msg }))
    fmt

let check_reg pc r =
  if r < 0 || r >= max_regs then
    reject "bad-register" pc "r%d is not a register (r0..r%d)" r (max_regs - 1)

let check_operand pc = function Reg r -> check_reg pc r | Imm _ -> ()

(* Match Loop/End pairs and record, for every position, the pc of its
   innermost enclosing Loop (-1 at top level). The End instruction
   belongs to the loop it closes; position [n] (falling off the end) is
   top-level. Jumps may move only within their enclosing region, so the
   interpreter's loop stack always mirrors the static nesting. *)
let build_loops insns =
  let n = Array.length insns in
  let end_of = Array.make (max n 1) (-1) in
  let encl = Array.make (n + 1) (-1) in
  let stack = ref [] in
  for pc = 0 to n - 1 do
    encl.(pc) <- (match !stack with [] -> -1 | s :: _ -> s);
    match insns.(pc) with
    | Loop (count, cap) ->
      if List.length !stack >= max_loop_depth then
        reject "loop-depth" pc "loops nest deeper than %d" max_loop_depth;
      if cap < 1 || cap > max_loop_count then
        reject "unbounded-loop" pc "loop cap %d outside 1..%d" cap
          max_loop_count;
      check_operand pc count;
      stack := pc :: !stack
    | End -> (
      match !stack with
      | [] -> reject "unbounded-loop" pc "End without a matching Loop"
      | s :: rest ->
        end_of.(s) <- pc;
        stack := rest)
    | _ -> ()
  done;
  (match !stack with
   | s :: _ -> reject "unbounded-loop" s "Loop without a matching End"
   | [] -> ());
  (end_of, encl)

(* Structural worst case: straight-line code costs one per instruction,
   a loop costs its header plus cap * (body + End). Saturates well above
   max_fuel so nested caps cannot overflow. *)
let cost_ceiling = max_fuel * 16

let sat_add a b = if a > cost_ceiling - b then cost_ceiling else a + b

let sat_mul a b =
  if b = 0 then 0
  else if a > cost_ceiling / b then cost_ceiling
  else a * b

let worst_case insns end_of =
  let rec region pc stop =
    if pc >= stop then 0
    else
      match insns.(pc) with
      | Loop (_, cap) ->
        let e = end_of.(pc) in
        let body = region (pc + 1) e in
        sat_add 1 (sat_add (sat_mul cap (sat_add body 1)) (region (e + 1) stop))
      | _ -> sat_add 1 (region (pc + 1) stop)
  in
  region 0 (Array.length insns)

let check_insn ~scratch ~context ~encl ~n pc insn =
  let jump off =
    if off < 1 then
      reject "unbounded-loop" pc
        "backward or self jump (offset %d); loop with Loop/End instead" off;
    let target = pc + off in
    if target > n then
      reject "jump-oob" pc "jump target %d past program end %d" target n;
    if encl.(target) <> encl.(pc) then
      reject "jump-oob" pc "jump target %d crosses a loop boundary" target
  in
  let scratch_cell off =
    if off < 0 || off >= scratch then
      reject "scratch-oob" pc "scratch cell %d outside 0..%d" off (scratch - 1)
  in
  (* Indexed scratch access is masked to [idx land (scratch - 1)], so it
     is statically in bounds exactly when the arena is a non-empty power
     of two — the proof the compiler relies on to elide the check. *)
  let scratch_indexable name =
    if scratch = 0 || scratch land (scratch - 1) <> 0 then
      reject "scratch-index" pc
        "%s needs a power-of-two scratch arena (scratch %d)" name scratch
  in
  let effect name =
    if context = Readonly then
      reject "effect-context" pc "%s not allowed in a read-only program" name
  in
  match insn with
  | Mov (r, o) | Add (r, o) | Sub (r, o) | Mul (r, o)
  | And (r, o) | Or (r, o) | Xor (r, o) | Shl (r, o) | Shr (r, o) ->
    check_reg pc r;
    check_operand pc o
  | Div (r, o) | Rem (r, o) ->
    check_reg pc r;
    check_operand pc o;
    (match o with
     | Imm 0 -> reject "div-by-zero" pc "constant zero divisor"
     | _ -> ())
  | Len r | Blkno r -> check_reg pc r
  | Ldp (r, o) ->
    check_reg pc r;
    check_operand pc o
  | Stp (o_off, o_v) ->
    effect "Stp";
    check_operand pc o_off;
    check_operand pc o_v
  | Lds (r, off) ->
    check_reg pc r;
    scratch_cell off
  | Sts (off, o) ->
    scratch_cell off;
    check_operand pc o
  | Ldsx (r, ri) ->
    check_reg pc r;
    check_reg pc ri;
    scratch_indexable "Ldsx"
  | Stsx (ri, o) ->
    check_reg pc ri;
    check_operand pc o;
    scratch_indexable "Stsx"
  | Jmp off -> jump off
  | Jeq (r, o, off) | Jne (r, o, off) | Jlt (r, o, off) | Jge (r, o, off) ->
    check_reg pc r;
    check_operand pc o;
    jump off
  | Loop _ | End -> ()  (* checked by build_loops *)
  | Emit (ok, ov) ->
    check_operand pc ok;
    check_operand pc ov
  | Drop -> effect "Drop"
  | Redirect o ->
    effect "Redirect";
    check_operand pc o
  | Ret -> ()

let verify spec =
  try
    let insns = Array.copy spec.s_insns in
    let n = Array.length insns in
    if n > max_insns then
      reject "program-size" (-1) "%d instructions exceed the %d limit" n
        max_insns;
    if spec.s_fuel <= 0 then
      reject "fuel-bound" (-1) "declared fuel %d must be positive" spec.s_fuel;
    if spec.s_fuel > max_fuel then
      reject "fuel-bound" (-1) "declared fuel %d exceeds the %d limit"
        spec.s_fuel max_fuel;
    if spec.s_scratch < 0 || spec.s_scratch > max_scratch then
      reject "scratch-oob" (-1) "scratch size %d outside 0..%d" spec.s_scratch
        max_scratch;
    let end_of, encl = build_loops insns in
    Array.iteri
      (check_insn ~scratch:spec.s_scratch ~context:spec.s_context ~encl ~n)
      insns;
    let cost = worst_case insns end_of in
    if cost > spec.s_fuel then
      reject "fuel-bound" (-1)
        "worst-case cost %s exceeds declared fuel %d"
        (if cost > max_fuel then ">" ^ string_of_int max_fuel
         else string_of_int cost)
        spec.s_fuel;
    Ok
      {
        p_insns = insns;
        p_fuel = spec.s_fuel;
        p_scratch = spec.s_scratch;
        p_context = spec.s_context;
        p_cost = cost;
        p_end_of = end_of;
      }
  with Reject d -> Error d

let insns p = Array.copy p.p_insns

let fuel p = p.p_fuel

let scratch_cells p = p.p_scratch

let prog_context p = p.p_context

let worst_cost p = p.p_cost

(* {1 Interpreter} *)

(* Constructor names overlap with [insn] (Drop, Redirect); matches and
   constructions below are disambiguated by their expected type. *)
type verdict = Pass | Drop | Redirect of int | Fault of string

type run = { r_verdict : verdict; r_steps : int; r_data : bytes }

type state = {
  st_regs : int array;
  st_scratch : int array;
  st_loop_start : int array;
  st_loop_left : int array;
}

let new_state p =
  {
    st_regs = Array.make max_regs 0;
    st_scratch = Array.make (max p.p_scratch 1) 0;
    st_loop_start = Array.make max_loop_depth 0;
    st_loop_left = Array.make max_loop_depth 0;
  }

exception Fault_exn of string

let fault fmt = Printf.ksprintf (fun m -> raise (Fault_exn m)) fmt

(* Operand decode, hoisted out of [exec]: defining it inside the run
   captured [regs] and allocated a closure per block, which shows up
   once a fan-out pushes millions of blocks through an edge program. *)
let[@inline] ev regs = function Reg r -> regs.(r) | Imm k -> k

let[@kpath.intr] exec p st ~data ~len ~lblk ~emit =
  let code = p.p_insns in
  let n = Array.length code in
  let regs = st.st_regs in
  Array.fill regs 0 max_regs 0;
  let scratch = st.st_scratch in
  let lstart = st.st_loop_start and lleft = st.st_loop_left in
  let depth = ref 0 in
  let fuel = ref p.p_fuel in
  let steps = ref 0 in
  let cur = ref data in
  let copied = ref false in
  let pc = ref 0 in
  let verdict = ref Pass in
  (try
     while !pc < n do
       (* Defense in depth: the verifier proved p_cost <= p_fuel, so a
          verified program cannot exhaust this counter. *)
       if !fuel <= 0 then fault "fuel exhausted";
       decr fuel;
       incr steps;
       let here = !pc in
       incr pc;
       match code.(here) with
       | Mov (r, o) -> regs.(r) <- ev regs o
       | Add (r, o) -> regs.(r) <- regs.(r) + ev regs o
       | Sub (r, o) -> regs.(r) <- regs.(r) - ev regs o
       | Mul (r, o) -> regs.(r) <- regs.(r) * ev regs o
       | Div (r, o) ->
         let d = ev regs o in
         if d = 0 then fault "division by zero at pc %d" here;
         regs.(r) <- regs.(r) / d
       | Rem (r, o) ->
         let d = ev regs o in
         if d = 0 then fault "division by zero at pc %d" here;
         regs.(r) <- regs.(r) mod d
       | And (r, o) -> regs.(r) <- regs.(r) land ev regs o
       | Or (r, o) -> regs.(r) <- regs.(r) lor ev regs o
       | Xor (r, o) -> regs.(r) <- regs.(r) lxor ev regs o
       | Shl (r, o) -> regs.(r) <- regs.(r) lsl (ev regs o land 63)
       | Shr (r, o) -> regs.(r) <- regs.(r) lsr (ev regs o land 63)
       | Len r -> regs.(r) <- len
       | Blkno r -> regs.(r) <- lblk
       | Ldp (r, o) ->
         let off = ev regs o in
         if off < 0 || off >= len then
           fault "payload load at %d outside %d bytes (pc %d)" off len here;
         regs.(r) <- Char.code (Bytes.unsafe_get !cur off)
       | Stp (o_off, o_v) ->
         let off = ev regs o_off in
         if off < 0 || off >= len then
           fault "payload store at %d outside %d bytes (pc %d)" off len here;
         if not !copied then begin
           (* Copy on write: the input buffer is aliased across edges. *)
           cur := Bytes.copy data;
           copied := true
         end;
         Bytes.unsafe_set !cur off (Char.unsafe_chr (ev regs o_v land 0xff))
       | Lds (r, off) -> regs.(r) <- scratch.(off)
       | Sts (off, o) -> scratch.(off) <- ev regs o
       | Ldsx (r, ri) ->
         (* The verifier admits Ldsx/Stsx only over a power-of-two
            arena, so the mask keeps the access in bounds. *)
         regs.(r) <- Array.unsafe_get scratch (regs.(ri) land (p.p_scratch - 1))
       | Stsx (ri, o) ->
         Array.unsafe_set scratch
           (regs.(ri) land (p.p_scratch - 1))
           (ev regs o)
       | Jmp off -> pc := here + off
       | Jeq (r, o, off) -> if regs.(r) = ev regs o then pc := here + off
       | Jne (r, o, off) -> if regs.(r) <> ev regs o then pc := here + off
       | Jlt (r, o, off) -> if regs.(r) < ev regs o then pc := here + off
       | Jge (r, o, off) -> if regs.(r) >= ev regs o then pc := here + off
       | Loop (count, cap) ->
         let c = min (max (ev regs count) 0) cap in
         if c = 0 then pc := p.p_end_of.(here) + 1
         else begin
           lstart.(!depth) <- !pc;
           lleft.(!depth) <- c;
           incr depth
         end
       | End ->
         if !depth = 0 then fault "End with an empty loop stack (pc %d)" here;
         let d = !depth - 1 in
         lleft.(d) <- lleft.(d) - 1;
         if lleft.(d) > 0 then pc := lstart.(d) else depth := d
       | Emit (ok, ov) -> emit (ev regs ok) (ev regs ov)
       | Drop ->
         verdict := (Drop : verdict);
         pc := n
       | Redirect o ->
         verdict := (Redirect (ev regs o) : verdict);
         pc := n
       | Ret -> pc := n
     done
   with Fault_exn m -> verdict := Fault m);
  { r_verdict = !verdict; r_steps = !steps; r_data = !cur }
