type number = int

let sigint = 2
let sigalrm = 14
let sigio = 23

let bit n =
  if n < 0 || n > 30 then invalid_arg "Signal: number out of range";
  1 lsl n

let handle (p : Process.t) n fn =
  ignore (bit n);
  p.sig_handlers <- (n, fn) :: List.remove_assoc n p.sig_handlers

let ignore_signal (p : Process.t) n =
  p.sig_handlers <- List.remove_assoc n p.sig_handlers

let deliver sched (p : Process.t) n =
  if not (Process.is_zombie p) then begin
    p.sig_pending <- p.sig_pending lor bit n;
    match p.intr_waker with
    | Some waker ->
      p.intr_waker <- None;
      waker ();
      (* The waker enqueues; ensure an idle CPU picks the process up. *)
      ignore sched
    | None -> ()
  end

let pending (p : Process.t) =
  let rec go n acc =
    if n < 0 then acc
    else if p.sig_pending land bit n <> 0 then go (n - 1) (n :: acc)
    else go (n - 1) acc
  in
  go 30 []

let take_pending (p : Process.t) =
  let sigs = pending p in
  p.sig_pending <- 0;
  List.iter
    (fun n ->
      match List.assoc_opt n p.sig_handlers with
      | Some fn -> fn ()
      | None -> ())
    sigs
