(* Differential tests: the timing-wheel engine must be observationally
   identical to the binary-heap engine — same fire order, same clock at
   each firing, same [run ~until] horizon behaviour — on randomized
   schedule/cancel workloads, including callbacks that schedule and
   cancel further events while the simulation runs. *)

open Kpath_sim

(* A workload program interpreted identically against both engines.
   Times are in microseconds so events routinely share a wheel tick
   (sub-tick ordering) and routinely cross slot/cascade boundaries. *)
type op =
  | Sched of int (* schedule at now + us; remember handle *)
  | Sched_chain of int * int (* at now + fst us, callback schedules + snd us *)
  | Cancel of int (* cancel the k-th remembered handle (mod count) *)
  | Cancel_in_cb of int * int (* at now + us, callback cancels k-th handle *)

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun d -> Sched d) (int_bound 600_000));
        (3, map2 (fun a b -> Sched_chain (a, b)) (int_bound 400_000) (int_bound 3_000));
        (2, map (fun k -> Cancel k) (int_bound 64));
        (1, map2 (fun d k -> Cancel_in_cb (d, k)) (int_bound 400_000) (int_bound 64));
      ])

let arb_ops =
  QCheck.make
    ~print:
      (Format.asprintf "%a"
         (Format.pp_print_list (fun fmt -> function
            | Sched d -> Format.fprintf fmt "S%d;" d
            | Sched_chain (a, b) -> Format.fprintf fmt "C%d+%d;" a b
            | Cancel k -> Format.fprintf fmt "X%d;" k
            | Cancel_in_cb (d, k) -> Format.fprintf fmt "XC%d@%d;" k d)))
    QCheck.Gen.(list_size (1 -- 60) gen_op)

(* Run [ops] on an engine: the trace is the list of (event tag, firing
   time in ns) in fire order. *)
let run_ops ~backend ?until ops =
  let e = Engine.create ~backend ~tick:(Time.ms 1) () in
  let trace = ref [] in
  let handles = ref [||] in
  let nh = ref 0 in
  let remember h =
    if !nh = Array.length !handles then begin
      let n = Array.make (max 8 (2 * !nh)) h in
      Array.blit !handles 0 n 0 !nh;
      handles := n
    end;
    !handles.(!nh) <- h;
    incr nh
  in
  let tag = ref 0 in
  let note id () = trace := (id, Time.to_ns (Engine.now e)) :: !trace in
  List.iter
    (fun op ->
      incr tag;
      let id = !tag in
      match op with
      | Sched d ->
        remember
          (Engine.schedule e ~at:(Time.us d) (note id))
      | Sched_chain (a, b) ->
        remember
          (Engine.schedule e ~at:(Time.us a) (fun () ->
               note id ();
               ignore
                 (Engine.schedule_after e (Time.us b) (note (id + 10_000)))))
      | Cancel k -> if !nh > 0 then Engine.cancel e !handles.(k mod !nh)
      | Cancel_in_cb (d, k) ->
        remember
          (Engine.schedule e ~at:(Time.us d) (fun () ->
               note id ();
               if !nh > 0 then Engine.cancel e !handles.(k mod !nh))))
    ops;
  Engine.run ?until e;
  (List.rev !trace, Time.to_ns (Engine.now e), Engine.pending e)

let trace_pp =
  QCheck.Print.(triple (list (pair int int)) int int)

let prop_equiv =
  QCheck.Test.make ~name:"wheel trace = heap trace" ~count:500 arb_ops
    (fun ops ->
      let h = run_ops ~backend:`Heap ops in
      let w = run_ops ~backend:`Wheel ops in
      if h <> w then
        QCheck.Test.fail_reportf "heap %s <> wheel %s" (trace_pp h) (trace_pp w)
      else true)

let prop_equiv_until =
  QCheck.Test.make ~name:"wheel = heap under run ~until + resume" ~count:300
    QCheck.(pair arb_ops (make QCheck.Gen.(int_bound 500_000)))
    (fun (ops, horizon_us) ->
      let run backend =
        (* Stop at the horizon, observe, then resume to completion —
           exercises the requeue of the first beyond-horizon event. *)
        let e = Engine.create ~backend ~tick:(Time.ms 1) () in
        let trace = ref [] in
        let tag = ref 0 in
        List.iter
          (fun op ->
            incr tag;
            let id = !tag in
            match op with
            | Sched d | Sched_chain (d, _) | Cancel_in_cb (d, _) ->
              ignore
                (Engine.schedule e ~at:(Time.us d) (fun () ->
                     trace := (id, Time.to_ns (Engine.now e)) :: !trace))
            | Cancel _ -> ())
          ops;
        Engine.run ~until:(Time.us horizon_us) e;
        let mid = (Time.to_ns (Engine.now e), Engine.pending e) in
        Engine.run e;
        (List.rev !trace, mid, Time.to_ns (Engine.now e))
      in
      run `Heap = run `Wheel)

(* Far-future events: exercise level-2 cascades and the overflow heap
   (ticks beyond 2^24 are > 4.6 simulated hours at the 1 ms tick). *)
let prop_equiv_far =
  QCheck.Test.make ~name:"wheel = heap with far-future events" ~count:50
    QCheck.(
      make
        Gen.(
          list_size (1 -- 20)
            (pair (int_bound 30_000) (int_bound 3))))
    (fun evs ->
      let run backend =
        let e = Engine.create ~backend ~tick:(Time.ms 1) () in
        let trace = ref [] in
        List.iteri
          (fun i (sec, scale) ->
            (* scale 0-3 spreads events from seconds to days *)
            let at = Time.sec (sec * int_of_float (10. ** float_of_int scale)) in
            ignore
              (Engine.schedule e ~at (fun () ->
                   trace := (i, Time.to_ns (Engine.now e)) :: !trace)))
          evs;
        Engine.run e;
        List.rev !trace
      in
      run `Heap = run `Wheel)

(* {1 Pool invariants} *)

(* No callback may run twice and no record may leak: after a run every
   allocated record is back on the freelist, however events were
   cancelled, and the fired count matches exactly. *)
let test_pool_reuse () =
  let e = Engine.create ~backend:`Wheel () in
  let fires = Array.make 200 0 in
  let handles = ref [] in
  for round = 0 to 9 do
    for i = 0 to 19 do
      let id = (round * 20) + i in
      let h =
        Engine.schedule_after e
          (Time.us ((i * 137) + 1))
          (fun () -> fires.(id) <- fires.(id) + 1)
      in
      handles := (id, h) :: !handles
    done;
    (* Cancel every third event of this round. *)
    List.iteri
      (fun j (_, h) -> if j mod 3 = 0 then Engine.cancel e h)
      (List.filteri (fun j _ -> j < 20) !handles);
    Engine.run e
  done;
  Array.iteri
    (fun id n ->
      if n > 1 then Alcotest.failf "event %d fired %d times" id n)
    fires;
  Alcotest.(check int) "no live events left" 0 (Engine.pending e);
  Alcotest.(check int)
    "every record back on the freelist" (Engine.pool_size e)
    (Engine.pool_free e);
  (* The pool stays small however many events flowed through it. *)
  Alcotest.(check bool)
    "pool bounded by peak concurrency" true
    (Engine.pool_size e <= 40)

(* Steady-state scheduling allocates nothing: after warm-up, a
   schedule/fire cycle must not grow the pool and must not allocate
   words on the OCaml minor heap. *)
let test_steady_state_no_alloc () =
  let e = Engine.create ~backend:`Wheel () in
  let fn = ignore in
  (* Warm-up: reach steady state. *)
  for _ = 1 to 1000 do
    ignore (Engine.schedule_after e (Time.us 50) fn);
    ignore (Engine.step e)
  done;
  let pool_before = Engine.pool_size e in
  let minor_before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    ignore (Engine.schedule_after e (Time.us 50) fn);
    ignore (Engine.step e)
  done;
  let per_event =
    (Gc.minor_words () -. minor_before) /. 10_000.0
  in
  Alcotest.(check int) "pool did not grow" pool_before (Engine.pool_size e);
  if per_event > 1.0 then
    Alcotest.failf "steady-state allocation: %.2f words/event" per_event

let test_stale_handle_ops_are_noops () =
  let e = Engine.create ~backend:`Wheel () in
  let fired = ref 0 in
  let h1 = Engine.schedule_after e (Time.us 1) (fun () -> incr fired) in
  Engine.run e;
  (* h1's record is now recycled into h2. *)
  let h2 = Engine.schedule_after e (Time.us 1) (fun () -> incr fired) in
  Engine.cancel e h1;
  (* Cancelling the stale h1 must not kill h2. *)
  Alcotest.(check int) "h2 still pending" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "both fired" 2 !fired;
  Alcotest.(check bool) "h2 fired" true (Engine.fired e h2)

let suite =
  [
    Util.qcheck prop_equiv;
    Util.qcheck prop_equiv_until;
    Util.qcheck prop_equiv_far;
    Alcotest.test_case "pool reuse invariants" `Quick test_pool_reuse;
    Alcotest.test_case "steady state allocates nothing" `Quick
      test_steady_state_no_alloc;
    Alcotest.test_case "stale handles are no-ops" `Quick
      test_stale_handle_ops_are_noops;
  ]
