open Kpath_sim
open Kpath_proc
open Kpath_net

let make_net () =
  let engine = Engine.create () in
  let sched = Sched.create engine in
  let intr ~service fn = Sched.interrupt sched ~service fn in
  let net = Netif.create_net ~bandwidth:1.25e6 ~latency:(Time.us 100) engine in
  (engine, sched, intr, net)

let test_delivery () =
  let engine, _, intr, net = make_net () in
  let a = Netif.attach net ~name:"a" ~intr () in
  let b = Netif.attach net ~name:"b" ~intr () in
  let sa = Udp.create a ~port:1000 () in
  let sb = Udp.create b ~port:2000 () in
  let payload = Bytes.of_string "datagram payload" in
  Udp.sendto sa ~dst:(Udp.addr sb) payload;
  Engine.run engine;
  (match Udp.try_recv sb with
   | Some dg ->
     Alcotest.(check bytes) "payload" payload dg.Udp.d_payload;
     Alcotest.(check int) "source port" 1000 dg.Udp.d_from.Udp.a_port
   | None -> Alcotest.fail "nothing delivered");
  Alcotest.(check int) "tx counted" 1 (Stats.get (Netif.stats a) "netif.tx");
  Alcotest.(check int) "rx counted" 1 (Stats.get (Netif.stats b) "netif.rx")

let test_transmission_takes_time () =
  let engine, _, intr, net = make_net () in
  let a = Netif.attach net ~name:"a" ~intr () in
  let b = Netif.attach net ~name:"b" ~intr () in
  let sa = Udp.create a ~port:1 () in
  let sb = Udp.create b ~port:2 () in
  let arrived = ref Time.zero in
  Udp.set_upcall sb (Some (fun _ -> arrived := Engine.now engine));
  Udp.sendto sa ~dst:(Udp.addr sb) (Bytes.create 8000);
  Engine.run engine;
  (* 8042 wire bytes at 1.25 MB/s ~ 6.4 ms, plus 0.1 ms latency. *)
  let t = Time.to_us_f !arrived in
  if t < 6000.0 || t > 8000.0 then Alcotest.failf "arrival at %.0fus" t

let test_tx_serialized () =
  let engine, _, intr, net = make_net () in
  let a = Netif.attach net ~name:"a" ~intr () in
  let b = Netif.attach net ~name:"b" ~intr () in
  let sa = Udp.create a ~port:1 () in
  let sb = Udp.create b ~port:2 () in
  let arrivals = ref [] in
  Udp.set_upcall sb (Some (fun _ -> arrivals := Engine.now engine :: !arrivals));
  for _ = 1 to 3 do
    Udp.sendto sa ~dst:(Udp.addr sb) (Bytes.create 1208)
  done;
  Engine.run engine;
  (* 1250 wire bytes = 1 ms each, serialized: 1, 2, 3 ms (+latency). *)
  (match List.rev !arrivals with
   | [ t1; t2; t3 ] ->
     Alcotest.check Util.time "gap 1-2" (Time.ms 1) (Time.diff t2 t1);
     Alcotest.check Util.time "gap 2-3" (Time.ms 1) (Time.diff t3 t2)
   | _ -> Alcotest.fail "expected 3 arrivals")

let test_socket_buffer_overflow_drops () =
  let engine, _, intr, net = make_net () in
  let a = Netif.attach net ~name:"a" ~intr () in
  let b = Netif.attach net ~name:"b" ~intr () in
  let sa = Udp.create a ~port:1 () in
  let sb = Udp.create b ~port:2 ~rcvbuf:4096 () in
  for _ = 1 to 4 do
    Udp.sendto sa ~dst:(Udp.addr sb) (Bytes.create 2000)
  done;
  Engine.run engine;
  Alcotest.(check int) "two fit" 2 (Udp.pending sb);
  Alcotest.(check int) "two dropped" 2 (Udp.drops sb)

let test_blocking_recv () =
  let engine, sched, intr, net = make_net () in
  let a = Netif.attach net ~name:"a" ~intr () in
  let b = Netif.attach net ~name:"b" ~intr () in
  let sa = Udp.create a ~port:1 () in
  let sb = Udp.create b ~port:2 () in
  let got = ref None in
  let _receiver =
    Sched.spawn sched ~name:"rx" (fun () -> got := Udp.recv sb)
  in
  ignore
    (Engine.schedule engine ~at:(Time.ms 5) (fun () ->
         Udp.sendto sa ~dst:(Udp.addr sb) (Bytes.of_string "late")));
  Engine.run engine;
  Sched.check_deadlock sched;
  (match !got with
   | Some dg -> Alcotest.(check string) "got it" "late" (Bytes.to_string dg.Udp.d_payload)
   | None -> Alcotest.fail "recv returned None")

let test_close_wakes_receiver () =
  let engine, sched, intr, net = make_net () in
  let a = Netif.attach net ~name:"a" ~intr () in
  let sa = Udp.create a ~port:1 () in
  let got = ref (Some { Udp.d_from = Udp.addr sa; d_payload = Bytes.empty }) in
  let _receiver = Sched.spawn sched ~name:"rx" (fun () -> got := Udp.recv sa) in
  ignore (Engine.schedule engine ~at:(Time.ms 1) (fun () -> Udp.close sa));
  Engine.run engine;
  Sched.check_deadlock sched;
  Alcotest.(check bool) "None on close" true (!got = None)

let test_port_collision () =
  let _, _, intr, net = make_net () in
  let a = Netif.attach net ~name:"a" ~intr () in
  let _s = Udp.create a ~port:7 () in
  Alcotest.check_raises "port in use" (Invalid_argument "Udp.create: port 7 in use")
    (fun () -> ignore (Udp.create a ~port:7 ()))

let test_unknown_port_dropped () =
  let engine, _, intr, net = make_net () in
  let a = Netif.attach net ~name:"a" ~intr () in
  let b = Netif.attach net ~name:"b" ~intr () in
  let sa = Udp.create a ~port:1 () in
  let sb = Udp.create b ~port:2 () in
  Udp.sendto sa ~dst:{ Udp.a_if = Netif.id b; a_port = 999 } (Bytes.create 10);
  Engine.run engine;
  Alcotest.(check int) "nothing queued" 0 (Udp.pending sb)

let test_mtu_enforced () =
  let _, _, intr, net = make_net () in
  let a = Netif.attach net ~name:"a" ~intr () in
  let b = Netif.attach net ~name:"b" ~intr () in
  let sa = Udp.create a ~port:1 () in
  Alcotest.check_raises "mtu" (Invalid_argument "Netif.send: payload exceeds MTU")
    (fun () ->
      Udp.sendto sa
        ~dst:{ Udp.a_if = Netif.id b; a_port = 2 }
        (Bytes.create 20_000))

let test_upcall_drains_queue () =
  let engine, _, intr, net = make_net () in
  let a = Netif.attach net ~name:"a" ~intr () in
  let b = Netif.attach net ~name:"b" ~intr () in
  let sa = Udp.create a ~port:1 () in
  let sb = Udp.create b ~port:2 () in
  Udp.sendto sa ~dst:(Udp.addr sb) (Bytes.of_string "queued");
  Engine.run engine;
  Alcotest.(check int) "buffered" 1 (Udp.pending sb);
  let seen = ref 0 in
  Udp.set_upcall sb (Some (fun _ -> incr seen));
  Alcotest.(check int) "drained into upcall" 1 !seen;
  Alcotest.(check int) "queue empty" 0 (Udp.pending sb)

(* Steady-state pooled forwarding allocates nothing per delivered
   segment: after warm-up, an alloc_frame / transmit / deliver /
   recycle cycle must neither grow the frame pool nor allocate words
   on the OCaml minor heap. This is the memory half of the
   million-client budget — per-segment garbage at N clients x K
   segments would dominate the heap. *)
let test_pooled_steady_state_no_alloc () =
  let engine = Engine.create () in
  let net = Netif.create_net engine in
  let a = Netif.attach net ~name:"a" ~intr:Util.free_intr () in
  let b = Netif.attach net ~name:"b" ~intr:Util.free_intr () in
  let dst = Netif.id b in
  let send_one () =
    let fr = Netif.alloc_frame net in
    fr.Netif.f_dst <- dst;
    fr.Netif.f_proto <- 6;
    fr.Netif.f_port_src <- 1;
    fr.Netif.f_port_dst <- 2;
    fr.Netif.f_payload <- fr.Netif.f_hdr;
    fr.Netif.f_len <- 21;
    Netif.transmit a fr
  in
  (* Each delivery triggers the next transmission, so one Engine.run
     drives the whole chain — the measured region is purely the
     per-frame path. *)
  let delivered = ref 0 in
  let remaining = ref 256 in
  Netif.set_proto_rx b ~proto:6 (fun fr ->
      delivered := !delivered + Netif.frame_bytes fr;
      if !remaining > 0 then begin
        decr remaining;
        send_one ()
      end);
  send_one ();
  Engine.run engine;
  let pool_before = Netif.pool_size net in
  let minor_before = Gc.minor_words () in
  remaining := 10_000;
  send_one ();
  Engine.run engine;
  let per_frame = (Gc.minor_words () -. minor_before) /. 10_001.0 in
  Alcotest.(check int) "pool did not grow" pool_before (Netif.pool_size net);
  Alcotest.(check int) "all delivered" ((257 + 10_001) * 21) !delivered;
  if per_frame > 0.01 then
    Alcotest.failf "steady-state allocation: %.2f words/frame" per_frame

let suite =
  [
    Alcotest.test_case "delivery" `Quick test_delivery;
    Alcotest.test_case "transmission time" `Quick test_transmission_takes_time;
    Alcotest.test_case "tx serialization" `Quick test_tx_serialized;
    Alcotest.test_case "rcvbuf overflow drops" `Quick test_socket_buffer_overflow_drops;
    Alcotest.test_case "blocking recv" `Quick test_blocking_recv;
    Alcotest.test_case "close wakes receiver" `Quick test_close_wakes_receiver;
    Alcotest.test_case "port collision" `Quick test_port_collision;
    Alcotest.test_case "unknown port drop" `Quick test_unknown_port_dropped;
    Alcotest.test_case "MTU enforcement" `Quick test_mtu_enforced;
    Alcotest.test_case "upcall drains queue" `Quick test_upcall_drains_queue;
    Alcotest.test_case "pooled steady state allocates nothing" `Quick
      test_pooled_steady_state_no_alloc;
  ]
