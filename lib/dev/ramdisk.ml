open Kpath_sim

type arbiter = { mutable busy_until : Time.t }

let arbiter () = { busy_until = Time.zero }

type t = {
  name : string;
  copy_rate : float;
  block_size : int;
  nblocks : int;
  engine : Engine.t;
  intr : Blkdev.intr;
  store : bytes; (* the "BSS region": one flat arena *)
  arb : arbiter; (* bcopies are serialised on the one CPU *)
  charge_in_context : Time.span -> bool;
  mutable poisoned : int list;
  mutable serviced : int;
  stats : Stats.t;
  mutable dev : Blkdev.t option;
}

let transfer t (req : Blkdev.req) =
  let off = req.r_blkno * t.block_size in
  if req.r_write then Bytes.blit req.r_data 0 t.store off req.r_count
  else Bytes.blit t.store off req.r_data 0 req.r_count

(* One-shot, but only a single-block request consumes the poison: a
   failed multi-block transfer leaves it in place so the cluster layer's
   single-block breakup retries still hit it (see Disk.poisoned_hit). *)
let poisoned_hit t (req : Blkdev.req) =
  let nblk = req.r_count / t.block_size in
  let in_range b = b >= req.r_blkno && b < req.r_blkno + nblk in
  let hit = List.exists in_range t.poisoned in
  if hit && nblk = 1 then
    t.poisoned <- List.filter (fun b -> not (in_range b)) t.poisoned;
  hit

let create ~name ~copy_rate ~block_size ~nblocks ?arbiter:arb
    ?(charge_in_context = fun _ -> false) ~engine ~intr () =
  if block_size <= 0 || nblocks <= 0 then invalid_arg "Ramdisk.create: bad geometry";
  let t =
    {
      name;
      copy_rate;
      block_size;
      nblocks;
      engine;
      intr;
      store = Bytes.make (block_size * nblocks) '\000';
      arb = (match arb with Some a -> a | None -> arbiter ());
      charge_in_context;
      poisoned = [];
      serviced = 0;
      stats = Stats.create ();
      dev = None;
    }
  in
  let rec dev =
    {
      Blkdev.dv_name = name;
      dv_id = Blkdev.next_id ();
      dv_block_size = block_size;
      dv_nblocks = nblocks;
      dv_strategy =
        (fun req ->
          Blkdev.check_req dev req;
          Stats.incr
            (Stats.counter t.stats
               (if req.r_write then "ramdisk.writes" else "ramdisk.reads"));
          let copy_time =
            Time.span_of_bytes ~bytes_per_sec:t.copy_rate req.r_count
          in
          let finish () =
            let error =
              if poisoned_hit t req then
                Some (Blkdev.Io_error (t.name ^ ": hard error"))
              else begin
                transfer t req;
                None
              end
            in
            t.serviced <- t.serviced + 1;
            req.r_done error
          in
          if t.charge_in_context copy_time then
            (* The bcopy ran synchronously in the calling process (time
               already consumed). Deliver the completion from the event
               loop so that r_done is never called re-entrantly from
               within strategy — callers may still be tagging the
               request (the bread_nb contract). *)
            ignore (Engine.schedule t.engine ~at:(Engine.now t.engine) finish)
          else begin
            (* Interrupt-level bcopy: steals the CPU; overlapping
               requests queue behind the one in progress. *)
            let start = Time.max (Engine.now t.engine) t.arb.busy_until in
            let done_at = Time.add start copy_time in
            t.arb.busy_until <- done_at;
            t.intr ~service:copy_time (fun () -> ());
            ignore (Engine.schedule t.engine ~at:done_at finish)
          end);
      dv_pending = (fun () -> 0);
      dv_stats = t.stats;
    }
  in
  t.dev <- Some dev;
  t

let blkdev t = Option.get t.dev

let read_block_direct t blkno =
  if blkno < 0 || blkno >= t.nblocks then invalid_arg "Ramdisk.read_block_direct";
  Bytes.sub t.store (blkno * t.block_size) t.block_size

let inject_error t ~blkno = t.poisoned <- blkno :: t.poisoned

let serviced t = t.serviced
