(** Block allocation bitmap.

    Pure bitmap operations over the in-core copy of the on-disk bitmap;
    {!Fs} persists it. One bit per filesystem block, set = allocated.
    Allocation scans forward from a cursor, so files written sequentially
    get contiguous physical blocks — matching FFS's locality goal and
    letting the disk model's sequential-stream optimisations engage. *)

type t
(** An allocator over a bitmap. *)

val create : nblocks:int -> t
(** All-free bitmap of [nblocks] bits. *)

val of_bytes : nblocks:int -> bytes -> t
(** Adopt an on-disk bitmap image (copied). *)

val to_bytes : t -> bytes
(** Serialize (copy) for writing out. *)

val nblocks : t -> int

val is_allocated : t -> int -> bool
(** Test one block. Raises [Invalid_argument] out of range. *)

val set_allocated : t -> int -> unit
(** Mark a block allocated (used by mkfs for metadata). Raises
    [Invalid_argument] if already allocated. *)

val alloc : t -> int option
(** Allocate the next free block at or after the cursor (wrapping),
    advancing the cursor; [None] when full. *)

val free : t -> int -> unit
(** Release a block. Raises [Invalid_argument] if it was free. *)

val free_count : t -> int
(** Number of free blocks. *)

val used_count : t -> int
(** Number of allocated blocks. *)
