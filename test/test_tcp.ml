open Kpath_sim
open Kpath_proc
open Kpath_net

(* Rig: two interfaces on one segment, a scheduler to run client and
   server processes. *)
let with_net ?bandwidth ?loss body =
  let engine = Engine.create () in
  let sched = Sched.create engine in
  let intr ~service fn = Sched.interrupt sched ~service fn in
  let net = Netif.create_net ?bandwidth ~latency:(Time.us 100) engine in
  (match loss with Some p -> Netif.set_loss net p | None -> ());
  let a = Netif.attach net ~name:"a" ~intr () in
  let b = Netif.attach net ~name:"b" ~intr () in
  let r = body ~engine ~sched ~net ~a ~b in
  Engine.run engine;
  Sched.check_deadlock sched;
  r

let pattern n = Bytes.init n (fun i -> Char.chr ((i * 7 + 3) land 0xff))

(* Echo-less sink server: accept, read everything, record it. *)
let spawn_sink sched l received =
  Sched.spawn sched ~name:"server" (fun () ->
      let c = Tcp.accept l in
      let buf = Bytes.create 4096 in
      let rec drain () =
        let n = Tcp.recv c buf ~pos:0 ~len:4096 in
        if n > 0 then begin
          Buffer.add_subbytes received buf 0 n;
          drain ()
        end
      in
      drain ())

let transfer ?bandwidth ?loss total =
  let received = Buffer.create total in
  let sent = pattern total in
  let client_done = ref false in
  with_net ?bandwidth ?loss (fun ~engine:_ ~sched ~net:_ ~a ~b ->
      let l = Tcp.listen b ~port:80 () in
      let _srv = spawn_sink sched l received in
      let _cli =
        Sched.spawn sched ~name:"client" (fun () ->
            let c =
              Tcp.connect a ~port:1234
                ~dst:{ Tcp.a_if = Netif.id b; a_port = 80 }
                ()
            in
            let rec push off =
              if off < total then begin
                let n = min 8000 (total - off) in
                Tcp.send c sent ~pos:off ~len:n;
                push (off + n)
              end
            in
            push 0;
            Tcp.close c;
            client_done := true)
      in
      ());
  Alcotest.(check bool) "client finished" true !client_done;
  Alcotest.(check int) "all bytes delivered" total (Buffer.length received);
  Alcotest.(check bytes) "byte-exact" sent (Buffer.to_bytes received)

let test_handshake_and_small_transfer () = transfer 1000

let test_large_transfer () = transfer (512 * 1024)

let test_transfer_with_loss () = transfer ~loss:0.05 (128 * 1024)

let test_heavy_loss () = transfer ~loss:0.2 (32 * 1024)

let test_retransmit_counted () =
  let received = Buffer.create 1024 in
  let retx = ref 0 in
  with_net ~loss:0.1 (fun ~engine:_ ~sched ~net:_ ~a ~b ->
      let l = Tcp.listen b ~port:80 () in
      let _srv = spawn_sink sched l received in
      let _cli =
        Sched.spawn sched ~name:"client" (fun () ->
            let c =
              Tcp.connect a ~port:1 ~dst:{ Tcp.a_if = Netif.id b; a_port = 80 } ()
            in
            Tcp.send c (pattern 65536) ~pos:0 ~len:65536;
            Tcp.close c;
            retx := Tcp.retransmits c)
      in
      ());
  Alcotest.(check int) "delivered" 65536 (Buffer.length received);
  Alcotest.(check bool) "recovered through retransmission" true (!retx > 0)

let test_eof_semantics () =
  let eof_seen = ref (-1) in
  with_net (fun ~engine:_ ~sched ~net:_ ~a ~b ->
      let l = Tcp.listen b ~port:80 () in
      let _srv =
        Sched.spawn sched ~name:"server" (fun () ->
            let c = Tcp.accept l in
            let buf = Bytes.create 64 in
            let n1 = Tcp.recv c buf ~pos:0 ~len:64 in
            let n2 = Tcp.recv c buf ~pos:0 ~len:64 in
            eof_seen := if n2 = 0 && n1 > 0 then 1 else 0)
      in
      let _cli =
        Sched.spawn sched ~name:"client" (fun () ->
            let c =
              Tcp.connect a ~port:1 ~dst:{ Tcp.a_if = Netif.id b; a_port = 80 } ()
            in
            Tcp.send c (Bytes.of_string "bye") ~pos:0 ~len:3;
            Tcp.close c)
      in
      ());
  Alcotest.(check int) "data then clean EOF" 1 !eof_seen

let test_backpressure_slow_reader () =
  (* The reader consumes slowly; the writer must be throttled by the
     window, never overrunning the receive buffer, and everything still
     arrives intact. *)
  let total = 256 * 1024 in
  let received = Buffer.create total in
  let sent = pattern total in
  with_net (fun ~engine:_ ~sched ~net:_ ~a ~b ->
      let l = Tcp.listen b ~port:80 () in
      let _srv =
        Sched.spawn sched ~name:"server" (fun () ->
            let c = Tcp.accept l in
            let buf = Bytes.create 2048 in
            let rec drain () =
              let n = Tcp.recv c buf ~pos:0 ~len:2048 in
              if n > 0 then begin
                Buffer.add_subbytes received buf 0 n;
                Sched.sleep sched (Time.ms 2);
                drain ()
              end
            in
            drain ())
      in
      let _cli =
        Sched.spawn sched ~name:"client" (fun () ->
            let c =
              Tcp.connect a ~port:1 ~dst:{ Tcp.a_if = Netif.id b; a_port = 80 } ()
            in
            Tcp.send c sent ~pos:0 ~len:total;
            Tcp.close c)
      in
      ());
  Alcotest.(check int) "all delivered despite pacing" total (Buffer.length received);
  Alcotest.(check bytes) "intact" sent (Buffer.to_bytes received)

let test_send_async_backpressure () =
  (* send_async completions are paced by the send buffer (64 KB): queue
     256 KB at once and count completions over time. *)
  let completions = ref 0 in
  let received = Buffer.create 1024 in
  with_net (fun ~engine:_ ~sched ~net:_ ~a ~b ->
      let l = Tcp.listen b ~port:80 () in
      let _srv = spawn_sink sched l received in
      let _cli =
        Sched.spawn sched ~name:"client" (fun () ->
            let c =
              Tcp.connect a ~port:1 ~dst:{ Tcp.a_if = Netif.id b; a_port = 80 } ()
            in
            let chunk = pattern 32768 in
            for _ = 1 to 8 do
              Tcp.send_async c chunk ~pos:0 ~len:32768 (fun () -> incr completions)
            done;
            (* Not everything fits the 64 KB send buffer at once. *)
            Alcotest.(check bool) "backpressured" true (!completions < 8);
            (* Wait for the stream to drain, then close. *)
            let rec wait () =
              if !completions < 8 then begin
                Sched.sleep sched (Time.ms 50);
                wait ()
              end
            in
            wait ();
            Tcp.close c)
      in
      ());
  Alcotest.(check int) "all writers completed" 8 !completions;
  Alcotest.(check int) "all delivered" (8 * 32768) (Buffer.length received)

let test_bidirectional () =
  let to_server = Buffer.create 64 and to_client = Buffer.create 64 in
  with_net (fun ~engine:_ ~sched ~net:_ ~a ~b ->
      let l = Tcp.listen b ~port:80 () in
      let _srv =
        Sched.spawn sched ~name:"server" (fun () ->
            let c = Tcp.accept l in
            let buf = Bytes.create 64 in
            let n = Tcp.recv c buf ~pos:0 ~len:64 in
            Buffer.add_subbytes to_server buf 0 n;
            Tcp.send c (Bytes.of_string "pong") ~pos:0 ~len:4;
            Tcp.close c)
      in
      let _cli =
        Sched.spawn sched ~name:"client" (fun () ->
            let c =
              Tcp.connect a ~port:1 ~dst:{ Tcp.a_if = Netif.id b; a_port = 80 } ()
            in
            Tcp.send c (Bytes.of_string "ping") ~pos:0 ~len:4;
            let buf = Bytes.create 64 in
            let n = Tcp.recv c buf ~pos:0 ~len:64 in
            Buffer.add_subbytes to_client buf 0 n;
            Tcp.close c)
      in
      ());
  Alcotest.(check string) "c->s" "ping" (Buffer.contents to_server);
  Alcotest.(check string) "s->c" "pong" (Buffer.contents to_client)

let test_connect_timeout () =
  (* No listener: the SYN is never answered and connect gives up. *)
  let failed = ref false in
  with_net (fun ~engine:_ ~sched ~net:_ ~a ~b ->
      let _cli =
        Sched.spawn sched ~name:"client" (fun () ->
            match
              Tcp.connect a ~port:1 ~dst:{ Tcp.a_if = Netif.id b; a_port = 9999 } ()
            with
            | _ -> ()
            | exception Failure _ -> failed := true)
      in
      ());
  Alcotest.(check bool) "connect timed out" true !failed

let test_listen_port_collision () =
  with_net (fun ~engine:_ ~sched:_ ~net:_ ~a ~b:_ ->
      let _l = Tcp.listen a ~port:7 () in
      Alcotest.check_raises "collision"
        (Invalid_argument "Tcp.listen: port 7 in use") (fun () ->
          ignore (Tcp.listen a ~port:7 ())))

let test_send_after_close_rejected () =
  with_net (fun ~engine:_ ~sched ~net:_ ~a ~b ->
      let l = Tcp.listen b ~port:80 () in
      let received = Buffer.create 16 in
      let _srv = spawn_sink sched l received in
      let _cli =
        Sched.spawn sched ~name:"client" (fun () ->
            let c =
              Tcp.connect a ~port:1 ~dst:{ Tcp.a_if = Netif.id b; a_port = 80 } ()
            in
            Tcp.close c;
            match Tcp.send_async c (Bytes.create 1) ~pos:0 ~len:1 (fun () -> ()) with
            | () -> Alcotest.fail "send after close accepted"
            | exception Invalid_argument _ -> ())
      in
      ());
  ()

let prop_lossy_transfer_integrity =
  QCheck.Test.make ~name:"tcp delivers byte-exact streams under loss" ~count:15
    QCheck.(pair (int_range 1 100_000) (int_range 0 25))
    (fun (total, loss_pct) ->
      let received = Buffer.create total in
      let sent = pattern total in
      with_net ~loss:(float_of_int loss_pct /. 100.0)
        (fun ~engine:_ ~sched ~net:_ ~a ~b ->
          let l = Tcp.listen b ~port:80 () in
          let _srv = spawn_sink sched l received in
          let _cli =
            Sched.spawn sched ~name:"client" (fun () ->
                let c =
                  Tcp.connect a ~port:1
                    ~dst:{ Tcp.a_if = Netif.id b; a_port = 80 }
                    ()
                in
                Tcp.send c sent ~pos:0 ~len:total;
                Tcp.close c)
          in
          ());
      Buffer.length received = total && Buffer.to_bytes received = sent)

let test_congestion_and_rtt () =
  let received = Buffer.create 1024 in
  let cwnd_after = ref 0 and srtt_after = ref None and rto_after = ref Time.zero in
  with_net (fun ~engine:_ ~sched ~net ~a ~b ->
      let l = Tcp.listen b ~port:80 () in
      let _srv = spawn_sink sched l received in
      let _cli =
        Sched.spawn sched ~name:"client" (fun () ->
            let c =
              Tcp.connect a ~port:1 ~dst:{ Tcp.a_if = Netif.id b; a_port = 80 } ()
            in
            Alcotest.(check int) "initial cwnd = 2 MSS" (2 * Tcp.mss net)
              (Tcp.cwnd c);
            Tcp.send c (pattern 200_000) ~pos:0 ~len:200_000;
            cwnd_after := Tcp.cwnd c;
            srtt_after := Tcp.srtt c;
            rto_after := Tcp.rto c;
            Tcp.close c)
      in
      ());
  Alcotest.(check bool) "slow start grew the window" true
    (!cwnd_after > 4 * 8000);
  (match !srtt_after with
   | Some s -> Alcotest.(check bool) "plausible srtt" true (s > 0.0 && s < 1.0)
   | None -> Alcotest.fail "no RTT sample taken");
  Alcotest.(check bool) "rto adapted below the initial 200ms" true
    Time.(!rto_after < Time.ms 200)

let test_loss_shrinks_cwnd () =
  let received = Buffer.create 1024 in
  let max_cwnd = ref 0 and final_cwnd = ref max_int in
  with_net ~loss:0.08 (fun ~engine:_ ~sched ~net:_ ~a ~b ->
      let l = Tcp.listen b ~port:80 () in
      let _srv = spawn_sink sched l received in
      let _cli =
        Sched.spawn sched ~name:"client" (fun () ->
            let c =
              Tcp.connect a ~port:1 ~dst:{ Tcp.a_if = Netif.id b; a_port = 80 } ()
            in
            let chunk = pattern 20_000 in
            for _ = 1 to 10 do
              Tcp.send c chunk ~pos:0 ~len:20_000;
              max_cwnd := max !max_cwnd (Tcp.cwnd c)
            done;
            final_cwnd := Tcp.cwnd c;
            Tcp.close c)
      in
      ());
  Alcotest.(check int) "all delivered" 200_000 (Buffer.length received);
  Alcotest.(check bool) "loss cut the window below its peak" true
    (!final_cwnd < !max_cwnd)

let test_sendfile_modes () =
  List.iter
    (fun (mode, loss) ->
      let r =
        Kpath_workloads.Experiments.measure_sendfile ~mode
          ~file_bytes:(512 * 1024) ~loss ()
      in
      Alcotest.(check bool) "verified" true
        r.Kpath_workloads.Experiments.sf_verified)
    [ (`ReadWrite, 0.0); (`Sendfile, 0.0); (`Sendfile, 0.05) ]

let test_sendfile_cpu_advantage () =
  let rw =
    Kpath_workloads.Experiments.measure_sendfile ~mode:`ReadWrite
      ~file_bytes:(1024 * 1024) ()
  in
  let sf =
    Kpath_workloads.Experiments.measure_sendfile ~mode:`Sendfile
      ~file_bytes:(1024 * 1024) ()
  in
  Alcotest.(check bool) "both verified" true
    (rw.Kpath_workloads.Experiments.sf_verified
    && sf.Kpath_workloads.Experiments.sf_verified);
  Alcotest.(check bool) "splice far cheaper on the server" true
    (sf.Kpath_workloads.Experiments.sf_server_cpu_sec
    < 0.5 *. rw.Kpath_workloads.Experiments.sf_server_cpu_sec)

(* One payload fanned out to two sinks over send_view is freed exactly
   once — when the last reference (the two conns' chunk chains plus the
   creator's) drops — and its bytes arrive intact at both. *)
let test_shared_payload_freed_once () =
  let engine = Engine.create () in
  let sched = Sched.create engine in
  let intr ~service fn = Sched.interrupt sched ~service fn in
  let net = Netif.create_net ~switched:true engine in
  let srv = Netif.attach net ~name:"srv" ~intr () in
  let total = 24 * 1024 in
  let sent = pattern total in
  let pl = Payload.of_bytes (Bytes.copy sent) in
  let freed = ref 0 in
  Payload.on_free pl (fun () -> incr freed);
  let l = Tcp.listen srv ~port:80 () in
  Tcp.on_accept l (fun conn ->
      Tcp.send_view conn pl ~pos:0 ~len:total (fun () -> Tcp.shutdown conn));
  let got = Array.init 2 (fun _ -> Buffer.create total) in
  for i = 0 to 1 do
    let cli = Netif.attach net ~name:(Printf.sprintf "c%d" i) ~intr () in
    ignore
      (Tcp.connect_async cli ~port:1000
         ~dst:{ Tcp.a_if = Netif.id srv; a_port = 80 }
         ~rcv_hook:(fun data ~pos ~len -> Buffer.add_subbytes got.(i) data pos len)
         ())
  done;
  Engine.run engine;
  Alcotest.(check int) "sink 0 complete" total (Buffer.length got.(0));
  Alcotest.(check int) "sink 1 complete" total (Buffer.length got.(1));
  Alcotest.(check bytes) "sink 0 intact" sent (Buffer.to_bytes got.(0));
  Alcotest.(check bytes) "sink 1 intact" sent (Buffer.to_bytes got.(1));
  (* Both chains have drained: only the creator's reference is left. *)
  Alcotest.(check int) "chains released their views" 1 (Payload.refs pl);
  Alcotest.(check int) "not freed while referenced" 0 !freed;
  Payload.release pl;
  Alcotest.(check int) "freed exactly once" 1 !freed;
  Alcotest.(check int) "free counted" 1 (Payload.frees pl);
  Alcotest.check_raises "refcount is fail-fast"
    (Invalid_argument "Payload.release: already freed") (fun () ->
      Payload.release pl)

let suite =
  [
    Alcotest.test_case "handshake + small transfer" `Quick test_handshake_and_small_transfer;
    Alcotest.test_case "large transfer" `Quick test_large_transfer;
    Alcotest.test_case "transfer with 5% loss" `Quick test_transfer_with_loss;
    Alcotest.test_case "transfer with 20% loss" `Quick test_heavy_loss;
    Alcotest.test_case "retransmissions counted" `Quick test_retransmit_counted;
    Alcotest.test_case "EOF semantics" `Quick test_eof_semantics;
    Alcotest.test_case "slow-reader backpressure" `Quick test_backpressure_slow_reader;
    Alcotest.test_case "send_async backpressure" `Quick test_send_async_backpressure;
    Alcotest.test_case "bidirectional" `Quick test_bidirectional;
    Alcotest.test_case "connect timeout" `Quick test_connect_timeout;
    Alcotest.test_case "listen collision" `Quick test_listen_port_collision;
    Alcotest.test_case "send after close" `Quick test_send_after_close_rejected;
    Util.qcheck prop_lossy_transfer_integrity;
    Alcotest.test_case "congestion window and RTT" `Quick test_congestion_and_rtt;
    Alcotest.test_case "loss shrinks cwnd" `Quick test_loss_shrinks_cwnd;
    Alcotest.test_case "sendfile verified (incl. loss)" `Quick test_sendfile_modes;
    Alcotest.test_case "sendfile CPU advantage" `Quick test_sendfile_cpu_advantage;
    Alcotest.test_case "shared payload freed exactly once" `Quick
      test_shared_payload_freed_once;
  ]
