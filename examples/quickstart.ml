(* Quickstart: build a machine, make two filesystems, write a file and
   splice-copy it — the complete public-API tour in ~60 lines.

   Run with: dune exec examples/quickstart.exe *)

open Kpath_sim
open Kpath_kernel

let () =
  (* A DECstation 5000/200-class machine. *)
  let m = Machine.create () in

  (* Two RZ58 disks, each with a fresh filesystem. *)
  let d0 = Machine.make_drive m ~name:"rz58-0" ~kind:`Rz58 () in
  let d1 = Machine.make_drive m ~name:"rz58-1" ~kind:`Rz58 () in

  (* Everything interacting with devices runs inside a simulated
     process. *)
  let _init =
    Machine.spawn m ~name:"init" (fun () ->
        let fs0 =
          Kpath_fs.Fs.mkfs ~cache:(Machine.cache m) (Machine.blkdev d0)
            ~ninodes:64
        in
        let fs1 =
          Kpath_fs.Fs.mkfs ~cache:(Machine.cache m) (Machine.blkdev d1)
            ~ninodes:64
        in
        Machine.mount m "/a" fs0;
        Machine.mount m "/b" fs1;

        let env = Syscall.make_env m in

        (* Create a 1 MB source file through ordinary writes. *)
        let fd = Syscall.openf env "/a/data" [ Syscall.O_CREAT; Syscall.O_WRONLY ] in
        let chunk = Bytes.create 65536 in
        for i = 0 to 15 do
          Kpath_workloads.Programs.fill_pattern chunk ~file_off:(i * 65536);
          ignore (Syscall.write env fd chunk ~pos:0 ~len:65536)
        done;
        Syscall.fsync env fd;
        Syscall.close env fd;

        (* splice(2): move it to the other disk inside the kernel. *)
        let sfd = Syscall.openf env "/a/data" [ Syscall.O_RDONLY ] in
        let dfd = Syscall.openf env "/b/copy" [ Syscall.O_CREAT; Syscall.O_WRONLY ] in
        let t0 = Machine.now m in
        let n = Syscall.splice env ~src:sfd ~dst:dfd Syscall.splice_eof in
        let dt = Time.diff (Machine.now m) t0 in
        Syscall.close env sfd;
        Syscall.close env dfd;
        Format.printf "spliced %d bytes in %a (%.0f KB/s simulated)@." n
          Time.pp dt
          (Time.rate_bytes_per_sec ~bytes:n dt /. 1024.);

        (* Read the copy back and verify. *)
        let rfd = Syscall.openf env "/b/copy" [ Syscall.O_RDONLY ] in
        let ok = ref true in
        let off = ref 0 in
        let rec check () =
          let got = Syscall.read env rfd chunk ~pos:0 ~len:65536 in
          if got > 0 then begin
            for i = 0 to got - 1 do
              if Bytes.get chunk i <> Kpath_workloads.Programs.pattern_byte (!off + i)
              then ok := false
            done;
            off := !off + got;
            check ()
          end
        in
        check ();
        Syscall.close env rfd;
        Format.printf "verification: %s (%d bytes)@."
          (if !ok then "OK" else "CORRUPT") !off)
  in
  Machine.run m;
  let cpu = Kpath_proc.Sched.cpu (Machine.sched m) in
  Format.printf "CPU: %a@." Kpath_proc.Cpu.pp cpu
