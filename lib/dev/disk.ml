open Kpath_sim

type geometry = {
  avg_seek : Time.span;
  avg_rot_latency : Time.span;
  media_rate : float;
  bus_rate : float;
  readahead_bytes : int;
  readahead_segments : int;
}

(* Figures from DEC's RZ-series documentation as quoted in the paper's
   §6.1. Bus rate is a conservative synchronous-SCSI figure for the
   DECstation's 5394 controller. *)
let rz56 =
  {
    avg_seek = Time.ms 16;
    avg_rot_latency = Time.of_us_f 8300.0;
    media_rate = 1.66e6;
    bus_rate = 4.0e6;
    readahead_bytes = 64 * 1024;
    readahead_segments = 1;
  }

let rz58 =
  {
    avg_seek = Time.of_us_f 12500.0;
    avg_rot_latency = Time.of_us_f 5600.0;
    media_rate = 2.1e6;
    bus_rate = 4.0e6;
    readahead_bytes = 256 * 1024;
    readahead_segments = 4;
  }

(* One on-board cache segment: a sequential read stream the drive is
   following. [next_blk] is the block the host is expected to ask for
   next; [media_clock] is when the media head will have finished reading
   that block under the streaming pipeline. *)
type segment = {
  mutable seg_next : int;
  mutable seg_media_clock : Time.t;
  mutable seg_stamp : int; (* LRU *)
}

type queue_discipline = Fifo | Elevator

(* Pending-request deque: O(1) append, O(1) FIFO pop, O(1) unlink of an
   arbitrary node (for the elevator pick). The previous representation —
   a list with [t.queue <- t.queue @ [req]] on every arrival and
   [List.length] in [dv_pending] — cost O(n) per enqueue and made a
   deep queue quadratic to drain. *)
module Dq = struct
  type node = {
    req : Blkdev.req;
    mutable prev : node option;
    mutable next : node option;
  }

  type q = {
    mutable head : node option;
    mutable tail : node option;
    mutable len : int;
  }

  let create () = { head = None; tail = None; len = 0 }
  let is_empty q = q.len = 0
  let length q = q.len

  let push_back q req =
    let n = { req; prev = q.tail; next = None } in
    (match q.tail with Some t -> t.next <- Some n | None -> q.head <- Some n);
    q.tail <- Some n;
    q.len <- q.len + 1

  let remove q n =
    (match n.prev with Some p -> p.next <- n.next | None -> q.head <- n.next);
    (match n.next with Some s -> s.prev <- n.prev | None -> q.tail <- n.prev);
    n.prev <- None;
    n.next <- None;
    q.len <- q.len - 1

  let pop_front q =
    match q.head with
    | None -> None
    | Some n ->
      remove q n;
      Some n.req

  (* Front-to-back, i.e. arrival order — the elevator's tie-break
     stability depends on this. *)
  let fold f acc q =
    let rec go acc = function None -> acc | Some n -> go (f acc n) n.next in
    go acc q.head
end

type t = {
  name : string;
  geometry : geometry;
  block_size : int;
  nblocks : int;
  intr_service : Time.span;
  discipline : queue_discipline;
  engine : Engine.t;
  intr : Blkdev.intr;
  segments : segment array;
  mutable head_pos : int; (* block following the last media access *)
  mutable stamp : int;
  queue : Dq.q; (* pending, arrival order *)
  mutable in_service : bool;
  store : (int, bytes) Hashtbl.t;
  mutable poisoned : int list; (* one-shot error injection *)
  mutable serviced : int;
  mutable cache_hits : int;
  mutable seeks : int;
  stats : Stats.t;
  mutable dev : Blkdev.t option;
}

let geometry t = t.geometry

let busy t = t.in_service || not (Dq.is_empty t.queue)

let serviced t = t.serviced

let cache_hits t = t.cache_hits

let seeks t = t.seeks

let ra_blocks t =
  max 1 (t.geometry.readahead_bytes / t.geometry.readahead_segments / t.block_size)

(* Per-segment prefetch window expressed as streaming time. *)
let ra_time t =
  Time.span_of_bytes ~bytes_per_sec:t.geometry.media_rate
    (ra_blocks t * t.block_size)

let media_time t count = Time.span_of_bytes ~bytes_per_sec:t.geometry.media_rate count

let bus_time t count = Time.span_of_bytes ~bytes_per_sec:t.geometry.bus_rate count

(* Seek-time curve: roughly linear in distance, normalised so that the
   published average is reached at a third of the stroke (the classical
   random-seek average). *)
let seek_time t ~from ~to_ =
  let dist = abs (to_ - from) in
  let frac = float_of_int dist /. float_of_int (max 1 t.nblocks) in
  let factor = 0.3 +. (2.1 *. frac) in
  Time.of_us_f (Time.to_us_f t.geometry.avg_seek *. factor)

(* [find_segment], [lru_segment] and [invalidate_around] scan every
   on-board cache segment linearly on every request. Real RZ-series
   drives carry 1–4 segments ([rz56]/[rz58]), so the scans are constant
   in practice; [create] rejects geometries with more than
   [max_segments] so a future many-segment geometry cannot silently turn
   these into a hot-path O(n) cost without someone noticing (there is an
   invariant test pinning both facts in test_disk.ml). *)
let max_segments = 16

let find_segment t blkno =
  let found = ref None in
  Array.iter (fun seg -> if seg.seg_next = blkno then found := Some seg) t.segments;
  !found

let lru_segment t =
  Array.fold_left
    (fun acc seg -> if seg.seg_stamp < acc.seg_stamp then seg else acc)
    t.segments.(0) t.segments

let touch t seg =
  t.stamp <- t.stamp + 1;
  seg.seg_stamp <- t.stamp

(* Drop cache segments plausibly covering the written range (write-through
   coherency). *)
let invalidate_around t blkno nblk =
  let ra = ra_blocks t in
  Array.iter
    (fun seg ->
      if abs (seg.seg_next - blkno) <= ra + nblk then begin
        seg.seg_next <- -1;
        seg.seg_media_clock <- Time.zero
      end)
    t.segments

(* Completion instant for a request issued at [now], updating head and
   segment state. *)
let completion_time t (req : Blkdev.req) now =
  let nblk = req.r_count / t.block_size in
  let mt = media_time t req.r_count in
  if req.r_write then begin
    invalidate_around t req.r_blkno nblk;
    let done_at =
      if req.r_blkno = t.head_pos then Time.add now mt
      else begin
        t.seeks <- t.seeks + 1;
        Time.add now
          (Time.add
             (Time.add (seek_time t ~from:t.head_pos ~to_:req.r_blkno)
                t.geometry.avg_rot_latency)
             mt)
      end
    in
    t.head_pos <- req.r_blkno + nblk;
    done_at
  end
  else
    match find_segment t req.r_blkno with
    | Some seg ->
      (* Read-ahead cache hit: bus transfer, bounded by the media
         pipeline. The drive cannot have prefetched more than one
         segment window ahead of the host. *)
      t.cache_hits <- t.cache_hits + 1;
      let stall_floor =
        let w = ra_time t in
        if Time.(w > now) then Time.zero else Time.sub now w
      in
      seg.seg_media_clock <- Time.max seg.seg_media_clock stall_floor;
      seg.seg_media_clock <- Time.add seg.seg_media_clock mt;
      seg.seg_next <- req.r_blkno + nblk;
      touch t seg;
      t.head_pos <- req.r_blkno + nblk;
      Time.add (Time.max now seg.seg_media_clock) (bus_time t req.r_count)
    | None ->
      let start_cost =
        if req.r_blkno = t.head_pos then Time.zero
        else begin
          t.seeks <- t.seeks + 1;
          Time.add
            (seek_time t ~from:t.head_pos ~to_:req.r_blkno)
            t.geometry.avg_rot_latency
        end
      in
      let done_at = Time.add now (Time.add start_cost mt) in
      let seg = lru_segment t in
      seg.seg_next <- req.r_blkno + nblk;
      seg.seg_media_clock <- done_at;
      touch t seg;
      t.head_pos <- req.r_blkno + nblk;
      done_at

let store_write t blkno data off =
  let b =
    match Hashtbl.find_opt t.store blkno with
    | Some b -> b
    | None ->
      let b = Bytes.make t.block_size '\000' in
      Hashtbl.add t.store blkno b;
      b
  in
  Bytes.blit data off b 0 t.block_size

let store_read t blkno data off =
  match Hashtbl.find_opt t.store blkno with
  | Some b -> Bytes.blit b 0 data off t.block_size
  | None -> Bytes.fill data off t.block_size '\000'

let transfer t (req : Blkdev.req) =
  let nblk = req.r_count / t.block_size in
  for i = 0 to nblk - 1 do
    let blkno = req.r_blkno + i and off = i * t.block_size in
    if req.r_write then store_write t blkno req.r_data off
    else store_read t blkno req.r_data off
  done

(* One-shot error injection. A single-block request consumes the poison
   as before. A multi-block request fails WITHOUT consuming it: the
   cluster layer above reacts to a failed clustered transfer by breaking
   it up into single-block retries (the 4.3BSD cluster-breakup path), and
   the retry of exactly the bad block must still see the error so it is
   isolated to that block's buffer header alone. *)
let poisoned_hit t (req : Blkdev.req) =
  let nblk = req.r_count / t.block_size in
  let in_range b = b >= req.r_blkno && b < req.r_blkno + nblk in
  let hit = List.exists in_range t.poisoned in
  if hit && nblk = 1 then
    t.poisoned <- List.filter (fun b -> not (in_range b)) t.poisoned;
  hit

(* Pick the next request per the queue discipline. *)
let pop_next t =
  if Dq.is_empty t.queue then None
  else if Dq.length t.queue = 1 || t.discipline = Fifo then
    Dq.pop_front t.queue
  else begin
    (* C-LOOK: the lowest block at or above the head, else the lowest
       overall (wrap). Stable for equal blocks (arrival order: the fold
       visits front-to-back and [better] is strict). *)
    let better (a : Blkdev.req) (b : Blkdev.req) =
      let above r = r.Blkdev.r_blkno >= t.head_pos in
      match (above a, above b) with
      | true, false -> true
      | false, true -> false
      | _ -> a.Blkdev.r_blkno < b.Blkdev.r_blkno
    in
    let best =
      Dq.fold
        (fun acc n ->
          match acc with
          | Some bn when not (better n.Dq.req bn.Dq.req) -> acc
          | _ -> Some n)
        None t.queue
    in
    match best with
    | None -> None
    | Some n ->
      Dq.remove t.queue n;
      Some n.Dq.req
  end

let[@kpath.intr] rec service_next t =
  if not t.in_service then begin
    match pop_next t with
    | None -> ()
    | Some req ->
    t.in_service <- true;
    let done_at = completion_time t req (Engine.now t.engine) in
    ignore
      (Engine.schedule t.engine ~at:done_at (fun () ->
           let error =
             if poisoned_hit t req then
               Some (Blkdev.Io_error (Printf.sprintf "%s: hard error" t.name))
             else begin
               transfer t req;
               None
             end
           in
           t.serviced <- t.serviced + 1;
           t.in_service <- false;
           t.intr ~service:t.intr_service (fun () -> req.r_done error);
           service_next t))
  end

let create ~name ~geometry ~block_size ~nblocks ~intr_service
    ?(queue = Fifo) ~engine ~intr () =
  if block_size <= 0 || nblocks <= 0 then invalid_arg "Disk.create: bad geometry";
  if geometry.readahead_segments > max_segments then
    invalid_arg
      (Printf.sprintf
         "Disk.create: %d read-ahead segments > %d (find_segment and \
          invalidate_around scan segments linearly on every request)"
         geometry.readahead_segments max_segments);
  let t =
    {
      name;
      geometry;
      block_size;
      nblocks;
      intr_service;
      discipline = queue;
      engine;
      intr;
      segments =
        Array.init (max 1 geometry.readahead_segments) (fun _ ->
            { seg_next = -1; seg_media_clock = Time.zero; seg_stamp = 0 });
      head_pos = 0;
      stamp = 0;
      queue = Dq.create ();
      in_service = false;
      store = Hashtbl.create 1024;
      poisoned = [];
      serviced = 0;
      cache_hits = 0;
      seeks = 0;
      stats = Stats.create ();
      dev = None;
    }
  in
  let rec dev =
    {
      Blkdev.dv_name = name;
      dv_id = Blkdev.next_id ();
      dv_block_size = block_size;
      dv_nblocks = nblocks;
      dv_strategy =
        (fun req ->
          Blkdev.check_req dev req;
          Stats.incr
            (Stats.counter t.stats
               (if req.r_write then "disk.writes" else "disk.reads"));
          Dq.push_back t.queue req;
          service_next t);
      dv_pending =
        (fun () -> Dq.length t.queue + if t.in_service then 1 else 0);
      dv_stats = t.stats;
    }
  in
  t.dev <- Some dev;
  t

let blkdev t = Option.get t.dev

let read_block_direct t blkno =
  if blkno < 0 || blkno >= t.nblocks then invalid_arg "Disk.read_block_direct";
  match Hashtbl.find_opt t.store blkno with
  | Some b -> Bytes.copy b
  | None -> Bytes.make t.block_size '\000'

let write_block_direct t blkno data =
  if blkno < 0 || blkno >= t.nblocks then invalid_arg "Disk.write_block_direct";
  if Bytes.length data <> t.block_size then
    invalid_arg "Disk.write_block_direct: wrong block length";
  Hashtbl.replace t.store blkno (Bytes.copy data)

let inject_error t ~blkno = t.poisoned <- blkno :: t.poisoned
