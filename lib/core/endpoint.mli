(** splice endpoints.

    The I/O objects a splice can connect, as §5.1 enumerates them:
    regular files on a local filesystem, UDP sockets, the framebuffer as
    a source, and character devices (audio / video DACs) as sinks. *)

open Kpath_dev
open Kpath_fs
open Kpath_net

type source =
  | Src_file of { fs : Fs.t; ino : Inode.t; off_blocks : int }
      (** file contents starting at a block-aligned offset *)
  | Src_socket of Udp.t  (** datagrams arriving on a socket *)
  | Src_framebuffer of Framebuffer.t  (** captured frames *)
  | Src_mic of Micdev.t
      (** an input character device — the recording path *)

type sink =
  | Dst_file of { fs : Fs.t; ino : Inode.t; off_blocks : int }
  | Dst_socket of { sock : Udp.t; dst : Udp.addr }
      (** datagrams sent to a fixed peer *)
  | Dst_tcp of Tcp.conn
      (** a reliable stream — the [sendfile(2)] path *)
  | Dst_chardev of Chardev.t  (** rate-paced output device *)

val src_file : Fs.t -> Inode.t -> ?off_blocks:int -> unit -> source
(** File source; [off_blocks] defaults to 0. *)

val dst_file : Fs.t -> Inode.t -> ?off_blocks:int -> unit -> sink
(** File sink; [off_blocks] defaults to 0. *)

val describe_source : source -> string
(** Human-readable endpoint name for traces and errors. *)

val describe_sink : sink -> string
