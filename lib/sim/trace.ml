type event = { ev_time : Time.t; ev_seq : int; ev_cat : string; ev_msg : string }

type t = {
  capacity : int;
  clock : unit -> Time.t;
  ring : event option array;
  mutable next : int; (* total recorded; ring slot = next mod capacity *)
  mutable all : bool;
  cats : (string, unit) Hashtbl.t;
}

let create ?(capacity = 4096) ~clock () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity <= 0";
  {
    capacity;
    clock;
    ring = Array.make capacity None;
    next = 0;
    all = false;
    cats = Hashtbl.create 8;
  }

let enable t cat = Hashtbl.replace t.cats cat ()

let enable_all t = t.all <- true

let disable t cat = Hashtbl.remove t.cats cat

let disable_all t =
  t.all <- false;
  Hashtbl.reset t.cats

let enabled t cat = t.all || Hashtbl.mem t.cats cat

let emit t ~cat msg =
  if enabled t cat then begin
    let ev =
      { ev_time = t.clock (); ev_seq = t.next; ev_cat = cat; ev_msg = msg () }
    in
    t.ring.(t.next mod t.capacity) <- Some ev;
    t.next <- t.next + 1
  end

let events t =
  let start = max 0 (t.next - t.capacity) in
  let out = ref [] in
  for i = t.next - 1 downto start do
    match t.ring.(i mod t.capacity) with
    | Some ev when ev.ev_seq = i -> out := ev :: !out
    | Some _ | None -> ()
  done;
  !out

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0

let recorded t = t.next

let dropped t = max 0 (t.next - t.capacity)

let pp_event fmt ev =
  Format.fprintf fmt "[%a] %-8s %s" Time.pp ev.ev_time ev.ev_cat ev.ev_msg

let dump fmt t =
  List.iter (fun ev -> Format.fprintf fmt "%a@." pp_event ev) (events t)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let event_json ev =
  Printf.sprintf "{\"t_us\":%.1f,\"seq\":%d,\"cat\":\"%s\",\"msg\":\"%s\"}"
    (Time.to_us_f ev.ev_time) ev.ev_seq (json_escape ev.ev_cat)
    (json_escape ev.ev_msg)

let dump_json fmt t =
  List.iter (fun ev -> Format.fprintf fmt "%s@." (event_json ev)) (events t)
