(* vm_analysis: dump the range-analysis verdict table for the sample
   program corpus as JSON (the CI artifact uploaded by the lint job).

   One object per sample: every faultable site (payload load/store,
   register-divisor div/rem) with its pc, kind, proven/checked verdict
   and the interval the analysis derived, plus the proven/total summary
   the acceptance gate watches. Report-only — the differential test
   suites are the gate; this artifact makes a verdict regression
   visible in CI without rerunning the analysis locally. *)

module Vm = Kpath_vm.Vm
module Samples = Kpath_vm.Samples

let corpus =
  [
    ("checksum", Samples.checksum ());
    ("tee-hash", Samples.tee_hash ());
    ("dropper-mod4", Samples.dropper ~modulo:4);
    ("router-fan3", Samples.router ~fanout:3);
    ("xor-mask", Samples.xor_mask ~key:0x5a);
    ("xor-stream", Samples.xor_stream ~key:0xc3);
    ("histogram", Samples.histogram ());
    ("dedup-11bit", Samples.dedup_chunks ~bits:11);
    ("bounded-copy", Samples.bounded_copy ());
    ("oob-probe", Samples.oob_probe ());
  ]

let kind_name = function
  | `Load -> "load"
  | `Store -> "store"
  | `Div -> "div"

let verdict_name = function `Proven -> "proven" | `Checked -> "checked"

let () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"tool\": \"vm-analysis\",\n  \"programs\": [\n";
  List.iteri
    (fun i (name, p) ->
      let accesses = Vm.accesses p in
      let proven =
        List.length
          (List.filter (fun a -> a.Vm.a_bounds = `Proven) accesses)
      in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": \"%s\", \"insns\": %d, \"sites\": %d, \"proven\": \
            %d, \"accesses\": [\n"
           name
           (Array.length (Vm.insns p))
           (List.length accesses) proven);
      List.iteri
        (fun j a ->
          Buffer.add_string b
            (Printf.sprintf
               "      {\"pc\": %d, \"kind\": \"%s\", \"verdict\": \"%s\", \
                \"range\": \"%s\"}%s\n"
               a.Vm.a_pc (kind_name a.Vm.a_kind)
               (verdict_name a.Vm.a_bounds)
               a.Vm.a_range
               (if j = List.length accesses - 1 then "" else ",")))
        accesses;
      Buffer.add_string b
        (Printf.sprintf "    ]}%s\n"
           (if i = List.length corpus - 1 then "" else ",")))
    corpus;
  Buffer.add_string b "  ]\n}\n";
  let out =
    match Sys.argv with [| _; file |] -> Some file | _ -> None
  in
  match out with
  | Some file ->
    let oc = open_out file in
    output_string oc (Buffer.contents b);
    close_out oc
  | None -> print_string (Buffer.contents b)
