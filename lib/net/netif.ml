open Kpath_sim
open Kpath_dev

(* Frames are mutable, slab-pooled records. A frame's payload is the
   inline [f_payload] bytes (always carrying the transport header, and
   for small or legacy sends the data too) plus an optional zero-copy
   view of [f_pl_len] bytes at [f_pl_off] into a shared refcounted
   {!Payload.t} — one immutable block buffer can back every sink's
   segments with no per-client copy.

   Pooled frames (from {!alloc_frame}) return to their net's free list
   as soon as the receive upcall returns (delivery is synchronous under
   the interrupt injector), releasing their payload view; receivers
   must copy or fold what they keep. Legacy {!send} frames are
   unpooled and garbage-collected, so {!Udp}'s datagrams may alias
   their buffers indefinitely. *)
type frame = {
  mutable f_src : int;
  mutable f_dst : int;
  mutable f_proto : int;
  mutable f_port_src : int;
  mutable f_port_dst : int;
  mutable f_payload : bytes;
  mutable f_len : int;  (* live bytes of f_payload *)
  mutable f_pl : Payload.t;  (* Payload.none = inline only *)
  mutable f_pl_off : int;
  mutable f_pl_len : int;
  f_pooled : bool;
  f_hdr : bytes;  (* pooled frames: dedicated header scratch *)
  f_dlcb : unit -> unit;  (* persistent delivery closure *)
  mutable f_next : frame;  (* intrusive free-list / tx-queue link *)
}

(* One transmit-serialisation unit: the whole interface on a shared
   segment, one per (src, dst) pair on a switched one. A single
   persistent completion closure per lane keeps steady-state
   transmission allocation-free. *)
type lane = {
  mutable ln_src : iface;
  mutable ln_head : frame;
  mutable ln_tail : frame;
  mutable ln_busy : bool;
  mutable ln_cur : frame;  (* the frame on the wire *)
  mutable ln_cb : unit -> unit;
}

and iface = {
  nif_id : int;
  nif_name : string;
  net : net;
  rx_intr_service : Time.span;
  tx_intr_service : Time.span;
  intr : Blkdev.intr;
  (* Direct per-protocol receive slots (6 = TCP, 17 = UDP are the hot
     ones); anything else falls back to a small assoc list. *)
  mutable rx_tcp : (frame -> unit) option;
  mutable rx_udp : (frame -> unit) option;
  mutable rx_other : (int * (frame -> unit)) list;
  mutable lane : lane option;  (* shared-medium serialisation *)
  mutable flows : (int, lane) Hashtbl.t;  (* switched: per-destination *)
  mutable tx_queued : int;
  mutable cur_rx : frame;  (* frame being handed to the upcall *)
  mutable rx_dispatch : unit -> unit;  (* persistent rx closure *)
  stats : Stats.t;
  st_tx : Stats.counter;
  st_tx_bytes : Stats.counter;
  st_tx_lost : Stats.counter;
  st_rx : Stats.counter;
  st_rx_bytes : Stats.counter;
  st_no_rx : Stats.counter;
}

and net = {
  net_id : int;
  engine : Engine.t;
  bandwidth : float;
  latency : Time.span;
  mtu : int;
  switched : bool;
  ifaces : (int, iface) Hashtbl.t;
  mutable loss : float;
  mutable loss_rng : Rng.t;
  mutable free_frames : frame;  (* intrusive slab free list *)
  mutable pool_size : int;
  mutable pool_free : int;
}

type t = iface

let nop () = ()

(* End-of-list sentinel for the intrusive links; never enqueued, never
   mutated after construction. *)
let[@kpath.domainsafe
     "list sentinel: compared by identity, no field is ever written"] rec
    nil_frame =
  {
    f_src = -1;
    f_dst = -1;
    f_proto = 0;
    f_port_src = 0;
    f_port_dst = 0;
    f_payload = Bytes.empty;
    f_len = 0;
    f_pl = Payload.none;
    f_pl_off = 0;
    f_pl_len = 0;
    f_pooled = false;
    f_hdr = Bytes.empty;
    f_dlcb = nop;
    f_next = nil_frame;
  }

(* Interface and net ids are globally unique (across segments, domains
   and simulations) so higher layers may key registries by them. *)
let id_counter = Atomic.make 0

let create_net ?(bandwidth = 1.25e6) ?(latency = Time.us 100) ?(mtu = 9000)
    ?(switched = false) engine =
  if bandwidth <= 0.0 then invalid_arg "Netif.create_net: bandwidth <= 0";
  {
    net_id = Atomic.fetch_and_add id_counter 1 + 1;
    engine;
    bandwidth;
    latency;
    mtu;
    switched;
    ifaces = Hashtbl.create 8;
    loss = 0.0;
    loss_rng = Rng.create ~seed:1;
    free_frames = nil_frame;
    pool_size = 0;
    pool_free = 0;
  }

(* {1 Frame pool} *)

let release_frame net fr =
  Payload.release fr.f_pl;
  fr.f_pl <- Payload.none;
  fr.f_pl_off <- 0;
  fr.f_pl_len <- 0;
  if fr.f_pooled then begin
    fr.f_payload <- fr.f_hdr;
    fr.f_len <- 0;
    fr.f_next <- net.free_frames;
    net.free_frames <- fr;
    net.pool_free <- net.pool_free + 1
  end

(* [find], not [find_opt]: the option box would be the only per-frame
   allocation left on the delivery path. *)
let deliver_frame net fr =
  match Hashtbl.find net.ifaces fr.f_dst with
  | dst ->
    dst.cur_rx <- fr;
    dst.intr ~service:dst.rx_intr_service dst.rx_dispatch
  | exception Not_found -> release_frame net fr

let alloc_frame net =
  let fr = net.free_frames in
  if fr != nil_frame then begin
    net.free_frames <- fr.f_next;
    net.pool_free <- net.pool_free - 1;
    fr.f_next <- nil_frame;
    fr
  end
  else begin
    net.pool_size <- net.pool_size + 1;
    let hdr = Bytes.create 32 in
    let rec fr =
      {
        f_src = 0;
        f_dst = 0;
        f_proto = 0;
        f_port_src = 0;
        f_port_dst = 0;
        f_payload = hdr;
        f_len = 0;
        f_pl = Payload.none;
        f_pl_off = 0;
        f_pl_len = 0;
        f_pooled = true;
        f_hdr = hdr;
        f_dlcb = (fun () -> deliver_frame net fr);
        f_next = nil_frame;
      }
    in
    fr
  end

let frame_set_view fr pl ~off ~len =
  if off < 0 || len < 0 || off + len > Payload.length pl then
    invalid_arg "Netif.frame_set_view: bad range";
  Payload.retain pl;
  fr.f_pl <- pl;
  fr.f_pl_off <- off;
  fr.f_pl_len <- len

let frame_bytes fr = fr.f_len + fr.f_pl_len

let pool_size net = net.pool_size

let pool_free net = net.pool_free

(* {1 Transmission lanes} *)

let rec lane_pump ln =
  if (not ln.ln_busy) && ln.ln_head != nil_frame then begin
    let fr = ln.ln_head in
    ln.ln_head <- fr.f_next;
    if ln.ln_head == nil_frame then ln.ln_tail <- nil_frame;
    fr.f_next <- nil_frame;
    let t = ln.ln_src in
    t.tx_queued <- t.tx_queued - 1;
    ln.ln_busy <- true;
    ln.ln_cur <- fr;
    let wire_bytes = frame_bytes fr + 42 (* eth+ip headers *) in
    ignore
      (Engine.schedule_after t.net.engine
         (Time.span_of_bytes ~bytes_per_sec:t.net.bandwidth wire_bytes)
         ln.ln_cb)
  end

and lane_done ln =
  let t = ln.ln_src in
  let net = t.net in
  let fr = ln.ln_cur in
  ln.ln_cur <- nil_frame;
  ln.ln_busy <- false;
  Stats.incr t.st_tx;
  Stats.add t.st_tx_bytes (frame_bytes fr);
  t.intr ~service:t.tx_intr_service nop;
  let dropped = net.loss > 0.0 && Rng.float net.loss_rng 1.0 < net.loss in
  if dropped then begin
    Stats.incr t.st_tx_lost;
    release_frame net fr
  end
  else ignore (Engine.schedule_after net.engine net.latency fr.f_dlcb);
  lane_pump ln

let make_lane t =
  let ln =
    {
      ln_src = t;
      ln_head = nil_frame;
      ln_tail = nil_frame;
      ln_busy = false;
      ln_cur = nil_frame;
      ln_cb = nop;
    }
  in
  ln.ln_cb <- (fun () -> lane_done ln);
  ln

let lane_for t dst =
  if t.net.switched then (
    try Hashtbl.find t.flows dst
    with Not_found ->
      let ln = make_lane t in
      Hashtbl.add t.flows dst ln;
      ln)
  else
    match t.lane with
    | Some ln -> ln
    | None ->
      let ln = make_lane t in
      t.lane <- Some ln;
      ln

let transmit t fr =
  if frame_bytes fr > t.net.mtu then begin
    release_frame t.net fr;
    invalid_arg "Netif.send: payload exceeds MTU"
  end;
  if not (Hashtbl.mem t.net.ifaces fr.f_dst) then begin
    release_frame t.net fr;
    invalid_arg "Netif.send: unknown destination"
  end;
  fr.f_src <- t.nif_id;
  let ln = lane_for t fr.f_dst in
  fr.f_next <- nil_frame;
  if ln.ln_tail == nil_frame then begin
    ln.ln_head <- fr;
    ln.ln_tail <- fr
  end
  else begin
    ln.ln_tail.f_next <- fr;
    ln.ln_tail <- fr
  end;
  t.tx_queued <- t.tx_queued + 1;
  lane_pump ln

(* {1 Interfaces} *)

let attach net ~name ?(rx_intr_service = Time.us 80)
    ?(tx_intr_service = Time.us 40) ?stats ~intr () =
  let stats = match stats with Some s -> s | None -> Stats.create () in
  let t =
    {
      nif_id = Atomic.fetch_and_add id_counter 1 + 1;
      nif_name = name;
      net;
      rx_intr_service;
      tx_intr_service;
      intr;
      rx_tcp = None;
      rx_udp = None;
      rx_other = [];
      lane = None;
      flows = Hashtbl.create 1;
      tx_queued = 0;
      cur_rx = nil_frame;
      rx_dispatch = nop;
      stats;
      st_tx = Stats.counter stats "netif.tx";
      st_tx_bytes = Stats.counter stats "netif.tx_bytes";
      st_tx_lost = Stats.counter stats "netif.tx_lost";
      st_rx = Stats.counter stats "netif.rx";
      st_rx_bytes = Stats.counter stats "netif.rx_bytes";
      st_no_rx = Stats.counter stats "netif.dropped_no_rx";
    }
  in
  t.rx_dispatch <-
    (fun () ->
      let fr = t.cur_rx in
      t.cur_rx <- nil_frame;
      let handler =
        match fr.f_proto with
        | 6 -> t.rx_tcp
        | 17 -> t.rx_udp
        | p -> List.assoc_opt p t.rx_other
      in
      (match handler with
       | Some fn ->
         Stats.incr t.st_rx;
         Stats.add t.st_rx_bytes (frame_bytes fr);
         fn fr
       | None -> Stats.incr t.st_no_rx);
      (* The upcall has returned: a pooled frame can recycle now.
         Receivers keep data by copying (or retaining the payload),
         never by holding the frame. *)
      release_frame net fr);
  Hashtbl.add net.ifaces t.nif_id t;
  t

let id t = t.nif_id

let name t = t.nif_name

let mtu net = net.mtu

let net t = t.net

let net_id (net : net) = net.net_id

let engine (net : net) = net.engine

let switched (net : net) = net.switched

let set_proto_rx t ~proto fn =
  match proto with
  | 6 -> t.rx_tcp <- Some fn
  | 17 -> t.rx_udp <- Some fn
  | p -> t.rx_other <- (p, fn) :: List.remove_assoc p t.rx_other

let set_loss net ?(seed = 1) p =
  if p < 0.0 || p >= 1.0 then invalid_arg "Netif.set_loss: probability";
  net.loss <- p;
  net.loss_rng <- Rng.create ~seed

let stats t = t.stats

let queued t = t.tx_queued

let send t ~dst ?(proto = 17) ~port_src ~port_dst payload =
  if Bytes.length payload > t.net.mtu then
    invalid_arg "Netif.send: payload exceeds MTU";
  if not (Hashtbl.mem t.net.ifaces dst) then
    invalid_arg "Netif.send: unknown destination";
  let netv = t.net in
  let rec fr =
    {
      f_src = t.nif_id;
      f_dst = dst;
      f_proto = proto;
      f_port_src = port_src;
      f_port_dst = port_dst;
      f_payload = payload;
      f_len = Bytes.length payload;
      f_pl = Payload.none;
      f_pl_off = 0;
      f_pl_len = 0;
      f_pooled = false;
      f_hdr = Bytes.empty;
      f_dlcb = (fun () -> deliver_frame netv fr);
      f_next = nil_frame;
    }
  in
  transmit t fr
