(** Polymorphic binary min-heap.

    Backing store for the event queue. The comparison function is fixed at
    creation; elements compare smallest-first. Operations are the classic
    array-backed sift-up/sift-down with amortised O(log n) insert and
    pop. *)

type 'a t
(** A mutable min-heap of ['a] values. *)

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp]. *)

val length : 'a t -> int
(** Number of elements currently in the heap. *)

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** [push h x] inserts [x]. *)

val peek : 'a t -> 'a option
(** [peek h] is the minimum element, without removing it. *)

val peek_exn : 'a t -> 'a
(** Like {!peek} but raises [Invalid_argument] on an empty heap —
    allocation-free (no [Some] box). *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns the minimum element. *)

val pop_exn : 'a t -> 'a
(** Like {!pop} but raises [Invalid_argument] on an empty heap —
    allocation-free (no [Some] box). *)

val clear : 'a t -> unit
(** Remove all elements. *)

val iter : ('a -> unit) -> 'a t -> unit
(** [iter f h] applies [f] to every element in unspecified order. *)
