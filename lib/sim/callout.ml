type t = {
  engine : Engine.t;
  tick : Time.span;
  mutable dispatched : int;
}

let create ?(tick = Time.ms 1) engine =
  if Time.(tick <= Time.zero) then invalid_arg "Callout.create: tick <= 0";
  { engine; tick; dispatched = 0 }

let tick t = t.tick

let wrap t fn () =
  t.dispatched <- t.dispatched + 1;
  fn ()

(* Next tick boundary strictly after [now] plus (ticks - 1) further ticks. *)
let tick_boundary t ~ticks =
  let now = Time.to_ns (Engine.now t.engine) in
  let period = Time.to_ns t.tick in
  let next = ((now / period) + 1) * period in
  Time.ns (next + ((ticks - 1) * period))

let timeout t ~ticks fn =
  if ticks < 1 then invalid_arg "Callout.timeout: ticks < 1";
  Engine.schedule t.engine ~at:(tick_boundary t ~ticks) (wrap t fn)

let timeout_span t d fn =
  let ticks = Stdlib.max 1 ((Time.to_ns d + Time.to_ns t.tick - 1) / Time.to_ns t.tick) in
  timeout t ~ticks fn

let schedule_head t fn =
  Engine.schedule t.engine ~at:(Engine.now t.engine) (wrap t fn)

let untimeout t h = Engine.cancel t.engine h

let dispatched t = t.dispatched
