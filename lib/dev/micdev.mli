(** Input character devices (audio sources).

    The recording-side counterpart of {!Chardev}: hardware produces a
    deterministic byte stream at a fixed rate in fixed-size chunks,
    delivered to a consumer upcall in interrupt context. Real-time
    semantics: if no consumer is attached (or it cannot keep up — see
    splice's overrun accounting), produced data is dropped, not
    buffered forever. *)

open Kpath_sim

type t
(** An input device. *)

val create :
  name:string ->
  rate:float ->
  ?chunk:int ->
  engine:Engine.t ->
  intr:Blkdev.intr ->
  unit ->
  t
(** [create ()] builds a source producing [rate] bytes/second in
    [chunk]-byte pieces (default 1 KB), starting when a consumer first
    attaches. The per-chunk interrupt service cost is charged through
    [intr]. *)

val name : t -> string

val sample_pattern : off:int -> len:int -> bytes
(** The deterministic contents of stream bytes [off, off+len) —
    recorders verify against this. *)

val set_consumer : t -> (bytes -> unit) option -> unit
(** Attach (or detach) the consumer upcall; it receives each chunk in
    interrupt context. Data produced with no consumer attached is
    dropped and counted. *)

val produced : t -> int
(** Total bytes generated. *)

val dropped : t -> int
(** Bytes generated with no consumer attached. *)

val stop : t -> unit
(** Stop the hardware clock. *)
