open Kpath_sim

(* A slice is one uninterrupted grant of the CPU: either a [Use_cpu]
   span from a process, or the context-switch overhead paid on dispatch.
   Interrupts stretch the slice by postponing its completion event. *)
type slice_kind =
  | Slice_user
  | Slice_sys
  | Slice_ctx  (* already charged at dispatch; occupies time only *)

type slice = {
  s_proc : Process.t;
  s_kind : slice_kind;
  s_span : Time.span;
  mutable s_end : Time.t;
  mutable s_handle : Engine.handle;
  s_cont : unit -> unit; (* run when the slice completes *)
}

(* The run queue is an array of intrusive FIFO buckets, one per
   priority level (priorities outside [0, nbuckets) are clamped for
   ordering). Enqueue is O(1); picking the best process scans from a
   monotone low-water-mark hint, so dispatch is O(1) amortised instead
   of the old O(n) fold + O(n) removal per pick. Links are the
   processes' own [rq_next] fields — no list cells are allocated. *)
let nbuckets = 256

let bucket_of priority =
  if priority < 0 then 0
  else if priority >= nbuckets then nbuckets - 1
  else priority

type t = {
  engine : Engine.t;
  cpu : Cpu.t;
  ctx_switch_cost : Time.span;
  quantum : Time.span;
  kernel_priority : int;
  user_priority : int;
  mutable current : slice option;
  rq_nil : Process.t; (* sentinel marking empty bucket heads/tails *)
  rq_head : Process.t array;
  rq_tail : Process.t array;
  mutable runq_len : int;
  mutable rq_min : int; (* lower bound on the lowest occupied bucket *)
  mutable last_ran : Process.t option;
  mutable rr_accum : Time.span; (* CPU consumed by current proc since dispatch *)
  mutable executing : bool; (* a coroutine body is running right now *)
  mutable intr_busy_until : Time.t;
      (* interrupt work accepted while the CPU was otherwise idle extends
         to here; the next slice starts behind it *)
  mutable next_pid : int;
  mutable procs : Process.t list; (* newest first *)
  stats : Stats.t;
}

exception Deadlock of string

let create ?(ctx_switch_cost = Time.us 100) ?(quantum = Time.ms 10)
    ?(kernel_priority = 30) ?(user_priority = 50) engine =
  let rq_nil = Process.make ~pid:0 ~name:"<rq-nil>" ~priority:max_int in
  {
    engine;
    cpu = Cpu.create ();
    ctx_switch_cost;
    quantum;
    kernel_priority;
    user_priority;
    current = None;
    rq_nil;
    rq_head = Array.make nbuckets rq_nil;
    rq_tail = Array.make nbuckets rq_nil;
    runq_len = 0;
    rq_min = nbuckets;
    last_ran = None;
    rr_accum = Time.zero;
    executing = false;
    intr_busy_until = Time.zero;
    next_pid = 1;
    procs = [];
    stats = Stats.create ();
  }

let engine t = t.engine

let cpu t = t.cpu

let stats t = t.stats

let current t = Option.map (fun s -> s.s_proc) t.current

let runnable t =
  let acc = ref [] in
  for b = nbuckets - 1 downto 0 do
    if t.rq_head.(b) != t.rq_nil then begin
      let rec chain (p : Process.t) =
        if p.rq_next == p then [ p ] else p :: chain p.rq_next
      in
      acc := chain t.rq_head.(b) @ !acc
    end
  done;
  !acc

let processes t = List.rev t.procs

let blocked t =
  List.filter
    (fun (p : Process.t) ->
      match p.state with Blocked _ -> true | Runnable | Running | Zombie -> false)
    (processes t)

let enqueue t (p : Process.t) =
  p.state <- Runnable;
  let b = bucket_of p.priority in
  p.rq_next <- p; (* new tail: terminate the chain *)
  if t.rq_head.(b) == t.rq_nil then t.rq_head.(b) <- p
  else t.rq_tail.(b).rq_next <- p;
  t.rq_tail.(b) <- p;
  t.runq_len <- t.runq_len + 1;
  if b < t.rq_min then t.rq_min <- b

(* First occupied bucket at or above the low-water mark; caller must
   have checked [runq_len > 0]. *)
let first_bucket t =
  let b = ref t.rq_min in
  while t.rq_head.(!b) == t.rq_nil do incr b done;
  t.rq_min <- !b;
  !b

(* Highest-priority (lowest number) runnable process, FIFO within a
   priority level. *)
let pick t =
  if t.runq_len = 0 then None
  else begin
    let b = first_bucket t in
    let p = t.rq_head.(b) in
    if p.rq_next == p then begin
      t.rq_head.(b) <- t.rq_nil;
      t.rq_tail.(b) <- t.rq_nil
    end
    else t.rq_head.(b) <- p.rq_next;
    p.rq_next <- p;
    t.runq_len <- t.runq_len - 1;
    Some p
  end

let best_waiting_priority t =
  if t.runq_len = 0 then max_int else (t.rq_head.(first_bucket t)).priority

(* Fire the completion of the slice currently on the CPU: charge its
   time, then let the process run (instantaneously) until its next
   effect. *)
let rec complete t () =
  match t.current with
  | None -> assert false
  | Some s ->
    (match s.s_kind with
     | Slice_user ->
       Cpu.add_user t.cpu s.s_span;
       s.s_proc.cpu_user <- Time.add s.s_proc.cpu_user s.s_span;
       t.rr_accum <- Time.add t.rr_accum s.s_span
     | Slice_sys ->
       Cpu.add_sys t.cpu s.s_span;
       s.s_proc.cpu_sys <- Time.add s.s_proc.cpu_sys s.s_span;
       t.rr_accum <- Time.add t.rr_accum s.s_span
     | Slice_ctx -> () (* charged on dispatch *));
    t.current <- None;
    exec t s.s_cont

(* Run coroutine code at the current instant. Effects performed by the
   code re-enter the handlers below; when control returns the process has
   either started a new slice, blocked, yielded or exited. *)
and exec t thunk =
  t.executing <- true;
  thunk ();
  t.executing <- false;
  maybe_dispatch t

and maybe_dispatch t =
  if (not t.executing) && t.current = None then dispatch t

and dispatch t =
  match pick t with
  | None -> ()
  | Some proc ->
    proc.state <- Running;
    t.rr_accum <- Time.zero;
    let resume =
      match proc.resume with
      | Some r ->
        proc.resume <- None;
        r
      | None -> assert false
    in
    Stats.incr (Stats.counter t.stats "sched.dispatches");
    let same = match t.last_ran with Some p -> p == proc | None -> false in
    t.last_ran <- Some proc;
    if same || Time.equal t.ctx_switch_cost Time.zero then exec t resume
    else begin
      Cpu.add_ctx t.cpu t.ctx_switch_cost;
      proc.ctx_switches <- proc.ctx_switches + 1;
      start_slice t proc Slice_ctx t.ctx_switch_cost resume
    end

and start_slice t proc kind span cont =
  assert (t.current = None);
  let now = Engine.now t.engine in
  (* Interrupt service accepted while the CPU was idle still occupies
     the CPU: a slice starting inside that window is pushed back. *)
  let carry =
    if Time.(t.intr_busy_until > now) then Time.diff t.intr_busy_until now
    else Time.zero
  in
  t.intr_busy_until <- now;
  let s_end = Time.add (Time.add now carry) span in
  let s_handle = Engine.schedule t.engine ~at:s_end (fun () -> complete t ()) in
  t.current <-
    Some { s_proc = proc; s_kind = kind; s_span = span; s_end; s_handle; s_cont = cont }

(* Effect handler: a process asks for CPU. Decide whether to preempt at
   this slice boundary. *)
let request_cpu t (proc : Process.t) mode span k_run =
  (* Returning to user mode drops any kernel wakeup boost. *)
  (if mode = Process.User && proc.priority < proc.base_priority then
     proc.priority <- proc.base_priority);
  let preempt =
    t.runq_len > 0
    &&
    let best = best_waiting_priority t in
    best < proc.priority
    || (best <= proc.priority && Time.(t.rr_accum >= t.quantum))
  in
  if preempt then begin
    Stats.incr (Stats.counter t.stats "sched.preemptions");
    proc.resume <-
      Some
        (fun () ->
          let kind = if mode = Process.User then Slice_user else Slice_sys in
          start_slice t proc kind span k_run);
    enqueue t proc
  end
  else
    let kind = if mode = Process.User then Slice_user else Slice_sys in
    start_slice t proc kind span k_run

let wakeup t ?priority (proc : Process.t) =
  match proc.state with
  | Blocked _ ->
    let boost = Option.value priority ~default:t.kernel_priority in
    proc.priority <- min proc.priority boost;
    proc.wakeup_count <- proc.wakeup_count + 1;
    proc.intr_waker <- None;
    Stats.incr (Stats.counter t.stats "sched.wakeups");
    enqueue t proc;
    maybe_dispatch t
  | Runnable | Running | Zombie -> ()

let in_process_context t = t.executing

let interrupt t ~service fn =
  Cpu.add_intr t.cpu service;
  (match t.current with
   | Some s ->
     Engine.cancel t.engine s.s_handle;
     s.s_end <- Time.add s.s_end service;
     s.s_handle <- Engine.schedule t.engine ~at:s.s_end (fun () -> complete t ())
   | None ->
     let now = Engine.now t.engine in
     t.intr_busy_until <- Time.add (Time.max t.intr_busy_until now) service);
  fn ()

let proc_exit t (proc : Process.t) status =
  Stats.incr (Stats.counter t.stats "sched.exited");
  proc.state <- Process.Zombie;
  proc.exit_status <- Some status;
  let hooks = proc.exit_hooks in
  proc.exit_hooks <- [];
  List.iter (fun hook -> hook ()) hooks

let run_body t proc body () =
  let effc : type a. a Effect.t -> ((a, unit) Effect.Deep.continuation -> unit) option
      = function
    | Process.Use_cpu (mode, span) ->
      Some
        (fun k ->
          request_cpu t proc mode span (fun () -> Effect.Deep.continue k ()))
    | Process.Block (chan, register) ->
      Some
        (fun k ->
          proc.state <- Process.Blocked chan;
          proc.resume <- Some (fun () -> Effect.Deep.continue k ());
          let woken = ref false in
          let waker () =
            if not !woken then begin
              woken := true;
              wakeup t proc
            end
          in
          register waker)
    | Process.Yield ->
      Some
        (fun k ->
          proc.resume <- Some (fun () -> Effect.Deep.continue k ());
          enqueue t proc)
    | Process.Self -> Some (fun k -> Effect.Deep.continue k proc)
    | _ -> None
  in
  Effect.Deep.match_with body ()
    {
      retc = (fun () -> proc_exit t proc Process.Exited);
      exnc =
        (fun e ->
          match e with
          | Engine.Stopped -> raise e
          | e -> proc_exit t proc (Process.Crashed e));
      effc;
    }

let spawn t ~name ?priority body =
  let priority = Option.value priority ~default:t.user_priority in
  let proc = Process.make ~pid:t.next_pid ~name ~priority in
  t.next_pid <- t.next_pid + 1;
  t.procs <- proc :: t.procs;
  proc.resume <- Some (run_body t proc body);
  Stats.incr (Stats.counter t.stats "sched.spawned");
  enqueue t proc;
  maybe_dispatch t;
  proc

let sleep t d =
  if Time.(d > Time.zero) then
    Process.block "sleep" (fun waker ->
        ignore (Engine.schedule_after t.engine d waker))

let sleep_interruptible t d =
  if Time.(d <= Time.zero) then true
  else begin
    let proc = Process.self () in
    if proc.sig_pending <> 0 then false
    else begin
      let full = ref false in
      let timer = ref None in
      Process.block "sleep*" (fun waker ->
          proc.intr_waker <- Some waker;
          timer :=
            Some
              (Engine.schedule_after t.engine d (fun () ->
                   full := true;
                   waker ())));
      proc.intr_waker <- None;
      (* Interrupted: drop the stale timer. *)
      if not !full then Option.iter (Engine.cancel t.engine) !timer;
      !full
    end
  end

let pause _t =
  let proc = Process.self () in
  (* A signal that arrived before we got here must not be lost — the
     classic pause() race. *)
  if proc.sig_pending = 0 then begin
    Process.block "pause" (fun waker -> proc.intr_waker <- Some waker);
    proc.intr_waker <- None
  end

let exit_hook (proc : Process.t) hook =
  if Process.is_zombie proc then hook ()
  else proc.exit_hooks <- hook :: proc.exit_hooks

let join (target : Process.t) =
  if not (Process.is_zombie target) then
    Process.block "join" (fun waker -> exit_hook target waker)

let check_deadlock t =
  if Engine.pending t.engine = 0 && t.current = None && t.runq_len = 0 then begin
    let stuck = blocked t in
    if stuck <> [] then begin
      let names =
        String.concat ", "
          (List.map
             (fun (p : Process.t) ->
               Format.asprintf "%s(%a)" p.name Process.pp_state p.state)
             stuck)
      in
      raise (Deadlock names)
    end
  end
