(* Known-good fixture: exercises every rule family without violating
   any of them. Expected: zero findings.

   - the interrupt handler calls only non-blocking code;
   - the acquired buffer is released exactly once on every path;
   - the Hashtbl.fold feeds directly into List.sort (the sorted-fold
     idiom), so enumeration order cannot leak out;
   - top-level state is either Atomic, per-domain (Domain.DLS), or a
     never-written sentinel carrying a justified [@kpath.domainsafe]. *)

module Buf = struct
  type t = { mutable data : int }
end

module Cache = struct
  let bread (_dev : int) (_blkno : int) : Buf.t = { Buf.data = 0 }

  let brelse (_b : Buf.t) = ()

  let biodone (_b : Buf.t) = ()
end

let[@kpath.intr] completion_handler (b : Buf.t) = Cache.biodone b

let balanced ok =
  let b = Cache.bread 0 7 in
  if ok then begin
    ignore b.Buf.data;
    Cache.brelse b
  end
  else Cache.brelse b

let sorted_counts (tbl : (string, int) Hashtbl.t) =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Top-level state, the three domain-safe ways. *)

type slot = { mutable occupant : int }

let[@kpath.domainsafe
     "sentinel: compared by identity only, no field is ever written"] nil_slot
    =
  { occupant = -1 }

let next_id = Atomic.make 0

let scratch : Buffer.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Buffer.create 64)

let fresh_slot () =
  ignore (Buffer.length (Domain.DLS.get scratch));
  { occupant = Atomic.fetch_and_add next_id 1 }

let is_nil s = s == nil_slot
