open Kpath_sim
open Kpath_core
open Kpath_kernel
open Kpath_workloads

let mk ?capacity () =
  let now = ref Time.zero in
  let t = Trace.create ?capacity ~clock:(fun () -> !now) () in
  (t, now)

let test_disabled_by_default () =
  let t, _ = mk () in
  let forced = ref false in
  Trace.emit t ~cat:"x" (fun () ->
      forced := true;
      "msg");
  Alcotest.(check bool) "message not forced" false !forced;
  Alcotest.(check int) "nothing recorded" 0 (Trace.recorded t)

let test_enable_records () =
  let t, now = mk () in
  Trace.enable t "io";
  Trace.emit t ~cat:"io" (fun () -> "first");
  now := Time.ms 5;
  Trace.emit t ~cat:"io" (fun () -> "second");
  Trace.emit t ~cat:"other" (fun () -> "ignored");
  (match Trace.events t with
   | [ a; b ] ->
     Alcotest.(check string) "msg a" "first" a.Trace.ev_msg;
     Alcotest.(check string) "msg b" "second" b.Trace.ev_msg;
     Alcotest.check Util.time "timestamped" (Time.ms 5) b.Trace.ev_time
   | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs));
  Trace.disable t "io";
  Trace.emit t ~cat:"io" (fun () -> "late");
  Alcotest.(check int) "disable stops recording" 2 (Trace.recorded t)

let test_enable_all () =
  let t, _ = mk () in
  Trace.enable_all t;
  Trace.emit t ~cat:"anything" (fun () -> "x");
  Alcotest.(check int) "recorded" 1 (Trace.recorded t)

let test_ring_wraps () =
  let t, _ = mk ~capacity:4 () in
  Trace.enable t "c";
  for i = 1 to 10 do
    Trace.emit t ~cat:"c" (fun () -> string_of_int i)
  done;
  let evs = Trace.events t in
  Alcotest.(check int) "keeps capacity" 4 (List.length evs);
  Alcotest.(check (list string)) "latest survive" [ "7"; "8"; "9"; "10" ]
    (List.map (fun e -> e.Trace.ev_msg) evs);
  Alcotest.(check int) "dropped counted" 6 (Trace.dropped t);
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.events t))

let test_splice_emits () =
  let s = Experiments.make_setup ~disk:`Ram ~file_bytes:(64 * 1024) () in
  Experiments.cold_caches s;
  let m = s.Experiments.machine in
  Trace.enable (Machine.trace m) "splice";
  let stats = Programs.fresh_copy_stats () in
  let _c =
    Programs.spawn_scp m ~src:s.Experiments.src_path ~dst:s.Experiments.dst_path
      stats
  in
  Machine.run m;
  let evs = Trace.events (Machine.trace m) in
  let has needle =
    List.exists (fun e -> Util.contains e.Trace.ev_msg needle) evs
  in
  Alcotest.(check bool) "start event" true (has "started");
  Alcotest.(check bool) "per-block write events" true (has "write done");
  Alcotest.(check bool) "completion event" true (has "completed");
  (* 8 blocks: bounded, per-block events present. *)
  Alcotest.(check bool) "sane volume" true (List.length evs >= 10)

let test_splice_overlap_rejected () =
  let m = Machine.create () in
  let drive = Machine.make_drive m ~name:"d0" ~kind:`Ram () in
  let rejected = ref false in
  let _p =
    Machine.spawn m ~name:"p" (fun () ->
        let fs =
          Kpath_fs.Fs.mkfs ~cache:(Machine.cache m) (Machine.blkdev drive)
            ~ninodes:16
        in
        let f = Kpath_fs.Fs.create_file fs "/f" in
        let buf = Bytes.create 8192 in
        for i = 0 to 7 do
          ignore (Kpath_fs.Fs.write fs f ~off:(i * 8192) ~len:8192 buf ~pos:0)
        done;
        (* Overlapping self-copy: blocks 0..3 onto 2..5. *)
        (try
           ignore
             (Splice.start (Machine.splice_ctx m)
                ~src:(Endpoint.src_file fs f ())
                ~dst:(Endpoint.dst_file fs f ~off_blocks:2 ())
                ~size:(4 * 8192) ())
         with Kpath_fs.Fs_error.Error (Kpath_fs.Fs_error.Einval _) ->
           rejected := true);
        (* Non-overlapping self-copy is allowed: blocks 0..3 onto 4..7. *)
        let d =
          Splice.start (Machine.splice_ctx m)
            ~src:(Endpoint.src_file fs f ())
            ~dst:(Endpoint.dst_file fs f ~off_blocks:4 ())
            ~size:(4 * 8192) ()
        in
        match Splice.wait d with
        | Ok n -> Alcotest.(check int) "copied half onto tail" (4 * 8192) n
        | Error e -> Alcotest.fail e)
  in
  Machine.run m;
  Alcotest.(check bool) "overlap rejected" true !rejected

let suite =
  [
    Alcotest.test_case "disabled by default" `Quick test_disabled_by_default;
    Alcotest.test_case "enable/disable" `Quick test_enable_records;
    Alcotest.test_case "enable all" `Quick test_enable_all;
    Alcotest.test_case "ring wrap" `Quick test_ring_wraps;
    Alcotest.test_case "splice emits events" `Quick test_splice_emits;
    Alcotest.test_case "same-file overlap" `Quick test_splice_overlap_rejected;
  ]
