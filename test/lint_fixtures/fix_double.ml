(* Known-bad fixture: a buffer acquired via getblk is released twice on
   the same path. Expected: exactly one [buf-double-release] finding. *)

module Buf = struct
  type t = { mutable data : int }
end

module Cache = struct
  let getblk (_dev : int) (_blkno : int) : Buf.t = { Buf.data = 0 }

  let brelse (_b : Buf.t) = ()
end

let double_release () =
  let b = Cache.getblk 0 9 in
  Cache.brelse b;
  Cache.brelse b
