open Kpath_sim

type state = Runnable | Running | Blocked of string | Zombie

type mode = User | Sys

type exit_status = Exited | Crashed of exn

type t = {
  pid : int;
  name : string;
  mutable state : state;
  mutable priority : int;
  mutable base_priority : int;
  mutable resume : (unit -> unit) option;
  mutable cpu_user : Time.span;
  mutable cpu_sys : Time.span;
  mutable ctx_switches : int;
  mutable wakeup_count : int;
  mutable exit_status : exit_status option;
  mutable exit_hooks : (unit -> unit) list;
  mutable intr_waker : (unit -> unit) option;
  mutable sig_pending : int;
  mutable sig_handlers : (int * (unit -> unit)) list;
  mutable rq_next : t;
      (* intrusive run-queue link (owned by Sched); points to itself
         when the process is unlinked or is the tail of its bucket *)
}

type _ Effect.t +=
  | Use_cpu : mode * Time.span -> unit Effect.t
  | Block : string * ((unit -> unit) -> unit) -> unit Effect.t
  | Yield : unit Effect.t
  | Self : t Effect.t

let make ~pid ~name ~priority =
  let rec p =
    {
      pid;
      name;
      state = Runnable;
      priority;
      base_priority = priority;
      resume = None;
      cpu_user = Time.zero;
      cpu_sys = Time.zero;
      ctx_switches = 0;
      wakeup_count = 0;
      exit_status = None;
      exit_hooks = [];
      intr_waker = None;
      sig_pending = 0;
      sig_handlers = [];
      rq_next = p;
    }
  in
  p

let use_cpu mode d =
  if Time.(d > Time.zero) then Effect.perform (Use_cpu (mode, d))

(* The two ways a process gives up the CPU; everything the kpath-verify
   [intr-blocks] rule forbids in interrupt context bottoms out here. *)
let[@kpath.blocks] block chan register = Effect.perform (Block (chan, register))

let[@kpath.blocks] yield () = Effect.perform Yield

let self () = Effect.perform Self

let is_zombie t = t.state = Zombie

let pp_state fmt = function
  | Runnable -> Format.pp_print_string fmt "runnable"
  | Running -> Format.pp_print_string fmt "running"
  | Blocked chan -> Format.fprintf fmt "blocked(%s)" chan
  | Zombie -> Format.pp_print_string fmt "zombie"
