(* Test entry point: one alcotest binary, one suite per module. *)

let () =
  Alcotest.run "kpath"
    [
      ("time", Test_time.suite);
      ("heap", Test_heap.suite);
      ("engine", Test_engine.suite);
      ("engine-equiv", Test_engine_equiv.suite);
      ("callout", Test_callout.suite);
      ("rng-stats", Test_rng_stats.suite);
      ("sched", Test_sched.suite);
      ("signal", Test_signal.suite);
      ("disk", Test_disk.suite);
      ("ramdisk-chardev-fb", Test_chardev.suite);
      ("cache", Test_cache.suite);
      ("fs", Test_fs.suite);
      ("fs-fuzz", Test_fs_fuzz.suite);
      ("net", Test_net.suite);
      ("tcp", Test_tcp.suite);
      ("flowctl", Test_flowctl.suite);
      ("trace", Test_trace.suite);
      ("splice", Test_splice.suite);
      ("vm", Test_vm.suite);
      ("vm-parity", Test_vm_parity.suite);
      ("graph", Test_graph.suite);
      ("kernel", Test_kernel.suite);
      ("workloads", Test_workloads.suite);
      ("lint", Test_lint.suite);
    ]
