(** Event tracing.

    A bounded ring of timestamped, categorised messages. Categories are
    opt-in, and emission is O(1) and allocation-free while a category is
    disabled (messages are closures forced only when recording), so
    instrumentation can stay in hot paths permanently. *)

type t
(** A trace ring. *)

type event = {
  ev_time : Time.t;  (** simulated time of emission *)
  ev_seq : int;  (** global emission ordinal *)
  ev_cat : string;
  ev_msg : string;
}

val create : ?capacity:int -> clock:(unit -> Time.t) -> unit -> t
(** A trace keeping the last [capacity] events (default 4096),
    timestamped by [clock]. *)

val enable : t -> string -> unit
(** Start recording a category (e.g. ["splice"]). *)

val enable_all : t -> unit
(** Record every category. *)

val disable : t -> string -> unit
(** Stop recording one category. Does not affect {!enable_all}: the
    all-categories flag is tracked independently, so disabling a single
    category never silently drops the others. *)

val disable_all : t -> unit
(** Clear the {!enable_all} flag and every individually enabled
    category. *)

val enabled : t -> string -> bool

val emit : t -> cat:string -> (unit -> string) -> unit
(** [emit t ~cat msg] records [msg ()] if [cat] is enabled. *)

val events : t -> event list
(** Recorded events, oldest first (at most [capacity]). *)

val clear : t -> unit

val recorded : t -> int
(** Total events recorded since creation (including overwritten ones). *)

val dropped : t -> int
(** Events overwritten by ring wrap-around. *)

val pp_event : Format.formatter -> event -> unit

val dump : Format.formatter -> t -> unit
(** Print every retained event, one per line. *)

val event_json : event -> string
(** One event as a single-line JSON object:
    [{"t_us":..,"seq":..,"cat":"..","msg":".."}] (strings escaped). *)

val dump_json : Format.formatter -> t -> unit
(** Print every retained event as one JSON object per line (JSON Lines),
    for post-processing graph traces and bench runs. *)
