(* A refcounted immutable byte buffer shared by many readers.

   The splice graph aliases one device block to N edges under
   Cache.pin/unpin; a payload extends that discipline past the cache
   boundary, so N TCP connections can reference one copy of a block's
   bytes (each segment carrying an offset+length view) instead of each
   holding a private copy. The buffer is immutable by convention:
   holders read through [data] and must never write.

   Refcounting is manual and fail-fast — [release] below zero and
   [retain] after the last release both raise, and [frees] lets tests
   assert the free-exactly-once invariant directly. *)

type t = {
  p_data : bytes;
  mutable p_refs : int;
  mutable p_frees : int;
  mutable p_on_free : unit -> unit;
}

let nop () = ()

(* The distinguished empty payload: permanently live, never freed.
   Pooled frames and chunk records point here when they carry no view,
   so "no payload" needs no [option] box on hot paths. *)
let[@kpath.domainsafe
     "sentinel: retain/release are no-ops on [none], so its fields are never \
      written after initialization"] none =
  { p_data = Bytes.empty; p_refs = 1; p_frees = 0; p_on_free = nop }

let of_bytes b =
  { p_data = b; p_refs = 1; p_frees = 0; p_on_free = nop }

let of_copy src pos len =
  if pos < 0 || len < 0 || pos + len > Bytes.length src then
    invalid_arg "Payload.of_copy: bad range";
  of_bytes (Bytes.sub src pos len)

let data p = p.p_data

let length p = Bytes.length p.p_data

let refs p = p.p_refs

let frees p = p.p_frees

let is_none p = p == none

let retain p =
  if p != none then begin
    if p.p_refs <= 0 then invalid_arg "Payload.retain: already freed";
    p.p_refs <- p.p_refs + 1
  end

let release p =
  if p != none then begin
    if p.p_refs <= 0 then invalid_arg "Payload.release: already freed";
    p.p_refs <- p.p_refs - 1;
    if p.p_refs = 0 then begin
      p.p_frees <- p.p_frees + 1;
      p.p_on_free ()
    end
  end

let on_free p fn = if p != none then p.p_on_free <- fn
