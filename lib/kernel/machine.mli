(** The simulated machine: engine + CPU + caches + devices + namespaces.

    One [Machine.t] is one DECstation-class host: it owns the event
    engine, the scheduler, the callout list, the buffer cache and the
    splice machinery, plus the name spaces system calls resolve against —
    a mount table for filesystems and a [/dev] table for character
    devices and framebuffers. *)

open Kpath_sim
open Kpath_dev
open Kpath_proc
open Kpath_buf
open Kpath_fs
open Kpath_core

type t
(** A machine. *)

type drive =
  | Scsi of Disk.t  (** an RZ-series disk *)
  | Ram of Ramdisk.t  (** the RAM-disk driver *)

val create : ?config:Config.t -> ?engine:Engine.t -> unit -> t
(** A fresh machine (default config: the paper's DECstation 5000/200).
    Pass [engine] to place several machines on one event engine — a
    multi-host simulation sharing one clock (e.g. a TCP client and
    server with independent CPUs). *)

val config : t -> Config.t

val engine : t -> Engine.t

val sched : t -> Sched.t

val callout : t -> Callout.t

val cache : t -> Cache.t

val splice_ctx : t -> Splice.ctx

val graph_ctx : t -> Kpath_graph.Graph.ctx
(** The splice-graph machinery (fan-out / fan-in / filter routing),
    sharing the machine's cache, callout list and interrupt path. *)

val trace : t -> Trace.t
(** The machine's trace ring (categories off by default); splice emits
    under ["splice"]. *)

val intr : t -> Blkdev.intr
(** The machine's interrupt injector ([Sched.interrupt] partially
    applied) — what devices are wired to. *)

val now : t -> Time.t

val make_drive :
  t ->
  name:string ->
  kind:[ `Rz56 | `Rz58 | `Ram ] ->
  ?nblocks:int ->
  ?queue:Disk.queue_discipline ->
  unit ->
  drive
(** Attach a disk. Default sizes: 4096 blocks (32 MB) for SCSI disks,
    [Config.ramdisk_blocks] for the RAM disk; SCSI request queueing
    defaults to FIFO ([queue] selects the elevator). *)

val blkdev : drive -> Blkdev.t
(** The generic view of a drive. *)

val mount : t -> string -> Fs.t -> unit
(** Mount a filesystem at a path prefix, e.g. ["/src"]. *)

val resolve : t -> string -> (Fs.t * string) option
(** Longest-prefix mount-table lookup: the filesystem and the remaining
    path within it. *)

val register_chardev : t -> string -> Chardev.t -> unit
(** Expose a character device, e.g. ["/dev/audio"]. *)

val find_chardev : t -> string -> Chardev.t option

val register_framebuffer : t -> string -> Framebuffer.t -> unit

val find_framebuffer : t -> string -> Framebuffer.t option

val spawn : t -> name:string -> ?priority:int -> (unit -> unit) -> Process.t
(** Start a user process on this machine. *)

val run : ?until:Time.t -> t -> unit
(** Drive the simulation ({!Kpath_sim.Engine.run}) and then check for
    deadlocked processes. *)
