open Kpath_sim

let check_int = Alcotest.(check int)

let test_constructors () =
  check_int "us" 1_000 (Time.to_ns (Time.us 1));
  check_int "ms" 1_000_000 (Time.to_ns (Time.ms 1));
  check_int "sec" 1_000_000_000 (Time.to_ns (Time.sec 1));
  check_int "of_sec_f" 1_500_000_000 (Time.to_ns (Time.of_sec_f 1.5));
  check_int "of_us_f rounds" 1_500 (Time.to_ns (Time.of_us_f 1.5))

let test_negative_rejected () =
  Alcotest.check_raises "ns" (Invalid_argument "Time.ns: negative") (fun () ->
      ignore (Time.ns (-1)));
  Alcotest.check_raises "of_sec_f" (Invalid_argument "Time.of_sec_f: negative")
    (fun () -> ignore (Time.of_sec_f (-0.5)))

let test_arithmetic () =
  let t = Time.ms 5 in
  check_int "add" 6_000_000 (Time.to_ns (Time.add t (Time.ms 1)));
  check_int "sub" 4_000_000 (Time.to_ns (Time.sub t (Time.ms 1)));
  check_int "diff" 1_000_000 (Time.to_ns (Time.diff t (Time.ms 4)));
  check_int "scale" 15_000_000 (Time.to_ns (Time.scale t 3));
  Alcotest.check_raises "sub underflow"
    (Invalid_argument "Time.sub: negative result") (fun () ->
      ignore (Time.sub (Time.ms 1) (Time.ms 2)));
  Alcotest.check_raises "diff underflow"
    (Invalid_argument "Time.diff: negative result") (fun () ->
      ignore (Time.diff (Time.ms 1) (Time.ms 2)))

let test_ordering () =
  Alcotest.(check bool) "lt" true Time.(Time.ms 1 < Time.ms 2);
  Alcotest.(check bool) "ge" true Time.(Time.ms 2 >= Time.ms 2);
  Util.(Alcotest.check time) "min" (Time.ms 1) (Time.min (Time.ms 1) (Time.ms 2));
  Util.(Alcotest.check time) "max" (Time.ms 2) (Time.max (Time.ms 1) (Time.ms 2))

let test_rates () =
  (* 8 KB at 8 MB/s = 1 ms. *)
  Util.(Alcotest.check time) "span_of_bytes" (Time.ms 1)
    (Time.span_of_bytes ~bytes_per_sec:8.192e6 8192);
  Alcotest.(check (float 1e-6)) "rate round trip" 8.192e6
    (Time.rate_bytes_per_sec ~bytes:8192 (Time.ms 1));
  Alcotest.check_raises "zero rate"
    (Invalid_argument "Time.span_of_bytes: rate <= 0") (fun () ->
      ignore (Time.span_of_bytes ~bytes_per_sec:0.0 1))

let test_pp () =
  let s t = Format.asprintf "%a" Time.pp t in
  Alcotest.(check string) "ns" "17ns" (s (Time.ns 17));
  Alcotest.(check string) "us" "2.00us" (s (Time.us 2));
  Alcotest.(check string) "ms" "3.000ms" (s (Time.ms 3));
  Alcotest.(check string) "s" "4.0000s" (s (Time.sec 4))

let prop_add_sub_roundtrip =
  QCheck.Test.make ~name:"time add/sub round-trips" ~count:500
    QCheck.(pair (int_bound 1_000_000_000) (int_bound 1_000_000_000))
    (fun (a, b) ->
      let t = Time.ns a and d = Time.ns b in
      Time.equal t (Time.sub (Time.add t d) d))

let prop_span_of_bytes_monotone =
  QCheck.Test.make ~name:"span_of_bytes is monotone in size" ~count:200
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      Time.(
        Time.span_of_bytes ~bytes_per_sec:1e6 lo
        <= Time.span_of_bytes ~bytes_per_sec:1e6 hi))

let suite =
  [
    Alcotest.test_case "constructors" `Quick test_constructors;
    Alcotest.test_case "negative rejected" `Quick test_negative_rejected;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "rates" `Quick test_rates;
    Alcotest.test_case "pretty printing" `Quick test_pp;
    Util.qcheck prop_add_sub_roundtrip;
    Util.qcheck prop_span_of_bytes_monotone;
  ]
