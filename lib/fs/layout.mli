(** On-disk layout constants and superblock serialization.

    Disk image layout (all in filesystem blocks):
    {v
      block 0                     superblock
      blocks 1 .. bitmap_blocks   block allocation bitmap (1 bit/block)
      then itable_blocks          inode table (128-byte inodes)
      then                        data blocks
    v} *)

type superblock = {
  sb_magic : int;
  sb_block_size : int;
  sb_nblocks : int;  (** total filesystem size in blocks *)
  sb_ninodes : int;
  sb_bitmap_start : int;
  sb_bitmap_blocks : int;
  sb_itable_start : int;
  sb_itable_blocks : int;
  sb_data_start : int;  (** first data block *)
}

val magic : int
(** Superblock magic number. *)

val inode_size : int
(** Bytes per on-disk inode (128). *)

val ndirect : int
(** Direct block pointers per inode (12). *)

val dirent_size : int
(** Bytes per directory entry (32: 4-byte inode number + name). *)

val name_max : int
(** Maximum file-name length (27). *)

val root_ino : int
(** Inode number of the root directory (1). Inode 0 is reserved. *)

val layout : block_size:int -> nblocks:int -> ninodes:int -> superblock
(** Compute the layout for a fresh filesystem. Raises [Invalid_argument]
    when the metadata would not fit. *)

val addrs_per_block : superblock -> int
(** Block pointers per indirect block. *)

val max_file_blocks : superblock -> int
(** Largest file size, in blocks, the inode geometry can map. *)

val write_superblock : superblock -> bytes -> unit
(** Serialize into a block-sized byte area. *)

val read_superblock : block_size:int -> bytes -> superblock
(** Deserialize; raises [Fs_error.Error (Einval _)] on a bad magic or
    mismatched block size. *)
