type t = int

type span = t

let zero = 0

let ns n =
  if n < 0 then invalid_arg "Time.ns: negative" else n

let us n = ns (n * 1_000)

let ms n = ns (n * 1_000_000)

let sec n = ns (n * 1_000_000_000)

let of_sec_f s =
  if s < 0.0 then invalid_arg "Time.of_sec_f: negative"
  else int_of_float (Float.round (s *. 1e9))

let of_us_f u =
  if u < 0.0 then invalid_arg "Time.of_us_f: negative"
  else int_of_float (Float.round (u *. 1e3))

let to_ns t = t

let to_sec_f t = float_of_int t /. 1e9

let to_us_f t = float_of_int t /. 1e3

let add t d = t + d

let sub t d =
  if d > t then invalid_arg "Time.sub: negative result" else t - d

let diff a b =
  if b > a then invalid_arg "Time.diff: negative result" else a - b

let scale d k =
  if k < 0 then invalid_arg "Time.scale: negative factor" else d * k

let compare = Int.compare

let equal = Int.equal

let ( < ) (a : t) b = Stdlib.( < ) a b
let ( <= ) (a : t) b = Stdlib.( <= ) a b
let ( > ) (a : t) b = Stdlib.( > ) a b
let ( >= ) (a : t) b = Stdlib.( >= ) a b

let min (a : t) b = Stdlib.min a b
let max (a : t) b = Stdlib.max a b

let span_of_bytes ~bytes_per_sec n =
  if Stdlib.( <= ) bytes_per_sec 0.0 then
    invalid_arg "Time.span_of_bytes: rate <= 0";
  if n < 0 then invalid_arg "Time.span_of_bytes: negative size";
  int_of_float (Float.round (float_of_int n /. bytes_per_sec *. 1e9))

let rate_bytes_per_sec ~bytes d =
  if d = 0 then infinity else float_of_int bytes /. to_sec_f d

let pp fmt t =
  if t < 1_000 then Format.fprintf fmt "%dns" t
  else if t < 1_000_000 then Format.fprintf fmt "%.2fus" (float_of_int t /. 1e3)
  else if t < 1_000_000_000 then
    Format.fprintf fmt "%.3fms" (float_of_int t /. 1e6)
  else Format.fprintf fmt "%.4fs" (to_sec_f t)
