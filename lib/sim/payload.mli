(** Refcounted immutable byte buffers.

    One buffer shared by many readers under a manual reference count —
    the buffer-cache pin/unpin discipline extended past the cache
    boundary, so a fan-out can hand N consumers offset+length views
    into a single copy of each block instead of N private copies.

    Holders must treat {!data} as read-only. The count is fail-fast:
    releasing below zero or retaining after the last release raises
    [Invalid_argument], and {!frees} exposes the free count so tests
    can assert release-exactly-once directly. *)

type t

val none : t
(** The distinguished empty payload: permanently live, {!retain} and
    {!release} on it are no-ops. Hot-path records point here instead of
    boxing an [option]. *)

val of_bytes : bytes -> t
(** Take ownership of [b] (refcount 1). The caller must not mutate [b]
    afterwards. *)

val of_copy : bytes -> int -> int -> t
(** [of_copy src pos len]: a fresh payload holding a private copy of
    the range (refcount 1). *)

val data : t -> bytes
(** The shared buffer — read-only by convention. *)

val length : t -> int

val refs : t -> int
(** Current reference count (0 after the last release). *)

val frees : t -> int
(** How many times the count has drained to zero — exactly once for a
    correctly refcounted payload. *)

val is_none : t -> bool

val retain : t -> unit

val release : t -> unit
(** Drop one reference; the last release fires the {!on_free} hook. *)

val on_free : t -> (unit -> unit) -> unit
(** Install a hook run when the count drains to zero. *)
