(* Domain-sharded execution of independent simulation tasks.

   [run] fans [tasks] independent jobs over up to [domains] OCaml 5
   domains and returns the results in task order — so the caller's view
   is identical whatever the domain count, provided each task is
   self-contained (its own engine, net and state; nothing mutable
   shared across tasks). kpath-verify's domain-shared rule polices the
   "nothing mutable shared" half statically.

   [merge] is the deterministic join: a k-way merge of per-shard sorted
   arrays under a total order supplied by the caller (time, with ties
   broken by a stable client id). Ties across shards resolve to the
   lowest shard index, so the merged sequence is a pure function of the
   inputs, never of domain scheduling. *)

let recommended () = Domain.recommended_domain_count ()

let run ~domains ~tasks f =
  if tasks < 0 then invalid_arg "Shard.run: negative task count";
  if domains < 1 then invalid_arg "Shard.run: domains < 1";
  let workers = max 1 (min domains tasks) in
  if workers <= 1 then List.init tasks f
  else begin
    let results = Array.make tasks None in
    (* Round-robin assignment: worker [d] owns tasks d, d+W, d+2W, ...
       Each slot is written by exactly one domain; Domain.join provides
       the happens-before for the collecting read below. *)
    let worker d () =
      let rec go i =
        if i < tasks then begin
          results.(i) <- Some (f i);
          go (i + workers)
        end
      in
      go d
    in
    let spawned =
      Array.init (workers - 1) (fun d -> Domain.spawn (worker (d + 1)))
    in
    let own = try Ok (worker 0 ()) with e -> Error e in
    Array.iter Domain.join spawned;
    (match own with Ok () -> () | Error e -> raise e);
    List.init tasks (fun i ->
        match results.(i) with Some r -> r | None -> assert false)
  end

let merge ~cmp parts =
  let total = List.fold_left (fun a p -> a + Array.length p) 0 parts in
  if total = 0 then [||]
  else begin
    let parts = Array.of_list parts in
    let k = Array.length parts in
    let dummy =
      let rec first i =
        if Array.length parts.(i) > 0 then parts.(i).(0) else first (i + 1)
      in
      first 0
    in
    let out = Array.make total dummy in
    let idx = Array.make k 0 in
    for o = 0 to total - 1 do
      let best = ref (-1) in
      for p = 0 to k - 1 do
        if idx.(p) < Array.length parts.(p) then
          if
            !best < 0
            || cmp parts.(p).(idx.(p)) parts.(!best).(idx.(!best)) < 0
          then best := p
      done;
      let p = !best in
      out.(o) <- parts.(p).(idx.(p));
      idx.(p) <- idx.(p) + 1
    done;
    out
  end
