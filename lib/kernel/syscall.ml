open Kpath_sim
open Kpath_proc
open Kpath_dev
open Kpath_fs
open Kpath_net
open Kpath_core

type env = {
  machine : Machine.t;
  fds : Fd.table;
  proc : Process.t;
  mutable itimer : Engine.handle option;
}

(* Descriptor teardown shared by close(2) and exit-time cleanup. *)
let dispose_openfile (f : Fd.openfile) =
  match f.Fd.of_kind with
  | Fd.Socket { sock; _ } -> Udp.close sock
  | Fd.Chardev cd -> Chardev.close_stream cd
  | Fd.Tcp conn -> Tcp.close conn
  | Fd.File _ | Fd.Framebuffer _ -> ()

let make_env machine =
  let env =
    { machine; fds = Fd.create (); proc = Process.self (); itimer = None }
  in
  (* Kernel exit(2) work: release descriptors and timers the process
     left behind. *)
  Sched.exit_hook env.proc (fun () ->
      (match env.itimer with
       | Some h ->
         Engine.cancel (Machine.engine machine) h;
         env.itimer <- None
       | None -> ());
      List.iter
        (fun fd -> dispose_openfile (Fd.close env.fds fd))
        (Fd.all_fds env.fds));
  env

let machine env = env.machine

let proc env = env.proc

type open_flag = O_RDONLY | O_WRONLY | O_RDWR | O_CREAT | O_TRUNC

let cfg env = Machine.config env.machine

(* Kernel entry: charge the trap cost. Issuing a fresh syscall means the
   process went back through user mode since its last kernel sleep, so
   any kernel-wakeup priority boost lapses here. *)
let enter env =
  let p = env.proc in
  if p.Process.priority < p.Process.base_priority then
    p.Process.priority <- p.Process.base_priority;
  Process.use_cpu Process.Sys (cfg env).Config.syscall_overhead

(* Return path of potentially-blocking calls: deliver pending signals
   (handlers run here, in process context). *)
let syscall_exit env = Signal.take_pending env.proc

let copy_cpu env n =
  if n > 0 then Process.use_cpu Process.Sys (Config.copy_cost (cfg env) n)

let fs_guard call f =
  try f () with Fs_error.Error e -> Errno.raise_errno (Errno.of_fs_error e) call

let resolve_fs env path call =
  match Machine.resolve env.machine path with
  | Some (fs, rel) -> (fs, rel)
  | None -> Errno.raise_errno Errno.ENOENT call

(* {1 Files and devices} *)

let openf env path flags =
  enter env;
  match Machine.find_chardev env.machine path with
  | Some cd -> Fd.alloc env.fds (Fd.Chardev cd)
  | None -> (
    match Machine.find_framebuffer env.machine path with
    | Some fb -> Fd.alloc env.fds (Fd.Framebuffer fb)
    | None ->
      let fs, rel = resolve_fs env path "open" in
      fs_guard "open" (fun () ->
          let ino =
            match Fs.lookup fs rel with
            | ino ->
              if ino.Inode.ftype = Inode.Directory then
                Errno.raise_errno Errno.EISDIR "open";
              ino
            | exception Fs_error.Error Fs_error.Enoent when List.mem O_CREAT flags
              ->
              Fs.create_file fs rel
          in
          if List.mem O_TRUNC flags then Fs.truncate fs ino 0;
          let readable = not (List.mem O_WRONLY flags) in
          let writable =
            List.mem O_WRONLY flags || List.mem O_RDWR flags
            || List.mem O_CREAT flags
          in
          Fd.alloc env.fds
            (Fd.File { fs; ino; offset = 0; readable; writable })))

let close env fd =
  enter env;
  dispose_openfile (Fd.close env.fds fd)

let read env fd buf ~pos ~len =
  enter env;
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    Errno.raise_errno Errno.EINVAL "read";
  let f = Fd.get env.fds fd in
  let n =
    match f.Fd.of_kind with
    | Fd.File fh ->
      if not fh.Fd.readable then Errno.raise_errno Errno.EBADF "read";
      let n =
        fs_guard "read" (fun () ->
            Fs.read fh.Fd.fs fh.Fd.ino ~off:fh.Fd.offset ~len buf ~pos)
      in
      fh.Fd.offset <- fh.Fd.offset + n;
      copy_cpu env n;
      n
    | Fd.Socket { sock; _ } -> (
      match Udp.recv sock with
      | None -> 0
      | Some dg ->
        let n = min len (Bytes.length dg.Udp.d_payload) in
        Bytes.blit dg.Udp.d_payload 0 buf pos n;
        Process.use_cpu Process.Sys (cfg env).Config.udp_proto_cost;
        copy_cpu env n;
        n)
    | Fd.Framebuffer fb ->
      let result = ref None in
      Process.block "fbread" (fun waker ->
          Framebuffer.next_frame fb (fun ~seq:_ frame ->
              result := Some frame;
              waker ()));
      (match !result with
       | Some frame ->
         let n = min len (Bytes.length frame) in
         Bytes.blit frame 0 buf pos n;
         copy_cpu env n;
         n
       | None -> 0)
    | Fd.Tcp conn ->
      let n = Tcp.recv conn buf ~pos ~len in
      Process.use_cpu Process.Sys (cfg env).Config.udp_proto_cost;
      copy_cpu env n;
      n
    | Fd.Chardev _ -> Errno.raise_errno Errno.EINVAL "read: write-only device"
  in
  syscall_exit env;
  n

let write env fd buf ~pos ~len =
  enter env;
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    Errno.raise_errno Errno.EINVAL "write";
  let f = Fd.get env.fds fd in
  let n =
    match f.Fd.of_kind with
    | Fd.File fh ->
      if not fh.Fd.writable then Errno.raise_errno Errno.EBADF "write";
      copy_cpu env len;
      let n =
        fs_guard "write" (fun () ->
            Fs.write fh.Fd.fs fh.Fd.ino ~off:fh.Fd.offset ~len buf ~pos)
      in
      fh.Fd.offset <- fh.Fd.offset + n;
      n
    | Fd.Chardev cd ->
      copy_cpu env len;
      Process.block "cdwrite" (fun waker ->
          Chardev.write_async cd buf pos len (fun () -> waker ()));
      len
    | Fd.Socket ({ sock; _ } as s) -> (
      match s.Fd.peer with
      | None -> Errno.raise_errno Errno.EINVAL "write: unconnected socket"
      | Some dst ->
        copy_cpu env len;
        Process.use_cpu Process.Sys (cfg env).Config.udp_proto_cost;
        Udp.sendto sock ~dst (Bytes.sub buf pos len);
        len)
    | Fd.Tcp conn ->
      copy_cpu env len;
      Process.use_cpu Process.Sys (cfg env).Config.udp_proto_cost;
      (try Tcp.send conn buf ~pos ~len
       with Invalid_argument m -> Errno.raise_errno Errno.EINVAL ("write: " ^ m));
      len
    | Fd.Framebuffer _ -> Errno.raise_errno Errno.EINVAL "write: read-only device"
  in
  syscall_exit env;
  n

let lseek env fd off =
  enter env;
  let f = Fd.get env.fds fd in
  match f.Fd.of_kind with
  | Fd.File fh ->
    if off < 0 then Errno.raise_errno Errno.EINVAL "lseek";
    fh.Fd.offset <- off;
    off
  | Fd.Chardev _ | Fd.Socket _ | Fd.Tcp _ | Fd.Framebuffer _ ->
    Errno.raise_errno Errno.ESPIPE "lseek"

let fsync env fd =
  enter env;
  let f = Fd.get env.fds fd in
  (match f.Fd.of_kind with
   | Fd.File fh -> fs_guard "fsync" (fun () -> Fs.fsync fh.Fd.fs fh.Fd.ino)
   | Fd.Chardev _ | Fd.Socket _ | Fd.Tcp _ | Fd.Framebuffer _ ->
     Errno.raise_errno Errno.EINVAL "fsync");
  syscall_exit env

let unlink env path =
  enter env;
  let fs, rel = resolve_fs env path "unlink" in
  fs_guard "unlink" (fun () -> Fs.unlink fs rel)

let mkdir env path =
  enter env;
  let fs, rel = resolve_fs env path "mkdir" in
  fs_guard "mkdir" (fun () -> ignore (Fs.mkdir fs rel))

let two_paths env a b call =
  let fs_a, rel_a = resolve_fs env a call in
  let fs_b, rel_b = resolve_fs env b call in
  if fs_a != fs_b then Errno.raise_errno Errno.EXDEV call;
  (fs_a, rel_a, rel_b)

let hardlink env existing fresh =
  enter env;
  let fs, rel_old, rel_new = two_paths env existing fresh "link" in
  fs_guard "link" (fun () -> Fs.link fs rel_old rel_new)

let rename env old_path new_path =
  enter env;
  let fs, rel_old, rel_new = two_paths env old_path new_path "rename" in
  fs_guard "rename" (fun () -> Fs.rename fs rel_old rel_new)

let fcntl_setfl env fd ~fasync =
  enter env;
  let f = Fd.get env.fds fd in
  f.Fd.of_fasync <- fasync

let file_size env fd =
  enter env;
  match (Fd.get env.fds fd).Fd.of_kind with
  | Fd.File fh -> fh.Fd.ino.Inode.size
  | Fd.Chardev _ | Fd.Socket _ | Fd.Tcp _ | Fd.Framebuffer _ ->
    Errno.raise_errno Errno.EINVAL "fstat"

(* {1 Sockets} *)

let socket env nif ~port ?rcvbuf () =
  enter env;
  let sock = Udp.create nif ~port ?rcvbuf () in
  Fd.alloc env.fds (Fd.Socket { sock; peer = None })

let socket_of env sock =
  enter env;
  Fd.alloc env.fds (Fd.Socket { sock; peer = None })

let get_socket env fd call =
  match (Fd.get env.fds fd).Fd.of_kind with
  | Fd.Socket s -> s
  | Fd.File _ | Fd.Chardev _ | Fd.Tcp _ | Fd.Framebuffer _ ->
    Errno.raise_errno Errno.EINVAL call

(* {1 TCP} *)

let tcp_listen env nif ~port =
  enter env;
  Tcp.listen nif ~port ()

let tcp_accept env l =
  enter env;
  let conn = Tcp.accept l in
  syscall_exit env;
  Fd.alloc env.fds (Fd.Tcp conn)

let tcp_connect env nif ~port ~dst ?rcvbuf () =
  enter env;
  match Tcp.connect nif ~port ~dst ?rcvbuf () with
  | conn ->
    syscall_exit env;
    Fd.alloc env.fds (Fd.Tcp conn)
  | exception Failure m -> Errno.raise_errno Errno.EIO ("connect: " ^ m)

let tcp_conn env fd =
  match (Fd.get env.fds fd).Fd.of_kind with
  | Fd.Tcp conn -> conn
  | Fd.File _ | Fd.Chardev _ | Fd.Socket _ | Fd.Framebuffer _ ->
    Errno.raise_errno Errno.EINVAL "tcp_conn"

let connect env fd addr =
  enter env;
  let s = get_socket env fd "connect" in
  s.Fd.peer <- Some addr

let sendto env fd dst buf ~pos ~len =
  enter env;
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    Errno.raise_errno Errno.EINVAL "sendto";
  let s = get_socket env fd "sendto" in
  copy_cpu env len;
  Process.use_cpu Process.Sys (cfg env).Config.udp_proto_cost;
  Udp.sendto s.Fd.sock ~dst (Bytes.sub buf pos len)

let recvfrom env fd buf ~pos ~len =
  enter env;
  let s = get_socket env fd "recvfrom" in
  match Udp.recv s.Fd.sock with
  | None -> Errno.raise_errno Errno.EBADF "recvfrom: socket closed"
  | Some dg ->
    let n = min len (Bytes.length dg.Udp.d_payload) in
    Bytes.blit dg.Udp.d_payload 0 buf pos n;
    Process.use_cpu Process.Sys (cfg env).Config.udp_proto_cost;
    copy_cpu env n;
    syscall_exit env;
    (n, dg.Udp.d_from)

let socket_addr env fd =
  enter env;
  Udp.addr (get_socket env fd "getsockname").Fd.sock

(* {1 splice} *)

let splice_eof = Splice.eof

let block_aligned env off =
  let bs = (cfg env).Config.block_size in
  if off mod bs <> 0 then Errno.raise_errno Errno.EINVAL "splice: unaligned offset";
  off / bs

let src_endpoint env (f : Fd.openfile) =
  match f.Fd.of_kind with
  | Fd.File fh ->
    if not fh.Fd.readable then Errno.raise_errno Errno.EBADF "splice";
    Endpoint.src_file fh.Fd.fs fh.Fd.ino
      ~off_blocks:(block_aligned env fh.Fd.offset) ()
  | Fd.Socket { sock; _ } -> Endpoint.Src_socket sock
  | Fd.Framebuffer fb -> Endpoint.Src_framebuffer fb
  | Fd.Tcp _ -> Errno.raise_errno Errno.EINVAL "splice: tcp source"
  | Fd.Chardev _ -> Errno.raise_errno Errno.EINVAL "splice: chardev source"

let dst_endpoint env (f : Fd.openfile) =
  match f.Fd.of_kind with
  | Fd.File fh ->
    if not fh.Fd.writable then Errno.raise_errno Errno.EBADF "splice";
    Endpoint.dst_file fh.Fd.fs fh.Fd.ino
      ~off_blocks:(block_aligned env fh.Fd.offset) ()
  | Fd.Socket s -> (
    match s.Fd.peer with
    | Some dst -> Endpoint.Dst_socket { sock = s.Fd.sock; dst }
    | None -> Errno.raise_errno Errno.EINVAL "splice: unconnected socket sink")
  | Fd.Tcp conn -> Endpoint.Dst_tcp conn
  | Fd.Chardev cd -> Endpoint.Dst_chardev cd
  | Fd.Framebuffer _ -> Errno.raise_errno Errno.EINVAL "splice: framebuffer sink"

let advance_offset (f : Fd.openfile) n =
  match f.Fd.of_kind with
  | Fd.File fh -> fh.Fd.offset <- fh.Fd.offset + n
  | Fd.Chardev _ | Fd.Socket _ | Fd.Tcp _ | Fd.Framebuffer _ -> ()

(* Setup cost: one bmap walk and table slot per source block (§5.2). *)
let charge_setup env (src : Fd.openfile) size =
  let bs = (cfg env).Config.block_size in
  let nblocks =
    match src.Fd.of_kind with
    | Fd.File fh ->
      let total =
        if size = Splice.eof then max 0 (fh.Fd.ino.Inode.size - fh.Fd.offset)
        else size
      in
      (total + bs - 1) / bs
    | Fd.Chardev _ | Fd.Socket _ | Fd.Tcp _ | Fd.Framebuffer _ -> 0
  in
  if nblocks > 0 then
    Process.use_cpu Process.Sys
      (Time.scale (cfg env).Config.splice_setup_per_block nblocks)

let splice_start env ~src ~dst ?config size =
  enter env;
  let fsrc = Fd.get env.fds src and fdst = Fd.get env.fds dst in
  charge_setup env fsrc size;
  let desc =
    fs_guard "splice" (fun () ->
        try
          Splice.start (Machine.splice_ctx env.machine)
            ~src:(src_endpoint env fsrc) ~dst:(dst_endpoint env fdst) ?config
            ~size ()
        with Invalid_argument msg -> Errno.raise_errno Errno.EINVAL msg)
  in
  let total = Splice.total_bytes desc in
  if total < max_int then begin
    advance_offset fsrc total;
    advance_offset fdst total
  end;
  desc

let splice env ~src ~dst size =
  let fsrc = Fd.get env.fds src and fdst = Fd.get env.fds dst in
  let fasync = fsrc.Fd.of_fasync || fdst.Fd.of_fasync in
  let desc = splice_start env ~src ~dst size in
  if fasync then begin
    let target = env.proc and sched = Machine.sched env.machine in
    Splice.on_complete desc (fun _ -> Signal.deliver sched target Signal.sigio);
    (* Unbounded (until-interrupted) splices have no meaningful byte
       count yet. *)
    let total = Splice.total_bytes desc in
    if total = max_int then 0 else total
  end
  else begin
    let result = Splice.wait desc in
    syscall_exit env;
    match result with
    | Ok n -> n
    | Error reason -> Errno.raise_errno Errno.EIO ("splice: " ^ reason)
  end

(* {1 splice graphs} *)

module Graph = Kpath_graph.Graph

(* Bytes a file source will actually stream, for offset accounting
   (mirrors the graph's own size resolution). *)
let graph_src_total (fh : Fd.file_handle) size =
  let avail = max 0 (fh.Fd.ino.Inode.size - fh.Fd.offset) in
  if size = Splice.eof then avail else min size avail

let graph_src_node env g (f : Fd.openfile) size =
  match f.Fd.of_kind with
  | Fd.File fh ->
    if not fh.Fd.readable then Errno.raise_errno Errno.EBADF "splice_graph";
    Graph.add_file_source g ~fs:fh.Fd.fs ~ino:fh.Fd.ino
      ~off_blocks:(block_aligned env fh.Fd.offset)
      ~size:(if size = Splice.eof then -1 else size)
      ()
  | Fd.Chardev _ | Fd.Socket _ | Fd.Tcp _ | Fd.Framebuffer _ ->
    Errno.raise_errno Errno.EINVAL "splice_graph: sources must be files"

let graph_sink_node env g (f : Fd.openfile) =
  match f.Fd.of_kind with
  | Fd.File fh ->
    if not fh.Fd.writable then Errno.raise_errno Errno.EBADF "splice_graph";
    Graph.add_sink g
      (Graph.Sink_file
         {
           fs = fh.Fd.fs;
           ino = fh.Fd.ino;
           off_blocks = block_aligned env fh.Fd.offset;
         })
  | Fd.Tcp conn -> Graph.add_sink g (Graph.Sink_tcp conn)
  | Fd.Socket s -> (
    match s.Fd.peer with
    | Some dst -> Graph.add_sink g (Graph.Sink_udp { sock = s.Fd.sock; dst })
    | None ->
      Errno.raise_errno Errno.EINVAL "splice_graph: unconnected socket sink")
  | Fd.Chardev cd -> Graph.add_sink g (Graph.Sink_chardev cd)
  | Fd.Framebuffer _ ->
    Errno.raise_errno Errno.EINVAL "splice_graph: framebuffer sink"

let splice_graph_start env ~srcs ~dsts ?config ?filters ?window size =
  enter env;
  (match (srcs, dsts) with
   | [], _ | _, [] ->
     Errno.raise_errno Errno.EINVAL "splice_graph: empty endpoint list"
   | [ _ ], _ | _, [ _ ] -> ()
   | _ ->
     Errno.raise_errno Errno.EINVAL
       "splice_graph: topology must be one-to-many or many-to-one");
  let fsrcs = List.map (Fd.get env.fds) srcs in
  let fdsts = List.map (Fd.get env.fds) dsts in
  List.iter (fun f -> charge_setup env f size) fsrcs;
  let g = Graph.create (Machine.graph_ctx env.machine) ?window () in
  let g =
    fs_guard "splice_graph" (fun () ->
        try
          let src_nodes =
            List.map (fun f -> graph_src_node env g f size) fsrcs
          in
          let dst_nodes = List.map (graph_sink_node env g) fdsts in
          List.iter
            (fun src ->
              List.iter
                (fun dst -> ignore (Graph.connect g ?config ?filters ~src ~dst ()))
                dst_nodes)
            src_nodes;
          Graph.start g;
          g
        with Invalid_argument msg -> Errno.raise_errno Errno.EINVAL msg)
  in
  (* Advance file offsets past the spliced ranges, as splice(2) does:
     each source by what it streams, a file sink by everything it
     receives. *)
  let totals =
    List.map
      (fun (f : Fd.openfile) ->
        match f.Fd.of_kind with
        | Fd.File fh -> graph_src_total fh size
        | _ -> 0)
      fsrcs
  in
  List.iter2 advance_offset fsrcs totals;
  let sum = List.fold_left ( + ) 0 totals in
  List.iter (fun f -> advance_offset f sum) fdsts;
  g

let splice_graph env ~srcs ~dsts ?config ?filters ?window size =
  let fasync =
    List.exists
      (fun fd -> (Fd.get env.fds fd).Fd.of_fasync)
      (srcs @ dsts)
  in
  let g = splice_graph_start env ~srcs ~dsts ?config ?filters ?window size in
  if fasync then begin
    let target = env.proc and sched = Machine.sched env.machine in
    Graph.on_complete g (fun _ -> Signal.deliver sched target Signal.sigio);
    0
  end
  else begin
    let result = Graph.wait g in
    syscall_exit env;
    match result with
    | Ok n -> n
    | Error reason -> Errno.raise_errno Errno.EIO ("splice_graph: " ^ reason)
  end

(* The verifier replaces run-time policing: parse and prove the program
   here, in process context, so the interrupt-side pump can run it
   unchecked. The source is copied in like any user buffer; the
   verification pass itself is a single linear scan, charged as part of
   the trap. Under the compiled VM backend the accepted program is also
   translated to closures here — load time, process context — so the
   first block through an edge pays nothing. *)
let prog_load env text =
  enter env;
  copy_cpu env (String.length text);
  match Kpath_vm.Asm.load text with
  | Ok p as ok ->
    Graph.preload_prog (Machine.graph_ctx env.machine) p;
    ok
  | Error _ as e -> e

(* {1 Signals and timers} *)

let sigaction env signo handler =
  enter env;
  match handler with
  | Some fn -> Signal.handle env.proc signo fn
  | None -> Signal.ignore_signal env.proc signo

let rec rearm_itimer env interval =
  let engine = Machine.engine env.machine in
  env.itimer <-
    Some
      (Engine.schedule_after engine interval (fun () ->
           Signal.deliver (Machine.sched env.machine) env.proc Signal.sigalrm;
           if env.itimer <> None then rearm_itimer env interval))

let setitimer env interval =
  enter env;
  (match env.itimer with
   | Some h ->
     Engine.cancel (Machine.engine env.machine) h;
     env.itimer <- None
   | None -> ());
  match interval with
  | Some span when Time.(span > Time.zero) -> rearm_itimer env span
  | Some _ | None -> ()

let pause env =
  enter env;
  Sched.pause (Machine.sched env.machine);
  syscall_exit env

let sleep env span =
  enter env;
  ignore (Sched.sleep_interruptible (Machine.sched env.machine) span);
  syscall_exit env

let getpid env = env.proc.Process.pid
