# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench quick-bench doc examples clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

quick-bench:
	dune exec bench/main.exe -- quick

doc:
	dune build @doc

examples:
	dune exec examples/quickstart.exe
	dune exec examples/movie_playback.exe
	dune exec examples/udp_relay.exe
	dune exec examples/disk_to_disk_copy.exe
	dune exec examples/video_server.exe
	dune exec examples/file_server.exe

clean:
	dune clean
