(* Recorder: capture an input device straight to disk with splice.

   The reverse of the paper's §4 playback example: a microphone-class
   device produces samples at a fixed rate, and a bounded splice writes
   them to a file with no process on the data path. The take is read
   back and verified sample-for-sample; a second take from a device much
   faster than the disk shows the real-time overrun semantics.

   Run with: dune exec examples/recorder.exe *)

open Kpath_sim
open Kpath_dev
open Kpath_core
open Kpath_kernel

let record ~rate ~seconds =
  let m = Machine.create () in
  let drive = Machine.make_drive m ~name:"rz58-0" ~kind:`Rz58 () in
  let mic =
    Micdev.create ~name:"mic0" ~rate ~engine:(Machine.engine m)
      ~intr:(Machine.intr m) ()
  in
  let size = int_of_float rate * seconds in
  let _p =
    Machine.spawn m ~name:"recorder" (fun () ->
        let fs =
          Kpath_fs.Fs.mkfs ~cache:(Machine.cache m) (Machine.blkdev drive)
            ~ninodes:16
        in
        Machine.mount m "/" fs;
        let take = Kpath_fs.Fs.create_file fs "/take1.pcm" in
        let t0 = Machine.now m in
        let d =
          Splice.start (Machine.splice_ctx m) ~src:(Endpoint.Src_mic mic)
            ~dst:(Endpoint.dst_file fs take ()) ~size ()
        in
        (match Splice.wait d with
         | Ok n ->
           let dt = Time.diff (Machine.now m) t0 in
           (* Verify the take against the device's sample pattern. *)
           let buf = Bytes.create 8192 in
           let bad = ref 0 and off = ref 0 in
           let rec verify () =
             let want = min 8192 (size - !off) in
             if want > 0 then begin
               ignore (Kpath_fs.Fs.read fs take ~off:!off ~len:want buf ~pos:0);
               let expect = Micdev.sample_pattern ~off:!off ~len:want in
               for i = 0 to want - 1 do
                 if Bytes.get buf i <> Bytes.get expect i then incr bad
               done;
               off := !off + want;
               verify ()
             end
           in
           if Splice.overruns d = 0 then verify ();
           Format.printf
             "%7.3f MB/s: recorded %d bytes in %a, %d bytes overrun%s@."
             (rate /. 1e6) n Time.pp dt (Splice.overruns d)
             (if Splice.overruns d = 0 then
                Printf.sprintf ", verified (%d bad)" !bad
              else " (device outran the disk, samples dropped)")
         | Error e -> Format.printf "recording failed: %s@." e);
        Micdev.stop mic)
  in
  Machine.run m

let () =
  Format.printf "recording 3-second takes to an RZ58:@.";
  record ~rate:64_000.0 ~seconds:3;     (* comfortably within disk rate *)
  record ~rate:1.4e6 ~seconds:3;        (* CD-quality-ish, still fine *)
  record ~rate:16e6 ~seconds:1          (* hopeless: overruns *)
