open Kpath_sim
open Kpath_dev
open Kpath_proc

(* Which intrusive LRU list (if any) a cache-owned buffer is on. *)
let l_none = 0

let l_free = 1
let l_dirty = 2

type t = {
  block_size : int;
  n : int;
  max_cluster : int;
  bufs : Buf.t array;
  hash : (int * int, Buf.t) Hashtbl.t;
  mutable free_waiters : (unit -> unit) list;
  mutable stamp : int;
  mutable next_hdr_id : int;
  mutable hdr_pool : Buf.t list;
  mutable hdrs_out : int;
  (* O(1) LRU, BSD free-list style: every non-busy cache-owned buffer is
     on exactly one doubly-linked list in release order (head = least
     recently used) — clean buffers on the free list, delayed writes on
     the dirty list. Links are indices into [bufs]; -1 terminates. Both
     lists stay sorted by (b_stamp, b_id), matching the order the old
     full-array victim scans implied. *)
  fnext : int array;
  fprev : int array;
  onlist : int array;
  mutable free_head : int;
  mutable free_tail : int;
  mutable dirty_head : int;
  mutable dirty_tail : int;
  (* Incrementally-maintained counts (previously O(n) folds). *)
  mutable nbusy : int;
  mutable ndirty : int;
  mutable npinned : int;
  stats : Stats.t;
}

let block_size t = t.block_size

let nbufs t = t.n

let max_cluster t = t.max_cluster

let stats t = t.stats

let count name t = Stats.incr (Stats.counter t.stats name)

let touch t (b : Buf.t) =
  t.stamp <- t.stamp + 1;
  b.b_stamp <- t.stamp

(* {2 Free/dirty list plumbing} *)

let unlink t (b : Buf.t) =
  let i = b.b_id in
  let w = t.onlist.(i) in
  if w <> l_none then begin
    let p = t.fprev.(i) and nx = t.fnext.(i) in
    (if p >= 0 then t.fnext.(p) <- nx
     else if w = l_free then t.free_head <- nx
     else t.dirty_head <- nx);
    (if nx >= 0 then t.fprev.(nx) <- p
     else if w = l_free then t.free_tail <- p
     else t.dirty_tail <- p);
    t.onlist.(i) <- l_none;
    t.fprev.(i) <- -1;
    t.fnext.(i) <- -1
  end

let append t which (b : Buf.t) =
  let i = b.b_id in
  let tail = if which = l_free then t.free_tail else t.dirty_tail in
  t.fprev.(i) <- tail;
  t.fnext.(i) <- -1;
  (if tail >= 0 then t.fnext.(tail) <- i
   else if which = l_free then t.free_head <- i
   else t.dirty_head <- i);
  (if which = l_free then t.free_tail <- i else t.dirty_tail <- i);
  t.onlist.(i) <- which

(* Rebuild both lists from the flags, in (stamp, id) order. Only needed
   after [invalidate_dev] rewrites flags wholesale: cleaned buffers keep
   their stamps, so their LRU position must be recomputed rather than
   appended at the tail. Rare (cold-cache resets), so O(n log n) is fine. *)
let rebuild_lists t =
  t.free_head <- -1;
  t.free_tail <- -1;
  t.dirty_head <- -1;
  t.dirty_tail <- -1;
  Array.iteri
    (fun i _ ->
      t.onlist.(i) <- l_none;
      t.fprev.(i) <- -1;
      t.fnext.(i) <- -1)
    t.fnext;
  let nonbusy =
    Array.to_list t.bufs
    |> List.filter (fun (b : Buf.t) -> not (Buf.has b Buf.b_busy))
    |> List.sort (fun (a : Buf.t) (b : Buf.t) ->
           compare (a.b_stamp, a.b_id) (b.b_stamp, b.b_id))
  in
  List.iter
    (fun (b : Buf.t) ->
      append t (if Buf.has b Buf.b_delwri then l_dirty else l_free) b)
    nonbusy

(* A non-busy cache-owned buffer becomes busy: off its list, counted. *)
let take t (b : Buf.t) =
  unlink t b;
  t.nbusy <- t.nbusy + 1;
  Buf.set b Buf.b_busy

let set_delwri t (b : Buf.t) =
  if not (Buf.has b Buf.b_delwri) then begin
    Buf.set b Buf.b_delwri;
    if b.b_id < t.n then t.ndirty <- t.ndirty + 1
  end

let clear_delwri t (b : Buf.t) =
  if Buf.has b Buf.b_delwri then begin
    Buf.clear b Buf.b_delwri;
    if b.b_id < t.n then t.ndirty <- t.ndirty - 1
  end

let create ~block_size ~nbufs ?(max_cluster = 1) () =
  if block_size <= 0 || nbufs <= 0 then invalid_arg "Cache.create: bad sizes";
  if max_cluster <= 0 then invalid_arg "Cache.create: max_cluster <= 0";
  let t =
    {
      block_size;
      n = nbufs;
      max_cluster;
      bufs = Array.init nbufs (fun i -> Buf.make ~id:i ~data_size:block_size);
      hash = Hashtbl.create (nbufs * 2);
      free_waiters = [];
      stamp = 0;
      next_hdr_id = nbufs;
      hdr_pool = [];
      hdrs_out = 0;
      fnext = Array.make nbufs (-1);
      fprev = Array.make nbufs (-1);
      onlist = Array.make nbufs l_none;
      free_head = -1;
      free_tail = -1;
      dirty_head = -1;
      dirty_tail = -1;
      nbusy = 0;
      ndirty = 0;
      npinned = 0;
      stats = Stats.create ();
    }
  in
  (* All buffers start clean and free, in id order (stamps all zero). *)
  Array.iter (fun b -> append t l_free b) t.bufs;
  t

let unhash t (b : Buf.t) =
  if b.b_in_hash then begin
    (match b.b_dev with
     | Some dev -> Hashtbl.remove t.hash (dev.Blkdev.dv_id, b.b_blkno)
     | None -> ());
    b.b_in_hash <- false
  end

let rehash t (b : Buf.t) (dev : Blkdev.t) blkno =
  unhash t b;
  b.b_dev <- Some dev;
  b.b_blkno <- blkno;
  Hashtbl.replace t.hash (dev.Blkdev.dv_id, blkno) b;
  b.b_in_hash <- true

let wake_list l = List.iter (fun w -> w ()) (List.rev l)

let wake_free t =
  let ws = t.free_waiters in
  t.free_waiters <- [];
  wake_list ws

(* Start the device operation described by the buffer. Completion is
   delivered through [biodone]. *)
let[@kpath.intr] rec start_io t (b : Buf.t) ~write =
  let dev = match b.b_dev with Some d -> d | None -> invalid_arg "start_io" in
  count (if write then "cache.dev_writes" else "cache.dev_reads") t;
  if write then Buf.clear b Buf.b_read else Buf.set b Buf.b_read;
  Buf.clear b (Buf.b_done lor Buf.b_error_flag);
  b.b_error <- None;
  dev.Blkdev.dv_strategy
    {
      Blkdev.r_blkno = b.b_blkno;
      r_data = b.b_data;
      r_count = b.b_bcount;
      r_write = write;
      r_done = (fun err -> biodone_ref t b err);
    }

and[@kpath.intr] brelse t (b : Buf.t) =
  if not (Buf.has b Buf.b_busy) then invalid_arg "brelse: buffer not busy";
  if b.b_refs > 0 then invalid_arg "brelse: buffer still pinned";
  let ws = b.b_waiters in
  b.b_waiters <- [];
  if Buf.has b Buf.b_inval || Buf.has b Buf.b_error_flag then begin
    unhash t b;
    clear_delwri t b;
    b.b_flags <- 0;
    b.b_error <- None;
    b.b_splice <- -1;
    b.b_lblkno <- -1
  end
  else
    Buf.clear b (Buf.b_busy lor Buf.b_async lor Buf.b_call lor Buf.b_read);
  b.b_iodone <- None;
  touch t b;
  if b.b_id < t.n then begin
    t.nbusy <- t.nbusy - 1;
    append t (if Buf.has b Buf.b_delwri then l_dirty else l_free) b
  end;
  wake_list ws;
  wake_free t

and[@kpath.intr] biodone_ref t (b : Buf.t) err =
  (match err with
   | Some e ->
     Buf.set b Buf.b_error_flag;
     b.b_error <- Some e;
     count "cache.io_errors" t
   | None -> ());
  Buf.set b Buf.b_done;
  if Buf.has b Buf.b_call then begin
    Buf.clear b Buf.b_call;
    match b.b_iodone with
    | Some f ->
      b.b_iodone <- None;
      f b
    | None -> ()
  end
  else if Buf.has b Buf.b_async then brelse t b
  else begin
    let ws = b.b_waiters in
    b.b_waiters <- [];
    wake_list ws
  end

let biodone = biodone_ref

(* Reference-counted aliasing: a busy buffer whose data area is shared
   by several downstream writers (splice-graph fan-out) is pinned once
   per writer; the last unpin releases it. The count only defers the
   release — ownership rules are otherwise unchanged, and [brelse]
   refuses pinned buffers so a release can never happen twice. *)
let[@kpath.intr] pin t (b : Buf.t) =
  if not (Buf.has b Buf.b_busy) then invalid_arg "Cache.pin: buffer not busy";
  if b.b_refs = 0 && b.b_id < t.n then t.npinned <- t.npinned + 1;
  b.b_refs <- b.b_refs + 1;
  count "cache.pins" t

let[@kpath.intr] unpin t (b : Buf.t) =
  if b.b_refs <= 0 then invalid_arg "Cache.unpin: buffer not pinned";
  b.b_refs <- b.b_refs - 1;
  if b.b_refs = 0 && b.b_id < t.n then t.npinned <- t.npinned - 1;
  count "cache.unpins" t;
  if b.b_refs = 0 then brelse t b

(* Pick a reusable buffer, classic 4.2BSD free-list style: walk the
   non-busy buffers from least to most recently used; delayed-write
   buffers reaching the head are pushed to their device asynchronously
   and skipped, and the first clean one is the victim. This is what
   keeps a copy's destination disk continuously fed while its source
   disk streams reads. *)
let victim t =
  (* The least-recently-used clean buffer is the free-list head; every
     delayed write older than it (the dirty-list prefix — both lists are
     stamp-ordered) is pushed to its device asynchronously. The pushouts
     are issued in buffer-id order, matching the array scan this
     replaces, so device queues see the identical request order. *)
  let clean = if t.free_head >= 0 then Some t.bufs.(t.free_head) else None in
  let horizon =
    match clean with Some (c : Buf.t) -> c.b_stamp | None -> max_int
  in
  let to_flush = ref [] in
  let i = ref t.dirty_head in
  while !i >= 0 && t.bufs.(!i).Buf.b_stamp < horizon do
    to_flush := t.bufs.(!i) :: !to_flush;
    i := t.fnext.(!i)
  done;
  let flushed = !to_flush <> [] in
  List.iter
    (fun (b : Buf.t) ->
      take t b;
      clear_delwri t b;
      Buf.set b Buf.b_async;
      count "cache.delwri_flushes" t;
      start_io t b ~write:true)
    (List.sort
       (fun (a : Buf.t) (b : Buf.t) -> compare a.b_id b.b_id)
       !to_flush);
  match clean with
  | Some b -> `Clean b
  | None -> if flushed then `Flushing else `None

let reassign t (b : Buf.t) dev blkno =
  take t b;
  rehash t b dev blkno;
  b.b_flags <- Buf.b_busy;
  b.b_refs <- 0;
  b.b_error <- None;
  b.b_iodone <- None;
  b.b_bcount <- t.block_size;
  b.b_lblkno <- -1;
  b.b_splice <- -1;
  touch t b

let[@kpath.blocks] rec getblk t (dev : Blkdev.t) blkno =
  match Hashtbl.find_opt t.hash (dev.Blkdev.dv_id, blkno) with
  | Some b when Buf.has b Buf.b_busy ->
    count "cache.sleeps" t;
    Process.block "getblk" (fun w -> b.b_waiters <- w :: b.b_waiters);
    getblk t dev blkno
  | Some b ->
    take t b;
    touch t b;
    b
  | None -> (
    match victim t with
    | `Clean b ->
      reassign t b dev blkno;
      b
    | `Flushing ->
      (* Flushes were started; they may already have completed (the
         RAM disk copies synchronously in our context), so re-scan
         rather than sleeping past the wakeup. *)
      getblk t dev blkno
    | `None ->
      count "cache.sleeps" t;
      Process.block "getblk-free" (fun w ->
          t.free_waiters <- w :: t.free_waiters);
      getblk t dev blkno)

let[@kpath.intr] getblk_nb t (dev : Blkdev.t) blkno =
  match Hashtbl.find_opt t.hash (dev.Blkdev.dv_id, blkno) with
  | Some b when Buf.has b Buf.b_busy -> None
  | Some b ->
    take t b;
    touch t b;
    Some b
  | None -> (
    match victim t with
    | `Clean b ->
      reassign t b dev blkno;
      Some b
    | `Flushing | `None -> None)

let[@kpath.blocks] rec biowait (b : Buf.t) =
  if Buf.has b Buf.b_done then
    match b.b_error with Some e -> Error e | None -> Ok ()
  else begin
    Process.block "biowait" (fun w -> b.b_waiters <- w :: b.b_waiters);
    biowait b
  end

let[@kpath.blocks] bread t dev blkno =
  let b = getblk t dev blkno in
  if Buf.valid b then begin
    count "cache.hits" t;
    b
  end
  else begin
    count "cache.misses" t;
    start_io t b ~write:false;
    ignore (biowait b);
    b
  end

let[@kpath.blocks] breada t dev blkno ~ahead =
  (* Fire the read-ahead first so the device can pipeline it behind the
     demand read. *)
  (if ahead >= 0
   && ahead < dev.Blkdev.dv_nblocks
   && not (Hashtbl.mem t.hash (dev.Blkdev.dv_id, ahead))
   then
     match getblk_nb t dev ahead with
     | Some ab ->
       count "cache.readaheads" t;
       Buf.set ab Buf.b_async;
       start_io t ab ~write:false
     | None -> ());
  bread t dev blkno

let[@kpath.blocks] bwrite t (b : Buf.t) =
  if not (Buf.has b Buf.b_busy) then invalid_arg "bwrite: buffer not busy";
  count "cache.bwrites" t;
  clear_delwri t b;
  start_io t b ~write:true;
  ignore (biowait b);
  brelse t b

let bawrite t (b : Buf.t) =
  if not (Buf.has b Buf.b_busy) then invalid_arg "bawrite: buffer not busy";
  count "cache.bawrites" t;
  clear_delwri t b;
  Buf.set b Buf.b_async;
  start_io t b ~write:true

let bdwrite t (b : Buf.t) =
  if not (Buf.has b Buf.b_busy) then invalid_arg "bdwrite: buffer not busy";
  count "cache.bdwrites" t;
  set_delwri t b;
  Buf.set b Buf.b_done;
  brelse t b

let cached t (dev : Blkdev.t) blkno =
  match Hashtbl.find_opt t.hash (dev.Blkdev.dv_id, blkno) with
  | Some b -> Buf.has b Buf.b_done || Buf.has b Buf.b_delwri
  | None -> false

(* fsync back end, pipelined: start every delayed write asynchronously,
   then wait for each block to come to rest (the device services the
   whole batch back to back instead of one biowait round trip per
   block). *)
let flush_start t (dev : Blkdev.t) blkno =
  match Hashtbl.find_opt t.hash (dev.Blkdev.dv_id, blkno) with
  | Some b when (not (Buf.has b Buf.b_busy)) && Buf.has b Buf.b_delwri ->
    take t b;
    clear_delwri t b;
    Buf.set b Buf.b_async;
    count "cache.fsync_writes" t;
    start_io t b ~write:true
  | Some _ | None -> ()

let[@kpath.blocks] rec flush_await t (dev : Blkdev.t) blkno =
  match Hashtbl.find_opt t.hash (dev.Blkdev.dv_id, blkno) with
  | None -> ()
  | Some b when Buf.has b Buf.b_busy ->
    Process.block "fsync" (fun w -> b.b_waiters <- w :: b.b_waiters);
    flush_await t dev blkno
  | Some b when Buf.has b Buf.b_delwri ->
    (* Re-dirtied while we waited: write it synchronously. *)
    take t b;
    bwrite t b;
    flush_await t dev blkno
  | Some _ -> ()

let invalidate_dev t (dev : Blkdev.t) =
  Array.iter
    (fun (b : Buf.t) ->
      match b.b_dev with
      | Some d when d.Blkdev.dv_id = dev.Blkdev.dv_id ->
        if Buf.has b Buf.b_busy then
          invalid_arg "Cache.invalidate_dev: device has busy buffers";
        unhash t b;
        clear_delwri t b;
        b.b_flags <- 0;
        b.b_error <- None;
        b.b_dev <- None;
        b.b_blkno <- -1
      | Some _ | None -> ())
    t.bufs;
  (* Cleaned buffers kept their stamps; recompute list positions. *)
  rebuild_lists t

let[@kpath.intr] bread_nb t dev blkno ~iodone =
  match getblk_nb t dev blkno with
  | None -> `Busy
  | Some b ->
    if Buf.valid b then begin
      count "cache.hits" t;
      `Hit b
    end
    else begin
      count "cache.misses" t;
      Buf.set b Buf.b_call;
      b.b_iodone <- Some iodone;
      start_io t b ~write:false;
      `Started b
    end

let[@kpath.intr] awrite_call t (b : Buf.t) ~iodone =
  if not (Buf.has b Buf.b_busy) then invalid_arg "awrite_call: buffer not busy";
  count "cache.awrite_calls" t;
  Buf.set b Buf.b_call;
  b.b_iodone <- Some iodone;
  clear_delwri t b;
  start_io t b ~write:true

let[@kpath.blocks] rec invalidate_cached t (dev : Blkdev.t) blkno =
  match Hashtbl.find_opt t.hash (dev.Blkdev.dv_id, blkno) with
  | None -> ()
  | Some b when Buf.has b Buf.b_busy ->
    Process.block "inval" (fun w -> b.b_waiters <- w :: b.b_waiters);
    invalidate_cached t dev blkno
  | Some b ->
    take t b;
    Buf.set b Buf.b_inval;
    clear_delwri t b;
    brelse t b

let[@kpath.intr] getblk_hdr t (dev : Blkdev.t) blkno =
  let b =
    match t.hdr_pool with
    | b :: rest ->
      t.hdr_pool <- rest;
      b
    | [] ->
      let b = Buf.make ~id:t.next_hdr_id ~data_size:0 in
      t.next_hdr_id <- t.next_hdr_id + 1;
      b
  in
  t.hdrs_out <- t.hdrs_out + 1;
  b.b_dev <- Some dev;
  b.b_blkno <- blkno;
  b.b_flags <- Buf.b_busy;
  b.b_error <- None;
  b.b_iodone <- None;
  b.b_bcount <- 0;
  b.b_data <- Bytes.empty;
  b.b_lblkno <- -1;
  b.b_splice <- -1;
  b

let[@kpath.intr] release_hdr t (b : Buf.t) =
  if b.b_in_hash then invalid_arg "Cache.release_hdr: cache-owned buffer";
  t.hdrs_out <- t.hdrs_out - 1;
  b.b_flags <- 0;
  b.b_data <- Bytes.empty;
  b.b_dev <- None;
  b.b_iodone <- None;
  b.b_waiters <- [];
  t.hdr_pool <- b :: t.hdr_pool

(* {2 Cluster I/O}

   Classic 4.3BSD cluster read/write: physically contiguous blocks ride
   one multi-block strategy call, so the device raises one completion
   interrupt per cluster instead of one per block. The transfer goes
   through a {!getblk_hdr} header whose data area stands in for the
   remapped member pages (BSD's [cluster_rbuild]/[cluster_wbuild]); on
   completion the header fans out to each member buffer via [biodone].
   An I/O error breaks the cluster up: each member is re-issued as a
   single-block request, so the injected error lands on exactly the bad
   block's header (the device layer leaves the poison armed for
   multi-block requests — see [Disk.inject_error]). *)

let[@kpath.intr] cluster_fanout t members ~write ~per_block =
  fun (h : Buf.t) ->
    let err = h.b_error in
    let data = h.b_data in
    release_hdr t h;
    match err with
    | Some _ ->
      (* Cluster breakup: single-block retries isolate the error. *)
      count "cache.cluster_breakups" t;
      List.iter (fun (b : Buf.t) -> start_io t b ~write) members
    | None ->
      List.iteri
        (fun i (b : Buf.t) ->
          per_block i data b;
          biodone_ref t b None)
        members

(* Mark a member in-flight the way [start_io] would, without issuing a
   request of its own: the cluster header carries the transfer. *)
let cluster_member (b : Buf.t) ~write =
  if write then Buf.clear b Buf.b_read else Buf.set b Buf.b_read;
  Buf.clear b (Buf.b_done lor Buf.b_error_flag);
  b.b_error <- None

let[@kpath.intr] cluster_read t (dev : Blkdev.t) blkno members =
  let bs = t.block_size in
  let k = List.length members in
  count "cache.cluster_reads" t;
  List.iter (fun b -> cluster_member b ~write:false) members;
  let hdr = getblk_hdr t dev blkno in
  hdr.b_data <- Bytes.create (k * bs);
  hdr.b_bcount <- k * bs;
  Buf.set hdr Buf.b_call;
  hdr.b_iodone <-
    Some
      (cluster_fanout t members ~write:false ~per_block:(fun i data b ->
           Bytes.blit data (i * bs) b.Buf.b_data 0 bs));
  start_io t hdr ~write:false

let[@kpath.intr] breadn t (dev : Blkdev.t) blkno ~n ~iodone =
  let n = max 1 (min n t.max_cluster) in
  match getblk_nb t dev blkno with
  | None -> `Busy
  | Some b0 ->
    if Buf.valid b0 then begin
      count "cache.hits" t;
      `Hit b0
    end
    else begin
      (* Extend the run while the next block is absent from the cache (a
         cached or busy block truncates the run — re-reading it would
         clobber newer data) and a buffer can be recycled for it. *)
      let members = ref [ b0 ] in
      let k = ref 1 in
      let stop = ref false in
      while (not !stop) && !k < n do
        let bn = blkno + !k in
        if bn >= dev.Blkdev.dv_nblocks || Hashtbl.mem t.hash (dev.Blkdev.dv_id, bn)
        then stop := true
        else
          match getblk_nb t dev bn with
          | None -> stop := true
          | Some b ->
            members := b :: !members;
            incr k
      done;
      let members = List.rev !members in
      List.iter
        (fun (b : Buf.t) ->
          count "cache.misses" t;
          Buf.set b Buf.b_call;
          b.b_iodone <- Some iodone)
        members;
      (match members with
       | [ b ] -> start_io t b ~write:false
       | _ -> cluster_read t dev blkno members);
      `Started members
    end

(* One coalesced write for a run of adjacent delayed-write buffers
   (BSD's [cluster_wbuild]): the members' data rides a header transfer,
   written with a single strategy call; completion fans out to release
   each member ([B_ASYNC]). *)
let flush_cluster t (dev : Blkdev.t) (members : Buf.t list) =
  let k = List.length members in
  count "cache.cluster_writes" t;
  List.iter
    (fun (b : Buf.t) ->
      take t b;
      clear_delwri t b;
      Buf.set b Buf.b_async;
      cluster_member b ~write:true;
      count "cache.fsync_writes" t)
    members;
  let hdr = getblk_hdr t dev (List.hd members).Buf.b_blkno in
  hdr.b_data <-
    Bytes.concat Bytes.empty (List.map (fun (b : Buf.t) -> b.Buf.b_data) members);
  hdr.b_bcount <- k * t.block_size;
  Buf.set hdr Buf.b_call;
  hdr.b_iodone <-
    Some (cluster_fanout t members ~write:true ~per_block:(fun _ _ _ -> ()));
  start_io t hdr ~write:true

let[@kpath.blocks] flush_blocks t dev blknos =
  let flushable blkno =
    match Hashtbl.find_opt t.hash (dev.Blkdev.dv_id, blkno) with
    | Some b when (not (Buf.has b Buf.b_busy)) && Buf.has b Buf.b_delwri ->
      Some b
    | Some _ | None -> None
  in
  (if t.max_cluster <= 1 then List.iter (flush_start t dev) blknos
   else begin
     (* Walk the work list coalescing runs of adjacent dirty blocks. *)
     let rec go = function
       | [] -> ()
       | blkno :: rest -> (
         match flushable blkno with
         | None -> go rest
         | Some b ->
           let members = ref [ b ] in
           let k = ref 1 in
           let rest = ref rest in
           let stop = ref false in
           while (not !stop) && !k < t.max_cluster do
             match !rest with
             | next :: tl when next = blkno + !k -> (
               match flushable next with
               | Some nb ->
                 members := nb :: !members;
                 incr k;
                 rest := tl
               | None -> stop := true)
             | _ -> stop := true
           done;
           (match List.rev !members with
            | [ _ ] -> flush_start t dev blkno
            | ms -> flush_cluster t dev ms);
           go !rest)
     in
     go blknos
   end);
  List.iter (flush_await t dev) blknos

let[@kpath.blocks] flush_dev t (dev : Blkdev.t) =
  let blknos =
    Hashtbl.fold
      (fun (d, blkno) _ acc -> if d = dev.Blkdev.dv_id then blkno :: acc else acc)
      t.hash []
    |> List.sort compare
  in
  flush_blocks t dev blknos

(* Maintained incrementally; [check_invariants] cross-checks them
   against full folds over the pool. *)
let busy_count t = t.nbusy

let pinned_count t = t.npinned

let dirty_count t = t.ndirty

let check_invariants t =
  let fail fmt = Format.kasprintf failwith fmt in
  (* Hash entries point at buffers with the matching identity. Checked
     in (dev, blkno) order so any failure message is deterministic. *)
  Hashtbl.fold (fun key b acc -> (key, b) :: acc) t.hash []
  |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)
  |> List.iter (fun ((dev_id, blkno), (b : Buf.t)) ->
         if not b.b_in_hash then fail "hash entry for un-hashed %a" Buf.pp b;
         match b.b_dev with
         | Some d when d.Blkdev.dv_id = dev_id && b.b_blkno = blkno -> ()
         | _ -> fail "hash key mismatch for %a" Buf.pp b);
  (* Hashed buffers are present in the hash under their own key. *)
  Array.iter
    (fun (b : Buf.t) ->
      if b.b_in_hash then begin
        match Hashtbl.find_opt t.hash (Buf.key b) with
        | Some b' when b' == b -> ()
        | _ -> fail "buffer %a missing from hash" Buf.pp b
      end;
      if Buf.has b Buf.b_delwri && not (Buf.has b Buf.b_done) then
        fail "dirty but invalid: %a" Buf.pp b;
      if b.b_refs < 0 then fail "negative refcount: %a" Buf.pp b;
      if b.b_refs > 0 && not (Buf.has b Buf.b_busy) then
        fail "pinned but not busy: %a" Buf.pp b)
    t.bufs;
  if Hashtbl.length t.hash > t.n then fail "hash larger than pool";
  if t.hdrs_out < 0 then fail "negative outstanding header count";
  (* Incremental counters match full folds over the pool. *)
  let fold p = Array.fold_left (fun a b -> if p b then a + 1 else a) 0 t.bufs in
  let busy = fold (fun b -> Buf.has b Buf.b_busy) in
  if busy <> t.nbusy then fail "busy count drift: %d counted, %d folded" t.nbusy busy;
  let dirty = fold (fun b -> Buf.has b Buf.b_delwri) in
  if dirty <> t.ndirty then
    fail "dirty count drift: %d counted, %d folded" t.ndirty dirty;
  let pinned = fold (fun (b : Buf.t) -> b.b_refs > 0) in
  if pinned <> t.npinned then
    fail "pinned count drift: %d counted, %d folded" t.npinned pinned;
  (* The free and dirty lists agree with the flags: every non-busy
     cache-owned buffer sits on exactly the list its delwri flag says,
     links are mutually consistent, and each list is LRU (stamp) ordered. *)
  let walk which head =
    let rec go prev i n =
      if i < 0 then n
      else begin
        let b = t.bufs.(i) in
        if t.onlist.(i) <> which then fail "list tag mismatch on %a" Buf.pp b;
        if t.fprev.(i) <> prev then fail "broken prev link at %a" Buf.pp b;
        if Buf.has b Buf.b_busy then fail "busy buffer on a list: %a" Buf.pp b;
        (if which = l_dirty && not (Buf.has b Buf.b_delwri) then
           fail "clean buffer on the dirty list: %a" Buf.pp b);
        (if which = l_free && Buf.has b Buf.b_delwri then
           fail "dirty buffer on the free list: %a" Buf.pp b);
        (if prev >= 0 then
           let p = t.bufs.(prev) in
           if compare (p.Buf.b_stamp, p.Buf.b_id) (b.b_stamp, b.b_id) > 0 then
             fail "list out of LRU order at %a" Buf.pp b);
        go i t.fnext.(i) (n + 1)
      end
    in
    go (-1) head 0
  in
  let nfree = walk l_free t.free_head in
  let ndirty_l = walk l_dirty t.dirty_head in
  if nfree + ndirty_l + t.nbusy <> t.n then
    fail "list lengths inconsistent: %d free + %d dirty + %d busy <> %d pool"
      nfree ndirty_l t.nbusy t.n;
  Array.iter
    (fun (b : Buf.t) ->
      if (not (Buf.has b Buf.b_busy)) && t.onlist.(b.b_id) = l_none then
        fail "non-busy buffer on no list: %a" Buf.pp b)
    t.bufs
