(* Closure-compiling backend: verified bytecode -> OCaml closures, one
   per basic block, built once at load time. See compile.mli for the
   equivalence contract with the interpreter.

   Execution is direct-threaded: every block closure tail-calls its
   successor, so a run is one OCaml call chain with no dispatch loop.
   That is safe because the verifier only admits forward jumps — the
   single back-edge kind is [End] returning to its loop body, and that
   is bounded by the loop book (plus a defensive fuel check). Register,
   scratch and loop-book indices were range-checked by the verifier, so
   the compiled code uses unchecked array accesses; only payload
   offsets are runtime values and keep their bounds checks (they must
   fault, bit-identically to the interpreter). *)

type state = {
  c_regs : int array;
  c_scratch : int array;
  (* Loop books indexed by *static* nesting depth: the verifier proves
     jumps never cross a loop boundary, so the interpreter's dynamic
     loop stack always mirrors the static nesting and no runtime depth
     counter is needed. *)
  c_lleft : int array;
  mutable c_data : bytes;  (* the shared input buffer, this run *)
  mutable c_cur : bytes;  (* input, or the private copy after a Stp *)
  mutable c_copied : bool;
  mutable c_len : int;
  mutable c_lblk : int;
  mutable c_emit : int -> int -> unit;
  mutable c_steps : int;
  mutable c_verdict : Vm.verdict;
}

type block_bounds = { bb_first : int; bb_last : int }

(* A block closure advances the machine and tail-calls the next block;
   it returns only when the program halts, verdict left in
   [c_verdict]. *)
type code = {
  k_prog : Vm.prog;
  k_entry : state -> unit;
  k_bounds : block_bounds array;
  (* One human-readable note per block: which compilation tier fired
     (named idiom / fused loop / superinstructions / chained
     closures). *)
  k_tiers : string array;
}

let no_emit (_ : int) (_ : int) = ()

let halt (_ : state) = ()

(* Register-resident byte-scan fold, the target of the loop-idiom
   recognition below: folds [cur.(k .. hi)] into [h] with the
   multiplicative hash step. Self tail call, every operand in a host
   register — the accumulator never round-trips through the register
   array inside the scan. *)
let rec hash_fold cur hi k h v m =
  if k > hi then h
  else
    hash_fold cur hi (k + 1)
      (((h lxor Char.code (Bytes.unsafe_get cur k)) * v) land m)
      v m

(* Scatter scans, the target of the scatter/store idiom: transform
   [cur.(k .. hi)] in place with a scalar mask, returning the last
   transformed value (the full integer, pre-truncation — that is what
   the byte register holds after the loop). The caller proved every
   offset in bounds and forced the copy-on-write clone, so the loop is
   pure byte traffic. One scan per ALU shape keeps the operator out of
   the inner loop. *)
let rec scat_xor cur hi k m v =
  if k > hi then v
  else begin
    let v = Char.code (Bytes.unsafe_get cur k) lxor m in
    Bytes.unsafe_set cur k (Char.unsafe_chr (v land 0xff));
    scat_xor cur hi (k + 1) m v
  end

let rec scat_add cur hi k m v =
  if k > hi then v
  else begin
    let v = Char.code (Bytes.unsafe_get cur k) + m in
    Bytes.unsafe_set cur k (Char.unsafe_chr (v land 0xff));
    scat_add cur hi (k + 1) m v
  end

let rec scat_sub cur hi k m v =
  if k > hi then v
  else begin
    let v = Char.code (Bytes.unsafe_get cur k) - m in
    Bytes.unsafe_set cur k (Char.unsafe_chr (v land 0xff));
    scat_sub cur hi (k + 1) m v
  end

let rec scat_and cur hi k m v =
  if k > hi then v
  else begin
    let v = Char.code (Bytes.unsafe_get cur k) land m in
    Bytes.unsafe_set cur k (Char.unsafe_chr v);
    scat_and cur hi (k + 1) m v
  end

let rec scat_or cur hi k m v =
  if k > hi then v
  else begin
    let v = Char.code (Bytes.unsafe_get cur k) lor m in
    Bytes.unsafe_set cur k (Char.unsafe_chr (v land 0xff));
    scat_or cur hi (k + 1) m v
  end

(* Histogram scan: bump the scratch cell selected by each payload byte.
   The verifier admitted the indexed stores only over a power-of-two
   arena, so [land smask] is the whole bounds argument. *)
let rec hist_scan cur scratch smask hi k =
  if k <= hi then begin
    let cell = Char.code (Bytes.unsafe_get cur k) land smask in
    Array.unsafe_set scratch cell (Array.unsafe_get scratch cell + 1);
    hist_scan cur scratch smask hi (k + 1)
  end

(* Rolling-hash scan, the heart of content-defined chunking: fold each
   byte into the window hash [h <- (h * a + byte) land m] and emit at
   every chunk boundary [(h land m2) = tv]. Returns the final hash; the
   per-boundary Emit step charge is accounted here because only the
   scan knows how many boundaries fired. [vsel] picks the emitted value
   the way the source program's Emit operand did: 0 the hash, 1 the
   (already bumped) position, 2 the byte, 3 the boundary register
   (= [tv] whenever it fires), anything else the immediate [vimm]. *)
let rec roll_scan st cur hi k h a m m2 tv kimm vsel vimm =
  if k > hi then h
  else begin
    let b = Char.code (Bytes.unsafe_get cur k) in
    let h = ((h * a) + b) land m in
    if h land m2 = tv then begin
      st.c_steps <- st.c_steps + 1;
      st.c_emit kimm
        (match vsel with 0 -> h | 1 -> k + 1 | 2 -> b | 3 -> tv | _ -> vimm)
    end;
    roll_scan st cur hi (k + 1) h a m m2 tv kimm vsel vimm
  end

let is_terminator : Vm.insn -> bool = function
  | Vm.Jmp _ | Vm.Jeq _ | Vm.Jne _ | Vm.Jlt _ | Vm.Jge _ | Vm.Loop _
  | Vm.End | Vm.Drop | Vm.Redirect _ | Vm.Ret ->
    true
  | _ -> false

let[@kpath.intr] compile ?(idioms = true) ?(elide = true) p =
  let insns = Vm.insns p in
  let n = Array.length insns in
  (* Elision oracle: [pv.(pc)] is true when the verifier's range
     analysis proved the faultable site at [pc] can never fault, so the
     arms below may drop the runtime test. This is the idiom library's
     entry-test trick generalized to arbitrary verified programs — the
     trusted surface is the analysis in [Vm], not anything here.
     [~elide:false] keeps every check (the "checks-kept" backend the
     bench ladder compares against). *)
  let pv =
    Array.init (max n 1) (fun pc ->
        match Vm.bounds_at p pc with `Proven -> elide | `Checked -> false)
  in
  let fuel = Vm.fuel p in
  (* Mask for indexed scratch access; only read when the program
     contains Ldsx/Stsx, in which case the verifier proved the arena a
     non-empty power of two. *)
  let smask = Vm.scratch_cells p - 1 in
  (* Loop structure. The program passed the verifier, so Loop/End pairs
     are matched and nest within max_loop_depth; rebuild the matching
     here instead of widening Vm's interface. *)
  let end_of = Array.make (max n 1) (-1) in
  let loop_of_end = Array.make (max n 1) (-1) in
  let depth_of = Array.make (max n 1) 0 in
  let stack = ref [] in
  for pc = 0 to n - 1 do
    match insns.(pc) with
    | Vm.Loop _ ->
      depth_of.(pc) <- List.length !stack;
      stack := pc :: !stack
    | Vm.End -> (
      match !stack with
      | lp :: rest ->
        end_of.(lp) <- pc;
        loop_of_end.(pc) <- lp;
        stack := rest
      | [] -> assert false (* verified: matched pairs *))
    | _ -> ()
  done;
  (match !stack with [] -> () | _ :: _ -> assert false);
  (* Leaders: pc 0, every jump target and every fallthrough out of a
     terminator. Loop bodies and loop exits are jump targets of the
     Loop/End edges. *)
  let leader = Array.make (max n 1) false in
  if n > 0 then leader.(0) <- true;
  let mark pc = if pc < n then leader.(pc) <- true in
  for pc = 0 to n - 1 do
    match insns.(pc) with
    | Vm.Jmp off -> mark (pc + off); mark (pc + 1)
    | Vm.Jeq (_, _, off) | Vm.Jne (_, _, off) | Vm.Jlt (_, _, off)
    | Vm.Jge (_, _, off) ->
      mark (pc + off);
      mark (pc + 1)
    | Vm.Loop _ ->
      mark (pc + 1);
      mark (end_of.(pc) + 1)
    | Vm.End | Vm.Drop | Vm.Redirect _ | Vm.Ret -> mark (pc + 1)
    | _ -> ()
  done;
  let blk_of_pc = Array.make (max n 1) (-1) in
  let nblocks = ref 0 in
  for pc = 0 to n - 1 do
    if leader.(pc) then begin
      blk_of_pc.(pc) <- !nblocks;
      incr nblocks
    end
  done;
  let bounds = Array.make (max !nblocks 1) { bb_first = 0; bb_last = 0 } in
  let bi = ref 0 in
  for pc = 0 to n - 1 do
    if leader.(pc) then begin
      let last = ref pc in
      while !last + 1 < n && not leader.(!last + 1) do
        incr last
      done;
      bounds.(!bi) <- { bb_first = pc; bb_last = !last };
      incr bi
    end
  done;
  let funs = Array.make (max !nblocks 1) halt in
  (* Per-block compilation-tier notes, filled in as blocks compile; the
     [kpathctl prog] report prints them so a slow program is
     diagnosable without reading this file. *)
  let tiers = Array.make (max !nblocks 1) "" in
  (* Blocks are compiled bottom-up, so a forward control edge resolves
     to the successor's closure right here at compile time; only the
     End back-edge reads [funs] at runtime (its body block sits above
     it). A target past the program end halts with a Pass verdict. *)
  let target pc = if pc >= n then halt else funs.(blk_of_pc.(pc)) in
  (* One straight-line instruction at [pc], [j] instructions into its
     block, chained to the rest of the block by [next]. Operands are
     resolved here, at compile time: each shape gets its own closure
     with the register index or immediate baked in. Steps are batched
     at the block terminator, so only the faulting exits account their
     partial progress via [fault_steps] ([j + 1] instructions ran, the
     faulting one included — exactly the interpreter's counter at the
     raise; inside a fused loop the batched pre-charge is unwound
     first). [assume_copied] is set only for the second body chain of a
     fused loop whose driver already proved [c_copied]: store arms then
     skip the copy-on-write test (the bounds test stays — it must fault
     exactly like the interpreter). *)
  let step ~fault_steps ~assume_copied pc j (next : state -> unit) :
      state -> unit =
    let bump = j + 1 in
    match insns.(pc) with
    | Vm.Mov (r, Reg s) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs s);
        next st
    | Vm.Mov (r, Imm v) ->
      fun st ->
        Array.unsafe_set st.c_regs r v;
        next st
    | Vm.Add (r, Reg s) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r + Array.unsafe_get regs s);
        next st
    | Vm.Add (r, Imm v) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r + v);
        next st
    | Vm.Sub (r, Reg s) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r - Array.unsafe_get regs s);
        next st
    | Vm.Sub (r, Imm v) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r - v);
        next st
    | Vm.Mul (r, Reg s) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r * Array.unsafe_get regs s);
        next st
    | Vm.Mul (r, Imm v) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r * v);
        next st
    | Vm.Div (r, Reg s) ->
      if pv.(pc) then
        (* Range analysis proved the divisor non-zero. *)
        fun st ->
          let regs = st.c_regs in
          Array.unsafe_set regs r
            (Array.unsafe_get regs r / Array.unsafe_get regs s);
          next st
      else
        fun st ->
          let regs = st.c_regs in
          let d = Array.unsafe_get regs s in
          if d = 0 then begin
            fault_steps bump st;
            Vm.fault "division by zero at pc %d" pc
          end;
          Array.unsafe_set regs r (Array.unsafe_get regs r / d);
          next st
    | Vm.Div (r, Imm v) ->
      (* The verifier rejected constant zero divisors. *)
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r / v);
        next st
    | Vm.Rem (r, Reg s) ->
      if pv.(pc) then
        fun st ->
          let regs = st.c_regs in
          Array.unsafe_set regs r
            (Array.unsafe_get regs r mod Array.unsafe_get regs s);
          next st
      else
        fun st ->
          let regs = st.c_regs in
          let d = Array.unsafe_get regs s in
          if d = 0 then begin
            fault_steps bump st;
            Vm.fault "division by zero at pc %d" pc
          end;
          Array.unsafe_set regs r (Array.unsafe_get regs r mod d);
          next st
    | Vm.Rem (r, Imm v) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r mod v);
        next st
    | Vm.And (r, Reg s) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r land Array.unsafe_get regs s);
        next st
    | Vm.And (r, Imm v) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r land v);
        next st
    | Vm.Or (r, Reg s) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r lor Array.unsafe_get regs s);
        next st
    | Vm.Or (r, Imm v) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r lor v);
        next st
    | Vm.Xor (r, Reg s) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r lxor Array.unsafe_get regs s);
        next st
    | Vm.Xor (r, Imm v) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r lxor v);
        next st
    | Vm.Shl (r, Reg s) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r lsl (Array.unsafe_get regs s land 63));
        next st
    | Vm.Shl (r, Imm v) ->
      let sh = v land 63 in
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r lsl sh);
        next st
    | Vm.Shr (r, Reg s) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r lsr (Array.unsafe_get regs s land 63));
        next st
    | Vm.Shr (r, Imm v) ->
      let sh = v land 63 in
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r lsr sh);
        next st
    | Vm.Len r ->
      fun st ->
        Array.unsafe_set st.c_regs r st.c_len;
        next st
    | Vm.Blkno r ->
      fun st ->
        Array.unsafe_set st.c_regs r st.c_lblk;
        next st
    | Vm.Ldp (r, o) ->
      (* Cold path out of line; the hot path keeps the bounds test and
         the byte load inline with no helper call. *)
      let oob st off =
        fault_steps bump st;
        Vm.fault "payload load at %d outside %d bytes (pc %d)" off st.c_len
          pc
      in
      (match o with
       | Reg s when pv.(pc) ->
         (* Range analysis proved 0 <= off < len on every path. *)
         fun st ->
           let regs = st.c_regs in
           let off = Array.unsafe_get regs s in
           Array.unsafe_set regs r (Char.code (Bytes.unsafe_get st.c_cur off));
           next st
       | Reg s ->
         fun st ->
           let regs = st.c_regs in
           let off = Array.unsafe_get regs s in
           if off < 0 || off >= st.c_len then oob st off;
           Array.unsafe_set regs r (Char.code (Bytes.unsafe_get st.c_cur off));
           next st
       | Imm v when pv.(pc) ->
         fun st ->
           Array.unsafe_set st.c_regs r
             (Char.code (Bytes.unsafe_get st.c_cur v));
           next st
       | Imm v ->
         fun st ->
           if v < 0 || v >= st.c_len then oob st v;
           Array.unsafe_set st.c_regs r
             (Char.code (Bytes.unsafe_get st.c_cur v));
           next st)
    | Vm.Stp (o_off, o_v) ->
      let oob st off =
        fault_steps bump st;
        Vm.fault "payload store at %d outside %d bytes (pc %d)" off st.c_len
          pc
      in
      (* Copy on write: the input buffer is aliased across edges. *)
      let cow st =
        st.c_cur <- Bytes.copy st.c_data;
        st.c_copied <- true
      in
      (* Proven arms drop only the bounds test; the copy-on-write logic
         is behavior, not a check, and stays byte-identical. *)
      (match (o_off, o_v) with
       | Reg a, Reg b when assume_copied && pv.(pc) ->
         fun st ->
           let regs = st.c_regs in
           let off = Array.unsafe_get regs a in
           Bytes.unsafe_set st.c_cur off
             (Char.unsafe_chr (Array.unsafe_get regs b land 0xff));
           next st
       | Reg a, Reg b when assume_copied ->
         fun st ->
           let regs = st.c_regs in
           let off = Array.unsafe_get regs a in
           if off < 0 || off >= st.c_len then oob st off;
           Bytes.unsafe_set st.c_cur off
             (Char.unsafe_chr (Array.unsafe_get regs b land 0xff));
           next st
       | Reg a, Reg b when pv.(pc) ->
         fun st ->
           let regs = st.c_regs in
           let off = Array.unsafe_get regs a in
           if not st.c_copied then cow st;
           Bytes.unsafe_set st.c_cur off
             (Char.unsafe_chr (Array.unsafe_get regs b land 0xff));
           next st
       | Reg a, Reg b ->
         fun st ->
           let regs = st.c_regs in
           let off = Array.unsafe_get regs a in
           if off < 0 || off >= st.c_len then oob st off;
           if not st.c_copied then cow st;
           Bytes.unsafe_set st.c_cur off
             (Char.unsafe_chr (Array.unsafe_get regs b land 0xff));
           next st
       | Reg a, Imm v when assume_copied && pv.(pc) ->
         let b = Char.unsafe_chr (v land 0xff) in
         fun st ->
           let off = Array.unsafe_get st.c_regs a in
           Bytes.unsafe_set st.c_cur off b;
           next st
       | Reg a, Imm v when assume_copied ->
         let b = Char.unsafe_chr (v land 0xff) in
         fun st ->
           let off = Array.unsafe_get st.c_regs a in
           if off < 0 || off >= st.c_len then oob st off;
           Bytes.unsafe_set st.c_cur off b;
           next st
       | Reg a, Imm v when pv.(pc) ->
         let b = Char.unsafe_chr (v land 0xff) in
         fun st ->
           let off = Array.unsafe_get st.c_regs a in
           if not st.c_copied then cow st;
           Bytes.unsafe_set st.c_cur off b;
           next st
       | Reg a, Imm v ->
         let b = Char.unsafe_chr (v land 0xff) in
         fun st ->
           let off = Array.unsafe_get st.c_regs a in
           if off < 0 || off >= st.c_len then oob st off;
           if not st.c_copied then cow st;
           Bytes.unsafe_set st.c_cur off b;
           next st
       | Imm o, Reg b when pv.(pc) ->
         fun st ->
           if not st.c_copied then cow st;
           Bytes.unsafe_set st.c_cur o
             (Char.unsafe_chr (Array.unsafe_get st.c_regs b land 0xff));
           next st
       | Imm o, Reg b ->
         fun st ->
           if o < 0 || o >= st.c_len then oob st o;
           if not st.c_copied then cow st;
           Bytes.unsafe_set st.c_cur o
             (Char.unsafe_chr (Array.unsafe_get st.c_regs b land 0xff));
           next st
       | Imm o, Imm v when pv.(pc) ->
         let b = Char.unsafe_chr (v land 0xff) in
         fun st ->
           if not st.c_copied then cow st;
           Bytes.unsafe_set st.c_cur o b;
           next st
       | Imm o, Imm v ->
         let b = Char.unsafe_chr (v land 0xff) in
         fun st ->
           if o < 0 || o >= st.c_len then oob st o;
           if not st.c_copied then cow st;
           Bytes.unsafe_set st.c_cur o b;
           next st)
    | Vm.Lds (r, off) ->
      fun st ->
        Array.unsafe_set st.c_regs r (Array.unsafe_get st.c_scratch off);
        next st
    | Vm.Sts (off, Reg s) ->
      fun st ->
        Array.unsafe_set st.c_scratch off (Array.unsafe_get st.c_regs s);
        next st
    | Vm.Sts (off, Imm v) ->
      fun st ->
        Array.unsafe_set st.c_scratch off v;
        next st
    | Vm.Ldsx (r, ri) ->
      (* Verifier-admitted only over a power-of-two arena: the mask is
         the bounds proof. *)
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r
          (Array.unsafe_get st.c_scratch (Array.unsafe_get regs ri land smask));
        next st
    | Vm.Stsx (ri, Reg s) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set st.c_scratch
          (Array.unsafe_get regs ri land smask)
          (Array.unsafe_get regs s);
        next st
    | Vm.Stsx (ri, Imm v) ->
      fun st ->
        Array.unsafe_set st.c_scratch
          (Array.unsafe_get st.c_regs ri land smask)
          v;
        next st
    | Vm.Emit (ok, ov) -> (
      match (ok, ov) with
      | Reg a, Reg b ->
        fun st ->
          let regs = st.c_regs in
          st.c_emit (Array.unsafe_get regs a) (Array.unsafe_get regs b);
          next st
      | Reg a, Imm v ->
        fun st ->
          st.c_emit (Array.unsafe_get st.c_regs a) v;
          next st
      | Imm k, Reg b ->
        fun st ->
          st.c_emit k (Array.unsafe_get st.c_regs b);
          next st
      | Imm k, Imm v ->
        fun st ->
          st.c_emit k v;
          next st)
    | Vm.Jmp _ | Vm.Jeq _ | Vm.Jne _ | Vm.Jlt _ | Vm.Jge _ | Vm.Loop _
    | Vm.End | Vm.Drop | Vm.Redirect _ | Vm.Ret ->
      assert false (* terminators are compiled by [term] *)
  in
  let plain_fault_steps bump st = st.c_steps <- st.c_steps + bump in
  (* Curated superinstructions: adjacent pairs that dominate fold and
     mask loop bodies (byte load + fold, mix + mask, mask + counter
     bump, store + counter bump) compile to one closure holding the
     literal concatenation of the two instruction bodies. Loads and
     stores keep their exact order, so the composition is correct for
     any register aliasing — the only thing removed is the indirect
     call between the two. Pairs that can fault put the payload
     instruction first, so the fault charge is [j + 1] as usual. *)
  let step2 ~fault_steps ~assume_copied pc j (next : state -> unit) :
      (state -> unit) option =
    let bump = j + 1 in
    match (insns.(pc), insns.(pc + 1)) with
    | Vm.Ldp (r, Reg s), Vm.Xor (r2, Reg s2) when pv.(pc) ->
      Some
        (fun st ->
          let regs = st.c_regs in
          let off = Array.unsafe_get regs s in
          Array.unsafe_set regs r (Char.code (Bytes.unsafe_get st.c_cur off));
          Array.unsafe_set regs r2
            (Array.unsafe_get regs r2 lxor Array.unsafe_get regs s2);
          next st)
    | Vm.Ldp (r, Reg s), Vm.Xor (r2, Reg s2) ->
      let oob st off =
        fault_steps bump st;
        Vm.fault "payload load at %d outside %d bytes (pc %d)" off st.c_len
          pc
      in
      Some
        (fun st ->
          let regs = st.c_regs in
          let off = Array.unsafe_get regs s in
          if off < 0 || off >= st.c_len then oob st off;
          Array.unsafe_set regs r (Char.code (Bytes.unsafe_get st.c_cur off));
          Array.unsafe_set regs r2
            (Array.unsafe_get regs r2 lxor Array.unsafe_get regs s2);
          next st)
    | Vm.Ldp (r, Reg s), Vm.Xor (r2, Imm v) when pv.(pc) ->
      Some
        (fun st ->
          let regs = st.c_regs in
          let off = Array.unsafe_get regs s in
          Array.unsafe_set regs r (Char.code (Bytes.unsafe_get st.c_cur off));
          Array.unsafe_set regs r2 (Array.unsafe_get regs r2 lxor v);
          next st)
    | Vm.Ldp (r, Reg s), Vm.Xor (r2, Imm v) ->
      let oob st off =
        fault_steps bump st;
        Vm.fault "payload load at %d outside %d bytes (pc %d)" off st.c_len
          pc
      in
      Some
        (fun st ->
          let regs = st.c_regs in
          let off = Array.unsafe_get regs s in
          if off < 0 || off >= st.c_len then oob st off;
          Array.unsafe_set regs r (Char.code (Bytes.unsafe_get st.c_cur off));
          Array.unsafe_set regs r2 (Array.unsafe_get regs r2 lxor v);
          next st)
    | Vm.Xor (r, Reg s), Vm.Mul (r2, Imm v) ->
      Some
        (fun st ->
          let regs = st.c_regs in
          Array.unsafe_set regs r
            (Array.unsafe_get regs r lxor Array.unsafe_get regs s);
          Array.unsafe_set regs r2 (Array.unsafe_get regs r2 * v);
          next st)
    | Vm.Mul (r, Imm v), Vm.And (r2, Imm m) ->
      Some
        (fun st ->
          let regs = st.c_regs in
          Array.unsafe_set regs r (Array.unsafe_get regs r * v);
          Array.unsafe_set regs r2 (Array.unsafe_get regs r2 land m);
          next st)
    | Vm.And (r, Imm m), Vm.Add (r2, Imm v) ->
      Some
        (fun st ->
          let regs = st.c_regs in
          Array.unsafe_set regs r (Array.unsafe_get regs r land m);
          Array.unsafe_set regs r2 (Array.unsafe_get regs r2 + v);
          next st)
    | Vm.Add (r, Imm v), Vm.Add (r2, Imm v2) ->
      Some
        (fun st ->
          let regs = st.c_regs in
          Array.unsafe_set regs r (Array.unsafe_get regs r + v);
          Array.unsafe_set regs r2 (Array.unsafe_get regs r2 + v2);
          next st)
    | Vm.Stp (Reg a, Reg b), Vm.Add (r, Imm v) when pv.(pc) ->
      let cow st =
        st.c_cur <- Bytes.copy st.c_data;
        st.c_copied <- true
      in
      Some
        (if assume_copied then
           fun st ->
             let regs = st.c_regs in
             let off = Array.unsafe_get regs a in
             Bytes.unsafe_set st.c_cur off
               (Char.unsafe_chr (Array.unsafe_get regs b land 0xff));
             Array.unsafe_set regs r (Array.unsafe_get regs r + v);
             next st
         else
           fun st ->
             let regs = st.c_regs in
             let off = Array.unsafe_get regs a in
             if not st.c_copied then cow st;
             Bytes.unsafe_set st.c_cur off
               (Char.unsafe_chr (Array.unsafe_get regs b land 0xff));
             Array.unsafe_set regs r (Array.unsafe_get regs r + v);
             next st)
    | Vm.Stp (Reg a, Reg b), Vm.Add (r, Imm v) ->
      let oob st off =
        fault_steps bump st;
        Vm.fault "payload store at %d outside %d bytes (pc %d)" off st.c_len
          pc
      in
      let cow st =
        st.c_cur <- Bytes.copy st.c_data;
        st.c_copied <- true
      in
      Some
        (if assume_copied then
           fun st ->
             let regs = st.c_regs in
             let off = Array.unsafe_get regs a in
             if off < 0 || off >= st.c_len then oob st off;
             Bytes.unsafe_set st.c_cur off
               (Char.unsafe_chr (Array.unsafe_get regs b land 0xff));
             Array.unsafe_set regs r (Array.unsafe_get regs r + v);
             next st
         else
           fun st ->
             let regs = st.c_regs in
             let off = Array.unsafe_get regs a in
             if off < 0 || off >= st.c_len then oob st off;
             if not st.c_copied then cow st;
             Bytes.unsafe_set st.c_cur off
               (Char.unsafe_chr (Array.unsafe_get regs b land 0xff));
             Array.unsafe_set regs r (Array.unsafe_get regs r + v);
             next st)
    | _ -> None
  in
  (* One curated triple on top of the pairs: byte load + fold + mix is
     the opening of every multiplicative hash loop (FNV, tee-hash). *)
  let step3 ~fault_steps pc j (next : state -> unit) : (state -> unit) option
      =
    let bump = j + 1 in
    match (insns.(pc), insns.(pc + 1), insns.(pc + 2)) with
    | Vm.Ldp (r, Reg s), Vm.Xor (r2, Reg s2), Vm.Mul (r3, Imm v)
      when pv.(pc) ->
      Some
        (fun st ->
          let regs = st.c_regs in
          let off = Array.unsafe_get regs s in
          Array.unsafe_set regs r (Char.code (Bytes.unsafe_get st.c_cur off));
          Array.unsafe_set regs r2
            (Array.unsafe_get regs r2 lxor Array.unsafe_get regs s2);
          Array.unsafe_set regs r3 (Array.unsafe_get regs r3 * v);
          next st)
    | Vm.Ldp (r, Reg s), Vm.Xor (r2, Reg s2), Vm.Mul (r3, Imm v) ->
      let oob st off =
        fault_steps bump st;
        Vm.fault "payload load at %d outside %d bytes (pc %d)" off st.c_len
          pc
      in
      Some
        (fun st ->
          let regs = st.c_regs in
          let off = Array.unsafe_get regs s in
          if off < 0 || off >= st.c_len then oob st off;
          Array.unsafe_set regs r (Char.code (Bytes.unsafe_get st.c_cur off));
          Array.unsafe_set regs r2
            (Array.unsafe_get regs r2 lxor Array.unsafe_get regs s2);
          Array.unsafe_set regs r3 (Array.unsafe_get regs r3 * v);
          next st)
    | Vm.Ldp (r, Reg s), Vm.Xor (r2, Imm v2), Vm.Mul (r3, Imm v)
      when pv.(pc) ->
      Some
        (fun st ->
          let regs = st.c_regs in
          let off = Array.unsafe_get regs s in
          Array.unsafe_set regs r (Char.code (Bytes.unsafe_get st.c_cur off));
          Array.unsafe_set regs r2 (Array.unsafe_get regs r2 lxor v2);
          Array.unsafe_set regs r3 (Array.unsafe_get regs r3 * v);
          next st)
    | Vm.Ldp (r, Reg s), Vm.Xor (r2, Imm v2), Vm.Mul (r3, Imm v) ->
      let oob st off =
        fault_steps bump st;
        Vm.fault "payload load at %d outside %d bytes (pc %d)" off st.c_len
          pc
      in
      Some
        (fun st ->
          let regs = st.c_regs in
          let off = Array.unsafe_get regs s in
          if off < 0 || off >= st.c_len then oob st off;
          Array.unsafe_set regs r (Char.code (Bytes.unsafe_get st.c_cur off));
          Array.unsafe_set regs r2 (Array.unsafe_get regs r2 lxor v2);
          Array.unsafe_set regs r3 (Array.unsafe_get regs r3 * v);
          next st)
    | _ -> None
  in
  (* Fused-tail pairs: the last two instructions of a fused loop body,
     one closure, no continuation call at all. *)
  let tail_step2 ~fault_steps ~assume_copied pc j : (state -> unit) option =
    let bump = j + 1 in
    match (insns.(pc), insns.(pc + 1)) with
    | Vm.And (r, Imm m), Vm.Add (r2, Imm v) ->
      Some
        (fun st ->
          let regs = st.c_regs in
          Array.unsafe_set regs r (Array.unsafe_get regs r land m);
          Array.unsafe_set regs r2 (Array.unsafe_get regs r2 + v))
    | Vm.Mul (r, Imm v), Vm.And (r2, Imm m) ->
      Some
        (fun st ->
          let regs = st.c_regs in
          Array.unsafe_set regs r (Array.unsafe_get regs r * v);
          Array.unsafe_set regs r2 (Array.unsafe_get regs r2 land m))
    | Vm.Add (r, Imm v), Vm.Add (r2, Imm v2) ->
      Some
        (fun st ->
          let regs = st.c_regs in
          Array.unsafe_set regs r (Array.unsafe_get regs r + v);
          Array.unsafe_set regs r2 (Array.unsafe_get regs r2 + v2))
    | Vm.Stp (Reg a, Reg b), Vm.Add (r, Imm v) when pv.(pc) ->
      let cow st =
        st.c_cur <- Bytes.copy st.c_data;
        st.c_copied <- true
      in
      Some
        (if assume_copied then
           fun st ->
             let regs = st.c_regs in
             let off = Array.unsafe_get regs a in
             Bytes.unsafe_set st.c_cur off
               (Char.unsafe_chr (Array.unsafe_get regs b land 0xff));
             Array.unsafe_set regs r (Array.unsafe_get regs r + v)
         else
           fun st ->
             let regs = st.c_regs in
             let off = Array.unsafe_get regs a in
             if not st.c_copied then cow st;
             Bytes.unsafe_set st.c_cur off
               (Char.unsafe_chr (Array.unsafe_get regs b land 0xff));
             Array.unsafe_set regs r (Array.unsafe_get regs r + v))
    | Vm.Stp (Reg a, Reg b), Vm.Add (r, Imm v) ->
      let oob st off =
        fault_steps bump st;
        Vm.fault "payload store at %d outside %d bytes (pc %d)" off st.c_len
          pc
      in
      let cow st =
        st.c_cur <- Bytes.copy st.c_data;
        st.c_copied <- true
      in
      Some
        (if assume_copied then
           fun st ->
             let regs = st.c_regs in
             let off = Array.unsafe_get regs a in
             if off < 0 || off >= st.c_len then oob st off;
             Bytes.unsafe_set st.c_cur off
               (Char.unsafe_chr (Array.unsafe_get regs b land 0xff));
             Array.unsafe_set regs r (Array.unsafe_get regs r + v)
         else
           fun st ->
             let regs = st.c_regs in
             let off = Array.unsafe_get regs a in
             if off < 0 || off >= st.c_len then oob st off;
             if not st.c_copied then cow st;
             Bytes.unsafe_set st.c_cur off
               (Char.unsafe_chr (Array.unsafe_get regs b land 0xff));
             Array.unsafe_set regs r (Array.unsafe_get regs r + v))
    | _ -> None
  in
  (* The last instruction of a fused loop body: same arms as [step] for
     the common fault-free shapes, but with no continuation — the
     fused-loop driver owns control, so the chain should just return
     instead of paying an indirect call into [halt] every iteration.
     Rarer shapes fall back to the chained form. *)
  let tail_step ~fault_steps ~assume_copied pc j : state -> unit =
    match insns.(pc) with
    | Vm.Mov (r, Reg s) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs s)
    | Vm.Mov (r, Imm v) -> fun st -> Array.unsafe_set st.c_regs r v
    | Vm.Add (r, Reg s) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r
          (Array.unsafe_get regs r + Array.unsafe_get regs s)
    | Vm.Add (r, Imm v) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r + v)
    | Vm.Sub (r, Reg s) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r
          (Array.unsafe_get regs r - Array.unsafe_get regs s)
    | Vm.Sub (r, Imm v) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r - v)
    | Vm.Mul (r, Reg s) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r
          (Array.unsafe_get regs r * Array.unsafe_get regs s)
    | Vm.Mul (r, Imm v) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r * v)
    | Vm.And (r, Reg s) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r
          (Array.unsafe_get regs r land Array.unsafe_get regs s)
    | Vm.And (r, Imm v) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r land v)
    | Vm.Or (r, Reg s) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r
          (Array.unsafe_get regs r lor Array.unsafe_get regs s)
    | Vm.Or (r, Imm v) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r lor v)
    | Vm.Xor (r, Reg s) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r
          (Array.unsafe_get regs r lxor Array.unsafe_get regs s)
    | Vm.Xor (r, Imm v) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r lxor v)
    | Vm.Shl (r, Imm v) ->
      let sh = v land 63 in
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r lsl sh)
    | Vm.Shr (r, Imm v) ->
      let sh = v land 63 in
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs r lsr sh)
    | Vm.Len r -> fun st -> Array.unsafe_set st.c_regs r st.c_len
    | Vm.Blkno r -> fun st -> Array.unsafe_set st.c_regs r st.c_lblk
    | Vm.Lds (r, off) ->
      fun st ->
        Array.unsafe_set st.c_regs r (Array.unsafe_get st.c_scratch off)
    | Vm.Sts (off, Reg s) ->
      fun st ->
        Array.unsafe_set st.c_scratch off (Array.unsafe_get st.c_regs s)
    | Vm.Sts (off, Imm v) ->
      fun st -> Array.unsafe_set st.c_scratch off v
    | Vm.Ldsx (r, ri) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set regs r
          (Array.unsafe_get st.c_scratch (Array.unsafe_get regs ri land smask))
    | Vm.Stsx (ri, Reg s) ->
      fun st ->
        let regs = st.c_regs in
        Array.unsafe_set st.c_scratch
          (Array.unsafe_get regs ri land smask)
          (Array.unsafe_get regs s)
    | Vm.Stsx (ri, Imm v) ->
      fun st ->
        Array.unsafe_set st.c_scratch
          (Array.unsafe_get st.c_regs ri land smask)
          v
    | _ -> step ~fault_steps ~assume_copied pc j halt
  in
  (* A loop whose whole body (through its End) is a single basic block
     runs a known number of instructions per iteration, so the Loop
     terminator fuses it into a counted for-loop: the step charge for
     all iterations is batched up front, the loop book only tracks the
     remaining count for fault unwinding, and no block dispatch happens
     per iteration. [body_nb] counts the body instructions plus the
     End. A fault [j] instructions into iteration with [i] remaining
     must read as if only the completed iterations were charged:
     subtract [i * body_nb], add [j + 1]. *)
  let fused_body lp end_pc =
    let d = depth_of.(lp) in
    let body_nb = end_pc - lp in
    let fault_steps bump st =
      st.c_steps <-
        st.c_steps + bump - (Array.unsafe_get st.c_lleft d * body_nb)
    in
    let rec build ~assume_copied pc =
      let j = pc - (lp + 1) in
      if pc > end_pc - 1 then halt
      else if pc = end_pc - 1 then tail_step ~fault_steps ~assume_copied pc j
      else if pc = end_pc - 2 then
        match tail_step2 ~fault_steps ~assume_copied pc j with
        | Some f -> f
        | None -> (
          match
            step2 ~fault_steps ~assume_copied pc j (build ~assume_copied (pc + 2))
          with
          | Some f -> f
          | None ->
            step ~fault_steps ~assume_copied pc j (build ~assume_copied (pc + 1)))
      else
        match step3 ~fault_steps pc j (build ~assume_copied (pc + 3)) with
        | Some f -> f
        | None -> (
          match
            step2 ~fault_steps ~assume_copied pc j (build ~assume_copied (pc + 2))
          with
          | Some f -> f
          | None ->
            step ~fault_steps ~assume_copied pc j (build ~assume_copied (pc + 1)))
    in
    let has_stp = ref false in
    for pc = lp + 1 to end_pc - 1 do
      match insns.(pc) with Vm.Stp _ -> has_stp := true | _ -> ()
    done;
    (* A store-bearing body gets a second chain compiled under the
       proven-copied assumption: after the first iteration's Stp forces
       the clone, the driver switches chains and the remaining
       iterations pay no per-store copy-on-write test. *)
    let fast =
      if !has_stp then Some (build ~assume_copied:true (lp + 1)) else None
    in
    (d, body_nb, build ~assume_copied:false (lp + 1), fast)
  in
  (* The terminator of the block [first..last]: batch the whole block's
     step count ([nb] instructions all executed by the time control
     leaves), then tail-call the successor block. [bidx] is the block's
     index, for the tier report. *)
  let term bidx first last : state -> unit =
    let nb = last - first + 1 in
    match insns.(last) with
    | Vm.Jmp off ->
      let t = target (last + off) in
      fun st ->
        st.c_steps <- st.c_steps + nb;
        t st
    | Vm.Jeq (r, o, off) ->
      let tt = target (last + off) and tf = target (last + 1) in
      (match o with
       | Reg s ->
         fun st ->
           st.c_steps <- st.c_steps + nb;
           let regs = st.c_regs in
           if Array.unsafe_get regs r = Array.unsafe_get regs s then tt st
           else tf st
       | Imm v ->
         fun st ->
           st.c_steps <- st.c_steps + nb;
           if Array.unsafe_get st.c_regs r = v then tt st else tf st)
    | Vm.Jne (r, o, off) ->
      let tt = target (last + off) and tf = target (last + 1) in
      (match o with
       | Reg s ->
         fun st ->
           st.c_steps <- st.c_steps + nb;
           let regs = st.c_regs in
           if Array.unsafe_get regs r <> Array.unsafe_get regs s then tt st
           else tf st
       | Imm v ->
         fun st ->
           st.c_steps <- st.c_steps + nb;
           if Array.unsafe_get st.c_regs r <> v then tt st else tf st)
    | Vm.Jlt (r, o, off) ->
      let tt = target (last + off) and tf = target (last + 1) in
      (match o with
       | Reg s ->
         fun st ->
           st.c_steps <- st.c_steps + nb;
           let regs = st.c_regs in
           if Array.unsafe_get regs r < Array.unsafe_get regs s then tt st
           else tf st
       | Imm v ->
         fun st ->
           st.c_steps <- st.c_steps + nb;
           if Array.unsafe_get st.c_regs r < v then tt st else tf st)
    | Vm.Jge (r, o, off) ->
      let tt = target (last + off) and tf = target (last + 1) in
      (match o with
       | Reg s ->
         fun st ->
           st.c_steps <- st.c_steps + nb;
           let regs = st.c_regs in
           if Array.unsafe_get regs r >= Array.unsafe_get regs s then tt st
           else tf st
       | Imm v ->
         fun st ->
           st.c_steps <- st.c_steps + nb;
           if Array.unsafe_get st.c_regs r >= v then tt st else tf st)
    | Vm.Loop (o, cap) ->
      let lp = last in
      let end_pc = end_of.(lp) in
      let exit_ = target (end_pc + 1) in
      let body_blk = blk_of_pc.(lp + 1) in
      let fusable =
        bounds.(body_blk).bb_first = lp + 1
        && bounds.(body_blk).bb_last = end_pc
      in
      if fusable then begin
        let d, body_nb, body, body_fast = fused_body lp end_pc in
        (* Generic fused iteration. A store-bearing body runs its
           checked chain only until the first Stp forces the
           copy-on-write clone, then switches to the proven-copied
           chain for the rest of the count — the per-iteration clone
           test is paid at most once per run instead of per store. *)
        let iterate =
          match body_fast with
          | None ->
            fun st c ->
              st.c_steps <- st.c_steps + (c * body_nb);
              let ll = st.c_lleft in
              for i = c downto 1 do
                Array.unsafe_set ll d i;
                body st
              done
          | Some fast ->
            fun st c ->
              st.c_steps <- st.c_steps + (c * body_nb);
              let ll = st.c_lleft in
              let i = ref c in
              while !i >= 1 && not st.c_copied do
                Array.unsafe_set ll d !i;
                body st;
                decr i
              done;
              while !i >= 1 do
                Array.unsafe_set ll d !i;
                fast st;
                decr i
              done
        in
        (* Loop-idiom recognition, the pattern library. Every idiom is
           a body that touches payload offsets [i .. i+c-1] through a
           monotonically advancing counter, so one entry test ([i0 >= 0
           && c <= len - i0]) proves the whole loop fault-free and the
           scan runs with all state in host registers; final register
           effects are reproduced exactly as the interpreter leaves
           them. Anything the entry test cannot prove (or any shape not
           matched) takes the generic fused path, which faults
           bit-identically to the interpreter.

           - byte-scan fold: load, xor-fold, mix, mask, bump — the
             multiplicative hash ([hash_fold]).
           - scatter/store: load, ALU-transform, store back, bump —
             xor-stream masks and byte remaps, writing the
             copy-on-write clone directly ([scat_*]). The clone is
             forced once at loop entry: the entry test already proved
             the first iteration's store in bounds.
           - histogram: load, indexed scratch load, increment, indexed
             scratch store, bump — scratch-table histograms
             ([hist_scan]); the verifier's power-of-two arena proof is
             what lets the host loop index the table unchecked. *)
        let idiom =
          if not idioms then None
          else if end_pc = lp + 6 then
            match
              ( insns.(lp + 1),
                insns.(lp + 2),
                insns.(lp + 3),
                insns.(lp + 4),
                insns.(lp + 5) )
            with
            | ( Vm.Ldp (r, Reg s),
                Vm.Xor (h, Reg s2),
                Vm.Mul (h2, Imm v),
                Vm.And (h3, Imm m),
                Vm.Add (i, Imm 1) )
              when s2 = r && h2 = h && h3 = h && i = s && r <> h && r <> s
                   && h <> s ->
              Some
                ( "byte-scan fold",
                  fun st c ->
                    let regs = st.c_regs in
                    let i0 = Array.unsafe_get regs s in
                    if i0 >= 0 && c <= st.c_len - i0 then begin
                      st.c_steps <- st.c_steps + (c * body_nb);
                      let last = i0 + c - 1 in
                      Array.unsafe_set regs h
                        (hash_fold st.c_cur last i0 (Array.unsafe_get regs h)
                           v m);
                      Array.unsafe_set regs r
                        (Char.code (Bytes.unsafe_get st.c_cur last));
                      Array.unsafe_set regs s (i0 + c)
                    end
                    else iterate st c )
            | ( Vm.Ldp (b, Reg i),
                Vm.Ldsx (h, b2),
                Vm.Add (h2, Imm 1),
                Vm.Stsx (b3, Reg h3),
                Vm.Add (i2, Imm 1) )
              when b2 = b && h2 = h && b3 = b && h3 = h && i2 = i && b <> i
                   && h <> i && h <> b ->
              Some
                ( "histogram",
                  fun st c ->
                    let regs = st.c_regs in
                    let i0 = Array.unsafe_get regs i in
                    if i0 >= 0 && c <= st.c_len - i0 then begin
                      st.c_steps <- st.c_steps + (c * body_nb);
                      let cur = st.c_cur in
                      let hi = i0 + c - 1 in
                      hist_scan cur st.c_scratch smask hi i0;
                      let lastb = Char.code (Bytes.unsafe_get cur hi) in
                      Array.unsafe_set regs b lastb;
                      Array.unsafe_set regs h
                        (Array.unsafe_get st.c_scratch (lastb land smask));
                      Array.unsafe_set regs i (i0 + c)
                    end
                    else iterate st c )
            | _ -> None
          else if end_pc = lp + 5 then begin
            let op =
              match insns.(lp + 2) with
              | Vm.Xor (r2, o) -> Some (scat_xor, "xor", r2, o)
              | Vm.Add (r2, o) -> Some (scat_add, "add", r2, o)
              | Vm.Sub (r2, o) -> Some (scat_sub, "sub", r2, o)
              | Vm.And (r2, o) -> Some (scat_and, "and", r2, o)
              | Vm.Or (r2, o) -> Some (scat_or, "or", r2, o)
              | _ -> None
            in
            match (insns.(lp + 1), insns.(lp + 3), insns.(lp + 4), op) with
            | ( Vm.Ldp (r, Reg i),
                Vm.Stp (Reg i2, Reg r3),
                Vm.Add (i3, Imm 1),
                Some (scan, opname, r2, o) )
              when r2 = r && i2 = i && r3 = r && i3 = i && r <> i
                   && (match o with
                       | Reg s -> s <> r && s <> i
                       | Imm _ -> true) ->
              (* The mask operand is loop-invariant: the body writes
                 only [r] and [i], and a register operand was required
                 distinct from both. *)
              let get_m =
                match o with
                | Imm v -> fun (_ : state) -> v
                | Reg s -> fun st -> Array.unsafe_get st.c_regs s
              in
              Some
                ( "scatter/store (" ^ opname ^ ")",
                  fun st c ->
                    let regs = st.c_regs in
                    let i0 = Array.unsafe_get regs i in
                    if i0 >= 0 && c <= st.c_len - i0 then begin
                      st.c_steps <- st.c_steps + (c * body_nb);
                      if not st.c_copied then begin
                        st.c_cur <- Bytes.copy st.c_data;
                        st.c_copied <- true
                      end;
                      let v = scan st.c_cur (i0 + c - 1) i0 (get_m st) 0 in
                      Array.unsafe_set regs r v;
                      Array.unsafe_set regs i (i0 + c)
                    end
                    else iterate st c )
            | _ -> None
          end
          else None
        in
        (tiers.(bidx) <-
           (match idiom with
            | Some (name, _) -> Printf.sprintf "fused loop: %s idiom" name
            | None ->
              Printf.sprintf "fused loop: generic %d-insn body%s" (body_nb - 1)
                (match body_fast with
                 | Some _ -> ", cow hoisted"
                 | None -> "")));
        tiers.(body_blk) <-
          (match idiom with
           | Some (name, _) -> Printf.sprintf "body of b%d (%s idiom)" bidx name
           | None -> Printf.sprintf "body of b%d (inlined in the fused loop)" bidx);
        let run_body =
          match idiom with Some (_, run) -> run | None -> iterate
        in
        match o with
        | Reg s ->
          fun st ->
            st.c_steps <- st.c_steps + nb;
            let c = Array.unsafe_get st.c_regs s in
            let c = if c < 0 then 0 else if c > cap then cap else c in
            if c = 0 then exit_ st
            else begin
              run_body st c;
              exit_ st
            end
        | Imm v ->
          let c = min (max v 0) cap in
          if c = 0 then
            fun st ->
              st.c_steps <- st.c_steps + nb;
              exit_ st
          else
            fun st ->
              st.c_steps <- st.c_steps + nb;
              run_body st c;
              exit_ st
      end
      else begin
        let d = depth_of.(lp) in
        let body = target (lp + 1) in
        (* Rolling-hash window idiom, the shape behind content-defined
           chunking: fold each byte into a window hash, bump the
           position, test the hash's low bits and emit at chunk
           boundaries. The conditional Emit splits the body into three
           blocks, so it can never fuse — but the whole region is
           recognizable at the Loop, and [roll_scan] runs it with the
           window state in host registers. The entry test proves every
           load in bounds; a count the test cannot cover falls back to
           the block-chained body, which faults bit-identically. *)
        let rolling =
          if not idioms || end_pc <> lp + 10 then None
          else
            match
              ( insns.(lp + 1),
                insns.(lp + 2),
                insns.(lp + 3),
                insns.(lp + 4),
                insns.(lp + 5),
                insns.(lp + 6),
                insns.(lp + 7),
                insns.(lp + 8),
                insns.(lp + 9) )
            with
            | ( Vm.Ldp (b, Reg i),
                Vm.Mul (h, Imm a),
                Vm.Add (h2, Reg b2),
                Vm.And (h3, Imm m),
                Vm.Add (i2, Imm 1),
                Vm.Mov (t, Reg h4),
                Vm.And (t2, Imm m2),
                Vm.Jne (t3, Imm tv, 2),
                Vm.Emit (Imm kimm, ov) )
              when h2 = h && b2 = b && h3 = h && i2 = i && h4 = h && t2 = t
                   && t3 = t && b <> i && b <> h && b <> t && h <> i
                   && h <> t && t <> i -> (
              let vsel, vimm =
                match ov with
                | Reg rv when rv = h -> (0, 0)
                | Reg rv when rv = i -> (1, 0)
                | Reg rv when rv = b -> (2, 0)
                | Reg rv when rv = t -> (3, 0)
                | Imm v -> (4, v)
                | Reg _ -> (-1, 0)
              in
              match vsel with
              | -1 -> None
              | _ ->
                Some
                  (fun st c ->
                    let regs = st.c_regs in
                    let i0 = Array.unsafe_get regs i in
                    if i0 >= 0 && c <= st.c_len - i0 then begin
                      (* 9 of the 10 body instructions run every
                         iteration (the Emit is skipped off-boundary);
                         [roll_scan] charges each boundary's Emit as it
                         fires. *)
                      st.c_steps <- st.c_steps + (c * 9);
                      let hi = i0 + c - 1 in
                      let h' =
                        roll_scan st st.c_cur hi i0
                          (Array.unsafe_get regs h)
                          a m m2 tv kimm vsel vimm
                      in
                      Array.unsafe_set regs b
                        (Char.code (Bytes.unsafe_get st.c_cur hi));
                      Array.unsafe_set regs h h';
                      Array.unsafe_set regs t (h' land m2);
                      Array.unsafe_set regs i (i0 + c);
                      exit_ st
                    end
                    else begin
                      Array.unsafe_set st.c_lleft d c;
                      body st
                    end))
            | _ -> None
        in
        (match rolling with
         | Some _ ->
           tiers.(bidx) <- "loop: rolling-hash idiom (multi-block body)";
           for bb = blk_of_pc.(lp + 1) to blk_of_pc.(end_pc) do
             tiers.(bb) <-
               Printf.sprintf "body of b%d (rolling-hash scan; chain is the fallback)"
                 bidx
           done
         | None -> tiers.(bidx) <- "loop: block-chained multi-block body");
        match rolling with
        | Some run -> (
          match o with
          | Reg s ->
            fun st ->
              st.c_steps <- st.c_steps + nb;
              let c = Array.unsafe_get st.c_regs s in
              let c = if c < 0 then 0 else if c > cap then cap else c in
              if c = 0 then exit_ st else run st c
          | Imm v ->
            let c = min (max v 0) cap in
            if c = 0 then
              fun st ->
                st.c_steps <- st.c_steps + nb;
                exit_ st
            else
              fun st ->
                st.c_steps <- st.c_steps + nb;
                run st c)
        | None -> (
          match o with
          | Reg s ->
            fun st ->
              st.c_steps <- st.c_steps + nb;
              let c = Array.unsafe_get st.c_regs s in
              let c = if c < 0 then 0 else if c > cap then cap else c in
              if c = 0 then exit_ st
              else begin
                Array.unsafe_set st.c_lleft d c;
                body st
              end
          | Imm v ->
            let c = min (max v 0) cap in
            if c = 0 then
              fun st ->
                st.c_steps <- st.c_steps + nb;
                exit_ st
            else
              fun st ->
                st.c_steps <- st.c_steps + nb;
                Array.unsafe_set st.c_lleft d c;
                body st)
      end
    | Vm.End ->
      (* Only reached when its loop was not fused (multi-block body).
         The body block sits above this one, so the back-edge goes
         through [funs] at runtime; it carries the one defensive fuel
         check — the verifier proved worst-case cost <= fuel, so
         compiled code cannot trip it. *)
      let lp = loop_of_end.(last) in
      let d = depth_of.(lp) in
      let body_blk = blk_of_pc.(lp + 1) in
      let out = target (last + 1) in
      fun st ->
        st.c_steps <- st.c_steps + nb;
        let v = Array.unsafe_get st.c_lleft d - 1 in
        Array.unsafe_set st.c_lleft d v;
        if v > 0 then begin
          if st.c_steps > fuel then Vm.fault "fuel exhausted";
          (Array.unsafe_get funs body_blk) st
        end
        else out st
    | Vm.Drop ->
      fun st ->
        st.c_steps <- st.c_steps + nb;
        st.c_verdict <- Vm.Drop
    | Vm.Redirect (Reg s) ->
      fun st ->
        st.c_steps <- st.c_steps + nb;
        st.c_verdict <- Vm.Redirect (Array.unsafe_get st.c_regs s)
    | Vm.Redirect (Imm v) ->
      let verdict = Vm.Redirect v in
      fun st ->
        st.c_steps <- st.c_steps + nb;
        st.c_verdict <- verdict
    | Vm.Ret -> fun st -> st.c_steps <- st.c_steps + nb
    | _ ->
      (* Straight-line last instruction: the block falls through into
         the next leader (or off the end of the program). *)
      let t = target (last + 1) in
      fun st ->
        st.c_steps <- st.c_steps + nb;
        t st
  in
  let compile_block bidx first last : state -> unit =
    let straight_hi = if is_terminator insns.(last) then last - 1 else last in
    let tail = term bidx first last in
    let supers = ref 0 in
    let rec build pc =
      if pc > straight_hi then tail
      else if pc < straight_hi then
        match
          step2 ~fault_steps:plain_fault_steps ~assume_copied:false pc
            (pc - first)
            (build (pc + 2))
        with
        | Some f ->
          incr supers;
          f
        | None ->
          step ~fault_steps:plain_fault_steps ~assume_copied:false pc
            (pc - first)
            (build (pc + 1))
      else
        step ~fault_steps:plain_fault_steps ~assume_copied:false pc
          (pc - first)
          (build (pc + 1))
    in
    let f = build first in
    if tiers.(bidx) = "" then
      tiers.(bidx) <-
        (if !supers > 0 then
           Printf.sprintf "chained closures, %d superinstruction%s" !supers
             (if !supers = 1 then "" else "s")
         else "chained closures");
    f
  in
  for b = !nblocks - 1 downto 0 do
    funs.(b) <- compile_block b bounds.(b).bb_first bounds.(b).bb_last
  done;
  {
    k_prog = p;
    k_entry = (if n = 0 then halt else funs.(0));
    k_bounds = (if n = 0 then [||] else Array.sub bounds 0 !nblocks);
    k_tiers = (if n = 0 then [||] else Array.sub tiers 0 !nblocks);
  }

let prog k = k.k_prog

let blocks k = Array.copy k.k_bounds

let block_tiers k = Array.copy k.k_tiers

let new_state k =
  {
    c_regs = Array.make Vm.max_regs 0;
    c_scratch = Array.make (max (Vm.scratch_cells k.k_prog) 1) 0;
    c_lleft = Array.make Vm.max_loop_depth 0;
    c_data = Bytes.empty;
    c_cur = Bytes.empty;
    c_copied = false;
    c_len = 0;
    c_lblk = 0;
    c_emit = no_emit;
    c_steps = 0;
    c_verdict = Vm.Pass;
  }

let[@kpath.intr] exec k st ~data ~len ~lblk ~emit =
  Array.fill st.c_regs 0 Vm.max_regs 0;
  st.c_data <- data;
  st.c_cur <- data;
  st.c_copied <- false;
  st.c_len <- len;
  st.c_lblk <- lblk;
  st.c_emit <- emit;
  st.c_steps <- 0;
  st.c_verdict <- Vm.Pass;
  (try k.k_entry st with Vm.Fault_exn m -> st.c_verdict <- Vm.Fault m);
  let r =
    { Vm.r_verdict = st.c_verdict; r_steps = st.c_steps; r_data = st.c_cur }
  in
  (* Do not retain the block buffer (or a caller's emit closure) past
     the run: the buffer cache recycles aggressively. *)
  st.c_data <- Bytes.empty;
  st.c_cur <- Bytes.empty;
  st.c_emit <- no_emit;
  r
