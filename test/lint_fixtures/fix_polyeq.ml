(* Known-bad fixture: structural equality over a closure-carrying
   variant. [List.mem] specializes polymorphic compare at [stage], and
   the moment a [Hook] value is compared the runtime raises
   [Invalid_argument "compare: functional value"] -- the hazard the
   graph's filter list hit before switching to a shape match.
   Expected: exactly one [poly-compare] finding. *)

type stage = Plain | Hook of (int -> unit)

let has_plain (stages : stage list) = List.mem Plain stages
