(** The process scheduler and CPU multiplexer.

    Dispatches {!Process} coroutines onto the single simulated CPU,
    charging their [use_cpu] slices to the {!Cpu} accounting buckets,
    paying a context-switch cost whenever a different process is placed
    on the CPU, boosting the priority of processes woken from kernel
    sleeps (as 4.xBSD/Ultrix do for disk waits), and round-robining
    equal-priority processes on a quantum.

    Interrupt handlers are not processes: {!interrupt} runs a callback
    immediately at the current instant, charges its service time to the
    interrupt bucket, and stretches whatever CPU slice is in progress —
    the mechanism by which device drivers and splice handlers steal CPU
    from running programs. *)

open Kpath_sim

type t
(** A scheduler bound to an engine. *)

val create :
  ?ctx_switch_cost:Time.span ->
  ?quantum:Time.span ->
  ?kernel_priority:int ->
  ?user_priority:int ->
  Engine.t ->
  t
(** [create engine] makes a scheduler. Defaults: context switch 100 us,
    quantum 10 ms, kernel priority 30, user priority 50 (lower = more
    urgent). *)

val engine : t -> Engine.t
(** The engine this scheduler runs on. *)

val cpu : t -> Cpu.t
(** The CPU accounting record. *)

val spawn : t -> name:string -> ?priority:int -> (unit -> unit) -> Process.t
(** [spawn t ~name body] creates a process whose body is the coroutine
    [body], places it on the run queue, and dispatches it if the CPU is
    idle. The body may use {!Process.use_cpu}, {!Process.block},
    {!Process.yield} and any syscall built on them. *)

val wakeup : t -> ?priority:int -> Process.t -> unit
(** [wakeup t p] makes a blocked process runnable. By default the woken
    process gets the kernel priority boost until it next runs user-mode
    code. Waking a process that is not blocked is a no-op. *)

val in_process_context : t -> bool
(** [true] while a process coroutine body is executing — i.e. kernel
    code reached from a system call, where a driver may charge work to
    the caller with [Process.use_cpu] instead of stealing it as
    interrupt time. *)

val interrupt : t -> service:Time.span -> (unit -> unit) -> unit
(** [interrupt t ~service fn] models a device interrupt: [fn] runs now
    (completions, wakeups), [service] is charged to the interrupt bucket
    and stolen from the process slice in progress, if any. *)

val sleep : t -> Time.span -> unit
(** [sleep t d] blocks the calling process for duration [d]
    (uninterruptible). Must run inside a process body. *)

val sleep_interruptible : t -> Time.span -> bool
(** Like {!sleep} but signal delivery may cut the sleep short; returns
    [true] if the full duration elapsed, [false] when interrupted. *)

val pause : t -> unit
(** Block the calling process until a signal is delivered to it
    (the [pause(2)] system call). *)

val join : Process.t -> unit
(** Block the calling process until the given process terminates.
    Returns immediately if it is already a zombie. *)

val exit_hook : Process.t -> (unit -> unit) -> unit
(** Register a callback to run when the process terminates (or
    immediately, if it already has). *)

val current : t -> Process.t option
(** The process owning the CPU, if any. *)

val runnable : t -> Process.t list
(** Processes currently waiting on the run queue, in dispatch order
    (best priority first, FIFO within a priority level). *)

val processes : t -> Process.t list
(** Every process ever spawned, oldest first. *)

val blocked : t -> Process.t list
(** Processes currently blocked, with their wait channels in
    [Process.state]. *)

val stats : t -> Stats.t
(** Scheduler statistics: dispatches, preemptions, wakeups... *)

exception Deadlock of string
(** Raised by {!check_deadlock}. *)

val check_deadlock : t -> unit
(** Raises {!Deadlock} if processes remain blocked while the engine has
    no pending events (nothing can ever wake them). Call after
    [Engine.run]. *)
