(** CPU time accounting.

    The simulated machine has a single CPU (like the DECstation 5000/200).
    Consumed time is charged to one of four buckets: user-mode execution,
    system (kernel, process-context) execution, interrupt service, and
    context-switch overhead. Idle time is derived. The CPU-availability
    experiment (Table 1) is, at heart, a measurement of how much of this
    budget the copy mechanism leaves to other processes. *)

open Kpath_sim

type t
(** CPU accounting state. *)

val create : unit -> t
(** Fresh accounting with all buckets at zero. *)

val add_user : t -> Time.span -> unit
(** Charge user-mode execution time. *)

val add_sys : t -> Time.span -> unit
(** Charge process-context kernel time (syscalls, copyin/copyout, ...). *)

val add_intr : t -> Time.span -> unit
(** Charge interrupt-service time (also counts one interrupt). *)

val add_ctx : t -> Time.span -> unit
(** Charge context-switch overhead (also counts one switch). *)

val user : t -> Time.span
val sys : t -> Time.span
val intr : t -> Time.span
val ctx : t -> Time.span

val busy : t -> Time.span
(** Total non-idle time: user + sys + intr + ctx. *)

val idle : t -> now:Time.t -> Time.span
(** [idle t ~now] is the CPU time not charged to any bucket since the
    simulation epoch. Raises [Invalid_argument] if the books show more
    busy time than elapsed time. *)

val interrupts : t -> int
(** Number of interrupts serviced. *)

val context_switches : t -> int
(** Number of context switches performed. *)

val utilization : t -> now:Time.t -> float
(** Fraction of elapsed time the CPU was busy, in [0, 1]. *)

val pp : Format.formatter -> t -> unit
(** Print the four buckets and counts. *)
