(** Deterministic pseudo-random number generator (splitmix64).

    The simulator never consults wall-clock entropy: every run with the
    same seed replays identically. Splitmix64 is small, fast and passes
    BigCrush for this kind of workload modelling use. *)

type t
(** A generator state. *)

val create : seed:int -> t
(** [create ~seed] is a generator; equal seeds yield equal streams. *)

val split : t -> t
(** [split t] derives an independent generator (advances [t]). *)

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** A fair coin. *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] samples an exponential distribution. *)

val shuffle : t -> 'a array -> unit
(** Fisher–Yates shuffle in place. *)
