(** SCSI disk model.

    Service-time model for a early-90s SCSI drive, parameterised by the
    figures DEC published for the RZ series (quoted in the paper's §6.1):

    - a request that continues the current head position costs only media
      transfer time (streaming);
    - a read that hits the on-board read-ahead cache costs only the SCSI
      bus transfer, subject to the media-rate pipeline: the drive cannot
      deliver data faster than the media sustains, and cannot prefetch
      more than one cache segment ahead of the host;
    - anything else pays seek (average, scaled by a distance factor) plus
      average rotational latency plus media transfer.

    The drive services its queue FIFO, one request at a time, and raises
    a completion interrupt per request. Data is stored for real: reads
    return previously written bytes (zeroes for never-written blocks), so
    every experiment doubles as an integrity check. *)

open Kpath_sim

type geometry = {
  avg_seek : Time.span;  (** average seek time *)
  avg_rot_latency : Time.span;  (** average rotational latency *)
  media_rate : float;  (** bytes/second to and from the media *)
  bus_rate : float;  (** SCSI bus bytes/second for cache hits *)
  readahead_bytes : int;  (** on-board read-ahead cache size *)
  readahead_segments : int;  (** number of independent cache segments *)
}

val rz56 : geometry
(** Digital RZ56: 16 ms seek, 8.3 ms rotational latency, 1.66 MB/s media,
    64 KB single-segment read-ahead. *)

val rz58 : geometry
(** Digital RZ58: 12.5 ms seek, 5.6 ms rotational latency, 2.1 MB/s
    media, 256 KB read-ahead in 4 segments. *)

type t
(** A disk instance. *)

type queue_discipline =
  | Fifo  (** service requests in arrival order *)
  | Elevator
      (** C-LOOK: sweep upward from the head position, wrapping to the
          lowest outstanding block — the [disksort()] of the BSD drivers *)

val create :
  name:string ->
  geometry:geometry ->
  block_size:int ->
  nblocks:int ->
  intr_service:Time.span ->
  ?queue:queue_discipline ->
  engine:Engine.t ->
  intr:Blkdev.intr ->
  unit ->
  t
(** [create ()] builds a disk. [intr_service] is the CPU cost of the
    completion interrupt handler; [intr] injects it into the CPU model.
    Default queue discipline: [Fifo]. *)

val blkdev : t -> Blkdev.t
(** The generic block-device view (strategy entry point). *)

val geometry : t -> geometry

val read_block_direct : t -> int -> bytes
(** [read_block_direct d blkno] peeks at the stored contents of a block,
    bypassing the service model (testing aid). Never-written blocks read
    as zeroes. *)

val write_block_direct : t -> int -> bytes -> unit
(** Poke block contents directly (testing aid). The bytes must be exactly
    one block long. *)

val inject_error : t -> blkno:int -> unit
(** Make the next request touching [blkno] fail with an I/O error
    (one-shot), for failure-injection tests. Only a single-block request
    consumes the injected error; a failed multi-block request leaves it
    armed so the cluster layer's single-block breakup retries can
    isolate it to exactly the bad block. *)

val max_segments : int
(** Upper bound on [readahead_segments] accepted by [create]. The
    segment table is scanned linearly on every request (fine for the
    1–4 segments of real RZ drives); geometries beyond this bound are
    rejected rather than silently degrading the hot path. *)

val busy : t -> bool
(** [true] while a request is being serviced. *)

val serviced : t -> int
(** Total requests completed. *)

val cache_hits : t -> int
(** Reads satisfied from the on-board read-ahead cache. *)

val seeks : t -> int
(** Requests that paid a seek + rotational delay. *)
