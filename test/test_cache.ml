open Kpath_sim
open Kpath_proc
open Kpath_dev
open Kpath_buf

(* A small rig: engine, scheduler, one disk and a cache; [body] runs in a
   process. *)
let with_rig ?(nbufs = 8) ?(max_cluster = 1) body =
  let engine = Engine.create () in
  let sched = Sched.create engine in
  let intr ~service fn = Sched.interrupt sched ~service fn in
  let disk =
    Disk.create ~name:"d0" ~geometry:Disk.rz58 ~block_size:512 ~nblocks:256
      ~intr_service:(Time.us 60) ~engine ~intr ()
  in
  let dev = Disk.blkdev disk in
  let cache = Cache.create ~block_size:512 ~nbufs ~max_cluster () in
  let result = ref None in
  let p =
    Sched.spawn sched ~name:"rig" (fun () -> result := Some (body cache dev disk))
  in
  Engine.run engine;
  Sched.check_deadlock sched;
  (match p.Process.exit_status with
   | Some (Process.Crashed e) -> raise e
   | _ -> ());
  Cache.check_invariants cache;
  Option.get !result

let fill_buf b c = Bytes.fill b.Buf.b_data 0 (Bytes.length b.Buf.b_data) c

let test_getblk_claims_busy () =
  with_rig (fun cache dev _ ->
      let b = Cache.getblk cache dev 5 in
      Alcotest.(check bool) "busy" true (Buf.has b Buf.b_busy);
      Alcotest.(check bool) "not valid yet" false (Buf.valid b);
      Alcotest.(check int) "busy count" 1 (Cache.busy_count cache);
      Cache.brelse cache b;
      Alcotest.(check int) "released" 0 (Cache.busy_count cache))

let test_getblk_same_identity () =
  with_rig (fun cache dev _ ->
      let b1 = Cache.getblk cache dev 5 in
      Cache.brelse cache b1;
      let b2 = Cache.getblk cache dev 5 in
      Alcotest.(check bool) "same buffer" true (b1 == b2);
      Cache.brelse cache b2)

let test_bread_miss_then_hit () =
  with_rig (fun cache dev disk ->
      Disk.write_block_direct disk 3 (Bytes.make 512 'p');
      let b = Cache.bread cache dev 3 in
      Alcotest.(check bool) "valid" true (Buf.valid b);
      Alcotest.(check char) "contents" 'p' (Bytes.get b.Buf.b_data 0);
      Cache.brelse cache b;
      let served = Disk.serviced disk in
      let b2 = Cache.bread cache dev 3 in
      Alcotest.(check int) "no new I/O on hit" served (Disk.serviced disk);
      Cache.brelse cache b2;
      Alcotest.(check int) "one hit" 1 (Stats.get (Cache.stats cache) "cache.hits");
      Alcotest.(check int) "one miss" 1 (Stats.get (Cache.stats cache) "cache.misses"))

let test_bwrite_persists () =
  with_rig (fun cache dev disk ->
      let b = Cache.getblk cache dev 7 in
      fill_buf b 'w';
      Cache.bwrite cache b;
      Alcotest.(check bytes) "on disk" (Bytes.make 512 'w')
        (Disk.read_block_direct disk 7))

let test_bdwrite_delays_until_flush () =
  with_rig (fun cache dev disk ->
      let b = Cache.getblk cache dev 9 in
      fill_buf b 'd';
      Cache.bdwrite cache b;
      Alcotest.(check int) "dirty" 1 (Cache.dirty_count cache);
      Alcotest.(check bytes) "not yet on disk" (Bytes.make 512 '\000')
        (Disk.read_block_direct disk 9);
      Cache.flush_blocks cache dev [ 9 ];
      Alcotest.(check int) "clean" 0 (Cache.dirty_count cache);
      Alcotest.(check bytes) "flushed" (Bytes.make 512 'd')
        (Disk.read_block_direct disk 9))

let test_bawrite_releases_automatically () =
  with_rig (fun cache dev disk ->
      let b = Cache.getblk cache dev 2 in
      fill_buf b 'a';
      Cache.bawrite cache b;
      (* Wait for the write by re-acquiring the block. *)
      let b2 = Cache.getblk cache dev 2 in
      Cache.brelse cache b2;
      Alcotest.(check bytes) "written" (Bytes.make 512 'a')
        (Disk.read_block_direct disk 2);
      Alcotest.(check int) "no busy left" 0 (Cache.busy_count cache))

let test_lru_eviction_and_dirty_writeback () =
  with_rig ~nbufs:4 (fun cache dev disk ->
      (* Dirty block 0, then stream 5 more blocks through the 4-buffer
         cache; block 0 must be written back when its buffer is
         recycled. *)
      let b0 = Cache.getblk cache dev 0 in
      fill_buf b0 'z';
      Cache.bdwrite cache b0;
      for i = 1 to 5 do
        let b = Cache.bread cache dev i in
        Cache.brelse cache b
      done;
      (* Wait out any in-flight flush by reclaiming the block. *)
      let b0' = Cache.getblk cache dev 0 in
      Cache.brelse cache b0';
      Alcotest.(check bytes) "victim write-back happened" (Bytes.make 512 'z')
        (Disk.read_block_direct disk 0);
      Alcotest.(check int) "nothing left dirty" 0 (Cache.dirty_count cache))

let test_biowait_error_propagates () =
  with_rig (fun cache dev disk ->
      Disk.inject_error disk ~blkno:4;
      let b = Cache.bread cache dev 4 in
      (match b.Buf.b_error with
       | Some (Blkdev.Io_error _) -> ()
       | None -> Alcotest.fail "expected error");
      Alcotest.(check bool) "flagged" true (Buf.has b Buf.b_error_flag);
      Cache.brelse cache b;
      (* Error release drops the identity so a retry re-reads. *)
      Alcotest.(check bool) "identity dropped" true (not (Cache.cached cache dev 4));
      let b2 = Cache.bread cache dev 4 in
      Alcotest.(check bool) "retry succeeds" true (Buf.valid b2);
      Cache.brelse cache b2)

let test_breada_prefetches () =
  with_rig (fun cache dev disk ->
      Disk.write_block_direct disk 10 (Bytes.make 512 'x');
      Disk.write_block_direct disk 11 (Bytes.make 512 'y');
      let b = Cache.breada cache dev 10 ~ahead:11 in
      Cache.brelse cache b;
      (* Give the read-ahead a chance to complete. *)
      Kpath_proc.Process.yield ();
      let served = Disk.serviced disk in
      let b2 = Cache.bread cache dev 11 in
      Alcotest.(check char) "prefetched data" 'y' (Bytes.get b2.Buf.b_data 0);
      Alcotest.(check int) "no extra device read" served (Disk.serviced disk);
      Cache.brelse cache b2)

let test_getblk_nb_busy_returns_none () =
  with_rig (fun cache dev _ ->
      let b = Cache.getblk cache dev 1 in
      Alcotest.(check bool) "nb on busy" true (Cache.getblk_nb cache dev 1 = None);
      Cache.brelse cache b;
      (match Cache.getblk_nb cache dev 1 with
       | Some b2 ->
         Alcotest.(check bool) "same identity" true (b2 == b);
         Cache.brelse cache b2
       | None -> Alcotest.fail "expected buffer"))

let test_bread_nb_hit_started_busy () =
  with_rig (fun cache dev _ ->
      (* Prime block 6. *)
      let b = Cache.bread cache dev 6 in
      Cache.brelse cache b;
      (match Cache.bread_nb cache dev 6 ~iodone:(fun _ -> ()) with
       | `Hit hb ->
         Alcotest.(check bool) "valid hit" true (Buf.valid hb);
         Cache.brelse cache hb
       | `Started _ | `Busy -> Alcotest.fail "expected hit");
      (match
         Cache.bread_nb cache dev 20 ~iodone:(fun b -> Cache.brelse cache b)
       with
       | `Started sb ->
         Alcotest.(check bool) "in flight busy" true (Buf.has sb Buf.b_busy);
         (* Tag before completion, per the contract. *)
         sb.Buf.b_splice <- 42;
         Alcotest.(check bool) "nb sees it busy" true
           (Cache.getblk_nb cache dev 20 = None)
       | `Hit _ | `Busy -> Alcotest.fail "expected started");
      (* Sleeping on the busy buffer waits out the read. *)
      let b = Cache.bread cache dev 20 in
      Alcotest.(check int) "tag survived" 42 b.Buf.b_splice;
      Cache.brelse cache b)

let test_bread_nb_started_completes () =
  let fired = ref false in
  with_rig (fun cache dev _ ->
      (match
         Cache.bread_nb cache dev 20 ~iodone:(fun b ->
             fired := true;
             Cache.brelse cache b)
       with
       | `Started _ -> ()
       | `Hit _ | `Busy -> Alcotest.fail "expected started");
      (* Wait for the device: read the same block (sleeps on busy). *)
      let b = Cache.bread cache dev 20 in
      Cache.brelse cache b);
  Alcotest.(check bool) "iodone ran" true !fired

let test_awrite_call_runs_handler () =
  let handler_ran = ref false in
  with_rig (fun cache dev disk ->
      let b = Cache.getblk cache dev 15 in
      fill_buf b 'h';
      Cache.awrite_call cache b ~iodone:(fun hb ->
          handler_ran := true;
          Cache.brelse cache hb);
      (* Wait for completion by re-acquiring. *)
      let b2 = Cache.getblk cache dev 15 in
      Cache.brelse cache b2;
      Alcotest.(check bytes) "written" (Bytes.make 512 'h')
        (Disk.read_block_direct disk 15));
  Alcotest.(check bool) "B_CALL handler" true !handler_ran

let test_getblk_hdr_aliasing () =
  with_rig (fun cache dev disk ->
      let src = Cache.getblk cache dev 30 in
      fill_buf src 's';
      let hdr = Cache.getblk_hdr cache dev 31 in
      hdr.Buf.b_data <- src.Buf.b_data;
      hdr.Buf.b_bcount <- 512;
      Alcotest.(check bool) "shares the data area" true
        (hdr.Buf.b_data == src.Buf.b_data);
      let done_ = ref false in
      Cache.awrite_call cache hdr ~iodone:(fun hb ->
          done_ := true;
          Cache.release_hdr cache hb);
      (* Poll for completion. *)
      let b = Cache.bread cache dev 31 in
      Cache.brelse cache b;
      Alcotest.(check bool) "write done" true !done_;
      Alcotest.(check bytes) "no-copy write landed" (Bytes.make 512 's')
        (Disk.read_block_direct disk 31);
      Cache.brelse cache src;
      (* Header pool reuse. *)
      let hdr2 = Cache.getblk_hdr cache dev 1 in
      Alcotest.(check bool) "pooled" true (hdr2 == hdr);
      Cache.release_hdr cache hdr2)

let test_invalidate_cached () =
  with_rig (fun cache dev _ ->
      let b = Cache.bread cache dev 12 in
      Cache.brelse cache b;
      Alcotest.(check bool) "cached" true (Cache.cached cache dev 12);
      Cache.invalidate_cached cache dev 12;
      Alcotest.(check bool) "gone" true (not (Cache.cached cache dev 12));
      (* Absent block: no-op, must not allocate. *)
      Cache.invalidate_cached cache dev 200;
      Alcotest.(check bool) "still absent" true (not (Cache.cached cache dev 200)))

let test_invalidate_dev () =
  with_rig (fun cache dev _ ->
      for i = 0 to 3 do
        let b = Cache.bread cache dev i in
        Cache.brelse cache b
      done;
      Cache.invalidate_dev cache dev;
      for i = 0 to 3 do
        Alcotest.(check bool) "cold" true (not (Cache.cached cache dev i))
      done)

let test_two_processes_contend_for_buffer () =
  let engine = Engine.create () in
  let sched = Sched.create engine in
  let intr ~service fn = Sched.interrupt sched ~service fn in
  let disk =
    Disk.create ~name:"d0" ~geometry:Disk.rz58 ~block_size:512 ~nblocks:64
      ~intr_service:(Time.us 60) ~engine ~intr ()
  in
  let dev = Disk.blkdev disk in
  let cache = Cache.create ~block_size:512 ~nbufs:4 () in
  let order = ref [] in
  let _p1 =
    Sched.spawn sched ~name:"p1" (fun () ->
        let b = Cache.getblk cache dev 0 in
        Sched.sleep sched (Time.ms 5);
        order := "p1-release" :: !order;
        Cache.brelse cache b)
  in
  let _p2 =
    Sched.spawn sched ~name:"p2" (fun () ->
        Process.yield ();
        let b = Cache.getblk cache dev 0 in
        order := "p2-acquired" :: !order;
        Cache.brelse cache b)
  in
  Engine.run engine;
  Sched.check_deadlock sched;
  Alcotest.(check (list string)) "blocked until release"
    [ "p1-release"; "p2-acquired" ] (List.rev !order);
  Cache.check_invariants cache

(* {1 Alias reference counts (splice-graph fan-out)} *)

let test_pin_defers_release () =
  with_rig (fun cache dev _ ->
      let b = Cache.getblk cache dev 7 in
      Cache.pin cache b;
      Cache.pin cache b;
      Alcotest.(check int) "pinned count" 1 (Cache.pinned_count cache);
      Alcotest.check_raises "brelse refuses a pinned buffer"
        (Invalid_argument "brelse: buffer still pinned") (fun () ->
          Cache.brelse cache b);
      Cache.unpin cache b;
      Alcotest.(check bool) "still busy after first unpin" true
        (Buf.has b Buf.b_busy);
      Cache.unpin cache b;
      Alcotest.(check bool) "last unpin releases" false (Buf.has b Buf.b_busy);
      Alcotest.(check int) "nothing busy" 0 (Cache.busy_count cache);
      Alcotest.(check int) "nothing pinned" 0 (Cache.pinned_count cache);
      Alcotest.(check int) "pins counted" 2
        (Stats.get (Cache.stats cache) "cache.pins");
      Alcotest.(check int) "unpins counted" 2
        (Stats.get (Cache.stats cache) "cache.unpins"))

let test_unpin_exactly_once () =
  with_rig (fun cache dev _ ->
      let b = Cache.getblk cache dev 9 in
      Cache.pin cache b;
      Cache.unpin cache b;
      (* The release already happened; another unpin is a double
         release and must be refused loudly. *)
      Alcotest.check_raises "double release caught"
        (Invalid_argument "Cache.unpin: buffer not pinned") (fun () ->
          Cache.unpin cache b);
      Alcotest.check_raises "pin requires a busy buffer"
        (Invalid_argument "Cache.pin: buffer not busy") (fun () ->
          Cache.pin cache b))

(* {1 Clustered I/O (breadn / flush coalescing)} *)

let stat cache name = Stats.get (Cache.stats cache) name

let test_breadn_full_run () =
  let results = ref [] in
  let delta = ref (-1) in
  with_rig ~max_cluster:4 (fun cache dev disk ->
      for i = 0 to 3 do
        Disk.write_block_direct disk (20 + i)
          (Bytes.make 512 (Char.chr (Char.code 'a' + i)))
      done;
      let served = Disk.serviced disk in
      (match
         Cache.breadn cache dev 20 ~n:4 ~iodone:(fun b ->
             results :=
               (b.Buf.b_blkno, b.Buf.b_error <> None, Bytes.get b.Buf.b_data 0)
               :: !results;
             Cache.brelse cache b)
       with
       | `Started members ->
         Alcotest.(check (list int))
           "members cover the run in ascending order" [ 20; 21; 22; 23 ]
           (List.map (fun (b : Buf.t) -> b.Buf.b_blkno) members)
       | `Hit _ | `Busy -> Alcotest.fail "expected a started cluster");
      (* Sleeping on any member waits out the whole transfer. *)
      let b = Cache.bread cache dev 23 in
      Cache.brelse cache b;
      delta := Disk.serviced disk - served;
      Alcotest.(check int) "one cluster read" 1 (stat cache "cache.cluster_reads"));
  Alcotest.(check int) "one device request for four blocks" 1 !delta;
  Alcotest.(check (list (triple int bool char)))
    "every member completed clean with its own block's bytes"
    [ (20, false, 'a'); (21, false, 'b'); (22, false, 'c'); (23, false, 'd') ]
    (List.sort compare !results)

let test_breadn_truncated_by_cached_and_busy () =
  with_rig ~max_cluster:8 (fun cache dev _ ->
      (* A valid cached block mid-run stops the cluster before it. *)
      let b = Cache.bread cache dev 22 in
      Cache.brelse cache b;
      (match
         Cache.breadn cache dev 20 ~n:8 ~iodone:(fun b -> Cache.brelse cache b)
       with
       | `Started members ->
         Alcotest.(check (list int)) "run stops at the cached block" [ 20; 21 ]
           (List.map (fun (b : Buf.t) -> b.Buf.b_blkno) members)
       | `Hit _ | `Busy -> Alcotest.fail "expected a started cluster");
      let b = Cache.bread cache dev 21 in
      Cache.brelse cache b;
      (* A busy block truncates the same way. *)
      let held = Cache.getblk cache dev 27 in
      (match
         Cache.breadn cache dev 25 ~n:8 ~iodone:(fun b -> Cache.brelse cache b)
       with
       | `Started members ->
         Alcotest.(check (list int)) "run stops at the busy block" [ 25; 26 ]
           (List.map (fun (b : Buf.t) -> b.Buf.b_blkno) members)
       | `Hit _ | `Busy -> Alcotest.fail "expected a started cluster");
      let b = Cache.bread cache dev 26 in
      Cache.brelse cache b;
      Cache.brelse cache held)

let test_breadn_error_poisons_one_block () =
  let results = ref [] in
  let breakups = ref 0 in
  with_rig ~max_cluster:4 (fun cache dev disk ->
      for i = 0 to 3 do
        Disk.write_block_direct disk (20 + i) (Bytes.make 512 'e')
      done;
      Disk.inject_error disk ~blkno:21;
      (match
         Cache.breadn cache dev 20 ~n:4 ~iodone:(fun b ->
             results := (b.Buf.b_blkno, b.Buf.b_error <> None) :: !results;
             Cache.brelse cache b)
       with
       | `Started members ->
         Alcotest.(check int) "run of 4" 4 (List.length members)
       | `Hit _ | `Busy -> Alcotest.fail "expected a started cluster");
      (* Block 20's retry succeeds, so sleeping on it waits out the
         breakup; 21 stays errored, so wait on the last member too. *)
      let b = Cache.bread cache dev 20 in
      Cache.brelse cache b;
      let b = Cache.bread cache dev 23 in
      Cache.brelse cache b;
      breakups := stat cache "cache.cluster_breakups");
  Alcotest.(check int) "cluster broke up once" 1 !breakups;
  Alcotest.(check (list (pair int bool)))
    "only the poisoned block's header carries the error"
    [ (20, false); (21, true); (22, false); (23, false) ]
    (List.sort compare !results)

let test_flush_coalesces_adjacent_only () =
  with_rig ~max_cluster:8 (fun cache dev disk ->
      let dirty blkno c =
        let b = Cache.getblk cache dev blkno in
        fill_buf b c;
        Cache.bdwrite cache b
      in
      dirty 10 'a';
      dirty 11 'b';
      dirty 13 'c';
      let served = Disk.serviced disk in
      Cache.flush_blocks cache dev [ 10; 11; 13 ];
      Alcotest.(check int) "adjacent pair rides one request: two writes" 2
        (Disk.serviced disk - served);
      Alcotest.(check int) "one cluster write" 1
        (stat cache "cache.cluster_writes");
      Alcotest.(check int) "all clean" 0 (Cache.dirty_count cache);
      List.iter
        (fun (blkno, c) ->
          Alcotest.(check bytes)
            (Printf.sprintf "block %d persisted" blkno)
            (Bytes.make 512 c)
            (Disk.read_block_direct disk blkno))
        [ (10, 'a'); (11, 'b'); (13, 'c') ])

(* Property: with [max_cluster = 1], [breadn] is [bread_nb] — byte- and
   event-identical, down to the simulated clock and cache stats. *)
let prop_cluster1_identity =
  QCheck.Test.make
    ~name:"max_cluster=1: breadn is byte- and event-identical to bread_nb"
    ~count:40
    (QCheck.make
       ~print:
         QCheck.Print.(list (pair int int))
       QCheck.Gen.(list_size (1 -- 12) (pair (0 -- 40) (1 -- 4))))
    (fun ops ->
      let run use_breadn =
        let engine = Engine.create () in
        let sched = Sched.create engine in
        let intr ~service fn = Sched.interrupt sched ~service fn in
        let disk =
          Disk.create ~name:"d0" ~geometry:Disk.rz58 ~block_size:512
            ~nblocks:64 ~intr_service:(Time.us 60) ~engine ~intr ()
        in
        let dev = Disk.blkdev disk in
        for i = 0 to 63 do
          Disk.write_block_direct disk i (Bytes.make 512 (Char.chr (32 + i)))
        done;
        let cache = Cache.create ~block_size:512 ~nbufs:6 ~max_cluster:1 () in
        let log = Buffer.create 64 in
        let record (b : Buf.t) =
          Buffer.add_char log (Bytes.get b.Buf.b_data 0);
          Cache.brelse cache b
        in
        let _p =
          Sched.spawn sched ~name:"drv" (fun () ->
              List.iter
                (fun (blkno, n) ->
                  (if use_breadn then
                     match Cache.breadn cache dev blkno ~n ~iodone:record with
                     | `Hit b -> record b
                     | `Started _ | `Busy -> ()
                   else
                     match Cache.bread_nb cache dev blkno ~iodone:record with
                     | `Hit b -> record b
                     | `Started _ | `Busy -> ());
                  (* Serialise: wait out any in-flight read. *)
                  let b = Cache.bread cache dev blkno in
                  Buffer.add_char log (Bytes.get b.Buf.b_data 0);
                  Cache.brelse cache b)
                ops)
        in
        Engine.run engine;
        Sched.check_deadlock sched;
        Cache.check_invariants cache;
        ( Buffer.contents log,
          Disk.serviced disk,
          Time.to_us_f (Engine.now engine),
          Stats.get (Cache.stats cache) "cache.hits",
          Stats.get (Cache.stats cache) "cache.misses" )
      in
      run true = run false)

let suite =
  [
    Alcotest.test_case "getblk claims busy" `Quick test_getblk_claims_busy;
    Alcotest.test_case "getblk identity stable" `Quick test_getblk_same_identity;
    Alcotest.test_case "bread miss then hit" `Quick test_bread_miss_then_hit;
    Alcotest.test_case "bwrite persists" `Quick test_bwrite_persists;
    Alcotest.test_case "bdwrite delays" `Quick test_bdwrite_delays_until_flush;
    Alcotest.test_case "bawrite auto-release" `Quick test_bawrite_releases_automatically;
    Alcotest.test_case "LRU eviction + write-back" `Quick test_lru_eviction_and_dirty_writeback;
    Alcotest.test_case "I/O error propagation" `Quick test_biowait_error_propagates;
    Alcotest.test_case "breada prefetch" `Quick test_breada_prefetches;
    Alcotest.test_case "getblk_nb" `Quick test_getblk_nb_busy_returns_none;
    Alcotest.test_case "bread_nb hit" `Quick test_bread_nb_hit_started_busy;
    Alcotest.test_case "bread_nb started completes" `Quick test_bread_nb_started_completes;
    Alcotest.test_case "awrite_call handler" `Quick test_awrite_call_runs_handler;
    Alcotest.test_case "header aliasing (no copy)" `Quick test_getblk_hdr_aliasing;
    Alcotest.test_case "invalidate one block" `Quick test_invalidate_cached;
    Alcotest.test_case "invalidate device" `Quick test_invalidate_dev;
    Alcotest.test_case "buffer contention" `Quick test_two_processes_contend_for_buffer;
    Alcotest.test_case "pin defers release" `Quick test_pin_defers_release;
    Alcotest.test_case "unpin exactly once" `Quick test_unpin_exactly_once;
    Alcotest.test_case "breadn full run, one interrupt" `Quick
      test_breadn_full_run;
    Alcotest.test_case "breadn truncated by cached/busy block" `Quick
      test_breadn_truncated_by_cached_and_busy;
    Alcotest.test_case "breadn error isolated by breakup" `Quick
      test_breadn_error_poisons_one_block;
    Alcotest.test_case "flush coalesces adjacent dirty blocks" `Quick
      test_flush_coalesces_adjacent_only;
    Util.qcheck prop_cluster1_identity;
  ]
