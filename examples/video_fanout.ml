(* Video fan-out: one movie file streamed to N viewers by a splice graph.

   The broadcast case the two-endpoint splice cannot express: N TCP
   clients all want the same RZ58 file. A read/write server would burn
   one disk pass and one copy loop per client; a per-client splice would
   still re-read the file N times (or hope the buffer cache holds it).
   The splice graph reads each block from the disk exactly once and
   aliases the buffer to every connection under a reference count, so
   the disk cost is that of a single viewer no matter how many watch.

   Each edge carries a Throttle filter pacing delivery to the playback
   rate — the graph's per-edge flow control keeps a slow or paused
   viewer from stalling the rest.

   Run with: dune exec examples/video_fanout.exe *)

open Kpath_sim
open Kpath_net
open Kpath_kernel
open Kpath_workloads

let file_bytes = 1024 * 1024
let viewers = 6
let playback_rate = 1.5e6 (* bytes/second per viewer *)

let () =
  let engine = Engine.create () in
  let server = Machine.create ~engine () in
  let clientm = Machine.create ~engine () in
  let net = Netif.create_net ~bandwidth:40e6 engine in
  let srv_if = Netif.attach net ~name:"srv" ~intr:(Machine.intr server) () in
  let cli_if = Netif.attach net ~name:"cli" ~intr:(Machine.intr clientm) () in
  let drive = Machine.make_drive server ~name:"rz58" ~kind:`Rz58 () in
  let received = Array.make viewers 0 in
  let bad = ref 0 in
  let device_reads = ref 0 in

  let _srv =
    Machine.spawn server ~name:"broadcaster" (fun () ->
        let fs =
          Kpath_fs.Fs.mkfs ~cache:(Machine.cache server) (Machine.blkdev drive)
            ~ninodes:16
        in
        Machine.mount server "/" fs;
        let env = Syscall.make_env server in
        (* Publish the movie, then drop the cache so the stream starts
           cold — every block must come off the disk (once). *)
        let fd =
          Syscall.openf env "/movie.mpg" [ Syscall.O_CREAT; Syscall.O_WRONLY ]
        in
        let chunk = Bytes.create 65536 in
        let rec fill off =
          if off < file_bytes then begin
            Programs.fill_pattern chunk ~file_off:off;
            ignore (Syscall.write env fd chunk ~pos:0 ~len:65536);
            fill (off + 65536)
          end
        in
        fill 0;
        Syscall.fsync env fd;
        Syscall.close env fd;
        Kpath_buf.Cache.invalidate_dev (Machine.cache server)
          (Machine.blkdev drive);
        (* Let the audience in, then one splice_graph call streams to
           everyone: 1 source, [viewers] TCP sinks, a throttle per edge. *)
        let l = Syscall.tcp_listen env srv_if ~port:80 in
        let cfds = List.init viewers (fun _ -> Syscall.tcp_accept env l) in
        let reads_before =
          Stats.get (Kpath_buf.Cache.stats (Machine.cache server))
            "cache.dev_reads"
        in
        let src = Syscall.openf env "/movie.mpg" [ Syscall.O_RDONLY ] in
        let n =
          Syscall.splice_graph env ~srcs:[ src ] ~dsts:cfds
            ~filters:[ Kpath_graph.Graph.Throttle playback_rate ]
            Syscall.splice_eof
        in
        device_reads :=
          Stats.get (Kpath_buf.Cache.stats (Machine.cache server))
            "cache.dev_reads"
          - reads_before;
        Format.printf "server: delivered %d bytes over %d edges@." n viewers;
        Syscall.close env src;
        List.iter (Syscall.close env) cfds)
  in

  for i = 0 to viewers - 1 do
    ignore
      (Machine.spawn clientm ~name:(Printf.sprintf "viewer%d" i) (fun () ->
           let env = Syscall.make_env clientm in
           let rec connect tries =
             match
               Syscall.tcp_connect env cli_if ~port:(5000 + i)
                 ~dst:{ Tcp.a_if = Netif.id srv_if; a_port = 80 }
                 ()
             with
             | fd -> fd
             | exception Errno.Unix_error (Errno.EIO, _) when tries > 0 ->
               connect (tries - 1)
           in
           let fd = connect 5 in
           let buf = Bytes.create 8192 in
           let rec watch () =
             let n = Syscall.read env fd buf ~pos:0 ~len:8192 in
             if n > 0 then begin
               for j = 0 to n - 1 do
                 if Bytes.get buf j <> Programs.pattern_byte (received.(i) + j)
                 then incr bad
               done;
               received.(i) <- received.(i) + n;
               watch ()
             end
           in
           watch ();
           Syscall.close env fd))
  done;

  Machine.run server;
  let all_complete = Array.for_all (fun n -> n = file_bytes) received in
  Format.printf
    "%d viewers, %d KB movie at %.1f MB/s per edge: complete=%b corrupt=%d@."
    viewers (file_bytes / 1024) (playback_rate /. 1e6) all_complete !bad;
  Format.printf
    "device reads: %d — one disk pass for the whole audience (%.1f per viewer)@."
    !device_reads
    (float_of_int !device_reads /. float_of_int viewers)
