(** Experiment drivers regenerating the paper's evaluation (§6).

    Every function builds fresh machines (cold caches, per §6.2's "read
    cache cold start"), runs deterministic simulations, and returns the
    rows the paper's tables report. See EXPERIMENTS.md for paper-vs-
    measured discussion. *)

open Kpath_core
open Kpath_kernel

type disk_kind = [ `Ram | `Rz56 | `Rz58 ]

val disk_name : disk_kind -> string

type setup = {
  machine : Machine.t;
  src_path : string;
  dst_path : string;
  file_bytes : int;
  drives : Kpath_kernel.Machine.drive list;
      (** [src; dst] drives — [dst] aliases [src] when [same_disk] *)
}

val make_setup :
  disk:disk_kind ->
  ?file_bytes:int ->
  ?same_disk:bool ->
  ?disk_queue:Kpath_dev.Disk.queue_discipline ->
  ?machine_config:Config.t ->
  unit ->
  setup
(** Two drives of the given kind with a filesystem each ([/src], [/dst]),
    the source file written with the verification pattern, everything
    synced and the caches invalidated (cold start). [same_disk] puts
    source and destination on one drive/filesystem instead. Default file
    size: 8 MB. *)

val cold_caches : setup -> unit
(** Re-invalidate every cached block of both devices (between runs). *)

(** {1 Table 2 — throughput} *)

type copy_measure = {
  cm_bytes : int;
  cm_seconds : float;
  cm_kb_per_sec : float;
  cm_verified : bool;  (** destination matched the source pattern *)
  cm_events : int;
      (** simulation events the copy fired (before verification) — with
          host wall-clock this gives the engine's events/sec *)
}

val measure_copy :
  mode:[ `Cp | `Scp | `Mcp ] ->
  disk:disk_kind ->
  ?file_bytes:int ->
  ?same_disk:bool ->
  ?disk_queue:Kpath_dev.Disk.queue_discipline ->
  ?machine_config:Config.t ->
  ?config:Flowctl.config ->
  unit ->
  copy_measure
(** One cold copy on an otherwise idle machine; its duration, rate and
    an end-to-end integrity verdict. [`Mcp] is the memory-mapped copier
    of the §7 comparison. *)

type tput_row = {
  tp_disk : disk_kind;
  tp_scp_kbps : float;
  tp_cp_kbps : float;
  tp_pct_improvement : float;
}

val table2 : ?file_bytes:int -> unit -> tput_row list
(** The three rows of Table 2 (RAM, RZ56, RZ58). *)

(** {1 Table 1 — CPU availability} *)

type avail_row = {
  av_disk : disk_kind;
  av_f_cp : float;  (** test-program slowdown under cp *)
  av_f_scp : float;  (** test-program slowdown under scp *)
  av_improvement : float;  (** F_cp / F_scp *)
  av_pct : float;  (** percentage execution-speed improvement *)
}

val idle_seconds : ops:int -> float
(** Baseline: the test program alone on an idle machine. *)

val slowdown :
  mode:[ `Cp | `Scp ] ->
  disk:disk_kind ->
  ?file_bytes:int ->
  ?pace:float ->
  ?machine_config:Config.t ->
  ops:int ->
  unit ->
  float
(** Test-program slowdown factor while a looping copy contends. With
    [pace] the copy is throttled to that application data rate; without
    it the copy runs at the device's natural maximum. *)

val table1 : ?file_bytes:int -> ?ops:int -> ?pace:float option -> unit -> avail_row list
(** The three rows of Table 1. Default: 2000 ops of 1 ms, both copy
    mechanisms paced to 1 MB/s (a continuous-media rate) so the CPU cost
    of the {e mechanism} is isolated from the transfer rate; pass
    [~pace:None] for the natural-maximum-rate variant (see
    EXPERIMENTS.md for why the RAM row saturates there). *)

val availability_timeline :
  mode:[ `Cp | `Scp ] ->
  disk:disk_kind ->
  ?file_bytes:int ->
  ?pace:float ->
  ?ops:int ->
  ?bucket:Kpath_sim.Time.span ->
  unit ->
  int list
(** Figure-equivalent for Table 1: the test program's completed
    operations per [bucket] (default 250 ms) while the copy loop
    contends — the shape of CPU availability over time. *)

(** {1 Cluster sweep — §7 "larger transfer units"} *)

type cluster_row = {
  cl_cluster : int;  (** [max_cluster] this row ran with *)
  cl_disk : disk_kind;
  cl_scp_kbps : float;  (** splice copy throughput, idle machine *)
  cl_intrs_per_mb : float;
      (** device completion interrupts raised per MB copied (requests
          completed across both drives during the copy) *)
  cl_f_scp : float;
      (** test-program slowdown factor under the paced splice copy *)
}

val measure_cluster :
  disk:disk_kind ->
  ?file_bytes:int ->
  ?ops:int ->
  ?pace:float option ->
  cluster:int ->
  unit ->
  cluster_row
(** One cold splice copy with [max_cluster = cluster]: throughput and
    device interrupts per MB on an idle machine, then the Table 1-style
    availability factor under a paced copy loop. Defaults match
    {!table1}: 2000 ops, copy paced to 1 MB/s. *)

val cluster_sweep :
  disk:disk_kind ->
  ?file_bytes:int ->
  ?ops:int ->
  ?pace:float option ->
  int list ->
  cluster_row list
(** {!measure_cluster} across cluster sizes — the §7 "larger transfer
    units" projection: interrupts per MB fall with the cluster size
    while cluster 1 reproduces the per-block path exactly. *)

(** {1 Ablations and sweeps} *)

val watermark_sweep :
  disk:disk_kind -> ?file_bytes:int -> Flowctl.config list -> (Flowctl.config * copy_measure) list
(** splice throughput under alternative flow-control settings (§5.5). *)

val size_sweep :
  disk:disk_kind -> int list -> (int * copy_measure * copy_measure) list
(** (size, scp, cp) across file sizes — the paper's "alternative sizes
    were statistically indistinguishable" claim. *)

(** {1 Continuous-media playback (the paper's §1/§4 motivation)} *)

type media_measure = {
  md_frames : int;  (** video frames delivered *)
  md_late_frames : int;  (** frames not ready by their timer tick *)
  md_audio_underruns : int;  (** audio DAC starvation events *)
  md_fps : float;  (** achieved video rate *)
  md_player_cpu_sec : float;  (** CPU consumed by the player process(es) *)
}

val measure_media :
  player:[ `Process | `Splice ] ->
  ?load:int ->
  ?seconds:int ->
  ?fps:int ->
  unit ->
  media_measure
(** Play a movie (audio track + timed video frames) from an RZ58 disk to
    rate-paced DACs, while [load] compute-bound processes contend for
    the CPU (default 0). [`Process] pumps both streams with read/write
    loops (one process per stream, as one would without splice);
    [`Splice] is the paper's §4 player: an asynchronous SPLICE_EOF audio
    splice plus one bounded video splice per interval-timer tick.
    Defaults: 5 simulated seconds at 15 fps. *)

(** {1 File serving over TCP (the sendfile path)} *)

type sendfile_measure = {
  sf_bytes : int;  (** bytes the client received and verified *)
  sf_verified : bool;
  sf_seconds : float;
  sf_kb_per_sec : float;
  sf_server_cpu_sec : float;  (** server-machine CPU consumed *)
  sf_retransmits : int;  (** TCP segments retransmitted *)
}

val measure_sendfile :
  mode:[ `ReadWrite | `Sendfile ] ->
  ?file_bytes:int ->
  ?loss:float ->
  ?bandwidth:float ->
  ?machine_config:Config.t ->
  unit ->
  sendfile_measure
(** A server machine (RZ58 disk) serves one file over TCP to a client
    machine on the same segment (separate CPUs, one simulated clock).
    [`ReadWrite] is the classic read/send loop; [`Sendfile] is a
    file-to-TCP splice — the in-kernel path that later shipped as
    [sendfile(2)]. [loss] injects frame loss (default 0); default file
    4 MB, segment bandwidth 2.5 MB/s. *)

(** {1 Fan-out: one file to N TCP clients (splice graph)} *)

type fanout_measure = {
  fo_clients : int;
  fo_bytes_per_client : int;
  fo_verified : bool;
      (** every client received the whole file, pattern-correct *)
  fo_device_reads : int;
      (** physical reads issued while streaming — the single-read
          invariant says this is independent of the client count *)
  fo_seconds : float;  (** stream start to last byte delivered *)
  fo_agg_kb_per_sec : float;  (** aggregate over all clients *)
  fo_server_cpu_sec : float;  (** server-machine CPU consumed *)
  fo_pinned_after : int;
      (** buffers still pinned when the graph finished (leak check: 0) *)
  fo_events : int;
      (** simulation events the whole run fired — with host wall-clock
          this gives the engine's events/sec *)
  fo_prog_runs : int;
      (** filter-program invocations across all edges (0 without a
          [Graph.Prog] stage) *)
  fo_prog_insns : int;  (** bytecode instructions interpreted *)
}

val measure_fanout :
  ?clients:int ->
  ?file_bytes:int ->
  ?bandwidth:float ->
  ?config:Flowctl.config ->
  ?filters:Kpath_graph.Graph.filter list ->
  ?window:int ->
  ?trace_json:Format.formatter ->
  ?machine_config:Config.t ->
  unit ->
  fanout_measure
(** A server machine (RZ58 disk) streams one file to [clients]
    (default 8) TCP readers on a client machine via a single splice
    graph: each file block is read from the disk once and the buffer is
    aliased to every connection. Defaults: 1 MB file, 2.5 MB/s segment.
    [config]/[filters]/[window] pass through to the graph's edges.
    [trace_json] enables the server's ["graph"] trace category and dumps
    the recorded events to the formatter, one JSON object per line
    ({!Kpath_sim.Trace.dump_json}), when the run finishes. *)

(** {1 Filter-program overhead — interpreted edge programs vs built-ins} *)

type prog_row = {
  pr_stage : string;  (** "plain", "checksum", or the program's label *)
  pr_bytes : int;
  pr_seconds : float;  (** simulated transfer time *)
  pr_kb_per_sec : float;
  pr_cpu_sec : float;  (** simulated CPU the whole copy consumed *)
  pr_runs : int;  (** program invocations (one per block) *)
  pr_insns : int;  (** bytecode instructions executed (either backend) *)
  pr_checksum : int option;  (** the edge checksum, if the stage feeds one *)
  pr_verified : bool;
  pr_events : int;
      (** simulation events the run fired — with host wall-clock this
          gives the engine's events/sec *)
}

val measure_prog :
  disk:disk_kind ->
  ?file_bytes:int ->
  stage:
    [ `Plain
    | `Checksum
    | `Prog of string * Kpath_vm.Vm.prog list ]
  ->
  ?machine_config:Config.t ->
  ?vm_backend:[ `Interp | `Compiled | `Checked ] ->
  unit ->
  prog_row
(** One cold file-to-file splice-graph copy whose single edge carries
    the given stage: nothing, the built-in [Checksum], or a chain of
    verified filter programs (labelled for reporting; each program sees
    the previous one's output payload). Comparing a [`Prog] row against
    [`Plain] prices the program machinery (simulated CPU per block and
    instructions per block); comparing its [pr_checksum] against the
    [`Checksum] row's proves the program computed the same function.
    [pr_verified] checks the destination against the {e source} pattern,
    so a transforming chain should compose to the identity (e.g. the
    same XOR mask applied twice). [vm_backend] overrides the machine
    config's program backend; every simulated number is bit-identical
    between backends — only host wall-clock moves. *)

(** {1 UDP relay (socket-to-socket splice)} *)

type relay_measure = {
  rm_datagrams : int;  (** datagrams delivered end-to-end *)
  rm_dropped : int;  (** datagrams lost at the relay socket *)
  rm_cpu_busy_frac : float;  (** relay-machine CPU utilisation *)
  rm_seconds : float;
}

val measure_relay :
  mode:[ `Process | `Splice ] ->
  ?datagrams:int ->
  ?dgram_bytes:int ->
  ?interval_us:int ->
  unit ->
  relay_measure
(** A stub sender streams datagrams through a relay machine to a stub
    sink; the relay either runs a recvfrom/sendto process or a
    socket-to-socket splice. Compares CPU cost and loss. *)

(** {1 Sharded fan-out — clients partitioned over OCaml domains} *)

type fanout_shard_measure = {
  fsh_clients : int;
  fsh_domains : int;  (** domains requested (shards actually used may be
                          fewer when clients < domains) *)
  fsh_bytes_per_client : int;
  fsh_verified : bool;
      (** every client received every byte, pattern-correct *)
  fsh_stage_events : int;
      (** staging-phase (disk → capture sink) events — replayed
          identically in every shard, counted once *)
  fsh_events : int;
      (** merged event count: staging once plus every shard's delivery
          phase — invariant across domain counts *)
  fsh_seconds : float;  (** simulated time to the last client's last byte *)
  fsh_agg_kb_per_sec : float;  (** aggregate over all clients *)
  fsh_server_cpu_sec : float;
      (** staging CPU (once) plus delivery-server CPU summed over shards *)
  fsh_digest : int;
      (** order-sensitive digest of the staged timeline and the merged
          completion sequence — bit-identical at every domain count *)
  fsh_completions : (int * int) array;
      (** merged (completion time in ns, client id), ordered by time
          with ties broken by client id *)
}

val measure_fanout_sharded :
  ?clients:int ->
  ?domains:int ->
  ?file_bytes:int ->
  ?bandwidth:float ->
  ?stagger_us:int ->
  ?machine_config:Config.t ->
  unit ->
  fanout_shard_measure
(** The million-client shape of {!measure_fanout}: one staging pass
    records the file's splice-graph delivery into refcounted block
    payloads, then the client population (default 64; [domains] defaults
    to the machine config's [sim_domains]) is partitioned into
    contiguous slices, each delivered in its own sub-simulation —
    per-client interface and connection on a switched segment, both ends
    callback-driven (no process per client), every connection streaming
    the {e same} block payloads zero-copy. Client [c] starts at
    [c * stagger_us] (default 1) whatever shard it lands in and no state
    couples one flow to another, so shard results are independent of the
    partition; completions are joined with a deterministic (time, client)
    merge, making the whole measurement — digest, events, seconds —
    bit-identical at every domain count. Shards run concurrently on
    OCaml domains. Default 64 KB per client, 2.5 MB/s per switched
    lane. *)
