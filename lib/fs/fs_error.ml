type t =
  | Enoent
  | Eexist
  | Enospc
  | Enotdir
  | Eisdir
  | Enotempty
  | Enametoolong
  | Efbig
  | Einval of string
  | Eio of string

exception Error of t

let raise_err e = raise (Error e)

let to_string = function
  | Enoent -> "ENOENT"
  | Eexist -> "EEXIST"
  | Enospc -> "ENOSPC"
  | Enotdir -> "ENOTDIR"
  | Eisdir -> "EISDIR"
  | Enotempty -> "ENOTEMPTY"
  | Enametoolong -> "ENAMETOOLONG"
  | Efbig -> "EFBIG"
  | Einval msg -> "EINVAL(" ^ msg ^ ")"
  | Eio msg -> "EIO(" ^ msg ^ ")"

let pp fmt e = Format.pp_print_string fmt (to_string e)

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Fs_error.Error " ^ to_string e)
    | _ -> None)
