(* Assembler / disassembler for the filter VM's textual format. *)

exception Err of int * string

let err line fmt = Printf.ksprintf (fun m -> raise (Err (line, m))) fmt

let strip_comment s =
  match String.index_opt s ';' with
  | Some i -> String.sub s 0 i
  | None -> s

let tokens s =
  String.map (function ',' -> ' ' | c -> c) s
  |> String.split_on_char ' '
  |> List.filter (fun t -> t <> "")

let parse_int line tok =
  match int_of_string_opt tok with
  | Some k -> k
  | None -> err line "expected an integer, got %S" tok

let parse_reg line tok =
  let n = String.length tok in
  if n >= 2 && tok.[0] = 'r' then
    match int_of_string_opt (String.sub tok 1 (n - 1)) with
    | Some r -> r
    | None -> err line "expected a register, got %S" tok
  else err line "expected a register, got %S" tok

let parse_operand line tok : Vm.operand =
  let n = String.length tok in
  if n >= 2 && tok.[0] = 'r' then
    match int_of_string_opt (String.sub tok 1 (n - 1)) with
    | Some r -> Reg r
    | None -> err line "expected a register or integer, got %S" tok
  else
    match int_of_string_opt tok with
    | Some k -> Imm k
    | None -> err line "expected a register or integer, got %S" tok

(* One source line that assembles to an instruction, kept raw until
   labels are known. *)
type raw = { w_line : int; w_toks : string list }

let parse text =
  try
    let fuel = ref None in
    let scratch = ref 0 in
    let context = ref Vm.Edge in
    let raws = ref [] in
    let nraw = ref 0 in
    let labels = Hashtbl.create 8 in
    let directive line name args =
      match (name, args) with
      | "fuel", [ v ] -> fuel := Some (parse_int line v)
      | "scratch", [ v ] -> scratch := parse_int line v
      | "context", [ "edge" ] -> context := Vm.Edge
      | "context", [ "readonly" ] -> context := Vm.Readonly
      | "context", _ -> err line "context must be 'edge' or 'readonly'"
      | _, _ -> err line "%s takes one argument" name
    in
    String.split_on_char '\n' text
    |> List.iteri (fun i rawline ->
           let line = i + 1 in
           let toks = tokens (strip_comment rawline) in
           (* A leading [name:] labels the next instruction. *)
           let toks =
             match toks with
             | t :: rest when String.length t > 1 && t.[String.length t - 1] = ':'
               ->
               let name = String.sub t 0 (String.length t - 1) in
               if Hashtbl.mem labels name then
                 err line "duplicate label %S" name;
               Hashtbl.add labels name !nraw;
               rest
             | toks -> toks
           in
           match toks with
           | [] -> ()
           | ("fuel" | "scratch" | "context") :: args ->
             directive line (List.hd toks) args
           | toks ->
             raws := { w_line = line; w_toks = toks } :: !raws;
             incr nraw);
    let raws = Array.of_list (List.rev !raws) in
    let resolve line pc tok =
      match Hashtbl.find_opt labels tok with
      | Some target -> target - pc
      | None -> err line "unknown label %S" tok
    in
    let insn pc { w_line = line; w_toks } : Vm.insn =
      let reg = parse_reg line and op = parse_operand line in
      let imm = parse_int line and lbl = resolve line pc in
      match w_toks with
      | [ "mov"; a; b ] -> Mov (reg a, op b)
      | [ "add"; a; b ] -> Add (reg a, op b)
      | [ "sub"; a; b ] -> Sub (reg a, op b)
      | [ "mul"; a; b ] -> Mul (reg a, op b)
      | [ "div"; a; b ] -> Div (reg a, op b)
      | [ "rem"; a; b ] -> Rem (reg a, op b)
      | [ "and"; a; b ] -> And (reg a, op b)
      | [ "or"; a; b ] -> Or (reg a, op b)
      | [ "xor"; a; b ] -> Xor (reg a, op b)
      | [ "shl"; a; b ] -> Shl (reg a, op b)
      | [ "shr"; a; b ] -> Shr (reg a, op b)
      | [ "len"; a ] -> Len (reg a)
      | [ "blkno"; a ] -> Blkno (reg a)
      | [ "ldp"; a; b ] -> Ldp (reg a, op b)
      | [ "stp"; a; b ] -> Stp (op a, op b)
      | [ "lds"; a; b ] -> Lds (reg a, imm b)
      | [ "sts"; a; b ] -> Sts (imm a, op b)
      | [ "ldsx"; a; b ] -> Ldsx (reg a, reg b)
      | [ "stsx"; a; b ] -> Stsx (reg a, op b)
      | [ "jmp"; l ] -> Jmp (lbl l)
      | [ "jeq"; a; b; l ] -> Jeq (reg a, op b, lbl l)
      | [ "jne"; a; b; l ] -> Jne (reg a, op b, lbl l)
      | [ "jlt"; a; b; l ] -> Jlt (reg a, op b, lbl l)
      | [ "jge"; a; b; l ] -> Jge (reg a, op b, lbl l)
      | [ "loop"; a; b ] -> Loop (op a, imm b)
      | [ "end" ] -> End
      | [ "emit"; a; b ] -> Emit (op a, op b)
      | [ "drop" ] -> Drop
      | [ "redirect"; a ] -> Redirect (op a)
      | [ "ret" ] -> Ret
      | m :: _ -> err line "unknown or malformed instruction %S" m
      | [] -> assert false
    in
    let s_insns = Array.mapi insn raws in
    match !fuel with
    | None -> Error "missing 'fuel' directive"
    | Some s_fuel ->
      Ok
        {
          Vm.s_insns;
          s_fuel;
          s_scratch = !scratch;
          s_context = !context;
        }
  with Err (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)

let load text =
  match parse text with
  | Error _ as e -> e
  | Ok spec -> (
    match Vm.verify spec with
    | Ok p -> Ok p
    | Error d -> Error (Vm.diag_to_string d))

(* {1 Disassembler} *)

let operand = function
  | Vm.Reg r -> Printf.sprintf "r%d" r
  | Vm.Imm k -> string_of_int k

let insn_to_string ~pc (i : Vm.insn) =
  let two m a b = Printf.sprintf "%s %s, %s" m a b in
  let jump m r o off =
    Printf.sprintf "%s r%d, %s, -> %d" m r (operand o) (pc + off)
  in
  match i with
  | Mov (r, o) -> two "mov" (operand (Reg r)) (operand o)
  | Add (r, o) -> two "add" (operand (Reg r)) (operand o)
  | Sub (r, o) -> two "sub" (operand (Reg r)) (operand o)
  | Mul (r, o) -> two "mul" (operand (Reg r)) (operand o)
  | Div (r, o) -> two "div" (operand (Reg r)) (operand o)
  | Rem (r, o) -> two "rem" (operand (Reg r)) (operand o)
  | And (r, o) -> two "and" (operand (Reg r)) (operand o)
  | Or (r, o) -> two "or" (operand (Reg r)) (operand o)
  | Xor (r, o) -> two "xor" (operand (Reg r)) (operand o)
  | Shl (r, o) -> two "shl" (operand (Reg r)) (operand o)
  | Shr (r, o) -> two "shr" (operand (Reg r)) (operand o)
  | Len r -> Printf.sprintf "len r%d" r
  | Blkno r -> Printf.sprintf "blkno r%d" r
  | Ldp (r, o) -> two "ldp" (operand (Reg r)) (operand o)
  | Stp (a, b) -> two "stp" (operand a) (operand b)
  | Lds (r, off) -> two "lds" (operand (Reg r)) (string_of_int off)
  | Sts (off, o) -> two "sts" (string_of_int off) (operand o)
  | Ldsx (r, ri) -> two "ldsx" (operand (Reg r)) (operand (Reg ri))
  | Stsx (ri, o) -> two "stsx" (operand (Reg ri)) (operand o)
  | Jmp off -> Printf.sprintf "jmp -> %d" (pc + off)
  | Jeq (r, o, off) -> jump "jeq" r o off
  | Jne (r, o, off) -> jump "jne" r o off
  | Jlt (r, o, off) -> jump "jlt" r o off
  | Jge (r, o, off) -> jump "jge" r o off
  | Loop (o, cap) -> two "loop" (operand o) (string_of_int cap)
  | End -> "end"
  | Emit (a, b) -> two "emit" (operand a) (operand b)
  | Drop -> "drop"
  | Redirect o -> Printf.sprintf "redirect %s" (operand o)
  | Ret -> "ret"

let print p =
  let code = Vm.insns p in
  let n = Array.length code in
  (* Name every jump target so offsets survive the round trip. *)
  let targets = Hashtbl.create 8 in
  Array.iteri
    (fun pc insn ->
      match (insn : Vm.insn) with
      | Jmp off | Jeq (_, _, off) | Jne (_, _, off) | Jlt (_, _, off)
      | Jge (_, _, off) ->
        Hashtbl.replace targets (pc + off) ()
      | _ -> ())
    code;
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "fuel %d" (Vm.fuel p);
  if Vm.scratch_cells p > 0 then line "scratch %d" (Vm.scratch_cells p);
  if Vm.prog_context p = Vm.Readonly then line "context readonly";
  let lbl target = Printf.sprintf "L%d" target in
  let two m a b = line "    %s %s, %s" m a b in
  for pc = 0 to n do
    if Hashtbl.mem targets pc then line "%s:" (lbl pc);
    if pc < n then
      match code.(pc) with
      | Mov (r, o) -> two "mov" (operand (Reg r)) (operand o)
      | Add (r, o) -> two "add" (operand (Reg r)) (operand o)
      | Sub (r, o) -> two "sub" (operand (Reg r)) (operand o)
      | Mul (r, o) -> two "mul" (operand (Reg r)) (operand o)
      | Div (r, o) -> two "div" (operand (Reg r)) (operand o)
      | Rem (r, o) -> two "rem" (operand (Reg r)) (operand o)
      | And (r, o) -> two "and" (operand (Reg r)) (operand o)
      | Or (r, o) -> two "or" (operand (Reg r)) (operand o)
      | Xor (r, o) -> two "xor" (operand (Reg r)) (operand o)
      | Shl (r, o) -> two "shl" (operand (Reg r)) (operand o)
      | Shr (r, o) -> two "shr" (operand (Reg r)) (operand o)
      | Len r -> line "    len r%d" r
      | Blkno r -> line "    blkno r%d" r
      | Ldp (r, o) -> two "ldp" (operand (Reg r)) (operand o)
      | Stp (a, b) -> two "stp" (operand a) (operand b)
      | Lds (r, off) -> two "lds" (operand (Reg r)) (string_of_int off)
      | Sts (off, o) -> two "sts" (string_of_int off) (operand o)
      | Ldsx (r, ri) -> two "ldsx" (operand (Reg r)) (operand (Reg ri))
      | Stsx (ri, o) -> two "stsx" (operand (Reg ri)) (operand o)
      | Jmp off -> line "    jmp %s" (lbl (pc + off))
      | Jeq (r, o, off) ->
        line "    jeq r%d, %s, %s" r (operand o) (lbl (pc + off))
      | Jne (r, o, off) ->
        line "    jne r%d, %s, %s" r (operand o) (lbl (pc + off))
      | Jlt (r, o, off) ->
        line "    jlt r%d, %s, %s" r (operand o) (lbl (pc + off))
      | Jge (r, o, off) ->
        line "    jge r%d, %s, %s" r (operand o) (lbl (pc + off))
      | Loop (o, cap) -> two "loop" (operand o) (string_of_int cap)
      | End -> line "    end"
      | Emit (a, b) -> two "emit" (operand a) (operand b)
      | Drop -> line "    drop"
      | Redirect o -> line "    redirect %s" (operand o)
      | Ret -> line "    ret"
  done;
  Buffer.contents buf
