open Kpath_sim
open Kpath_dev
open Kpath_proc
open Kpath_buf
open Kpath_core

type drive = Scsi of Disk.t | Ram of Ramdisk.t

type t = {
  config : Config.t;
  engine : Engine.t;
  sched : Sched.t;
  callout : Callout.t;
  cache : Cache.t;
  splice_ctx : Splice.ctx;
  graph_ctx : Kpath_graph.Graph.ctx;
  trace : Trace.t;
  ram_arbiter : Ramdisk.arbiter;
  mutable mounts : (string * Kpath_fs.Fs.t) list;
  mutable chardevs : (string * Chardev.t) list;
  mutable framebuffers : (string * Framebuffer.t) list;
}

let create ?(config = Config.decstation_5000_200) ?engine () =
  let engine =
    match engine with
    | Some e -> e
    | None ->
      Engine.create ~backend:config.Config.sim_engine
        ~tick:config.Config.callout_tick ()
  in
  let sched =
    Sched.create ~ctx_switch_cost:config.Config.ctx_switch_cost
      ~quantum:config.Config.quantum engine
  in
  let callout = Callout.create ~tick:config.Config.callout_tick engine in
  let cache =
    Cache.create ~block_size:config.Config.block_size
      ~nbufs:(Config.cache_nbufs config)
      ~max_cluster:config.Config.max_cluster ()
  in
  let intr ~service fn = Sched.interrupt sched ~service fn in
  let trace = Trace.create ~clock:(fun () -> Engine.now engine) () in
  let splice_ctx =
    Splice.make_ctx ~engine ~callout ~cache ~intr
      ~handler_cost:config.Config.splice_handler_cost ~trace ()
  in
  let graph_ctx =
    Kpath_graph.Graph.make_ctx ~engine ~callout ~cache ~intr
      ~handler_cost:config.Config.splice_handler_cost
      ~vm_insn_cost:config.Config.vm_insn_cost
      ~vm_backend:config.Config.vm_backend ~trace ()
  in
  {
    config;
    engine;
    sched;
    callout;
    cache;
    splice_ctx;
    graph_ctx;
    trace;
    ram_arbiter = Ramdisk.arbiter ();
    mounts = [];
    chardevs = [];
    framebuffers = [];
  }

let config t = t.config

let engine t = t.engine

let sched t = t.sched

let callout t = t.callout

let cache t = t.cache

let splice_ctx t = t.splice_ctx

let graph_ctx t = t.graph_ctx

let trace t = t.trace

let intr t ~service fn = Sched.interrupt t.sched ~service fn

let now t = Engine.now t.engine

let make_drive t ~name ~kind ?nblocks ?queue () =
  let block_size = t.config.Config.block_size in
  match kind with
  | `Ram ->
    let nblocks = Option.value nblocks ~default:t.config.Config.ramdisk_blocks in
    let charge_in_context span =
      if Sched.in_process_context t.sched then begin
        Process.use_cpu Process.Sys span;
        true
      end
      else false
    in
    Ram
      (Ramdisk.create ~name ~copy_rate:t.config.Config.copy_rate ~block_size
         ~nblocks ~arbiter:t.ram_arbiter ~charge_in_context ~engine:t.engine
         ~intr:(intr t) ())
  | (`Rz56 | `Rz58) as g ->
    let geometry = match g with `Rz56 -> Disk.rz56 | `Rz58 -> Disk.rz58 in
    let nblocks = Option.value nblocks ~default:4096 in
    Scsi
      (Disk.create ~name ~geometry ~block_size ~nblocks
         ~intr_service:t.config.Config.disk_intr_service ?queue
         ~engine:t.engine ~intr:(intr t) ())

let blkdev = function Scsi d -> Disk.blkdev d | Ram r -> Ramdisk.blkdev r

let normalize path =
  if String.length path = 0 || path.[0] <> '/' then
    invalid_arg "Machine: paths must be absolute";
  path

let mount t prefix fs =
  let prefix = normalize prefix in
  if List.mem_assoc prefix t.mounts then
    invalid_arg ("Machine.mount: already mounted at " ^ prefix);
  (* Keep longest prefixes first for resolution. *)
  t.mounts <-
    List.sort
      (fun (a, _) (b, _) -> compare (String.length b) (String.length a))
      ((prefix, fs) :: t.mounts)

let has_prefix ~prefix path =
  String.length path >= String.length prefix
  && String.sub path 0 (String.length prefix) = prefix
  && (String.length path = String.length prefix
      || path.[String.length prefix] = '/'
      || prefix = "/")

let resolve t path =
  let path = normalize path in
  let rec go = function
    | [] -> None
    | (prefix, fs) :: rest ->
      if has_prefix ~prefix path then
        let rel = String.sub path (String.length prefix)
            (String.length path - String.length prefix)
        in
        let rel = if rel = "" then "/" else rel in
        Some (fs, rel)
      else go rest
  in
  go t.mounts

let register_chardev t path cd =
  t.chardevs <- (normalize path, cd) :: t.chardevs

let find_chardev t path = List.assoc_opt path t.chardevs

let register_framebuffer t path fb =
  t.framebuffers <- (normalize path, fb) :: t.framebuffers

let find_framebuffer t path = List.assoc_opt path t.framebuffers

let spawn t ~name ?priority body = Sched.spawn t.sched ~name ?priority body

let run ?until t =
  Engine.run ?until t.engine;
  if until = None then Sched.check_deadlock t.sched
