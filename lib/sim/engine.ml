(* The event queue behind the simulation.

   Two backends share one pooled event representation:

   - [`Heap]: the classic binary heap keyed on (time, seq).
   - [`Wheel]: a hierarchical timing wheel (Varghese & Lauck) with three
     levels of 256 slots keyed on the callout tick, an overflow heap for
     events beyond the 2^24-tick horizon, and a small "near" heap that
     totally orders the events of the current tick by (time, seq).

   Event records live in a freelist pool and handles are immediate
   integers packing (pool index, generation), so steady-state
   scheduling allocates nothing on the OCaml heap and a stale handle
   can never reach a recycled record. *)

type handle = int

type backend = [ `Heap | `Wheel ]

(* Handle layout: low [idx_bits] bits index the pool; the bits above
   carry the record's generation (wrapping at [gen_mask]). *)
let idx_bits = 20

let idx_mask = (1 lsl idx_bits) - 1

let max_pool = idx_mask + 1

let gen_mask = (1 lsl 42) - 1

let nil = -1

(* Record states. A freed record keeps its terminal state (fired or
   cancelled) until the slot is reused, so status queries on recent
   handles stay exact. *)
let st_pending = 0

let st_cancelled = 1

let st_fired = 2

type hrec = {
  h_idx : int;
  mutable h_gen : int;
  mutable h_time : Time.t;
  mutable h_seq : int;
  mutable h_fn : unit -> unit;
  mutable h_state : int;
  mutable h_next : int; (* freelist or wheel-slot chain; [nil] ends it *)
}

let dummy_fn () = ()

(* Wheel geometry: 256 slots per level, three levels, so ticks up to
   2^24 ahead live somewhere in the wheel and anything farther spills
   to the overflow heap. With a 1 ms tick the horizon is ~4.7 hours. *)
let slot_bits = 8

let slots = 1 lsl slot_bits

let slot_mask = slots - 1

let horizon = 1 lsl (3 * slot_bits)

type wheel = {
  w_gran : int; (* ns per tick *)
  mutable w_tick : int; (* ticks <= w_tick have been dumped *)
  l0 : int array; (* chain heads per slot; pool indices *)
  l1 : int array;
  l2 : int array;
  mutable n0 : int; (* entries chained per level: lets [advance] skip *)
  mutable n1 : int; (* empty levels whole-span instead of slot by slot *)
  mutable n2 : int;
  near : int Heap.t; (* current-instant events, (time, seq) order *)
  over : int Heap.t; (* beyond the horizon *)
}

type queue = Qheap of int Heap.t | Qwheel of wheel

type t = {
  mutable clock : Time.t;
  mutable next_seq : int;
  mutable live : int; (* pending minus cancelled, for [pending] *)
  mutable fired_count : int;
  pool : hrec array ref; (* in a ref so heap comparators can see growth *)
  mutable pool_len : int;
  mutable free_head : int;
  mutable free_n : int;
  q : queue;
}

exception Stopped

let stop () = raise Stopped

let create ?(backend = `Heap) ?(tick = Time.ms 1) () =
  if Time.(tick <= Time.zero) then invalid_arg "Engine.create: tick <= 0";
  let pool = ref [||] in
  let cmp i j =
    let a = !pool.(i) and b = !pool.(j) in
    let c = Time.compare a.h_time b.h_time in
    if c <> 0 then c else Int.compare a.h_seq b.h_seq
  in
  let q =
    match backend with
    | `Heap -> Qheap (Heap.create ~cmp)
    | `Wheel ->
      Qwheel
        {
          w_gran = Time.to_ns tick;
          w_tick = 0;
          l0 = Array.make slots nil;
          l1 = Array.make slots nil;
          l2 = Array.make slots nil;
          n0 = 0;
          n1 = 0;
          n2 = 0;
          near = Heap.create ~cmp;
          over = Heap.create ~cmp;
        }
  in
  {
    clock = Time.zero;
    next_seq = 0;
    live = 0;
    fired_count = 0;
    pool;
    pool_len = 0;
    free_head = nil;
    free_n = 0;
    q;
  }

let backend t = match t.q with Qheap _ -> `Heap | Qwheel _ -> `Wheel

let now t = t.clock

let pending t = t.live

let events_fired t = t.fired_count

let pool_size t = t.pool_len

let pool_free t = t.free_n

(* {1 Pool} *)

let alloc t ~time ~seq ~fn =
  if t.free_head >= 0 then begin
    let r = !(t.pool).(t.free_head) in
    t.free_head <- r.h_next;
    t.free_n <- t.free_n - 1;
    r.h_gen <- (r.h_gen + 1) land gen_mask;
    r.h_time <- time;
    r.h_seq <- seq;
    r.h_fn <- fn;
    r.h_state <- st_pending;
    r.h_next <- nil;
    r
  end
  else begin
    let i = t.pool_len in
    if i >= max_pool then
      failwith "Engine: event pool exhausted (2^20 concurrent events)";
    let r =
      {
        h_idx = i;
        h_gen = 0;
        h_time = time;
        h_seq = seq;
        h_fn = fn;
        h_state = st_pending;
        h_next = nil;
      }
    in
    let cap = Array.length !(t.pool) in
    if i >= cap then begin
      let ncap = if cap = 0 then 64 else cap * 2 in
      let np = Array.make ncap r in
      Array.blit !(t.pool) 0 np 0 cap;
      t.pool := np
    end;
    !(t.pool).(i) <- r;
    t.pool_len <- i + 1;
    r
  end

(* Return a record to the freelist. The generation is bumped at reuse,
   not here, so [fired]/[cancelled] stay exact until the slot cycles. *)
let free t (r : hrec) =
  r.h_fn <- dummy_fn;
  r.h_next <- t.free_head;
  t.free_head <- r.h_idx;
  t.free_n <- t.free_n + 1

let pack (r : hrec) = (r.h_gen lsl idx_bits) lor r.h_idx

(* {1 Wheel} *)

let tick_of w time = Time.to_ns time / w.w_gran

let push_slot (arr : int array) s (r : hrec) =
  r.h_next <- arr.(s);
  arr.(s) <- r.h_idx

let wheel_insert w (r : hrec) =
  let te = tick_of w r.h_time in
  let dt = te - w.w_tick in
  if dt <= 0 then Heap.push w.near r.h_idx
  else if dt < slots then begin
    push_slot w.l0 (te land slot_mask) r;
    w.n0 <- w.n0 + 1
  end
  else if dt < slots * slots then begin
    push_slot w.l1 ((te lsr slot_bits) land slot_mask) r;
    w.n1 <- w.n1 + 1
  end
  else if dt < horizon then begin
    push_slot w.l2 ((te lsr (2 * slot_bits)) land slot_mask) r;
    w.n2 <- w.n2 + 1
  end
  else Heap.push w.over r.h_idx

(* Re-file every entry of a slot: cancelled tombstones are collected,
   the rest cascade to a lower level or into the near heap. *)
let dump_slot t w level (arr : int array) s =
  let i = ref arr.(s) in
  arr.(s) <- nil;
  while !i >= 0 do
    let r = !(t.pool).(!i) in
    let next = r.h_next in
    r.h_next <- nil;
    (match level with
     | 0 -> w.n0 <- w.n0 - 1
     | 1 -> w.n1 <- w.n1 - 1
     | _ -> w.n2 <- w.n2 - 1);
    if r.h_state = st_cancelled then free t r else wheel_insert w r;
    i := next
  done

(* Move overflow entries now within the horizon into the wheel. *)
let pull_overflow t w =
  let continue = ref true in
  while !continue do
    if
      (not (Heap.is_empty w.over))
      && tick_of w !(t.pool).(Heap.peek_exn w.over).h_time - w.w_tick < horizon
    then begin
      let r = !(t.pool).(Heap.pop_exn w.over) in
      if r.h_state = st_cancelled then free t r else wheel_insert w r
    end
    else continue := false
  done

(* Cross a level-0 cascade boundary: cascade the higher levels' slots
   whose windows open at [boundary] (and refill from overflow when a
   whole horizon has elapsed). *)
let cross t w boundary =
  w.w_tick <- boundary;
  if boundary land (horizon - 1) = 0 then pull_overflow t w;
  if boundary land ((slots * slots) - 1) = 0 then
    dump_slot t w 2 w.l2 ((boundary lsr (2 * slot_bits)) land slot_mask);
  dump_slot t w 1 w.l1 ((boundary lsr slot_bits) land slot_mask);
  (* The boundary tick itself wraps to level-0 slot 0, which the
     pre-boundary scan never reaches: dump it here (after the cascades,
     which can only add [boundary]-tick events to the near heap). *)
  dump_slot t w 0 w.l0 (boundary land slot_mask)

(* The near heap is empty: advance [w_tick] until an event lands in it
   or the wheel and overflow are both drained. Empty levels are skipped
   whole-span (straight to the boundary that could populate them), so a
   sparse far future costs O(occupied slots), not O(elapsed ticks). *)
let rec advance t w =
  if w.n0 = 0 && w.n1 = 0 && w.n2 = 0 then begin
    if not (Heap.is_empty w.over) then begin
      (* Nothing before the earliest overflow entry: jump straight to
         its tick and pull everything that fits the horizon. *)
      let te = tick_of w !(t.pool).(Heap.peek_exn w.over).h_time in
      if te > w.w_tick then w.w_tick <- te;
      pull_overflow t w;
      if Heap.is_empty w.near then advance t w
    end
  end
  else begin
    (if w.n0 > 0 then begin
       (* Scan level 0 up to the next cascade boundary. *)
       let boundary = ((w.w_tick lsr slot_bits) + 1) lsl slot_bits in
       let tk = ref (w.w_tick + 1) in
       let found = ref false in
       while (not !found) && !tk < boundary do
         if w.l0.(!tk land slot_mask) >= 0 then found := true else incr tk
       done;
       if !found then begin
         w.w_tick <- !tk;
         dump_slot t w 0 w.l0 (!tk land slot_mask)
       end
       else cross t w boundary
     end
     else if w.n1 > 0 then
       cross t w (((w.w_tick lsr slot_bits) + 1) lsl slot_bits)
     else
       (* Only level 2 is occupied: no event can land before the next
          level-1 window opens. *)
       cross t w
         (((w.w_tick lsr (2 * slot_bits)) + 1) lsl (2 * slot_bits)));
    if Heap.is_empty w.near then advance t w
  end

(* {1 Scheduling} *)

let enqueue t (r : hrec) =
  match t.q with Qheap h -> Heap.push h r.h_idx | Qwheel w -> wheel_insert w r

let schedule t ~at fn =
  if Time.(at < t.clock) then invalid_arg "Engine.schedule: time in the past";
  let r = alloc t ~time:at ~seq:t.next_seq ~fn in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  enqueue t r;
  pack r

let schedule_after t d fn = schedule t ~at:(Time.add t.clock d) fn

let deref t h =
  let i = h land idx_mask in
  if i < t.pool_len then begin
    let r = !(t.pool).(i) in
    if r.h_gen = h lsr idx_bits then Some r else None
  end
  else None

let cancel t h =
  match deref t h with
  | Some r when r.h_state = st_pending ->
    (* Lazy removal: the tombstone is collected when its slot drains. *)
    r.h_state <- st_cancelled;
    r.h_fn <- dummy_fn;
    t.live <- t.live - 1
  | Some _ | None -> ()

let cancelled t h =
  match deref t h with Some r -> r.h_state = st_cancelled | None -> false

let fired t h =
  match deref t h with Some r -> r.h_state = st_fired | None -> false

(* {1 Firing} *)

(* Pop the next non-cancelled event, discarding tombstones. Returns the
   record's pool index, or [nil] when drained — an int, not an option,
   so the dispatch loop allocates nothing. *)
let rec next_live t =
  match t.q with
  | Qheap h ->
    if Heap.is_empty h then nil
    else begin
      let i = Heap.pop_exn h in
      let r = !(t.pool).(i) in
      if r.h_state = st_cancelled then begin
        free t r;
        next_live t
      end
      else i
    end
  | Qwheel w ->
    if not (Heap.is_empty w.near) then begin
      let i = Heap.pop_exn w.near in
      let r = !(t.pool).(i) in
      if r.h_state = st_cancelled then begin
        free t r;
        next_live t
      end
      else i
    end
    else if w.n0 = 0 && w.n1 = 0 && w.n2 = 0 && Heap.is_empty w.over then nil
    else begin
      advance t w;
      next_live t
    end

let fire t (r : hrec) =
  t.clock <- r.h_time;
  r.h_state <- st_fired;
  t.live <- t.live - 1;
  t.fired_count <- t.fired_count + 1;
  let fn = r.h_fn in
  free t r;
  fn ()

let step t =
  let i = next_live t in
  if i < 0 then false
  else begin
    fire t !(t.pool).(i);
    true
  end

let run ?until t =
  let continue = ref true in
  while !continue do
    let i = next_live t in
    if i < 0 then continue := false
    else begin
      let r = !(t.pool).(i) in
      match until with
      | Some limit when Time.(r.h_time > limit) ->
        (* Re-queue: the event is beyond the horizon. *)
        enqueue t r;
        t.clock <- limit;
        continue := false
      | _ -> fire t r
    end
  done
