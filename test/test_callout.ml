open Kpath_sim

let test_tick_boundary () =
  let e = Engine.create () in
  let c = Callout.create ~tick:(Time.ms 1) e in
  let fired_at = ref Time.zero in
  ignore (Engine.schedule e ~at:(Time.of_us_f 300.) (fun () ->
      ignore (Callout.timeout c ~ticks:1 (fun () -> fired_at := Engine.now e))));
  Engine.run e;
  (* Registered at 0.3 ms; one tick means the 1 ms boundary. *)
  Alcotest.check Util.time "next boundary" (Time.ms 1) !fired_at

let test_multi_tick () =
  let e = Engine.create () in
  let c = Callout.create ~tick:(Time.ms 1) e in
  let fired_at = ref Time.zero in
  ignore (Callout.timeout c ~ticks:3 (fun () -> fired_at := Engine.now e));
  Engine.run e;
  Alcotest.check Util.time "three ticks" (Time.ms 3) !fired_at

let test_timeout_span () =
  let e = Engine.create () in
  let c = Callout.create ~tick:(Time.ms 1) e in
  let fired_at = ref Time.zero in
  ignore (Callout.timeout_span c (Time.of_us_f 2500.) (fun () ->
      fired_at := Engine.now e));
  Engine.run e;
  Alcotest.check Util.time "rounded up to ticks" (Time.ms 3) !fired_at

let test_schedule_head () =
  let e = Engine.create () in
  let c = Callout.create e in
  let order = ref [] in
  ignore (Engine.schedule e ~at:(Time.ms 5) (fun () ->
      order := "event" :: !order;
      ignore (Callout.schedule_head c (fun () -> order := "head" :: !order))));
  Engine.run e;
  Alcotest.(check (list string)) "head runs at same instant, after"
    [ "event"; "head" ] (List.rev !order);
  Alcotest.check Util.time "no delay" (Time.ms 5) (Engine.now e)

let test_untimeout () =
  let e = Engine.create () in
  let c = Callout.create e in
  let fired = ref false in
  let h = Callout.timeout c ~ticks:2 (fun () -> fired := true) in
  Callout.untimeout c h;
  Engine.run e;
  Alcotest.(check bool) "cancelled" false !fired;
  Alcotest.(check int) "nothing dispatched" 0 (Callout.dispatched c)

let test_dispatched_count () =
  let e = Engine.create () in
  let c = Callout.create e in
  ignore (Callout.timeout c ~ticks:1 ignore);
  ignore (Callout.schedule_head c ignore);
  Engine.run e;
  Alcotest.(check int) "two dispatched" 2 (Callout.dispatched c)

let test_bad_args () =
  let e = Engine.create () in
  let c = Callout.create e in
  Alcotest.check_raises "ticks < 1" (Invalid_argument "Callout.timeout: ticks < 1")
    (fun () -> ignore (Callout.timeout c ~ticks:0 ignore))

let suite =
  [
    Alcotest.test_case "fires at tick boundary" `Quick test_tick_boundary;
    Alcotest.test_case "multiple ticks" `Quick test_multi_tick;
    Alcotest.test_case "span rounds up" `Quick test_timeout_span;
    Alcotest.test_case "schedule_head immediacy" `Quick test_schedule_head;
    Alcotest.test_case "untimeout" `Quick test_untimeout;
    Alcotest.test_case "dispatch count" `Quick test_dispatched_count;
    Alcotest.test_case "invalid ticks" `Quick test_bad_args;
  ]
