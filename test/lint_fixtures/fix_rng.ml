(* Known-bad fixture: Stdlib.Random outside lib/sim/rng makes runs
   irreproducible. Expected: exactly one [rng] finding. *)

let jitter () = Random.int 100
