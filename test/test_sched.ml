open Kpath_sim
open Kpath_proc

let test_single_process_time () =
  let e = Engine.create () in
  let sched = Sched.create e in
  let p =
    Sched.spawn sched ~name:"p" (fun () ->
        Process.use_cpu Process.User (Time.ms 5);
        Process.use_cpu Process.Sys (Time.ms 3))
  in
  Engine.run e;
  Alcotest.(check bool) "zombie" true (Process.is_zombie p);
  Alcotest.check Util.time "user" (Time.ms 5) p.Process.cpu_user;
  Alcotest.check Util.time "sys" (Time.ms 3) p.Process.cpu_sys;
  (* 5 + 3 + one context switch (0.1ms) *)
  Alcotest.check Util.time "wall" (Time.of_us_f 8100.) (Engine.now e)

let test_zero_cpu_is_free () =
  let r =
    Util.run_in_process (fun () ->
        Process.use_cpu Process.User Time.zero;
        42)
  in
  Alcotest.(check int) "ran" 42 r

let test_cpu_accounting_totals () =
  let e = Engine.create () in
  let sched = Sched.create e in
  let _ =
    Sched.spawn sched ~name:"a" (fun () -> Process.use_cpu Process.User (Time.ms 10))
  in
  let _ =
    Sched.spawn sched ~name:"b" (fun () -> Process.use_cpu Process.Sys (Time.ms 20))
  in
  Engine.run e;
  let cpu = Sched.cpu sched in
  Alcotest.check Util.time "user" (Time.ms 10) (Cpu.user cpu);
  Alcotest.check Util.time "sys" (Time.ms 20) (Cpu.sys cpu);
  Alcotest.(check int) "switches" 2 (Cpu.context_switches cpu);
  Alcotest.check Util.time "idle zero" Time.zero
    (Cpu.idle cpu ~now:(Engine.now e))

let test_fair_round_robin () =
  let e = Engine.create () in
  let sched = Sched.create e in
  let fin = Array.make 2 Time.zero in
  let worker i =
    Sched.spawn sched ~name:(Printf.sprintf "w%d" i) (fun () ->
        for _ = 1 to 1000 do
          Process.use_cpu Process.User (Time.ms 1)
        done;
        fin.(i) <- Engine.now e)
  in
  let _ = worker 0 and _ = worker 1 in
  Engine.run e;
  (* Both do 1 s of work; fair sharing finishes both near 2 s. *)
  let f0 = Time.to_sec_f fin.(0) and f1 = Time.to_sec_f fin.(1) in
  if Float.abs (f0 -. f1) > 0.1 then
    Alcotest.failf "unfair: %.3f vs %.3f" f0 f1;
  if f0 < 1.9 || f0 > 2.3 then Alcotest.failf "unexpected finish %.3f" f0

let test_priority_preemption_at_boundary () =
  let e = Engine.create () in
  let sched = Sched.create e in
  let order = ref [] in
  let _low =
    Sched.spawn sched ~name:"low" ~priority:60 (fun () ->
        for i = 1 to 10 do
          Process.use_cpu Process.User (Time.ms 1);
          order := ("low", i) :: !order
        done)
  in
  let _high =
    Sched.spawn sched ~name:"high" ~priority:10 (fun () ->
        Process.use_cpu Process.User (Time.ms 5);
        order := ("high", 0) :: !order)
  in
  Engine.run e;
  (* The high-priority process was spawned second but must finish before
     the low one's second op: low runs one slice (already started),
     then high preempts at the boundary. *)
  let rec index i = function
    | [] -> -1
    | x :: rest -> if x = ("high", 0) then i else index (i + 1) rest
  in
  let pos_high = index 0 (List.rev !order) in
  Alcotest.(check bool) "high finished early" true (pos_high <= 1)

let test_block_and_wakeup () =
  let e = Engine.create () in
  let sched = Sched.create e in
  let woken_at = ref Time.zero in
  let waker_cell = ref None in
  let p =
    Sched.spawn sched ~name:"sleeper" (fun () ->
        Process.block "chan" (fun w -> waker_cell := Some w);
        woken_at := Engine.now e)
  in
  ignore
    (Engine.schedule e ~at:(Time.ms 7) (fun () ->
         match !waker_cell with Some w -> w () | None -> ()));
  Engine.run e;
  Sched.check_deadlock sched;
  Alcotest.(check bool) "terminated" true (Process.is_zombie p);
  Alcotest.(check int) "one wakeup" 1 p.Process.wakeup_count;
  Alcotest.(check bool) "woke after 7ms" true Time.(!woken_at >= Time.ms 7)

let test_double_wake_is_safe () =
  let e = Engine.create () in
  let sched = Sched.create e in
  let waker_cell = ref None in
  let p =
    Sched.spawn sched ~name:"sleeper" (fun () ->
        Process.block "chan" (fun w -> waker_cell := Some w);
        Process.use_cpu Process.User (Time.ms 1))
  in
  ignore
    (Engine.schedule e ~at:(Time.ms 1) (fun () ->
         let w = Option.get !waker_cell in
         w ();
         w ()));
  Engine.run e;
  Alcotest.(check bool) "fine" true (Process.is_zombie p);
  Alcotest.(check int) "single wakeup" 1 p.Process.wakeup_count

let test_sleep () =
  let woke =
    Util.run_in_process_with (fun engine sched ->
        Sched.sleep sched (Time.ms 25);
        Engine.now engine)
  in
  Alcotest.(check bool) "slept" true Time.(woke >= Time.ms 25)

let test_yield_alternation () =
  let e = Engine.create () in
  let sched = Sched.create ~ctx_switch_cost:Time.zero e in
  let log = ref [] in
  let mk name =
    Sched.spawn sched ~name (fun () ->
        for _ = 1 to 3 do
          log := name :: !log;
          Process.yield ()
        done)
  in
  (* Spawn from inside a process so neither child starts before both
     are queued. *)
  let _starter =
    Sched.spawn sched ~name:"starter" (fun () ->
        ignore (mk "a");
        ignore (mk "b"))
  in
  Engine.run e;
  Alcotest.(check (list string)) "alternate" [ "a"; "b"; "a"; "b"; "a"; "b" ]
    (List.rev !log)

let test_interrupt_steals_from_slice () =
  let e = Engine.create () in
  let sched = Sched.create e in
  let _ =
    Sched.spawn sched ~name:"victim" (fun () ->
        Process.use_cpu Process.User (Time.ms 10))
  in
  ignore
    (Engine.schedule e ~at:(Time.ms 5) (fun () ->
         Sched.interrupt sched ~service:(Time.ms 2) (fun () -> ())));
  Engine.run e;
  (* 0.1 ctx + 10 compute + 2 stolen. *)
  Alcotest.check Util.time "stretched" (Time.of_us_f 12100.) (Engine.now e);
  Alcotest.check Util.time "intr accounted" (Time.ms 2) (Cpu.intr (Sched.cpu sched))

let test_interrupt_while_idle_delays_next_slice () =
  let e = Engine.create () in
  let sched = Sched.create ~ctx_switch_cost:Time.zero e in
  (* Interrupt at t=0 for 3 ms while the CPU is idle; a process spawned
     at 1 ms must not finish its 1 ms slice before 4 ms. *)
  Sched.interrupt sched ~service:(Time.ms 3) (fun () -> ());
  ignore
    (Engine.schedule e ~at:(Time.ms 1) (fun () ->
         ignore
           (Sched.spawn sched ~name:"late" (fun () ->
                Process.use_cpu Process.User (Time.ms 1)))));
  Engine.run e;
  Alcotest.check Util.time "pushed behind interrupt work" (Time.ms 4) (Engine.now e)

let test_crash_recorded () =
  let e = Engine.create () in
  let sched = Sched.create e in
  let p = Sched.spawn sched ~name:"crasher" (fun () -> failwith "boom") in
  Engine.run e;
  match p.Process.exit_status with
  | Some (Process.Crashed (Failure msg)) -> Alcotest.(check string) "msg" "boom" msg
  | _ -> Alcotest.fail "expected crash status"

let test_join_and_exit_hook () =
  let e = Engine.create () in
  let sched = Sched.create e in
  let hooked = ref false in
  let worker =
    Sched.spawn sched ~name:"worker" (fun () ->
        Process.use_cpu Process.User (Time.ms 3))
  in
  Sched.exit_hook worker (fun () -> hooked := true);
  let joined_at = ref Time.zero in
  let _waiter =
    Sched.spawn sched ~name:"waiter" (fun () ->
        Sched.join worker;
        joined_at := Engine.now e)
  in
  Engine.run e;
  Alcotest.(check bool) "hook ran" true !hooked;
  Alcotest.(check bool) "joined after worker" true Time.(!joined_at >= Time.ms 3);
  (* joining a zombie returns immediately *)
  let ok =
    Util.run_in_process_with (fun _ sched2 ->
        let dead = Sched.spawn sched2 ~name:"d" (fun () -> ()) in
        Process.yield ();
        Sched.join dead;
        true)
  in
  Alcotest.(check bool) "join zombie" true ok

let test_deadlock_detection () =
  let e = Engine.create () in
  let sched = Sched.create e in
  let _ = Sched.spawn sched ~name:"stuck" (fun () -> Process.block "never" (fun _ -> ())) in
  Engine.run e;
  match Sched.check_deadlock sched with
  | () -> Alcotest.fail "expected deadlock"
  | exception Sched.Deadlock msg ->
    Alcotest.(check bool) "names the process" true
      (Util.contains msg "stuck")

(* The run queue must be strictly FIFO within a priority level, across
   many processes and priorities: dispatch order follows spawn order
   inside each level, never starves anyone, and [runnable] reports the
   queue in dispatch order. *)
let test_runq_fifo_fairness () =
  let e = Engine.create () in
  let sched = Sched.create ~ctx_switch_cost:Time.zero e in
  let order = ref [] in
  let mk name priority =
    Sched.spawn sched ~name ~priority (fun () ->
        order := name :: !order;
        Process.use_cpu Process.User (Time.ms 1))
  in
  (* Spawn from inside a process so all children queue before any runs;
     interleave priorities so buckets fill out of order. *)
  let _starter =
    Sched.spawn sched ~name:"starter" ~priority:10 (fun () ->
        ignore (mk "b1" 30);
        ignore (mk "c1" 50);
        ignore (mk "b2" 30);
        ignore (mk "a1" 20);
        ignore (mk "c2" 50);
        ignore (mk "a2" 20);
        ignore (mk "b3" 30);
        let waiting =
          List.map (fun (p : Process.t) -> p.name) (Sched.runnable sched)
        in
        Alcotest.(check (list string))
          "runnable reports dispatch order"
          [ "a1"; "a2"; "b1"; "b2"; "b3"; "c1"; "c2" ]
          waiting)
  in
  Engine.run e;
  Alcotest.(check (list string))
    "ran best priority first, FIFO within each level"
    [ "a1"; "a2"; "b1"; "b2"; "b3"; "c1"; "c2" ]
    (List.rev !order)

let test_quantum_rotation_counted () =
  let e = Engine.create () in
  let sched = Sched.create e in
  let mk name =
    Sched.spawn sched ~name (fun () ->
        for _ = 1 to 100 do
          Process.use_cpu Process.User (Time.ms 1)
        done)
  in
  let _ = mk "a" and _ = mk "b" in
  Engine.run e;
  let preempts = Stats.get (Sched.stats sched) "sched.preemptions" in
  (* 200 ms of work, 10 ms quantum: roughly 20 rotations. *)
  Alcotest.(check bool) "rotations happened" true (preempts >= 10 && preempts <= 30)

let suite =
  [
    Alcotest.test_case "single process accounting" `Quick test_single_process_time;
    Alcotest.test_case "zero-cost cpu" `Quick test_zero_cpu_is_free;
    Alcotest.test_case "cpu bucket totals" `Quick test_cpu_accounting_totals;
    Alcotest.test_case "fair round robin" `Quick test_fair_round_robin;
    Alcotest.test_case "priority preemption" `Quick test_priority_preemption_at_boundary;
    Alcotest.test_case "block and wakeup" `Quick test_block_and_wakeup;
    Alcotest.test_case "double wake safe" `Quick test_double_wake_is_safe;
    Alcotest.test_case "sleep" `Quick test_sleep;
    Alcotest.test_case "yield alternation" `Quick test_yield_alternation;
    Alcotest.test_case "interrupt steals slice" `Quick test_interrupt_steals_from_slice;
    Alcotest.test_case "interrupt while idle" `Quick test_interrupt_while_idle_delays_next_slice;
    Alcotest.test_case "crash recorded" `Quick test_crash_recorded;
    Alcotest.test_case "join and exit hooks" `Quick test_join_and_exit_hook;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "runq FIFO fairness" `Quick test_runq_fifo_fairness;
    Alcotest.test_case "quantum rotation" `Quick test_quantum_rotation_counted;
  ]
