(* File server: GET a file over TCP, served by splice.

   A miniature HTTP-flavoured server: the client sends "GET <path>\n",
   the server replies "OK <size>\n" and then streams the file — either
   with a read/write loop or with a single file-to-TCP splice, the
   in-kernel path that the world later got as sendfile(2). Two machines
   (separate CPUs) share one simulated clock and an Ethernet-class
   segment.

   Run with: dune exec examples/file_server.exe *)

open Kpath_sim
open Kpath_net
open Kpath_kernel
open Kpath_workloads

let file_bytes = 2 * 1024 * 1024

let serve ~mode =
  let engine = Engine.create () in
  let server = Machine.create ~engine () in
  let clientm = Machine.create ~engine () in
  let net = Netif.create_net ~bandwidth:2.5e6 engine in
  let srv_if = Netif.attach net ~name:"srv" ~intr:(Machine.intr server) () in
  let cli_if = Netif.attach net ~name:"cli" ~intr:(Machine.intr clientm) () in
  let drive = Machine.make_drive server ~name:"rz58" ~kind:`Rz58 () in
  let ok = ref false in

  let _srv =
    Machine.spawn server ~name:"httpd" (fun () ->
        let fs =
          Kpath_fs.Fs.mkfs ~cache:(Machine.cache server) (Machine.blkdev drive)
            ~ninodes:16
        in
        Machine.mount server "/" fs;
        let env = Syscall.make_env server in
        (* Publish the document. *)
        let fd = Syscall.openf env "/movie.mpg" [ Syscall.O_CREAT; Syscall.O_WRONLY ] in
        let chunk = Bytes.create 65536 in
        let rec fill off =
          if off < file_bytes then begin
            Programs.fill_pattern chunk ~file_off:off;
            ignore (Syscall.write env fd chunk ~pos:0 ~len:65536);
            fill (off + 65536)
          end
        in
        fill 0;
        Syscall.fsync env fd;
        Syscall.close env fd;
        Kpath_buf.Cache.invalidate_dev (Machine.cache server)
          (Machine.blkdev drive);
        (* Accept one request. *)
        let l = Syscall.tcp_listen env srv_if ~port:80 in
        let cfd = Syscall.tcp_accept env l in
        let req = Bytes.create 256 in
        let n = Syscall.read env cfd req ~pos:0 ~len:256 in
        let line = Bytes.sub_string req 0 n in
        (match String.split_on_char ' ' (String.trim line) with
         | [ "GET"; path ] ->
           let ffd = Syscall.openf env path [ Syscall.O_RDONLY ] in
           let size = Syscall.file_size env ffd in
           let hdr = Bytes.of_string (Printf.sprintf "OK %d\n" size) in
           ignore (Syscall.write env cfd hdr ~pos:0 ~len:(Bytes.length hdr));
           (match mode with
            | `Sendfile ->
              ignore (Syscall.splice env ~src:ffd ~dst:cfd Syscall.splice_eof)
            | `ReadWrite ->
              let buf = Bytes.create 8192 in
              let rec pump () =
                let n = Syscall.read env ffd buf ~pos:0 ~len:8192 in
                if n > 0 then begin
                  ignore (Syscall.write env cfd buf ~pos:0 ~len:n);
                  pump ()
                end
              in
              pump ());
           Syscall.close env ffd
         | _ ->
           let e = Bytes.of_string "ERR bad request\n" in
           ignore (Syscall.write env cfd e ~pos:0 ~len:(Bytes.length e)));
        Syscall.close env cfd)
  in

  let _cli =
    Machine.spawn clientm ~name:"curl" (fun () ->
        let env = Syscall.make_env clientm in
        let rec connect tries =
          match
            Syscall.tcp_connect env cli_if ~port:4000
              ~dst:{ Tcp.a_if = Netif.id srv_if; a_port = 80 }
              ()
          with
          | fd -> fd
          | exception Errno.Unix_error (Errno.EIO, _) when tries > 0 ->
            connect (tries - 1)
        in
        let fd = connect 3 in
        let get = Bytes.of_string "GET /movie.mpg\n" in
        ignore (Syscall.write env fd get ~pos:0 ~len:(Bytes.length get));
        (* Read header line. *)
        let buf = Bytes.create 8192 in
        let line = Buffer.create 16 in
        let rec read_line () =
          let n = Syscall.read env fd buf ~pos:0 ~len:1 in
          if n = 1 && Bytes.get buf 0 <> '\n' then begin
            Buffer.add_char line (Bytes.get buf 0);
            read_line ()
          end
        in
        read_line ();
        let size =
          match String.split_on_char ' ' (Buffer.contents line) with
          | [ "OK"; s ] -> int_of_string s
          | _ -> failwith "bad response"
        in
        (* Body: verify against the pattern. *)
        let got = ref 0 and bad = ref 0 in
        let rec body () =
          let n = Syscall.read env fd buf ~pos:0 ~len:8192 in
          if n > 0 then begin
            for i = 0 to n - 1 do
              if Bytes.get buf i <> Programs.pattern_byte (!got + i) then incr bad
            done;
            got := !got + n;
            body ()
          end
        in
        body ();
        Syscall.close env fd;
        ok := !got = size && !bad = 0)
  in
  Machine.run server;
  let cpu = Kpath_proc.Sched.cpu (Machine.sched server) in
  Format.printf "%-9s server: ok=%b, server CPU %a@."
    (match mode with `Sendfile -> "sendfile" | `ReadWrite -> "readwrite")
    !ok Kpath_proc.Cpu.pp cpu

let () =
  Format.printf "GET /movie.mpg (%d MB) over TCP:@." (file_bytes / 1024 / 1024);
  serve ~mode:`ReadWrite;
  serve ~mode:`Sendfile
