(* Splice graphs: fan-out aliasing, fan-in concatenation, filters,
   backpressure and the release-exactly-once refcount discipline. *)

open Kpath_sim
open Kpath_proc
open Kpath_buf
open Kpath_fs
open Kpath_kernel
open Kpath_workloads
module Graph = Kpath_graph.Graph
module Vm = Kpath_vm.Vm
module Samples = Kpath_vm.Samples

let prog src =
  match Kpath_vm.Asm.load src with
  | Ok p -> p
  | Error e -> Alcotest.failf "test program rejected: %s" e

let block_size = 8192

(* Rig: machine with /src (patterned file) and /dst filesystems, cold
   caches; [body] runs in a process with the graph ctx at hand. After
   the run the cache must satisfy its invariants with nothing pinned. *)
let with_rig ?(disk = `Ram) ?(file_bytes = 256 * 1024) body =
  let s = Experiments.make_setup ~disk ~file_bytes () in
  Experiments.cold_caches s;
  let m = s.Experiments.machine in
  let result = ref None in
  let p =
    Machine.spawn m ~name:"graph-test" (fun () ->
        result := Some (body s m (Machine.graph_ctx m)))
  in
  Machine.run m;
  (match p.Process.exit_status with
   | Some (Process.Crashed e) -> raise e
   | _ -> ());
  Cache.check_invariants (Machine.cache m);
  Alcotest.(check int) "no pinned buffers left" 0
    (Cache.pinned_count (Machine.cache m));
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "test body did not finish"

let src_file s =
  let m = s.Experiments.machine in
  let fs, rel = Option.get (Machine.resolve m s.Experiments.src_path) in
  (fs, Fs.lookup fs rel)

let dst_fs s =
  let m = s.Experiments.machine in
  fst (Option.get (Machine.resolve m "/dst"))

(* Read a destination file back through the normal FS path and check it
   carries the writer pattern (restarting at [seg_off] boundaries). *)
let check_pattern fs ino ~segments =
  let buf = Bytes.create block_size in
  List.iter
    (fun (file_off, seg_bytes) ->
      let bad = ref 0 in
      let rec go rel =
        if rel < seg_bytes then begin
          let len = min block_size (seg_bytes - rel) in
          let n = Fs.read fs ino ~off:(file_off + rel) ~len buf ~pos:0 in
          Alcotest.(check int) "read length" len n;
          for i = 0 to n - 1 do
            if Bytes.get buf i <> Programs.pattern_byte (rel + i) then incr bad
          done;
          go (rel + len)
        end
      in
      go 0;
      Alcotest.(check int) "corrupt bytes" 0 !bad)
    segments

let ok_exn = function Ok v -> v | Error e -> Alcotest.fail e

(* {1 Fan-out} *)

let test_fanout_to_files () =
  with_rig (fun s _m ctx ->
      let src_fs, src_ino = src_file s in
      let dfs = dst_fs s in
      let sinks = List.init 3 (fun i -> Fs.create_file dfs (Printf.sprintf "/c%d" i)) in
      let g = Graph.create ctx () in
      let src = Graph.add_file_source g ~fs:src_fs ~ino:src_ino () in
      let edges =
        List.map
          (fun ino ->
            let dst =
              Graph.add_sink g (Graph.Sink_file { fs = dfs; ino; off_blocks = 0 })
            in
            Graph.connect g ~src ~dst ())
          sinks
      in
      Graph.start g;
      let total = ok_exn (Graph.wait g) in
      Alcotest.(check int) "three full copies" (3 * 256 * 1024) total;
      List.iter
        (fun e ->
          Alcotest.(check bool) "edge done" true (Graph.edge_state e = `Done);
          Alcotest.(check int) "per-edge bytes" (256 * 1024)
            (Graph.edge_delivered e))
        edges;
      (* The single-read invariant: one read per source block, however
         many edges consume it. *)
      Alcotest.(check int) "one read per block" (256 * 1024 / block_size)
        (Graph.source_reads g);
      Alcotest.(check bool) "blocks were aliased" true
        (Stats.get (Graph.ctx_stats ctx) "graph.blocks_aliased" > 0);
      Alcotest.(check int) "nothing left pinned" 0 (Graph.pinned_blocks g);
      (* Flush and verify every copy through the read path. *)
      List.iter (fun ino -> Fs.fsync dfs ino) sinks;
      List.iter
        (fun ino -> check_pattern dfs ino ~segments:[ (0, 256 * 1024) ])
        sinks)

let test_fanout_tcp_single_read_invariant () =
  (* The acceptance experiment: an 8 MB file to N simulated TCP clients
     issues the same number of device reads for N = 64 as for N = 1,
     and every client receives every byte. *)
  let run n =
    Experiments.measure_fanout ~clients:n ~file_bytes:(8 * 1024 * 1024)
      ~bandwidth:40e6 ()
  in
  let base = run 1 in
  Alcotest.(check bool) "N=1 verified" true base.Experiments.fo_verified;
  List.iter
    (fun n ->
      let r = run n in
      Alcotest.(check bool)
        (Printf.sprintf "N=%d all clients complete and correct" n)
        true r.Experiments.fo_verified;
      Alcotest.(check int)
        (Printf.sprintf "N=%d issues no extra device reads" n)
        base.Experiments.fo_device_reads r.Experiments.fo_device_reads;
      Alcotest.(check int)
        (Printf.sprintf "N=%d leaks no pins" n)
        0 r.Experiments.fo_pinned_after)
    [ 8; 64 ]

(* {1 Fan-in} *)

let test_fanin_concatenates () =
  (* /src/data (64 KB, block multiple) ++ /src/b (40000 bytes) -> one
     log file; each edge owns a disjoint block range. *)
  let s = Experiments.make_setup ~disk:`Ram ~file_bytes:(64 * 1024) () in
  let m = s.Experiments.machine in
  let w = Programs.spawn_file_writer m ~path:"/src/b" ~bytes:40_000 () in
  Machine.run m;
  if not (Process.is_zombie w) then Alcotest.fail "writer stuck";
  Experiments.cold_caches s;
  let result = ref None in
  let _p =
    Machine.spawn m ~name:"fanin" (fun () ->
        let a_fs, a_ino = src_file s in
        let b_ino = Fs.lookup a_fs "/b" in
        let dfs = dst_fs s in
        let log = Fs.create_file dfs "/log" in
        let g = Graph.create (Machine.graph_ctx m) () in
        let a = Graph.add_file_source g ~fs:a_fs ~ino:a_ino () in
        let b = Graph.add_file_source g ~fs:a_fs ~ino:b_ino () in
        let dst =
          Graph.add_sink g (Graph.Sink_file { fs = dfs; ino = log; off_blocks = 0 })
        in
        ignore (Graph.connect g ~src:a ~dst ());
        ignore (Graph.connect g ~src:b ~dst ());
        Graph.start g;
        let total = ok_exn (Graph.wait g) in
        Fs.fsync dfs log;
        result := Some (total, log.Inode.size);
        check_pattern dfs log
          ~segments:[ (0, 64 * 1024); (64 * 1024, 40_000) ])
  in
  Machine.run m;
  Cache.check_invariants (Machine.cache m);
  match !result with
  | Some (total, size) ->
    Alcotest.(check int) "bytes delivered" (64 * 1024 + 40_000) total;
    Alcotest.(check int) "log grown to the concatenation" (64 * 1024 + 40_000)
      size
  | None -> Alcotest.fail "fan-in did not finish"

let test_fanin_requires_file_sink () =
  with_rig (fun s m ctx ->
      let src_fs, src_ino = src_file s in
      let cd =
        Kpath_dev.Chardev.create ~name:"dac" ~drain_rate:1e6
          ~fifo_capacity:(64 * 1024) ~engine:(Machine.engine m)
          ~intr:(Machine.intr m) ()
      in
      let g = Graph.create ctx () in
      let a = Graph.add_file_source g ~fs:src_fs ~ino:src_ino () in
      let b = Graph.add_file_source g ~fs:src_fs ~ino:src_ino () in
      let dst = Graph.add_sink g (Graph.Sink_chardev cd) in
      ignore (Graph.connect g ~src:a ~dst ());
      ignore (Graph.connect g ~src:b ~dst ());
      Alcotest.check_raises "two edges into a chardev rejected"
        (Invalid_argument "Graph.start: fan-in requires a file sink") (fun () ->
          Graph.start g))

(* {1 Filters} *)

let expected_checksum ~file_bytes =
  let chunk = Bytes.create block_size in
  let nblocks = (file_bytes + block_size - 1) / block_size in
  let acc = ref 0 in
  for lblk = 0 to nblocks - 1 do
    Programs.fill_pattern chunk ~file_off:(lblk * block_size);
    let len = min block_size (file_bytes - (lblk * block_size)) in
    acc := !acc lxor Graph.block_checksum ~lblk chunk len
  done;
  !acc

let test_checksum_filter () =
  with_rig (fun s _m ctx ->
      let src_fs, src_ino = src_file s in
      let dfs = dst_fs s in
      let c0 = Fs.create_file dfs "/c0" and c1 = Fs.create_file dfs "/c1" in
      let g = Graph.create ctx () in
      let src = Graph.add_file_source g ~fs:src_fs ~ino:src_ino () in
      let mk ino =
        let dst =
          Graph.add_sink g (Graph.Sink_file { fs = dfs; ino; off_blocks = 0 })
        in
        Graph.connect g ~filters:[ Graph.Checksum ] ~src ~dst ()
      in
      let e0 = mk c0 and e1 = mk c1 in
      Graph.start g;
      ignore (ok_exn (Graph.wait g));
      let expect = expected_checksum ~file_bytes:(256 * 1024) in
      Alcotest.(check (option int)) "edge 0 checksum" (Some expect)
        (Graph.edge_checksum e0);
      Alcotest.(check (option int)) "edge 1 checksum" (Some expect)
        (Graph.edge_checksum e1))

let test_tee_filter () =
  with_rig (fun s _m ctx ->
      let src_fs, src_ino = src_file s in
      let dfs = dst_fs s in
      let c0 = Fs.create_file dfs "/c0" in
      let seen = ref 0 and bad = ref 0 and calls = ref 0 in
      let g = Graph.create ctx () in
      let src = Graph.add_file_source g ~fs:src_fs ~ino:src_ino () in
      let dst =
        Graph.add_sink g (Graph.Sink_file { fs = dfs; ino = c0; off_blocks = 0 })
      in
      ignore
        (Graph.connect g
           ~filters:
             [
               Graph.Tee
                 (fun data len ->
                   incr calls;
                   seen := !seen + len;
                   (* In-order single-edge pump: the tee observes the
                      stream sequentially. *)
                   for i = 0 to len - 1 do
                     if Bytes.get data i <> Programs.pattern_byte (!seen - len + i)
                     then incr bad
                   done);
             ]
           ~src ~dst ());
      Graph.start g;
      ignore (ok_exn (Graph.wait g));
      Alcotest.(check int) "tee saw the whole stream" (256 * 1024) !seen;
      Alcotest.(check int) "tee data matches the pattern" 0 !bad;
      Alcotest.(check int) "one call per block" (256 * 1024 / block_size) !calls)

let test_throttle_and_window () =
  (* One fast file edge, one edge throttled to a tenth of the pace; the
     per-source window must bound the aliased blocks (and so the buffer
     cache footprint) while the slow edge lags. *)
  let max_pinned = ref 0 in
  with_rig ~file_bytes:(512 * 1024) (fun s m ctx ->
      let src_fs, src_ino = src_file s in
      let dfs = dst_fs s in
      let fast = Fs.create_file dfs "/fast" and slow = Fs.create_file dfs "/slow" in
      let g = Graph.create ctx ~window:4 () in
      let src = Graph.add_file_source g ~fs:src_fs ~ino:src_ino () in
      let fast_dst =
        Graph.add_sink g (Graph.Sink_file { fs = dfs; ino = fast; off_blocks = 0 })
      in
      let slow_dst =
        Graph.add_sink g (Graph.Sink_file { fs = dfs; ino = slow; off_blocks = 0 })
      in
      let ef = Graph.connect g ~src ~dst:fast_dst () in
      let es =
        Graph.connect g ~filters:[ Graph.Throttle 500_000.0 ] ~src ~dst:slow_dst ()
      in
      let engine = Machine.engine m in
      let rec sample () =
        max_pinned := max !max_pinned (Graph.pinned_blocks g);
        if Graph.state g = Graph.Running then
          ignore (Engine.schedule_after engine (Time.us 500) sample)
      in
      sample ();
      Graph.start g;
      ignore (ok_exn (Graph.wait g));
      Alcotest.(check bool) "fast edge done" true (Graph.edge_state ef = `Done);
      Alcotest.(check bool) "slow edge done" true (Graph.edge_state es = `Done);
      Alcotest.(check int) "both full copies" (2 * 512 * 1024)
        (Graph.bytes_delivered g);
      Fs.fsync dfs fast;
      Fs.fsync dfs slow;
      check_pattern dfs fast ~segments:[ (0, 512 * 1024) ];
      check_pattern dfs slow ~segments:[ (0, 512 * 1024) ]);
  Alcotest.(check bool)
    (Printf.sprintf "window bounds aliased blocks (max %d)" !max_pinned)
    true
    (!max_pinned <= 4 && !max_pinned > 0)

(* {1 Abort and the release-exactly-once discipline} *)

let test_abort_edge_midstream () =
  with_rig ~file_bytes:(512 * 1024) (fun s _m ctx ->
      let src_fs, src_ino = src_file s in
      let dfs = dst_fs s in
      let keep = Fs.create_file dfs "/keep" and cut = Fs.create_file dfs "/cut" in
      let g = Graph.create ctx () in
      let src = Graph.add_file_source g ~fs:src_fs ~ino:src_ino () in
      let keep_dst =
        Graph.add_sink g (Graph.Sink_file { fs = dfs; ino = keep; off_blocks = 0 })
      in
      let cut_dst =
        Graph.add_sink g (Graph.Sink_file { fs = dfs; ino = cut; off_blocks = 0 })
      in
      let e_cut = ref None in
      let blocks_seen = ref 0 in
      (* The tee rides the surviving edge and cuts the other one loose a
         third of the way through — mid-stream, deterministically, from
         interrupt context with shared blocks in flight. *)
      let ek =
        Graph.connect g
          ~filters:
            [
              Graph.Tee
                (fun _ _ ->
                  incr blocks_seen;
                  if !blocks_seen = 20 then
                    Graph.abort_edge g (Option.get !e_cut) ~reason:"client gone");
            ]
          ~src ~dst:keep_dst ()
      in
      e_cut := Some (Graph.connect g ~src ~dst:cut_dst ());
      Graph.start g;
      let total = ok_exn (Graph.wait g) in
      Alcotest.(check bool) "graph completed despite the dead edge" true
        (Graph.state g = Graph.Completed);
      Alcotest.(check bool) "surviving edge done" true
        (Graph.edge_state ek = `Done);
      (match Graph.edge_state (Option.get !e_cut) with
       | `Dead reason -> Alcotest.(check string) "reason kept" "client gone" reason
       | _ -> Alcotest.fail "cut edge should be dead");
      Alcotest.(check int) "survivor delivered everything" (512 * 1024)
        (Graph.edge_delivered ek);
      Alcotest.(check bool) "total = survivor + partial victim" true
        (total >= 512 * 1024 && total < 2 * 512 * 1024);
      Alcotest.(check int) "every alias released" 0 (Graph.pinned_blocks g);
      Fs.fsync dfs keep;
      check_pattern dfs keep ~segments:[ (0, 512 * 1024) ])

let test_abort_graph_midstream () =
  with_rig ~file_bytes:(512 * 1024) (fun s _m ctx ->
      let src_fs, src_ino = src_file s in
      let dfs = dst_fs s in
      let c0 = Fs.create_file dfs "/c0" and c1 = Fs.create_file dfs "/c1" in
      let g = Graph.create ctx () in
      let src = Graph.add_file_source g ~fs:src_fs ~ino:src_ino () in
      let blocks_seen = ref 0 in
      let mk ?filters ino =
        let dst =
          Graph.add_sink g (Graph.Sink_file { fs = dfs; ino; off_blocks = 0 })
        in
        Graph.connect g ?filters ~src ~dst ()
      in
      let _e0 =
        mk
          ~filters:
            [
              Graph.Tee
                (fun _ _ ->
                  incr blocks_seen;
                  if !blocks_seen = 8 then Graph.abort g ~reason:"shutdown");
            ]
          c0
      in
      let _e1 = mk c1 in
      Graph.start g;
      (match Graph.wait g with
       | Ok n -> Alcotest.failf "graph should abort, returned %d" n
       | Error reason -> Alcotest.(check string) "reason" "shutdown" reason);
      Alcotest.(check bool) "aborted state" true
        (match Graph.state g with Graph.Aborted _ -> true | _ -> false);
      Alcotest.(check int) "every alias released on abort" 0
        (Graph.pinned_blocks g))

let test_out_of_order_release () =
  (* A fast edge and a heavily throttled edge complete each block's
     writes far apart and across block boundaries; the shared buffer
     must be released exactly once, when the slower write finishes. *)
  with_rig ~file_bytes:(128 * 1024) (fun s _m ctx ->
      let src_fs, src_ino = src_file s in
      let dfs = dst_fs s in
      let a = Fs.create_file dfs "/a" and b = Fs.create_file dfs "/b" in
      let g = Graph.create ctx () in
      let src = Graph.add_file_source g ~fs:src_fs ~ino:src_ino () in
      let da = Graph.add_sink g (Graph.Sink_file { fs = dfs; ino = a; off_blocks = 0 }) in
      let db = Graph.add_sink g (Graph.Sink_file { fs = dfs; ino = b; off_blocks = 0 }) in
      ignore (Graph.connect g ~src ~dst:da ());
      ignore (Graph.connect g ~filters:[ Graph.Throttle 100_000.0 ] ~src ~dst:db ());
      Graph.start g;
      let total = ok_exn (Graph.wait g) in
      Alcotest.(check int) "both copies complete" (2 * 128 * 1024) total;
      Alcotest.(check int) "pins drained" 0 (Graph.pinned_blocks g);
      Alcotest.(check int) "unpins match pins"
        (Stats.get (Cache.stats (Machine.cache s.Experiments.machine)) "cache.pins")
        (Stats.get (Cache.stats (Machine.cache s.Experiments.machine)) "cache.unpins");
      Fs.fsync dfs a;
      Fs.fsync dfs b;
      check_pattern dfs a ~segments:[ (0, 128 * 1024) ];
      check_pattern dfs b ~segments:[ (0, 128 * 1024) ])

(* {1 Sinks beyond files} *)

let test_chardev_sink () =
  with_rig ~file_bytes:(64 * 1024) (fun s m ctx ->
      let src_fs, src_ino = src_file s in
      let cd =
        Kpath_dev.Chardev.create ~name:"dac" ~drain_rate:2e6
          ~fifo_capacity:(32 * 1024) ~engine:(Machine.engine m)
          ~intr:(Machine.intr m) ()
      in
      let g = Graph.create ctx () in
      let src = Graph.add_file_source g ~fs:src_fs ~ino:src_ino () in
      let dst = Graph.add_sink g (Graph.Sink_chardev cd) in
      ignore (Graph.connect g ~src ~dst ());
      Graph.start g;
      let total = ok_exn (Graph.wait g) in
      Alcotest.(check int) "whole file to the device" (64 * 1024) total;
      let captured = Kpath_dev.Chardev.captured cd in
      let bad = ref 0 in
      String.iteri
        (fun i c -> if c <> Programs.pattern_byte i then incr bad)
        captured;
      Alcotest.(check int) "device saw the pattern in order" 0 !bad)

(* {1 Edge cases and the syscall layer} *)

let test_empty_source () =
  with_rig (fun s _m ctx ->
      let src_fs, _ = src_file s in
      let empty = Fs.create_file src_fs "/empty" in
      let dfs = dst_fs s in
      let c0 = Fs.create_file dfs "/c0" in
      let g = Graph.create ctx () in
      let src = Graph.add_file_source g ~fs:src_fs ~ino:empty () in
      let dst =
        Graph.add_sink g (Graph.Sink_file { fs = dfs; ino = c0; off_blocks = 0 })
      in
      let e = Graph.connect g ~src ~dst () in
      Graph.start g;
      Alcotest.(check int) "zero bytes" 0 (ok_exn (Graph.wait g));
      Alcotest.(check bool) "edge done" true (Graph.edge_state e = `Done))

let test_syscall_shapes () =
  let s = Experiments.make_setup ~disk:`Ram ~file_bytes:(64 * 1024) () in
  let m = s.Experiments.machine in
  let w = Programs.spawn_file_writer m ~path:"/src/b" ~bytes:(32 * 1024) () in
  Machine.run m;
  if not (Process.is_zombie w) then Alcotest.fail "writer stuck";
  Experiments.cold_caches s;
  let done_ = ref false in
  let _p =
    Machine.spawn m ~name:"shapes" (fun () ->
        let env = Syscall.make_env m in
        let a = Syscall.openf env "/src/data" [ Syscall.O_RDONLY ] in
        let b = Syscall.openf env "/src/b" [ Syscall.O_RDONLY ] in
        let log =
          Syscall.openf env "/dst/log" [ Syscall.O_CREAT; Syscall.O_WRONLY ]
        in
        let out2 =
          Syscall.openf env "/dst/out2" [ Syscall.O_CREAT; Syscall.O_WRONLY ]
        in
        (* Many-to-many is not a supported topology. *)
        (try
           ignore
             (Syscall.splice_graph env ~srcs:[ a; b ] ~dsts:[ log; out2 ]
                Syscall.splice_eof);
           Alcotest.fail "many-to-many accepted"
         with Errno.Unix_error (Errno.EINVAL, _) -> ());
        (* Fan-in through the system call. *)
        let n =
          Syscall.splice_graph env ~srcs:[ a; b ] ~dsts:[ log ]
            Syscall.splice_eof
        in
        Alcotest.(check int) "fan-in total" (96 * 1024) n;
        Alcotest.(check int) "log grown to the concatenation" (96 * 1024)
          (Syscall.file_size env log);
        Syscall.fsync env log;
        List.iter (Syscall.close env) [ a; b; log; out2 ];
        done_ := true)
  in
  Machine.run m;
  Alcotest.(check bool) "ran" true !done_;
  Cache.check_invariants (Machine.cache m)

let test_trace_and_stats () =
  let max_latency_events = ref 0 in
  with_rig ~file_bytes:(64 * 1024) (fun s m ctx ->
      Trace.enable (Machine.trace m) "graph";
      let src_fs, src_ino = src_file s in
      let dfs = dst_fs s in
      let c0 = Fs.create_file dfs "/c0" and c1 = Fs.create_file dfs "/c1" in
      let g = Graph.create ctx () in
      let src = Graph.add_file_source g ~fs:src_fs ~ino:src_ino () in
      List.iter
        (fun ino ->
          let dst =
            Graph.add_sink g (Graph.Sink_file { fs = dfs; ino; off_blocks = 0 })
          in
          ignore (Graph.connect g ~src ~dst ()))
        [ c0; c1 ];
      Graph.start g;
      ignore (ok_exn (Graph.wait g));
      let stats = Graph.ctx_stats ctx in
      Alcotest.(check int) "graphs started" 1 (Stats.get stats "graph.started");
      Alcotest.(check int) "graphs completed" 1
        (Stats.get stats "graph.completed");
      Alcotest.(check int) "edges completed" 2
        (Stats.get stats "graph.edges_completed");
      Alcotest.(check int) "reads = blocks" 8
        (Stats.get stats "graph.reads_issued" + Stats.get stats "graph.read_hits");
      Alcotest.(check int) "writes = blocks x edges" 16
        (Stats.get stats "graph.writes_issued");
      max_latency_events :=
        Histogram.count (Stats.histogram stats "graph.block_latency_us");
      let evs = Trace.events (Machine.trace m) in
      let has needle =
        List.exists (fun e -> Util.contains e.Trace.ev_msg needle) evs
      in
      Alcotest.(check bool) "started event" true (has "started");
      Alcotest.(check bool) "aliased read events" true (has "aliased");
      Alcotest.(check bool) "write done events" true (has "write done");
      Alcotest.(check bool) "completion event" true (has "completed"));
  Alcotest.(check int) "one latency sample per block" 8 !max_latency_events

(* {1 Verified filter programs on edges} *)

let test_prog_checksum_bit_identical () =
  (* The acceptance criterion: an edge running the interpreted FNV
     program produces the same checksum, bit for bit, as the built-in
     Checksum stage (and as the host-side recomputation). *)
  with_rig (fun s _m ctx ->
      let src_fs, src_ino = src_file s in
      let dfs = dst_fs s in
      let c0 = Fs.create_file dfs "/c0" and c1 = Fs.create_file dfs "/c1" in
      let g = Graph.create ctx () in
      let src = Graph.add_file_source g ~fs:src_fs ~ino:src_ino () in
      let mk filters ino =
        let dst =
          Graph.add_sink g (Graph.Sink_file { fs = dfs; ino; off_blocks = 0 })
        in
        Graph.connect g ~filters ~src ~dst ()
      in
      let builtin = mk [ Graph.Checksum ] c0 in
      let interp = mk [ Graph.Prog (Samples.checksum ()) ] c1 in
      Graph.start g;
      ignore (ok_exn (Graph.wait g));
      let expect = expected_checksum ~file_bytes:(256 * 1024) in
      Alcotest.(check (option int)) "built-in checksum" (Some expect)
        (Graph.edge_checksum builtin);
      Alcotest.(check (option int)) "program checksum bit-identical"
        (Some expect) (Graph.edge_checksum interp);
      let stats = Graph.ctx_stats ctx in
      Alcotest.(check int) "one program run per block" (256 * 1024 / block_size)
        (Stats.get stats "graph.prog_runs");
      Alcotest.(check bool) "interpreted instructions were charged" true
        (Stats.get stats "graph.prog_insns" > 0);
      (* The payload loop costs simulated CPU: well over the per-block
         handful of instructions a trivial program would use. *)
      Alcotest.(check bool) "per-byte work accounted" true
        (Stats.get stats "graph.prog_insns" > 256 * 1024);
      Fs.fsync dfs c1;
      check_pattern dfs c1 ~segments:[ (0, 256 * 1024) ])

let test_prog_backend_parity () =
  (* The whole fan-out experiment — machine, syscalls, graph, filter
     program — must be bit-identical under the interpreter and the
     closure-compiled backend: the backend is threaded through the
     machine config, and only host wall-clock may differ. *)
  let run vm_backend =
    let machine_config = { Config.decstation_5000_200 with Config.vm_backend } in
    Experiments.measure_fanout ~clients:4 ~file_bytes:(256 * 1024)
      ~bandwidth:40e6
      ~filters:[ Graph.Prog (Samples.checksum ()) ]
      ~machine_config ()
  in
  let i = run `Interp and c = run `Compiled in
  Alcotest.(check bool) "interp verified" true i.Experiments.fo_verified;
  Alcotest.(check bool) "compiled verified" true c.Experiments.fo_verified;
  Alcotest.(check int) "device reads" i.Experiments.fo_device_reads
    c.Experiments.fo_device_reads;
  Alcotest.(check int) "events" i.Experiments.fo_events c.Experiments.fo_events;
  Alcotest.(check (float 0.0)) "simulated seconds" i.Experiments.fo_seconds
    c.Experiments.fo_seconds;
  Alcotest.(check (float 0.0)) "server CPU" i.Experiments.fo_server_cpu_sec
    c.Experiments.fo_server_cpu_sec;
  Alcotest.(check int) "program runs" i.Experiments.fo_prog_runs
    c.Experiments.fo_prog_runs;
  Alcotest.(check int) "instructions charged" i.Experiments.fo_prog_insns
    c.Experiments.fo_prog_insns

let test_prog_drop_accounting () =
  (* A dropper program settles dropped blocks without delivering them;
     the edge still completes, and the refcount discipline holds with a
     plain sibling edge aliasing every block. *)
  with_rig (fun s _m ctx ->
      let src_fs, src_ino = src_file s in
      let dfs = dst_fs s in
      let full = Fs.create_file dfs "/full" and part = Fs.create_file dfs "/part" in
      let g = Graph.create ctx () in
      let src = Graph.add_file_source g ~fs:src_fs ~ino:src_ino () in
      let mk ?filters ino =
        let dst =
          Graph.add_sink g (Graph.Sink_file { fs = dfs; ino; off_blocks = 0 })
        in
        Graph.connect g ?filters ~src ~dst ()
      in
      let ef = mk full in
      let ep = mk ~filters:[ Graph.Prog (Samples.dropper ~modulo:4) ] part in
      Graph.start g;
      let total = ok_exn (Graph.wait g) in
      let nblocks = 256 * 1024 / block_size in
      let dropped = (nblocks + 3) / 4 in
      Alcotest.(check bool) "dropper edge done" true (Graph.edge_state ep = `Done);
      Alcotest.(check int) "survivor delivered everything" (256 * 1024)
        (Graph.edge_delivered ef);
      Alcotest.(check int) "dropper delivered the kept blocks only"
        ((nblocks - dropped) * block_size)
        (Graph.edge_delivered ep);
      Alcotest.(check int) "total reflects the drops"
        ((2 * nblocks - dropped) * block_size)
        total;
      Alcotest.(check int) "drops counted" dropped
        (Stats.get (Graph.ctx_stats ctx) "graph.prog_drops");
      Alcotest.(check int) "every alias released" 0 (Graph.pinned_blocks g);
      (* Kept blocks landed at their home offsets. *)
      Fs.fsync dfs part;
      let buf = Bytes.create block_size in
      let bad = ref 0 in
      for lblk = 0 to nblocks - 1 do
        if lblk mod 4 <> 0 then begin
          let off = lblk * block_size in
          let n = Fs.read dfs part ~off ~len:block_size buf ~pos:0 in
          Alcotest.(check int) "kept block read" block_size n;
          for i = 0 to n - 1 do
            if Bytes.get buf i <> Programs.pattern_byte (off + i) then incr bad
          done
        end
      done;
      Alcotest.(check int) "kept blocks carry the pattern" 0 !bad)

let test_prog_fault_mid_cluster () =
  (* A program that faults mid-stream (block 10 of 64, with clustered
     reads and a sibling edge's writes in flight) kills only its own
     edge; every pinned buffer is released exactly once. *)
  let faulty =
    prog
      {|; fault on block 10 by loading one byte past the payload
fuel 16
    blkno r0
    jne r0, 10, pass
    len r1
    ldp r2, r1
pass:
    ret
|}
  in
  with_rig ~file_bytes:(512 * 1024) (fun s _m ctx ->
      let src_fs, src_ino = src_file s in
      let dfs = dst_fs s in
      let keep = Fs.create_file dfs "/keep" and bad = Fs.create_file dfs "/bad" in
      let g = Graph.create ctx () in
      let src = Graph.add_file_source g ~fs:src_fs ~ino:src_ino () in
      let mk ?filters ino =
        let dst =
          Graph.add_sink g (Graph.Sink_file { fs = dfs; ino; off_blocks = 0 })
        in
        Graph.connect g ?filters ~src ~dst ()
      in
      let ek = mk keep in
      let eb = mk ~filters:[ Graph.Prog faulty ] bad in
      Graph.start g;
      let total = ok_exn (Graph.wait g) in
      Alcotest.(check bool) "graph completed despite the fault" true
        (Graph.state g = Graph.Completed);
      Alcotest.(check bool) "survivor done" true (Graph.edge_state ek = `Done);
      (match Graph.edge_state eb with
       | `Dead reason ->
         Alcotest.(check bool)
           (Printf.sprintf "diagnostic names the fault (%s)" reason)
           true
           (String.length reason >= 10 && String.sub reason 0 10 = "prog fault")
       | _ -> Alcotest.fail "faulting edge should be dead");
      Alcotest.(check int) "survivor delivered everything" (512 * 1024)
        (Graph.edge_delivered ek);
      Alcotest.(check bool) "total = survivor + partial victim" true
        (total >= 512 * 1024 && total < 2 * 512 * 1024);
      Alcotest.(check int) "faults counted" 1
        (Stats.get (Graph.ctx_stats ctx) "graph.prog_faults");
      Alcotest.(check int) "every alias released" 0 (Graph.pinned_blocks g);
      let cstats = Cache.stats (Machine.cache s.Experiments.machine) in
      Alcotest.(check int) "released exactly once"
        (Stats.get cstats "cache.pins")
        (Stats.get cstats "cache.unpins");
      Fs.fsync dfs keep;
      check_pattern dfs keep ~segments:[ (0, 512 * 1024) ])

let test_prog_transform_cow () =
  (* A transforming program must copy-on-write: its sink sees the
     masked bytes while the sibling edge sharing the same aliased
     buffers still delivers the original pattern. *)
  let key = 0x5a in
  with_rig ~file_bytes:(64 * 1024) (fun s _m ctx ->
      let src_fs, src_ino = src_file s in
      let dfs = dst_fs s in
      let plain = Fs.create_file dfs "/plain" and masked = Fs.create_file dfs "/masked" in
      let g = Graph.create ctx () in
      let src = Graph.add_file_source g ~fs:src_fs ~ino:src_ino () in
      let mk ?filters ino =
        let dst =
          Graph.add_sink g (Graph.Sink_file { fs = dfs; ino; off_blocks = 0 })
        in
        Graph.connect g ?filters ~src ~dst ()
      in
      let _ep = mk plain in
      let _em = mk ~filters:[ Graph.Prog (Samples.xor_mask ~key) ] masked in
      Graph.start g;
      let total = ok_exn (Graph.wait g) in
      Alcotest.(check int) "both copies complete" (2 * 64 * 1024) total;
      Fs.fsync dfs plain;
      Fs.fsync dfs masked;
      (* The shared buffers were never mutated in place. *)
      check_pattern dfs plain ~segments:[ (0, 64 * 1024) ];
      let buf = Bytes.create block_size in
      let bad = ref 0 in
      for lblk = 0 to (64 * 1024 / block_size) - 1 do
        let off = lblk * block_size in
        let n = Fs.read dfs masked ~off ~len:block_size buf ~pos:0 in
        Alcotest.(check int) "masked block read" block_size n;
        for i = 0 to n - 1 do
          let want =
            Char.chr (Char.code (Programs.pattern_byte (off + i)) lxor key)
          in
          if Bytes.get buf i <> want then incr bad
        done
      done;
      Alcotest.(check int) "masked copy is pattern XOR key" 0 !bad)

let test_prog_redirect_routes_blocks () =
  (* Content routing: edge 0 runs the router (block b -> sibling edge
     b mod 2) and edge 1 drops everything it is offered directly, so
     each sink receives exactly its residue class. *)
  with_rig ~file_bytes:(64 * 1024) (fun s _m ctx ->
      let src_fs, src_ino = src_file s in
      let dfs = dst_fs s in
      let even = Fs.create_file dfs "/even" and odd = Fs.create_file dfs "/odd" in
      let g = Graph.create ctx () in
      let src = Graph.add_file_source g ~fs:src_fs ~ino:src_ino () in
      let mk filters ino =
        let dst =
          Graph.add_sink g (Graph.Sink_file { fs = dfs; ino; off_blocks = 0 })
        in
        Graph.connect g ~filters ~src ~dst ()
      in
      let drop_all = prog "fuel 4\n    drop\n" in
      let er = mk [ Graph.Prog (Samples.router ~fanout:2) ] even in
      let ed = mk [ Graph.Prog drop_all ] odd in
      Graph.start g;
      ignore (ok_exn (Graph.wait g));
      let nblocks = 64 * 1024 / block_size in
      Alcotest.(check bool) "router edge done" true (Graph.edge_state er = `Done);
      Alcotest.(check bool) "dropper edge done" true (Graph.edge_state ed = `Done);
      (* Redirected delivery accounts to the owning (router) edge. *)
      Alcotest.(check int) "router delivered every block" (64 * 1024)
        (Graph.edge_delivered er);
      Alcotest.(check int) "dropper delivered nothing" 0
        (Graph.edge_delivered ed);
      Alcotest.(check int) "redirects counted" nblocks
        (Stats.get (Graph.ctx_stats ctx) "graph.prog_redirects");
      Alcotest.(check int) "every alias released" 0 (Graph.pinned_blocks g);
      Fs.fsync dfs even;
      Fs.fsync dfs odd;
      let buf = Bytes.create block_size in
      let bad = ref 0 in
      for lblk = 0 to nblocks - 1 do
        let ino = if lblk mod 2 = 0 then even else odd in
        let off = lblk * block_size in
        let n = Fs.read dfs ino ~off ~len:block_size buf ~pos:0 in
        Alcotest.(check int) "routed block read" block_size n;
        for i = 0 to n - 1 do
          if Bytes.get buf i <> Programs.pattern_byte (off + i) then incr bad
        done
      done;
      Alcotest.(check int) "each residue class at its home sink" 0 !bad)

let test_prog_emits_and_readonly () =
  (* A read-only probe program fingerprints each block through key-1
     emits; the blocks flow to the sink untouched, and the non-zero-key
     stream is observable in order via edge_emits. *)
  with_rig ~file_bytes:(64 * 1024) (fun s _m ctx ->
      ignore ctx;
      let src_fs, src_ino = src_file s in
      let dfs = dst_fs s in
      let c0 = Fs.create_file dfs "/c0" in
      let g = Graph.create ctx () in
      let src = Graph.add_file_source g ~fs:src_fs ~ino:src_ino () in
      let dst =
        Graph.add_sink g (Graph.Sink_file { fs = dfs; ino = c0; off_blocks = 0 })
      in
      let e =
        Graph.connect g ~filters:[ Graph.Prog (Samples.tee_hash ()) ] ~src ~dst ()
      in
      Graph.start g;
      ignore (ok_exn (Graph.wait g));
      (* Recompute the content hashes host-side (FNV-1a, no block-number
         mix -- that is the built-in checksum's job, not the probe's). *)
      let nblocks = 64 * 1024 / block_size in
      let chunk = Bytes.create block_size in
      let expect =
        List.init nblocks (fun lblk ->
            Programs.fill_pattern chunk ~file_off:(lblk * block_size);
            let h = ref 0x811c9dc5 in
            for i = 0 to block_size - 1 do
              h := !h lxor Char.code (Bytes.get chunk i);
              h := !h * 0x01000193 land 0xffffffff
            done;
            (1, !h))
      in
      Alcotest.(check (list (pair int int))) "one fingerprint per block, in order"
        expect (Graph.edge_emits e);
      (* A program edge that never emits key 0 reads as checksum 0. *)
      Alcotest.(check (option int)) "no key-0 emits -> zero checksum" (Some 0)
        (Graph.edge_checksum e);
      Fs.fsync dfs c0;
      check_pattern dfs c0 ~segments:[ (0, 64 * 1024) ])

let test_syscall_prog_load () =
  (* The load/attach split at the system-call boundary: a rejected
     program never becomes a handle, an accepted one attaches through
     splice_graph and produces the same checksum as the built-in. *)
  let s = Experiments.make_setup ~disk:`Ram ~file_bytes:(64 * 1024) () in
  let m = s.Experiments.machine in
  Experiments.cold_caches s;
  let done_ = ref false in
  let _p =
    Machine.spawn m ~name:"prog-load" (fun () ->
        let env = Syscall.make_env m in
        (match Syscall.prog_load env "fuel 16\ntop:\n    jmp top\n" with
         | Ok _ -> Alcotest.fail "backward jump accepted"
         | Error diag ->
           Alcotest.(check bool)
             (Printf.sprintf "diagnostic names the rule (%s)" diag)
             true
             (Util.contains diag "unbounded-loop"));
        let p =
          match Syscall.prog_load env Samples.checksum_src with
          | Ok p -> p
          | Error diag -> Alcotest.failf "checksum program rejected: %s" diag
        in
        let src = Syscall.openf env "/src/data" [ Syscall.O_RDONLY ] in
        let out =
          Syscall.openf env "/dst/out" [ Syscall.O_CREAT; Syscall.O_WRONLY ]
        in
        let g =
          Syscall.splice_graph_start env ~srcs:[ src ] ~dsts:[ out ]
            ~filters:[ Graph.Prog p ] Syscall.splice_eof
        in
        (match Graph.wait g with
         | Ok n -> Alcotest.(check int) "full copy" (64 * 1024) n
         | Error e -> Alcotest.fail e);
        (match Graph.edges g with
         | [ e ] ->
           Alcotest.(check (option int)) "loaded program checksums"
             (Some (expected_checksum ~file_bytes:(64 * 1024)))
             (Graph.edge_checksum e)
         | _ -> Alcotest.fail "one edge expected");
        List.iter (Syscall.close env) [ src; out ];
        done_ := true)
  in
  Machine.run m;
  Alcotest.(check bool) "ran" true !done_;
  Cache.check_invariants (Machine.cache m)

let suite =
  [
    Alcotest.test_case "fan-out to files" `Quick test_fanout_to_files;
    Alcotest.test_case "fan-out TCP single-read invariant" `Quick
      test_fanout_tcp_single_read_invariant;
    Alcotest.test_case "fan-in concatenates" `Quick test_fanin_concatenates;
    Alcotest.test_case "fan-in needs file sink" `Quick
      test_fanin_requires_file_sink;
    Alcotest.test_case "checksum filter" `Quick test_checksum_filter;
    Alcotest.test_case "tee filter" `Quick test_tee_filter;
    Alcotest.test_case "throttle + window bound" `Quick test_throttle_and_window;
    Alcotest.test_case "abort edge mid-stream" `Quick test_abort_edge_midstream;
    Alcotest.test_case "abort graph mid-stream" `Quick
      test_abort_graph_midstream;
    Alcotest.test_case "out-of-order release" `Quick test_out_of_order_release;
    Alcotest.test_case "chardev sink" `Quick test_chardev_sink;
    Alcotest.test_case "empty source" `Quick test_empty_source;
    Alcotest.test_case "syscall topologies" `Quick test_syscall_shapes;
    Alcotest.test_case "trace and stats" `Quick test_trace_and_stats;
    Alcotest.test_case "prog checksum bit-identical" `Quick
      test_prog_checksum_bit_identical;
    Alcotest.test_case "prog backend parity through the machine" `Quick
      test_prog_backend_parity;
    Alcotest.test_case "prog drop accounting" `Quick test_prog_drop_accounting;
    Alcotest.test_case "prog fault mid-cluster" `Quick
      test_prog_fault_mid_cluster;
    Alcotest.test_case "prog transform is copy-on-write" `Quick
      test_prog_transform_cow;
    Alcotest.test_case "prog redirect routes blocks" `Quick
      test_prog_redirect_routes_blocks;
    Alcotest.test_case "prog emits and read-only probe" `Quick
      test_prog_emits_and_readonly;
    Alcotest.test_case "syscall prog_load" `Quick test_syscall_prog_load;
  ]
