open Kpath_sim

type pending = {
  p_data : bytes;
  mutable p_off : int;
  mutable p_len : int;
  p_done : unit -> unit;
}

type t = {
  cd_name : string;
  drain_rate : float;
  fifo_capacity : int;
  drain_quantum : int;
  capture_limit : int;
  engine : Engine.t;
  intr : Blkdev.intr;
  fifo : Buffer.t; (* buffered-but-unplayed bytes *)
  pending : pending Queue.t;
  capture : Buffer.t;
  mutable consumed : int;
  mutable underruns : int;
  mutable stream_open : bool;
  mutable draining : bool;
}

let name t = t.cd_name

let fifo_level t = Buffer.length t.fifo

let fifo_capacity t = t.fifo_capacity

let consumed t = t.consumed

let underruns t = t.underruns

let captured t = Buffer.contents t.capture

let drain_rate t = t.drain_rate

let close_stream t = t.stream_open <- false

let create ~name ~drain_rate ~fifo_capacity ?(drain_quantum = 1024)
    ?(capture_limit = 256 * 1024) ~engine ~intr () =
  if drain_rate <= 0.0 then invalid_arg "Chardev.create: drain_rate <= 0";
  if fifo_capacity <= 0 || drain_quantum <= 0 then
    invalid_arg "Chardev.create: bad sizes";
  {
    cd_name = name;
    drain_rate;
    fifo_capacity;
    drain_quantum;
    capture_limit;
    engine;
    intr;
    fifo = Buffer.create fifo_capacity;
    pending = Queue.create ();
    capture = Buffer.create 4096;
    consumed = 0;
    underruns = 0;
    stream_open = false;
    draining = false;
  }

(* Move queued writer data into whatever FIFO space is free; fire
   completions for writers fully admitted. *)
let admit t =
  let progressing = ref true in
  while !progressing && not (Queue.is_empty t.pending) do
    let space = t.fifo_capacity - Buffer.length t.fifo in
    if space = 0 then progressing := false
    else begin
      let p = Queue.peek t.pending in
      let n = min space p.p_len in
      Buffer.add_subbytes t.fifo p.p_data p.p_off n;
      p.p_off <- p.p_off + n;
      p.p_len <- p.p_len - n;
      if p.p_len = 0 then begin
        ignore (Queue.pop t.pending);
        (* Acceptance completion: a tiny bit of driver work. *)
        t.intr ~service:(Time.us 5) p.p_done
      end
    end
  done

let rec drain_tick t =
  let level = Buffer.length t.fifo in
  if level = 0 && Queue.is_empty t.pending then begin
    if t.stream_open then t.underruns <- t.underruns + 1;
    t.draining <- false
  end
  else begin
    let n = min t.drain_quantum (max level 1) in
    let n = min n level in
    (if n > 0 then begin
       let all = Buffer.contents t.fifo in
       let keep = String.sub all n (String.length all - n) in
       let room = t.capture_limit - Buffer.length t.capture in
       if room > 0 then Buffer.add_string t.capture (String.sub all 0 (min n room));
       Buffer.clear t.fifo;
       Buffer.add_string t.fifo keep;
       t.consumed <- t.consumed + n
     end
     else if t.stream_open then t.underruns <- t.underruns + 1);
    admit t;
    let span = Time.span_of_bytes ~bytes_per_sec:t.drain_rate (max n 1) in
    ignore (Engine.schedule_after t.engine span (fun () -> drain_tick t))
  end

let start_drain t =
  if not t.draining then begin
    t.draining <- true;
    t.stream_open <- true;
    let span =
      Time.span_of_bytes ~bytes_per_sec:t.drain_rate
        (min t.drain_quantum (max 1 (Buffer.length t.fifo)))
    in
    ignore (Engine.schedule_after t.engine span (fun () -> drain_tick t))
  end

let write_async t data off len k =
  if off < 0 || len < 0 || off + len > Bytes.length data then
    invalid_arg "Chardev.write_async: bad range";
  Queue.push { p_data = data; p_off = off; p_len = len; p_done = k } t.pending;
  admit t;
  start_drain t

let try_write t data off len =
  if not (Queue.is_empty t.pending) then
    invalid_arg "Chardev.try_write: writers queued";
  if off < 0 || len < 0 || off + len > Bytes.length data then
    invalid_arg "Chardev.try_write: bad range";
  let space = t.fifo_capacity - Buffer.length t.fifo in
  let n = min space len in
  if n > 0 then begin
    Buffer.add_subbytes t.fifo data off n;
    start_drain t
  end;
  n
