(** Closure-compiling backend for verified filter programs.

    {!Vm.exec} pays a dispatch — a fuel check, two counter bumps, a
    27-way match and an operand decode — for every executed
    instruction. This module removes it by translating verified
    bytecode to OCaml closures {e once, at load time}: a leader
    analysis splits the program into basic blocks (jump targets and
    the [Loop]/[End] structure start blocks; jumps, loop edges and
    verdicts end them), each straight-line instruction becomes a
    closure with its operands resolved at compile time (register index
    or immediate baked in), and the closures of a block are chained by
    direct continuation calls. Executing a block costs one indirect
    call per instruction and a single batched step-count update;
    blocks tail-call their successors (the verifier admits only
    forward jumps, so the one back-edge is [End] returning to its loop
    body), so compiled code needs no dispatch loop and no host stack
    depth proportional to the program. A loop whose whole body is a
    single basic block is fused further into a counted host loop with
    its step charge batched across iterations — the interpreter's
    per-iteration bookkeeping survives only in the loop book an
    in-body fault uses to unwind the batched charge. On top of that
    sits the loop-idiom pass, a small pattern library over bodies that
    walk the payload through a monotonically advancing counter — a
    single entry test then proves the whole loop fault-free and the
    scan runs with all state in host registers:

    - {e byte-scan fold}: load byte at the counter, fold, mix, mask,
      bump — the FNV/tee-hash shape;
    - {e scatter/store}: load, ALU-transform, store back, bump —
      xor-stream cipher masks and byte remaps, writing the
      copy-on-write clone directly with the clone forced once at loop
      entry;
    - {e histogram}: load, indexed scratch load ([Ldsx]), increment,
      indexed scratch store ([Stsx]), bump — the verifier's
      power-of-two arena rule (["scratch-index"]) is the proof that
      lets the host loop index the table unchecked;
    - {e rolling-hash window}: fold each byte into a window hash and
      emit at chunk boundaries — the content-defined-chunking shape;
      its conditional [Emit] splits the body into three blocks so it
      can never fuse, but the whole region is recognized at the [Loop]
      and runs as one scan, charging the skipped-[Emit] step
      difference per boundary.

    Anything an entry test cannot prove (or any shape not matched)
    falls back to the generic path and faults bit-identically.
    Register, scratch and loop-book indices were range-checked by the
    verifier and compile to unchecked accesses. Payload offsets are
    runtime values, but the verifier's range analysis classifies each
    load/store (and register-divisor [Div]/[Rem]) site: [`Proven]
    sites compile to unchecked byte ops on the generic and fused
    tiers — the idiom library's entry-test trick generalized to
    arbitrary verified programs — while [`Checked] sites keep their
    runtime test and the interpreter's byte-identical fault strings.

    The trusted surface is unchanged: {!compile} consumes only
    {!Vm.prog} values, which exist only by passing {!Vm.verify} — the
    compiler relies on the verifier's invariants (matched [Loop]/[End]
    nesting, jumps that stay inside their loop region, static scratch
    bounds, non-zero immediate divisors, and the range analysis's
    [`Proven] verdicts) rather than re-checking them, exactly as the
    interpreter does. Payload bounds and register divisors the
    analysis could not prove are still checked per access and fault
    with the interpreter's byte-identical messages.

    Observational equivalence is exact, not approximate: for every
    verified program, payload and per-edge state, {!exec} returns the
    same {!Vm.run} as {!Vm.exec} — same verdict, same [r_steps] (so
    per-instruction CPU accounting and the simulated timeline are
    bit-identical), same emit sequence, same payload bytes, and the
    same physical-identity contract on [r_data] (the input buffer
    itself unless a [Stp] forced the copy-on-write clone). The test
    suite enforces this over the fixture corpus, the canned samples
    and randomized programs ([vm-parity]). *)

type code
(** A compiled program: one closure per basic block plus the metadata
    to account steps exactly like the interpreter. Immutable and
    shareable — attach one [code] to any number of edges, each with
    its own {!state}. *)

val compile : ?idioms:bool -> ?elide:bool -> Vm.prog -> code
(** Translate a verified program. Load-time cost is linear in the
    program; running it allocates nothing beyond what the interpreter
    allocates (the copy-on-write clone on the first [Stp] and the
    {!Vm.run} record). [?idioms] (default [true]) enables the
    loop-idiom pass; [~idioms:false] keeps only the generic fused
    path — the benches use it to measure what each idiom buys, and the
    parity suite uses it as a third differential backend. [?elide]
    (default [true]) lets the generic and fused tiers drop the runtime
    bounds or zero-divisor test at every site the range analysis
    marked [`Proven] (see {!Vm.bounds_at}); [~elide:false] keeps every
    check — the benches use it to price what the analysis buys, and
    the parity suite runs it as a fourth backend. Elision never
    changes observable behavior: [`Proven] sites cannot fault, and
    step accounting and copy-on-write are preserved either way. *)

val prog : code -> Vm.prog
(** The verified program this code was compiled from. *)

type block_bounds = { bb_first : int; bb_last : int }
(** One basic block: instructions [bb_first .. bb_last] inclusive. *)

val blocks : code -> block_bounds array
(** The basic blocks found by the leader analysis, in program order —
    what [kpathctl prog] prints next to the disassembly. *)

val block_tiers : code -> string array
(** One note per basic block (parallel to {!blocks}) naming the
    compilation tier that fired: a named loop idiom, a fused or
    block-chained loop, superinstruction counts, or plain chained
    closures. [kpathctl prog] prints these so a slow program is
    diagnosable without reading the compiler. *)

type state
(** Mutable per-attachment state: scratch arena (persists across
    blocks), register file and loop books, all preallocated so a run
    does not allocate. One [state] per edge; never share across
    edges. *)

val new_state : code -> state

val exec :
  code ->
  state ->
  data:bytes ->
  len:int ->
  lblk:int ->
  emit:(int -> int -> unit) ->
  Vm.run
(** Run the compiled program over one block, with {!Vm.exec}'s exact
    contract (registers zeroed per run, scratch persistent, [data]
    never mutated, synchronous [emit]). Interrupt-safe: compiled
    closures perform no I/O, no blocking and no allocation. *)
