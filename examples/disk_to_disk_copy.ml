(* Disk-to-disk copy: the paper's headline experiment as a runnable
   comparison. Copies a file between two disks with cp (read/write) and
   scp (splice), printing throughput and where the CPU time went.

   Run with:
     dune exec examples/disk_to_disk_copy.exe                 (RZ58, 4 MB)
     dune exec examples/disk_to_disk_copy.exe -- ram 8        (RAM disk, 8 MB)
     dune exec examples/disk_to_disk_copy.exe -- rz56 2 *)

open Kpath_sim
open Kpath_proc
open Kpath_kernel
open Kpath_workloads

let mb = 1024 * 1024

let run ~disk ~file_bytes ~mode =
  let s = Experiments.make_setup ~disk ~file_bytes () in
  Experiments.cold_caches s;
  let m = s.Experiments.machine in
  let cpu_before =
    let c = Sched.cpu (Machine.sched m) in
    (Cpu.user c, Cpu.sys c, Cpu.intr c, Cpu.ctx c)
  in
  let stats = Programs.fresh_copy_stats () in
  let _copier =
    match mode with
    | `Cp -> Programs.spawn_cp m ~src:s.Experiments.src_path ~dst:s.Experiments.dst_path stats
    | `Scp -> Programs.spawn_scp m ~src:s.Experiments.src_path ~dst:s.Experiments.dst_path stats
  in
  Machine.run m;
  let dt =
    Time.diff stats.Programs.copy_finished stats.Programs.copy_started
  in
  let c = Sched.cpu (Machine.sched m) in
  let u0, s0, i0, x0 = cpu_before in
  let spent f before = Time.to_sec_f (Time.diff (f c) before) in
  Format.printf
    "%-4s: %6.0f KB/s  (%.2fs; CPU: user %.2fs, sys %.2fs, intr %.2fs, ctx \
     %.2fs)@."
    (match mode with `Cp -> "cp" | `Scp -> "scp")
    (float_of_int stats.Programs.bytes_copied /. 1024. /. Time.to_sec_f dt)
    (Time.to_sec_f dt) (spent Cpu.user u0) (spent Cpu.sys s0)
    (spent Cpu.intr i0) (spent Cpu.ctx x0)

let () =
  let disk, disk_name =
    if Array.length Sys.argv > 1 then
      match String.lowercase_ascii Sys.argv.(1) with
      | "ram" -> (`Ram, "RAM disk")
      | "rz56" -> (`Rz56, "RZ56")
      | "rz58" | _ -> (`Rz58, "RZ58")
    else (`Rz58, "RZ58")
  in
  let size_mb =
    if Array.length Sys.argv > 2 then
      match int_of_string_opt Sys.argv.(2) with Some n when n > 0 -> n | _ -> 4
    else 4
  in
  Format.printf "copying %d MB between two %s drives:@." size_mb disk_name;
  run ~disk ~file_bytes:(size_mb * mb) ~mode:`Cp;
  run ~disk ~file_bytes:(size_mb * mb) ~mode:`Scp;
  Format.printf
    "scp eliminates the two user-space copies and the per-block context \
     switches; on fast devices that is the whole data path.@."
