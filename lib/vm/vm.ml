(* Register VM for per-block filter programs: static verifier and
   fuel-bounded interpreter. See vm.mli for the safety argument. *)

type reg = int

type operand = Reg of reg | Imm of int

type insn =
  | Mov of reg * operand
  | Add of reg * operand
  | Sub of reg * operand
  | Mul of reg * operand
  | Div of reg * operand
  | Rem of reg * operand
  | And of reg * operand
  | Or of reg * operand
  | Xor of reg * operand
  | Shl of reg * operand
  | Shr of reg * operand
  | Len of reg
  | Blkno of reg
  | Ldp of reg * operand
  | Stp of operand * operand
  | Lds of reg * int
  | Sts of int * operand
  | Ldsx of reg * reg
  | Stsx of reg * operand
  | Jmp of int
  | Jeq of reg * operand * int
  | Jne of reg * operand * int
  | Jlt of reg * operand * int
  | Jge of reg * operand * int
  | Loop of operand * int
  | End
  | Emit of operand * operand
  | Drop
  | Redirect of operand
  | Ret

type context = Edge | Readonly

type spec = {
  s_insns : insn array;
  s_fuel : int;
  s_scratch : int;
  s_context : context;
}

let max_regs = 8
let max_scratch = 1024
let max_fuel = 1_000_000
let max_loop_count = 65_536
let max_loop_depth = 4
let max_insns = 4096

(* Range-analysis verdict for one faultable site: a payload load/store
   or a register-divisor Div/Rem. [`Proven] means the analysis showed
   the access cannot fault on any admissible payload, so the compiler
   may elide its runtime check. *)
type access = {
  a_pc : int;
  a_kind : [ `Load | `Store | `Div ];
  a_bounds : [ `Proven | `Checked ];
  a_range : string;
}

type prog = {
  p_insns : insn array;
  p_fuel : int;
  p_scratch : int;
  p_context : context;
  p_cost : int;
  (* For [Loop] at pc, the pc of its matching [End]; -1 elsewhere. *)
  p_end_of : int array;
  (* Range-analysis results: one entry per faultable site, in pc order,
     and a per-pc projection of the [`Proven] bit for the compiler. *)
  p_accesses : access list;
  p_proven : bool array;
}

type diag = { d_rule : string; d_pc : int; d_msg : string }

let diag_to_string d =
  if d.d_pc < 0 then Printf.sprintf "%s: %s" d.d_rule d.d_msg
  else Printf.sprintf "%s at pc %d: %s" d.d_rule d.d_pc d.d_msg

(* {1 Verifier} *)

exception Reject of diag

let reject rule pc fmt =
  Printf.ksprintf
    (fun msg -> raise (Reject { d_rule = rule; d_pc = pc; d_msg = msg }))
    fmt

let check_reg pc r =
  if r < 0 || r >= max_regs then
    reject "bad-register" pc "r%d is not a register (r0..r%d)" r (max_regs - 1)

let check_operand pc = function Reg r -> check_reg pc r | Imm _ -> ()

(* Match Loop/End pairs and record, for every position, the pc of its
   innermost enclosing Loop (-1 at top level). The End instruction
   belongs to the loop it closes; position [n] (falling off the end) is
   top-level. Jumps may move only within their enclosing region, so the
   interpreter's loop stack always mirrors the static nesting. *)
let build_loops insns =
  let n = Array.length insns in
  let end_of = Array.make (max n 1) (-1) in
  let encl = Array.make (n + 1) (-1) in
  let stack = ref [] in
  for pc = 0 to n - 1 do
    encl.(pc) <- (match !stack with [] -> -1 | s :: _ -> s);
    match insns.(pc) with
    | Loop (count, cap) ->
      if List.length !stack >= max_loop_depth then
        reject "loop-depth" pc "loops nest deeper than %d" max_loop_depth;
      if cap < 1 || cap > max_loop_count then
        reject "unbounded-loop" pc "loop cap %d outside 1..%d" cap
          max_loop_count;
      check_operand pc count;
      stack := pc :: !stack
    | End -> (
      match !stack with
      | [] -> reject "unbounded-loop" pc "End without a matching Loop"
      | s :: rest ->
        end_of.(s) <- pc;
        stack := rest)
    | _ -> ()
  done;
  (match !stack with
   | s :: _ -> reject "unbounded-loop" s "Loop without a matching End"
   | [] -> ());
  (end_of, encl)

(* Structural worst case: straight-line code costs one per instruction,
   a loop costs its header plus cap * (body + End). Saturates well above
   max_fuel so nested caps cannot overflow. *)
let cost_ceiling = max_fuel * 16

let sat_add a b = if a > cost_ceiling - b then cost_ceiling else a + b

let sat_mul a b =
  if b = 0 then 0
  else if a > cost_ceiling / b then cost_ceiling
  else a * b

let worst_case insns end_of =
  let rec region pc stop =
    if pc >= stop then 0
    else
      match insns.(pc) with
      | Loop (_, cap) ->
        let e = end_of.(pc) in
        let body = region (pc + 1) e in
        sat_add 1 (sat_add (sat_mul cap (sat_add body 1)) (region (e + 1) stop))
      | _ -> sat_add 1 (region (pc + 1) stop)
  in
  region 0 (Array.length insns)

(* {1 Range analysis}

   A flow-sensitive abstract interpreter over the loop-structured CFG
   that bounds every register with an interval whose endpoints may be
   payload-relative ([B (1, k)] reads "len + k"), plus a "known
   multiple-of" fact for stride reasoning. Its product is the per-site
   verdict table above: payload accesses whose interval provably sits
   inside [0, len) are [`Proven] and compile to unchecked byte ops;
   everything else stays [`Checked] with the runtime test and fault
   string intact. An access whose interval provably misses every
   admissible payload (always negative, or at/past a guard-derived len
   cap) is rejected outright as "range-oob".

   Soundness under wraparound: payload lengths obey
   [len <= Sys.max_string_length < 2^57], and every concrete endpoint
   the analysis keeps is saturated into [-2^50, 2^50] ([big] below), so
   any value all of whose bounds are finite is confined to
   (-2^51, 2^57 + 2^51) and native [+]/[-]/[*] on such values cannot
   wrap. Transfer functions therefore demand fully finite operands
   before doing interval arithmetic and degrade to top otherwise;
   bitwise/mod results ([land] with a constant mask, [mod], shifts) are
   bounded by the operation itself and stay sound on any input.
   Multiple-of facts survive wrapping only for powers of two (2^63 is
   itself a power of two), so potentially-wrapping paths keep only the
   power-of-two part of the divisor. *)

type bound = NegInf | PosInf | B of int * int  (* B (l, k) = l*len + k *)

(* Abstract register value: [lo] <= value <= [hi], and value is a
   multiple of [m] ([m] = 0 means the value is exactly 0, [m] = 1 means
   nothing is known — the divisibility lattice join is gcd). *)
type av = { lo : bound; hi : bound; m : int }

let big = 1 lsl 50

let norm_lo = function B (_, k) when k < -big || k > big -> NegInf | b -> b

let norm_hi = function B (_, k) when k < -big || k > big -> PosInf | b -> b

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let pow2part m = if m = 0 then 0 else m land -m

let av_top = { lo = NegInf; hi = PosInf; m = 1 }

let av_const k =
  { lo = norm_lo (B (0, k)); hi = norm_hi (B (0, k)); m = abs k }

let av_byte = { lo = B (0, 0); hi = B (0, 255); m = 1 }

let av_len = { lo = B (1, 0); hi = B (1, 0); m = 1 }

let av_finite a =
  (match a.lo with B _ -> true | _ -> false)
  && (match a.hi with B _ -> true | _ -> false)

(* [b1 <= b2] for every admissible len in [llo, lhi]. [lhi = max_int]
   means the length is unbounded above. *)
let bleq llo lhi b1 b2 =
  match (b1, b2) with
  | NegInf, _ | _, PosInf -> true
  | PosInf, _ | _, NegInf -> false
  | B (l1, k1), B (l2, k2) ->
    if l1 = l2 then k1 <= k2
    else if l1 = 0 then k1 <= llo + k2
    else lhi < max_int && lhi + k1 <= k2

(* Join endpoints: a sound lower (resp. upper) bound for either value.
   Incomparable concrete-vs-relative pairs fall back on the len range. *)
let bmin llo lhi b1 b2 =
  if bleq llo lhi b1 b2 then b1
  else if bleq llo lhi b2 b1 then b2
  else
    match (b1, b2) with
    | B (0, a), B (1, c) | B (1, c), B (0, a) ->
      norm_lo (B (0, min a (llo + c)))
    | _ -> NegInf

let bmax llo lhi b1 b2 =
  if bleq llo lhi b1 b2 then b2
  else if bleq llo lhi b2 b1 then b1
  else
    match (b1, b2) with
    | B (0, a), B (1, c) | B (1, c), B (0, a) ->
      if lhi < max_int then norm_hi (B (0, max a (lhi + c))) else PosInf
    | _ -> PosInf

(* Meet endpoints for guard refinement: both arguments are sound, keep
   the stronger one; when incomparable prefer a concrete lower bound
   (feeds the [>= 0] proof) and a len-relative upper bound (feeds the
   [<= len - 1] proof). *)
let meet_lo llo lhi b1 b2 =
  if bleq llo lhi b1 b2 then b2
  else if bleq llo lhi b2 b1 then b1
  else
    match (b1, b2) with
    | (B (0, _) as c), _ | _, (B (0, _) as c) -> c
    | _ -> b1

let meet_hi llo lhi b1 b2 =
  if bleq llo lhi b1 b2 then b1
  else if bleq llo lhi b2 b1 then b2
  else
    match (b1, b2) with
    | (B (1, _) as s), _ | _, (B (1, _) as s) -> s
    | _ -> b1

(* [lo > hi] for every admissible len: the path is infeasible. *)
let definitely_empty llo lhi lo hi =
  match (lo, hi) with
  | PosInf, _ | _, NegInf -> true
  | B (l1, k1), B (l2, k2) ->
    if l1 = l2 then k1 > k2
    else if l1 = 1 then llo + k1 > k2
    else lhi < max_int && k1 > lhi + k2
  | _ -> false

(* Endpoint addition; [l1 + l2 = 2] weakens through [len >= 0] on the
   low side and the len cap (if any) on the high side. *)
let badd_lo b1 b2 =
  match (b1, b2) with
  | B (l1, k1), B (l2, k2) ->
    if l1 + l2 <= 1 then norm_lo (B (l1 + l2, k1 + k2))
    else norm_lo (B (1, k1 + k2))
  | _ -> NegInf

let badd_hi lhi b1 b2 =
  match (b1, b2) with
  | B (l1, k1), B (l2, k2) ->
    if l1 + l2 <= 1 then norm_hi (B (l1 + l2, k1 + k2))
    else if lhi < max_int then norm_hi (B (1, k1 + k2 + lhi))
    else PosInf
  | _ -> PosInf

(* Negation swaps sides; [-(len + k)] needs the len range. *)
let bneg_lo _llo lhi b =
  (* lower bound for the negation of a value whose UPPER bound is b *)
  match b with
  | B (0, k) -> norm_lo (B (0, -k))
  | B (_, k) -> if lhi < max_int then norm_lo (B (0, -(lhi + k))) else NegInf
  | PosInf -> NegInf
  | NegInf -> PosInf

let bneg_hi llo _lhi b =
  (* upper bound for the negation of a value whose LOWER bound is b *)
  match b with
  | B (0, k) -> norm_hi (B (0, -k))
  | B (_, k) -> norm_hi (B (0, -(llo + k)))
  | NegInf -> PosInf
  | PosInf -> NegInf

let bound_to_string = function
  | NegInf -> "-inf"
  | PosInf -> "+inf"
  | B (0, k) -> string_of_int k
  | B (_, 0) -> "len"
  | B (_, k) -> if k > 0 then Printf.sprintf "len+%d" k else Printf.sprintf "len%d" k

(* Abstract machine state: one [av] per register plus the admissible
   payload-length range on this path (guards against a len-valued
   register narrow it). *)
type rstate = { rs : av array; mutable r_llo : int; mutable r_lhi : int }

let copy_state s = { s with rs = Array.copy s.rs }

let join_av llo lhi a b =
  { lo = bmin llo lhi a.lo b.lo; hi = bmax llo lhi a.hi b.hi; m = gcd a.m b.m }

let join_state a b =
  let llo = min a.r_llo b.r_llo and lhi = max a.r_lhi b.r_lhi in
  {
    rs = Array.init max_regs (fun i -> join_av llo lhi a.rs.(i) b.rs.(i));
    r_llo = llo;
    r_lhi = lhi;
  }

let join_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (join_state a b)

let infeasible st =
  st.r_lhi < st.r_llo
  || Array.exists
       (fun a -> definitely_empty st.r_llo st.r_lhi a.lo a.hi)
       st.rs

let av_operand st = function Reg r -> st.rs.(r) | Imm k -> av_const k

let nonneg st a = bleq st.r_llo st.r_lhi (B (0, 0)) a.lo

let round_down m k = k - (((k mod m) + m) mod m)

let round_up m k = -round_down m (-k)

(* Tighten register [i] with a new upper (resp. lower) bound, folding
   concrete endpoints to the nearest multiple-of-[m] and — when the
   register is len-valued — propagating the guard into the state's
   admissible length range. *)
let set_hi st i ub =
  let a = st.rs.(i) in
  (match (a.lo, ub) with
   | B (1, la), B (0, k) -> st.r_lhi <- min st.r_lhi (k - la)
   | _ -> ());
  let hi = meet_hi st.r_llo st.r_lhi a.hi (norm_hi ub) in
  let hi =
    match hi with B (0, k) when a.m > 1 -> B (0, round_down a.m k) | h -> h
  in
  st.rs.(i) <- { a with hi }

let set_lo st i lb =
  let a = st.rs.(i) in
  (match (a.hi, lb) with
   | B (1, ha), B (0, k) -> st.r_llo <- max st.r_llo (max 0 (k - ha))
   | _ -> ());
  let lo = meet_lo st.r_llo st.r_lhi a.lo (norm_lo lb) in
  let lo =
    match lo with B (0, k) when a.m > 1 -> B (0, round_up a.m k) | l -> l
  in
  st.rs.(i) <- { a with lo }

let b_add_k b d = match b with B (l, k) -> B (l, k + d) | inf -> inf

let av_singleton a =
  match (a.lo, a.hi) with
  | B (0, k1), B (0, k2) when k1 = k2 -> Some k1
  | _ -> None

(* Saturating nonnegative helpers for loop-trip arithmetic. *)
let sadd_big a b = if a >= big - b then big else a + b

let smul_big a b = if b > 0 && a > big / b then big else a * b

let av_add _llo lhi a b =
  if av_finite a && av_finite b then
    {
      lo = badd_lo a.lo b.lo;
      hi = badd_hi lhi a.hi b.hi;
      m = gcd a.m b.m;
    }
  else { av_top with m = pow2part (gcd a.m b.m) }

let av_sub llo lhi a b =
  if av_finite a && av_finite b then
    {
      lo = badd_lo a.lo (bneg_lo llo lhi b.hi);
      hi = badd_hi lhi a.hi (bneg_hi llo lhi b.lo);
      m = gcd a.m b.m;
    }
  else { av_top with m = pow2part (gcd a.m b.m) }

(* Concretize an endpoint through the len range; None if unbounded. *)
let conc_lo llo = function
  | B (0, k) -> Some k
  | B (_, k) -> Some (llo + k)
  | _ -> None

let conc_hi lhi = function
  | B (0, k) -> Some k
  | B (_, k) -> if lhi < max_int then Some (lhi + k) else None
  | _ -> None

let av_mul llo lhi a b =
  (* Multiple-of fact through a product: full [m1 * m2] when it fits,
     else only the power-of-two part (which survives wraparound). *)
  let mul_m m1 m2 =
    if m1 = 0 || m2 = 0 then 0
    else if m1 <= big / m2 then m1 * m2
    else
      let p = pow2part m1 and q = pow2part m2 in
      if p <= big / q then p * q else big
  in
  let cmul x y =
    if x = 0 || y = 0 then Some 0
    else if abs y <= max_int / abs x then Some (x * y)
    else None
  in
  match (av_singleton a, av_singleton b) with
  | Some 0, _ | _, Some 0 -> av_const 0
  | _, Some 1 -> a
  | Some 1, _ -> b
  | _ ->
    (* Concretize both factors; the endpoint products are checked, so
       the interval hull is computed without wrapping, and the hull
       being representable means the runtime product cannot wrap. *)
    let products =
      match
        ( conc_lo llo a.lo, conc_hi lhi a.hi, conc_lo llo b.lo,
          conc_hi lhi b.hi )
      with
      | Some al, Some ah, Some bl, Some bh -> (
        match (cmul al bl, cmul al bh, cmul ah bl, cmul ah bh) with
        | Some p1, Some p2, Some p3, Some p4 ->
          Some (min (min p1 p2) (min p3 p4), max (max p1 p2) (max p3 p4))
        | _ -> None)
      | _ -> None
    in
    let m = mul_m a.m b.m in
    (match products with
     | Some (lo, hi) ->
       { lo = norm_lo (B (0, lo)); hi = norm_hi (B (0, hi)); m }
     | None -> { av_top with m = pow2part m })

let av_and llo lhi a b_op =
  let nn = bleq llo lhi (B (0, 0)) a.lo in
  match b_op with
  | { lo = B (0, k); hi = B (0, k'); m = _ } when k = k' ->
    if k = 0 then av_const 0
    else
      let m = max (pow2part k) (pow2part a.m) in
      if k > 0 then
        let hi = if nn && bleq llo lhi a.hi (B (0, k)) then a.hi else B (0, k) in
        { lo = B (0, 0); hi; m }
      else if nn then { lo = B (0, 0); hi = a.hi; m }
      else { av_top with m }
  | b ->
    let m = max (pow2part a.m) (pow2part b.m) in
    if nn then { lo = B (0, 0); hi = a.hi; m }
    else if bleq llo lhi (B (0, 0)) b.lo then { lo = B (0, 0); hi = b.hi; m }
    else { av_top with m }

let av_orxor llo lhi a b =
  let m = pow2part (gcd a.m b.m) in
  if bleq llo lhi (B (0, 0)) a.lo && bleq llo lhi (B (0, 0)) b.lo then
    (* x lor y and x lxor y are both <= x + y for nonnegative x, y *)
    { lo = B (0, 0); hi = badd_hi lhi a.hi b.hi; m }
  else { av_top with m }

(* Refine a private copy of [st0] under "r CMP o is true"; None means
   the refined path is infeasible (the branch can never go this way). *)
let refine st0 r o cmp =
  match o with
  | Reg s when s = r -> (
    (* r CMP r: trivially true or trivially false *)
    match cmp with
    | `Lt | `Ne -> None
    | `Ge | `Eq -> Some (copy_state st0))
  | _ ->
    let st = copy_state st0 in
    (match cmp with
     | `Lt ->
       set_hi st r (b_add_k (av_operand st o).hi (-1));
       (match o with
        | Reg s -> set_lo st s (b_add_k st.rs.(r).lo 1)
        | Imm _ -> ())
     | `Ge ->
       set_lo st r (av_operand st o).lo;
       (match o with
        | Reg s -> set_hi st s st.rs.(r).hi
        | Imm _ -> ())
     | `Eq ->
       let b = av_operand st o in
       set_hi st r b.hi;
       set_lo st r b.lo;
       (match o with
        | Reg s ->
          set_hi st s st.rs.(r).hi;
          set_lo st s st.rs.(r).lo
        | Imm _ -> ())
     | `Ne -> (
       (* Only a singleton disequality moves an interval endpoint. *)
       match av_singleton (av_operand st o) with
       | Some k ->
         (match st.rs.(r).lo with
          | B (0, kl) when kl = k -> set_lo st r (B (0, k + 1))
          | _ -> ());
         (match st.rs.(r).hi with
          | B (0, kh) when kh = k -> set_hi st r (B (0, k - 1))
          | _ -> ())
       | None -> ()));
    if infeasible st then None else Some st

(* The walker. Regions are [start, stop) slices of one loop-nesting
   level. Jumps are forward-only and cannot cross loop boundaries, so a
   single ascending pass with a join table per jump target reaches a
   sound result without fixpoint iteration. Loops use a one-shot
   widening: registers written in the body only by [Add r, Imm d] with
   d >= 0 are monotone counters whose body-entry values across all
   iterations are covered by [entry, entry + (trips - 1) * stride];
   every other written register widens to top. One pass over the body
   under that envelope therefore visits each site with a loop
   invariant. *)
let analyze_ranges insns end_of encl n =
  let verdicts = Array.make (max n 1) None in
  let pending = Array.make (n + 1) None in
  let record pc kind proven range =
    verdicts.(pc) <- Some (kind, proven, range)
  in
  (* A site on a statically dead path never executes: trivially proven. *)
  let record_unreachable pc =
    match insns.(pc) with
    | Ldp _ -> record pc `Load true "unreachable"
    | Stp _ -> record pc `Store true "unreachable"
    | Div (_, Reg _) | Rem (_, Reg _) -> record pc `Div true "unreachable"
    | _ -> ()
  in
  let payload_site st pc kind o =
    let a = av_operand st o in
    let llo = st.r_llo and lhi = st.r_lhi in
    (* Deliberately narrow rejection: only accesses that are concretely
       impossible (always negative, or at/past a guard-derived length
       cap) are range-oob. An access at exactly [len] with no guard in
       sight stays admissible and faults at runtime, as it always has. *)
    let oob =
      bleq llo lhi a.hi (B (0, -1))
      || (lhi < max_int && bleq llo lhi (B (0, lhi)) a.lo)
    in
    if oob then
      reject "range-oob" pc
        "payload %s provably out of bounds: off in [%s, %s], len in [%d, %s]"
        (match kind with `Load -> "load" | _ -> "store")
        (bound_to_string a.lo) (bound_to_string a.hi) llo
        (if lhi = max_int then "inf" else string_of_int lhi);
    let proven =
      bleq llo lhi (B (0, 0)) a.lo && bleq llo lhi a.hi (B (1, -1))
    in
    record pc kind proven
      (Printf.sprintf "off in [%s, %s]" (bound_to_string a.lo)
         (bound_to_string a.hi))
  in
  let div_site st pc o =
    match o with
    | Imm _ -> ()
    | Reg s ->
      let a = st.rs.(s) in
      let llo = st.r_llo and lhi = st.r_lhi in
      (* A provably-zero divisor is NOT rejected: like an unguarded
         payload probe it simply faults at runtime. *)
      let proven =
        bleq llo lhi (B (0, 1)) a.lo || bleq llo lhi a.hi (B (0, -1))
      in
      record pc `Div proven
        (Printf.sprintf "divisor in [%s, %s]" (bound_to_string a.lo)
           (bound_to_string a.hi))
  in
  let apply st pc insn =
    let llo = st.r_llo and lhi = st.r_lhi in
    match insn with
    | Mov (r, o) -> st.rs.(r) <- av_operand st o
    | Add (r, o) -> st.rs.(r) <- av_add llo lhi st.rs.(r) (av_operand st o)
    | Sub (r, o) -> st.rs.(r) <- av_sub llo lhi st.rs.(r) (av_operand st o)
    | Mul (r, o) -> st.rs.(r) <- av_mul llo lhi st.rs.(r) (av_operand st o)
    | Div (r, o) ->
      div_site st pc o;
      let a = st.rs.(r) in
      st.rs.(r) <-
        (match o with
         | Imm d when d >= 1 && nonneg st a ->
           let lo =
             match conc_lo llo a.lo with
             | Some k -> norm_lo (B (0, max k 0 / d))
             | None -> B (0, 0)
           in
           let hi =
             match a.hi with
             | B (0, k) -> norm_hi (B (0, max k 0 / d))
             | B (_, k) -> B (1, max k 0)
             | h -> h
           in
           let m =
             if a.m = 0 then 0
             else if a.m mod d = 0 then a.m / d
             else 1
           in
           { lo; hi; m }
         | Reg _
           when nonneg st a && bleq llo lhi (B (0, 1)) (av_operand st o).lo
           ->
           { lo = B (0, 0); hi = a.hi; m = 1 }
         | _ -> av_top)
    | Rem (r, o) ->
      div_site st pc o;
      let a = st.rs.(r) in
      st.rs.(r) <-
        (match o with
         | Imm d0 when d0 <> 0 ->
           let d = abs d0 in
           let m = gcd a.m d in
           if nonneg st a then
             let hi =
               if bleq llo lhi a.hi (B (0, d - 1)) then a.hi else B (0, d - 1)
             in
             { lo = B (0, 0); hi; m }
           else { lo = B (0, -(d - 1)); hi = B (0, d - 1); m }
         | Reg _ ->
           if nonneg st a then { lo = B (0, 0); hi = a.hi; m = 1 }
           else av_top
         | Imm _ -> av_top)
    | And (r, o) -> st.rs.(r) <- av_and llo lhi st.rs.(r) (av_operand st o)
    | Or (r, o) | Xor (r, o) ->
      st.rs.(r) <- av_orxor llo lhi st.rs.(r) (av_operand st o)
    | Shl (r, o) ->
      let a = st.rs.(r) in
      st.rs.(r) <-
        (match av_singleton (av_operand st o) with
         | Some s0 ->
           let s = s0 land 63 in
           if s = 0 then a
           else if s <= 45 then av_mul llo lhi a (av_const (1 lsl s))
           else { av_top with m = pow2part a.m }
         | None -> { av_top with m = pow2part a.m })
    | Shr (r, o) ->
      let a = st.rs.(r) in
      st.rs.(r) <-
        (match av_singleton (av_operand st o) with
         | Some s0 ->
           let s = s0 land 63 in
           if s = 0 then a
           else if nonneg st a && av_finite a then
             let lo =
               match conc_lo llo a.lo with
               | Some k -> B (0, max k 0 lsr s)
               | None -> B (0, 0)
             in
             let hi =
               match a.hi with
               | B (0, k) -> B (0, max k 0 lsr s)
               | B (_, k) -> B (1, max k 0)
               | h -> h
             in
             { lo; hi; m = 1 }
           else if s >= 13 then
             (* x lsr s < 2^(63-s) regardless of sign *)
             { lo = B (0, 0); hi = B (0, (1 lsl (63 - s)) - 1); m = 1 }
           else { lo = B (0, 0); hi = PosInf; m = 1 }
         | None ->
           if nonneg st a then { lo = B (0, 0); hi = a.hi; m = 1 }
           else av_top)
    | Len r -> st.rs.(r) <- av_len
    | Blkno r -> st.rs.(r) <- av_top
    | Ldp (r, o) ->
      payload_site st pc `Load o;
      st.rs.(r) <- av_byte
    | Stp (o_off, _) -> payload_site st pc `Store o_off
    | Lds (r, _) | Ldsx (r, _) -> st.rs.(r) <- av_top
    | Sts _ | Stsx _ | Emit _ -> ()
    | Jmp _ | Jeq _ | Jne _ | Jlt _ | Jge _ | Loop _ | End | Drop
    | Redirect _ | Ret ->
      ()
  in
  let rec analyze_region start stop cur0 =
    let cur = ref cur0 in
    let pc = ref start in
    while !pc < stop do
      let here = !pc in
      (match pending.(here) with
       | Some _ as p ->
         cur := join_opt !cur p;
         pending.(here) <- None
       | None -> ());
      (match (insns.(here), !cur) with
       | Loop _, None ->
         let e = end_of.(here) in
         for q = here + 1 to e - 1 do
           record_unreachable q
         done;
         pc := e + 1
       | Loop (count, cap), Some st ->
         let e = end_of.(here) in
         cur := analyze_loop here e st count cap;
         pc := e + 1
       | _, None ->
         record_unreachable here;
         incr pc
       | Jmp off, Some st ->
         pending.(here + off) <- join_opt pending.(here + off) (Some st);
         cur := None;
         incr pc
       | ( (Jeq (r, o, off) | Jne (r, o, off) | Jlt (r, o, off)
           | Jge (r, o, off)),
           Some st ) ->
         let taken, fall =
           match insns.(here) with
           | Jeq _ -> (`Eq, `Ne)
           | Jne _ -> (`Ne, `Eq)
           | Jlt _ -> (`Lt, `Ge)
           | _ -> (`Ge, `Lt)
         in
         (match refine st r o taken with
          | Some _ as t ->
            pending.(here + off) <- join_opt pending.(here + off) t
          | None -> ());
         cur := refine st r o fall;
         incr pc
       | (Drop | Redirect _ | Ret), Some _ ->
         cur := None;
         incr pc
       | insn, Some st ->
         apply st here insn;
         incr pc)
    done;
    let out = join_opt !cur pending.(stop) in
    pending.(stop) <- None;
    out
  and analyze_loop lp e entry count cap =
    let ccap v = min (max v 0) cap in
    (* Path on which the body never runs (count <= 0). *)
    let skip =
      match count with
      | Imm v -> if ccap v = 0 then Some (copy_state entry) else None
      | Reg s ->
        let st = copy_state entry in
        set_hi st s (B (0, 0));
        if infeasible st then None else Some st
    in
    (* Path into the body (count >= 1). *)
    let body_entry =
      match count with
      | Imm v -> if ccap v >= 1 then Some (copy_state entry) else None
      | Reg s ->
        let st = copy_state entry in
        set_lo st s (B (0, 1));
        if infeasible st then None else Some st
    in
    match body_entry with
    | None ->
      for q = lp + 1 to e - 1 do
        record_unreachable q
      done;
      skip
    | Some st0 ->
      let lhi = st0.r_lhi in
      (* Upper bound on the trip count; prefer a len-relative form so
         counters driven by [Loop (Reg len)] prove [<= len - 1]. *)
      let c_hi =
        match count with
        | Imm v -> B (0, ccap v)
        | Reg s -> (
          match st0.rs.(s).hi with
          | B (1, k) -> B (1, max k 0)
          | B (0, k) -> B (0, min (max k 1) cap)
          | _ -> B (0, cap))
      in
      (* Classify body writes per register. *)
      let d_tot = Array.make max_regs 0 in
      let d_g = Array.make max_regs 0 in
      let written = Array.make max_regs false in
      let pure = Array.make max_regs true in
      (* Product of inner-loop caps enclosing pc [q] within this body:
         an Add there can execute that many times per outer trip. *)
      let mult q =
        let rec go l acc =
          if l <= lp || l < 0 then acc
          else
            match insns.(l) with
            | Loop (_, icap) -> go encl.(l) (smul_big acc icap)
            | _ -> acc
        in
        go encl.(q) 1
      in
      for q = lp + 1 to e - 1 do
        match insns.(q) with
        | Add (r, Imm d) when d >= 0 ->
          written.(r) <- true;
          d_tot.(r) <- sadd_big d_tot.(r) (smul_big d (mult q));
          d_g.(r) <- gcd d_g.(r) d
        | Mov (r, _) | Add (r, _) | Sub (r, _) | Mul (r, _) | Div (r, _)
        | Rem (r, _) | And (r, _) | Or (r, _) | Xor (r, _) | Shl (r, _)
        | Shr (r, _) | Len r | Blkno r | Ldp (r, _) | Lds (r, _)
        | Ldsx (r, _) ->
          written.(r) <- true;
          pure.(r) <- false
        | _ -> ()
      done;
      (* Widened body-entry envelope. *)
      let env = copy_state st0 in
      for i = 0 to max_regs - 1 do
        if written.(i) then
          if pure.(i) then begin
            let a = st0.rs.(i) in
            let d = d_tot.(i) in
            (* Bound on the increments accumulated before the last
               body entry: (trips - 1) * stride. *)
            let extra =
              if d = 0 then Some (B (0, 0))
              else
                match c_hi with
                | B (1, k) when d = 1 -> Some (B (1, k - 1))
                | B (0, c) ->
                  let x = smul_big (max (c - 1) 0) d in
                  if x >= big then None else Some (B (0, x))
                | _ ->
                  let x = smul_big (max (cap - 1) 0) d in
                  if x >= big then None else Some (B (0, x))
            in
            env.rs.(i) <-
              (match extra with
               | Some ex when av_finite a ->
                 { lo = a.lo; hi = badd_hi lhi a.hi ex; m = gcd a.m d_g.(i) }
               | _ -> { av_top with m = pow2part (gcd a.m d_g.(i)) })
          end
          else env.rs.(i) <- av_top
      done;
      let out = analyze_region (lp + 1) e (Some env) in
      join_opt skip out
  in
  let init =
    {
      rs = Array.init max_regs (fun _ -> av_const 0);
      r_llo = 0;
      r_lhi = max_int;
    }
  in
  ignore (analyze_region 0 n (Some init) : rstate option);
  let accs = ref [] in
  for pc = n - 1 downto 0 do
    match verdicts.(pc) with
    | Some (kind, proven, range) ->
      accs :=
        {
          a_pc = pc;
          a_kind = kind;
          a_bounds = (if proven then `Proven else `Checked);
          a_range = range;
        }
        :: !accs
    | None -> ()
  done;
  let proven =
    Array.init (max n 1) (fun pc ->
        match verdicts.(pc) with Some (_, p, _) -> p | None -> false)
  in
  (!accs, proven)

let check_insn ~scratch ~context ~encl ~n pc insn =
  let jump off =
    if off < 1 then
      reject "unbounded-loop" pc
        "backward or self jump (offset %d); loop with Loop/End instead" off;
    let target = pc + off in
    if target > n then
      reject "jump-oob" pc "jump target %d past program end %d" target n;
    if encl.(target) <> encl.(pc) then
      reject "jump-oob" pc "jump target %d crosses a loop boundary" target
  in
  let scratch_cell off =
    if off < 0 || off >= scratch then
      reject "scratch-oob" pc "scratch cell %d outside 0..%d" off (scratch - 1)
  in
  (* Indexed scratch access is masked to [idx land (scratch - 1)], so it
     is statically in bounds exactly when the arena is a non-empty power
     of two — the proof the compiler relies on to elide the check. *)
  let scratch_indexable name =
    if scratch = 0 || scratch land (scratch - 1) <> 0 then
      reject "scratch-index" pc
        "%s needs a power-of-two scratch arena (scratch %d)" name scratch
  in
  let effect name =
    if context = Readonly then
      reject "effect-context" pc "%s not allowed in a read-only program" name
  in
  match insn with
  | Mov (r, o) | Add (r, o) | Sub (r, o) | Mul (r, o)
  | And (r, o) | Or (r, o) | Xor (r, o) | Shl (r, o) | Shr (r, o) ->
    check_reg pc r;
    check_operand pc o
  | Div (r, o) | Rem (r, o) ->
    check_reg pc r;
    check_operand pc o;
    (match o with
     | Imm 0 -> reject "div-by-zero" pc "constant zero divisor"
     | _ -> ())
  | Len r | Blkno r -> check_reg pc r
  | Ldp (r, o) ->
    check_reg pc r;
    check_operand pc o
  | Stp (o_off, o_v) ->
    effect "Stp";
    check_operand pc o_off;
    check_operand pc o_v
  | Lds (r, off) ->
    check_reg pc r;
    scratch_cell off
  | Sts (off, o) ->
    scratch_cell off;
    check_operand pc o
  | Ldsx (r, ri) ->
    check_reg pc r;
    check_reg pc ri;
    scratch_indexable "Ldsx"
  | Stsx (ri, o) ->
    check_reg pc ri;
    check_operand pc o;
    scratch_indexable "Stsx"
  | Jmp off -> jump off
  | Jeq (r, o, off) | Jne (r, o, off) | Jlt (r, o, off) | Jge (r, o, off) ->
    check_reg pc r;
    check_operand pc o;
    jump off
  | Loop _ | End -> ()  (* checked by build_loops *)
  | Emit (ok, ov) ->
    check_operand pc ok;
    check_operand pc ov
  | Drop -> effect "Drop"
  | Redirect o ->
    effect "Redirect";
    check_operand pc o
  | Ret -> ()

let verify spec =
  try
    let insns = Array.copy spec.s_insns in
    let n = Array.length insns in
    if n > max_insns then
      reject "program-size" (-1) "%d instructions exceed the %d limit" n
        max_insns;
    if spec.s_fuel <= 0 then
      reject "fuel-bound" (-1) "declared fuel %d must be positive" spec.s_fuel;
    if spec.s_fuel > max_fuel then
      reject "fuel-bound" (-1) "declared fuel %d exceeds the %d limit"
        spec.s_fuel max_fuel;
    if spec.s_scratch < 0 || spec.s_scratch > max_scratch then
      reject "scratch-oob" (-1) "scratch size %d outside 0..%d" spec.s_scratch
        max_scratch;
    let end_of, encl = build_loops insns in
    Array.iteri
      (check_insn ~scratch:spec.s_scratch ~context:spec.s_context ~encl ~n)
      insns;
    let cost = worst_case insns end_of in
    if cost > spec.s_fuel then
      reject "fuel-bound" (-1)
        "worst-case cost %s exceeds declared fuel %d"
        (if cost > max_fuel then ">" ^ string_of_int max_fuel
         else string_of_int cost)
        spec.s_fuel;
    (* Range analysis runs last so structurally broken programs keep
       their structural rules; it yields the per-site verdict table and
       rejects provably-out-of-range accesses ("range-oob"). *)
    let acc, proven = analyze_ranges insns end_of encl n in
    Ok
      {
        p_insns = insns;
        p_fuel = spec.s_fuel;
        p_scratch = spec.s_scratch;
        p_context = spec.s_context;
        p_cost = cost;
        p_end_of = end_of;
        p_accesses = acc;
        p_proven = proven;
      }
  with Reject d -> Error d

let insns p = Array.copy p.p_insns

let fuel p = p.p_fuel

let scratch_cells p = p.p_scratch

let prog_context p = p.p_context

let worst_cost p = p.p_cost

let accesses p = p.p_accesses

let bounds_at p pc =
  if pc >= 0 && pc < Array.length p.p_proven && p.p_proven.(pc) then `Proven
  else `Checked

(* {1 Interpreter} *)

(* Constructor names overlap with [insn] (Drop, Redirect); matches and
   constructions below are disambiguated by their expected type. *)
type verdict = Pass | Drop | Redirect of int | Fault of string

type run = { r_verdict : verdict; r_steps : int; r_data : bytes }

type state = {
  st_regs : int array;
  st_scratch : int array;
  st_loop_start : int array;
  st_loop_left : int array;
}

let new_state p =
  {
    st_regs = Array.make max_regs 0;
    st_scratch = Array.make (max p.p_scratch 1) 0;
    st_loop_start = Array.make max_loop_depth 0;
    st_loop_left = Array.make max_loop_depth 0;
  }

exception Fault_exn of string

let fault fmt = Printf.ksprintf (fun m -> raise (Fault_exn m)) fmt

(* Operand decode, hoisted out of [exec]: defining it inside the run
   captured [regs] and allocated a closure per block, which shows up
   once a fan-out pushes millions of blocks through an edge program. *)
let[@inline] ev regs = function Reg r -> regs.(r) | Imm k -> k

let[@kpath.intr] exec p st ~data ~len ~lblk ~emit =
  let code = p.p_insns in
  let n = Array.length code in
  let regs = st.st_regs in
  Array.fill regs 0 max_regs 0;
  let scratch = st.st_scratch in
  let lstart = st.st_loop_start and lleft = st.st_loop_left in
  let depth = ref 0 in
  let fuel = ref p.p_fuel in
  let steps = ref 0 in
  let cur = ref data in
  let copied = ref false in
  let pc = ref 0 in
  let verdict = ref Pass in
  (try
     while !pc < n do
       (* Defense in depth: the verifier proved p_cost <= p_fuel, so a
          verified program cannot exhaust this counter. *)
       if !fuel <= 0 then fault "fuel exhausted";
       decr fuel;
       incr steps;
       let here = !pc in
       incr pc;
       match code.(here) with
       | Mov (r, o) -> regs.(r) <- ev regs o
       | Add (r, o) -> regs.(r) <- regs.(r) + ev regs o
       | Sub (r, o) -> regs.(r) <- regs.(r) - ev regs o
       | Mul (r, o) -> regs.(r) <- regs.(r) * ev regs o
       | Div (r, o) ->
         let d = ev regs o in
         if d = 0 then fault "division by zero at pc %d" here;
         regs.(r) <- regs.(r) / d
       | Rem (r, o) ->
         let d = ev regs o in
         if d = 0 then fault "division by zero at pc %d" here;
         regs.(r) <- regs.(r) mod d
       | And (r, o) -> regs.(r) <- regs.(r) land ev regs o
       | Or (r, o) -> regs.(r) <- regs.(r) lor ev regs o
       | Xor (r, o) -> regs.(r) <- regs.(r) lxor ev regs o
       | Shl (r, o) -> regs.(r) <- regs.(r) lsl (ev regs o land 63)
       | Shr (r, o) -> regs.(r) <- regs.(r) lsr (ev regs o land 63)
       | Len r -> regs.(r) <- len
       | Blkno r -> regs.(r) <- lblk
       | Ldp (r, o) ->
         let off = ev regs o in
         if off < 0 || off >= len then
           fault "payload load at %d outside %d bytes (pc %d)" off len here;
         regs.(r) <- Char.code (Bytes.unsafe_get !cur off)
       | Stp (o_off, o_v) ->
         let off = ev regs o_off in
         if off < 0 || off >= len then
           fault "payload store at %d outside %d bytes (pc %d)" off len here;
         if not !copied then begin
           (* Copy on write: the input buffer is aliased across edges. *)
           cur := Bytes.copy data;
           copied := true
         end;
         Bytes.unsafe_set !cur off (Char.unsafe_chr (ev regs o_v land 0xff))
       | Lds (r, off) -> regs.(r) <- scratch.(off)
       | Sts (off, o) -> scratch.(off) <- ev regs o
       | Ldsx (r, ri) ->
         (* The verifier admits Ldsx/Stsx only over a power-of-two
            arena, so the mask keeps the access in bounds. *)
         regs.(r) <- Array.unsafe_get scratch (regs.(ri) land (p.p_scratch - 1))
       | Stsx (ri, o) ->
         Array.unsafe_set scratch
           (regs.(ri) land (p.p_scratch - 1))
           (ev regs o)
       | Jmp off -> pc := here + off
       | Jeq (r, o, off) -> if regs.(r) = ev regs o then pc := here + off
       | Jne (r, o, off) -> if regs.(r) <> ev regs o then pc := here + off
       | Jlt (r, o, off) -> if regs.(r) < ev regs o then pc := here + off
       | Jge (r, o, off) -> if regs.(r) >= ev regs o then pc := here + off
       | Loop (count, cap) ->
         let c = min (max (ev regs count) 0) cap in
         if c = 0 then pc := p.p_end_of.(here) + 1
         else begin
           lstart.(!depth) <- !pc;
           lleft.(!depth) <- c;
           incr depth
         end
       | End ->
         if !depth = 0 then fault "End with an empty loop stack (pc %d)" here;
         let d = !depth - 1 in
         lleft.(d) <- lleft.(d) - 1;
         if lleft.(d) > 0 then pc := lstart.(d) else depth := d
       | Emit (ok, ov) -> emit (ev regs ok) (ev regs ov)
       | Drop ->
         verdict := (Drop : verdict);
         pc := n
       | Redirect o ->
         verdict := (Redirect (ev regs o) : verdict);
         pc := n
       | Ret -> pc := n
     done
   with Fault_exn m -> verdict := Fault m);
  { r_verdict = !verdict; r_steps = !steps; r_data = !cur }
