type code =
  | EBADF
  | EINVAL
  | ENOENT
  | EEXIST
  | ENOSPC
  | ENOTDIR
  | EISDIR
  | ENOTEMPTY
  | ENAMETOOLONG
  | EFBIG
  | EIO
  | ESPIPE
  | EXDEV
  | EINTR

exception Unix_error of code * string

let raise_errno code call = raise (Unix_error (code, call))

let of_fs_error = function
  | Kpath_fs.Fs_error.Enoent -> ENOENT
  | Kpath_fs.Fs_error.Eexist -> EEXIST
  | Kpath_fs.Fs_error.Enospc -> ENOSPC
  | Kpath_fs.Fs_error.Enotdir -> ENOTDIR
  | Kpath_fs.Fs_error.Eisdir -> EISDIR
  | Kpath_fs.Fs_error.Enotempty -> ENOTEMPTY
  | Kpath_fs.Fs_error.Enametoolong -> ENAMETOOLONG
  | Kpath_fs.Fs_error.Efbig -> EFBIG
  | Kpath_fs.Fs_error.Einval _ -> EINVAL
  | Kpath_fs.Fs_error.Eio _ -> EIO

let to_string = function
  | EBADF -> "EBADF"
  | EINVAL -> "EINVAL"
  | ENOENT -> "ENOENT"
  | EEXIST -> "EEXIST"
  | ENOSPC -> "ENOSPC"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | ENOTEMPTY -> "ENOTEMPTY"
  | ENAMETOOLONG -> "ENAMETOOLONG"
  | EFBIG -> "EFBIG"
  | EIO -> "EIO"
  | ESPIPE -> "ESPIPE"
  | EXDEV -> "EXDEV"
  | EINTR -> "EINTR"

let pp fmt c = Format.pp_print_string fmt (to_string c)

let () =
  Printexc.register_printer (function
    | Unix_error (code, call) -> Some (Printf.sprintf "Unix_error(%s, %s)" (to_string code) call)
    | _ -> None)
