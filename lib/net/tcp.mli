(** TCP: a reliable byte-stream transport.

    A deliberately small but real TCP over {!Netif}: three-way
    handshake, MSS segmentation, cumulative acknowledgements, a sliding
    window bounded by the receiver's advertised buffer space,
    out-of-order segment buffering, go-back-N retransmission on a
    backed-off timeout, and FIN teardown. Enough to serve files over
    lossy links — the workload for which splice's file-to-socket path
    later became famous as [sendfile(2)].

    The send side keeps the unacknowledged stream as a chain of chunks:
    bytes copied in through {!send}/{!send_async} live in a ring
    buffer, while {!send_view} references a shared refcounted
    {!Kpath_sim.Payload.t} directly — segments built from a view carry
    it zero-copy all the way onto the wire, so a block fanned out to a
    million connections is stored once. A payload's references drop as
    its bytes are acknowledged; the last reference frees it.

    Connection state lives in per-net demultiplex tables held in
    domain-local storage, so independent simulation shards in different
    domains never share TCP state.

    Blocking operations ({!accept}, {!connect}, {!send}, {!recv},
    {!close}) must run in a process coroutine; the callback variants
    ({!on_accept}, {!connect_async}, {!send_async}, {!send_view},
    {!set_rcv_hook}, {!shutdown}) are interrupt-context entry points
    that need no process at all — the shape a million-client fan-out
    requires. *)

open Kpath_sim

type listener
(** A passive (listening) endpoint. *)

type conn
(** One connection. *)

type addr = { a_if : int; a_port : int }
(** Interface id + port (same shape as {!Udp.addr}). *)

val protocol_number : int
(** 6, the IP protocol number used on {!Netif} frames. *)

val header_bytes : int
(** Bytes of TCP header carried in each frame payload. *)

val mss : Netif.net -> int
(** Maximum segment payload for a given network's MTU. *)

val listen :
  Netif.t -> port:int -> ?backlog:int -> ?stats:Stats.t -> unit -> listener
(** Bind a listening port. [stats] is shared by every accepted
    connection (a fan-out server's million conns need not each own a
    registry); by default each accepted connection gets a private one.
    Raises [Invalid_argument] if the port is in use on this
    interface. *)

val accept : listener -> conn
(** Block until a connection has completed its handshake. Process
    context. *)

val on_accept : listener -> (conn -> unit) -> unit
(** Callback-mode accept: every incoming connection is handed to the
    callback at SYN time (interrupt context), bypassing the backlog
    queue entirely. *)

val connect :
  Netif.t -> port:int -> dst:addr -> ?rcvbuf:int -> ?sndbuf:int -> unit -> conn
(** Active open: block until established (SYN retransmitted on loss).
    Process context. Raises [Failure] after too many SYN timeouts. *)

val connect_async :
  Netif.t ->
  port:int ->
  dst:addr ->
  ?rcvbuf:int ->
  ?sndbuf:int ->
  ?stats:Stats.t ->
  ?rcv_hook:(bytes -> pos:int -> len:int -> unit) ->
  unit ->
  conn
(** Active open without blocking: sends the SYN and returns the
    connection in [syn_sent]; use {!on_established} to learn when the
    handshake completes. [stats] shares a registry across connections;
    [rcv_hook] installs the zero-copy receive hook from the start (see
    {!set_rcv_hook}). *)

val on_established : conn -> (unit -> unit) -> unit
(** Run [k] once the handshake completes (immediately if it already
    has; never, if the connection dies first). *)

val send : conn -> bytes -> pos:int -> len:int -> unit
(** Queue [len] bytes on the stream, blocking while the send buffer is
    full (i.e. until the peer's window opens). Process context. Raises
    [Invalid_argument] on a closed connection. *)

val send_async : conn -> bytes -> pos:int -> len:int -> (unit -> unit) -> unit
(** Like {!send} but callback-based: [k] fires (interrupt context) once
    every byte has been accepted into the send buffer. Writers are
    admitted in FIFO order. The splice sink. *)

val send_view : conn -> Payload.t -> pos:int -> len:int -> (unit -> unit) -> unit
(** Zero-copy {!send_async}: queue [len] bytes of [pl] on the stream by
    reference — no copy into the send buffer, segments carry views of
    [pl] onto the wire, and [pl] stays referenced until the peer has
    acknowledged every byte. Back-pressure and [k] behave exactly as in
    {!send_async}: the same send-buffer budget gates admission.
    Segments never span a view boundary, so wire segmentation follows
    block boundaries rather than pure MSS packing. *)

val recv : conn -> bytes -> pos:int -> len:int -> int
(** Block for at least one byte of in-order data; returns the count
    copied, or [0] at end of stream (peer closed). Process context. *)

val set_rcv_hook : conn -> (bytes -> pos:int -> len:int -> unit) option -> unit
(** Install (or clear) the zero-copy receive hook: in-order data is
    handed to the hook the moment it arrives — [len] bytes at [pos],
    valid only during the call (frames recycle when it returns) — and
    is never buffered, so the advertised window never closes and
    {!recv} must not be used. Raises [Invalid_argument] if buffered
    data is pending. *)

val shutdown : conn -> unit
(** Asynchronous half-close: mark the stream finished; the FIN goes out
    once queued data drains. Never blocks — the callback-driven
    counterpart of {!close}. Further sends raise. *)

val close : conn -> unit
(** Half-close and linger: send FIN after all queued data and block
    until the peer has acknowledged both. Process context. Further
    {!send}s raise. *)

val state_name : conn -> string
(** Diagnostic: ["syn_sent"], ["established"], ["fin_wait"], ["closed"]... *)

val local_addr : conn -> addr

val remote_addr : conn -> addr

val bytes_sent : conn -> int
(** Stream bytes accepted from the application so far. *)

val bytes_acked : conn -> int
(** Stream bytes the peer has acknowledged. *)

val bytes_received : conn -> int
(** In-order stream bytes received (delivered to {!recv} buffers or the
    receive hook). *)

val retransmits : conn -> int
(** Segments retransmitted (loss recovery). *)

val cwnd : conn -> int
(** Current congestion window, bytes (starts at 2 MSS, slow start /
    AIMD thereafter). *)

val srtt : conn -> float option
(** Smoothed round-trip time in seconds, once at least one sample has
    been taken. *)

val rto : conn -> Time.span
(** Current retransmission timeout. *)

val stats : conn -> Stats.t
(** [tcp.segs_out], [tcp.segs_in], [tcp.segs_data_in], [tcp.retx],
    [tcp.fast_retx], [tcp.syn_retx]. *)
