open Kpath_sim
open Kpath_proc

type addr = { a_if : int; a_port : int }

let protocol_number = 6

let header_bytes = 21

let mss net = Netif.mtu net - header_bytes

(* {1 Sliding byte buffer}

   A circular window of the byte stream supporting append at the tail,
   random peeks, and drop-front (on acknowledgement). Being a ring, a
   buffer that sits near-full (a send buffer against a slow receiver)
   costs one blit of the appended bytes per append — never a whole-
   buffer compaction — and its capacity tracks the peak occupancy
   instead of growing with the stream. *)
module Sbuf = struct
  type t = { mutable data : Bytes.t; mutable start : int; mutable len : int }

  (* Storage is allocated lazily, starting empty: a connection that
     only ever sends zero-copy payload views (or whose reader drains as
     data lands) never materialises a ring at all — at a million
     connections the rings would otherwise dominate the heap. *)
  let create _cap = { data = Bytes.empty; start = 0; len = 0 }

  let length b = b.len

  let grow b need =
    let cap = Bytes.length b.data in
    if need > cap then begin
      let ndata = Bytes.create (max need (max 64 (2 * cap))) in
      let tail = min b.len (cap - b.start) in
      Bytes.blit b.data b.start ndata 0 tail;
      Bytes.blit b.data 0 ndata tail (b.len - tail);
      b.data <- ndata;
      b.start <- 0
    end

  let append b src pos n =
    grow b (b.len + n);
    let cap = Bytes.length b.data in
    let tpos = b.start + b.len in
    let tpos = if tpos >= cap then tpos - cap else tpos in
    let first = min n (cap - tpos) in
    Bytes.blit src pos b.data tpos first;
    if n > first then Bytes.blit src (pos + first) b.data 0 (n - first);
    b.len <- b.len + n

  (* Copy [n] bytes at logical offset [off] into [dst] at [dpos]. *)
  let peek b ~off ~n dst dpos =
    if off < 0 || n < 0 || off + n > b.len then invalid_arg "Sbuf.peek";
    let cap = Bytes.length b.data in
    let p = b.start + off in
    let p = if p >= cap then p - cap else p in
    let first = min n (cap - p) in
    Bytes.blit b.data p dst dpos first;
    if n > first then Bytes.blit b.data 0 dst (dpos + first) (n - first)

  let drop b n =
    if n < 0 || n > b.len then invalid_arg "Sbuf.drop";
    let s = b.start + n in
    b.start <- (if s >= Bytes.length b.data then s - Bytes.length b.data else s);
    b.len <- b.len - n;
    if b.len = 0 then b.start <- 0
end

(* {1 Wire format}

   Frame payload = 21-byte header + data:
   byte 0: flags (1 SYN, 2 ACK, 4 FIN); 1-8: seq; 9-16: ack; 17-20: wnd.
   Data rides either inline after the header or as the frame's shared
   payload view (zero-copy fan-out segments). *)

let f_syn = 1
let f_ack = 2
let f_fin = 4

let set_header b ~flags ~seq ~ack ~wnd =
  Bytes.set b 0 (Char.chr flags);
  Bytes.set_int64_le b 1 (Int64.of_int seq);
  Bytes.set_int64_le b 9 (Int64.of_int ack);
  Bytes.set_int32_le b 17 (Int32.of_int wnd)

(* A decoded segment aliases the frame's buffers rather than copying
   the data out: [g_len] data bytes live at [g_doff] in [g_data] —
   the frame payload after the header, or the shared payload view.
   Frames recycle when the receive upcall returns, so a segment is
   only valid during input processing; whatever is kept is copied
   (receive queue, out-of-order table) or folded on the spot (receive
   hook). One mutable scratch segment per demux table is reused for
   every arrival — input processing is synchronous and never nests. *)
type seg = {
  mutable g_flags : int;
  mutable g_seq : int;
  mutable g_ack : int;
  mutable g_wnd : int;
  mutable g_data : bytes;
  mutable g_doff : int;
  mutable g_len : int;
}

let decode_into (g : seg) (fr : Netif.frame) =
  if fr.Netif.f_len < header_bytes then false
  else begin
    let payload = fr.Netif.f_payload in
    g.g_flags <- Char.code (Bytes.get payload 0);
    g.g_seq <- Int64.to_int (Bytes.get_int64_le payload 1);
    g.g_ack <- Int64.to_int (Bytes.get_int64_le payload 9);
    g.g_wnd <- Int32.to_int (Bytes.get_int32_le payload 17);
    if fr.Netif.f_pl_len > 0 then begin
      g.g_data <- Payload.data fr.Netif.f_pl;
      g.g_doff <- fr.Netif.f_pl_off;
      g.g_len <- fr.Netif.f_pl_len
    end
    else begin
      g.g_data <- payload;
      g.g_doff <- header_bytes;
      g.g_len <- fr.Netif.f_len - header_bytes
    end;
    true
  end

(* {1 Connections} *)

type state = Syn_sent | Syn_rcvd | Established | Fin_wait | Closed

(* An application write waiting for send-buffer space: either bytes to
   copy in ([pw_pl = Payload.none]) or a retained zero-copy view. *)
type pending_write = {
  pw_data : bytes;
  pw_pl : Payload.t;
  mutable pw_pos : int;
  mutable pw_len : int;
  pw_done : unit -> unit;
}

(* The send side's sequence space [snd_una, accepted) is a chain of
   chunks: {e ring} chunks whose bytes live (in stream order) in the
   sndbuf ring, and {e view} chunks referencing a shared refcounted
   payload — no private copy, however many connections send the same
   block. Acknowledgements shrink the chain from the front (partial
   acks advance a view's offset; its reference drops only when the
   chunk fully drains), so the head always starts at [snd_una] and
   the ring always holds exactly the unacknowledged ring bytes. *)
type chunk = {
  mutable ck_ring : bool;
  mutable ck_len : int;
  mutable ck_pl : Payload.t;  (* Payload.none for ring chunks *)
  mutable ck_off : int;
  mutable ck_next : chunk;
}

let[@kpath.domainsafe
     "list sentinel: compared by identity, no field is ever written"] rec
    nil_chunk =
  {
    ck_ring = true;
    ck_len = 0;
    ck_pl = Payload.none;
    ck_off = 0;
    ck_next = nil_chunk;
  }

type conn = {
  nif : Netif.t;
  net : Netif.net;
  engine : Engine.t;
  tbl : tbl;
  lport : int;
  rif : int;
  rport : int;
  mutable st : state;
  (* send side: the stream interval [snd_una, accepted) lives in the
     chunk chain (ring bytes in sndbuf, view bytes in shared payloads) *)
  sndbuf_cap : int;
  sndbuf : Sbuf.t;
  mutable snd_ch_head : chunk;
  mutable snd_ch_tail : chunk;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable accepted : int; (* stream bytes taken from the application *)
  mutable peer_wnd : int;
  mutable app_closed : bool;
  mutable fin_seq : int option; (* our FIN's sequence position *)
  pending : pending_write Queue.t;
  (* receive side *)
  rcvbuf_cap : int;
  rcvq : Sbuf.t;
  mutable rcv_nxt : int;
  mutable rcv_hook : (bytes -> pos:int -> len:int -> unit) option;
  mutable ooo : (int, bytes) Hashtbl.t option; (* lazy: loss is rare *)
  mutable fin_at : int option; (* peer FIN position in its stream *)
  mutable fin_taken : bool;
  mutable rcv_waiters : (unit -> unit) list;
  mutable est_waiters : (unit -> unit) list;
  mutable last_wnd_sent : int;
  (* congestion control *)
  mutable cwnd : int;
  mutable ssthresh : int;
  (* RTT estimation (RFC 6298 shape); one timed segment at a time,
     Karn's rule: samples are discarded across retransmissions *)
  mutable srtt : float; (* seconds; negative = no sample yet *)
  mutable rttvar : float;
  mutable rtt_seq : int; (* sequence the running sample will be acked at *)
  mutable rtt_sent : Time.t;
  mutable rtt_valid : bool;
  (* retransmission *)
  mutable rto : Time.span;
  mutable timer : Engine.handle option;
  mutable timer_cb : unit -> unit; (* persistent timeout closure *)
  mutable retransmits : int;
  mutable dup_acks : int;
  mutable syn_tries : int;
  stats : Stats.t;
  c_segs_out : Stats.counter;
  c_segs_in : Stats.counter;
  c_segs_data_in : Stats.counter;
  c_retx : Stats.counter;
}

and listener = {
  l_nif : Netif.t;
  l_port : int;
  l_backlog : int;
  l_stats : Stats.t option;
  l_queue : conn Queue.t;
  mutable l_on_accept : (conn -> unit) option;
  mutable l_waiters : (unit -> unit) list;
}

(* Per-net demux tables, keyed by the globally unique net id and held
   in domain-local storage: each simulation shard owns its nets
   outright, so nothing TCP-shaped is shared across domains. *)
and tbl = {
  listeners : (int * int, listener) Hashtbl.t; (* lif, port *)
  conns : (int * int * int * int, conn) Hashtbl.t; (* lif, lport, rif, rport *)
  scratch : seg;
  mutable rx_handler : Netif.frame -> unit; (* one closure per net *)
  mutable free_chunks : chunk; (* chunk slab, recycled through acks *)
}

let tables_key : (int, tbl) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let base_rto = Time.ms 200

let max_rto = Time.sec 2

let rwnd c = max 0 (c.rcvbuf_cap - Sbuf.length c.rcvq)

let min_rto = Time.ms 50

(* RFC 6298-shaped RTO from a fresh RTT sample. *)
let rtt_sample c sample_s =
  if c.srtt < 0.0 then begin
    c.srtt <- sample_s;
    c.rttvar <- sample_s /. 2.0
  end
  else begin
    c.rttvar <- (0.75 *. c.rttvar) +. (0.25 *. Float.abs (c.srtt -. sample_s));
    c.srtt <- (0.875 *. c.srtt) +. (0.125 *. sample_s)
  end;
  let rto_s = c.srtt +. (4.0 *. c.rttvar) in
  c.rto <- Time.max min_rto (Time.min max_rto (Time.of_sec_f rto_s))

let in_flight c = c.snd_nxt - c.snd_una

let unsent c = c.accepted - c.snd_nxt

(* Unacknowledged data bytes (the chunk chain's total length); the FIN
   occupies one virtual position past these. *)
let unacked_data c = c.accepted - c.snd_una

(* {1 Chunk chain} *)

let alloc_chunk (tbl : tbl) =
  let ck = tbl.free_chunks in
  if ck != nil_chunk then begin
    tbl.free_chunks <- ck.ck_next;
    ck.ck_next <- nil_chunk;
    ck
  end
  else
    { ck_ring = true; ck_len = 0; ck_pl = Payload.none; ck_off = 0;
      ck_next = nil_chunk }

let free_chunk (tbl : tbl) ck =
  ck.ck_ring <- true;
  ck.ck_len <- 0;
  ck.ck_pl <- Payload.none;
  ck.ck_off <- 0;
  ck.ck_next <- tbl.free_chunks;
  tbl.free_chunks <- ck

let chain_push c ck =
  ck.ck_next <- nil_chunk;
  if c.snd_ch_tail == nil_chunk then begin
    c.snd_ch_head <- ck;
    c.snd_ch_tail <- ck
  end
  else begin
    c.snd_ch_tail.ck_next <- ck;
    c.snd_ch_tail <- ck
  end

(* Append [n] accepted ring bytes: extend the tail chunk when it is
   already a ring chunk (adjacent ring bytes are contiguous in the
   sndbuf, so the copy path segments exactly as it did before chunks
   existed). *)
let chain_append_ring c n =
  if c.snd_ch_tail != nil_chunk && c.snd_ch_tail.ck_ring then
    c.snd_ch_tail.ck_len <- c.snd_ch_tail.ck_len + n
  else begin
    let ck = alloc_chunk c.tbl in
    ck.ck_ring <- true;
    ck.ck_len <- n;
    chain_push c ck
  end

let chain_append_view c pl ~off ~len =
  let ck = alloc_chunk c.tbl in
  Payload.retain pl;
  ck.ck_ring <- false;
  ck.ck_pl <- pl;
  ck.ck_off <- off;
  ck.ck_len <- len;
  chain_push c ck

(* Acknowledge [adv] data bytes: shrink the chain from the front.
   Partially covered chunks shrink in place (acked ranges are never
   retransmitted — go-back-N resends from [snd_una]); a fully drained
   view chunk drops its payload reference, exactly once. *)
let rec chain_ack c adv =
  if adv > 0 then begin
    let ck = c.snd_ch_head in
    let n = min adv ck.ck_len in
    if ck.ck_ring then Sbuf.drop c.sndbuf n else ck.ck_off <- ck.ck_off + n;
    ck.ck_len <- ck.ck_len - n;
    if ck.ck_len = 0 then begin
      c.snd_ch_head <- ck.ck_next;
      if c.snd_ch_head == nil_chunk then c.snd_ch_tail <- nil_chunk;
      Payload.release ck.ck_pl;
      free_chunk c.tbl ck
    end;
    chain_ack c (adv - n)
  end

(* Drop every chunk (connection teardown on abort paths). *)
let chain_clear c =
  let rec go ck =
    if ck != nil_chunk then begin
      let next = ck.ck_next in
      Payload.release ck.ck_pl;
      free_chunk c.tbl ck;
      go next
    end
  in
  go c.snd_ch_head;
  c.snd_ch_head <- nil_chunk;
  c.snd_ch_tail <- nil_chunk

(* {1 Segment transmission} *)

(* Control segment (SYN / pure ACK / FIN): header only, written into
   the pooled frame's scratch buffer — no allocation. *)
let tx_ctrl c ~flags ~seq =
  let wnd = rwnd c in
  c.last_wnd_sent <- wnd;
  let fr = Netif.alloc_frame c.net in
  set_header fr.Netif.f_hdr ~flags ~seq ~ack:c.rcv_nxt ~wnd;
  fr.Netif.f_len <- header_bytes;
  fr.Netif.f_dst <- c.rif;
  fr.Netif.f_proto <- protocol_number;
  fr.Netif.f_port_src <- c.lport;
  fr.Netif.f_port_dst <- c.rport;
  Stats.incr c.c_segs_out;
  Netif.transmit c.nif fr

(* Data segment starting at stream position [seq] (>= snd_una), at most
   [len] bytes: locate the covering chunk and send up to the chunk
   boundary — a view chunk ships as a zero-copy frame view; a ring
   chunk is peeked from the sndbuf into a fresh buffer after the
   header (one copy, as before). Returns the bytes actually sent. *)
let tx_data c ~seq ~len =
  let wnd = rwnd c in
  c.last_wnd_sent <- wnd;
  (* Walk to the chunk covering [seq]; the chain head starts at
     snd_una, and live chains are short (window / segment size). *)
  let rec locate ck skip ring_off =
    if ck == nil_chunk then (nil_chunk, 0, 0)
    else if skip < ck.ck_len then (ck, skip, ring_off)
    else
      locate ck.ck_next (skip - ck.ck_len)
        (if ck.ck_ring then ring_off + ck.ck_len else ring_off)
  in
  let ck, inoff, ring_off = locate c.snd_ch_head (seq - c.snd_una) 0 in
  if ck == nil_chunk then 0
  else begin
    let n = min len (ck.ck_len - inoff) in
    let fr = Netif.alloc_frame c.net in
    if ck.ck_ring then begin
      let b = Bytes.create (header_bytes + n) in
      set_header b ~flags:f_ack ~seq ~ack:c.rcv_nxt ~wnd;
      Sbuf.peek c.sndbuf ~off:(ring_off + inoff) ~n b header_bytes;
      fr.Netif.f_payload <- b;
      fr.Netif.f_len <- header_bytes + n
    end
    else begin
      set_header fr.Netif.f_hdr ~flags:f_ack ~seq ~ack:c.rcv_nxt ~wnd;
      fr.Netif.f_len <- header_bytes;
      Netif.frame_set_view fr ck.ck_pl ~off:(ck.ck_off + inoff) ~len:n
    end;
    fr.Netif.f_dst <- c.rif;
    fr.Netif.f_proto <- protocol_number;
    fr.Netif.f_port_src <- c.lport;
    fr.Netif.f_port_dst <- c.rport;
    Stats.incr c.c_segs_out;
    Netif.transmit c.nif fr;
    n
  end

let send_pure_ack c = tx_ctrl c ~flags:f_ack ~seq:0

(* {1 Timers} *)

let stop_timer c =
  match c.timer with
  | Some h ->
    Engine.cancel c.engine h;
    c.timer <- None
  | None -> ()

let rec arm_timer c =
  if c.timer = None then
    c.timer <- Some (Engine.schedule_after c.engine c.rto c.timer_cb)

and on_timeout c =
  match c.st with
  | Closed -> ()
  | Syn_sent ->
    c.syn_tries <- c.syn_tries + 1;
    if c.syn_tries > 8 then begin
      c.st <- Closed;
      wake_established c
    end
    else begin
      Stats.incr (Stats.counter c.stats "tcp.syn_retx");
      tx_ctrl c ~flags:f_syn ~seq:0;
      c.rto <- Time.min max_rto (Time.scale c.rto 2);
      arm_timer c
    end
  | Syn_rcvd ->
    tx_ctrl c ~flags:(f_syn lor f_ack) ~seq:0;
    c.rto <- Time.min max_rto (Time.scale c.rto 2);
    arm_timer c
  | Established | Fin_wait ->
    if in_flight c > 0 then begin
      c.retransmits <- c.retransmits + 1;
      Stats.incr c.c_retx;
      (* Timeout: multiplicative decrease to one segment. *)
      let seg = mss c.net in
      c.ssthresh <- max (in_flight c / 2) (2 * seg);
      c.cwnd <- seg;
      c.rtt_valid <- false;
      (* Go-back-N restart: resend the first unacknowledged segment. *)
      let n = min (min (unacked_data c) (in_flight c)) (mss c.net) in
      if n > 0 then ignore (tx_data c ~seq:c.snd_una ~len:n)
      else begin
        (* Only the FIN is outstanding. *)
        match c.fin_seq with
        | Some fs when c.snd_una >= fs ->
          tx_ctrl c ~flags:(f_fin lor f_ack) ~seq:fs
        | _ -> ()
      end;
      c.rto <- Time.min max_rto (Time.scale c.rto 2);
      arm_timer c
    end

and wake_established c =
  let ws = c.est_waiters in
  c.est_waiters <- [];
  List.iter (fun w -> w ()) ws

(* {1 Send machinery} *)

let wake_readers c =
  let ws = c.rcv_waiters in
  c.rcv_waiters <- [];
  List.iter (fun w -> w ()) ws

(* Push out whatever the flow-control window allows. The effective
   window has a floor of one byte: with a zero peer window we keep one
   probe byte in flight, and the retransmission timer carries it until
   the peer reopens (classic persist behaviour, simplified). *)
let rec pump c =
  if c.st = Established || c.st = Fin_wait then begin
    let seg_mss = mss c.net in
    let progress = ref true in
    while !progress do
      progress := false;
      let wnd = max (min c.peer_wnd c.cwnd) 1 in
      let can = min (unsent c) (min (wnd - in_flight c) seg_mss) in
      if can > 0 then begin
        (* Time this segment if no sample is running (Karn's rule:
           retransmitted ranges never produce samples). *)
        let sent = tx_data c ~seq:c.snd_nxt ~len:can in
        if sent > 0 then begin
          if not c.rtt_valid then begin
            c.rtt_valid <- true;
            c.rtt_seq <- c.snd_nxt + sent;
            c.rtt_sent <- Engine.now c.engine
          end;
          c.snd_nxt <- c.snd_nxt + sent;
          progress := true
        end
      end
    done;
    (* FIN once every byte is out. *)
    (if c.app_closed && unsent c = 0 && c.fin_seq = None then begin
       c.fin_seq <- Some c.snd_nxt;
       c.snd_nxt <- c.snd_nxt + 1;
       tx_ctrl c ~flags:(f_fin lor f_ack) ~seq:(c.snd_nxt - 1)
     end);
    if in_flight c > 0 then arm_timer c
  end

and admit_writers c =
  let progressing = ref true in
  while !progressing && not (Queue.is_empty c.pending) do
    let space = c.sndbuf_cap - unacked_data c in
    if space <= 0 then progressing := false
    else begin
      let p = Queue.peek c.pending in
      let n = min space p.pw_len in
      if Payload.is_none p.pw_pl then begin
        Sbuf.append c.sndbuf p.pw_data p.pw_pos n;
        chain_append_ring c n
      end
      else chain_append_view c p.pw_pl ~off:p.pw_pos ~len:n;
      c.accepted <- c.accepted + n;
      p.pw_pos <- p.pw_pos + n;
      p.pw_len <- p.pw_len - n;
      if p.pw_len = 0 then begin
        ignore (Queue.pop c.pending);
        Payload.release p.pw_pl;
        p.pw_done ()
      end
    end
  done;
  pump c

(* {1 Input processing} *)

(* Resend the first unacknowledged segment (fast retransmit / RTO). *)
let retransmit_head c =
  c.retransmits <- c.retransmits + 1;
  Stats.incr c.c_retx;
  let n = min (min (unacked_data c) (in_flight c)) (mss c.net) in
  if n > 0 then ignore (tx_data c ~seq:c.snd_una ~len:n)
  else
    match c.fin_seq with
    | Some fs when c.snd_una >= fs -> tx_ctrl c ~flags:(f_fin lor f_ack) ~seq:fs
    | _ -> ()

let process_ack c (g : seg) =
  if g.g_flags land f_ack <> 0 then begin
    if g.g_ack > c.snd_una then begin
      c.dup_acks <- 0;
      let advance = g.g_ack - c.snd_una in
      (* RTT sample once the timed segment is covered. *)
      if c.rtt_valid && g.g_ack >= c.rtt_seq then begin
        c.rtt_valid <- false;
        rtt_sample c (Time.to_sec_f (Time.diff (Engine.now c.engine) c.rtt_sent))
      end;
      (* Congestion window growth. *)
      let seg = mss c.net in
      (if c.cwnd < c.ssthresh then c.cwnd <- c.cwnd + min advance seg
       else c.cwnd <- c.cwnd + max 1 (seg * seg / c.cwnd));
      c.cwnd <- min c.cwnd (8 * 1024 * 1024);
      (* The FIN occupies one virtual position past the data. *)
      chain_ack c (min advance (unacked_data c));
      c.snd_una <- g.g_ack;
      stop_timer c;
      if in_flight c > 0 then arm_timer c;
      (match c.fin_seq with
       | Some fs when c.snd_una > fs && c.st = Fin_wait ->
         (* Our FIN is acknowledged; sending side is done. *)
         if c.fin_taken then c.st <- Closed
       | _ -> ());
      wake_readers c (* close() waits on rcv_waiters for the fin ack *)
    end
    else if g.g_ack = c.snd_una && in_flight c > 0 then begin
      (* Duplicate ACK: three in a row trigger fast retransmit. *)
      c.dup_acks <- c.dup_acks + 1;
      if c.dup_acks = 3 then begin
        c.dup_acks <- 0;
        Stats.incr (Stats.counter c.stats "tcp.fast_retx");
        (* Fast recovery: halve the window. *)
        let seg = mss c.net in
        c.ssthresh <- max (in_flight c / 2) (2 * seg);
        c.cwnd <- c.ssthresh;
        c.rtt_valid <- false;
        retransmit_head c;
        stop_timer c;
        arm_timer c
      end
    end;
    c.peer_wnd <- g.g_wnd;
    admit_writers c
  end
  else c.peer_wnd <- g.g_wnd

let ooo_table c =
  match c.ooo with
  | Some h -> h
  | None ->
    let h = Hashtbl.create 8 in
    c.ooo <- Some h;
    h

(* Hand [len] in-order bytes to the connection: the receive hook folds
   them on the spot (nothing is buffered, the window never closes), or
   they are copied into the receive queue as space allows. Returns the
   bytes consumed. *)
let consume_data c data ~pos ~len =
  match c.rcv_hook with
  | Some hook ->
    c.rcv_nxt <- c.rcv_nxt + len;
    hook data ~pos ~len;
    len
  | None ->
    let space = c.rcvbuf_cap - Sbuf.length c.rcvq in
    let n = min space len in
    if n > 0 then begin
      Sbuf.append c.rcvq data pos n;
      c.rcv_nxt <- c.rcv_nxt + n
    end;
    n

(* Deliver any out-of-order segments the last in-order arrival
   unlocked. *)
let rec drain_ooo c =
  match c.ooo with
  | None -> ()
  | Some h -> (
    match Hashtbl.find_opt h c.rcv_nxt with
    | Some data ->
      let seq = c.rcv_nxt in
      let n = consume_data c data ~pos:0 ~len:(Bytes.length data) in
      if n = Bytes.length data then begin
        Hashtbl.remove h seq;
        drain_ooo c
      end
    | None -> ())

let check_fin c =
  match c.fin_at with
  | Some fs when c.rcv_nxt = fs && not c.fin_taken ->
    c.fin_taken <- true;
    c.rcv_nxt <- c.rcv_nxt + 1;
    (match c.fin_seq with
     | Some our_fs when c.snd_una > our_fs -> c.st <- Closed
     | _ -> ());
    wake_readers c
  | _ -> ()

let process_data c (g : seg) =
  let len = g.g_len in
  (if len > 0 then begin
     Stats.incr c.c_segs_data_in;
     if g.g_seq = c.rcv_nxt then begin
       let n = consume_data c g.g_data ~pos:g.g_doff ~len in
       if n > 0 then begin
         drain_ooo c;
         wake_readers c
       end
     end
     else if
       g.g_seq > c.rcv_nxt
       && g.g_seq - c.rcv_nxt < c.rcvbuf_cap
       && (match c.ooo with Some h -> Hashtbl.length h < 64 | None -> true)
     then
       (* Out-of-order (rare): copy the data, the hold can be long and
          the frame recycles when this upcall returns. *)
       Hashtbl.replace (ooo_table c) g.g_seq (Bytes.sub g.g_data g.g_doff len)
   end);
  (if g.g_flags land f_fin <> 0 then begin
     let fin_pos = g.g_seq + len in
     (match c.fin_at with None -> c.fin_at <- Some fin_pos | Some _ -> ())
   end);
  check_fin c;
  if len > 0 || g.g_flags land f_fin <> 0 then send_pure_ack c

let conn_input c (g : seg) =
  Stats.incr c.c_segs_in;
  match c.st with
  | Syn_sent ->
    if g.g_flags land f_syn <> 0 && g.g_flags land f_ack <> 0 then begin
      c.st <- (if c.app_closed then Fin_wait else Established);
      stop_timer c;
      c.rto <- base_rto;
      c.peer_wnd <- g.g_wnd;
      send_pure_ack c;
      wake_established c
    end
  | Syn_rcvd ->
    (* Anything from the peer confirms establishment; a stream already
       shut down goes straight to draining-toward-FIN. *)
    c.st <- (if c.app_closed then Fin_wait else Established);
    stop_timer c;
    c.rto <- base_rto;
    c.peer_wnd <- g.g_wnd;
    process_ack c g;
    process_data c g;
    wake_established c
  | Established | Fin_wait ->
    process_ack c g;
    process_data c g
  | Closed -> ()

(* {1 Construction and demux} *)

let make_conn ~tbl ~nif ~lport ~rif ~rport ~rcvbuf ~sndbuf ~stats ~st =
  let net = Netif.net nif in
  let stats = match stats with Some s -> s | None -> Stats.create () in
  let seg_mss = mss net in
  let c = {
    nif;
    net;
    engine = Netif.engine net;
    tbl;
    lport;
    rif;
    rport;
    st;
    sndbuf_cap = sndbuf;
    sndbuf = Sbuf.create sndbuf;
    snd_ch_head = nil_chunk;
    snd_ch_tail = nil_chunk;
    snd_una = 0;
    snd_nxt = 0;
    accepted = 0;
    peer_wnd = 0;
    app_closed = false;
    fin_seq = None;
    pending = Queue.create ();
    rcvbuf_cap = rcvbuf;
    rcvq = Sbuf.create rcvbuf;
    rcv_nxt = 0;
    rcv_hook = None;
    ooo = None;
    fin_at = None;
    fin_taken = false;
    rcv_waiters = [];
    est_waiters = [];
    last_wnd_sent = rcvbuf;
    cwnd = 2 * seg_mss;
    ssthresh = 64 * 1024;
    srtt = -1.0;
    rttvar = 0.0;
    rtt_seq = 0;
    rtt_sent = Time.zero;
    rtt_valid = false;
    rto = base_rto;
    timer = None;
    timer_cb = (fun () -> ());
    retransmits = 0;
    dup_acks = 0;
    syn_tries = 0;
    stats;
    c_segs_out = Stats.counter stats "tcp.segs_out";
    c_segs_in = Stats.counter stats "tcp.segs_in";
    c_segs_data_in = Stats.counter stats "tcp.segs_data_in";
    c_retx = Stats.counter stats "tcp.retx";
  }
  in
  c.timer_cb <-
    (fun () ->
      c.timer <- None;
      on_timeout c);
  c

let default_buf = 64 * 1024

let demux tbl (frame : Netif.frame) g =
  let key =
    ( frame.Netif.f_dst,
      frame.Netif.f_port_dst,
      frame.Netif.f_src,
      frame.Netif.f_port_src )
  in
  match Hashtbl.find_opt tbl.conns key with
  | Some c -> conn_input c g
  | None ->
    if g.g_flags land f_syn <> 0 && g.g_flags land f_ack = 0 then begin
      match
        Hashtbl.find_opt tbl.listeners (frame.Netif.f_dst, frame.Netif.f_port_dst)
      with
      | Some l
        when (match l.l_on_accept with
              | Some _ -> true
              | None -> Queue.length l.l_queue < l.l_backlog) ->
        let c =
          make_conn ~tbl ~nif:l.l_nif ~lport:frame.Netif.f_port_dst
            ~rif:frame.Netif.f_src ~rport:frame.Netif.f_port_src
            ~rcvbuf:default_buf ~sndbuf:default_buf ~stats:l.l_stats
            ~st:Syn_rcvd
        in
        c.peer_wnd <- g.g_wnd;
        Hashtbl.replace tbl.conns key c;
        (match l.l_on_accept with
         | Some fn -> fn c
         | None -> Queue.push c l.l_queue);
        tx_ctrl c ~flags:(f_syn lor f_ack) ~seq:0;
        arm_timer c;
        let ws = l.l_waiters in
        l.l_waiters <- [];
        List.iter (fun w -> w ()) ws
      | Some _ | None -> ()
    end

(* One demux table (and one shared receive closure) per net, created on
   first use in the owning domain. *)
let table_for nif =
  let tables = Domain.DLS.get tables_key in
  let nid = Netif.net_id (Netif.net nif) in
  let tbl =
    match Hashtbl.find_opt tables nid with
    | Some tbl -> tbl
    | None ->
      let tbl =
        {
          listeners = Hashtbl.create 8;
          conns = Hashtbl.create 16;
          scratch =
            {
              g_flags = 0;
              g_seq = 0;
              g_ack = 0;
              g_wnd = 0;
              g_data = Bytes.empty;
              g_doff = 0;
              g_len = 0;
            };
          rx_handler = (fun _ -> ());
          free_chunks = nil_chunk;
        }
      in
      tbl.rx_handler <-
        (fun frame ->
          if decode_into tbl.scratch frame then demux tbl frame tbl.scratch);
      Hashtbl.add tables nid tbl;
      tbl
  in
  Netif.set_proto_rx nif ~proto:protocol_number tbl.rx_handler;
  tbl

(* {1 Public API} *)

let listen nif ~port ?(backlog = 8) ?stats () =
  let tbl = table_for nif in
  let lkey = (Netif.id nif, port) in
  if Hashtbl.mem tbl.listeners lkey then
    invalid_arg (Printf.sprintf "Tcp.listen: port %d in use" port);
  let l =
    {
      l_nif = nif;
      l_port = port;
      l_backlog = backlog;
      l_stats = stats;
      l_queue = Queue.create ();
      l_on_accept = None;
      l_waiters = [];
    }
  in
  Hashtbl.replace tbl.listeners lkey l;
  l

let on_accept l fn = l.l_on_accept <- Some fn

let rec accept l =
  match Queue.take_opt l.l_queue with
  | Some c -> c
  | None ->
    Process.block "tcp-accept" (fun w -> l.l_waiters <- w :: l.l_waiters);
    accept l

let connect_async nif ~port ~dst ?(rcvbuf = default_buf)
    ?(sndbuf = default_buf) ?stats ?rcv_hook () =
  let tbl = table_for nif in
  let key = (Netif.id nif, port, dst.a_if, dst.a_port) in
  if Hashtbl.mem tbl.conns key then
    invalid_arg "Tcp.connect: connection already exists";
  let c =
    make_conn ~tbl ~nif ~lport:port ~rif:dst.a_if ~rport:dst.a_port ~rcvbuf
      ~sndbuf ~stats ~st:Syn_sent
  in
  c.rcv_hook <- rcv_hook;
  Hashtbl.replace tbl.conns key c;
  tx_ctrl c ~flags:f_syn ~seq:0;
  arm_timer c;
  c

let on_established c k =
  match c.st with
  | Established | Fin_wait -> k ()
  | Closed -> ()
  | Syn_sent | Syn_rcvd -> c.est_waiters <- k :: c.est_waiters

let connect nif ~port ~dst ?rcvbuf ?sndbuf () =
  let c = connect_async nif ~port ~dst ?rcvbuf ?sndbuf () in
  let rec wait () =
    match c.st with
    | Established | Fin_wait -> ()
    | Closed -> failwith "Tcp.connect: connection timed out"
    | Syn_sent | Syn_rcvd ->
      Process.block "tcp-connect" (fun w -> c.est_waiters <- w :: c.est_waiters);
      wait ()
  in
  wait ();
  c

let check_sendable c what =
  (match c.st with
   | Established | Syn_sent | Syn_rcvd -> ()
   | Fin_wait | Closed ->
     invalid_arg (Printf.sprintf "Tcp.%s: closed connection" what));
  if c.app_closed then
    invalid_arg (Printf.sprintf "Tcp.%s: after close" what)

let send_async c data ~pos ~len k =
  if pos < 0 || len < 0 || pos + len > Bytes.length data then
    invalid_arg "Tcp.send_async: bad range";
  check_sendable c "send_async";
  Queue.push
    { pw_data = data; pw_pl = Payload.none; pw_pos = pos; pw_len = len;
      pw_done = k }
    c.pending;
  admit_writers c

(* Zero-copy send: the stream references [pl] directly — segments carry
   views, nothing is copied into the send buffer, and the payload's
   reference count carries the bytes until the peer has acknowledged
   every one of them. Backpressure is identical to {!send_async}: [k]
   fires when the whole range has been accepted against the send-buffer
   budget. *)
let send_view c pl ~pos ~len k =
  if pos < 0 || len < 0 || pos + len > Payload.length pl then
    invalid_arg "Tcp.send_view: bad range";
  check_sendable c "send_view";
  Payload.retain pl;
  Queue.push
    { pw_data = Bytes.empty; pw_pl = pl; pw_pos = pos; pw_len = len;
      pw_done = k }
    c.pending;
  admit_writers c

let send c data ~pos ~len =
  if len > 0 then
    Process.block "tcp-send" (fun waker -> send_async c data ~pos ~len waker)

let set_rcv_hook c fn =
  if Sbuf.length c.rcvq > 0 then
    invalid_arg "Tcp.set_rcv_hook: receive queue not empty";
  c.rcv_hook <- fn

(* Window-update heuristic: tell the peer when a closed (or nearly
   closed) window has reopened meaningfully. *)
let maybe_window_update c =
  let seg = mss c.net in
  if c.last_wnd_sent < seg && rwnd c >= seg then send_pure_ack c

let rec recv c buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Tcp.recv: bad range";
  let avail = Sbuf.length c.rcvq in
  if avail > 0 then begin
    let n = min avail len in
    Sbuf.peek c.rcvq ~off:0 ~n buf pos;
    Sbuf.drop c.rcvq n;
    maybe_window_update c;
    n
  end
  else if c.fin_taken then 0
  else if c.st = Closed then 0
  else begin
    Process.block "tcp-recv" (fun w -> c.rcv_waiters <- w :: c.rcv_waiters);
    recv c buf ~pos ~len
  end

(* Asynchronous half-close: mark the stream finished and let the pump
   emit the FIN once the queue drains — never blocks, so callback-driven
   servers (a million of them) can close without a process each. *)
let shutdown c =
  match c.st with
  | Closed | Fin_wait -> ()
  | Syn_sent | Syn_rcvd ->
    (* Handshake still in flight (the whole stream may already sit in
       the send queue): mark the stream finished and let establishment
       drain it and emit the FIN. *)
    c.app_closed <- true
  | Established ->
    c.app_closed <- true;
    c.st <- Fin_wait;
    pump c

let close c =
  match c.st with
  | Closed -> ()
  | Fin_wait -> ()
  | Syn_sent | Syn_rcvd ->
    c.st <- Closed;
    stop_timer c;
    chain_clear c
  | Established ->
    shutdown c;
    (* Linger until our data and FIN are acknowledged. *)
    let rec wait () =
      match c.fin_seq with
      | Some fs when c.snd_una > fs -> ()
      | _ ->
        if c.st = Closed then ()
        else begin
          Process.block "tcp-close" (fun w ->
              c.rcv_waiters <- w :: c.rcv_waiters);
          wait ()
        end
    in
    wait ()

let state_name c =
  match c.st with
  | Syn_sent -> "syn_sent"
  | Syn_rcvd -> "syn_rcvd"
  | Established -> "established"
  | Fin_wait -> "fin_wait"
  | Closed -> "closed"

let local_addr c = { a_if = Netif.id c.nif; a_port = c.lport }

let remote_addr c = { a_if = c.rif; a_port = c.rport }

let bytes_sent c = c.accepted

let bytes_acked c = min c.snd_una c.accepted

let bytes_received c = c.rcv_nxt - (if c.fin_taken then 1 else 0)

let retransmits c = c.retransmits

let cwnd c = c.cwnd

let srtt c = if c.srtt < 0.0 then None else Some c.srtt

let rto c = c.rto

let stats c = c.stats
