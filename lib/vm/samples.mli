(** Canned filter programs, in the textual format.

    These serve as executable documentation of the ISA, as fixtures for
    the graph-integration tests, and as the workloads for
    [bench sweep-prog]. The [*_src] values are assembler source; the
    corresponding functions assemble and verify them (raising
    [Invalid_argument] only on a bug in the source — these programs are
    part of the test suite). *)

val checksum_src : string
(** FNV-1a over the payload mixed with the block number — bit-identical
    to the built-in [Graph.Checksum] stage. Emits the digest as key 0,
    which the graph folds into the edge checksum. *)

val checksum : unit -> Vm.prog

val tee_hash_src : string
(** Content hash of the payload emitted as key 1: a tee that records a
    fingerprint instead of copying the bytes. *)

val tee_hash : unit -> Vm.prog

val dropper : modulo:int -> Vm.prog
(** Drops every block whose number is a multiple of [modulo] (>= 1). *)

val router : fanout:int -> Vm.prog
(** Redirects block [b] to sibling edge [b mod fanout]. *)

val xor_mask : key:int -> Vm.prog
(** Transforms the payload in place (copy-on-write): XORs every byte
    with [key land 0xff]. Self-inverse. *)

val xor_stream : key:int -> Vm.prog
(** Keyed xor-stream cipher (copy-on-write): XORs every byte with a
    per-block key byte derived from [key] and the block number, so
    identical plaintext blocks encrypt differently. The loop body is
    the scatter/store idiom; self-inverse for the same key. *)

val histogram_src : string
(** Block-local byte histogram + entropy probe, read-only: clears a
    256-cell scratch arena, fills it with the histogram idiom
    ([Ldsx]/[Stsx] indexed by the payload byte), and emits the number
    of distinct byte values as key 4 — a cheap compressibility /
    encrypted-payload signal next to the disk. *)

val histogram : unit -> Vm.prog

val dedup_chunks : bits:int -> Vm.prog
(** Content-defined chunking for dedup, read-only: a multiplicative
    rolling hash over the payload; positions where its low [bits]
    (1..24) bits are all ones are chunk boundaries (expected chunk
    [2^bits] bytes), and the hash at each boundary is emitted as
    key 3 — the chunk fingerprint a dedup index would look up. The
    loop is the rolling-hash idiom. *)

val bounded_copy_src : string
(** Mirrors the 32-byte header into the next 32 bytes (copy-on-write),
    skipping blocks shorter than 64 bytes. The leading [jge len]
    guard lets the range analysis prove every payload access of the
    loop in bounds, so the compiled loop runs with no runtime payload
    checks — the guard-then-raw-copy shape that demonstrates the
    [`Proven] path end to end. *)

val bounded_copy : unit -> Vm.prog

val oob_probe : unit -> Vm.prog
(** Verifier-accepted but faults at run time: loads one byte past the
    payload. Exercises the edge fault/abort path. *)
