open Kpath_sim
open Kpath_dev
open Kpath_buf
open Kpath_fs
open Kpath_net
open Kpath_proc
open Kpath_core
module Vm = Kpath_vm.Vm
module Vm_compile = Kpath_vm.Compile

type ctx = {
  engine : Engine.t;
  callout : Callout.t;
  cache : Cache.t;
  intr : service:Time.span -> (unit -> unit) -> unit;
  handler_cost : Time.span;
  vm_insn_cost : Time.span;
  vm_backend : [ `Interp | `Compiled | `Checked ];
  (* Compiled-code cache, keyed by program identity ([assq]: progs are
     abstract and may carry no structural equality): one program
     attached to a thousand edges is compiled once, at load time. *)
  mutable vm_codes : (Vm.prog * Vm_compile.code) list;
  stats : Stats.t;
  trace : Trace.t option;
  mutable next_graph : int;
  mutable next_node : int;
  mutable next_edge : int;
}

let make_ctx ~engine ~callout ~cache ~intr ?(handler_cost = Time.us 25)
    ?(vm_insn_cost = Time.ns 100) ?(vm_backend = `Compiled) ?trace () =
  {
    engine;
    callout;
    cache;
    intr;
    handler_cost;
    vm_insn_cost;
    vm_backend;
    vm_codes = [];
    stats = Stats.create ();
    trace;
    next_graph = 1;
    next_node = 1;
    next_edge = 1;
  }

let prog_code ctx p =
  match List.assq_opt p ctx.vm_codes with
  | Some code -> code
  | None ->
    (* `Checked keeps every runtime payload check the range analysis
       would have elided; a ctx has one fixed backend, so the cache
       never mixes the two compilations. *)
    let code =
      match ctx.vm_backend with
      | `Checked -> Vm_compile.compile ~elide:false p
      | `Interp | `Compiled -> Vm_compile.compile p
    in
    ctx.vm_codes <- (p, code) :: ctx.vm_codes;
    code

let preload_prog ctx p =
  match ctx.vm_backend with
  | `Compiled | `Checked -> ignore (prog_code ctx p : Vm_compile.code)
  | `Interp -> ()

let ctx_stats ctx = ctx.stats

let tr ctx msg =
  match ctx.trace with
  | Some t -> Trace.emit t ~cat:"graph" msg
  | None -> ()

let count ctx name = Stats.incr (Stats.counter ctx.stats name)

type state = Running | Completed | Aborted of string

type sink_spec =
  | Sink_file of { fs : Fs.t; ino : Inode.t; off_blocks : int }
  | Sink_chardev of Chardev.t
  | Sink_udp of { sock : Udp.t; dst : Udp.addr }
  | Sink_tcp of Tcp.conn
  | Sink_fn of (lblk:int -> data:bytes -> len:int -> unit)

type filter =
  | Checksum
  | Throttle of float
  | Tee of (bytes -> int -> unit)
  | Prog of Vm.prog

(* Per-edge form of a filter stage. [Prog] gains its private VM state
   here (scratch arena and register file), so one [filter list] shared
   across several [connect] calls still gives every edge independent
   cross-block state. Code below matches on this type rather than
   comparing [filter] values: [Tee] carries a closure, so polymorphic
   equality over [filter] is a crash hazard (see kpath-verify's
   poly-compare rule). *)
type prog_inst = {
  pi_prog : Vm.prog;
  (* Backend-resolved runner over the edge's private state, with the
     edge's emit sink already bound — built once at connect, so the
     per-block hot path allocates no closures. *)
  pi_run : data:bytes -> len:int -> lblk:int -> Vm.run;
}

type ifilter =
  | F_checksum
  | F_throttle of float
  | F_tee of (bytes -> int -> unit)
  | F_prog of prog_inst

(* One source block in flight: read done, shared by every outgoing edge
   that still owes an unpin. *)
type block = {
  blk_lblk : int;
  blk_buf : Buf.t;
  blk_bytes : int;
  blk_issued : Time.t;
  blk_owers : (int, unit) Hashtbl.t;  (* edge id -> owes one unpin *)
  mutable blk_payload : Payload.t;
      (* Shared refcounted snapshot of the block's bytes, created by the
         first TCP sink to ship it and referenced by every other — the
         fan-out stores one copy, not one per connection. The block's
         own reference drops when the last edge settles; in-flight and
         unacknowledged segments keep it alive after that. *)
}

type source = {
  sn_id : int;
  sn_fs : Fs.t;
  sn_ino : Inode.t;
  sn_off : int;  (* block offset within the source file *)
  sn_size_req : int;  (* requested bytes; -1 = to end of file *)
  mutable sn_total : int;  (* resolved at start *)
  mutable sn_nblocks : int;
  mutable sn_map : int array;  (* physical block table, built by bmap *)
  mutable sn_next_read : int;
  mutable sn_reads : int;  (* pending device reads *)
  mutable sn_peak_reads : int;
  mutable sn_consumed : int;  (* reads issued + cache hits reused *)
  sn_inflight : (int, block) Hashtbl.t;  (* lblk -> aliased block *)
  mutable sn_edges : edge list;
      (* outgoing; built newest-first, reversed to connect order at start *)
  mutable sn_retry_armed : bool;
  (* Live-edge cache: rebuilt (as a fresh array, so in-flight snapshots
     stay frozen) only when the epoch moves — every Active edge
     retirement bumps [sn_epoch]. The three flow-control aggregates are
     recomputed with it and maintained incrementally between rebuilds,
     making [burst_for] O(1) instead of a per-block fold. *)
  mutable sn_epoch : int;
  mutable sn_live_epoch : int;  (* epoch [sn_live] was built at *)
  mutable sn_live : edge array;  (* Active outgoing edges, connect order *)
  mutable sn_blocked : int;  (* live edges at/over their write watermark *)
  mutable sn_min_read_lo : int;  (* min read_lo across live edges *)
  mutable sn_min_burst : int;  (* min read_burst across live edges *)
}

and sink = {
  sk_id : int;
  sk_spec : sink_spec;
  mutable sk_edges : edge list;
      (* incoming; built newest-first, reversed to connect order at start *)
  mutable sk_map : int array;  (* file sinks: the concatenation's blocks *)
}

and edge = {
  e_id : int;
  e_src : source;
  e_sink : sink;
  (* Mutable only for construction: [connect] builds the edge first so
     each [Prog] stage's emit sink can capture it, then fills this in
     before the edge is ever visible. *)
  mutable e_filters : ifilter list;
  e_has_checksum : bool;  (* a Checksum or Prog stage feeds e_checksum *)
  e_config : Flowctl.config;
  mutable e_dst_base : int;  (* fan-in: base block within sk_map *)
  mutable e_writes : int;  (* pending sink writes *)
  mutable e_peak_writes : int;
  mutable e_delivered : int;  (* bytes accepted by the sink *)
  mutable e_done_blocks : int;  (* blocks settled (written or abandoned) *)
  mutable e_checksum : int;
  mutable e_kvs : (int * int) list;  (* Prog emits, newest first *)
  mutable e_pace : Time.t;  (* throttle pacing cursor *)
  mutable e_state : edge_state;
}

and edge_state = Active | Edge_done | Dead of string

type node = N_src of source | N_sink of sink

type t = {
  g_id : int;
  ctx : ctx;
  window : int;
  mutable g_sources : source list;  (* reverse add order until start *)
  mutable g_sinks : sink list;
  mutable g_edges : edge list;
  g_conns : (int * int, unit) Hashtbl.t;  (* (src, sink) pairs connected *)
  mutable g_active_edges : int;  (* edges still [Active] *)
  mutable st : state;
  mutable started : bool;
  mutable finalized : bool;
  mutable callbacks : (t -> unit) list;
  mutable block_size : int;
}

let create ctx ?(window = 16) () =
  if window < 1 then invalid_arg "Graph.create: window < 1";
  let g_id = ctx.next_graph in
  ctx.next_graph <- g_id + 1;
  {
    g_id;
    ctx;
    window;
    g_sources = [];
    g_sinks = [];
    g_edges = [];
    g_conns = Hashtbl.create 16;
    g_active_edges = 0;
    st = Running;
    started = false;
    finalized = false;
    callbacks = [];
    block_size = 0;
  }

let id t = t.g_id

let state t = t.st

let edges t = List.rev t.g_edges

let edge_id e = e.e_id

let edge_state e =
  match e.e_state with
  | Active -> `Active
  | Edge_done -> `Done
  | Dead reason -> `Dead reason

let edge_delivered e = e.e_delivered

(* Match, don't [List.mem]: e_filters holds closures. *)
let edge_checksum e = if e.e_has_checksum then Some e.e_checksum else None

let edge_emits e = List.rev e.e_kvs

let edge_pending_writes e = e.e_writes

let edge_peak_writes e = e.e_peak_writes

let bytes_delivered t =
  List.fold_left (fun acc e -> acc + e.e_delivered) 0 t.g_edges

let source_reads t =
  List.fold_left (fun acc sn -> acc + sn.sn_consumed) 0 t.g_sources

let pinned_blocks t =
  List.fold_left (fun acc sn -> acc + Hashtbl.length sn.sn_inflight) 0 t.g_sources

let block_checksum ~lblk data len =
  let h = ref 0x811c9dc5 in
  for i = 0 to len - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get data i)) * 0x01000193 land 0xffffffff
  done;
  (* Mix in the position so identical blocks at different offsets do not
     cancel under the per-edge XOR. *)
  (!h lxor ((lblk + 1) * 0x9e3779b9)) land 0xffffffff

let add_file_source t ~fs ~ino ?(off_blocks = 0) ?(size = -1) () =
  if t.started then invalid_arg "Graph.add_file_source: graph already started";
  if off_blocks < 0 then invalid_arg "Graph.add_file_source: negative offset";
  let sn =
    {
      sn_id = t.ctx.next_node;
      sn_fs = fs;
      sn_ino = ino;
      sn_off = off_blocks;
      sn_size_req = size;
      sn_total = 0;
      sn_nblocks = 0;
      sn_map = [||];
      sn_next_read = 0;
      sn_reads = 0;
      sn_peak_reads = 0;
      sn_consumed = 0;
      sn_inflight = Hashtbl.create 16;
      sn_edges = [];
      sn_retry_armed = false;
      sn_epoch = 1;
      sn_live_epoch = 0;
      sn_live = [||];
      sn_blocked = 0;
      sn_min_read_lo = max_int;
      sn_min_burst = max_int;
    }
  in
  t.ctx.next_node <- sn.sn_id + 1;
  t.g_sources <- sn :: t.g_sources;
  N_src sn

let add_sink t spec =
  if t.started then invalid_arg "Graph.add_sink: graph already started";
  (match spec with
   | Sink_file { off_blocks; _ } when off_blocks < 0 ->
     invalid_arg "Graph.add_sink: negative offset"
   | _ -> ());
  let sk = { sk_id = t.ctx.next_node; sk_spec = spec; sk_edges = []; sk_map = [||] } in
  t.ctx.next_node <- sk.sk_id + 1;
  t.g_sinks <- sk :: t.g_sinks;
  N_sink sk

(* Instantiate a [Prog] stage on edge [e]: resolve the context's VM
   backend (compiling through the shared cache on first sight of the
   program), give the edge its private machine state, and bind the emit
   sink once. Key 0 is the checksum convention — folded into the edge
   checksum exactly like the built-in stage; other keys are kept as
   per-edge observations ({!edge_emits}). *)
let make_prog_inst ctx e p =
  let emit k v =
    if k = 0 then e.e_checksum <- (e.e_checksum lxor v) land 0xffffffff
    else e.e_kvs <- (k, v) :: e.e_kvs
  in
  let run =
    match ctx.vm_backend with
    | `Interp ->
      (* Fresh state per edge: scratch must not be shared even when the
         same filter list is passed to several connects. *)
      let st = Vm.new_state p in
      fun ~data ~len ~lblk -> Vm.exec p st ~data ~len ~lblk ~emit
    | `Compiled | `Checked ->
      let code = prog_code ctx p in
      let st = Vm_compile.new_state code in
      fun ~data ~len ~lblk -> Vm_compile.exec code st ~data ~len ~lblk ~emit
  in
  { pi_prog = p; pi_run = run }

let connect t ?(config = Flowctl.default) ?(filters = []) ~src ~dst () =
  if t.started then invalid_arg "Graph.connect: graph already started";
  let sn, sk =
    match (src, dst) with
    | N_src sn, N_sink sk -> (sn, sk)
    | _ -> invalid_arg "Graph.connect: edges run source -> sink"
  in
  if Hashtbl.mem t.g_conns (sn.sn_id, sk.sk_id) then
    invalid_arg "Graph.connect: edge already exists";
  List.iter
    (function
      | Throttle rate when rate <= 0.0 ->
        invalid_arg "Graph.connect: throttle rate must be positive"
      | _ -> ())
    filters;
  let e =
    {
      e_id = t.ctx.next_edge;
      e_src = sn;
      e_sink = sk;
      e_filters = [];
      e_has_checksum =
        List.exists
          (function
            | Checksum | Prog _ -> true
            | Throttle _ | Tee _ -> false)
          filters;
      e_config = config;
      e_dst_base = 0;
      e_writes = 0;
      e_peak_writes = 0;
      e_delivered = 0;
      e_done_blocks = 0;
      e_checksum = 0;
      e_kvs = [];
      e_pace = Time.zero;
      e_state = Active;
    }
  in
  e.e_filters <-
    List.map
      (function
        | Throttle rate -> F_throttle rate
        | Checksum -> F_checksum
        | Tee fn -> F_tee fn
        | Prog p -> F_prog (make_prog_inst t.ctx e p))
      filters;
  t.ctx.next_edge <- e.e_id + 1;
  Hashtbl.add t.g_conns (sn.sn_id, sk.sk_id) ();
  sn.sn_edges <- e :: sn.sn_edges;
  sk.sk_edges <- e :: sk.sk_edges;
  t.g_edges <- e :: t.g_edges;
  t.g_active_edges <- t.g_active_edges + 1;
  e

(* {1 Completion} *)

let finalize t =
  if not t.finalized then begin
    t.finalized <- true;
    tr t.ctx (fun () ->
        Printf.sprintf "g%d %s (%d bytes delivered)" t.g_id
          (match t.st with
           | Completed -> "completed"
           | Aborted r -> "aborted: " ^ r
           | Running -> "finalized while running!?")
          (bytes_delivered t));
    count t.ctx
      (match t.st with
       | Completed -> "graph.completed"
       | Aborted _ -> "graph.aborted"
       | Running -> assert false);
    let cbs = List.rev t.callbacks in
    t.callbacks <- [];
    List.iter (fun cb -> cb t) cbs
  end

let on_complete t cb =
  if t.finalized then cb t else t.callbacks <- cb :: t.callbacks

let[@kpath.blocks] wait t =
  if not (t.st <> Running && t.finalized) then
    Process.block "graph" (fun waker -> on_complete t (fun _ -> waker ()));
  match t.st with
  | Completed -> Ok (bytes_delivered t)
  | Aborted reason -> Error reason
  | Running -> assert false

let drained t =
  List.for_all
    (fun sn -> sn.sn_reads = 0 && Hashtbl.length sn.sn_inflight = 0)
    t.g_sources

let complete_check t =
  if not t.finalized then
    match t.st with
    | Aborted _ -> if drained t then finalize t
    | Completed -> ()
    | Running ->
      if t.g_active_edges = 0 && drained t then begin
        (* If every edge died, the graph as a whole failed; a mix of
           finished and dead edges is a (partial) success the caller can
           inspect per edge. *)
        let first_death =
          List.fold_left
            (fun acc e ->
              match (acc, e.e_state) with
              | None, Dead r -> Some r
              | acc, _ -> acc)
            None (List.rev t.g_edges)
        in
        (match first_death with
         | Some r when List.for_all (fun e -> e.e_state <> Edge_done) t.g_edges
           ->
           t.st <- Aborted r
         | _ -> t.st <- Completed);
        finalize t
      end

(* Charge one handler activation to the CPU (interrupt bucket). *)
let charge t = t.ctx.intr ~service:t.ctx.handler_cost (fun () -> ())

(* Every Active -> (Edge_done | Dead) transition goes through here so
   the graph's active-edge count and the source's live-edge epoch stay
   coherent with [e_state]. *)
let retire_edge t (e : edge) st =
  e.e_state <- st;
  t.g_active_edges <- t.g_active_edges - 1;
  e.e_src.sn_epoch <- e.e_src.sn_epoch + 1

(* The cached Active-edge array, rebuilt only when the epoch moved.
   Each rebuild allocates a fresh array, so the snapshot a clustered
   read captured for its completion handler is never mutated under it.
   The flow-control aggregates are recomputed here and maintained
   incrementally at every [e_writes] transition in between. *)
let live_edges sn =
  if sn.sn_live_epoch <> sn.sn_epoch then begin
    let live =
      Array.of_list (List.filter (fun e -> e.e_state = Active) sn.sn_edges)
    in
    sn.sn_live <- live;
    sn.sn_live_epoch <- sn.sn_epoch;
    let blocked = ref 0 and rlo = ref max_int and bst = ref max_int in
    Array.iter
      (fun e ->
        if e.e_writes >= e.e_config.Flowctl.write_hi then incr blocked;
        rlo := min !rlo e.e_config.Flowctl.read_lo;
        bst := min !bst e.e_config.Flowctl.read_burst)
      live;
    sn.sn_blocked <- !blocked;
    sn.sn_min_read_lo <- !rlo;
    sn.sn_min_burst <- !bst
  end;
  sn.sn_live

let src_dev sn = Fs.dev sn.sn_fs

(* Bytes carried by logical block [lblk] of a source (the final block
   may be partial). *)
let bytes_for t sn lblk = min t.block_size (sn.sn_total - (lblk * t.block_size))

(* How many new reads this source may issue right now: every live edge
   must be under its write watermark (backpressure propagates from the
   slowest sink), and the window bounds pending reads + aliased blocks
   so a stalled edge cannot pile the buffer cache full. *)
let burst_for t sn =
  if Array.length (live_edges sn) = 0 then 0
  else begin
    let held = sn.sn_reads + Hashtbl.length sn.sn_inflight in
    let slots = t.window - held in
    if slots <= 0 then 0
      (* O(1) image of folding [Flowctl.reads_to_issue] over the live
         edges: any edge at its write watermark — or too many reads in
         flight for the tightest read_lo — zeroes the min, otherwise
         the min is the smallest burst allowance. *)
    else if sn.sn_blocked > 0 || sn.sn_reads >= sn.sn_min_read_lo then 0
    else min sn.sn_min_burst slots
  end

(* Drop edge [e]'s reference on [blk], if still owed; [true] when this
   call actually released a reference. The block leaves the in-flight
   table when its last reference drains (release exactly once). *)
let[@kpath.intr] settle_ref t (e : edge) (blk : block) =
  if Hashtbl.mem blk.blk_owers e.e_id then begin
    Hashtbl.remove blk.blk_owers e.e_id;
    if Hashtbl.length blk.blk_owers = 0 then begin
      Hashtbl.remove e.e_src.sn_inflight blk.blk_lblk;
      (* Last edge settled: drop the block's own payload reference —
         TCP connections still streaming it hold their own. *)
      Payload.release blk.blk_payload;
      blk.blk_payload <- Payload.none;
      Histogram.add
        (Stats.histogram t.ctx.stats "graph.block_latency_us")
        (int_of_float
           (Time.to_us_f (Time.diff (Engine.now t.ctx.engine) blk.blk_issued)))
    end;
    Cache.unpin t.ctx.cache blk.blk_buf;
    true
  end
  else false

let[@kpath.intr] rec issue_reads t (sn : source) n =
  if n > 0 && t.st = Running && sn.sn_next_read < sn.sn_nblocks
     && Array.length (live_edges sn) > 0
  then begin
    let lblk = sn.sn_next_read in
    let phys = sn.sn_map.(lblk) in
    (* Cluster sizing: physically contiguous source blocks, capped by
       the cache's cluster bound and by this burst's block allowance [n]
       (so the window accounting in [burst_for] stays block-accurate).
       With max_cluster = 1 this is always 1 and [Cache.breadn]
       degenerates to the per-block [bread_nb]. *)
    let run =
      let cap =
        min (Cache.max_cluster t.ctx.cache) (min n (sn.sn_nblocks - lblk))
      in
      let rec grow i =
        if i < cap && sn.sn_map.(lblk + i) = phys + i then grow (i + 1) else i
      in
      grow 1
    in
    (* The member fan-out of a cluster runs back-to-back in one
       completion event: only the first member pays the handler
       activation (interrupt coalescing, §7), and the live-edge set is
       snapshotted once so every member of the cluster is pinned to the
       same edges — the cluster is aliased as a unit. *)
    let first = ref true in
    let live_snap = ref [||] in
    match
      Cache.breadn t.ctx.cache (src_dev sn) phys ~n:run ~iodone:(fun b ->
          if !first then begin
            first := false;
            charge t;
            live_snap := live_edges sn
          end;
          read_done t sn ~live:!live_snap b.Buf.b_lblkno b)
    with
    | `Busy ->
      (* Out of clean buffers (or the block is held elsewhere): try
         again on the next clock tick. *)
      count t.ctx "graph.retries";
      if not sn.sn_retry_armed then begin
        sn.sn_retry_armed <- true;
        ignore
          (Callout.timeout t.ctx.callout ~ticks:1 (fun () ->
               sn.sn_retry_armed <- false;
               issue_reads t sn (max 1 (burst_for t sn))))
      end
    | `Hit b ->
      sn.sn_next_read <- lblk + 1;
      sn.sn_reads <- sn.sn_reads + 1;
      sn.sn_peak_reads <- max sn.sn_peak_reads sn.sn_reads;
      sn.sn_consumed <- sn.sn_consumed + 1;
      b.Buf.b_lblkno <- lblk;
      count t.ctx "graph.read_hits";
      charge t;
      read_done t sn ~live:(live_edges sn) lblk b;
      issue_reads t sn (n - 1)
    | `Started members ->
      let k = List.length members in
      List.iteri
        (fun i (b : Buf.t) ->
          b.Buf.b_lblkno <- lblk + i;
          count t.ctx "graph.reads_issued")
        members;
      sn.sn_next_read <- lblk + k;
      sn.sn_reads <- sn.sn_reads + k;
      sn.sn_peak_reads <- max sn.sn_peak_reads sn.sn_reads;
      sn.sn_consumed <- sn.sn_consumed + k;
      if k > 1 then count t.ctx "graph.cluster_reads";
      tr t.ctx (fun () ->
          if k = 1 then
            Printf.sprintf "g%d src%d read lblk %d -> phys %d (pending r=%d)"
              t.g_id sn.sn_id lblk phys sn.sn_reads
          else
            Printf.sprintf
              "g%d src%d clustered read lblk %d..%d -> phys %d (pending r=%d)"
              t.g_id sn.sn_id lblk (lblk + k - 1) phys sn.sn_reads);
      issue_reads t sn (n - k)
  end

(* Read handler (interrupt context): pin the buffer once per live edge
   and hand each edge its write through the head of the callout list.
   The block is read from the device exactly once, however many edges
   share it. [live] is the edge set the block is aliased to — for a
   clustered read, the caller snapshots it once for all members. *)
and[@kpath.intr] read_done t (sn : source) ~live lblk (b : Buf.t) =
  sn.sn_reads <- sn.sn_reads - 1;
  match t.st with
  | Aborted _ ->
    Cache.brelse t.ctx.cache b;
    complete_check t
  | Completed -> assert false
  | Running ->
    if Buf.has b Buf.b_error_flag then begin
      let reason =
        match b.Buf.b_error with
        | Some (Blkdev.Io_error m) -> m
        | None -> "read error"
      in
      Cache.brelse t.ctx.cache b;
      abort t ~reason
    end
    else if Array.length live = 0 then begin
      (* Every consumer died while the read was in flight. *)
      Cache.brelse t.ctx.cache b;
      complete_check t
    end
    else begin
      let blk =
        {
          blk_lblk = lblk;
          blk_buf = b;
          blk_bytes = bytes_for t sn lblk;
          blk_issued = Engine.now t.ctx.engine;
          blk_owers = Hashtbl.create 4;
          blk_payload = Payload.none;
        }
      in
      Hashtbl.replace sn.sn_inflight lblk blk;
      if Array.length live > 1 then count t.ctx "graph.blocks_aliased";
      tr t.ctx (fun () ->
          Printf.sprintf "g%d src%d read done lblk %d; aliased to %d edge(s)"
            t.g_id sn.sn_id lblk (Array.length live));
      Array.iter
        (fun e ->
          Cache.pin t.ctx.cache b;
          Hashtbl.replace blk.blk_owers e.e_id ();
          e.e_writes <- e.e_writes + 1;
          e.e_peak_writes <- max e.e_peak_writes e.e_writes;
          (* Crossing the write watermark blocks the source (flow
             control); only live edges count toward the aggregate. *)
          if e.e_state = Active && e.e_writes = e.e_config.Flowctl.write_hi
          then sn.sn_blocked <- sn.sn_blocked + 1;
          ignore
            (Callout.schedule_head t.ctx.callout (fun () ->
                 edge_write_start t e blk)))
        live
    end

(* Per-edge write side: runs from the callout list against the shared,
   pinned buffer. The filter pipeline is applied first; each stage may
   defer (throttling), so every continuation re-checks that the edge
   still owes this block before touching the data. *)
and[@kpath.intr] edge_write_start t (e : edge) (blk : block) =
  charge t;
  if not (Hashtbl.mem blk.blk_owers e.e_id) then ()
  else if e.e_state <> Active then begin
    ignore (settle_ref t e blk);
    complete_check t
  end
  else apply_filters t e blk ~data:blk.blk_buf.Buf.b_data e.e_filters

(* [data] is the payload the remaining stages see: the shared read-side
   buffer, or a program's private copy once a [Stp] ran. *)
and[@kpath.intr] apply_filters t (e : edge) (blk : block) ~data filters =
  if not (Hashtbl.mem blk.blk_owers e.e_id) then ()
  else if e.e_state <> Active then begin
    ignore (settle_ref t e blk);
    complete_check t
  end
  else
    match filters with
    | [] -> edge_sink_write t e ~via:e ~data blk
    | f :: rest -> (
      count t.ctx "graph.filter_runs";
      charge t;
      match f with
      | F_checksum ->
        e.e_checksum <-
          e.e_checksum
          lxor block_checksum ~lblk:blk.blk_lblk data blk.blk_bytes;
        apply_filters t e blk ~data rest
      | F_tee fn ->
        fn data blk.blk_bytes;
        apply_filters t e blk ~data rest
      | F_throttle rate ->
        let now = Engine.now t.ctx.engine in
        let slot = if Time.(e.e_pace > now) then e.e_pace else now in
        e.e_pace <-
          Time.add slot (Time.span_of_bytes ~bytes_per_sec:rate blk.blk_bytes);
        if Time.(slot > now) then
          ignore
            (Engine.schedule t.ctx.engine ~at:slot (fun () ->
                 apply_filters t e blk ~data rest))
        else apply_filters t e blk ~data rest
      | F_prog pi -> run_prog t e blk ~data pi rest)

(* Run a verified filter program over one block. The backend and the
   emit sink were resolved at connect ({!make_prog_inst}), so this is
   one indirect call per block. Pass continues down the stage pipeline
   (with the program's output payload); the other three verdicts end
   it: Drop settles the block undelivered, Redirect hands the payload
   to a sibling edge's sink (accounting stays on this edge), Fault
   kills the edge like any other edge error. *)
and[@kpath.intr] run_prog t (e : edge) (blk : block) ~data pi rest =
  let r = pi.pi_run ~data ~len:blk.blk_bytes ~lblk:blk.blk_lblk in
  count t.ctx "graph.prog_runs";
  Stats.add (Stats.counter t.ctx.stats "graph.prog_insns") r.Vm.r_steps;
  (* Executed instructions are kernel CPU: charge them to the
     interrupt bucket on top of the per-stage handler activation. *)
  if r.Vm.r_steps > 0 then
    t.ctx.intr ~service:(Time.scale t.ctx.vm_insn_cost r.Vm.r_steps)
      (fun () -> ());
  match r.Vm.r_verdict with
  | Vm.Pass -> apply_filters t e blk ~data:r.Vm.r_data rest
  | Vm.Drop ->
    count t.ctx "graph.prog_drops";
    tr t.ctx (fun () ->
        Printf.sprintf "g%d e%d prog dropped lblk %d" t.g_id e.e_id
          blk.blk_lblk);
    settle_block t e blk ~bytes:0
  | Vm.Redirect k -> (
    match List.nth_opt e.e_src.sn_edges k with
    | Some via ->
      count t.ctx "graph.prog_redirects";
      tr t.ctx (fun () ->
          Printf.sprintf "g%d e%d prog redirected lblk %d via e%d" t.g_id
            e.e_id blk.blk_lblk via.e_id);
      edge_sink_write t e ~via ~data:r.Vm.r_data blk
    | None ->
      count t.ctx "graph.prog_faults";
      edge_abort_internal t e
        ~reason:(Printf.sprintf "prog redirect: edge index %d out of range" k))
  | Vm.Fault m ->
    count t.ctx "graph.prog_faults";
    edge_abort_internal t e ~reason:("prog fault: " ^ m)

(* Issue the sink write for edge [e], normally via its own sink
   ([via = e]) but possibly via a sibling's after a program redirect.
   Completion, flow control and delivery accounting stay on [e] — the
   redirect only picks which sink (and block range) receives the
   payload. *)
and[@kpath.intr] edge_sink_write t (e : edge) ~via ~data (blk : block) =
  let lblk = blk.blk_lblk in
  count t.ctx "graph.writes_issued";
  match via.e_sink.sk_spec with
  | Sink_file { fs; _ } ->
    let phys = via.e_sink.sk_map.(via.e_dst_base + lblk) in
    let hdr = Cache.getblk_hdr t.ctx.cache (Fs.dev fs) phys in
    (* Share the data area with the payload buffer: no copy. *)
    hdr.Buf.b_data <- data;
    hdr.Buf.b_bcount <- t.block_size;
    hdr.Buf.b_lblkno <- lblk;
    Cache.awrite_call t.ctx.cache hdr ~iodone:(fun hb ->
        edge_write_done t e blk (Some hb))
  | Sink_chardev cd ->
    Chardev.write_async cd data 0 blk.blk_bytes (fun () ->
        edge_write_done t e blk None)
  | Sink_udp { sock; dst } ->
    let payload = Bytes.sub data 0 blk.blk_bytes in
    Udp.sendto sock ~dst payload;
    edge_write_done t e blk None
  | Sink_tcp conn -> (
    (* The stream applies backpressure: completion fires when the block
       has been accepted into the send buffer. *)
    try
      if data == blk.blk_buf.Buf.b_data then begin
        (* Unfiltered shared buffer: snapshot it into a refcounted
           payload once, and let every TCP edge stream that one copy
           zero-copy (the buffer itself recycles on unpin, so the
           stream cannot reference it directly). *)
        if Payload.is_none blk.blk_payload then begin
          blk.blk_payload <- Payload.of_copy data 0 blk.blk_bytes;
          count t.ctx "graph.payload_snapshots"
        end;
        Tcp.send_view conn blk.blk_payload ~pos:0 ~len:blk.blk_bytes
          (fun () -> edge_write_done t e blk None)
      end
      else
        (* A program rewrote the data into private scratch: copy it
           into the stream as before. *)
        Tcp.send_async conn data ~pos:0 ~len:blk.blk_bytes (fun () ->
            edge_write_done t e blk None)
    with Invalid_argument msg ->
      edge_abort_internal t e ~reason:("tcp sink: " ^ msg))
  | Sink_fn fn ->
    (* Capture sink: hand the bytes to the callback synchronously (data
       is only valid during the call) and settle immediately. *)
    fn ~lblk ~data ~len:blk.blk_bytes;
    edge_write_done t e blk None

(* Write handler for one edge (interrupt context): drop this edge's
   reference (the last one releases the shared buffer), account, and
   refill the source's read pipeline. *)
and[@kpath.intr] edge_write_done t (e : edge) (blk : block) hdr =
  charge t;
  let write_error =
    match hdr with
    | Some (hb : Buf.t) ->
      let err =
        if Buf.has hb Buf.b_error_flag then
          match hb.Buf.b_error with
          | Some (Blkdev.Io_error m) -> Some m
          | None -> Some "write error"
        else None
      in
      Cache.release_hdr t.ctx.cache hb;
      err
    | None -> None
  in
  match write_error with
  | None -> settle_block t e blk ~bytes:blk.blk_bytes
  | Some reason ->
    let owed = settle_ref t e blk in
    if not owed then complete_check t
    else begin
      e.e_writes <- e.e_writes - 1;
      if e.e_state = Active && e.e_writes = e.e_config.Flowctl.write_hi - 1
      then e.e_src.sn_blocked <- e.e_src.sn_blocked - 1;
      if e.e_state = Active then edge_abort_internal t e ~reason
      else complete_check t
    end

(* Settle one block on an edge: drop the reference, account [bytes]
   delivered (0 when a program dropped the block), retire the edge once
   every source block has settled, and refill the pipeline. Shared by
   the write-completion and program-drop paths so either way the
   reference is released exactly once. *)
and[@kpath.intr] settle_block t (e : edge) (blk : block) ~bytes =
  let owed = settle_ref t e blk in
  if not owed then complete_check t
  else begin
    e.e_writes <- e.e_writes - 1;
    if e.e_state = Active && e.e_writes = e.e_config.Flowctl.write_hi - 1 then
      e.e_src.sn_blocked <- e.e_src.sn_blocked - 1;
    match e.e_state with
    | Active ->
      e.e_delivered <- e.e_delivered + bytes;
      e.e_done_blocks <- e.e_done_blocks + 1;
      tr t.ctx (fun () ->
          Printf.sprintf "g%d e%d write done lblk %d (%d/%d bytes)" t.g_id
            e.e_id blk.blk_lblk e.e_delivered e.e_src.sn_total);
      if e.e_done_blocks >= e.e_src.sn_nblocks then begin
        retire_edge t e Edge_done;
        count t.ctx "graph.edges_completed";
        tr t.ctx (fun () ->
            Printf.sprintf "g%d e%d completed (%d bytes)" t.g_id e.e_id
              e.e_delivered)
      end;
      kick t e.e_src;
      complete_check t
    | Edge_done | Dead _ -> complete_check t
  end

(* Refill the read pipeline of one source (flow control, §5.5 applied
   per edge), with a belt-and-braces single read so a source with work
   left can never stall. *)
and[@kpath.intr] kick t (sn : source) =
  if t.st = Running then begin
    let burst = burst_for t sn in
    if burst > 0 then issue_reads t sn burst;
    if
      sn.sn_reads = 0
      && Hashtbl.length sn.sn_inflight = 0
      && sn.sn_next_read < sn.sn_nblocks
      && Array.length (live_edges sn) > 0
    then issue_reads t sn 1
  end

(* Cut an edge loose: its outstanding references are dropped right away
   (abandoning any in-flight writes), so the shared buffers it was
   holding can drain and the source stops being gated by it. *)
and[@kpath.intr] edge_abort_internal t (e : edge) ~reason =
  if e.e_state = Active then begin
    retire_edge t e (Dead reason);
    e.e_writes <- 0;
    count t.ctx "graph.edges_aborted";
    tr t.ctx (fun () ->
        Printf.sprintf "g%d e%d dead: %s" t.g_id e.e_id reason);
    let blocks =
      Hashtbl.fold (fun _ blk acc -> blk :: acc) e.e_src.sn_inflight []
      |> List.sort (fun a b -> compare a.blk_lblk b.blk_lblk)
    in
    List.iter (fun blk -> ignore (settle_ref t e blk)) blocks;
    kick t e.e_src;
    complete_check t
  end

and abort t ~reason =
  match t.st with
  | Completed | Aborted _ -> ()
  | Running ->
    t.st <- Aborted reason;
    List.iter
      (fun e -> if e.e_state = Active then edge_abort_internal t e ~reason)
      t.g_edges;
    complete_check t

let abort_edge t e ~reason =
  if not (List.memq e t.g_edges) then
    invalid_arg "Graph.abort_edge: edge not in this graph";
  if t.st = Running then edge_abort_internal t e ~reason

(* {1 Setup} *)

let resolve_size (sn : source) ~block_size =
  let avail = sn.sn_ino.Inode.size - (sn.sn_off * block_size) in
  if sn.sn_size_req < 0 then max 0 avail
  else min sn.sn_size_req (max 0 avail)

let build_src_map (sn : source) =
  Array.init sn.sn_nblocks (fun i ->
      match Fs.bmap sn.sn_fs sn.sn_ino (sn.sn_off + i) with
      | Some phys -> phys
      | None -> Fs_error.raise_err (Fs_error.Einval "graph: sparse source"))

(* Destination block table via the allocating bmap that skips zero-fill,
   growing the file and keeping the cache coherent with the coming
   write-around — as splice's setup does (§5.2). *)
let build_dst_map fs (ino : Inode.t) ~off_blocks ~nblocks ~total ~block_size =
  let map =
    Array.init nblocks (fun i ->
        Fs.bmap_alloc fs ino (off_blocks + i) ~zero:false)
  in
  let new_size = (off_blocks * block_size) + total in
  if new_size > ino.Inode.size then begin
    ino.Inode.size <- new_size;
    ino.Inode.dirty <- true
  end;
  Array.iter
    (fun phys -> Cache.invalidate_cached (Fs.cache fs) (Fs.dev fs) phys)
    map;
  map

let ranges_overlap a_lo a_len b_lo b_len =
  a_lo < b_lo + b_len && b_lo < a_lo + a_len

let validate_and_build t =
  let sources = List.rev t.g_sources in
  (match sources with
   | [] -> invalid_arg "Graph.start: no sources"
   | _ -> ());
  if t.g_edges = [] then invalid_arg "Graph.start: no edges";
  (* Edge lists were built by prepending (O(1) connect): restore connect
     order once, now that the topology is frozen. *)
  List.iter (fun sn -> sn.sn_edges <- List.rev sn.sn_edges) sources;
  List.iter (fun sk -> sk.sk_edges <- List.rev sk.sk_edges) t.g_sinks;
  List.iter
    (fun sn ->
      if sn.sn_edges = [] then
        invalid_arg "Graph.start: source with no outgoing edge")
    sources;
  (* One block size across the graph. *)
  let block_size = Fs.block_size (List.hd sources).sn_fs in
  t.block_size <- block_size;
  List.iter
    (fun sn ->
      if Fs.block_size sn.sn_fs <> block_size then
        invalid_arg "Graph.start: mismatched block sizes")
    sources;
  List.iter
    (fun sk ->
      match sk.sk_spec with
      | Sink_file { fs; _ } ->
        if Fs.block_size fs <> block_size then
          invalid_arg "Graph.start: mismatched block sizes"
      | Sink_udp _ ->
        if block_size > 8192 then
          invalid_arg "Graph.start: block size exceeds datagram limit"
      | Sink_chardev _ | Sink_tcp _ | Sink_fn _ -> ())
    (List.rev t.g_sinks);
  (* Resolve source sizes and build their physical block tables. *)
  List.iter
    (fun sn ->
      sn.sn_total <- resolve_size sn ~block_size;
      sn.sn_nblocks <- (sn.sn_total + block_size - 1) / block_size;
      sn.sn_map <- build_src_map sn)
    sources;
  (* Fan-in layout and sink block tables. *)
  List.iter
    (fun sk ->
      match (sk.sk_spec, sk.sk_edges) with
      | _, [] -> invalid_arg "Graph.start: sink with no incoming edge"
      | Sink_file { fs; ino; off_blocks }, es ->
        (* Incoming edges concatenate at block granularity: every
           contributor but the last must be a block multiple. *)
        let rec assign base = function
          | [] -> base
          | e :: rest ->
            e.e_dst_base <- base;
            if rest <> [] && e.e_src.sn_total mod block_size <> 0 then
              Fs_error.raise_err
                (Fs_error.Einval
                   "graph: fan-in contributor not block-aligned");
            assign (base + e.e_src.sn_nblocks) rest
        in
        let nblocks = assign 0 es in
        let total =
          List.fold_left (fun acc e -> acc + e.e_src.sn_total) 0 es
        in
        (* Writing onto a range a source is concurrently reading would
           corrupt the shared buffers. *)
        List.iter
          (fun sn ->
            if
              sn.sn_fs == fs
              && sn.sn_ino.Inode.ino = ino.Inode.ino
              && ranges_overlap sn.sn_off sn.sn_nblocks off_blocks nblocks
            then
              Fs_error.raise_err
                (Fs_error.Einval
                   "graph: source and destination ranges overlap"))
          sources;
        sk.sk_map <- build_dst_map fs ino ~off_blocks ~nblocks ~total ~block_size
      | (Sink_chardev _ | Sink_udp _ | Sink_tcp _ | Sink_fn _), _ :: _ :: _ ->
        invalid_arg "Graph.start: fan-in requires a file sink"
      | (Sink_chardev _ | Sink_udp _ | Sink_tcp _ | Sink_fn _), [ _ ] -> ())
    (List.rev t.g_sinks);
  sources

let start t =
  if t.started then invalid_arg "Graph.start: already started";
  t.started <- true;
  let sources = validate_and_build t in
  count t.ctx "graph.started";
  tr t.ctx (fun () ->
      Printf.sprintf "g%d started (%d source(s), %d sink(s), %d edge(s))"
        t.g_id (List.length sources) (List.length t.g_sinks)
        (List.length t.g_edges));
  (* Empty sources complete their edges immediately. *)
  List.iter
    (fun sn ->
      if sn.sn_nblocks = 0 then
        List.iter
          (fun e ->
            if e.e_state = Active then begin
              retire_edge t e Edge_done;
              count t.ctx "graph.edges_completed"
            end)
          sn.sn_edges)
    sources;
  List.iter (fun sn -> if sn.sn_nblocks > 0 then kick t sn) sources;
  complete_check t
