open Kpath_sim
open Kpath_proc

type addr = { a_if : int; a_port : int }

type datagram = { d_from : addr; d_payload : bytes }

type t = {
  nif : Netif.t;
  port : int;
  rcvbuf : int;
  queue : datagram Queue.t;
  mutable queued_bytes : int;
  mutable upcall : (datagram -> unit) option;
  mutable waiters : (unit -> unit) list;
  mutable closed : bool;
  stats : Stats.t;
}

(* Port demultiplexing tables, one per interface, held in domain-local
   storage: each simulation shard owns its interfaces outright, so no
   socket state is ever shared across domains. *)
let port_tables_key : (int, (int, t) Hashtbl.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let rec table_for nif =
  let port_tables = Domain.DLS.get port_tables_key in
  match Hashtbl.find_opt port_tables (Netif.id nif) with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 16 in
    Hashtbl.add port_tables (Netif.id nif) tbl;
    (* One shared rx upcall per interface dispatches to sockets. *)
    Netif.set_proto_rx nif ~proto:17 (fun frame ->
        match Hashtbl.find_opt tbl frame.Netif.f_port_dst with
        | Some sock -> deliver_ref sock frame
        | None -> ());
    tbl

and deliver_ref sock (frame : Netif.frame) =
  if not sock.closed then begin
    let dg =
      {
        d_from = { a_if = frame.Netif.f_src; a_port = frame.Netif.f_port_src };
        d_payload = frame.Netif.f_payload;
      }
    in
    match sock.upcall with
    | Some fn ->
      Stats.incr (Stats.counter sock.stats "udp.upcalls");
      fn dg
    | None ->
      let size = Bytes.length dg.d_payload in
      if sock.queued_bytes + size > sock.rcvbuf then
        Stats.incr (Stats.counter sock.stats "udp.drops")
      else begin
        Queue.push dg sock.queue;
        sock.queued_bytes <- sock.queued_bytes + size;
        Stats.incr (Stats.counter sock.stats "udp.rx");
        let ws = sock.waiters in
        sock.waiters <- [];
        List.iter (fun w -> w ()) (List.rev ws)
      end
  end

let create nif ~port ?(rcvbuf = 64 * 1024) () =
  let tbl = table_for nif in
  if Hashtbl.mem tbl port then
    invalid_arg (Printf.sprintf "Udp.create: port %d in use" port);
  let sock =
    {
      nif;
      port;
      rcvbuf;
      queue = Queue.create ();
      queued_bytes = 0;
      upcall = None;
      waiters = [];
      closed = false;
      stats = Stats.create ();
    }
  in
  Hashtbl.add tbl port sock;
  sock

let addr t = { a_if = Netif.id t.nif; a_port = t.port }

let close t =
  if not t.closed then begin
    t.closed <- true;
    (match
       Hashtbl.find_opt (Domain.DLS.get port_tables_key) (Netif.id t.nif)
     with
     | Some tbl -> Hashtbl.remove tbl t.port
     | None -> ());
    Queue.clear t.queue;
    t.queued_bytes <- 0;
    let ws = t.waiters in
    t.waiters <- [];
    List.iter (fun w -> w ()) (List.rev ws)
  end

let sendto t ~dst payload =
  if t.closed then invalid_arg "Udp.sendto: closed socket";
  Stats.incr (Stats.counter t.stats "udp.tx");
  Netif.send t.nif ~dst:dst.a_if ~port_src:t.port ~port_dst:dst.a_port payload

let try_recv t =
  if Queue.is_empty t.queue then None
  else begin
    let dg = Queue.pop t.queue in
    t.queued_bytes <- t.queued_bytes - Bytes.length dg.d_payload;
    Some dg
  end

let rec recv t =
  match try_recv t with
  | Some dg -> Some dg
  | None ->
    if t.closed then None
    else begin
      Process.block "udp-recv" (fun w -> t.waiters <- w :: t.waiters);
      recv t
    end

let set_upcall t fn =
  t.upcall <- fn;
  match fn with
  | Some fn ->
    (* Drain anything that arrived before the splice was attached. *)
    let rec drain () =
      match try_recv t with
      | Some dg ->
        fn dg;
        drain ()
      | None -> ()
    in
    drain ()
  | None -> ()

let pending t = Queue.length t.queue

let drops t = Stats.get t.stats "udp.drops"

let stats t = t.stats
