open Kpath_sim

type t = {
  md_name : string;
  rate : float;
  chunk : int;
  engine : Engine.t;
  intr : Blkdev.intr;
  mutable consumer : (bytes -> unit) option;
  mutable produced : int;
  mutable dropped : int;
  mutable running : bool;
  mutable armed : bool;
}

let sample_pattern ~off ~len =
  Bytes.init len (fun i -> Char.chr (((off + i) * 37 + 11) land 0xff))

let create ~name ~rate ?(chunk = 1024) ~engine ~intr () =
  if rate <= 0.0 then invalid_arg "Micdev.create: rate <= 0";
  if chunk <= 0 then invalid_arg "Micdev.create: chunk <= 0";
  {
    md_name = name;
    rate;
    chunk;
    engine;
    intr;
    consumer = None;
    produced = 0;
    dropped = 0;
    running = true;
    armed = false;
  }

let name t = t.md_name

let rec arm t =
  if t.running && not t.armed then begin
    t.armed <- true;
    let span = Time.span_of_bytes ~bytes_per_sec:t.rate t.chunk in
    ignore
      (Engine.schedule_after t.engine span (fun () ->
           t.armed <- false;
           if t.running then begin
             let data = sample_pattern ~off:t.produced ~len:t.chunk in
             t.produced <- t.produced + t.chunk;
             (* Chunk-arrival interrupt. *)
             t.intr ~service:(Time.us 40) (fun () ->
                 match t.consumer with
                 | Some fn -> fn data
                 | None -> t.dropped <- t.dropped + t.chunk);
             if Option.is_some t.consumer then arm t
           end))
  end

let set_consumer t fn =
  t.consumer <- fn;
  if Option.is_some fn then arm t

let produced t = t.produced

let dropped t = t.dropped

let stop t =
  t.running <- false;
  t.consumer <- None
