module Vm = Kpath_vm.Vm
module C = Kpath_vm.Compile

let spec insns =
  { Vm.s_insns = Array.of_list insns; s_fuel = Vm.max_fuel;
    s_scratch = 8; s_context = Vm.Edge }

let show name p =
  Printf.printf "%s:\n" name;
  List.iter (fun a ->
    Printf.printf "  pc %d %s %s (%s)\n" a.Vm.a_pc
      (match a.Vm.a_kind with `Load->"load"|`Store->"store"|`Div->"div")
      (match a.Vm.a_bounds with `Proven->"PROVEN"|`Checked->"checked")
      a.Vm.a_range) (Vm.accesses p)

let run_both name p lens =
  List.iter (fun l ->
    let data = Bytes.init l (fun i -> Char.chr (i land 0xff)) in
    let ir = Vm.exec p (Vm.new_state p) ~data ~len:l ~lblk:5 ~emit:(fun _ _ -> ()) in
    let code = C.compile p in
    let cr = C.exec code (C.new_state code) ~data ~len:l ~lblk:5 ~emit:(fun _ _ -> ()) in
    let vs = function Vm.Pass->"pass"|Vm.Drop->"drop"|Vm.Redirect n->Printf.sprintf "redir %d" n|Vm.Fault m->"fault: "^m in
    let iv = vs ir.Vm.r_verdict and cv = vs cr.Vm.r_verdict in
    if iv <> cv || ir.Vm.r_steps <> cr.Vm.r_steps
       || not (Bytes.equal ir.Vm.r_data cr.Vm.r_data) then
      Printf.printf "  %s len=%d MISMATCH interp=(%s,%d) compiled=(%s,%d)\n"
        name l iv ir.Vm.r_steps cv cr.Vm.r_steps
    else Printf.printf "  %s len=%d ok (%s, steps %d)\n" name l iv ir.Vm.r_steps;
    (* soundness: proven sites must not fault in the interpreter *)
    (match ir.Vm.r_verdict with
     | Vm.Fault m ->
       List.iter (fun a ->
         if a.Vm.a_bounds = `Proven then begin
           let tag = Printf.sprintf "pc %d)" a.Vm.a_pc in
           let n = String.length m and tn = String.length tag in
           let rec has i = i + tn <= n && (String.sub m i tn = tag || has (i+1)) in
           if has 0 then Printf.printf "  !!! UNSOUND: proven pc %d faulted: %s\n" a.Vm.a_pc m
         end) (Vm.accesses p)
     | _ -> ())) lens

let t name insns lens =
  match Vm.verify (spec insns) with
  | Error d -> Printf.printf "%s: rejected: %s\n" name (Vm.diag_to_string d)
  | Ok p -> show name p; run_both name p lens

let () =
  (* 1. join across guarded/unguarded paths reaching the same load:
     only one path guarantees len >= 64 — the load must stay Checked. *)
  t "join-guard" [
    Vm.Len 0;
    Vm.Jge (0, Imm 64, 2);        (* pc1: if len>=64 jump to pc3 *)
    Vm.Jmp 1;                     (* pc2: unguarded path also reaches pc3 *)
    Vm.Ldp (1, Imm 10);           (* pc3: must be Checked *)
    Vm.Ret ] [0; 5; 64; 128];
  (* 2. counter loop under guard, stride 2, 16 trips: offsets 0..30, guard len>=31 — NOT enough (need >=31? max off 30 -> need len>=31). Proven iff guard 31. *)
  t "stride-edge" [
    Vm.Len 0;
    Vm.Jge (0, Imm 31, 2);
    Vm.Ret;
    Vm.Mov (1, Imm 0);
    Vm.Loop (Imm 16, 16);
    Vm.Ldp (2, Reg 1);
    Vm.Add (1, Imm 2);
    Vm.End;
    Vm.Ret ] [0; 30; 31; 100];
  (* 3. same but guard 30 — max offset 30 >= len possible: must be Checked, and faults at len=30? offsets 0,2,..30; len=30 -> off 30 faults *)
  t "stride-under" [
    Vm.Len 0;
    Vm.Jge (0, Imm 30, 2);
    Vm.Ret;
    Vm.Mov (1, Imm 0);
    Vm.Loop (Imm 16, 16);
    Vm.Ldp (2, Reg 1);
    Vm.Add (1, Imm 2);
    Vm.End;
    Vm.Ret ] [0; 30; 31];
  (* 4. len-driven loop: classic byte scan, Loop (Reg len). *)
  t "len-scan" [
    Vm.Len 0;
    Vm.Mov (1, Imm 0);
    Vm.Loop (Reg 0, 65536);
    Vm.Ldp (2, Reg 1);
    Vm.Add (1, Imm 1);
    Vm.End;
    Vm.Ret ] [0; 1; 100];
  (* 5. min_int immediates through arithmetic and guards *)
  t "min-int" [
    Vm.Mov (0, Imm min_int);
    Vm.Add (0, Imm 1);
    Vm.Jlt (0, Imm 5, 2);
    Vm.Ret;
    Vm.Ldp (1, Reg 0);
    Vm.Ret ] [0; 10];
  (* 6. decrementing counter via Sub — must widen to top, stay checked *)
  t "dec-counter" [
    Vm.Len 0;
    Vm.Jge (0, Imm 64, 2);
    Vm.Ret;
    Vm.Mov (1, Imm 10);
    Vm.Loop (Imm 16, 16);
    Vm.Ldp (2, Reg 1);
    Vm.Sub (1, Imm 1);
    Vm.End;
    Vm.Ret ] [0; 64];
  (* 7. counter loop with count Reg bounded by guard on len: Loop (Reg len) with stp, scatter-like *)
  t "scatter-guard" [
    Vm.Len 0;
    Vm.Jge (0, Imm 1, 2);
    Vm.Ret;
    Vm.Mov (1, Imm 0);
    Vm.Loop (Reg 0, 65536);
    Vm.Ldp (2, Reg 1);
    Vm.Xor (2, Imm 0x5a);
    Vm.Stp (Reg 1, Reg 2);
    Vm.Add (1, Imm 1);
    Vm.End;
    Vm.Ret ] [0; 1; 7; 300];
  (* 8. multiple-of reasoning: masked then scaled offset *)
  t "mul-of" [
    Vm.Len 0;
    Vm.Jge (0, Imm 1024, 2);
    Vm.Ret;
    Vm.Blkno 1;
    Vm.And (1, Imm 0xff);
    Vm.Shl (1, Imm 2);   (* in [0, 1020], mult of 4 *)
    Vm.Ldp (2, Reg 1);
    Vm.Ret ] [1023; 1024; 2048];
  (* 9. loop cap larger than count reg's concrete bound; add inside nested loop *)
  t "nested" [
    Vm.Len 0;
    Vm.Jge (0, Imm 64, 2);
    Vm.Ret;
    Vm.Mov (1, Imm 0);
    Vm.Loop (Imm 8, 8);
    Vm.Loop (Imm 8, 8);
    Vm.Ldp (2, Reg 1);
    Vm.Add (1, Imm 1);
    Vm.End;
    Vm.End;
    Vm.Ret ] [0; 63; 64; 100]
