(* kpath-verify CLI: run the static analysis pass over .cmt files.

   Usage: kpath_verify [--json FILE] [--exit-zero] <path>...

   Each <path> is a .cmt file or a directory searched recursively for
   .cmt files. Exit status is 1 when findings are reported (so the dune
   @lint alias fails the build), 0 otherwise; --exit-zero forces 0 for
   report-only CI steps that upload the JSON artifact. *)

module Lint = Kpath_lint.Lint

let rec collect_cmts path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> collect_cmts (Filename.concat path entry) acc)
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

let () =
  let json_out = ref None in
  let exit_zero = ref false in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: file :: rest ->
      json_out := Some file;
      parse rest
    | "--exit-zero" :: rest ->
      exit_zero := true;
      parse rest
    | ("--help" | "-h") :: _ ->
      print_endline "usage: kpath_verify [--json FILE] [--exit-zero] <cmt-or-dir>...";
      exit 0
    | arg :: rest ->
      paths := arg :: !paths;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let cmts =
    List.fold_left (fun acc p -> collect_cmts p acc) [] !paths
    |> List.sort_uniq compare
  in
  if cmts = [] then begin
    prerr_endline "kpath_verify: no .cmt files given";
    exit 2
  end;
  let result = Lint.run cmts in
  (match !json_out with
   | Some file ->
     let oc = open_out file in
     output_string oc (Lint.to_json result);
     close_out oc
   | None -> ());
  List.iter
    (fun f -> Format.printf "%a@." Lint.pp_finding f)
    result.Lint.r_findings;
  let n = List.length result.Lint.r_findings in
  Format.printf "kpath-verify: %d finding%s in %d module%s (%d functions)@."
    n
    (if n = 1 then "" else "s")
    result.Lint.r_modules
    (if result.Lint.r_modules = 1 then "" else "s")
    result.Lint.r_nodes;
  if n > 0 && not !exit_zero then exit 1
