let nbuckets = 63

type t = {
  counts : int array; (* bucket i holds values in [2^(i-1), 2^i), bucket 0 holds 0 *)
  mutable count : int;
  mutable total : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { counts = Array.make nbuckets 0; count = 0; total = 0; min_v = max_int; max_v = -1 }

let bucket_of v =
  if v = 0 then 0
  else
    let rec go i acc = if acc > v then i else go (i + 1) (acc * 2) in
    (* bucket 1 holds [1,2), bucket 2 holds [2,4), ... *)
    go 0 1

let add h v =
  if v < 0 then invalid_arg "Histogram.add: negative sample";
  let b = Stdlib.min (bucket_of v) (nbuckets - 1) in
  h.counts.(b) <- h.counts.(b) + 1;
  h.count <- h.count + 1;
  h.total <- h.total + v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v

let count h = h.count

let total h = h.total

let mean h = if h.count = 0 then nan else float_of_int h.total /. float_of_int h.count

let min_value h = if h.count = 0 then None else Some h.min_v

let max_value h = if h.count = 0 then None else Some h.max_v

let bucket_bounds i =
  if i = 0 then (0, 0)
  else ((1 lsl (i - 1)), (1 lsl i) - 1)

let percentile h p =
  if h.count = 0 then invalid_arg "Histogram.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: out of range";
  let target = int_of_float (ceil (p /. 100.0 *. float_of_int h.count)) in
  let target = Stdlib.max 1 target in
  let rec go i acc =
    if i >= nbuckets then h.max_v
    else
      let acc = acc + h.counts.(i) in
      if acc >= target then snd (bucket_bounds i) else go (i + 1) acc
  in
  go 0 0

let buckets h =
  let out = ref [] in
  for i = nbuckets - 1 downto 0 do
    if h.counts.(i) > 0 then begin
      let lo, hi = bucket_bounds i in
      out := (lo, hi, h.counts.(i)) :: !out
    end
  done;
  !out

let pp fmt h =
  if h.count = 0 then Format.fprintf fmt "(empty)"
  else
    Format.fprintf fmt "n=%d mean=%.1f min=%d max=%d p50<=%d p99<=%d" h.count
      (mean h) h.min_v h.max_v (percentile h 50.0) (percentile h 99.0)
