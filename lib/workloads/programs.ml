open Kpath_sim
open Kpath_proc
open Kpath_core
open Kpath_kernel

type copy_stats = {
  mutable bytes_copied : int;
  mutable copies_done : int;
  mutable copy_started : Time.t;
  mutable copy_finished : Time.t;
}

let fresh_copy_stats () =
  {
    bytes_copied = 0;
    copies_done = 0;
    copy_started = Time.zero;
    copy_finished = Time.zero;
  }

type test_stats = {
  mutable ops_done : int;
  mutable test_started : Time.t;
  mutable test_finished : Time.t option;
}

let fresh_test_stats () =
  { ops_done = 0; test_started = Time.zero; test_finished = None }

let pattern_byte i = Char.chr ((i * 31 + 7) land 0xff)

let fill_pattern buf ~file_off =
  for i = 0 to Bytes.length buf - 1 do
    Bytes.set buf i (pattern_byte (file_off + i))
  done

(* Verification is on the per-byte hot path of every streaming
   experiment (gigabytes at high client counts), so count mismatches
   with unsafe reads and the pattern inlined rather than a closure call
   per byte. *)
let pattern_mismatches buf ~pos ~len ~file_off =
  let bad = ref 0 in
  for i = 0 to len - 1 do
    if
      Char.code (Bytes.unsafe_get buf (pos + i))
      <> ((file_off + i) * 31 + 7) land 0xff
    then incr bad
  done;
  !bad

let spawn_test_program m ~ops ?(op_cost = Time.ms 1) stats =
  stats.test_started <- Machine.now m;
  Machine.spawn m ~name:"test-program" (fun () ->
      for _ = 1 to ops do
        Process.use_cpu Process.User op_cost;
        stats.ops_done <- stats.ops_done + 1
      done;
      stats.test_finished <- Some (Machine.now m))

let spawn_file_writer m ~path ~bytes ?(chunk = 64 * 1024) () =
  Machine.spawn m ~name:"writer" (fun () ->
      let env = Syscall.make_env m in
      let fd =
        Syscall.openf env path [ Syscall.O_WRONLY; Syscall.O_CREAT; Syscall.O_TRUNC ]
      in
      let buf = Bytes.create chunk in
      let rec go off =
        if off < bytes then begin
          let n = min chunk (bytes - off) in
          fill_pattern buf ~file_off:off;
          ignore (Syscall.write env fd buf ~pos:0 ~len:n);
          go (off + n)
        end
      in
      go 0;
      Syscall.fsync env fd;
      Syscall.close env fd)

(* A pacer keeps a copy at a fixed application data rate: after moving
   [total] bytes since [started], sleep until the target schedule
   catches up. *)
let make_pacer m = function
  | None -> fun _total -> ()
  | Some rate ->
    let started = Machine.now m in
    fun total ->
      let target = Time.add started (Time.span_of_bytes ~bytes_per_sec:rate total) in
      let now = Machine.now m in
      if Time.(target > now) then
        Kpath_proc.Sched.sleep (Machine.sched m) (Time.diff target now)

(* One read/write pass over the whole source file, the paper's cp. *)
let cp_once env ~src ~dst ~bufsize ~pace (stats : copy_stats) =
  let sfd = Syscall.openf env src [ Syscall.O_RDONLY ] in
  let dfd =
    Syscall.openf env dst [ Syscall.O_WRONLY; Syscall.O_CREAT; Syscall.O_TRUNC ]
  in
  let buf = Bytes.create bufsize in
  let rec loop () =
    let n = Syscall.read env sfd buf ~pos:0 ~len:bufsize in
    if n > 0 then begin
      ignore (Syscall.write env dfd buf ~pos:0 ~len:n);
      stats.bytes_copied <- stats.bytes_copied + n;
      pace stats.bytes_copied;
      loop ()
    end
  in
  loop ();
  Syscall.fsync env dfd;
  Syscall.close env sfd;
  Syscall.close env dfd

let scp_once env ~src ~dst ?config ~chunk_bytes ~pace ~paced (stats : copy_stats) =
  let sfd = Syscall.openf env src [ Syscall.O_RDONLY ] in
  let dfd =
    Syscall.openf env dst [ Syscall.O_WRONLY; Syscall.O_CREAT; Syscall.O_TRUNC ]
  in
  let splice_bytes size =
    match config with
    | None -> Syscall.splice env ~src:sfd ~dst:dfd size
    | Some config ->
      let desc = Syscall.splice_start env ~src:sfd ~dst:dfd ~config size in
      (match Splice.wait desc with
       | Ok n -> n
       | Error reason -> Errno.raise_errno Errno.EIO ("splice: " ^ reason))
  in
  if not paced then begin
    let n = splice_bytes Syscall.splice_eof in
    stats.bytes_copied <- stats.bytes_copied + n
  end
  else begin
    (* Rate control the paper's way (§4): bounded transfer quanta at
       timed intervals. *)
    let size = Syscall.file_size env sfd in
    let rec go off =
      if off < size then begin
        let n = splice_bytes (min chunk_bytes (size - off)) in
        stats.bytes_copied <- stats.bytes_copied + n;
        pace stats.bytes_copied;
        if n > 0 then go (off + n)
      end
    in
    go 0
  end;
  (* Match cp's durability point: force the destination metadata out. *)
  Syscall.fsync env dfd;
  Syscall.close env sfd;
  Syscall.close env dfd

let copier name m ~loop_until (stats : copy_stats) once =
  Machine.spawn m ~name (fun () ->
      let env = Syscall.make_env m in
      stats.copy_started <- Machine.now m;
      let rec go () =
        once env;
        stats.copies_done <- stats.copies_done + 1;
        stats.copy_finished <- Machine.now m;
        match loop_until with
        | Some stop when not !stop -> go ()
        | Some _ | None -> ()
      in
      go ())

let spawn_cp m ~src ~dst ?(bufsize = 8192) ?pace ?loop_until stats =
  let pacer = make_pacer m pace in
  copier "cp" m ~loop_until stats (fun env ->
      cp_once env ~src ~dst ~bufsize ~pace:pacer stats)

let spawn_scp m ~src ~dst ?config ?(chunk_bytes = 64 * 1024) ?pace ?loop_until
    stats =
  let pacer = make_pacer m pace in
  copier "scp" m ~loop_until stats (fun env ->
      scp_once env ~src ~dst ?config ~chunk_bytes ~pace:pacer
        ~paced:(pace <> None) stats)

(* mmap-based copy: page faults plus a single user copy per page. The
   VM path is modeled on the same filesystem machinery, but without the
   read/write syscalls or their copyin/copyout: a read fault brings the
   source page in through the cache (device I/O, no user copy); the
   user's memcpy is the one explicit copy charge; the dirtied
   destination page is a delayed write, forced out by the final msync.
   Only mmap/munmap/msync enter the kernel as syscalls. *)
let mcp_once env ~src ~dst (stats : copy_stats) =
  let m = Syscall.machine env in
  let cfg = Machine.config m in
  let page = cfg.Config.block_size in
  let resolve path =
    match Machine.resolve m path with
    | Some (fs, rel) -> (fs, rel)
    | None -> failwith ("mcp: no filesystem for " ^ path)
  in
  let src_fs, src_rel = resolve src in
  let dst_fs, dst_rel = resolve dst in
  (* mmap both files: two syscalls. *)
  Process.use_cpu Process.Sys (Time.scale cfg.Config.syscall_overhead 2);
  let src_ino = Kpath_fs.Fs.lookup src_fs src_rel in
  let dst_ino =
    try Kpath_fs.Fs.lookup dst_fs dst_rel
    with Kpath_fs.Fs_error.Error Kpath_fs.Fs_error.Enoent ->
      Kpath_fs.Fs.create_file dst_fs dst_rel
  in
  Kpath_fs.Fs.truncate dst_fs dst_ino 0;
  let size = src_ino.Kpath_fs.Inode.size in
  let buf = Bytes.create page in
  let rec copy_page off =
    if off < size then begin
      let n = min page (size - off) in
      (* Read fault: trap + bring the source page in via the cache. *)
      Process.use_cpu Process.Sys cfg.Config.page_fault_cost;
      ignore (Kpath_fs.Fs.read src_fs src_ino ~off ~len:n buf ~pos:0);
      (* Write fault on the destination page. *)
      Process.use_cpu Process.Sys cfg.Config.page_fault_cost;
      (* The user's single memcpy between the two mappings. *)
      Process.use_cpu Process.User (Config.copy_cost cfg n);
      ignore (Kpath_fs.Fs.write dst_fs dst_ino ~off ~len:n buf ~pos:0);
      stats.bytes_copied <- stats.bytes_copied + n;
      copy_page (off + page)
    end
  in
  copy_page 0;
  (* msync + munmap: force the dirty destination pages out. *)
  Process.use_cpu Process.Sys (Time.scale cfg.Config.syscall_overhead 2);
  Kpath_fs.Fs.fsync dst_fs dst_ino

let spawn_mcp m ~src ~dst ?loop_until stats =
  copier "mcp" m ~loop_until stats (fun env -> mcp_once env ~src ~dst stats)

let spawn_verifier m ~path ~expect_bytes k =
  Machine.spawn m ~name:"verifier" (fun () ->
      let env = Syscall.make_env m in
      let fd = Syscall.openf env path [ Syscall.O_RDONLY ] in
      let chunk = 64 * 1024 in
      let buf = Bytes.create chunk in
      let ok = ref (Syscall.file_size env fd = expect_bytes) in
      let rec go off =
        let n = Syscall.read env fd buf ~pos:0 ~len:chunk in
        if n > 0 then begin
          if pattern_mismatches buf ~pos:0 ~len:n ~file_off:off > 0 then
            ok := false;
          go (off + n)
        end
        else if off <> expect_bytes then ok := false
      in
      go 0;
      Syscall.close env fd;
      k !ok)
