(** Block-device interface.

    Drivers expose the classic [strategy] entry point: the caller hands
    over a request and gets a completion callback in interrupt context,
    exactly the discipline the buffer cache (and, through it, splice)
    builds on. Devices never block the caller.

    Devices do not know about the buffer cache; the cache translates
    buffer headers into requests. This keeps the dependency pointing the
    same way as in the BSD kernel sources. *)

open Kpath_sim

type error = Io_error of string  (** Hard I/O error, propagated to [B_ERROR]. *)

val pp_error : Format.formatter -> error -> unit

type req = {
  r_blkno : int;  (** device block number *)
  r_data : bytes;  (** data area (read target / write source) *)
  r_count : int;  (** bytes to transfer, [<= Bytes.length r_data] *)
  r_write : bool;  (** direction *)
  r_done : error option -> unit;  (** completion, called in interrupt context *)
}

type intr = service:Time.span -> (unit -> unit) -> unit
(** How a driver raises an interrupt: the scheduler's
    [Sched.interrupt] partially applied, kept abstract here so devices
    depend only on [kpath_sim]. *)

type t = {
  dv_name : string;
  dv_id : int;  (** unique id, used by the buffer cache hash *)
  dv_block_size : int;  (** bytes per device block *)
  dv_nblocks : int;  (** device capacity in blocks *)
  dv_strategy : req -> unit;  (** queue a request; returns immediately *)
  dv_pending : unit -> int;  (** requests queued or in flight *)
  dv_stats : Stats.t;  (** per-device counters *)
}

val next_id : unit -> int
(** Allocate a device id (monotonic, deterministic per creation order). *)

val check_req : t -> req -> unit
(** Validate a request against the device geometry: block in range, count
    positive, a whole number of blocks, and within the data area. Raises
    [Invalid_argument] otherwise. Drivers call this first in strategy. *)

val blocks_of_req : t -> req -> int
(** Number of device blocks the request spans. *)
