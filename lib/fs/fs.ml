open Kpath_sim
open Kpath_dev
open Kpath_buf
open Kpath_proc

type t = {
  dev : Blkdev.t;
  cache : Cache.t;
  sb : Layout.superblock;
  alloc : Alloc.t;
  inodes : Inode.t array;
  mutable meta_dirty : bool;
  stats : Stats.t;
}

let dev t = t.dev

let cache t = t.cache

let block_size t = t.sb.Layout.sb_block_size

let stats t = t.stats

let free_blocks t = Alloc.free_count t.alloc

let err = Fs_error.raise_err

let count name t = Stats.incr (Stats.counter t.stats name)

(* {1 Locking} *)

let[@kpath.blocks] ilock (ino : Inode.t) =
  while ino.locked do
    Process.block "ilock" (fun w -> ino.lock_waiters <- w :: ino.lock_waiters)
  done;
  ino.locked <- true

let iunlock (ino : Inode.t) =
  if not ino.locked then invalid_arg "iunlock: not locked";
  ino.locked <- false;
  let ws = ino.lock_waiters in
  ino.lock_waiters <- [];
  List.iter (fun w -> w ()) (List.rev ws)

let with_ilock ino f =
  ilock ino;
  match f () with
  | v ->
    iunlock ino;
    v
  | exception e ->
    iunlock ino;
    raise e

(* {1 Cache access helpers} *)

let[@kpath.transfers] bread_checked t blkno =
  let b = Cache.bread t.cache t.dev blkno in
  match b.Buf.b_error with
  | Some (Blkdev.Io_error msg) ->
    Cache.brelse t.cache b;
    err (Fs_error.Eio msg)
  | None -> b

(* {1 Block allocation} *)

let alloc_block t =
  match Alloc.alloc t.alloc with
  | Some b ->
    t.meta_dirty <- true;
    count "fs.blocks_allocated" t;
    b
  | None -> err Fs_error.Enospc

let free_block t blkno =
  Alloc.free t.alloc blkno;
  t.meta_dirty <- true;
  count "fs.blocks_freed" t

(* Zero-fill a freshly allocated block through the cache as a delayed
   write — the standard allocation path splice's special bmap skips. *)
let zero_fill_block t blkno =
  let b = Cache.getblk t.cache t.dev blkno in
  Bytes.fill b.Buf.b_data 0 (Bytes.length b.Buf.b_data) '\000';
  b.Buf.b_bcount <- block_size t;
  Cache.bdwrite t.cache b;
  count "fs.zero_fills" t

(* Read an indirect block and return the 32-bit entry at [idx];
   [set] updates it (delayed write). *)
let indirect_get t blkno idx =
  let b = bread_checked t blkno in
  let v = Int32.to_int (Bytes.get_int32_le b.Buf.b_data (idx * 4)) in
  Cache.brelse t.cache b;
  v

let indirect_set t blkno idx v =
  let b = bread_checked t blkno in
  Bytes.set_int32_le b.Buf.b_data (idx * 4) (Int32.of_int v);
  Cache.bdwrite t.cache b

(* Allocate an indirect block (zero-filled: its entries must read as
   nil). *)
let alloc_indirect t =
  let blkno = alloc_block t in
  zero_fill_block t blkno;
  blkno

(* {1 bmap} *)

let apb t = Layout.addrs_per_block t.sb

let check_lblk t lblk =
  if lblk < 0 then err (Fs_error.Einval "negative logical block");
  if lblk >= Layout.max_file_blocks t.sb then err Fs_error.Efbig

let bmap t (ino : Inode.t) lblk =
  check_lblk t lblk;
  count "fs.bmap" t;
  let nil_opt v = if v = 0 then None else Some v in
  if lblk < Layout.ndirect then nil_opt ino.direct.(lblk)
  else
    let lblk = lblk - Layout.ndirect in
    if lblk < apb t then
      if ino.single = 0 then None else nil_opt (indirect_get t ino.single lblk)
    else
      let lblk = lblk - apb t in
      if ino.double = 0 then None
      else
        let l1 = indirect_get t ino.double (lblk / apb t) in
        if l1 = 0 then None else nil_opt (indirect_get t l1 (lblk mod apb t))

(* Contiguity probe for cluster I/O: how many logical blocks starting at
   [lblk] are backed by physically consecutive device blocks. Stops at a
   hole, a discontiguity, [max] blocks, or the end of the mappable range
   (probing past EOF is fine — unmapped blocks just read as holes). *)
let bmap_range t (ino : Inode.t) lblk ~max =
  check_lblk t lblk;
  if max <= 0 then err (Fs_error.Einval "bmap_range: max <= 0");
  count "fs.bmap_range" t;
  match bmap t ino lblk with
  | None -> None
  | Some first ->
    let limit = min max (Layout.max_file_blocks t.sb - lblk) in
    let rec grow n =
      if n >= limit then n
      else
        match bmap t ino (lblk + n) with
        | Some p when p = first + n -> grow (n + 1)
        | Some _ | None -> n
    in
    Some (first, grow 1)

let bmap_alloc t (ino : Inode.t) lblk ~zero =
  check_lblk t lblk;
  count "fs.bmap_alloc" t;
  let fresh () =
    let b = alloc_block t in
    if zero then zero_fill_block t b;
    b
  in
  if lblk < Layout.ndirect then begin
    if ino.direct.(lblk) = 0 then begin
      ino.direct.(lblk) <- fresh ();
      ino.dirty <- true
    end;
    ino.direct.(lblk)
  end
  else begin
    let l = lblk - Layout.ndirect in
    if l < apb t then begin
      if ino.single = 0 then begin
        ino.single <- alloc_indirect t;
        ino.dirty <- true
      end;
      let v = indirect_get t ino.single l in
      if v <> 0 then v
      else begin
        let b = fresh () in
        indirect_set t ino.single l b;
        b
      end
    end
    else begin
      let l = l - apb t in
      if ino.double = 0 then begin
        ino.double <- alloc_indirect t;
        ino.dirty <- true
      end;
      let i1 = l / apb t and i2 = l mod apb t in
      let l1 =
        let v = indirect_get t ino.double i1 in
        if v <> 0 then v
        else begin
          let b = alloc_indirect t in
          indirect_set t ino.double i1 b;
          b
        end
      in
      let v = indirect_get t l1 i2 in
      if v <> 0 then v
      else begin
        let b = fresh () in
        indirect_set t l1 i2 b;
        b
      end
    end
  end

let blocks_of_size t size = (size + block_size t - 1) / block_size t

let block_list t (ino : Inode.t) =
  let n = blocks_of_size t ino.size in
  let rec go lblk acc =
    if lblk < 0 then acc
    else
      match bmap t ino lblk with
      | Some b -> go (lblk - 1) (b :: acc)
      | None -> go (lblk - 1) acc
  in
  go (n - 1) []

(* {1 File I/O} *)

let read t (ino : Inode.t) ~off ~len dst ~pos =
  if off < 0 || len < 0 || pos < 0 || pos + len > Bytes.length dst then
    err (Fs_error.Einval "read: bad range");
  if ino.ftype = Inode.Free then err Fs_error.Enoent;
  with_ilock ino (fun () ->
      let bs = block_size t in
      let len = max 0 (min len (ino.size - off)) in
      let rec go done_ =
        if done_ >= len then done_
        else begin
          let off = off + done_ in
          let lblk = off / bs and boff = off mod bs in
          let n = min (bs - boff) (len - done_) in
          let sequential = ino.last_read_lblk = lblk - 1 in
          ino.last_read_lblk <- lblk;
          (match bmap t ino lblk with
           | None -> Bytes.fill dst (pos + done_) n '\000' (* hole *)
           | Some phys ->
             let ahead =
               if sequential then
                 match bmap t ino (lblk + 1) with Some a -> a | None -> -1
               else -1
             in
             let b =
               if ahead >= 0 then Cache.breada t.cache t.dev phys ~ahead
               else bread_checked t phys
             in
             (match b.Buf.b_error with
              | Some (Blkdev.Io_error msg) ->
                Cache.brelse t.cache b;
                err (Fs_error.Eio msg)
              | None -> ());
             Bytes.blit b.Buf.b_data boff dst (pos + done_) n;
             Cache.brelse t.cache b);
          go (done_ + n)
        end
      in
      let n = go 0 in
      count "fs.reads" t;
      Stats.add (Stats.counter t.stats "fs.bytes_read") n;
      n)

let write t (ino : Inode.t) ~off ~len src ~pos =
  if off < 0 || len < 0 || pos < 0 || pos + len > Bytes.length src then
    err (Fs_error.Einval "write: bad range");
  if ino.ftype = Inode.Free then err Fs_error.Enoent;
  with_ilock ino (fun () ->
      let bs = block_size t in
      let rec go done_ =
        if done_ >= len then ()
        else begin
          let off = off + done_ in
          let lblk = off / bs and boff = off mod bs in
          let n = min (bs - boff) (len - done_) in
          let full_block = boff = 0 && n = bs in
          (* A full-block overwrite (or a write entirely beyond the old
             mapping) needs no read-modify-write and no zero fill. *)
          let was_mapped = bmap t ino lblk <> None in
          let phys = bmap_alloc t ino lblk ~zero:false in
          let b =
            if full_block || not was_mapped then begin
              let b = Cache.getblk t.cache t.dev phys in
              if not full_block then
                Bytes.fill b.Buf.b_data 0 (Bytes.length b.Buf.b_data) '\000';
              b
            end
            else bread_checked t phys
          in
          Bytes.blit src (pos + done_) b.Buf.b_data boff n;
          b.Buf.b_bcount <- bs;
          Cache.bdwrite t.cache b;
          if off + n > ino.size then begin
            ino.size <- off + n;
            ino.dirty <- true
          end;
          go (done_ + n)
        end
      in
      go 0;
      count "fs.writes" t;
      Stats.add (Stats.counter t.stats "fs.bytes_written") len;
      len)

(* {1 Truncation and freeing} *)

let free_indirect t blkno ~keep_from ~level =
  (* Free entries >= keep_from in an indirect block (recursively for
     level 2); returns true when the whole block became empty. *)
  let rec go blkno keep_from level =
    let empty = ref true in
    for idx = 0 to apb t - 1 do
      let v = indirect_get t blkno idx in
      if v <> 0 then begin
        let child_keep =
          if level = 1 then if idx >= keep_from then 0 else -1
          else begin
            let lo = idx * apb t in
            if keep_from <= lo then 0
            else if keep_from >= lo + apb t then -1
            else keep_from - lo
          end
        in
        if child_keep >= 0 then
          if level = 1 then
            if idx >= keep_from then begin
              free_block t v;
              indirect_set t blkno idx 0
            end
            else empty := false
          else begin
            let child_empty = go v child_keep 1 in
            if child_empty && child_keep = 0 then begin
              free_block t v;
              indirect_set t blkno idx 0
            end
            else empty := false
          end
        else empty := false
      end
    done;
    !empty
  in
  go blkno keep_from level

let truncate t (ino : Inode.t) size =
  if size < 0 then err (Fs_error.Einval "truncate: negative size");
  if ino.ftype = Inode.Free then err Fs_error.Enoent;
  with_ilock ino (fun () ->
      let bs = block_size t in
      let keep = blocks_of_size t size in
      (* Shrinking into the middle of a block: the kept block's tail must
         read as zeroes if the file later grows past it again. *)
      (if size < ino.size && size mod bs <> 0 then
         match bmap t ino (size / bs) with
         | Some phys ->
           let b = bread_checked t phys in
           Bytes.fill b.Buf.b_data (size mod bs) (bs - (size mod bs)) '\000';
           Cache.bdwrite t.cache b
         | None -> ());
      (* Direct blocks. *)
      for lblk = keep to Layout.ndirect - 1 do
        if ino.direct.(lblk) <> 0 then begin
          free_block t ino.direct.(lblk);
          ino.direct.(lblk) <- 0
        end
      done;
      (* Single indirect. *)
      (if ino.single <> 0 then begin
         let keep_from = max 0 (keep - Layout.ndirect) in
         if keep_from < apb t then begin
           let empty = free_indirect t ino.single ~keep_from ~level:1 in
           if empty && keep_from = 0 then begin
             free_block t ino.single;
             ino.single <- 0
           end
         end
       end);
      (* Double indirect. *)
      (if ino.double <> 0 then begin
         let keep_from = max 0 (keep - Layout.ndirect - apb t) in
         if keep_from < apb t * apb t then begin
           let empty = free_indirect t ino.double ~keep_from ~level:2 in
           if empty && keep_from = 0 then begin
             free_block t ino.double;
             ino.double <- 0
           end
         end
       end);
      ino.size <- min ino.size size;
      if size > ino.size then ino.size <- size;
      ino.dirty <- true;
      count "fs.truncates" t)

(* {1 Inode allocation} *)

let ialloc t ftype =
  let found = ref None in
  Array.iter
    (fun (ino : Inode.t) ->
      if !found = None && ino.ino <> 0 && ino.ftype = Inode.Free then
        found := Some ino)
    t.inodes;
  match !found with
  | Some ino ->
    Inode.reset ino ftype;
    t.meta_dirty <- true;
    ino
  | None -> err Fs_error.Enospc

let iget t ino_num =
  if ino_num <= 0 || ino_num >= Array.length t.inodes then
    err (Fs_error.Einval "bad inode number");
  t.inodes.(ino_num)

(* {1 Directories} *)

let dirent_count (dir : Inode.t) = dir.Inode.size / Layout.dirent_size

(* Read directory entry [idx]; (ino, name) with ino = 0 for a free
   slot. *)
let dirent_read t (dir : Inode.t) idx =
  let buf = Bytes.create Layout.dirent_size in
  let n =
    read t dir ~off:(idx * Layout.dirent_size) ~len:Layout.dirent_size buf
      ~pos:0
  in
  if n <> Layout.dirent_size then err (Fs_error.Eio "short directory read");
  let ino = Int32.to_int (Bytes.get_int32_le buf 0) in
  let name =
    let raw = Bytes.sub_string buf 4 (Layout.dirent_size - 4) in
    match String.index_opt raw '\000' with
    | Some i -> String.sub raw 0 i
    | None -> raw
  in
  (ino, name)

let dirent_write t (dir : Inode.t) idx ino_num name =
  let buf = Bytes.make Layout.dirent_size '\000' in
  Bytes.set_int32_le buf 0 (Int32.of_int ino_num);
  Bytes.blit_string name 0 buf 4 (String.length name);
  ignore
    (write t dir ~off:(idx * Layout.dirent_size) ~len:Layout.dirent_size buf
       ~pos:0)

let dir_scan t (dir : Inode.t) name =
  let n = dirent_count dir in
  let rec go idx free =
    if idx >= n then (None, free)
    else
      let ino, nm = dirent_read t dir idx in
      if ino = 0 then go (idx + 1) (if free = -1 then idx else free)
      else if nm = name then (Some (idx, ino), free)
      else go (idx + 1) free
  in
  go 0 (-1)

let check_name name =
  if String.length name = 0 then err (Fs_error.Einval "empty name");
  if String.length name > Layout.name_max then err Fs_error.Enametoolong;
  if String.contains name '/' then err (Fs_error.Einval "name contains '/'")

let dir_add t (dir : Inode.t) name ino_num =
  check_name name;
  match dir_scan t dir name with
  | Some _, _ -> err Fs_error.Eexist
  | None, free ->
    let idx = if free >= 0 then free else dirent_count dir in
    dirent_write t dir idx ino_num name

let dir_remove t (dir : Inode.t) name =
  match dir_scan t dir name with
  | Some (idx, ino), _ ->
    dirent_write t dir idx 0 "";
    ino
  | None, _ -> err Fs_error.Enoent

let dir_entries t (dir : Inode.t) =
  let n = dirent_count dir in
  let rec go idx acc =
    if idx >= n then List.rev acc
    else
      let ino, nm = dirent_read t dir idx in
      go (idx + 1) (if ino = 0 then acc else (nm, ino) :: acc)
  in
  go 0 []

let dir_is_empty t dir = dir_entries t dir = []

(* {1 Path resolution} *)

let split_path path =
  String.split_on_char '/' path |> List.filter (fun c -> c <> "")

let rec walk t (dir : Inode.t) components =
  match components with
  | [] -> dir
  | name :: rest ->
    if dir.Inode.ftype <> Inode.Directory then err Fs_error.Enotdir;
    (match dir_scan t dir name with
     | Some (_, ino_num), _ -> walk t (iget t ino_num) rest
     | None, _ -> err Fs_error.Enoent)

let lookup t path = walk t (iget t Layout.root_ino) (split_path path)

let lookup_parent t path =
  match List.rev (split_path path) with
  | [] -> err (Fs_error.Einval "path refers to the root")
  | name :: rev_parents ->
    let parent = walk t (iget t Layout.root_ino) (List.rev rev_parents) in
    if parent.Inode.ftype <> Inode.Directory then err Fs_error.Enotdir;
    (parent, name)

let create_node t path ftype =
  let parent, name = lookup_parent t path in
  check_name name;
  (match dir_scan t parent name with
   | Some _, _ -> err Fs_error.Eexist
   | None, _ -> ());
  let ino = ialloc t ftype in
  dir_add t parent name ino.Inode.ino;
  count "fs.creates" t;
  ino

let create_file t path = create_node t path Inode.Regular

let mkdir t path = create_node t path Inode.Directory

let unlink t path =
  let parent, name = lookup_parent t path in
  let ino_num =
    match dir_scan t parent name with
    | Some (_, ino), _ -> ino
    | None, _ -> err Fs_error.Enoent
  in
  let ino = iget t ino_num in
  if ino.Inode.ftype = Inode.Directory && not (dir_is_empty t ino) then
    err Fs_error.Enotempty;
  ignore (dir_remove t parent name);
  ino.Inode.nlink <- ino.Inode.nlink - 1;
  if ino.Inode.nlink <= 0 then begin
    truncate t ino 0;
    ino.Inode.ftype <- Inode.Free;
    ino.Inode.dirty <- true
  end;
  t.meta_dirty <- true;
  count "fs.unlinks" t

let link t existing fresh =
  let ino = lookup t existing in
  if ino.Inode.ftype = Inode.Directory then err Fs_error.Eisdir;
  let parent, name = lookup_parent t fresh in
  check_name name;
  (match dir_scan t parent name with
   | Some _, _ -> err Fs_error.Eexist
   | None, _ -> ());
  dir_add t parent name ino.Inode.ino;
  ino.Inode.nlink <- ino.Inode.nlink + 1;
  ino.Inode.dirty <- true;
  t.meta_dirty <- true;
  count "fs.links" t

let rename t old_path new_path =
  let old_parent, old_name = lookup_parent t old_path in
  let ino_num =
    match dir_scan t old_parent old_name with
    | Some (_, ino), _ -> ino
    | None, _ -> err Fs_error.Enoent
  in
  let moving = iget t ino_num in
  let new_parent, new_name = lookup_parent t new_path in
  check_name new_name;
  (* A directory must not be moved into itself (we check the immediate
     case; deeper cycles cannot arise with our shallow path walks since
     the destination parent was resolved through the old tree). *)
  if
    moving.Inode.ftype = Inode.Directory
    && new_parent.Inode.ino = moving.Inode.ino
  then err (Fs_error.Einval "rename: directory into itself");
  match dir_scan t new_parent new_name with
  | Some (_, existing), _ when existing = ino_num ->
    (* Same file already carries the target name (e.g. via a hard
       link): POSIX says do nothing. *)
    ()
  | scan, _ ->
    (match scan with
     | Some (_, existing) ->
       let target = iget t existing in
       if target.Inode.ftype = Inode.Directory then err Fs_error.Eisdir
       else if moving.Inode.ftype = Inode.Directory then err Fs_error.Eexist
       else begin
         (* Replace the target, dropping its link. *)
         ignore (dir_remove t new_parent new_name);
         target.Inode.nlink <- target.Inode.nlink - 1;
         if target.Inode.nlink <= 0 then begin
           truncate t target 0;
           target.Inode.ftype <- Inode.Free;
           target.Inode.dirty <- true
         end
       end
     | None -> ());
    dir_add t new_parent new_name ino_num;
    ignore (dir_remove t old_parent old_name);
    t.meta_dirty <- true;
    count "fs.renames" t

let readdir t path =
  let dir = lookup t path in
  if dir.Inode.ftype <> Inode.Directory then err Fs_error.Enotdir;
  dir_entries t dir

(* {1 Metadata persistence} *)

let write_metadata t =
  (* Superblock. *)
  let b = Cache.getblk t.cache t.dev 0 in
  Layout.write_superblock t.sb b.Buf.b_data;
  Cache.bdwrite t.cache b;
  (* Bitmap. *)
  let bits = Alloc.to_bytes t.alloc in
  let bs = block_size t in
  for i = 0 to t.sb.Layout.sb_bitmap_blocks - 1 do
    let b = Cache.getblk t.cache t.dev (t.sb.Layout.sb_bitmap_start + i) in
    Bytes.fill b.Buf.b_data 0 bs '\000';
    let off = i * bs in
    let n = min bs (Bytes.length bits - off) in
    if n > 0 then Bytes.blit bits off b.Buf.b_data 0 n;
    Cache.bdwrite t.cache b
  done;
  (* Inode table. *)
  let per_block = bs / Layout.inode_size in
  for i = 0 to t.sb.Layout.sb_itable_blocks - 1 do
    let b = Cache.getblk t.cache t.dev (t.sb.Layout.sb_itable_start + i) in
    Bytes.fill b.Buf.b_data 0 bs '\000';
    for j = 0 to per_block - 1 do
      let ino_num = (i * per_block) + j in
      if ino_num < Array.length t.inodes then
        Inode.serialize t.inodes.(ino_num) b.Buf.b_data (j * Layout.inode_size)
    done;
    Cache.bdwrite t.cache b
  done;
  Array.iter (fun (ino : Inode.t) -> ino.Inode.dirty <- false) t.inodes;
  t.meta_dirty <- false

let sync t =
  write_metadata t;
  Cache.flush_dev t.cache t.dev;
  count "fs.syncs" t

let fsync t (ino : Inode.t) =
  with_ilock ino (fun () ->
      Cache.flush_blocks t.cache t.dev (block_list t ino));
  if ino.Inode.dirty || t.meta_dirty then write_metadata t;
  Cache.flush_dev t.cache t.dev;
  count "fs.fsyncs" t

(* {1 mkfs / mount} *)

let mkfs ~cache dev ~ninodes =
  if Cache.block_size cache <> dev.Blkdev.dv_block_size then
    invalid_arg "Fs.mkfs: cache and device block sizes differ";
  let sb =
    Layout.layout ~block_size:dev.Blkdev.dv_block_size
      ~nblocks:dev.Blkdev.dv_nblocks ~ninodes
  in
  let alloc = Alloc.create ~nblocks:sb.Layout.sb_nblocks in
  for b = 0 to sb.Layout.sb_data_start - 1 do
    Alloc.set_allocated alloc b
  done;
  let inodes = Array.init ninodes (fun ino -> Inode.make ~ino) in
  let t =
    { dev; cache; sb; alloc; inodes; meta_dirty = true; stats = Stats.create () }
  in
  (* Root directory. *)
  let root = t.inodes.(Layout.root_ino) in
  Inode.reset root Inode.Directory;
  root.Inode.nlink <- 2;
  sync t;
  t

let mount ~cache dev =
  if Cache.block_size cache <> dev.Blkdev.dv_block_size then
    invalid_arg "Fs.mount: cache and device block sizes differ";
  let stats = Stats.create () in
  (* Superblock. *)
  let b = Cache.bread cache dev 0 in
  let sb = Layout.read_superblock ~block_size:dev.Blkdev.dv_block_size b.Buf.b_data in
  Cache.brelse cache b;
  if sb.Layout.sb_nblocks > dev.Blkdev.dv_nblocks then
    err (Fs_error.Einval "superblock: device shrank");
  (* Bitmap. *)
  let bs = sb.Layout.sb_block_size in
  let bits = Bytes.create (sb.Layout.sb_bitmap_blocks * bs) in
  for i = 0 to sb.Layout.sb_bitmap_blocks - 1 do
    let b = Cache.bread cache dev (sb.Layout.sb_bitmap_start + i) in
    Bytes.blit b.Buf.b_data 0 bits (i * bs) bs;
    Cache.brelse cache b
  done;
  let alloc = Alloc.of_bytes ~nblocks:sb.Layout.sb_nblocks bits in
  (* Inode table. *)
  let per_block = bs / Layout.inode_size in
  let inodes = Array.init sb.Layout.sb_ninodes (fun ino -> Inode.make ~ino) in
  for i = 0 to sb.Layout.sb_itable_blocks - 1 do
    let b = Cache.bread cache dev (sb.Layout.sb_itable_start + i) in
    for j = 0 to per_block - 1 do
      let ino_num = (i * per_block) + j in
      if ino_num < sb.Layout.sb_ninodes then
        inodes.(ino_num) <-
          Inode.deserialize ~ino:ino_num b.Buf.b_data (j * Layout.inode_size)
    done;
    Cache.brelse cache b
  done;
  { dev; cache; sb; alloc; inodes; meta_dirty = false; stats }

(* {1 fsck} *)

let fsck t =
  let problems = ref [] in
  let note fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  let seen = Hashtbl.create 256 in
  let claim ~who blkno =
    if blkno < t.sb.Layout.sb_data_start || blkno >= t.sb.Layout.sb_nblocks then
      note "%s references out-of-range block %d" who blkno
    else begin
      (match Hashtbl.find_opt seen blkno with
       | Some other -> note "block %d claimed by both %s and %s" blkno other who
       | None -> Hashtbl.add seen blkno who);
      if not (Alloc.is_allocated t.alloc blkno) then
        note "%s references free block %d" who blkno
    end
  in
  Array.iter
    (fun (ino : Inode.t) ->
      if ino.Inode.ftype <> Inode.Free then begin
        let who = Printf.sprintf "ino%d" ino.Inode.ino in
        let mapped = blocks_of_size t ino.Inode.size in
        for lblk = 0 to mapped - 1 do
          match bmap t ino lblk with Some b -> claim ~who b | None -> ()
        done;
        if ino.Inode.single <> 0 then claim ~who ino.Inode.single;
        if ino.Inode.double <> 0 then begin
          claim ~who ino.Inode.double;
          for idx = 0 to apb t - 1 do
            let v = indirect_get t ino.Inode.double idx in
            if v <> 0 then claim ~who v
          done
        end;
        if ino.Inode.nlink <= 0 then
          note "ino%d live with nlink=%d" ino.Inode.ino ino.Inode.nlink
      end)
    t.inodes;
  List.rev !problems
