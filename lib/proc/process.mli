(** Simulated processes.

    A process is an OCaml-effects coroutine: its body is ordinary direct
    OCaml code that consumes simulated CPU time with {!use_cpu}, blocks
    with {!block} and cooperates with {!yield}. The effects are handled by
    {!Sched}, which multiplexes the single simulated CPU among processes,
    exactly so that workload programs ([cp], [scp], the compute-bound test
    program, the movie player) can be written as straight-line code
    mirroring the paper's C examples.

    Scheduling granularity: a [use_cpu] slice runs to completion before
    another process may be dispatched (classic non-preemptive UNIX kernel
    behaviour); interrupts steal time by stretching the running slice.
    Workloads should therefore consume CPU in reasonably small slices
    (a millisecond or so) to model timeslice preemption faithfully. *)

open Kpath_sim

type state =
  | Runnable  (** on the run queue, waiting for the CPU *)
  | Running  (** currently owning the CPU *)
  | Blocked of string  (** asleep on the named wait channel *)
  | Zombie  (** terminated *)

type mode =
  | User  (** user-mode computation *)
  | Sys  (** kernel work performed in process context *)

type exit_status =
  | Exited  (** body returned normally *)
  | Crashed of exn  (** body raised *)

type t = {
  pid : int;
  name : string;
  mutable state : state;
  mutable priority : int;  (** effective priority; lower is more urgent *)
  mutable base_priority : int;  (** user-mode priority, restored on return to user mode *)
  mutable resume : (unit -> unit) option;  (** continuation, when [Runnable] *)
  mutable cpu_user : Time.span;  (** user time consumed *)
  mutable cpu_sys : Time.span;  (** system time consumed *)
  mutable ctx_switches : int;  (** times dispatched after another process *)
  mutable wakeup_count : int;  (** times woken from a blocked state *)
  mutable exit_status : exit_status option;
  mutable exit_hooks : (unit -> unit) list;  (** run (LIFO) when the process dies *)
  mutable intr_waker : (unit -> unit) option;
      (** set while interruptibly blocked; invoked by signal delivery *)
  mutable sig_pending : int;  (** pending-signal bitmask *)
  mutable sig_handlers : (int * (unit -> unit)) list;
      (** signal number to handler, run in process context *)
  mutable rq_next : t;
      (** intrusive run-queue link, owned by {!Sched}: points to itself
          when the process is unlinked or last in its priority bucket *)
}

type _ Effect.t +=
  | Use_cpu : mode * Time.span -> unit Effect.t
  | Block : string * ((unit -> unit) -> unit) -> unit Effect.t
  | Yield : unit Effect.t
  | Self : t Effect.t

val make : pid:int -> name:string -> priority:int -> t
(** A fresh process record in [Runnable] state with no continuation. *)

val use_cpu : mode -> Time.span -> unit
(** [use_cpu mode d] consumes [d] of simulated CPU, charged to [mode].
    Must be performed inside a process body. Zero-length slices return
    immediately without touching the scheduler. *)

val block : string -> ((unit -> unit) -> unit) -> unit
(** [block chan register] puts the process to sleep on wait channel
    [chan]. [register] receives the waker; invoking the waker (once)
    makes the process runnable again. Must be performed inside a process
    body. *)

val yield : unit -> unit
(** Relinquish the CPU; the process stays runnable. *)

val self : unit -> t
(** The currently executing process. *)

val is_zombie : t -> bool
(** [true] once the process has terminated. *)

val pp_state : Format.formatter -> state -> unit
(** Print a state for diagnostics. *)
