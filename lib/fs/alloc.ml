type t = {
  bits : Bytes.t;
  n : int;
  mutable cursor : int;
  mutable used : int;
}

let bytes_needed n = (n + 7) / 8

let create ~nblocks =
  if nblocks <= 0 then invalid_arg "Alloc.create";
  { bits = Bytes.make (bytes_needed nblocks) '\000'; n = nblocks; cursor = 0; used = 0 }

let of_bytes ~nblocks b =
  if Bytes.length b < bytes_needed nblocks then invalid_arg "Alloc.of_bytes: short";
  let t =
    {
      bits = Bytes.sub b 0 (bytes_needed nblocks);
      n = nblocks;
      cursor = 0;
      used = 0;
    }
  in
  let used = ref 0 in
  for i = 0 to nblocks - 1 do
    if Char.code (Bytes.get t.bits (i / 8)) land (1 lsl (i mod 8)) <> 0 then
      incr used
  done;
  t.used <- !used;
  t

let to_bytes t = Bytes.copy t.bits

let nblocks t = t.n

let check t i = if i < 0 || i >= t.n then invalid_arg "Alloc: block out of range"

let is_allocated t i =
  check t i;
  Char.code (Bytes.get t.bits (i / 8)) land (1 lsl (i mod 8)) <> 0

let set_bit t i v =
  let byte = Char.code (Bytes.get t.bits (i / 8)) in
  let mask = 1 lsl (i mod 8) in
  let byte = if v then byte lor mask else byte land lnot mask in
  Bytes.set t.bits (i / 8) (Char.chr byte)

let set_allocated t i =
  if is_allocated t i then invalid_arg "Alloc.set_allocated: already allocated";
  set_bit t i true;
  t.used <- t.used + 1

let alloc t =
  if t.used >= t.n then None
  else begin
    let found = ref None in
    let i = ref 0 in
    while !found = None && !i < t.n do
      let cand = (t.cursor + !i) mod t.n in
      if not (is_allocated t cand) then found := Some cand;
      incr i
    done;
    match !found with
    | Some b ->
      set_bit t b true;
      t.used <- t.used + 1;
      t.cursor <- (b + 1) mod t.n;
      Some b
    | None -> None
  end

let free t i =
  if not (is_allocated t i) then invalid_arg "Alloc.free: double free";
  set_bit t i false;
  t.used <- t.used - 1

let free_count t = t.n - t.used

let used_count t = t.used
