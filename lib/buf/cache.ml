open Kpath_sim
open Kpath_dev
open Kpath_proc

type t = {
  block_size : int;
  n : int;
  bufs : Buf.t array;
  hash : (int * int, Buf.t) Hashtbl.t;
  mutable free_waiters : (unit -> unit) list;
  mutable stamp : int;
  mutable next_hdr_id : int;
  mutable hdr_pool : Buf.t list;
  mutable hdrs_out : int;
  stats : Stats.t;
}

let create ~block_size ~nbufs () =
  if block_size <= 0 || nbufs <= 0 then invalid_arg "Cache.create: bad sizes";
  {
    block_size;
    n = nbufs;
    bufs = Array.init nbufs (fun i -> Buf.make ~id:i ~data_size:block_size);
    hash = Hashtbl.create (nbufs * 2);
    free_waiters = [];
    stamp = 0;
    next_hdr_id = nbufs;
    hdr_pool = [];
    hdrs_out = 0;
    stats = Stats.create ();
  }

let block_size t = t.block_size

let nbufs t = t.n

let stats t = t.stats

let count name t = Stats.incr (Stats.counter t.stats name)

let touch t (b : Buf.t) =
  t.stamp <- t.stamp + 1;
  b.b_stamp <- t.stamp

let unhash t (b : Buf.t) =
  if b.b_in_hash then begin
    (match b.b_dev with
     | Some dev -> Hashtbl.remove t.hash (dev.Blkdev.dv_id, b.b_blkno)
     | None -> ());
    b.b_in_hash <- false
  end

let rehash t (b : Buf.t) (dev : Blkdev.t) blkno =
  unhash t b;
  b.b_dev <- Some dev;
  b.b_blkno <- blkno;
  Hashtbl.replace t.hash (dev.Blkdev.dv_id, blkno) b;
  b.b_in_hash <- true

let wake_list l = List.iter (fun w -> w ()) (List.rev l)

let wake_free t =
  let ws = t.free_waiters in
  t.free_waiters <- [];
  wake_list ws

(* Start the device operation described by the buffer. Completion is
   delivered through [biodone]. *)
let rec start_io t (b : Buf.t) ~write =
  let dev = match b.b_dev with Some d -> d | None -> invalid_arg "start_io" in
  count (if write then "cache.dev_writes" else "cache.dev_reads") t;
  if write then Buf.clear b Buf.b_read else Buf.set b Buf.b_read;
  Buf.clear b (Buf.b_done lor Buf.b_error_flag);
  b.b_error <- None;
  dev.Blkdev.dv_strategy
    {
      Blkdev.r_blkno = b.b_blkno;
      r_data = b.b_data;
      r_count = b.b_bcount;
      r_write = write;
      r_done = (fun err -> biodone_ref t b err);
    }

and brelse t (b : Buf.t) =
  if not (Buf.has b Buf.b_busy) then invalid_arg "brelse: buffer not busy";
  if b.b_refs > 0 then invalid_arg "brelse: buffer still pinned";
  let ws = b.b_waiters in
  b.b_waiters <- [];
  if Buf.has b Buf.b_inval || Buf.has b Buf.b_error_flag then begin
    unhash t b;
    b.b_flags <- 0;
    b.b_error <- None;
    b.b_splice <- -1;
    b.b_lblkno <- -1
  end
  else
    Buf.clear b (Buf.b_busy lor Buf.b_async lor Buf.b_call lor Buf.b_read);
  b.b_iodone <- None;
  touch t b;
  wake_list ws;
  wake_free t

and biodone_ref t (b : Buf.t) err =
  (match err with
   | Some e ->
     Buf.set b Buf.b_error_flag;
     b.b_error <- Some e;
     count "cache.io_errors" t
   | None -> ());
  Buf.set b Buf.b_done;
  if Buf.has b Buf.b_call then begin
    Buf.clear b Buf.b_call;
    match b.b_iodone with
    | Some f ->
      b.b_iodone <- None;
      f b
    | None -> ()
  end
  else if Buf.has b Buf.b_async then brelse t b
  else begin
    let ws = b.b_waiters in
    b.b_waiters <- [];
    wake_list ws
  end

let biodone = biodone_ref

(* Reference-counted aliasing: a busy buffer whose data area is shared
   by several downstream writers (splice-graph fan-out) is pinned once
   per writer; the last unpin releases it. The count only defers the
   release — ownership rules are otherwise unchanged, and [brelse]
   refuses pinned buffers so a release can never happen twice. *)
let pin t (b : Buf.t) =
  if not (Buf.has b Buf.b_busy) then invalid_arg "Cache.pin: buffer not busy";
  b.b_refs <- b.b_refs + 1;
  count "cache.pins" t

let unpin t (b : Buf.t) =
  if b.b_refs <= 0 then invalid_arg "Cache.unpin: buffer not pinned";
  b.b_refs <- b.b_refs - 1;
  count "cache.unpins" t;
  if b.b_refs = 0 then brelse t b

(* Pick a reusable buffer, classic 4.2BSD free-list style: walk the
   non-busy buffers from least to most recently used; delayed-write
   buffers reaching the head are pushed to their device asynchronously
   and skipped, and the first clean one is the victim. This is what
   keeps a copy's destination disk continuously fed while its source
   disk streams reads. *)
let victim t =
  (* Pass 1: the least-recently-used non-busy clean buffer. *)
  let clean = ref None in
  Array.iter
    (fun (b : Buf.t) ->
      if (not (Buf.has b Buf.b_busy)) && not (Buf.has b Buf.b_delwri) then
        match !clean with
        | Some (c : Buf.t) when c.b_stamp <= b.b_stamp -> ()
        | _ -> clean := Some b)
    t.bufs;
  let horizon = match !clean with Some c -> c.b_stamp | None -> max_int in
  (* Pass 2: push out every delayed write older than that victim — the
     dirty buffers that reached the head of the free list. *)
  let flushed = ref false in
  Array.iter
    (fun (b : Buf.t) ->
      if
        (not (Buf.has b Buf.b_busy))
        && Buf.has b Buf.b_delwri
        && b.b_stamp < horizon
      then begin
        flushed := true;
        Buf.set b Buf.b_busy;
        Buf.clear b Buf.b_delwri;
        Buf.set b Buf.b_async;
        count "cache.delwri_flushes" t;
        start_io t b ~write:true
      end)
    t.bufs;
  match !clean with
  | Some b -> `Clean b
  | None -> if !flushed then `Flushing else `None

let reassign t (b : Buf.t) dev blkno =
  rehash t b dev blkno;
  b.b_flags <- Buf.b_busy;
  b.b_refs <- 0;
  b.b_error <- None;
  b.b_iodone <- None;
  b.b_bcount <- t.block_size;
  b.b_lblkno <- -1;
  b.b_splice <- -1;
  touch t b

let rec getblk t (dev : Blkdev.t) blkno =
  match Hashtbl.find_opt t.hash (dev.Blkdev.dv_id, blkno) with
  | Some b when Buf.has b Buf.b_busy ->
    count "cache.sleeps" t;
    Process.block "getblk" (fun w -> b.b_waiters <- w :: b.b_waiters);
    getblk t dev blkno
  | Some b ->
    Buf.set b Buf.b_busy;
    touch t b;
    b
  | None -> (
    match victim t with
    | `Clean b ->
      reassign t b dev blkno;
      b
    | `Flushing ->
      (* Flushes were started; they may already have completed (the
         RAM disk copies synchronously in our context), so re-scan
         rather than sleeping past the wakeup. *)
      getblk t dev blkno
    | `None ->
      count "cache.sleeps" t;
      Process.block "getblk-free" (fun w ->
          t.free_waiters <- w :: t.free_waiters);
      getblk t dev blkno)

let getblk_nb t (dev : Blkdev.t) blkno =
  match Hashtbl.find_opt t.hash (dev.Blkdev.dv_id, blkno) with
  | Some b when Buf.has b Buf.b_busy -> None
  | Some b ->
    Buf.set b Buf.b_busy;
    touch t b;
    Some b
  | None -> (
    match victim t with
    | `Clean b ->
      reassign t b dev blkno;
      Some b
    | `Flushing | `None -> None)

let rec biowait (b : Buf.t) =
  if Buf.has b Buf.b_done then
    match b.b_error with Some e -> Error e | None -> Ok ()
  else begin
    Process.block "biowait" (fun w -> b.b_waiters <- w :: b.b_waiters);
    biowait b
  end

let bread t dev blkno =
  let b = getblk t dev blkno in
  if Buf.valid b then begin
    count "cache.hits" t;
    b
  end
  else begin
    count "cache.misses" t;
    start_io t b ~write:false;
    ignore (biowait b);
    b
  end

let breada t dev blkno ~ahead =
  (* Fire the read-ahead first so the device can pipeline it behind the
     demand read. *)
  (if ahead >= 0
   && ahead < dev.Blkdev.dv_nblocks
   && not (Hashtbl.mem t.hash (dev.Blkdev.dv_id, ahead))
   then
     match getblk_nb t dev ahead with
     | Some ab ->
       count "cache.readaheads" t;
       Buf.set ab Buf.b_async;
       start_io t ab ~write:false
     | None -> ());
  bread t dev blkno

let bwrite t (b : Buf.t) =
  if not (Buf.has b Buf.b_busy) then invalid_arg "bwrite: buffer not busy";
  count "cache.bwrites" t;
  Buf.clear b Buf.b_delwri;
  start_io t b ~write:true;
  ignore (biowait b);
  brelse t b

let bawrite t (b : Buf.t) =
  if not (Buf.has b Buf.b_busy) then invalid_arg "bawrite: buffer not busy";
  count "cache.bawrites" t;
  Buf.clear b Buf.b_delwri;
  Buf.set b Buf.b_async;
  start_io t b ~write:true

let bdwrite t (b : Buf.t) =
  if not (Buf.has b Buf.b_busy) then invalid_arg "bdwrite: buffer not busy";
  count "cache.bdwrites" t;
  Buf.set b (Buf.b_delwri lor Buf.b_done);
  brelse t b

let cached t (dev : Blkdev.t) blkno =
  match Hashtbl.find_opt t.hash (dev.Blkdev.dv_id, blkno) with
  | Some b -> Buf.has b Buf.b_done || Buf.has b Buf.b_delwri
  | None -> false

(* fsync back end, pipelined: start every delayed write asynchronously,
   then wait for each block to come to rest (the device services the
   whole batch back to back instead of one biowait round trip per
   block). *)
let flush_start t (dev : Blkdev.t) blkno =
  match Hashtbl.find_opt t.hash (dev.Blkdev.dv_id, blkno) with
  | Some b when (not (Buf.has b Buf.b_busy)) && Buf.has b Buf.b_delwri ->
    Buf.set b Buf.b_busy;
    Buf.clear b Buf.b_delwri;
    Buf.set b Buf.b_async;
    count "cache.fsync_writes" t;
    start_io t b ~write:true
  | Some _ | None -> ()

let rec flush_await t (dev : Blkdev.t) blkno =
  match Hashtbl.find_opt t.hash (dev.Blkdev.dv_id, blkno) with
  | None -> ()
  | Some b when Buf.has b Buf.b_busy ->
    Process.block "fsync" (fun w -> b.b_waiters <- w :: b.b_waiters);
    flush_await t dev blkno
  | Some b when Buf.has b Buf.b_delwri ->
    (* Re-dirtied while we waited: write it synchronously. *)
    Buf.set b Buf.b_busy;
    bwrite t b;
    flush_await t dev blkno
  | Some _ -> ()

let flush_blocks t dev blknos =
  List.iter (flush_start t dev) blknos;
  List.iter (flush_await t dev) blknos

let flush_dev t (dev : Blkdev.t) =
  let blknos =
    Hashtbl.fold
      (fun (d, blkno) _ acc -> if d = dev.Blkdev.dv_id then blkno :: acc else acc)
      t.hash []
  in
  flush_blocks t dev (List.sort compare blknos)

let invalidate_dev t (dev : Blkdev.t) =
  Array.iter
    (fun (b : Buf.t) ->
      match b.b_dev with
      | Some d when d.Blkdev.dv_id = dev.Blkdev.dv_id ->
        if Buf.has b Buf.b_busy then
          invalid_arg "Cache.invalidate_dev: device has busy buffers";
        unhash t b;
        b.b_flags <- 0;
        b.b_error <- None;
        b.b_dev <- None;
        b.b_blkno <- -1
      | Some _ | None -> ())
    t.bufs

let bread_nb t dev blkno ~iodone =
  match getblk_nb t dev blkno with
  | None -> `Busy
  | Some b ->
    if Buf.valid b then begin
      count "cache.hits" t;
      `Hit b
    end
    else begin
      count "cache.misses" t;
      Buf.set b Buf.b_call;
      b.b_iodone <- Some iodone;
      start_io t b ~write:false;
      `Started b
    end

let awrite_call t (b : Buf.t) ~iodone =
  if not (Buf.has b Buf.b_busy) then invalid_arg "awrite_call: buffer not busy";
  count "cache.awrite_calls" t;
  Buf.set b Buf.b_call;
  b.b_iodone <- Some iodone;
  Buf.clear b Buf.b_delwri;
  start_io t b ~write:true

let rec invalidate_cached t (dev : Blkdev.t) blkno =
  match Hashtbl.find_opt t.hash (dev.Blkdev.dv_id, blkno) with
  | None -> ()
  | Some b when Buf.has b Buf.b_busy ->
    Process.block "inval" (fun w -> b.b_waiters <- w :: b.b_waiters);
    invalidate_cached t dev blkno
  | Some b ->
    Buf.set b (Buf.b_busy lor Buf.b_inval);
    Buf.clear b Buf.b_delwri;
    brelse t b

let getblk_hdr t (dev : Blkdev.t) blkno =
  let b =
    match t.hdr_pool with
    | b :: rest ->
      t.hdr_pool <- rest;
      b
    | [] ->
      let b = Buf.make ~id:t.next_hdr_id ~data_size:0 in
      t.next_hdr_id <- t.next_hdr_id + 1;
      b
  in
  t.hdrs_out <- t.hdrs_out + 1;
  b.b_dev <- Some dev;
  b.b_blkno <- blkno;
  b.b_flags <- Buf.b_busy;
  b.b_error <- None;
  b.b_iodone <- None;
  b.b_bcount <- 0;
  b.b_data <- Bytes.empty;
  b.b_lblkno <- -1;
  b.b_splice <- -1;
  b

let release_hdr t (b : Buf.t) =
  if b.b_in_hash then invalid_arg "Cache.release_hdr: cache-owned buffer";
  t.hdrs_out <- t.hdrs_out - 1;
  b.b_flags <- 0;
  b.b_data <- Bytes.empty;
  b.b_dev <- None;
  b.b_iodone <- None;
  b.b_waiters <- [];
  t.hdr_pool <- b :: t.hdr_pool

let busy_count t =
  Array.fold_left
    (fun acc b -> if Buf.has b Buf.b_busy then acc + 1 else acc)
    0 t.bufs

let pinned_count t =
  Array.fold_left
    (fun acc (b : Buf.t) -> if b.b_refs > 0 then acc + 1 else acc)
    0 t.bufs

let dirty_count t =
  Array.fold_left
    (fun acc b -> if Buf.has b Buf.b_delwri then acc + 1 else acc)
    0 t.bufs

let check_invariants t =
  let fail fmt = Format.kasprintf failwith fmt in
  (* Hash entries point at buffers with the matching identity. *)
  Hashtbl.iter
    (fun (dev_id, blkno) (b : Buf.t) ->
      if not b.b_in_hash then fail "hash entry for un-hashed %a" Buf.pp b;
      match b.b_dev with
      | Some d when d.Blkdev.dv_id = dev_id && b.b_blkno = blkno -> ()
      | _ -> fail "hash key mismatch for %a" Buf.pp b)
    t.hash;
  (* Hashed buffers are present in the hash under their own key. *)
  Array.iter
    (fun (b : Buf.t) ->
      if b.b_in_hash then begin
        match Hashtbl.find_opt t.hash (Buf.key b) with
        | Some b' when b' == b -> ()
        | _ -> fail "buffer %a missing from hash" Buf.pp b
      end;
      if Buf.has b Buf.b_delwri && not (Buf.has b Buf.b_done) then
        fail "dirty but invalid: %a" Buf.pp b;
      if b.b_refs < 0 then fail "negative refcount: %a" Buf.pp b;
      if b.b_refs > 0 && not (Buf.has b Buf.b_busy) then
        fail "pinned but not busy: %a" Buf.pp b)
    t.bufs;
  if Hashtbl.length t.hash > t.n then fail "hash larger than pool";
  if t.hdrs_out < 0 then fail "negative outstanding header count"
