open Kpath_sim
open Kpath_proc
open Kpath_dev
open Kpath_buf
open Kpath_fs

(* Rig: engine + sched + ram-backed device + cache; body runs in a
   process with a fresh filesystem. *)
let with_fs ?(nblocks = 512) ?(nbufs = 32) body =
  let engine = Engine.create () in
  let sched = Sched.create engine in
  let intr ~service fn = Sched.interrupt sched ~service fn in
  let rd =
    Ramdisk.create ~name:"ram0" ~copy_rate:100e6 ~block_size:4096 ~nblocks
      ~engine ~intr ()
  in
  let dev = Ramdisk.blkdev rd in
  let cache = Cache.create ~block_size:4096 ~nbufs () in
  let result = ref None in
  let p =
    Sched.spawn sched ~name:"fs-test" (fun () ->
        let fs = Fs.mkfs ~cache dev ~ninodes:32 in
        result := Some (body fs cache dev))
  in
  Engine.run engine;
  Sched.check_deadlock sched;
  (match p.Process.exit_status with
   | Some (Process.Crashed e) -> raise e
   | _ -> ());
  Option.get !result

let check_fsck fs = Alcotest.(check (list string)) "fsck clean" [] (Fs.fsck fs)

let test_mkfs_root () =
  with_fs (fun fs _ _ ->
      let root = Fs.lookup fs "/" in
      Alcotest.(check bool) "root is dir" true (root.Inode.ftype = Inode.Directory);
      Alcotest.(check (list (pair string int))) "empty root" [] (Fs.readdir fs "/");
      check_fsck fs)

let test_create_lookup () =
  with_fs (fun fs _ _ ->
      let f = Fs.create_file fs "/hello" in
      Alcotest.(check bool) "regular" true (f.Inode.ftype = Inode.Regular);
      let g = Fs.lookup fs "/hello" in
      Alcotest.(check int) "same inode" f.Inode.ino g.Inode.ino;
      Alcotest.check_raises "duplicate" (Fs_error.Error Fs_error.Eexist) (fun () ->
          ignore (Fs.create_file fs "/hello"));
      Alcotest.check_raises "missing" (Fs_error.Error Fs_error.Enoent) (fun () ->
          ignore (Fs.lookup fs "/nope"));
      check_fsck fs)

let test_write_read_small () =
  with_fs (fun fs _ _ ->
      let f = Fs.create_file fs "/f" in
      let data = Bytes.of_string "hello, splice world" in
      let n = Fs.write fs f ~off:0 ~len:(Bytes.length data) data ~pos:0 in
      Alcotest.(check int) "wrote all" (Bytes.length data) n;
      Alcotest.(check int) "size" (Bytes.length data) f.Inode.size;
      let out = Bytes.create 64 in
      let n = Fs.read fs f ~off:0 ~len:64 out ~pos:0 in
      Alcotest.(check int) "read clipped at EOF" (Bytes.length data) n;
      Alcotest.(check string) "contents" (Bytes.to_string data)
        (Bytes.sub_string out 0 n))

let test_write_read_offsets () =
  with_fs (fun fs _ _ ->
      let f = Fs.create_file fs "/f" in
      (* Write across a block boundary at a non-zero offset. *)
      let data = Bytes.make 5000 'q' in
      ignore (Fs.write fs f ~off:3000 ~len:5000 data ~pos:0);
      Alcotest.(check int) "size extends" 8000 f.Inode.size;
      let out = Bytes.create 8000 in
      let n = Fs.read fs f ~off:0 ~len:8000 out ~pos:0 in
      Alcotest.(check int) "full read" 8000 n;
      (* Unwritten prefix reads back as zeroes. *)
      Alcotest.(check bytes) "hole zeroes" (Bytes.make 3000 '\000')
        (Bytes.sub out 0 3000);
      Alcotest.(check bytes) "payload" (Bytes.make 5000 'q') (Bytes.sub out 3000 5000))

let test_large_file_indirect_blocks () =
  (* 4 KB blocks, 12 direct => anything past 48 KB exercises the single
     indirect; past 48 KB + 4 MB would need double indirect (too big for
     this rig), so also test double indirect mapping directly below. *)
  with_fs ~nblocks:512 (fun fs _ _ ->
      let f = Fs.create_file fs "/big" in
      let chunk = Bytes.create 8192 in
      let total = 200 * 1024 in
      let rec go off =
        if off < total then begin
          Kpath_workloads.Programs.fill_pattern chunk ~file_off:off;
          ignore (Fs.write fs f ~off ~len:8192 chunk ~pos:0);
          go (off + 8192)
        end
      in
      go 0;
      Alcotest.(check int) "size" total f.Inode.size;
      Alcotest.(check bool) "uses indirect" true (f.Inode.single <> 0);
      (* Read back and verify. *)
      let out = Bytes.create 8192 in
      let ok = ref true in
      let rec check off =
        if off < total then begin
          ignore (Fs.read fs f ~off ~len:8192 out ~pos:0);
          for i = 0 to 8191 do
            if Bytes.get out i <> Kpath_workloads.Programs.pattern_byte (off + i)
            then ok := false
          done;
          check (off + 8192)
        end
      in
      check 0;
      Alcotest.(check bool) "contents verified" true !ok;
      check_fsck fs)

let test_bmap_holes_and_alloc () =
  with_fs (fun fs _ _ ->
      let f = Fs.create_file fs "/sparse" in
      Alcotest.(check (option int)) "hole" None (Fs.bmap fs f 3);
      let phys = Fs.bmap_alloc fs f 3 ~zero:true in
      Alcotest.(check bool) "allocated in data area" true (phys > 0);
      Alcotest.(check (option int)) "mapped now" (Some phys) (Fs.bmap fs f 3);
      (* Idempotent. *)
      Alcotest.(check int) "stable" phys (Fs.bmap_alloc fs f 3 ~zero:true))

let test_bmap_alloc_nozero_skips_zero_fill () =
  with_fs (fun fs cache _ ->
      let before = Stats.get (Fs.stats fs) "fs.zero_fills" in
      let f = Fs.create_file fs "/raw" in
      let _ = Fs.bmap_alloc fs f 0 ~zero:false in
      Alcotest.(check int) "no zero-fill write" before
        (Stats.get (Fs.stats fs) "fs.zero_fills");
      ignore cache;
      let g = Fs.create_file fs "/cooked" in
      let _ = Fs.bmap_alloc fs g 0 ~zero:true in
      Alcotest.(check int) "standard path zero-fills" (before + 1)
        (Stats.get (Fs.stats fs) "fs.zero_fills"))

let test_sequential_alloc_contiguous () =
  with_fs (fun fs _ _ ->
      let f = Fs.create_file fs "/seq" in
      let data = Bytes.create 4096 in
      for i = 0 to 9 do
        ignore (Fs.write fs f ~off:(i * 4096) ~len:4096 data ~pos:0)
      done;
      let blocks = Fs.block_list fs f in
      let contiguous =
        let rec go = function
          | a :: (b :: _ as rest) -> b = a + 1 && go rest
          | _ -> true
        in
        go blocks
      in
      Alcotest.(check bool) "physically contiguous" true contiguous)

let test_truncate_frees_blocks () =
  with_fs (fun fs _ _ ->
      let f = Fs.create_file fs "/t" in
      (* Measure after create: the root directory's data block stays. *)
      let free0 = Fs.free_blocks fs in
      let data = Bytes.create 4096 in
      for i = 0 to 19 do
        ignore (Fs.write fs f ~off:(i * 4096) ~len:4096 data ~pos:0)
      done;
      Alcotest.(check bool) "blocks consumed" true (Fs.free_blocks fs < free0);
      Fs.truncate fs f 0;
      Alcotest.(check int) "size zero" 0 f.Inode.size;
      Alcotest.(check int) "all data blocks returned" free0 (Fs.free_blocks fs);
      check_fsck fs)

let test_truncate_partial () =
  with_fs (fun fs _ _ ->
      let f = Fs.create_file fs "/t" in
      let data = Bytes.make 4096 'k' in
      for i = 0 to 9 do
        ignore (Fs.write fs f ~off:(i * 4096) ~len:4096 data ~pos:0)
      done;
      Fs.truncate fs f (3 * 4096);
      Alcotest.(check int) "shrunk" (3 * 4096) f.Inode.size;
      Alcotest.(check (option int)) "tail unmapped" None (Fs.bmap fs f 5);
      Alcotest.(check bool) "head mapped" true (Fs.bmap fs f 2 <> None);
      check_fsck fs)

let test_unlink () =
  with_fs (fun fs _ _ ->
      (* Force the root directory block to exist first. *)
      let pre = Fs.create_file fs "/keep" in
      ignore pre;
      let free0 = Fs.free_blocks fs in
      let f = Fs.create_file fs "/dead" in
      ignore (Fs.write fs f ~off:0 ~len:4096 (Bytes.create 4096) ~pos:0);
      Fs.unlink fs "/dead";
      Alcotest.check_raises "gone" (Fs_error.Error Fs_error.Enoent) (fun () ->
          ignore (Fs.lookup fs "/dead"));
      Alcotest.(check int) "storage freed" free0 (Fs.free_blocks fs);
      Alcotest.(check bool) "inode recycled" true (f.Inode.ftype = Inode.Free);
      check_fsck fs)

let test_directories () =
  with_fs (fun fs _ _ ->
      let _d = Fs.mkdir fs "/sub" in
      let _f = Fs.create_file fs "/sub/inner" in
      let names = List.map fst (Fs.readdir fs "/sub") in
      Alcotest.(check (list string)) "listing" [ "inner" ] names;
      Alcotest.check_raises "not a dir" (Fs_error.Error Fs_error.Enotdir)
        (fun () -> ignore (Fs.create_file fs "/sub/inner/x"));
      Alcotest.check_raises "not empty" (Fs_error.Error Fs_error.Enotempty)
        (fun () -> Fs.unlink fs "/sub");
      Fs.unlink fs "/sub/inner";
      Fs.unlink fs "/sub";
      Alcotest.check_raises "dir gone" (Fs_error.Error Fs_error.Enoent) (fun () ->
          ignore (Fs.lookup fs "/sub"));
      check_fsck fs)

let test_name_validation () =
  with_fs (fun fs _ _ ->
      Alcotest.check_raises "too long" (Fs_error.Error Fs_error.Enametoolong)
        (fun () -> ignore (Fs.create_file fs ("/" ^ String.make 100 'a'))))

let test_enospc () =
  with_fs ~nblocks:32 (fun fs _ _ ->
      let f = Fs.create_file fs "/fill" in
      let data = Bytes.create 4096 in
      Alcotest.check_raises "device full" (Fs_error.Error Fs_error.Enospc)
        (fun () ->
          for i = 0 to 63 do
            ignore (Fs.write fs f ~off:(i * 4096) ~len:4096 data ~pos:0)
          done))

let test_double_indirect_mapping () =
  (* 4 KB blocks, apb = 1024: logical blocks >= 12 + 1024 live behind
     the double-indirect tree. Map a handful there directly (no 4 GB
     writes needed), then free them all. *)
  with_fs ~nblocks:400 (fun fs _ _ ->
      let f = Fs.create_file fs "/dd" in
      let free0 = Fs.free_blocks fs in
      let lblks = [ 1036; 1037; 2060; 3000 ] in
      let phys = List.map (fun l -> Fs.bmap_alloc fs f l ~zero:false) lblks in
      List.iter2
        (fun l p ->
          Alcotest.(check (option int))
            (Printf.sprintf "lblk %d mapped" l)
            (Some p) (Fs.bmap fs f l))
        lblks phys;
      Alcotest.(check bool) "double-indirect root set" true (f.Inode.double <> 0);
      (* Unmapped logical blocks in between stay holes. *)
      Alcotest.(check (option int)) "hole between" None (Fs.bmap fs f 1500);
      f.Inode.size <- 3001 * 4096;
      Fs.truncate fs f 0;
      Alcotest.(check int) "everything freed (incl. indirect blocks)" free0
        (Fs.free_blocks fs);
      check_fsck fs)

let test_read_after_unlink_is_enoent () =
  (* Our FS frees storage at unlink even with the file open — a
     documented simplification versus UNIX's nlink+refcount keepalive;
     subsequent I/O through a stale inode reports ENOENT. *)
  with_fs (fun fs _ _ ->
      let f = Fs.create_file fs "/gone" in
      ignore (Fs.write fs f ~off:0 ~len:100 (Bytes.create 100) ~pos:0);
      Fs.unlink fs "/gone";
      Alcotest.check_raises "stale handle" (Fs_error.Error Fs_error.Enoent)
        (fun () -> ignore (Fs.read fs f ~off:0 ~len:10 (Bytes.create 10) ~pos:0)))

let test_mount_roundtrip () =
  with_fs (fun fs cache dev ->
      let f = Fs.create_file fs "/persist" in
      let data = Bytes.of_string "survives remount" in
      ignore (Fs.write fs f ~off:0 ~len:(Bytes.length data) data ~pos:0);
      ignore (Fs.mkdir fs "/d");
      ignore (Fs.create_file fs "/d/nested");
      Fs.sync fs;
      Cache.invalidate_dev cache dev;
      let fs2 = Fs.mount ~cache dev in
      let g = Fs.lookup fs2 "/persist" in
      Alcotest.(check int) "size preserved" (Bytes.length data) g.Inode.size;
      let out = Bytes.create 64 in
      let n = Fs.read fs2 g ~off:0 ~len:64 out ~pos:0 in
      Alcotest.(check string) "data preserved" "survives remount"
        (Bytes.sub_string out 0 n);
      ignore (Fs.lookup fs2 "/d/nested");
      check_fsck fs2)

let test_fsync_durability () =
  with_fs (fun fs cache dev ->
      let f = Fs.create_file fs "/durable" in
      ignore (Fs.write fs f ~off:0 ~len:4096 (Bytes.make 4096 'D') ~pos:0);
      Fs.fsync fs f;
      (* Nothing dirty for this file after fsync. *)
      Cache.invalidate_dev cache dev;
      let fs2 = Fs.mount ~cache dev in
      let g = Fs.lookup fs2 "/durable" in
      let out = Bytes.create 4096 in
      ignore (Fs.read fs2 g ~off:0 ~len:4096 out ~pos:0);
      Alcotest.(check bytes) "on stable storage" (Bytes.make 4096 'D') out)

let test_bad_superblock_rejected () =
  let engine = Engine.create () in
  let sched = Sched.create engine in
  let intr ~service fn = Sched.interrupt sched ~service fn in
  let rd =
    Ramdisk.create ~name:"ram0" ~copy_rate:100e6 ~block_size:4096 ~nblocks:64
      ~engine ~intr ()
  in
  let dev = Ramdisk.blkdev rd in
  let cache = Cache.create ~block_size:4096 ~nbufs:8 () in
  let failed = ref false in
  let _p =
    Sched.spawn sched ~name:"mount" (fun () ->
        match Fs.mount ~cache dev with
        | _ -> ()
        | exception Fs_error.Error (Fs_error.Einval _) -> failed := true)
  in
  Engine.run engine;
  Alcotest.(check bool) "bad magic rejected" true !failed

let prop_write_read_roundtrip =
  QCheck.Test.make ~name:"fs write/read round-trips at random offsets" ~count:30
    QCheck.(
      list_of_size Gen.(1 -- 8)
        (pair (int_bound 60_000) (int_bound 6_000)))
    (fun writes ->
      with_fs ~nblocks:256 (fun fs _ _ ->
          let f = Fs.create_file fs "/q" in
          let model = Bytes.make 70_000 '\000' in
          let model_size = ref 0 in
          List.iter
            (fun (off, len) ->
              let len = max 1 len in
              let data =
                Bytes.init len (fun i -> Char.chr ((off + i * 7) land 0xff))
              in
              ignore (Fs.write fs f ~off ~len data ~pos:0);
              Bytes.blit data 0 model off len;
              model_size := max !model_size (off + len))
            writes;
          if f.Inode.size <> !model_size then false
          else begin
            let out = Bytes.make !model_size '\000' in
            let n = Fs.read fs f ~off:0 ~len:!model_size out ~pos:0 in
            n = !model_size && Bytes.sub out 0 n = Bytes.sub model 0 n
          end))

let suite =
  [
    Alcotest.test_case "mkfs root" `Quick test_mkfs_root;
    Alcotest.test_case "create and lookup" `Quick test_create_lookup;
    Alcotest.test_case "small write/read" `Quick test_write_read_small;
    Alcotest.test_case "offsets and holes" `Quick test_write_read_offsets;
    Alcotest.test_case "indirect blocks" `Quick test_large_file_indirect_blocks;
    Alcotest.test_case "bmap holes/alloc" `Quick test_bmap_holes_and_alloc;
    Alcotest.test_case "bmap_alloc nozero" `Quick test_bmap_alloc_nozero_skips_zero_fill;
    Alcotest.test_case "sequential allocation" `Quick test_sequential_alloc_contiguous;
    Alcotest.test_case "truncate frees" `Quick test_truncate_frees_blocks;
    Alcotest.test_case "partial truncate" `Quick test_truncate_partial;
    Alcotest.test_case "unlink" `Quick test_unlink;
    Alcotest.test_case "directories" `Quick test_directories;
    Alcotest.test_case "name validation" `Quick test_name_validation;
    Alcotest.test_case "ENOSPC" `Quick test_enospc;
    Alcotest.test_case "double indirect" `Quick test_double_indirect_mapping;
    Alcotest.test_case "unlink invalidates handles" `Quick test_read_after_unlink_is_enoent;
    Alcotest.test_case "mount round trip" `Quick test_mount_roundtrip;
    Alcotest.test_case "fsync durability" `Quick test_fsync_durability;
    Alcotest.test_case "bad superblock" `Quick test_bad_superblock_rejected;
    Util.qcheck prop_write_read_roundtrip;
  ]
