(** Machine cost model.

    Every CPU and memory cost the simulation charges, in one record. The
    defaults describe the paper's testbed (§6.1): a DECstation 5000/200
    (25 MHz MIPS R3000, 32 MB memory, 3.2 MB buffer cache) running
    Ultrix 4.2A. Rates come straight from the paper; per-operation
    overheads are plausible values for that class of machine, chosen
    once and never tuned per-experiment. *)

open Kpath_sim

type t = {
  name : string;
  (* CPU-time costs *)
  syscall_overhead : Time.span;
      (** kernel entry/exit per system call (30 us) *)
  ctx_switch_cost : Time.span;  (** full context switch (100 us) *)
  quantum : Time.span;  (** scheduler timeslice (10 ms) *)
  disk_intr_service : Time.span;  (** SCSI completion interrupt (60 us) *)
  splice_handler_cost : Time.span;
      (** one splice read/write handler activation (25 us) *)
  splice_setup_per_block : Time.span;
      (** bmap + table fill per block at splice setup (5 us) *)
  udp_proto_cost : Time.span;
      (** protocol processing per datagram in the process path (120 us) *)
  page_fault_cost : Time.span;
      (** trap + PTE handling per page fault, excluding any disk I/O
          (500 us — §7's memory-mapped alternative pays this per page) *)
  callout_tick : Time.span;  (** callout list clock period (1 ms) *)
  vm_insn_cost : Time.span;
      (** CPU charged per executed filter-program instruction
          ([r_steps]), whatever backend ran it (100 ns — a handful of
          R3000 cycles per dispatched bytecode) *)
  vm_backend : [ `Interp | `Compiled | `Checked ];
      (** how splice-graph [Prog] filter stages execute: [`Compiled]
          (the default) runs closures compiled from the verified
          bytecode at load time, [`Interp] the direct interpreter, and
          [`Checked] the compiled backend with the range analysis's
          check elision disabled (every payload access keeps its
          runtime test — the benches use it to price what the analysis
          buys). Observationally identical — same verdicts, emits, step
          counts and therefore the same simulated timeline; the choice
          only moves host wall-clock per block *)
  sim_engine : Engine.backend;
      (** event-queue implementation backing the simulation ([`Wheel]:
          hierarchical timing wheel keyed on [callout_tick]; [`Heap]:
          binary heap). Both produce identical executions — the wheel
          is simply faster on host wall-clock. *)
  (* Memory rates (bytes/second) *)
  copy_rate : float;
      (** kernel/user copy (copyin/copyout) and driver bcopy: the
          partial-page write rate, 20 MB/s *)
  (* Buffer cache *)
  block_size : int;  (** filesystem block size (8 KB) *)
  cache_bytes : int;  (** buffer cache size (3.2 MB) *)
  max_cluster : int;
      (** largest run of physically contiguous blocks coalesced into a
          single device request by the cluster I/O paths (8 blocks =
          64 KB, the larger transfer unit of §7; 1 disables clustering) *)
  (* RAM disk *)
  ramdisk_blocks : int;  (** 16 MB of kernel BSS *)
  (* Host parallelism *)
  sim_domains : int;
      (** OCaml domains shardable sweeps (million-client fan-out) spread
          their independent sub-simulations over; 1 = run everything in
          the calling domain. Purely a host-side throughput knob:
          results are bit-identical at any value
          ({!Kpath_sim.Shard.run}'s deterministic merge). *)
}

val decstation_5000_200 : t
(** The paper's primary machine. *)

val decstation_5000_240 : t
(** The paper's second test machine (§5): a 40 MHz R3400 — per-operation
    CPU costs scaled by 25/40 and memory copy rate up accordingly. *)

val scaled : t -> cpu_factor:float -> t
(** [scaled c ~cpu_factor] is [c] with every CPU cost divided by — and
    the memory copy rate multiplied by — [cpu_factor]: a what-if machine
    for studying how the splice advantage moves as processors outpace
    devices. Device speeds are untouched. *)

val copy_cost : t -> int -> Time.span
(** [copy_cost c n] is the CPU time to copy [n] bytes at the memory copy
    rate. *)

val cache_nbufs : t -> int
(** Number of cache buffers implied by [cache_bytes] / [block_size]. *)

val pp : Format.formatter -> t -> unit
