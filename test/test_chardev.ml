open Kpath_sim
open Kpath_dev

(* Ramdisk *)

let make_ram ?(nblocks = 64) ?charge () =
  let engine = Engine.create () in
  let rd =
    Ramdisk.create ~name:"ram0" ~copy_rate:8.192e6 ~block_size:8192 ~nblocks
      ?charge_in_context:charge ~engine ~intr:Util.free_intr ()
  in
  (engine, rd)

let test_ram_roundtrip () =
  let engine, rd = make_ram () in
  let dev = Ramdisk.blkdev rd in
  let data = Bytes.init 8192 (fun i -> Char.chr (i land 0xff)) in
  dev.Blkdev.dv_strategy
    { Blkdev.r_blkno = 9; r_data = data; r_count = 8192; r_write = true;
      r_done = (fun e -> Alcotest.(check bool) "write ok" true (e = None)) };
  Engine.run engine;
  Alcotest.(check bytes) "stored" data (Ramdisk.read_block_direct rd 9);
  let out = Bytes.create 8192 in
  dev.Blkdev.dv_strategy
    { Blkdev.r_blkno = 9; r_data = out; r_count = 8192; r_write = false;
      r_done = (fun _ -> ()) };
  Engine.run engine;
  Alcotest.(check bytes) "read back" data out

let test_ram_copy_takes_time () =
  let engine, rd = make_ram () in
  let dev = Ramdisk.blkdev rd in
  let fin = ref Time.zero in
  dev.Blkdev.dv_strategy
    { Blkdev.r_blkno = 0; r_data = Bytes.create 8192; r_count = 8192;
      r_write = false; r_done = (fun _ -> fin := Engine.now engine) };
  Engine.run engine;
  (* 8 KB at 8.192 MB/s = 1 ms. *)
  Alcotest.check Util.time "one copy time" (Time.ms 1) !fin

let test_ram_copies_serialized () =
  let engine, rd = make_ram () in
  let dev = Ramdisk.blkdev rd in
  let fins = ref [] in
  for i = 0 to 2 do
    dev.Blkdev.dv_strategy
      { Blkdev.r_blkno = i; r_data = Bytes.create 8192; r_count = 8192;
        r_write = false;
        r_done = (fun _ -> fins := Engine.now engine :: !fins) }
  done;
  Engine.run engine;
  Alcotest.(check (list Util.time)) "back-to-back, one per ms"
    [ Time.ms 1; Time.ms 2; Time.ms 3 ]
    (List.rev !fins)

let test_ram_in_context_charge () =
  let charged = ref Time.zero in
  let charge span = charged := Time.add !charged span; true in
  let engine, rd = make_ram ~charge () in
  let dev = Ramdisk.blkdev rd in
  let done_at = ref None in
  dev.Blkdev.dv_strategy
    { Blkdev.r_blkno = 0; r_data = Bytes.create 8192; r_count = 8192;
      r_write = false; r_done = (fun _ -> done_at := Some (Engine.now engine)) };
  (* The caller is charged synchronously... *)
  Alcotest.check Util.time "caller charged" (Time.ms 1) !charged;
  (* ...but completion is delivered from the event loop (same instant,
     never re-entrant from strategy). *)
  Alcotest.(check bool) "not synchronous" true (!done_at = None);
  Engine.run engine;
  Alcotest.(check (option Util.time)) "completion at the same instant"
    (Some Time.zero) !done_at

let test_ram_error_injection () =
  let engine, rd = make_ram () in
  let dev = Ramdisk.blkdev rd in
  Ramdisk.inject_error rd ~blkno:2;
  let got = ref None in
  dev.Blkdev.dv_strategy
    { Blkdev.r_blkno = 2; r_data = Bytes.create 8192; r_count = 8192;
      r_write = false; r_done = (fun e -> got := e) };
  Engine.run engine;
  Alcotest.(check bool) "error" true (!got <> None)

let test_shared_arbiter_serializes_two_disks () =
  let engine = Engine.create () in
  let arb = Ramdisk.arbiter () in
  let mk name =
    Ramdisk.create ~name ~copy_rate:8.192e6 ~block_size:8192 ~nblocks:8
      ~arbiter:arb ~engine ~intr:Util.free_intr ()
  in
  let a = mk "ramA" and b = mk "ramB" in
  let fins = ref [] in
  let issue rd =
    (Ramdisk.blkdev rd).Blkdev.dv_strategy
      { Blkdev.r_blkno = 0; r_data = Bytes.create 8192; r_count = 8192;
        r_write = false;
        r_done = (fun _ -> fins := Engine.now engine :: !fins) }
  in
  issue a;
  issue b;
  Engine.run engine;
  Alcotest.(check (list Util.time)) "cross-device serialization"
    [ Time.ms 1; Time.ms 2 ] (List.rev !fins)

(* Chardev *)

let make_cd ?(rate = 8192.0) ?(fifo = 4096) () =
  let engine = Engine.create () in
  let cd =
    Chardev.create ~name:"dac" ~drain_rate:rate ~fifo_capacity:fifo
      ~drain_quantum:1024 ~engine ~intr:Util.free_intr ()
  in
  (engine, cd)

let test_chardev_drains_at_rate () =
  let engine, cd = make_cd () in
  let data = Bytes.make 4096 'a' in
  let accepted_at = ref Time.zero in
  Chardev.write_async cd data 0 4096 (fun () -> accepted_at := Engine.now engine);
  Engine.run engine;
  (* 4096 bytes at 8192 B/s: fully played after ~0.5 s. *)
  Alcotest.(check int) "all consumed" 4096 (Chardev.consumed cd);
  let t = Time.to_sec_f (Engine.now engine) in
  (* 4 drain ticks of 125 ms plus one trailing empty tick. *)
  if t < 0.45 || t > 0.75 then Alcotest.failf "drain took %.3fs" t;
  (* Fit entirely in the FIFO: accepted immediately. *)
  Alcotest.check Util.time "accepted at once" Time.zero !accepted_at

let test_chardev_write_paced_by_fifo () =
  let engine, cd = make_cd () in
  (* 8 KB into a 4 KB FIFO: acceptance completes only after half has
     drained, i.e. no earlier than 4096/8192 = 0.5 s. *)
  let data = Bytes.make 8192 'b' in
  let accepted_at = ref Time.zero in
  Chardev.write_async cd data 0 8192 (fun () -> accepted_at := Engine.now engine);
  Engine.run engine;
  Alcotest.(check bool) "pacing" true Time.(!accepted_at >= Time.of_sec_f 0.45);
  Alcotest.(check int) "everything played" 8192 (Chardev.consumed cd)

let test_chardev_captures_stream () =
  let engine, cd = make_cd () in
  let data = Bytes.init 2048 (fun i -> Char.chr (i land 0xff)) in
  Chardev.write_async cd data 0 2048 (fun () -> ());
  Engine.run engine;
  Alcotest.(check string) "capture matches" (Bytes.to_string data)
    (String.sub (Chardev.captured cd) 0 2048)

let test_chardev_fifo_ordering_across_writers () =
  let engine, cd = make_cd () in
  Chardev.write_async cd (Bytes.make 1000 'x') 0 1000 (fun () -> ());
  Chardev.write_async cd (Bytes.make 1000 'y') 0 1000 (fun () -> ());
  Engine.run engine;
  let cap = Chardev.captured cd in
  Alcotest.(check string) "x before y"
    (String.make 1000 'x' ^ String.make 1000 'y')
    (String.sub cap 0 2000)

let test_chardev_underrun_detection () =
  let engine, cd = make_cd () in
  Chardev.write_async cd (Bytes.make 1024 'a') 0 1024 (fun () -> ());
  Engine.run engine;
  (* Stream still open, FIFO empty: an underrun tick fired. *)
  Alcotest.(check bool) "underrun counted" true (Chardev.underruns cd >= 1);
  Chardev.close_stream cd;
  let before = Chardev.underruns cd in
  Engine.run engine;
  Alcotest.(check int) "closed stream quiet" before (Chardev.underruns cd)

let test_chardev_try_write () =
  let engine, cd = make_cd () in
  let n = Chardev.try_write cd (Bytes.make 10000 'q') 0 10000 in
  Alcotest.(check int) "clipped to fifo space" 4096 n;
  Engine.run engine;
  Alcotest.(check int) "played what fit" 4096 (Chardev.consumed cd)

(* Framebuffer *)

let test_framebuffer_frames () =
  let engine = Engine.create () in
  let fb =
    Framebuffer.create ~name:"fb" ~frame_bytes:1024 ~frames_per_sec:10.0
      ~engine ()
  in
  let got = ref [] in
  let rec grab n =
    if n > 0 then
      Framebuffer.next_frame fb (fun ~seq frame ->
          got := (seq, frame, Engine.now engine) :: !got;
          grab (n - 1))
  in
  grab 3;
  Engine.run engine;
  let frames = List.rev !got in
  Alcotest.(check (list int)) "sequence numbers" [ 0; 1; 2 ]
    (List.map (fun (s, _, _) -> s) frames);
  List.iter
    (fun (seq, frame, _) ->
      Alcotest.(check bytes) "pattern"
        (Framebuffer.frame_pattern ~seq ~size:1024)
        frame)
    frames;
  let _, _, t2 = List.nth frames 2 in
  Alcotest.check Util.time "100 ms per frame" (Time.ms 300) t2

let test_framebuffer_stop () =
  let engine = Engine.create () in
  let fb =
    Framebuffer.create ~name:"fb" ~frame_bytes:16 ~frames_per_sec:100.0 ~engine ()
  in
  Framebuffer.next_frame fb (fun ~seq:_ _ -> Alcotest.fail "should not fire");
  Framebuffer.stop fb;
  Engine.run engine;
  Alcotest.check_raises "next_frame after stop" (Invalid_argument "fb: stopped")
    (fun () -> Framebuffer.next_frame fb (fun ~seq:_ _ -> ()))

let suite =
  [
    Alcotest.test_case "ramdisk round trip" `Quick test_ram_roundtrip;
    Alcotest.test_case "ramdisk copy time" `Quick test_ram_copy_takes_time;
    Alcotest.test_case "ramdisk serialization" `Quick test_ram_copies_serialized;
    Alcotest.test_case "ramdisk in-context charge" `Quick test_ram_in_context_charge;
    Alcotest.test_case "ramdisk error injection" `Quick test_ram_error_injection;
    Alcotest.test_case "shared arbiter" `Quick test_shared_arbiter_serializes_two_disks;
    Alcotest.test_case "chardev drain rate" `Quick test_chardev_drains_at_rate;
    Alcotest.test_case "chardev write pacing" `Quick test_chardev_write_paced_by_fifo;
    Alcotest.test_case "chardev capture" `Quick test_chardev_captures_stream;
    Alcotest.test_case "chardev writer ordering" `Quick test_chardev_fifo_ordering_across_writers;
    Alcotest.test_case "chardev underruns" `Quick test_chardev_underrun_detection;
    Alcotest.test_case "chardev try_write" `Quick test_chardev_try_write;
    Alcotest.test_case "framebuffer frames" `Quick test_framebuffer_frames;
    Alcotest.test_case "framebuffer stop" `Quick test_framebuffer_stop;
  ]
