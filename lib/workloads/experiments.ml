open Kpath_sim
open Kpath_buf
open Kpath_fs
open Kpath_net
open Kpath_proc
open Kpath_core
open Kpath_kernel

type disk_kind = [ `Ram | `Rz56 | `Rz58 ]

let disk_name = function `Ram -> "RAM" | `Rz56 -> "RZ56" | `Rz58 -> "RZ58"

type setup = {
  machine : Machine.t;
  src_path : string;
  dst_path : string;
  file_bytes : int;
  drives : Machine.drive list;  (* [src; dst] — dst aliases src when same_disk *)
}

(* Drives must hold the file plus metadata; the RAM disk is fixed at
   16 MB, so same-disk RAM setups get a doubled device. *)
let drive_blocks ~config ~disk ~file_bytes ~same_disk =
  let bs = config.Config.block_size in
  let need = (file_bytes / bs * (if same_disk then 2 else 1)) + 64 in
  match disk with
  | `Ram -> Some (max config.Config.ramdisk_blocks need)
  | `Rz56 | `Rz58 -> Some (max 4096 need)

let make_setup ~disk ?(file_bytes = 8 * 1024 * 1024) ?(same_disk = false)
    ?disk_queue ?(machine_config = Config.decstation_5000_200) () =
  let m = Machine.create ~config:machine_config () in
  let nblocks =
    drive_blocks ~config:machine_config ~disk ~file_bytes ~same_disk
  in
  let d0 =
    Machine.make_drive m ~name:"disk0" ~kind:disk ?nblocks ?queue:disk_queue ()
  in
  let d1 =
    if same_disk then d0
    else Machine.make_drive m ~name:"disk1" ~kind:disk ?nblocks ?queue:disk_queue ()
  in
  let setup_done = ref false in
  let _init =
    Machine.spawn m ~name:"init" (fun () ->
        let fs0 = Fs.mkfs ~cache:(Machine.cache m) (Machine.blkdev d0) ~ninodes:64 in
        Machine.mount m "/src" fs0;
        (if same_disk then Machine.mount m "/dst" fs0
         else begin
           let fs1 =
             Fs.mkfs ~cache:(Machine.cache m) (Machine.blkdev d1) ~ninodes:64
           in
           Machine.mount m "/dst" fs1
         end);
        setup_done := true)
  in
  Machine.run m;
  if not !setup_done then failwith "experiment setup failed";
  let writer_done = ref false in
  let writer =
    Programs.spawn_file_writer m ~path:"/src/data" ~bytes:file_bytes ()
  in
  Sched.exit_hook writer (fun () -> writer_done := true);
  Machine.run m;
  if not !writer_done then failwith "source file creation failed";
  let s =
    {
      machine = m;
      src_path = "/src/data";
      dst_path = "/dst/copy";
      file_bytes;
      drives = [ d0; d1 ];
    }
  in
  s

let cold_caches s =
  let m = s.machine in
  let devs =
    List.filter_map
      (fun path -> Option.map (fun (fs, _) -> Fs.dev fs) (Machine.resolve m path))
      [ "/src"; "/dst" ]
  in
  List.iter (fun dev -> Cache.invalidate_dev (Machine.cache m) dev) devs

(* {1 Throughput (Table 2)} *)

type copy_measure = {
  cm_bytes : int;
  cm_seconds : float;
  cm_kb_per_sec : float;
  cm_verified : bool;
  cm_events : int;
}

let verify_dst s =
  let verdict = ref false in
  let v =
    Programs.spawn_verifier s.machine ~path:s.dst_path ~expect_bytes:s.file_bytes
      (fun ok -> verdict := ok)
  in
  Machine.run s.machine;
  if not (Kpath_proc.Process.is_zombie v) then failwith "verifier stuck";
  !verdict

let measure_copy ~mode ~disk ?file_bytes ?same_disk ?disk_queue
    ?machine_config ?config () =
  let s = make_setup ~disk ?file_bytes ?same_disk ?disk_queue ?machine_config () in
  cold_caches s;
  let stats = Programs.fresh_copy_stats () in
  let _copier =
    match mode with
    | `Cp -> Programs.spawn_cp s.machine ~src:s.src_path ~dst:s.dst_path stats
    | `Mcp -> Programs.spawn_mcp s.machine ~src:s.src_path ~dst:s.dst_path stats
    | `Scp -> Programs.spawn_scp s.machine ~src:s.src_path ~dst:s.dst_path ?config stats
  in
  Machine.run s.machine;
  if stats.Programs.copies_done < 1 then failwith "copy did not complete";
  let events = Engine.events_fired (Machine.engine s.machine) in
  let seconds =
    Time.to_sec_f (Time.diff stats.Programs.copy_finished stats.Programs.copy_started)
  in
  let verified = verify_dst s in
  {
    cm_bytes = stats.Programs.bytes_copied;
    cm_seconds = seconds;
    cm_kb_per_sec = float_of_int stats.Programs.bytes_copied /. 1024.0 /. seconds;
    cm_verified = verified;
    cm_events = events;
  }

type tput_row = {
  tp_disk : disk_kind;
  tp_scp_kbps : float;
  tp_cp_kbps : float;
  tp_pct_improvement : float;
}

let table2 ?file_bytes () =
  List.map
    (fun disk ->
      let scp = measure_copy ~mode:`Scp ~disk ?file_bytes () in
      let cp = measure_copy ~mode:`Cp ~disk ?file_bytes () in
      if not (scp.cm_verified && cp.cm_verified) then
        failwith ("table2: integrity check failed on " ^ disk_name disk);
      {
        tp_disk = disk;
        tp_scp_kbps = scp.cm_kb_per_sec;
        tp_cp_kbps = cp.cm_kb_per_sec;
        tp_pct_improvement =
          (scp.cm_kb_per_sec -. cp.cm_kb_per_sec) /. cp.cm_kb_per_sec *. 100.0;
      })
    [ `Ram; `Rz56; `Rz58 ]

(* {1 CPU availability (Table 1)} *)

type avail_row = {
  av_disk : disk_kind;
  av_f_cp : float;
  av_f_scp : float;
  av_improvement : float;
  av_pct : float;
}

let idle_seconds ~ops =
  let m = Machine.create () in
  let stats = Programs.fresh_test_stats () in
  let _p = Programs.spawn_test_program m ~ops stats in
  Machine.run m;
  match stats.Programs.test_finished with
  | Some t -> Time.to_sec_f t
  | None -> failwith "idle test program did not finish"

let slowdown ~mode ~disk ?file_bytes ?pace ?machine_config ~ops () =
  let s = make_setup ~disk ?file_bytes ?machine_config () in
  cold_caches s;
  let test_stats = Programs.fresh_test_stats () in
  let stop = ref false in
  let copy_stats = Programs.fresh_copy_stats () in
  let _copier =
    match mode with
    | `Cp ->
      Programs.spawn_cp s.machine ~src:s.src_path ~dst:s.dst_path ?pace
        ~loop_until:stop copy_stats
    | `Scp ->
      Programs.spawn_scp s.machine ~src:s.src_path ~dst:s.dst_path ?pace
        ~loop_until:stop copy_stats
  in
  let test = Programs.spawn_test_program s.machine ~ops test_stats in
  Sched.exit_hook test (fun () -> stop := true);
  Machine.run s.machine;
  match test_stats.Programs.test_finished with
  | Some t ->
    Time.to_sec_f (Time.diff t test_stats.Programs.test_started)
    /. idle_seconds ~ops
  | None -> failwith "loaded test program did not finish"

let table1 ?file_bytes ?(ops = 2000) ?(pace = Some 1.0e6) () =
  List.map
    (fun disk ->
      let f_cp = slowdown ~mode:`Cp ~disk ?file_bytes ?pace ~ops () in
      let f_scp = slowdown ~mode:`Scp ~disk ?file_bytes ?pace ~ops () in
      {
        av_disk = disk;
        av_f_cp = f_cp;
        av_f_scp = f_scp;
        av_improvement = f_cp /. f_scp;
        av_pct = (f_cp /. f_scp -. 1.0) *. 100.0;
      })
    [ `Ram; `Rz56; `Rz58 ]

let availability_timeline ~mode ~disk ?file_bytes ?pace ?(ops = 2000)
    ?(bucket = Time.ms 250) () =
  let s = make_setup ~disk ?file_bytes () in
  cold_caches s;
  let test_stats = Programs.fresh_test_stats () in
  let stop = ref false in
  let copy_stats = Programs.fresh_copy_stats () in
  let _copier =
    match mode with
    | `Cp ->
      Programs.spawn_cp s.machine ~src:s.src_path ~dst:s.dst_path ?pace
        ~loop_until:stop copy_stats
    | `Scp ->
      Programs.spawn_scp s.machine ~src:s.src_path ~dst:s.dst_path ?pace
        ~loop_until:stop copy_stats
  in
  let test = Programs.spawn_test_program s.machine ~ops test_stats in
  Sched.exit_hook test (fun () -> stop := true);
  (* Sample completed ops at bucket boundaries until the test exits. *)
  let samples = ref [] in
  let engine = Machine.engine s.machine in
  let rec sample prev =
    ignore
      (Engine.schedule_after engine bucket (fun () ->
           if test_stats.Programs.test_finished = None then begin
             let now_ops = test_stats.Programs.ops_done in
             samples := (now_ops - prev) :: !samples;
             sample now_ops
           end))
  in
  sample 0;
  Machine.run s.machine;
  List.rev !samples

(* {1 Cluster sweep (§7 "larger transfer units")} *)

let drive_serviced = function
  | Machine.Scsi d -> Kpath_dev.Disk.serviced d
  | Machine.Ram r -> Kpath_dev.Ramdisk.serviced r

type cluster_row = {
  cl_cluster : int;
  cl_disk : disk_kind;
  cl_scp_kbps : float;
  cl_intrs_per_mb : float;
  cl_f_scp : float;
}

let measure_cluster ~disk ?file_bytes ?(ops = 2000) ?(pace = Some 1.0e6)
    ~cluster () =
  let machine_config =
    { Config.decstation_5000_200 with max_cluster = cluster }
  in
  (* Throughput and device interrupts on an otherwise idle machine. *)
  let s = make_setup ~disk ?file_bytes ~machine_config () in
  cold_caches s;
  let before = List.fold_left (fun a d -> a + drive_serviced d) 0 s.drives in
  let stats = Programs.fresh_copy_stats () in
  let _copier = Programs.spawn_scp s.machine ~src:s.src_path ~dst:s.dst_path stats in
  Machine.run s.machine;
  if stats.Programs.copies_done < 1 then failwith "cluster copy did not complete";
  let seconds =
    Time.to_sec_f (Time.diff stats.Programs.copy_finished stats.Programs.copy_started)
  in
  let after = List.fold_left (fun a d -> a + drive_serviced d) 0 s.drives in
  if not (verify_dst s) then failwith "cluster copy corrupted the destination";
  let mb = float_of_int stats.Programs.bytes_copied /. (1024.0 *. 1024.0) in
  (* CPU availability: test-program slowdown under a paced scp loop. *)
  let f_scp = slowdown ~mode:`Scp ~disk ?file_bytes ?pace ~machine_config ~ops () in
  {
    cl_cluster = cluster;
    cl_disk = disk;
    cl_scp_kbps = float_of_int stats.Programs.bytes_copied /. 1024.0 /. seconds;
    cl_intrs_per_mb = float_of_int (after - before) /. mb;
    cl_f_scp = f_scp;
  }

let cluster_sweep ~disk ?file_bytes ?ops ?pace sizes =
  List.map (fun cluster -> measure_cluster ~disk ?file_bytes ?ops ?pace ~cluster ()) sizes

(* {1 Ablations} *)

let watermark_sweep ~disk ?file_bytes configs =
  List.map
    (fun config -> (config, measure_copy ~mode:`Scp ~disk ?file_bytes ~config ()))
    configs

let size_sweep ~disk sizes =
  List.map
    (fun file_bytes ->
      ( file_bytes,
        measure_copy ~mode:`Scp ~disk ~file_bytes (),
        measure_copy ~mode:`Cp ~disk ~file_bytes () ))
    sizes

(* {1 Continuous-media playback} *)

type media_measure = {
  md_frames : int;
  md_late_frames : int;
  md_audio_underruns : int;
  md_fps : float;
  md_player_cpu_sec : float;
}

let measure_media ~player ?(load = 0) ?(seconds = 5) ?(fps = 15) () =
  let m = Machine.create () in
  let drive = Machine.make_drive m ~name:"rz58-0" ~kind:`Rz58 () in
  let audio_rate = 64_000.0 (* 64 KB/s: 8 kHz 16-bit stereo-ish *) in
  let frame_bytes = 32 * 1024 in
  let audio_bytes = int_of_float audio_rate * seconds in
  let nframes = fps * seconds in
  let audio_dev =
    Kpath_dev.Chardev.create ~name:"speaker" ~drain_rate:audio_rate
      ~fifo_capacity:(32 * 1024) ~engine:(Machine.engine m)
      ~intr:(Machine.intr m) ()
  in
  let video_dev =
    Kpath_dev.Chardev.create ~name:"video"
      ~drain_rate:(float_of_int (frame_bytes * fps * 4))
      ~fifo_capacity:(4 * frame_bytes) ~engine:(Machine.engine m)
      ~intr:(Machine.intr m) ()
  in
  Machine.register_chardev m "/dev/speaker" audio_dev;
  Machine.register_chardev m "/dev/video" video_dev;
  let interval = Time.of_sec_f (1.0 /. float_of_int fps) in
  let frames = ref 0 and late = ref 0 in
  let done_flag = ref false in
  let video_done_at = ref Time.zero in
  let player_cpu = ref Time.zero in
  let charge (p : Process.t) =
    player_cpu := Time.add !player_cpu (Time.add p.Process.cpu_user p.Process.cpu_sys)
  in
  (* Media files. *)
  let _setup =
    Machine.spawn m ~name:"setup" (fun () ->
        let fs =
          Fs.mkfs ~cache:(Machine.cache m) (Machine.blkdev drive) ~ninodes:32
        in
        Machine.mount m "/" fs;
        let env = Syscall.make_env m in
        let make path bytes =
          let fd =
            Syscall.openf env path [ Syscall.O_CREAT; Syscall.O_WRONLY ]
          in
          let chunk = Bytes.create 65536 in
          let rec go off =
            if off < bytes then begin
              let n = min 65536 (bytes - off) in
              Programs.fill_pattern chunk ~file_off:off;
              ignore (Syscall.write env fd chunk ~pos:0 ~len:n);
              go (off + n)
            end
          in
          go 0;
          Syscall.fsync env fd;
          Syscall.close env fd
        in
        make "/movie.audio" audio_bytes;
        make "/movie.video" (nframes * frame_bytes))
  in
  Machine.run m;
  Cache.invalidate_dev (Machine.cache m) (Machine.blkdev drive);
  (* Play one video frame per tick; a frame whose delivery overruns the
     tick is late. *)
  let video_body env deliver_frame =
    Syscall.sigaction env Signal.sigalrm (Some (fun () -> ()));
    Syscall.setitimer env (Some interval);
    let rec go k =
      if k < nframes then begin
        let t0 = Machine.now m in
        deliver_frame k;
        incr frames;
        if Time.(Time.diff (Machine.now m) t0 > interval) then incr late;
        Syscall.pause env;
        go (k + 1)
      end
    in
    go 0;
    Syscall.setitimer env None;
    video_done_at := Machine.now m
  in
  (match player with
   | `Splice ->
     (* The paper's single-process player (§4). *)
     let p =
       Machine.spawn m ~name:"splice-player" (fun () ->
           let env = Syscall.make_env m in
           let audiofile = Syscall.openf env "/movie.audio" [ Syscall.O_RDONLY ] in
           let videofile = Syscall.openf env "/movie.video" [ Syscall.O_RDONLY ] in
           let audio_fd = Syscall.openf env "/dev/speaker" [ Syscall.O_WRONLY ] in
           let video_fd = Syscall.openf env "/dev/video" [ Syscall.O_WRONLY ] in
           Syscall.fcntl_setfl env audiofile ~fasync:true;
           ignore
             (Syscall.splice env ~src:audiofile ~dst:audio_fd Syscall.splice_eof);
           video_body env (fun _k ->
               ignore (Syscall.splice env ~src:videofile ~dst:video_fd frame_bytes));
           done_flag := true)
     in
     Sched.exit_hook p (fun () -> charge p)
   | `Process ->
     (* Two pump processes, one per stream. *)
     let audio =
       Machine.spawn m ~name:"audiod" (fun () ->
           let env = Syscall.make_env m in
           let src = Syscall.openf env "/movie.audio" [ Syscall.O_RDONLY ] in
           let dst = Syscall.openf env "/dev/speaker" [ Syscall.O_WRONLY ] in
           let buf = Bytes.create 4096 in
           let rec go () =
             let n = Syscall.read env src buf ~pos:0 ~len:4096 in
             if n > 0 then begin
               ignore (Syscall.write env dst buf ~pos:0 ~len:n);
               go ()
             end
           in
           go ())
     in
     let video =
       Machine.spawn m ~name:"videod" (fun () ->
           let env = Syscall.make_env m in
           let src = Syscall.openf env "/movie.video" [ Syscall.O_RDONLY ] in
           let dst = Syscall.openf env "/dev/video" [ Syscall.O_WRONLY ] in
           let buf = Bytes.create frame_bytes in
           video_body env (fun _k ->
               let n = Syscall.read env src buf ~pos:0 ~len:frame_bytes in
               ignore (Syscall.write env dst buf ~pos:0 ~len:n));
           done_flag := true)
     in
     Sched.exit_hook audio (fun () -> charge audio);
     Sched.exit_hook video (fun () -> charge video));
  (* Background compute load. *)
  let rec spawn_load k =
    if k > 0 then begin
      ignore
        (Machine.spawn m ~name:(Printf.sprintf "hog%d" k) (fun () ->
             while not !done_flag do
               Process.use_cpu Process.User (Time.ms 1)
             done));
      spawn_load (k - 1)
    end
  in
  let start = Machine.now m in
  spawn_load load;
  Machine.run m;
  let play_time =
    let fin = if Time.(!video_done_at > start) then !video_done_at else Machine.now m in
    Time.to_sec_f (Time.diff fin start)
  in
  {
    md_frames = !frames;
    md_late_frames = !late;
    md_audio_underruns = Kpath_dev.Chardev.underruns audio_dev;
    md_fps = float_of_int !frames /. play_time;
    md_player_cpu_sec = Time.to_sec_f !player_cpu;
  }

(* {1 File serving over TCP} *)

type sendfile_measure = {
  sf_bytes : int;
  sf_verified : bool;
  sf_seconds : float;
  sf_kb_per_sec : float;
  sf_server_cpu_sec : float;
  sf_retransmits : int;
}

let measure_sendfile ~mode ?(file_bytes = 4 * 1024 * 1024) ?(loss = 0.0)
    ?(bandwidth = 2.5e6) ?(machine_config = Config.decstation_5000_200) () =
  let engine =
    Engine.create ~backend:machine_config.Config.sim_engine
      ~tick:machine_config.Config.callout_tick ()
  in
  let server = Machine.create ~config:machine_config ~engine () in
  let client = Machine.create ~config:machine_config ~engine () in
  let net = Netif.create_net ~bandwidth engine in
  if loss > 0.0 then Netif.set_loss net loss;
  let srv_if = Netif.attach net ~name:"srv0" ~intr:(Machine.intr server) () in
  let cli_if = Netif.attach net ~name:"cli0" ~intr:(Machine.intr client) () in
  let drive = Machine.make_drive server ~name:"rz58-0" ~kind:`Rz58 () in
  let retx = ref 0 in
  let started = ref Time.zero and finished = ref Time.zero in
  let received = ref 0 and corrupt = ref 0 in
  let server_cpu = ref Time.zero in
  (* Server: produce the file, then serve one connection. *)
  let _srv =
    Machine.spawn server ~name:"file-server" (fun () ->
        let fs =
          Fs.mkfs ~cache:(Machine.cache server) (Machine.blkdev drive)
            ~ninodes:16
        in
        Machine.mount server "/" fs;
        let env = Syscall.make_env server in
        let fd = Syscall.openf env "/data" [ Syscall.O_CREAT; Syscall.O_WRONLY ] in
        let chunk = Bytes.create 65536 in
        let rec fill off =
          if off < file_bytes then begin
            let n = min 65536 (file_bytes - off) in
            Programs.fill_pattern chunk ~file_off:off;
            ignore (Syscall.write env fd chunk ~pos:0 ~len:n);
            fill (off + n)
          end
        in
        fill 0;
        Syscall.fsync env fd;
        Syscall.close env fd;
        Cache.invalidate_dev (Machine.cache server) (Machine.blkdev drive);
        let l = Syscall.tcp_listen env srv_if ~port:80 in
        let cfd = Syscall.tcp_accept env l in
        started := Engine.now engine;
        let cpu_mark = Cpu.busy (Sched.cpu (Machine.sched server)) in
        let src = Syscall.openf env "/data" [ Syscall.O_RDONLY ] in
        (match mode with
         | `Sendfile ->
           ignore (Syscall.splice env ~src ~dst:cfd Syscall.splice_eof)
         | `ReadWrite ->
           let buf = Bytes.create 8192 in
           let rec serve () =
             let n = Syscall.read env src buf ~pos:0 ~len:8192 in
             if n > 0 then begin
               ignore (Syscall.write env cfd buf ~pos:0 ~len:n);
               serve ()
             end
           in
           serve ());
        retx := Tcp.retransmits (Syscall.tcp_conn env cfd);
        Syscall.close env src;
        Syscall.close env cfd;
        server_cpu :=
          Time.diff (Cpu.busy (Sched.cpu (Machine.sched server))) cpu_mark)
  in
  (* Client: connect (retrying while the server is still preparing),
     drain the stream and verify every byte. *)
  let _cli =
    Machine.spawn client ~name:"client" (fun () ->
        let env = Syscall.make_env client in
        let rec try_connect attempts =
          match
            Syscall.tcp_connect env cli_if ~port:1000
              ~dst:{ Tcp.a_if = Netif.id srv_if; a_port = 80 }
              ()
          with
          | fd -> fd
          | exception Errno.Unix_error (Errno.EIO, _) when attempts > 0 ->
            try_connect (attempts - 1)
        in
        let fd = try_connect 3 in
        let buf = Bytes.create 8192 in
        let rec drain () =
          let n = Syscall.read env fd buf ~pos:0 ~len:8192 in
          if n > 0 then begin
            for i = 0 to n - 1 do
              if Bytes.get buf i <> Programs.pattern_byte (!received + i) then
                incr corrupt
            done;
            received := !received + n;
            finished := Engine.now engine;
            drain ()
          end
        in
        drain ();
        Syscall.close env fd)
  in
  Machine.run server;
  let seconds =
    if Time.(!finished > !started) then Time.to_sec_f (Time.diff !finished !started)
    else 0.0
  in
  {
    sf_bytes = !received;
    sf_verified = (!corrupt = 0 && !received = file_bytes);
    sf_seconds = seconds;
    sf_kb_per_sec =
      (if seconds > 0.0 then float_of_int !received /. 1024.0 /. seconds else 0.0);
    sf_server_cpu_sec = Time.to_sec_f !server_cpu;
    sf_retransmits = !retx;
  }

(* {1 Fan-out: one file to N TCP clients (splice graph)} *)

type fanout_measure = {
  fo_clients : int;
  fo_bytes_per_client : int;
  fo_verified : bool;
  fo_device_reads : int;
  fo_seconds : float;
  fo_agg_kb_per_sec : float;
  fo_server_cpu_sec : float;
  fo_pinned_after : int;
  fo_events : int;
  fo_prog_runs : int;
  fo_prog_insns : int;
}

let measure_fanout ?(clients = 8) ?(file_bytes = 1024 * 1024)
    ?(bandwidth = 2.5e6) ?config ?filters ?window ?trace_json
    ?(machine_config = Config.decstation_5000_200) () =
  let engine =
    Engine.create ~backend:machine_config.Config.sim_engine
      ~tick:machine_config.Config.callout_tick ()
  in
  let server = Machine.create ~config:machine_config ~engine () in
  if trace_json <> None then Trace.enable (Machine.trace server) "graph";
  let client = Machine.create ~config:machine_config ~engine () in
  let net = Netif.create_net ~bandwidth engine in
  let srv_if = Netif.attach net ~name:"srv0" ~intr:(Machine.intr server) () in
  let cli_if = Netif.attach net ~name:"cli0" ~intr:(Machine.intr client) () in
  let bs = (Machine.config server).Config.block_size in
  let nblocks = max 4096 ((file_bytes / bs) + 64) in
  let drive =
    Machine.make_drive server ~name:"rz58-0" ~kind:`Rz58 ~nblocks ()
  in
  let started = ref Time.zero and finished = ref Time.zero in
  let received = Array.make clients 0 in
  let corrupt = ref 0 in
  let server_cpu = ref Time.zero in
  let device_reads = ref 0 in
  let pinned_after = ref 0 in
  let prog_runs = ref 0 and prog_insns = ref 0 in
  (* Server: produce the file cold, accept every client, then stream the
     file to all of them with one splice graph — one disk pass. *)
  let _srv =
    Machine.spawn server ~name:"fanout-server" (fun () ->
        let fs =
          Fs.mkfs ~cache:(Machine.cache server) (Machine.blkdev drive)
            ~ninodes:16
        in
        Machine.mount server "/" fs;
        let env = Syscall.make_env server in
        let fd = Syscall.openf env "/data" [ Syscall.O_CREAT; Syscall.O_WRONLY ] in
        let chunk = Bytes.create 65536 in
        let rec fill off =
          if off < file_bytes then begin
            let n = min 65536 (file_bytes - off) in
            Programs.fill_pattern chunk ~file_off:off;
            ignore (Syscall.write env fd chunk ~pos:0 ~len:n);
            fill (off + n)
          end
        in
        fill 0;
        Syscall.fsync env fd;
        Syscall.close env fd;
        Cache.invalidate_dev (Machine.cache server) (Machine.blkdev drive);
        let l = Syscall.tcp_listen env srv_if ~port:80 in
        let cfds = List.init clients (fun _ -> Syscall.tcp_accept env l) in
        started := Engine.now engine;
        let cpu_mark = Cpu.busy (Sched.cpu (Machine.sched server)) in
        let reads_mark =
          Stats.get (Cache.stats (Machine.cache server)) "cache.dev_reads"
        in
        let gstats =
          Kpath_graph.Graph.ctx_stats (Machine.graph_ctx server)
        in
        let runs_mark = Stats.get gstats "graph.prog_runs" in
        let insns_mark = Stats.get gstats "graph.prog_insns" in
        let src = Syscall.openf env "/data" [ Syscall.O_RDONLY ] in
        ignore
          (Syscall.splice_graph env ~srcs:[ src ] ~dsts:cfds ?config ?filters
             ?window Syscall.splice_eof);
        device_reads :=
          Stats.get (Cache.stats (Machine.cache server)) "cache.dev_reads"
          - reads_mark;
        prog_runs := Stats.get gstats "graph.prog_runs" - runs_mark;
        prog_insns := Stats.get gstats "graph.prog_insns" - insns_mark;
        pinned_after := Cache.pinned_count (Machine.cache server);
        Syscall.close env src;
        List.iter (Syscall.close env) cfds;
        server_cpu :=
          Time.diff (Cpu.busy (Sched.cpu (Machine.sched server))) cpu_mark)
  in
  (* Clients: one reader process per connection on the client machine,
     each draining and verifying its own copy of the pattern. *)
  for i = 0 to clients - 1 do
    ignore
      (Machine.spawn client ~name:(Printf.sprintf "client%d" i) (fun () ->
           let env = Syscall.make_env client in
           let rec try_connect attempts =
             match
               Syscall.tcp_connect env cli_if ~port:(1000 + i)
                 ~dst:{ Tcp.a_if = Netif.id srv_if; a_port = 80 }
                 ~rcvbuf:(512 * 1024) ()
             with
             | fd -> fd
             | exception Errno.Unix_error (Errno.EIO, _) when attempts > 0 ->
               try_connect (attempts - 1)
           in
           let fd = try_connect 5 in
           let buf = Bytes.create 8192 in
           let rec drain () =
             let n = Syscall.read env fd buf ~pos:0 ~len:8192 in
             if n > 0 then begin
               corrupt :=
                 !corrupt
                 + Programs.pattern_mismatches buf ~pos:0 ~len:n
                     ~file_off:received.(i);
               received.(i) <- received.(i) + n;
               if Time.(Engine.now engine > !finished) then
                 finished := Engine.now engine;
               drain ()
             end
           in
           drain ();
           Syscall.close env fd))
  done;
  Machine.run server;
  (match trace_json with
   | Some fmt -> Trace.dump_json fmt (Machine.trace server)
   | None -> ());
  let complete = Array.for_all (fun n -> n = file_bytes) received in
  let total = Array.fold_left ( + ) 0 received in
  let seconds =
    if Time.(!finished > !started) then Time.to_sec_f (Time.diff !finished !started)
    else 0.0
  in
  {
    fo_clients = clients;
    fo_bytes_per_client = file_bytes;
    fo_verified = (!corrupt = 0 && complete);
    fo_device_reads = !device_reads;
    fo_seconds = seconds;
    fo_agg_kb_per_sec =
      (if seconds > 0.0 then float_of_int total /. 1024.0 /. seconds else 0.0);
    fo_server_cpu_sec = Time.to_sec_f !server_cpu;
    fo_pinned_after = !pinned_after;
    fo_events = Engine.events_fired engine;
    fo_prog_runs = !prog_runs;
    fo_prog_insns = !prog_insns;
  }

(* {1 Filter-program overhead — interpreted edge programs vs built-ins} *)

type prog_row = {
  pr_stage : string;
  pr_bytes : int;
  pr_seconds : float;
  pr_kb_per_sec : float;
  pr_cpu_sec : float;
  pr_runs : int;
  pr_insns : int;
  pr_checksum : int option;
  pr_verified : bool;
  pr_events : int;
}

let measure_prog ~disk ?(file_bytes = 4 * 1024 * 1024) ~stage
    ?machine_config ?vm_backend () =
  let machine_config =
    (* An explicit backend overrides the config's: the bench sweeps
       price both backends on otherwise identical machines. *)
    match vm_backend with
    | None -> machine_config
    | Some b ->
      let c =
        Option.value machine_config ~default:Config.decstation_5000_200
      in
      Some { c with Config.vm_backend = b }
  in
  let s = make_setup ~disk ~file_bytes ?machine_config () in
  cold_caches s;
  let m = s.machine in
  let engine = Machine.engine m in
  let label, filters =
    match stage with
    | `Plain -> ("plain", [])
    | `Checksum -> ("checksum", [ Kpath_graph.Graph.Checksum ])
    | `Prog (name, ps) ->
      (name, List.map (fun p -> Kpath_graph.Graph.Prog p) ps)
  in
  let stats = Kpath_graph.Graph.ctx_stats (Machine.graph_ctx m) in
  let runs0 = Stats.get stats "graph.prog_runs" in
  let insns0 = Stats.get stats "graph.prog_insns" in
  let checksum = ref None in
  let cpu = ref Time.zero in
  let seconds = ref 0.0 in
  let _p =
    Machine.spawn m ~name:"prog-bench" (fun () ->
        let env = Syscall.make_env m in
        let src = Syscall.openf env s.src_path [ Syscall.O_RDONLY ] in
        let dst =
          Syscall.openf env s.dst_path [ Syscall.O_CREAT; Syscall.O_WRONLY ]
        in
        let cpu0 = Cpu.busy (Sched.cpu (Machine.sched m)) in
        let t0 = Engine.now engine in
        let g =
          Syscall.splice_graph_start env ~srcs:[ src ] ~dsts:[ dst ] ~filters
            Syscall.splice_eof
        in
        (match Kpath_graph.Graph.wait g with
         | Ok _ -> ()
         | Error e -> failwith ("measure_prog: " ^ e));
        seconds := Time.to_sec_f (Time.diff (Engine.now engine) t0);
        cpu := Time.diff (Cpu.busy (Sched.cpu (Machine.sched m))) cpu0;
        (match Kpath_graph.Graph.edges g with
         | [ e ] -> checksum := Kpath_graph.Graph.edge_checksum e
         | _ -> ());
        Syscall.fsync env dst;
        Syscall.close env src;
        Syscall.close env dst)
  in
  Machine.run m;
  let events = Engine.events_fired engine in
  let verified = verify_dst s in
  {
    pr_stage = label;
    pr_bytes = file_bytes;
    pr_seconds = !seconds;
    pr_kb_per_sec =
      (if !seconds > 0.0 then float_of_int file_bytes /. 1024.0 /. !seconds
       else 0.0);
    pr_cpu_sec = Time.to_sec_f !cpu;
    pr_runs = Stats.get stats "graph.prog_runs" - runs0;
    pr_insns = Stats.get stats "graph.prog_insns" - insns0;
    pr_checksum = !checksum;
    pr_verified = verified;
    pr_events = events;
  }

(* {1 UDP relay} *)

type relay_measure = {
  rm_datagrams : int;
  rm_dropped : int;
  rm_cpu_busy_frac : float;
  rm_seconds : float;
}

(* Stub hosts don't charge the relay CPU. *)
let free_intr ~service:_ fn = fn ()

let measure_relay ~mode ?(datagrams = 500) ?(dgram_bytes = 4096)
    ?(interval_us = 2000) () =
  let m = Machine.create () in
  let net = Netif.create_net ~bandwidth:2.5e6 (Machine.engine m) in
  let relay_if =
    Netif.attach net ~name:"relay0" ~intr:(Machine.intr m) ()
  in
  let sender_if = Netif.attach net ~name:"sender0" ~intr:free_intr () in
  let sink_if = Netif.attach net ~name:"sink0" ~intr:free_intr () in
  let sink_sock = Udp.create sink_if ~port:9 () in
  let received = ref 0 in
  Udp.set_upcall sink_sock (Some (fun _ -> incr received));
  let relay_in = Udp.create relay_if ~port:7 ~rcvbuf:(64 * 1024) () in
  let relay_out = Udp.create relay_if ~port:8 () in
  let sink_addr = Udp.addr sink_sock in
  (* The relay itself. *)
  (match mode with
   | `Splice ->
     let splice_started = ref false in
     let _starter =
       Machine.spawn m ~name:"splice-relay" (fun () ->
           let _desc =
             Splice.start (Machine.splice_ctx m)
               ~src:(Endpoint.Src_socket relay_in)
               ~dst:(Endpoint.Dst_socket { sock = relay_out; dst = sink_addr })
               ~size:(datagrams * dgram_bytes) ()
           in
           splice_started := true)
     in
     ()
   | `Process ->
     let _relay =
       Machine.spawn m ~name:"relay" (fun () ->
           let env = Syscall.make_env m in
           let buf = Bytes.create dgram_bytes in
           let fd_in = Syscall.socket_of env relay_in in
           let fd_out = Syscall.socket_of env relay_out in
           let rec go n =
             if n < datagrams then begin
               let got, _from = Syscall.recvfrom env fd_in buf ~pos:0 ~len:dgram_bytes in
               Syscall.sendto env fd_out sink_addr buf ~pos:0 ~len:got;
               go (n + 1)
             end
           in
           go 0)
     in
     ());
  (* Stub sender: one datagram every [interval_us]. *)
  let payload = Bytes.make dgram_bytes 'x' in
  let sender_sock = Udp.create sender_if ~port:5 () in
  let relay_in_addr = Udp.addr relay_in in
  let rec send_tick n =
    if n < datagrams then
      ignore
        (Engine.schedule_after (Machine.engine m) (Time.us interval_us) (fun () ->
             Udp.sendto sender_sock ~dst:relay_in_addr payload;
             send_tick (n + 1)))
  in
  send_tick 0;
  let horizon = Time.us (interval_us * (datagrams + 200)) in
  Machine.run ~until:horizon m;
  let now = Machine.now m in
  let cpu = Sched.cpu (Machine.sched m) in
  {
    rm_datagrams = !received;
    rm_dropped = Udp.drops relay_in;
    rm_cpu_busy_frac = Kpath_proc.Cpu.utilization cpu ~now;
    rm_seconds = Time.to_sec_f now;
  }

(* {1 Sharded fan-out: clients partitioned over domains, merged deterministically} *)

type fanout_shard_measure = {
  fsh_clients : int;
  fsh_domains : int;
  fsh_bytes_per_client : int;
  fsh_verified : bool;
  fsh_stage_events : int;
  fsh_events : int;
  fsh_seconds : float;
  fsh_agg_kb_per_sec : float;
  fsh_server_cpu_sec : float;
  fsh_digest : int;
  fsh_completions : (int * int) array;
}

(* FNV-1a-style fold for order-sensitive digests of the merged
   timeline. *)
let mix h v = (h lxor v) * 0x100000001b3 land max_int

(* Per-shard result; arrays are written by the owning domain only and
   read after the join in {!Kpath_sim.Shard.run}. *)
type shard_out = {
  so_comp : (int * int) array;  (* (completion time, global client id) *)
  so_corrupt : int;
  so_complete : bool;  (* every owned client got every byte *)
  so_stage_digest : int;
  so_stage_events : int;
  so_events : int;  (* delivery-phase events *)
  so_stage_cpu : Time.span;
  so_cpu : Time.span;  (* delivery-phase server CPU *)
}

(* Phase A (staging): one server machine produces the file cold and
   runs the splice graph once into a capture sink, recording each
   block's bytes (as a refcounted payload), length and delivery time.
   Every shard runs this identically — payload refcounts are not
   atomic, so the staged blocks must be born in the domain that will
   stream them; the digest proves the copies agree. *)
let stage_fanout_file ~machine_config ~file_bytes =
  let engine =
    Engine.create ~backend:machine_config.Config.sim_engine
      ~tick:machine_config.Config.callout_tick ()
  in
  let server = Machine.create ~config:machine_config ~engine () in
  let bs = machine_config.Config.block_size in
  let nblocks = (file_bytes + bs - 1) / bs in
  let drive =
    Machine.make_drive server ~name:"rz58-0" ~kind:`Rz58
      ~nblocks:(max 4096 (nblocks + 64)) ()
  in
  let staged_pl = Array.make nblocks Payload.none in
  let staged_len = Array.make nblocks 0 in
  let digest = ref 0x2545f4914f6cdd1d in
  let cpu = ref Time.zero in
  let _p =
    Machine.spawn server ~name:"fanout-stage" (fun () ->
        let fs =
          Fs.mkfs ~cache:(Machine.cache server) (Machine.blkdev drive)
            ~ninodes:16
        in
        Machine.mount server "/" fs;
        let env = Syscall.make_env server in
        let fd =
          Syscall.openf env "/data" [ Syscall.O_CREAT; Syscall.O_WRONLY ]
        in
        let chunk = Bytes.create 65536 in
        let rec fill off =
          if off < file_bytes then begin
            let n = min 65536 (file_bytes - off) in
            Programs.fill_pattern chunk ~file_off:off;
            ignore (Syscall.write env fd chunk ~pos:0 ~len:n);
            fill (off + n)
          end
        in
        fill 0;
        Syscall.fsync env fd;
        Syscall.close env fd;
        Cache.invalidate_dev (Machine.cache server) (Machine.blkdev drive);
        let fs, rel =
          match Machine.resolve server "/data" with
          | Some r -> r
          | None -> failwith "stage: /data unresolved"
        in
        let ino = Fs.lookup fs rel in
        let cpu0 = Cpu.busy (Sched.cpu (Machine.sched server)) in
        let g = Kpath_graph.Graph.create (Machine.graph_ctx server) () in
        let src = Kpath_graph.Graph.add_file_source g ~fs ~ino () in
        let snk =
          Kpath_graph.Graph.add_sink g
            (Kpath_graph.Graph.Sink_fn
               (fun ~lblk ~data ~len ->
                 (* [data] is the shared cache buffer, valid only during
                    this call: snapshot it once per block. *)
                 staged_pl.(lblk) <- Payload.of_bytes (Bytes.sub data 0 len);
                 staged_len.(lblk) <- len;
                 let now = (Engine.now engine :> int) in
                 digest := mix !digest now;
                 digest := mix !digest lblk;
                 digest := mix !digest len;
                 digest :=
                   mix !digest (Kpath_graph.Graph.block_checksum ~lblk data len)))
        in
        ignore (Kpath_graph.Graph.connect g ~src ~dst:snk ());
        Kpath_graph.Graph.start g;
        (match Kpath_graph.Graph.wait g with
         | Ok _ -> ()
         | Error e -> failwith ("stage: " ^ e));
        cpu := Time.diff (Cpu.busy (Sched.cpu (Machine.sched server))) cpu0)
  in
  Machine.run server;
  Array.iteri
    (fun i pl -> if Payload.is_none pl then failwith (Printf.sprintf "stage: block %d missing" i))
    staged_pl;
  (staged_pl, staged_len, !digest, Engine.events_fired engine, !cpu)

(* Phase B (delivery): stream the staged blocks to this shard's slice of
   the clients on a switched segment — per-client interface, per-flow
   lane, callback-driven TCP on both sides (no process per client), the
   block payloads shared zero-copy across every connection. Client [c]
   starts at the same absolute time whatever shard it lands in, and no
   state couples one flow to another, so per-client behaviour — and
   therefore the merged result — is independent of the partition. *)
let deliver_fanout_shard ~machine_config ~bandwidth ~stagger_us ~file_bytes
    ~staged_pl ~staged_len ~lo ~hi =
  let engine =
    Engine.create ~backend:machine_config.Config.sim_engine
      ~tick:machine_config.Config.callout_tick ()
  in
  let server = Machine.create ~config:machine_config ~engine () in
  let clientm = Machine.create ~config:machine_config ~engine () in
  let net = Netif.create_net ~bandwidth ~switched:true engine in
  let srv_nif_stats = Stats.create () and cli_nif_stats = Stats.create () in
  let srv_tcp_stats = Stats.create () and cli_tcp_stats = Stats.create () in
  let srv_if =
    Netif.attach net ~name:"srv0" ~stats:srv_nif_stats
      ~intr:(Machine.intr server) ()
  in
  let nstaged = Array.length staged_pl in
  let l = Tcp.listen srv_if ~port:80 ~stats:srv_tcp_stats () in
  Tcp.on_accept l (fun conn ->
      let rec push i =
        if i < nstaged then
          Tcp.send_view conn staged_pl.(i) ~pos:0 ~len:staged_len.(i)
            (fun () -> push (i + 1))
        else Tcp.shutdown conn
      in
      push 0);
  let n = hi - lo in
  let comp = Array.make (max n 1) (0, 0) in
  let ncomp = ref 0 in
  let corrupt = ref 0 in
  let srv_addr = { Tcp.a_if = Netif.id srv_if; a_port = 80 } in
  (* Client starts are chained — client [c]'s start event schedules
     client [c+1]'s — not queued upfront: a million upfront callouts
     would exhaust the engine's event pool, while the chain keeps
     pending events proportional to flows actually in flight. Start
     times are absolute ([c * stagger_us]), so the chain changes
     nothing about when each client runs. *)
  let rec start k () =
    let c = lo + k in
    if k + 1 < n then
      ignore
        (Engine.schedule engine
           ~at:(Time.us ((c + 1) * stagger_us))
           (start (k + 1)));
    let cli_if =
      Netif.attach net ~name:"cli" ~stats:cli_nif_stats
        ~intr:(Machine.intr clientm) ()
    in
    let recvd = ref 0 in
    ignore
      (Tcp.connect_async cli_if ~port:40000 ~dst:srv_addr
         ~stats:cli_tcp_stats
         ~rcv_hook:(fun buf ~pos ~len ->
           corrupt :=
             !corrupt
             + Programs.pattern_mismatches buf ~pos ~len ~file_off:!recvd;
           recvd := !recvd + len;
           if !recvd = file_bytes then begin
             comp.(!ncomp) <- ((Engine.now engine :> int), c);
             incr ncomp
           end)
         ())
  in
  if n > 0 then
    ignore (Engine.schedule engine ~at:(Time.us (lo * stagger_us)) (start 0));
  Machine.run server;
  let comp = Array.sub comp 0 !ncomp in
  Array.sort
    (fun (t1, c1) (t2, c2) ->
      if t1 <> t2 then Int.compare t1 t2 else Int.compare c1 c2)
    comp;
  (comp, !corrupt, !ncomp = n, Engine.events_fired engine,
   Cpu.busy (Sched.cpu (Machine.sched server)))

let measure_fanout_sharded ?(clients = 64) ?domains
    ?(file_bytes = 64 * 1024) ?(bandwidth = 2.5e6) ?(stagger_us = 1)
    ?(machine_config = Config.decstation_5000_200) () =
  if clients < 1 then invalid_arg "measure_fanout_sharded: clients < 1";
  let domains =
    match domains with Some d -> d | None -> machine_config.Config.sim_domains
  in
  if domains < 1 then invalid_arg "measure_fanout_sharded: domains < 1";
  let shards = max 1 (min domains clients) in
  let outs =
    Shard.run ~domains ~tasks:shards (fun s ->
        (* Balanced split: slice sizes differ by at most one and no
           slice is empty (shards <= clients), unlike a ceiling-based
           [per] which can leave a trailing shard with no clients at
           all (e.g. 11 clients over 5 shards). *)
        let lo = s * clients / shards in
        let hi = (s + 1) * clients / shards in
        let staged_pl, staged_len, stage_digest, stage_events, stage_cpu =
          stage_fanout_file ~machine_config ~file_bytes
        in
        let comp, corrupt, complete, events, cpu =
          deliver_fanout_shard ~machine_config ~bandwidth ~stagger_us
            ~file_bytes ~staged_pl ~staged_len ~lo ~hi
        in
        (* Drop the staging references: every block must by now be held
           only by the staging arrays (all segments acknowledged). *)
        Array.iter Payload.release staged_pl;
        {
          so_comp = comp;
          so_corrupt = corrupt;
          so_complete = complete;
          so_stage_digest = stage_digest;
          so_stage_events = stage_events;
          so_events = events;
          so_stage_cpu = stage_cpu;
          so_cpu = cpu;
        })
  in
  let first = List.hd outs in
  (* The staging phase is replayed per shard and must be bit-identical
     everywhere — anything else means shard-dependent state leaked in. *)
  List.iter
    (fun o ->
      if o.so_stage_digest <> first.so_stage_digest
         || o.so_stage_events <> first.so_stage_events
      then failwith "measure_fanout_sharded: staging diverged across shards")
    outs;
  let merged =
    Shard.merge
      ~cmp:(fun (t1, c1) (t2, c2) ->
        if t1 <> t2 then Int.compare t1 t2 else Int.compare c1 c2)
      (List.map (fun o -> o.so_comp) outs)
  in
  let digest =
    Array.fold_left
      (fun h (t, c) -> mix (mix h t) c)
      first.so_stage_digest merged
  in
  let stage_events = first.so_stage_events in
  let events =
    List.fold_left (fun a o -> a + o.so_events) stage_events outs
  in
  let corrupt = List.fold_left (fun a o -> a + o.so_corrupt) 0 outs in
  let complete =
    List.for_all (fun o -> o.so_complete) outs
    && Array.length merged = clients
  in
  let server_cpu =
    List.fold_left
      (fun a o -> Time.add a o.so_cpu)
      first.so_stage_cpu outs
  in
  let seconds =
    (* Completion stamps are [Time.t] (integer nanoseconds) coerced
       through the private int; delivery starts at t=0, so the last one
       is the simulated duration. *)
    if Array.length merged = 0 then 0.0
    else Time.to_sec_f (Time.ns (fst merged.(Array.length merged - 1)))
  in
  {
    fsh_clients = clients;
    fsh_domains = domains;
    fsh_bytes_per_client = file_bytes;
    fsh_verified = (corrupt = 0 && complete);
    fsh_stage_events = stage_events;
    fsh_events = events;
    fsh_seconds = seconds;
    fsh_agg_kb_per_sec =
      (if seconds > 0.0 then
         float_of_int clients *. float_of_int file_bytes /. 1024.0 /. seconds
       else 0.0);
    fsh_server_cpu_sec = Time.to_sec_f server_cpu;
    fsh_digest = digest;
    fsh_completions = merged;
  }
