open Kpath_sim

type t = {
  mutable user : Time.span;
  mutable sys : Time.span;
  mutable intr : Time.span;
  mutable ctx : Time.span;
  mutable interrupts : int;
  mutable context_switches : int;
}

let create () =
  {
    user = Time.zero;
    sys = Time.zero;
    intr = Time.zero;
    ctx = Time.zero;
    interrupts = 0;
    context_switches = 0;
  }

let add_user t d = t.user <- Time.add t.user d

let add_sys t d = t.sys <- Time.add t.sys d

let add_intr t d =
  t.intr <- Time.add t.intr d;
  t.interrupts <- t.interrupts + 1

let add_ctx t d =
  t.ctx <- Time.add t.ctx d;
  t.context_switches <- t.context_switches + 1

let user t = t.user
let sys t = t.sys
let intr t = t.intr
let ctx t = t.ctx

let busy t = Time.add (Time.add t.user t.sys) (Time.add t.intr t.ctx)

let idle t ~now =
  let b = busy t in
  if Time.(b > now) then invalid_arg "Cpu.idle: busy time exceeds elapsed time";
  Time.diff now b

let interrupts t = t.interrupts

let context_switches t = t.context_switches

let utilization t ~now =
  if Time.equal now Time.zero then 0.0
  else Time.to_sec_f (busy t) /. Time.to_sec_f now

let pp fmt t =
  Format.fprintf fmt "user=%a sys=%a intr=%a(%d) ctx=%a(%d)" Time.pp t.user
    Time.pp t.sys Time.pp t.intr t.interrupts Time.pp t.ctx t.context_switches
