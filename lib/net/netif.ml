open Kpath_sim
open Kpath_dev

type frame = {
  f_src : int;
  f_dst : int;
  f_proto : int;
  f_port_src : int;
  f_port_dst : int;
  f_payload : bytes;
}

type t = {
  nif_id : int;
  nif_name : string;
  net : net;
  rx_intr_service : Time.span;
  tx_intr_service : Time.span;
  intr : Blkdev.intr;
  rx : (int, frame -> unit) Hashtbl.t; (* proto -> handler *)
  txq : frame Queue.t;
  mutable tx_busy : bool;
  stats : Stats.t;
}

and net = {
  engine : Engine.t;
  bandwidth : float;
  latency : Time.span;
  mtu : int;
  ifaces : (int, t) Hashtbl.t;
  mutable loss : float;
  mutable loss_rng : Rng.t;
}

(* Interface ids are globally unique (across segments and simulations)
   so higher layers may key registries by them. *)
let id_counter = ref 0

let create_net ?(bandwidth = 1.25e6) ?(latency = Time.us 100) ?(mtu = 9000)
    engine =
  if bandwidth <= 0.0 then invalid_arg "Netif.create_net: bandwidth <= 0";
  {
    engine;
    bandwidth;
    latency;
    mtu;
    ifaces = Hashtbl.create 8;
    loss = 0.0;
    loss_rng = Rng.create ~seed:1;
  }

let attach net ~name ?(rx_intr_service = Time.us 80)
    ?(tx_intr_service = Time.us 40) ~intr () =
  incr id_counter;
  let t =
    {
      nif_id = !id_counter;
      nif_name = name;
      net;
      rx_intr_service;
      tx_intr_service;
      intr;
      rx = Hashtbl.create 4;
      txq = Queue.create ();
      tx_busy = false;
      stats = Stats.create ();
    }
  in
  Hashtbl.add net.ifaces t.nif_id t;
  t

let id t = t.nif_id

let name t = t.nif_name

let mtu net = net.mtu

let net t = t.net

let engine (net : net) = net.engine

let set_proto_rx t ~proto fn = Hashtbl.replace t.rx proto fn

let set_loss net ?(seed = 1) p =
  if p < 0.0 || p >= 1.0 then invalid_arg "Netif.set_loss: probability";
  net.loss <- p;
  net.loss_rng <- Rng.create ~seed

let stats t = t.stats

let queued t = Queue.length t.txq

let deliver (dst : t) frame =
  dst.intr ~service:dst.rx_intr_service (fun () ->
      match Hashtbl.find_opt dst.rx frame.f_proto with
      | Some fn ->
        Stats.incr (Stats.counter dst.stats "netif.rx");
        Stats.add
          (Stats.counter dst.stats "netif.rx_bytes")
          (Bytes.length frame.f_payload);
        fn frame
      | None -> Stats.incr (Stats.counter dst.stats "netif.dropped_no_rx"))

let rec tx_next t =
  if (not t.tx_busy) && not (Queue.is_empty t.txq) then begin
    t.tx_busy <- true;
    let frame = Queue.pop t.txq in
    let wire_bytes = Bytes.length frame.f_payload + 42 (* eth+ip+udp headers *) in
    let tx_time = Time.span_of_bytes ~bytes_per_sec:t.net.bandwidth wire_bytes in
    ignore
      (Engine.schedule_after t.net.engine tx_time (fun () ->
           t.tx_busy <- false;
           Stats.incr (Stats.counter t.stats "netif.tx");
           Stats.add
             (Stats.counter t.stats "netif.tx_bytes")
             (Bytes.length frame.f_payload);
           t.intr ~service:t.tx_intr_service (fun () -> ());
           let dropped =
             t.net.loss > 0.0 && Rng.float t.net.loss_rng 1.0 < t.net.loss
           in
           if dropped then Stats.incr (Stats.counter t.stats "netif.tx_lost")
           else
             (match Hashtbl.find_opt t.net.ifaces frame.f_dst with
              | Some dst ->
                ignore
                  (Engine.schedule_after t.net.engine t.net.latency (fun () ->
                       deliver dst frame))
              | None -> ());
           tx_next t))
  end

let send t ~dst ?(proto = 17) ~port_src ~port_dst payload =
  if Bytes.length payload > t.net.mtu then
    invalid_arg "Netif.send: payload exceeds MTU";
  if not (Hashtbl.mem t.net.ifaces dst) then
    invalid_arg "Netif.send: unknown destination";
  Queue.push
    {
      f_src = t.nif_id;
      f_dst = dst;
      f_proto = proto;
      f_port_src = port_src;
      f_port_dst = port_dst;
      f_payload = payload;
    }
    t.txq;
  tx_next t
