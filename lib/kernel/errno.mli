(** System call error reporting. *)

type code =
  | EBADF  (** bad file descriptor *)
  | EINVAL  (** invalid argument *)
  | ENOENT
  | EEXIST
  | ENOSPC
  | ENOTDIR
  | EISDIR
  | ENOTEMPTY
  | ENAMETOOLONG
  | EFBIG
  | EIO
  | ESPIPE  (** seek on a non-seekable object *)
  | EXDEV  (** cross-filesystem link or rename *)
  | EINTR  (** interrupted by a signal *)

exception Unix_error of code * string
(** Raised by system calls; the string names the failing call. *)

val raise_errno : code -> string -> 'a

val of_fs_error : Kpath_fs.Fs_error.t -> code
(** Map filesystem errors onto errnos. *)

val to_string : code -> string

val pp : Format.formatter -> code -> unit
