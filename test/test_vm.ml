(* Filter VM: verifier rejections name their rule, accepted programs
   terminate within fuel, the interpreter computes what it should, and
   the assembler round-trips. *)

module Vm = Kpath_vm.Vm
module Asm = Kpath_vm.Asm
module Samples = Kpath_vm.Samples

let spec ?(fuel = 1000) ?(scratch = 0) ?(context = Vm.Edge) insns =
  { Vm.s_insns = Array.of_list insns; s_fuel = fuel; s_scratch = scratch;
    s_context = context }

let accept ?fuel ?scratch ?context insns =
  match Vm.verify (spec ?fuel ?scratch ?context insns) with
  | Ok p -> p
  | Error d -> Alcotest.failf "unexpected rejection: %s" (Vm.diag_to_string d)

let reject ?fuel ?scratch ?context insns expected () =
  match Vm.verify (spec ?fuel ?scratch ?context insns) with
  | Ok _ -> Alcotest.failf "expected %s rejection" expected
  | Error d -> Alcotest.(check string) "rule" expected d.Vm.d_rule

(* Run [p] over [data] with a fresh state; returns (verdict, emits). *)
let run ?(data = "the quick brown fox jumps over the lazy dog") ?(lblk = 0) p =
  let data = Bytes.of_string data in
  let emits = ref [] in
  let r =
    Vm.exec p (Vm.new_state p) ~data ~len:(Bytes.length data) ~lblk
      ~emit:(fun k v -> emits := (k, v) :: !emits)
  in
  (r, List.rev !emits)

let verdict =
  Alcotest.testable
    (fun fmt -> function
      | Vm.Pass -> Format.fprintf fmt "Pass"
      | Vm.Drop -> Format.fprintf fmt "Drop"
      | Vm.Redirect k -> Format.fprintf fmt "Redirect %d" k
      | Vm.Fault m -> Format.fprintf fmt "Fault %S" m)
    ( = )

(* {1 Verifier rejections} *)

let rejections =
  [
    ("backward jump", reject [ Vm.Mov (0, Imm 0); Vm.Jmp (-1) ] "unbounded-loop");
    ("self jump", reject [ Vm.Jmp 0 ] "unbounded-loop");
    ("stray End", reject [ Vm.End; Vm.Ret ] "unbounded-loop");
    ("unclosed Loop", reject [ Vm.Loop (Imm 3, 8); Vm.Ret ] "unbounded-loop");
    ( "zero loop cap",
      reject [ Vm.Loop (Imm 3, 0); Vm.End ] "unbounded-loop" );
    ( "oversized loop cap",
      reject [ Vm.Loop (Imm 3, Vm.max_loop_count + 1); Vm.End ]
        "unbounded-loop" );
    ( "loops nested too deep",
      reject
        (List.init (Vm.max_loop_depth + 1) (fun _ -> Vm.Loop (Imm 1, 2))
        @ List.init (Vm.max_loop_depth + 1) (fun _ -> Vm.End))
        "loop-depth" );
    ("jump past end", reject [ Vm.Jmp 5; Vm.Ret ] "jump-oob");
    ( "jump into a loop body",
      reject
        [ Vm.Jmp 2; Vm.Loop (Imm 1, 2); Vm.Mov (0, Imm 0); Vm.End; Vm.Ret ]
        "jump-oob" );
    ( "jump out of a loop body",
      reject
        [ Vm.Loop (Imm 1, 2); Vm.Jmp 3; Vm.End; Vm.Ret ]
        "jump-oob" );
    ( "scratch load out of bounds",
      reject ~scratch:4 [ Vm.Lds (0, 4); Vm.Ret ] "scratch-oob" );
    ( "scratch store negative",
      reject ~scratch:4 [ Vm.Sts (-1, Imm 0); Vm.Ret ] "scratch-oob" );
    ( "scratch without an arena",
      reject [ Vm.Lds (0, 0); Vm.Ret ] "scratch-oob" );
    ( "scratch size above limit",
      reject ~scratch:(Vm.max_scratch + 1) [ Vm.Ret ] "scratch-oob" );
    ( "indexed scratch load without an arena",
      reject [ Vm.Ldsx (0, 1); Vm.Ret ] "scratch-index" );
    ( "indexed scratch store without an arena",
      reject [ Vm.Stsx (0, Imm 1); Vm.Ret ] "scratch-index" );
    ( "indexed scratch arena not a power of two",
      reject ~scratch:3 [ Vm.Ldsx (0, 1); Vm.Ret ] "scratch-index" );
    ( "indexed scratch store into a 48-cell arena",
      reject ~scratch:48 [ Vm.Stsx (0, Imm 1); Vm.Ret ] "scratch-index" );
    ("negative fuel", reject ~fuel:(-5) [ Vm.Ret ] "fuel-bound");
    ("zero fuel", reject ~fuel:0 [ Vm.Ret ] "fuel-bound");
    ( "fuel above limit",
      reject ~fuel:(Vm.max_fuel + 1) [ Vm.Ret ] "fuel-bound" );
    ( "worst case exceeds fuel",
      reject ~fuel:10
        [ Vm.Loop (Imm 10, 100); Vm.Mov (0, Imm 1); Vm.End ]
        "fuel-bound" );
    ( "nested caps saturate, not overflow",
      reject ~fuel:Vm.max_fuel
        [
          Vm.Loop (Imm 1, Vm.max_loop_count);
          Vm.Loop (Imm 1, Vm.max_loop_count);
          Vm.Loop (Imm 1, Vm.max_loop_count);
          Vm.Mov (0, Imm 1);
          Vm.End;
          Vm.End;
          Vm.End;
        ]
        "fuel-bound" );
    ("register too high", reject [ Vm.Mov (8, Imm 0) ] "bad-register");
    ("operand register too high", reject [ Vm.Mov (0, Reg 9) ] "bad-register");
    ("constant zero divisor", reject [ Vm.Div (0, Imm 0) ] "div-by-zero");
    ("constant zero modulus", reject [ Vm.Rem (0, Imm 0) ] "div-by-zero");
    ( "drop in read-only context",
      reject ~context:Vm.Readonly [ Vm.Drop ] "effect-context" );
    ( "store in read-only context",
      reject ~context:Vm.Readonly [ Vm.Stp (Imm 0, Imm 0) ] "effect-context" );
    ( "redirect in read-only context",
      reject ~context:Vm.Readonly [ Vm.Redirect (Imm 1) ] "effect-context" );
    ( "program too long",
      reject (List.init (Vm.max_insns + 1) (fun _ -> Vm.Ret)) "program-size" );
    ( "constant negative payload load",
      reject [ Vm.Ldp (0, Imm (-1)); Vm.Ret ] "range-oob" );
    ( "negative register offset store",
      reject
        [ Vm.Mov (0, Imm (-4)); Vm.Stp (Reg 0, Imm 1); Vm.Ret ]
        "range-oob" );
  ]

let test_rejection_pc () =
  (* The diagnostic points at the offending instruction. *)
  match Vm.verify (spec [ Vm.Ret; Vm.Mov (0, Imm 1); Vm.Jmp (-1) ]) with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error d ->
    Alcotest.(check int) "pc" 2 d.Vm.d_pc;
    Alcotest.(check string) "rule" "unbounded-loop" d.Vm.d_rule

let test_range_oob_pc () =
  (* A guard can cap the payload length: loading at the cap is then
     provably out of bounds. The diag names the exact rule, points at
     the load, and includes the violated interval so the failure is
     actionable from the CLI. *)
  match
    Vm.verify
      (spec
         [
           Vm.Len 0;
           Vm.Jlt (0, Imm 256, 2);
           Vm.Ret;
           Vm.Mov (1, Imm 256);
           Vm.Ldp (2, Reg 1);
           Vm.Ret;
         ])
  with
  | Ok _ -> Alcotest.fail "expected range-oob rejection"
  | Error d ->
    Alcotest.(check string) "rule" "range-oob" d.Vm.d_rule;
    Alcotest.(check int) "pc" 4 d.Vm.d_pc;
    let line = Vm.diag_to_string d in
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "message names the interval (%s)" line)
      true
      (contains line "off in [256, 256]" && contains line "len in [0, 255]")

(* {1 Range analysis verdicts} *)

let all_proven name p =
  let accs = Vm.accesses p in
  Alcotest.(check bool) (name ^ " has payload accesses") true (accs <> []);
  List.iter
    (fun a ->
      match a.Vm.a_bounds with
      | `Proven -> ()
      | `Checked ->
        Alcotest.failf "%s: pc %d (%s) not proven" name a.Vm.a_pc a.Vm.a_range)
    accs

let test_analysis_proves_samples () =
  (* The acceptance bar for the analysis: every payload access of the
     canned loop workloads is statically in bounds, so the compiled
     generic tier runs them with no runtime checks even with the idiom
     library disabled. *)
  all_proven "checksum" (Samples.checksum ());
  all_proven "tee_hash" (Samples.tee_hash ());
  all_proven "xor_mask" (Samples.xor_mask ~key:0x5a);
  all_proven "xor_stream" (Samples.xor_stream ~key:0x17);
  all_proven "histogram" (Samples.histogram ());
  all_proven "dedup_chunks" (Samples.dedup_chunks ~bits:12);
  all_proven "bounded_copy" (Samples.bounded_copy ())

let test_analysis_keeps_checks () =
  (* oob_probe loads at offset = len: not provable (and it does fault
     at run time), so its site must stay Checked — the analysis only
     rejects accesses that are wrong on every payload. *)
  let p = Samples.oob_probe () in
  match Vm.accesses p with
  | [ { Vm.a_bounds = `Checked; a_kind = `Load; _ } ] -> ()
  | _ -> Alcotest.fail "oob_probe should keep its one checked load"

let test_bounds_at () =
  let p = Samples.bounded_copy () in
  let accs = Vm.accesses p in
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (Printf.sprintf "bounds_at pc %d agrees" a.Vm.a_pc)
        true
        (Vm.bounds_at p a.Vm.a_pc = a.Vm.a_bounds))
    accs;
  (* Non-sites answer Checked: the compiler may never elide there. *)
  Alcotest.(check bool) "non-site is Checked" true (Vm.bounds_at p 0 = `Checked)

let test_readonly_emit_ok () =
  ignore (accept ~context:Vm.Readonly [ Vm.Len 0; Vm.Emit (Imm 1, Reg 0) ])

let test_continue_jump_ok () =
  (* Jumping to the loop's own End is "continue" and is accepted. *)
  ignore
    (accept
       [ Vm.Loop (Imm 4, 8); Vm.Jeq (0, Imm 0, 2); Vm.Add (1, Imm 1); Vm.End ])

(* {1 Interpreter} *)

let test_alu () =
  let p =
    accept
      [
        Vm.Mov (0, Imm 7); Vm.Mul (0, Imm 6); Vm.Emit (Imm 0, Reg 0);
        Vm.Mov (1, Imm 13); Vm.Rem (1, Imm 5); Vm.Emit (Imm 1, Reg 1);
        Vm.Mov (2, Imm 1); Vm.Shl (2, Imm 10); Vm.Emit (Imm 2, Reg 2);
      ]
  in
  let r, emits = run p in
  Alcotest.check verdict "pass" Vm.Pass r.Vm.r_verdict;
  Alcotest.(check (list (pair int int)))
    "emits" [ (0, 42); (1, 3); (2, 1024) ] emits

let test_loop_clamps () =
  let counted count cap =
    let p =
      accept
        [
          Vm.Mov (0, Imm count);
          Vm.Loop (Reg 0, cap);
          Vm.Add (1, Imm 1);
          Vm.End;
          Vm.Emit (Imm 0, Reg 1);
        ]
    in
    match run p with
    | _, [ (0, n) ] -> n
    | _ -> Alcotest.fail "expected one emit"
  in
  Alcotest.(check int) "count below cap" 5 (counted 5 8);
  Alcotest.(check int) "count clamped to cap" 8 (counted 100 8);
  Alcotest.(check int) "zero count skips body" 0 (counted 0 8);
  Alcotest.(check int) "negative count skips body" 0 (counted (-3) 8)

let test_nested_loops () =
  let p =
    accept
      [
        Vm.Loop (Imm 3, 4);
        Vm.Loop (Imm 5, 8);
        Vm.Add (0, Imm 1);
        Vm.End;
        Vm.End;
        Vm.Emit (Imm 0, Reg 0);
      ]
  in
  let _, emits = run p in
  Alcotest.(check (list (pair int int))) "3*5 iterations" [ (0, 15) ] emits

let test_payload_fault () =
  let p = accept [ Vm.Len 0; Vm.Ldp (1, Reg 0); Vm.Ret ] in
  let r, _ = run p in
  match r.Vm.r_verdict with
  | Vm.Fault _ -> ()
  | _ -> Alcotest.fail "expected a fault"

let test_runtime_div_fault () =
  let p = accept [ Vm.Mov (0, Imm 9); Vm.Div (0, Reg 1); Vm.Ret ] in
  let r, _ = run p in
  match r.Vm.r_verdict with
  | Vm.Fault m ->
    Alcotest.(check bool) "names the division" true
      (String.length m >= 8 && String.sub m 0 8 = "division")
  | _ -> Alcotest.fail "expected fault"

let test_verdicts () =
  let r, _ = run (accept [ Vm.Drop ]) in
  Alcotest.check verdict "drop" Vm.Drop r.Vm.r_verdict;
  let r, _ = run (accept [ Vm.Blkno 0; Vm.Redirect (Reg 0) ]) ~lblk:3 in
  Alcotest.check verdict "redirect" (Vm.Redirect 3) r.Vm.r_verdict;
  let r, _ = run (accept [ Vm.Ret; Vm.Drop ]) in
  Alcotest.check verdict "ret before drop" Vm.Pass r.Vm.r_verdict

let test_cow_transform () =
  let data = Bytes.of_string "abcdef" in
  let p =
    accept [ Vm.Ldp (0, Imm 0); Vm.Xor (0, Imm 0x20); Vm.Stp (Imm 0, Reg 0) ]
  in
  let r =
    Vm.exec p (Vm.new_state p) ~data ~len:6 ~lblk:0 ~emit:(fun _ _ -> ())
  in
  Alcotest.(check bool) "copied" false (r.Vm.r_data == data);
  Alcotest.(check string) "original untouched" "abcdef" (Bytes.to_string data);
  Alcotest.(check string) "transform applied" "Abcdef"
    (Bytes.to_string r.Vm.r_data);
  (* No store: the input buffer itself comes back (zero copies). *)
  let p2 = accept [ Vm.Ldp (0, Imm 0) ] in
  let r2 =
    Vm.exec p2 (Vm.new_state p2) ~data ~len:6 ~lblk:0 ~emit:(fun _ _ -> ())
  in
  Alcotest.(check bool) "not copied" true (r2.Vm.r_data == data)

let test_scratch_persists () =
  let p =
    accept ~scratch:1
      [ Vm.Lds (0, 0); Vm.Add (0, Imm 1); Vm.Sts (0, Reg 0);
        Vm.Emit (Imm 0, Reg 0) ]
  in
  let st = Vm.new_state p in
  let data = Bytes.make 4 'x' in
  let seen = ref [] in
  for _ = 1 to 3 do
    ignore
      (Vm.exec p st ~data ~len:4 ~lblk:0 ~emit:(fun _ v -> seen := v :: !seen))
  done;
  Alcotest.(check (list int)) "counter advances" [ 3; 2; 1 ] !seen

let test_indexed_scratch_masks () =
  (* Ldsx/Stsx mask the index register with [scratch - 1]: on a 4-cell
     arena index 13 is cell 1, and a negative index wraps the same way
     (-3 land 3 = 1). A power-of-two arena is exactly what makes the
     mask a bounds proof, which is why the verifier demands one. *)
  let p =
    accept ~scratch:4
      [ Vm.Mov (0, Imm 13); Vm.Stsx (0, Imm 77); Vm.Lds (2, 1);
        Vm.Emit (Imm 0, Reg 2); Vm.Mov (3, Imm (-3)); Vm.Ldsx (4, 3);
        Vm.Emit (Imm 1, Reg 4); Vm.Ret ]
  in
  let _, emits = run p in
  Alcotest.(check (list (pair int int)))
    "masked cells round-trip"
    [ (0, 77); (1, 77) ]
    emits

(* {1 The checksum sample matches the built-in formula} *)

let reference_checksum ~lblk data len =
  let h = ref 0x811c9dc5 in
  for i = 0 to len - 1 do
    h := (!h lxor Char.code (Bytes.get data i)) * 0x01000193 land 0xffffffff
  done;
  (!h lxor ((lblk + 1) * 0x9e3779b9)) land 0xffffffff

let test_checksum_sample () =
  let p = Samples.checksum () in
  let rng = ref 42 in
  for lblk = 0 to 5 do
    let len = 1 + (lblk * 97) in
    let data =
      Bytes.init len (fun _ ->
          rng := (!rng * 1103515245) + 12345;
          Char.chr (!rng lsr 16 land 0xff))
    in
    let got = ref (-1) in
    let r =
      Vm.exec p (Vm.new_state p) ~data ~len ~lblk ~emit:(fun k v ->
          if k = 0 then got := v)
    in
    Alcotest.check verdict "pass" Vm.Pass r.Vm.r_verdict;
    Alcotest.(check int)
      (Printf.sprintf "digest lblk=%d" lblk)
      (reference_checksum ~lblk data len)
      !got
  done

let test_xor_mask_involution () =
  let p = Kpath_vm.Samples.xor_mask ~key:0x5a in
  let data = Bytes.of_string "splice graph payload" in
  let len = Bytes.length data in
  let once =
    Vm.exec p (Vm.new_state p) ~data ~len ~lblk:0 ~emit:(fun _ _ -> ())
  in
  let twice =
    Vm.exec p (Vm.new_state p) ~data:once.Vm.r_data ~len ~lblk:0
      ~emit:(fun _ _ -> ())
  in
  Alcotest.(check bool) "masked differs" false (Bytes.equal once.Vm.r_data data);
  Alcotest.(check string) "self-inverse" (Bytes.to_string data)
    (Bytes.to_string twice.Vm.r_data)

let test_samples_verify () =
  ignore (Samples.checksum ());
  ignore (Samples.tee_hash ());
  ignore (Samples.dropper ~modulo:4);
  ignore (Samples.router ~fanout:3);
  ignore (Samples.xor_mask ~key:0xff);
  ignore (Samples.oob_probe ());
  ignore (Samples.xor_stream ~key:0x17);
  ignore (Samples.histogram ());
  ignore (Samples.dedup_chunks ~bits:1);
  ignore (Samples.dedup_chunks ~bits:24);
  ignore (Samples.bounded_copy ());
  (match Samples.dedup_chunks ~bits:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dedup_chunks must reject bits = 0");
  let r, _ = run (Samples.oob_probe ()) in
  match r.Vm.r_verdict with
  | Vm.Fault _ -> ()
  | _ -> Alcotest.fail "oob_probe should fault"

(* {1 Assembler} *)

let test_asm_round_trip () =
  let check_rt name p =
    match Asm.load (Asm.print p) with
    | Error e -> Alcotest.failf "%s: reassembly failed: %s" name e
    | Ok p' ->
      Alcotest.(check bool)
        (name ^ " round-trips") true
        (Vm.insns p = Vm.insns p' && Vm.fuel p = Vm.fuel p'
        && Vm.scratch_cells p = Vm.scratch_cells p'
        && Vm.prog_context p = Vm.prog_context p')
  in
  check_rt "checksum" (Samples.checksum ());
  check_rt "tee_hash (readonly)" (Samples.tee_hash ());
  check_rt "dropper (jumpy)" (Samples.dropper ~modulo:7);
  check_rt "scratchy"
    (accept ~scratch:2
       [ Vm.Lds (0, 1); Vm.Jlt (0, Imm 5, 2); Vm.Sts (1, Reg 0); Vm.Ret ])

let test_asm_errors () =
  let is_err = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "missing fuel" true (is_err (Asm.parse "    ret\n"));
  Alcotest.(check bool) "unknown label" true
    (is_err (Asm.parse "fuel 10\n    jmp nowhere\n"));
  Alcotest.(check bool) "bad mnemonic" true
    (is_err (Asm.parse "fuel 10\n    frob r1\n"));
  Alcotest.(check bool) "bad operand" true
    (is_err (Asm.parse "fuel 10\n    mov r1, banana\n"));
  Alcotest.(check bool) "duplicate label" true
    (is_err (Asm.parse "fuel 10\nx:\n    ret\nx:\n    ret\n"));
  (* Verifier rejections surface through load with the rule name. *)
  match Asm.load "fuel 10\nback:\n    jmp back\n" with
  | Error e ->
    Alcotest.(check bool) "names the rule" true
      (String.length e >= 14 && String.sub e 0 14 = "unbounded-loop")
  | Ok _ -> Alcotest.fail "backward jump must be rejected"

(* {1 Fixture corpus}

   Every *.kvm under vm_fixtures declares its expectation in the first
   line: "; expect: ok" or "; expect: <rule>". The same corpus runs
   under the @lint alias (test/vm_fixtures/check.ml). *)

let corpus_expectation path =
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  let prefix = "; expect:" in
  let n = String.length prefix in
  if String.length line <= n || String.sub line 0 n <> prefix then
    Alcotest.failf "%s: first line must be %S" path prefix
  else String.trim (String.sub line n (String.length line - n))

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_corpus () =
  let dir = "vm_fixtures" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".kvm")
    |> List.sort String.compare
  in
  Alcotest.(check bool) "corpus is non-empty" true (List.length files >= 6);
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      let expected = corpus_expectation path in
      match Asm.parse (read_file path) with
      | Error e -> Alcotest.failf "%s: does not assemble: %s" f e
      | Ok spec -> (
        match (Vm.verify spec, expected) with
        | Ok _, "ok" -> ()
        | Ok _, rule -> Alcotest.failf "%s: accepted, expected %s" f rule
        | Error d, "ok" ->
          Alcotest.failf "%s: rejected: %s" f (Vm.diag_to_string d)
        | Error d, rule ->
          Alcotest.(check string) (f ^ " rule") rule d.Vm.d_rule))
    files

(* {1 Property: accepted programs halt within their fuel}

   The generator builds structurally valid programs (properly nested
   loops, in-region forward jumps); the property asserts the verifier
   accepts them and that execution over random payloads terminates
   within the statically computed worst case. *)

let gen_operand =
  QCheck.Gen.(
    frequency
      [ (3, map (fun r -> Vm.Reg r) (int_range 0 (Vm.max_regs - 1)));
        (2, map (fun k -> Vm.Imm k) (int_range (-8) 300)) ])

let gen_simple =
  QCheck.Gen.(
    let reg = int_range 0 (Vm.max_regs - 1) in
    frequency
      [
        (3, map2 (fun r o -> Vm.Mov (r, o)) reg gen_operand);
        (3, map2 (fun r o -> Vm.Add (r, o)) reg gen_operand);
        (2, map2 (fun r o -> Vm.Xor (r, o)) reg gen_operand);
        (1, map2 (fun r o -> Vm.Mul (r, o)) reg gen_operand);
        (1, map2 (fun r k -> Vm.Div (r, Imm k)) reg (int_range 1 9));
        (1, map2 (fun r o -> Vm.Shr (r, o)) reg gen_operand);
        (1, map (fun r -> Vm.Len r) reg);
        (1, map (fun r -> Vm.Blkno r) reg);
        (2, map2 (fun r o -> Vm.Ldp (r, o)) reg gen_operand);
        (1, map2 (fun a b -> Vm.Stp (a, b)) gen_operand gen_operand);
        (1, map2 (fun r off -> Vm.Lds (r, off)) reg (int_range 0 3));
        (1, map2 (fun off o -> Vm.Sts (off, o)) (int_range 0 3) gen_operand);
        (* Indexed scratch: the property specs use power-of-two arenas,
           so these always verify. *)
        (1, map2 (fun r ri -> Vm.Ldsx (r, ri)) reg reg);
        (1, map2 (fun ri o -> Vm.Stsx (ri, o)) reg gen_operand);
        (1, map2 (fun a b -> Vm.Emit (a, b)) gen_operand gen_operand);
      ])

let rec gen_body depth budget =
  QCheck.Gen.(
    if budget <= 0 then return []
    else
      frequency
        ([
           ( 6,
             let* i = gen_simple in
             let* rest = gen_body depth (budget - 1) in
             return (i :: rest) );
           ( 1,
             (* A guarded forward jump over [k] simple instructions. *)
             let* r = int_range 0 (Vm.max_regs - 1) in
             let* o = gen_operand in
             let* k = int_range 1 3 in
             let* skipped = list_repeat k gen_simple in
             let* rest = gen_body depth (budget - k - 1) in
             return ((Vm.Jne (r, o, k + 1) :: skipped) @ rest) );
         ]
        @
        if depth >= Vm.max_loop_depth - 1 then []
        else
          [
            ( 2,
              let* count = gen_operand in
              let* cap = int_range 1 12 in
              let* body = gen_body (depth + 1) (budget / 2) in
              let* rest = gen_body depth (budget / 2) in
              return ((Vm.Loop (count, cap) :: body) @ (Vm.End :: rest)) );
          ]))

let arb_program =
  QCheck.make
    ~print:(fun (insns, payload) ->
      Printf.sprintf "%d instructions, %d payload bytes" (List.length insns)
        (String.length payload))
    QCheck.Gen.(
      let* budget = int_range 0 40 in
      let* insns = gen_body 0 budget in
      let* payload = string_size ~gen:printable (int_range 0 512) in
      return (insns, payload))

let prop_accepted_halts =
  QCheck.Test.make ~count:300 ~name:"accepted programs halt within fuel"
    arb_program (fun (insns, payload) ->
      match Vm.verify (spec ~fuel:Vm.max_fuel ~scratch:4 insns) with
      | Error { Vm.d_rule = "range-oob"; _ } ->
        (* The generator freely emits accesses at constant negative
           offsets; the range analysis rightly rejects those programs
           as provably out of bounds. Every other rule would be a
           generator bug. *)
        true
      | Error d ->
        QCheck.Test.fail_reportf "generator produced a rejected program: %s"
          (Vm.diag_to_string d)
      | Ok p ->
        let data = Bytes.of_string payload in
        let r =
          Vm.exec p (Vm.new_state p) ~data ~len:(Bytes.length data) ~lblk:7
            ~emit:(fun _ _ -> ())
        in
        if r.Vm.r_steps > Vm.worst_cost p then
          QCheck.Test.fail_reportf "ran %d steps, worst case %d" r.Vm.r_steps
            (Vm.worst_cost p)
        else if r.Vm.r_verdict = Vm.Fault "fuel exhausted" then
          QCheck.Test.fail_reportf "verified program exhausted its fuel"
        else true)

let prop_verify_total =
  (* Wild instruction streams: verify always answers, and whatever it
     accepts still terminates. *)
  let gen_wild =
    QCheck.Gen.(
      let gi = int_range (-3) 70 in
      let any_op =
        oneof [ map (fun r -> Vm.Reg r) gi; map (fun k -> Vm.Imm k) gi ]
      in
      frequency
        [
          (4, gen_simple);
          (1, map2 (fun a b -> Vm.Div (a, b)) gi any_op);
          (1, map (fun off -> Vm.Jmp off) (int_range (-5) 10));
          ( 1,
            map2 (fun c cap -> Vm.Loop (c, cap)) any_op (int_range (-1) 20) );
          (1, return Vm.End);
          (1, return (Vm.Drop : Vm.insn));
          (1, map (fun o : Vm.insn -> Vm.Redirect o) any_op);
          (1, return Vm.Ret);
        ])
  in
  QCheck.Test.make ~count:500 ~name:"verify is total; accepted still halts"
    (QCheck.make QCheck.Gen.(list_size (int_range 0 25) gen_wild))
    (fun insns ->
      match Vm.verify (spec ~fuel:10_000 ~scratch:2 insns) with
      | Error _ -> true
      | Ok p ->
        let data = Bytes.make 64 '\x2a' in
        let r =
          Vm.exec p (Vm.new_state p) ~data ~len:64 ~lblk:1
            ~emit:(fun _ _ -> ())
        in
        r.Vm.r_steps <= Vm.worst_cost p)

let suite =
  List.map
    (fun (name, f) -> Alcotest.test_case ("reject: " ^ name) `Quick f)
    rejections
  @ [
      Alcotest.test_case "rejection carries the pc" `Quick test_rejection_pc;
      Alcotest.test_case "range-oob names rule, pc and interval" `Quick
        test_range_oob_pc;
      Alcotest.test_case "range analysis proves the sample loops" `Quick
        test_analysis_proves_samples;
      Alcotest.test_case "unprovable access stays checked" `Quick
        test_analysis_keeps_checks;
      Alcotest.test_case "bounds_at mirrors the verdict table" `Quick
        test_bounds_at;
      Alcotest.test_case "readonly may emit" `Quick test_readonly_emit_ok;
      Alcotest.test_case "continue jump accepted" `Quick test_continue_jump_ok;
      Alcotest.test_case "alu" `Quick test_alu;
      Alcotest.test_case "loop count clamps to cap" `Quick test_loop_clamps;
      Alcotest.test_case "nested loops" `Quick test_nested_loops;
      Alcotest.test_case "payload load faults out of bounds" `Quick
        test_payload_fault;
      Alcotest.test_case "runtime zero divisor faults" `Quick
        test_runtime_div_fault;
      Alcotest.test_case "verdicts" `Quick test_verdicts;
      Alcotest.test_case "copy-on-write transform" `Quick test_cow_transform;
      Alcotest.test_case "scratch persists across blocks" `Quick
        test_scratch_persists;
      Alcotest.test_case "indexed scratch masks into the arena" `Quick
        test_indexed_scratch_masks;
      Alcotest.test_case "checksum sample matches built-in formula" `Quick
        test_checksum_sample;
      Alcotest.test_case "xor mask is self-inverse" `Quick
        test_xor_mask_involution;
      Alcotest.test_case "all samples verify" `Quick test_samples_verify;
      Alcotest.test_case "assembler round trip" `Quick test_asm_round_trip;
      Alcotest.test_case "assembler errors" `Quick test_asm_errors;
      Alcotest.test_case "fixture corpus" `Quick test_corpus;
      QCheck_alcotest.to_alcotest prop_accepted_halts;
      QCheck_alcotest.to_alcotest prop_verify_total;
    ]
