(* Differential suite: the closure-compiled VM backend must be
   observationally identical to the interpreter — same verdict, same
   r_steps (CPU accounting), same emit sequence, same payload bytes,
   same copy-on-write identity on r_data — over the canned samples,
   the fixture ok-corpus, hand-picked fault cases and random accepted
   programs. CI runs this suite on its own as the vm-backend-parity
   step. *)

module Vm = Kpath_vm.Vm
module Compile = Kpath_vm.Compile
module Asm = Kpath_vm.Asm
module Samples = Kpath_vm.Samples

let pp_verdict fmt = function
  | Vm.Pass -> Format.fprintf fmt "Pass"
  | Vm.Drop -> Format.fprintf fmt "Drop"
  | Vm.Redirect k -> Format.fprintf fmt "Redirect %d" k
  | Vm.Fault m -> Format.fprintf fmt "Fault %S" m

let verdict = Alcotest.testable pp_verdict ( = )

(* Run [p] under both backends over the same block sequence (one
   persistent state each, so scratch carry-over is compared too) and
   assert every observable of every run matches. [what] names the
   program in failures. *)
let assert_parity ?(what = "prog") p blocks =
  let code = Compile.compile p in
  let ist = Vm.new_state p and cst = Compile.new_state code in
  List.iteri
    (fun i (data, lblk) ->
      let tag fmt = Printf.ksprintf (fun s -> s) ("%s block %d: " ^^ fmt) what i in
      let data = Bytes.of_string data in
      let len = Bytes.length data in
      let iemits = ref [] and cemits = ref [] in
      let ir =
        Vm.exec p ist ~data ~len ~lblk ~emit:(fun k v ->
            iemits := (k, v) :: !iemits)
      in
      let cr =
        Compile.exec code cst ~data ~len ~lblk ~emit:(fun k v ->
            cemits := (k, v) :: !cemits)
      in
      Alcotest.check verdict (tag "verdict") ir.Vm.r_verdict cr.Vm.r_verdict;
      Alcotest.(check int) (tag "steps") ir.Vm.r_steps cr.Vm.r_steps;
      Alcotest.(check (list (pair int int)))
        (tag "emits") (List.rev !iemits) (List.rev !cemits);
      Alcotest.(check string)
        (tag "payload bytes")
        (Bytes.to_string ir.Vm.r_data)
        (Bytes.to_string cr.Vm.r_data);
      (* Copy-on-write contract: both backends either alias the input
         buffer or both cloned it. *)
      Alcotest.(check bool)
        (tag "r_data aliases input")
        (ir.Vm.r_data == data) (cr.Vm.r_data == data))
    blocks

let block n seed =
  String.init n (fun i -> Char.chr ((seed + (i * 31) + (i / 7)) land 0xff))

let standard_blocks =
  [ (block 512 3, 0); (block 64 91, 1); ("", 2); (block 300 17, 12345) ]

(* {1 Samples and fixtures} *)

let test_samples () =
  List.iter
    (fun (what, p) -> assert_parity ~what p standard_blocks)
    [
      ("checksum", Samples.checksum ());
      ("tee_hash", Samples.tee_hash ());
      ("dropper", Samples.dropper ~modulo:3);
      ("router", Samples.router ~fanout:4);
      ("xor_mask", Samples.xor_mask ~key:0x5a);
      ("oob_probe", Samples.oob_probe ());
    ]

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_ok_corpus () =
  let dir = "vm_fixtures" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".kvm")
    |> List.sort String.compare
  in
  let ran = ref 0 in
  List.iter
    (fun f ->
      match Asm.load (read_file (Filename.concat dir f)) with
      | Error _ -> ()  (* the rejected corpus is test_vm's business *)
      | Ok p ->
        incr ran;
        assert_parity ~what:f p standard_blocks)
    files;
  Alcotest.(check bool) "ok-corpus is non-empty" true (!ran >= 2)

(* {1 Fault and verdict corners} *)

let test_fault_parity () =
  (* Each case must fault with a byte-identical reason and identical
     partial step count under both backends. *)
  let cases =
    [
      ( "payload load oob",
        [ Vm.Len 0; Vm.Ldp (1, Reg 0); Vm.Ret ] );
      ( "payload store oob",
        [ Vm.Mov (0, Imm (-1)); Vm.Stp (Reg 0, Imm 7); Vm.Ret ] );
      ( "div by zero",
        [ Vm.Mov (0, Imm 9); Vm.Mov (1, Imm 0); Vm.Div (0, Reg 1); Vm.Ret ] );
      ( "rem by zero mid-loop",
        [
          Vm.Mov (0, Imm 4);
          Vm.Mov (1, Imm 2);
          Vm.Loop (Imm 8, 8);
          Vm.Sub (1, Imm 1);
          Vm.Rem (0, Reg 1);
          Vm.End;
          Vm.Ret;
        ] );
    ]
  in
  List.iter
    (fun (what, insns) ->
      let spec =
        { Vm.s_insns = Array.of_list insns; s_fuel = 1000; s_scratch = 0;
          s_context = Vm.Edge }
      in
      match Vm.verify spec with
      | Error d ->
        Alcotest.failf "%s: unexpected rejection: %s" what
          (Vm.diag_to_string d)
      | Ok p -> assert_parity ~what p standard_blocks)
    cases

let test_verdict_parity () =
  let progs =
    [
      ("drop", [ (Vm.Drop : Vm.insn) ]);
      ("redirect reg", [ Vm.Blkno 0; Vm.Rem (0, Imm 3); Vm.Redirect (Reg 0) ]);
      ("redirect imm", [ Vm.Redirect (Imm 2) ]);
      ("empty", []);
      ( "jump skips drop",
        [ Vm.Len 0; Vm.Jge (0, Imm 1, 2); Vm.Drop; Vm.Ret ] );
      ( "scratch carries across blocks",
        [ Vm.Lds (0, 0); Vm.Add (0, Imm 1); Vm.Sts (0, Reg 0);
          Vm.Emit (Imm 7, Reg 0); Vm.Ret ] );
    ]
  in
  List.iter
    (fun (what, insns) ->
      let spec =
        { Vm.s_insns = Array.of_list insns; s_fuel = 1000; s_scratch = 2;
          s_context = Vm.Edge }
      in
      match Vm.verify spec with
      | Error d ->
        Alcotest.failf "%s: unexpected rejection: %s" what
          (Vm.diag_to_string d)
      | Ok p -> assert_parity ~what p standard_blocks)
    progs

let test_fold_idiom () =
  (* The compiler recognizes the byte-scan multiplicative fold and runs
     it register-resident behind an entry bounds test. Exercise the
     fast path (count within bounds, zero and mid-payload starts), the
     fallback (overruns and negative starts must fault bit-identically
     mid-loop), and near-miss shapes that must not be specialized. *)
  let fold ~start ~loop ~body =
    [ Vm.Len 1; Vm.Mov (2, Imm 0x811c9dc5); Vm.Mov (0, Imm start); loop ]
    @ body
    @ [ Vm.End; Vm.Emit (Imm 0, Reg 2); Vm.Emit (Imm 1, Reg 3);
        Vm.Emit (Imm 2, Reg 0); Vm.Ret ]
  in
  let fnv_body =
    [ Vm.Ldp (3, Reg 0); Vm.Xor (2, Reg 3); Vm.Mul (2, Imm 0x01000193);
      Vm.And (2, Imm 0xffffffff); Vm.Add (0, Imm 1) ]
  in
  let cases =
    [
      ( "fold whole payload",
        fold ~start:0 ~loop:(Vm.Loop (Reg 1, 65536)) ~body:fnv_body );
      ( "fold overruns payload",
        fold ~start:0 ~loop:(Vm.Loop (Imm 600, 65536)) ~body:fnv_body );
      ( "fold from mid-payload",
        fold ~start:100 ~loop:(Vm.Loop (Imm 100, 65536)) ~body:fnv_body );
      ( "fold from negative offset",
        fold ~start:(-1) ~loop:(Vm.Loop (Imm 5, 65536)) ~body:fnv_body );
      ( "near miss: counter is not the offset",
        fold ~start:0
          ~loop:(Vm.Loop (Imm 8, 65536))
          ~body:
            [ Vm.Ldp (3, Reg 0); Vm.Xor (2, Reg 3);
              Vm.Mul (2, Imm 0x01000193); Vm.And (2, Imm 0xffffffff);
              Vm.Add (4, Imm 1) ] );
      ( "near miss: byte register is the accumulator",
        fold ~start:0
          ~loop:(Vm.Loop (Imm 8, 65536))
          ~body:
            [ Vm.Ldp (2, Reg 0); Vm.Xor (2, Reg 2);
              Vm.Mul (2, Imm 0x01000193); Vm.And (2, Imm 0xffffffff);
              Vm.Add (0, Imm 1) ] );
    ]
  in
  List.iter
    (fun (what, insns) ->
      let spec =
        { Vm.s_insns = Array.of_list insns; s_fuel = Vm.max_fuel;
          s_scratch = 0; s_context = Vm.Edge }
      in
      match Vm.verify spec with
      | Error d ->
        Alcotest.failf "%s: unexpected rejection: %s" what
          (Vm.diag_to_string d)
      | Ok p -> assert_parity ~what p standard_blocks)
    cases

(* {1 Basic-block structure} *)

let test_block_structure () =
  (* Blocks tile the program: contiguous, in order, no gaps. *)
  List.iter
    (fun (what, p) ->
      let code = Compile.compile p in
      let bs = Compile.blocks code in
      let n = Array.length (Vm.insns p) in
      Alcotest.(check bool) (what ^ ": has blocks") true (Array.length bs > 0);
      Array.iteri
        (fun i { Compile.bb_first; bb_last } ->
          if i = 0 then
            Alcotest.(check int) (what ^ ": starts at 0") 0 bb_first
          else
            Alcotest.(check int)
              (what ^ ": contiguous")
              (bs.(i - 1).Compile.bb_last + 1)
              bb_first;
          Alcotest.(check bool) (what ^ ": ordered") true (bb_last >= bb_first))
        bs;
      Alcotest.(check int)
        (what ^ ": covers program")
        (n - 1)
        bs.(Array.length bs - 1).Compile.bb_last)
    [
      ("checksum", Samples.checksum ());
      ("dropper", Samples.dropper ~modulo:2);
      ("xor_mask", Samples.xor_mask ~key:1);
    ]

(* {1 Steady-state allocation}

   Both backends must run without per-block allocation: nothing beyond
   the run record and a handful of words per run, independent of the
   payload size. A per-byte or per-insn allocation would show up as
   thousands of words per 4 KB block. *)

let minor_words_per_run exec_once =
  let runs = 200 in
  exec_once ();  (* warm up *)
  let before = Gc.minor_words () in
  for _ = 1 to runs do
    exec_once ()
  done;
  (Gc.minor_words () -. before) /. float_of_int runs

let test_zero_alloc () =
  let p = Samples.checksum () in
  let code = Compile.compile p in
  let ist = Vm.new_state p and cst = Compile.new_state code in
  let data = Bytes.make 4096 '\x55' in
  let emit _ _ = () in
  let interp () =
    ignore (Vm.exec p ist ~data ~len:4096 ~lblk:3 ~emit : Vm.run)
  in
  let compiled () =
    ignore (Compile.exec code cst ~data ~len:4096 ~lblk:3 ~emit : Vm.run)
  in
  let wi = minor_words_per_run interp in
  let wc = minor_words_per_run compiled in
  Alcotest.(check bool)
    (Printf.sprintf "interpreter allocates O(1) per run (%.1f words)" wi)
    true (wi < 64.0);
  Alcotest.(check bool)
    (Printf.sprintf "compiled allocates O(1) per run (%.1f words)" wc)
    true (wc < 64.0)

(* {1 Random programs} *)

let prop_differential =
  QCheck.Test.make ~count:400 ~name:"random accepted programs: backends agree"
    Test_vm.arb_program (fun (insns, payload) ->
      let spec =
        { Vm.s_insns = Array.of_list insns; s_fuel = Vm.max_fuel;
          s_scratch = 4; s_context = Vm.Edge }
      in
      match Vm.verify spec with
      | Error d ->
        QCheck.Test.fail_reportf "generator produced a rejected program: %s"
          (Vm.diag_to_string d)
      | Ok p ->
        let code = Compile.compile p in
        let ist = Vm.new_state p and cst = Compile.new_state code in
        let check_block data lblk =
          let len = Bytes.length data in
          let iemits = ref [] and cemits = ref [] in
          let ir =
            Vm.exec p ist ~data ~len ~lblk ~emit:(fun k v ->
                iemits := (k, v) :: !iemits)
          in
          let cr =
            Compile.exec code cst ~data ~len ~lblk ~emit:(fun k v ->
                cemits := (k, v) :: !cemits)
          in
          if ir.Vm.r_verdict <> cr.Vm.r_verdict then
            QCheck.Test.fail_reportf "verdicts differ: %s vs %s"
              (Format.asprintf "%a" pp_verdict ir.Vm.r_verdict)
              (Format.asprintf "%a" pp_verdict cr.Vm.r_verdict);
          if ir.Vm.r_steps <> cr.Vm.r_steps then
            QCheck.Test.fail_reportf "steps differ: %d vs %d" ir.Vm.r_steps
              cr.Vm.r_steps;
          if !iemits <> !cemits then
            QCheck.Test.fail_reportf "emit sequences differ (%d vs %d emits)"
              (List.length !iemits) (List.length !cemits);
          if not (Bytes.equal ir.Vm.r_data cr.Vm.r_data) then
            QCheck.Test.fail_reportf "payloads differ";
          if ir.Vm.r_data == data && cr.Vm.r_data != data then
            QCheck.Test.fail_reportf "compiled cloned, interpreter aliased";
          if ir.Vm.r_data != data && cr.Vm.r_data == data then
            QCheck.Test.fail_reportf "interpreter cloned, compiled aliased"
        in
        (* Two blocks through the same states: scratch carry-over too. *)
        check_block (Bytes.of_string payload) 7;
        check_block (Bytes.of_string payload) 8;
        true)

let suite =
  [
    Alcotest.test_case "samples agree under both backends" `Quick test_samples;
    Alcotest.test_case "fixture ok-corpus agrees" `Quick test_ok_corpus;
    Alcotest.test_case "fault reasons and steps agree" `Quick test_fault_parity;
    Alcotest.test_case "verdict corners agree" `Quick test_verdict_parity;
    Alcotest.test_case "fold idiom: fast path and fallbacks agree" `Quick
      test_fold_idiom;
    Alcotest.test_case "basic blocks tile the program" `Quick
      test_block_structure;
    Alcotest.test_case "both backends run without per-block allocation" `Quick
      test_zero_alloc;
    QCheck_alcotest.to_alcotest prop_differential;
  ]
