(** Event tracing.

    A bounded ring of timestamped, categorised messages. Categories are
    opt-in, and emission is O(1) and allocation-free while a category is
    disabled (messages are closures forced only when recording), so
    instrumentation can stay in hot paths permanently. *)

type t
(** A trace ring. *)

type event = {
  ev_time : Time.t;  (** simulated time of emission *)
  ev_seq : int;  (** global emission ordinal *)
  ev_cat : string;
  ev_msg : string;
}

val create : ?capacity:int -> clock:(unit -> Time.t) -> unit -> t
(** A trace keeping the last [capacity] events (default 4096),
    timestamped by [clock]. *)

val enable : t -> string -> unit
(** Start recording a category (e.g. ["splice"]). *)

val enable_all : t -> unit
(** Record every category. *)

val disable : t -> string -> unit

val enabled : t -> string -> bool

val emit : t -> cat:string -> (unit -> string) -> unit
(** [emit t ~cat msg] records [msg ()] if [cat] is enabled. *)

val events : t -> event list
(** Recorded events, oldest first (at most [capacity]). *)

val clear : t -> unit

val recorded : t -> int
(** Total events recorded since creation (including overwritten ones). *)

val dropped : t -> int
(** Events overwritten by ring wrap-around. *)

val pp_event : Format.formatter -> event -> unit

val dump : Format.formatter -> t -> unit
(** Print every retained event, one per line. *)
