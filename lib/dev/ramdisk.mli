(** RAM-disk driver.

    Mirrors the paper's RAM disk: a block device backed by statically
    allocated kernel memory. A transfer is a [bcopy] performed by the CPU
    at memory speed — so RAM-disk "I/O" costs pure CPU time, no
    mechanical delay, which is exactly what makes the copy-elimination
    benefit of splice most visible (Tables 1 and 2, RAM rows). The copy
    time is stolen from whatever is running, like the driver's bcopy
    would be, and completion is delivered when the copy finishes. *)

open Kpath_sim

type t
(** A RAM disk. *)

type arbiter
(** Serialises bcopies across RAM disks sharing one CPU: two drivers on
    the same machine cannot copy simultaneously. *)

val arbiter : unit -> arbiter
(** A fresh arbiter (one per machine). *)

val create :
  name:string ->
  copy_rate:float ->
  block_size:int ->
  nblocks:int ->
  ?arbiter:arbiter ->
  ?charge_in_context:(Time.span -> bool) ->
  engine:Engine.t ->
  intr:Blkdev.intr ->
  unit ->
  t
(** [create ()] builds a RAM disk whose transfers proceed at [copy_rate]
    bytes per second of CPU time. Pass the machine's [arbiter] so that
    sibling RAM disks serialise their copies.

    As in a real UNIX driver, the bcopy runs in whatever context called
    [strategy]: [charge_in_context span] should charge [span] to the
    current process and return [true] when there is one (a system call
    doing RAM-disk I/O pays for its own copy and is scheduled fairly);
    when it returns [false] — splice handlers, callout context — the
    copy is stolen as interrupt-level time. Defaults to never-in-context
    (always steal). *)

val blkdev : t -> Blkdev.t
(** The generic block-device view. *)

val read_block_direct : t -> int -> bytes
(** Peek at stored block contents (testing aid). *)

val inject_error : t -> blkno:int -> unit
(** One-shot I/O error on the next request touching [blkno]. *)

val serviced : t -> int
(** Total requests completed. *)
