(** Canned filter programs, in the textual format.

    These serve as executable documentation of the ISA, as fixtures for
    the graph-integration tests, and as the workloads for
    [bench sweep-prog]. The [*_src] values are assembler source; the
    corresponding functions assemble and verify them (raising
    [Invalid_argument] only on a bug in the source — these programs are
    part of the test suite). *)

val checksum_src : string
(** FNV-1a over the payload mixed with the block number — bit-identical
    to the built-in [Graph.Checksum] stage. Emits the digest as key 0,
    which the graph folds into the edge checksum. *)

val checksum : unit -> Vm.prog

val tee_hash_src : string
(** Content hash of the payload emitted as key 1: a tee that records a
    fingerprint instead of copying the bytes. *)

val tee_hash : unit -> Vm.prog

val dropper : modulo:int -> Vm.prog
(** Drops every block whose number is a multiple of [modulo] (>= 1). *)

val router : fanout:int -> Vm.prog
(** Redirects block [b] to sibling edge [b mod fanout]. *)

val xor_mask : key:int -> Vm.prog
(** Transforms the payload in place (copy-on-write): XORs every byte
    with [key land 0xff]. Self-inverse. *)

val oob_probe : unit -> Vm.prog
(** Verifier-accepted but faults at run time: loads one byte past the
    payload. Exercises the edge fault/abort path. *)
