(** UDP sockets.

    A thin datagram layer over {!Netif}: sockets bind a port on an
    interface, receive into a byte-bounded socket buffer (overflow drops
    the datagram, as UDP does), and deliver either to blocked readers
    (process context) or to an upcall installed by splice — the hook that
    lets a socket-to-socket splice forward datagrams entirely inside the
    kernel, without a read/write round trip through a process. *)

open Kpath_sim

type t
(** A UDP socket. *)

type addr = { a_if : int; a_port : int }
(** Interface id + port. *)

type datagram = { d_from : addr; d_payload : bytes }

val create : Netif.t -> port:int -> ?rcvbuf:int -> unit -> t
(** [create nif ~port ()] binds a socket. Default receive buffer: 64 KB.
    Raises [Invalid_argument] if the port is taken on this interface. *)

val addr : t -> addr
(** The socket's own address. *)

val close : t -> unit
(** Unbind; queued datagrams are discarded, blocked readers return
    [None]. *)

val sendto : t -> dst:addr -> bytes -> unit
(** Queue one datagram for transmission (device-level; CPU costs of the
    user send path are charged by the syscall layer). *)

val recv : t -> datagram option
(** Block until a datagram arrives; [None] if the socket is closed while
    waiting. Process context. *)

val try_recv : t -> datagram option
(** Non-blocking receive. *)

val set_upcall : t -> (datagram -> unit) option -> unit
(** Divert arriving datagrams to a callback (interrupt context),
    bypassing the socket buffer. Installing an upcall first drains any
    queued datagrams into it. Used by splice sources. *)

val pending : t -> int
(** Datagrams queued in the socket buffer. *)

val drops : t -> int
(** Datagrams dropped because the socket buffer was full. *)

val stats : t -> Stats.t
