(* Canned filter programs. Kept as assembler source so the docs, the
   tests and the CLI all exercise the same text format. *)

let compile src =
  match Asm.load src with
  | Ok p -> p
  | Error e -> invalid_arg ("Samples: " ^ e)

let checksum_src =
  {|; FNV-1a over the payload, mixed with the block number -- bit-identical
; to the built-in Checksum stage. The digest goes out as key 0, which
; the graph folds into the edge checksum.
fuel 400000
    len r1
    mov r2, 0x811c9dc5
    mov r0, 0
    loop r1, 65536
    ldp r3, r0
    xor r2, r3
    mul r2, 0x01000193
    and r2, 0xffffffff
    add r0, 1
    end
    blkno r3
    add r3, 1
    mul r3, 0x9e3779b9
    xor r2, r3
    and r2, 0xffffffff
    emit 0, r2
    ret
|}

let checksum () = compile checksum_src

let tee_hash_src =
  {|; Content hash of the payload, emitted as key 1: a tee that records
; a fingerprint instead of copying the bytes. Read-only: safe as a
; probe attachment.
fuel 400000
context readonly
    len r1
    mov r2, 0x811c9dc5
    mov r0, 0
    loop r1, 65536
    ldp r3, r0
    xor r2, r3
    mul r2, 0x01000193
    and r2, 0xffffffff
    add r0, 1
    end
    emit 1, r2
    ret
|}

let tee_hash () = compile tee_hash_src

let dropper ~modulo =
  if modulo < 1 then invalid_arg "Samples.dropper: modulo < 1";
  compile
    (Printf.sprintf
       {|; Drop every block whose number is a multiple of %d.
fuel 16
    blkno r0
    rem r0, %d
    jne r0, 0, keep
    drop
keep:
    ret
|}
       modulo modulo)

let router ~fanout =
  if fanout < 1 then invalid_arg "Samples.router: fanout < 1";
  compile
    (Printf.sprintf
       {|; Content routing: block b goes to sibling edge (b mod %d).
fuel 16
    blkno r0
    rem r0, %d
    redirect r0
|}
       fanout fanout)

let xor_mask ~key =
  compile
    (Printf.sprintf
       {|; Transform: XOR every payload byte with 0x%02x (copy-on-write).
fuel 400000
    len r1
    mov r0, 0
    loop r1, 65536
    ldp r2, r0
    xor r2, %d
    stp r0, r2
    add r0, 1
    end
    ret
|}
       (key land 0xff) (key land 0xff))

let xor_stream ~key =
  compile
    (Printf.sprintf
       {|; Keyed xor-stream cipher (copy-on-write): every byte is XORed with
; a per-block key byte derived from the stream key and the block
; number, so identical plaintext blocks encrypt differently. The loop
; body is the scatter/store idiom; self-inverse for the same key.
fuel 400000
    len r1
    blkno r3
    add r3, 1
    mul r3, 0x9e3779b9
    xor r3, %d
    and r3, 0xff
    mov r0, 0
    loop r1, 65536
    ldp r2, r0
    xor r2, r3
    stp r0, r2
    add r0, 1
    end
    ret
|}
       (key land 0xff))

let histogram_src =
  {|; Block-local byte histogram + entropy probe, read-only. The scratch
; arena (256 cells, power of two: the "scratch-index" rule) is cleared
; per block, filled by the histogram idiom (ldp/ldsx/add/stsx/add),
; then scanned for the number of distinct byte values, emitted as
; key 4 -- a cheap entropy signal next to the disk (compressibility,
; encrypted-vs-plaintext detection).
fuel 400000
scratch 256
context readonly
    mov r0, 0
    loop 256, 256
    stsx r0, 0
    add r0, 1
    end
    len r1
    mov r0, 0
    loop r1, 65536
    ldp r2, r0
    ldsx r3, r2
    add r3, 1
    stsx r2, r3
    add r0, 1
    end
    mov r4, 0
    mov r5, 0
    loop 256, 256
    ldsx r6, r4
    jeq r6, 0, next
    add r5, 1
next:
    add r4, 1
    end
    emit 4, r5
    ret
|}

let histogram () = compile histogram_src

let dedup_chunks ~bits =
  if bits < 1 || bits > 24 then invalid_arg "Samples.dedup_chunks: bits";
  let mask = (1 lsl bits) - 1 in
  compile
    (Printf.sprintf
       {|; Content-defined chunking for dedup, read-only: a multiplicative
; rolling hash over the payload; positions where its low %d bits are
; all ones are chunk boundaries (expected chunk ~%d bytes), and the
; hash at each boundary goes out as key 3 -- the chunk fingerprint a
; dedup index would look up. The loop is the rolling-hash idiom.
fuel 700000
context readonly
    len r1
    mov r2, 0
    mov r0, 0
    loop r1, 65536
    ldp r3, r0
    mul r2, 0x01000193
    add r2, r3
    and r2, 0xffffff
    add r0, 1
    mov r4, r2
    and r4, %d
    jne r4, %d, next
    emit 3, r2
next:
    end
    ret
|}
       bits (1 lsl bits) mask mask)

let bounded_copy_src =
  {|; Mirror the 32-byte header into the next 32 bytes (copy-on-write),
; skipping blocks shorter than 64 bytes. The leading jge guard is what
; lets the range analysis prove every ldp/stp of the loop in bounds
; (r0 in [0,31], r3 in [32,63], len >= 64 on the copy path), so the
; compiled loop runs with no payload checks at all -- the
; guard-then-raw-copy shape the structural verifier used to force into
; per-access checks.
fuel 400
    len r1
    jge r1, 64, copy
    ret
copy:
    mov r0, 0
    loop 32, 32
    ldp r2, r0
    mov r3, r0
    add r3, 32
    stp r3, r2
    add r0, 1
    end
    ret
|}

let bounded_copy () = compile bounded_copy_src

let oob_probe () =
  compile
    {|; Verifies (payload bounds are a run-time check) but always faults:
; loads one byte past the payload.
fuel 16
    len r0
    ldp r1, r0
    ret
|}
