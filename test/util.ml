(* Shared helpers for the test suites. *)

open Kpath_sim
open Kpath_proc

let time = Alcotest.testable Time.pp Time.equal

(* Run [body] as the sole process on a fresh engine + scheduler; the
   simulation is driven to completion and the body's result returned.
   Fails the test if the process crashed or deadlocked. *)
let run_in_process ?(ctx_switch_cost = Time.us 100) body =
  let engine = Engine.create () in
  let sched = Sched.create ~ctx_switch_cost engine in
  let result = ref None in
  let proc = Sched.spawn sched ~name:"test-proc" (fun () -> result := Some (body ())) in
  Engine.run engine;
  Sched.check_deadlock sched;
  (match proc.Process.exit_status with
   | Some Process.Exited -> ()
   | Some (Process.Crashed e) -> raise e
   | None -> Alcotest.fail "process did not terminate");
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "process produced no result"

(* Same, with access to engine and scheduler. *)
let run_in_process_with body =
  let engine = Engine.create () in
  let sched = Sched.create engine in
  let result = ref None in
  let proc =
    Sched.spawn sched ~name:"test-proc" (fun () -> result := Some (body engine sched))
  in
  Engine.run engine;
  Sched.check_deadlock sched;
  (match proc.Process.exit_status with
   | Some Process.Exited -> ()
   | Some (Process.Crashed e) -> raise e
   | None -> Alcotest.fail "process did not terminate");
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "process produced no result"

(* An interrupt injector for device tests that ignores CPU accounting. *)
let free_intr ~service:_ fn = fn ()

let qcheck = QCheck_alcotest.to_alcotest

(* Substring containment, for matching error messages. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0
