(** A verified register machine for per-block filter programs.

    The splice graph's built-in filter stages (Checksum / Throttle /
    Tee) are fixed at compile time. This module provides the modern
    alternative argued for by the BPF-for-storage line of work: small
    user-supplied programs pushed into the in-kernel data path and made
    safe by a {e static verifier} rather than by trust. A program that
    passes {!verify} provably

    - terminates within its declared fuel bound (backward control flow
      exists only through the bounded {!insn.Loop} construct, and the
      structural worst-case cost is checked against the fuel),
    - never reads or writes outside the block payload or its private
      scratch arena (payload accesses are bounds-checked at run time
      and fault the edge; scratch offsets are immediate and checked
      statically), and
    - never blocks: the instruction set has no I/O, no allocation
      beyond the one copy-on-write payload clone, and no calls — so an
      accepted program is safe to run from interrupt context inside
      the edge pump.

    Rejected programs yield a structured {!diag} naming the violated
    rule and the instruction offset, mirroring kpath-verify's findings:
    the verifier is itself a correctness tool whose rejections become
    test fixtures.

    The machine: {!max_regs} integer registers [r0..r7], a
    word-addressed scratch arena of up to {!max_scratch} cells that
    persists across blocks on the same edge (enabling dedup tables and
    cross-block state), read access to the current block's payload and
    logical block number, and four effect opcodes — transform a payload
    byte ({!insn.Stp}, applied to a private copy so aliased readers
    never observe the mutation), drop the block, redirect it to a
    sibling edge's sink, or emit a key/value pair to the attachment
    point. *)

(** {1 Instruction set} *)

type reg = int
(** Register index, [0 .. max_regs - 1]. *)

type operand =
  | Reg of reg  (** the register's current value *)
  | Imm of int  (** an immediate constant *)

(** One instruction. ALU operations update their first (register)
    operand in place. Jump offsets are relative and must be strictly
    positive: the only backward control flow is [Loop]/[End]. *)
type insn =
  | Mov of reg * operand  (** [r <- v] *)
  | Add of reg * operand
  | Sub of reg * operand
  | Mul of reg * operand
  | Div of reg * operand  (** faults on a zero register divisor *)
  | Rem of reg * operand  (** faults on a zero register divisor *)
  | And of reg * operand
  | Or of reg * operand
  | Xor of reg * operand
  | Shl of reg * operand  (** shift count taken mod 64 *)
  | Shr of reg * operand  (** logical; shift count taken mod 64 *)
  | Len of reg  (** [r <- ] payload bytes in this block *)
  | Blkno of reg  (** [r <- ] logical block number *)
  | Ldp of reg * operand  (** load payload byte; faults out of bounds *)
  | Stp of operand * operand
      (** [Stp (off, v)] stores byte [v land 0xff] at payload offset
          [off], copy-on-write; faults out of bounds *)
  | Lds of reg * int  (** load scratch cell (static offset) *)
  | Sts of int * operand  (** store scratch cell (static offset) *)
  | Ldsx of reg * reg
      (** [Ldsx (r, ri)] loads the scratch cell at
          [ri land (scratch - 1)]. Admitted only over a non-empty
          power-of-two arena (rule ["scratch-index"]), which makes the
          masked access statically in bounds — the proof the compiled
          backend relies on to index the host array unchecked. *)
  | Stsx of reg * operand
      (** [Stsx (ri, v)] stores [v] at scratch cell
          [ri land (scratch - 1)]; same power-of-two requirement. *)
  | Jmp of int  (** relative forward jump: next pc is [pc + off] *)
  | Jeq of reg * operand * int  (** jump forward when [r = v] *)
  | Jne of reg * operand * int
  | Jlt of reg * operand * int
  | Jge of reg * operand * int
  | Loop of operand * int
      (** [Loop (count, cap)] runs the body (through the matching
          [End]) [min (max count 0) cap] times; [cap] is a static
          iteration bound the verifier charges against the fuel *)
  | End  (** closes the innermost [Loop] *)
  | Emit of operand * operand  (** deliver a key/value observation *)
  | Drop  (** verdict: discard this block *)
  | Redirect of operand  (** verdict: deliver via the nth sibling edge *)
  | Ret  (** verdict: pass the block through *)

(** Where the program is attached, restricting the effects it may use:
    an [Edge] program owns its block and may transform, drop or
    redirect it; a [Readonly] program (a probe) may only observe and
    [Emit]. *)
type context = Edge | Readonly

type spec = {
  s_insns : insn array;
  s_fuel : int;  (** declared execution budget, instructions *)
  s_scratch : int;  (** scratch arena cells to allocate *)
  s_context : context;
}
(** An unverified program as assembled or loaded. *)

(** {1 Limits} *)

val max_regs : int
(** Register-file size (8). *)

val max_scratch : int
(** Largest scratch arena, in cells. *)

val max_fuel : int
(** Largest declarable fuel. *)

val max_loop_count : int
(** Largest static loop cap. *)

val max_loop_depth : int
(** Deepest [Loop] nesting. *)

val max_insns : int
(** Longest accepted program. *)

(** {1 Verification} *)

type prog
(** A verified program. Values of this type exist only by passing
    {!verify}: holding a [prog] is proof of the termination and
    memory-safety argument, which is what keeps the in-kernel trusted
    surface at the size of the verifier rather than of every program. *)

type diag = {
  d_rule : string;  (** violated rule, e.g. ["unbounded-loop"] *)
  d_pc : int;  (** instruction offset, [-1] for whole-program rules *)
  d_msg : string;  (** human-readable explanation *)
}
(** A structured rejection. Rules: ["program-size"], ["fuel-bound"],
    ["scratch-oob"], ["scratch-index"], ["bad-register"],
    ["unbounded-loop"], ["loop-depth"], ["jump-oob"], ["div-by-zero"],
    ["effect-context"], ["range-oob"]. The last is produced by the
    range analysis: a payload access whose offset interval provably
    misses every admissible payload (always negative, or at/past a
    guard-derived length cap); its message names the violated interval,
    e.g. [off in [256, 256], len in [0, 255]]. *)

val verify : spec -> (prog, diag) result
(** Statically check a program. On success the returned {!prog} is a
    private copy: later mutation of [s_insns] cannot invalidate it.

    Beyond the structural rules, [verify] runs a flow-sensitive range
    analysis: an abstract interpreter tracking one interval per
    register (endpoints may be payload-relative, ["len-1"]) plus a
    known multiple-of fact, refined by conditional guards and widened
    through [Loop] back-edges via a monotone-counter envelope. Its
    verdict table (see {!accesses}) marks every payload load/store and
    register-divisor [Div]/[Rem] site [`Proven] — cannot fault on any
    admissible payload — or [`Checked]; the compiled backend elides the
    runtime test exactly at [`Proven] sites. *)

type access = {
  a_pc : int;  (** instruction offset of the faultable site *)
  a_kind : [ `Load | `Store | `Div ];
  a_bounds : [ `Proven | `Checked ];
      (** [`Proven]: the range analysis showed the access in bounds (or
          the divisor non-zero) on every path and payload, so the
          runtime check may be elided. *)
  a_range : string;
      (** the analyzed interval, e.g. ["off in [0, len-1]"], or
          ["unreachable"] for statically dead sites *)
}
(** One row of the range-analysis verdict table. *)

val accesses : prog -> access list
(** Every faultable site of the program in pc order: payload loads and
    stores, and [Div]/[Rem] with a register divisor. *)

val bounds_at : prog -> int -> [ `Proven | `Checked ]
(** The verdict at one pc; [`Checked] for pcs that are not a faultable
    site. This is the compiler's elision oracle. *)

val diag_to_string : diag -> string
(** ["rule at pc N: msg"] — one line, stable format. *)

val insns : prog -> insn array
(** The verified instruction sequence (a copy). *)

val fuel : prog -> int

val scratch_cells : prog -> int

val prog_context : prog -> context

val worst_cost : prog -> int
(** The verifier's structural worst-case instruction count; always
    [<= fuel prog]. *)

(** {1 Execution} *)

(** How a run ended. [Fault] carries the reason (payload access out of
    bounds, zero register divisor, …); the attachment point treats it
    like any other edge error. *)
type verdict = Pass | Drop | Redirect of int | Fault of string

type run = {
  r_verdict : verdict;
  r_steps : int;  (** instructions executed, for CPU accounting *)
  r_data : bytes;
      (** the payload after the run: the input buffer itself, or the
          program's private copy when it stored through [Stp] *)
}

type state
(** Mutable per-attachment state: the scratch arena (persists across
    blocks) plus preallocated register and loop books so a run does
    not allocate. One [state] per edge; never share across edges. *)

val new_state : prog -> state

val exec :
  prog ->
  state ->
  data:bytes ->
  len:int ->
  lblk:int ->
  emit:(int -> int -> unit) ->
  run
(** Run the program over one block. [data] is the shared block buffer
    ([len] payload bytes of it are visible); it is never mutated —
    [Stp] clones it first, and [r_data] is the clone. Registers are
    zeroed per run; scratch persists. [emit k v] is called
    synchronously for each [Emit]. Deterministic: same program, state,
    and block give the same result. *)

(** {1 Backend support}

    Shared with {!Compile}, the closure-compiling backend, so both
    backends fault with byte-identical reasons. Not for general use:
    raising [Fault_exn] anywhere else bypasses the run accounting. *)

exception Fault_exn of string
(** Raised internally on a runtime fault (payload bounds, zero register
    divisor); caught by [exec] and turned into a [Fault] verdict. *)

val fault : ('a, unit, string, 'b) format4 -> 'a
(** [fault fmt ...] raises {!Fault_exn} with the formatted reason. *)
