type counter = { mutable v : int }

type t = {
  counters : (string, counter) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 64; histograms = Hashtbl.create 16 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = { v = 0 } in
    Hashtbl.add t.counters name c;
    c

let incr c = c.v <- c.v + 1

let add c n =
  if n < 0 then invalid_arg "Stats.add: negative increment";
  c.v <- c.v + n

let value c = c.v

let get t name =
  match Hashtbl.find_opt t.counters name with Some c -> c.v | None -> 0

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
    let h = Histogram.create () in
    Hashtbl.add t.histograms name h;
    h

let to_list t =
  Hashtbl.fold (fun name c acc -> (name, c.v) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  (Hashtbl.iter (fun _ c -> c.v <- 0) t.counters)
  [@kpath.nolint "hashtbl-order: zeroing each counter commutes, no \
                  order-dependent effect"];
  Hashtbl.reset t.histograms

let pp fmt t =
  List.iter (fun (name, v) -> Format.fprintf fmt "%-40s %d@." name v) (to_list t)
