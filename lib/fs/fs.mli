(** The filesystem: a 4.2BSD-FFS-style file store over a block device.

    All data and metadata live on the device, moved through the buffer
    cache; [mkfs]/[mount] round-trip the superblock, allocation bitmap
    and inode table. Operations that touch the device may sleep and must
    run inside a process coroutine.

    splice does not use {!read}/{!write}: it calls {!bmap} repeatedly to
    build the physical block table of the source, and {!bmap_alloc} with
    [~zero:false] — the paper's "special version of bmap() ... which
    avoids delayed-writes of freshly allocated, zero-filled blocks" — for
    the destination, then drives the buffer cache directly. *)

open Kpath_sim
open Kpath_dev
open Kpath_buf

type t
(** A mounted filesystem. *)

val mkfs : cache:Cache.t -> Blkdev.t -> ninodes:int -> t
(** [mkfs ~cache dev ~ninodes] formats the device and mounts the fresh
    filesystem. The cache block size must equal the device block size.
    Process context. *)

val mount : cache:Cache.t -> Blkdev.t -> t
(** Mount an existing filesystem, reading its metadata from the device.
    Raises [Fs_error.Error] on a bad image. Process context. *)

val sync : t -> unit
(** Write the superblock, bitmap and inode table to the device and flush
    every delayed write. Process context. *)

val dev : t -> Blkdev.t

val cache : t -> Cache.t

val block_size : t -> int

val free_blocks : t -> int
(** Unallocated data blocks remaining. *)

val stats : t -> Stats.t

(** {1 Naming} *)

val create_file : t -> string -> Inode.t
(** [create_file t path] creates a regular file. Raises [Eexist],
    [Enoent] (missing parent), [Enotdir], [Enametoolong], [Enospc]. *)

val mkdir : t -> string -> Inode.t
(** Create a directory. *)

val lookup : t -> string -> Inode.t
(** Resolve a path to its inode. Raises [Enoent] / [Enotdir]. *)

val unlink : t -> string -> unit
(** Remove a name; the inode and its storage are freed when the last
    link goes. Directories must be empty ([Enotempty]); removing the
    root is [Einval]. *)

val link : t -> string -> string -> unit
(** [link t existing fresh] adds a second name for a regular file
    (hard link). Raises [Eisdir] for directories, [Eexist] if [fresh]
    exists. *)

val rename : t -> string -> string -> unit
(** [rename t old new] atomically (in simulation terms) moves a name.
    An existing regular file at [new] is replaced; a directory target
    must not exist. Renaming a directory into itself is [Einval]. *)

val readdir : t -> string -> (string * int) list
(** Directory entries as (name, inode number), in directory order. *)

(** {1 File I/O (process context)} *)

val read : t -> Inode.t -> off:int -> len:int -> bytes -> pos:int -> int
(** [read t ino ~off ~len dst ~pos] copies up to [len] bytes starting at
    file offset [off] into [dst] at [pos]; returns the count actually
    read (0 at EOF). Sequential reads trigger one-block read-ahead. *)

val write : t -> Inode.t -> off:int -> len:int -> bytes -> pos:int -> int
(** Write [len] bytes at [off] from [dst\[pos..\]], extending the file as
    needed; whole-block writes avoid read-modify-write; dirty blocks are
    delayed-written. Returns [len]. Raises [Enospc] / [Efbig]. *)

val truncate : t -> Inode.t -> int -> unit
(** Shrink or zero-extend (sparsely) the file to the given size, freeing
    any blocks beyond it. *)

val fsync : t -> Inode.t -> unit
(** Force the file's delayed-written data blocks and its inode to the
    device — what [cp]'s copy loop ends with in the experiments. *)

(** {1 Block mapping (splice support)} *)

val bmap : t -> Inode.t -> int -> int option
(** [bmap t ino lblk] is the physical block backing logical block
    [lblk], or [None] for a hole. Process context (indirect blocks may
    need reading). *)

val bmap_range : t -> Inode.t -> int -> max:int -> (int * int) option
(** [bmap_range t ino lblk ~max] probes for a physically contiguous run:
    [Some (phys, n)] means logical blocks [lblk .. lblk+n-1] are backed
    by consecutive device blocks [phys .. phys+n-1], with [1 <= n <=
    max]; [None] means [lblk] is a hole. The run stops at a hole, a
    physical discontinuity, or [max]. Process context (indirect blocks
    may need reading). The cluster I/O paths use this to size multi-block
    transfers. *)

val bmap_alloc : t -> Inode.t -> int -> zero:bool -> int
(** Allocating [bmap]: ensure logical block [lblk] is backed, allocating
    data (and indirect) blocks as needed. With [~zero:true] fresh blocks
    are zero-filled through the cache as delayed writes (the standard
    path); with [~zero:false] they are handed over raw for a caller that
    will overwrite them entirely (the splice destination path). *)

val block_list : t -> Inode.t -> int list
(** Physical blocks of every mapped data block, in logical order —
    the fsync work list. *)

(** {1 Locking} *)

val with_ilock : Inode.t -> (unit -> 'a) -> 'a
(** Run with the inode lock held (sleeping until available). Reentrant
    acquisition deadlocks — callers keep lock scopes disjoint. *)

(** {1 Integrity} *)

val fsck : t -> string list
(** Consistency check of the in-core filesystem: bitmap vs reachable
    blocks, link counts, sizes vs mappings. Returns human-readable
    problem descriptions (empty = clean). *)
