(* kpath-verify: each known-bad fixture yields exactly its expected
   finding; the known-good fixture yields none; the annotation parser
   rejects malformed escapes. *)

module Lint = Kpath_lint.Lint

let fixture name =
  Filename.concat "lint_fixtures/.lint_fixtures.objs/byte"
    ("lint_fixtures__" ^ String.capitalize_ascii name ^ ".cmt")

let run name = Lint.run [ fixture name ]

let rules result = List.map (fun f -> f.Lint.rule) result.Lint.r_findings

let check_single name expected_rule () =
  let result = run name in
  Alcotest.(check (list string))
    (name ^ " findings") [ expected_rule ] (rules result)

let test_good () =
  let result = run "fix_good" in
  Alcotest.(check (list string)) "no findings" [] (rules result)

let test_chain () =
  let result = run "fix_intr" in
  match result.Lint.r_findings with
  | [ f ] ->
    Alcotest.(check bool)
      "chain names the blocking callee" true
      (let contains s sub =
         let n = String.length sub in
         let rec go i =
           i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
         in
         go 0
       in
       contains f.Lint.msg "Cache.biowait" && contains f.Lint.msg "Process.block")
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_all_at_once () =
  (* The six bad fixtures analyzed together still yield exactly one
     finding each (no cross-fixture interference). In particular the
     mutable record types declared in fix_domain_leak must not condemn
     the other fixtures' bindings. *)
  let result =
    Lint.run
      [ fixture "fix_intr"; fixture "fix_leak"; fixture "fix_double";
        fixture "fix_rng"; fixture "fix_polyeq"; fixture "fix_domain_leak" ]
  in
  Alcotest.(check (list string))
    "all six"
    [ "buf-double-release"; "buf-leak"; "domain-global-mutable";
      "intr-blocks"; "poly-compare"; "rng" ]
    (List.sort String.compare (rules result))

let test_domain_empty () =
  (* An empty justification is itself a finding and does not suppress
     the underlying rule. *)
  let result = run "fix_domain_empty" in
  Alcotest.(check (list string))
    "empty justification"
    [ "bad-annotation"; "domain-global-mutable" ]
    (List.sort String.compare (rules result))

let test_nested_nolint () =
  (* [@kpath.nolint] on bindings inside a nested module (Outer.Inner)
     suppresses exactly the named rule; the sibling violation without an
     escape still fires. *)
  let result = run "fix_nested_nolint" in
  Alcotest.(check (list string)) "nested escapes" [ "rng" ] (rules result)

let test_json () =
  let result = run "fix_rng" in
  let json = Lint.to_json result in
  Alcotest.(check bool) "json mentions rule" true
    (let contains s sub =
       let n = String.length sub in
       let rec go i =
         i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
       in
       go 0
     in
     contains json "\"rule\": \"rng\"" && contains json "\"findings\": 1")

let suite =
  [
    Alcotest.test_case "intr fixture: sleep under interrupt" `Quick
      (check_single "fix_intr" "intr-blocks");
    Alcotest.test_case "intr fixture: chain reported" `Quick test_chain;
    Alcotest.test_case "leak fixture: buffer escapes unreleased" `Quick
      (check_single "fix_leak" "buf-leak");
    Alcotest.test_case "double fixture: brelse twice" `Quick
      (check_single "fix_double" "buf-double-release");
    Alcotest.test_case "rng fixture: stray Random.int" `Quick
      (check_single "fix_rng" "rng");
    Alcotest.test_case "polyeq fixture: List.mem over closure variant" `Quick
      (check_single "fix_polyeq" "poly-compare");
    Alcotest.test_case "domain fixture: shared mutable record" `Quick
      (check_single "fix_domain_leak" "domain-global-mutable");
    Alcotest.test_case "domain fixture: empty justification" `Quick
      test_domain_empty;
    Alcotest.test_case "good fixture: zero findings" `Quick test_good;
    Alcotest.test_case "nested module nolint honored" `Quick
      test_nested_nolint;
    Alcotest.test_case "bad fixtures together" `Quick test_all_at_once;
    Alcotest.test_case "json artifact shape" `Quick test_json;
  ]
