(* Known-good fixture: exercises every rule family without violating
   any of them. Expected: zero findings.

   - the interrupt handler calls only non-blocking code;
   - the acquired buffer is released exactly once on every path;
   - the Hashtbl.fold feeds directly into List.sort (the sorted-fold
     idiom), so enumeration order cannot leak out. *)

module Buf = struct
  type t = { mutable data : int }
end

module Cache = struct
  let bread (_dev : int) (_blkno : int) : Buf.t = { Buf.data = 0 }

  let brelse (_b : Buf.t) = ()

  let biodone (_b : Buf.t) = ()
end

let[@kpath.intr] completion_handler (b : Buf.t) = Cache.biodone b

let balanced ok =
  let b = Cache.bread 0 7 in
  if ok then begin
    ignore b.Buf.data;
    Cache.brelse b
  end
  else Cache.brelse b

let sorted_counts (tbl : (string, int) Hashtbl.t) =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
