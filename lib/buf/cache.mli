(** The buffer cache.

    A fixed pool of block buffers indexed by (device, physical block),
    with LRU reuse and delayed writes — the 4.2BSD design ([LMK89]) the
    paper's splice implementation plugs into. Two families of entry
    points coexist:

    - the classic process-context calls ([getblk], [bread], [breada],
      [bwrite], [bawrite], [bdwrite], [biowait]) which may put the caller
      to sleep and therefore must run inside a process coroutine;

    - the splice variants (§5.3): [getblk_nb] and [bread_nb] never sleep
      (splice handlers run without a process context), and [getblk_hdr]
      hands out a bare header whose data pointer will alias another
      buffer's data area — the paper's modified [getblk] "which avoids
      allocating any real memory to the buffer".

    I/O completion arrives through {!biodone}, in interrupt context. *)

open Kpath_sim
open Kpath_dev

type t
(** A buffer cache. *)

val create : block_size:int -> nbufs:int -> ?max_cluster:int -> unit -> t
(** [create ~block_size ~nbufs ()] builds a cache of [nbufs] buffers of
    [block_size] bytes (the paper's machine: 3.2 MB of 8 KB buffers).
    [max_cluster] (default 1 = clustering off) bounds how many
    physically contiguous blocks the cluster primitives ({!breadn},
    cluster write coalescing) will combine into one device request. *)

val block_size : t -> int

val nbufs : t -> int

val max_cluster : t -> int
(** The cluster-size bound this cache was created with. *)

val stats : t -> Stats.t
(** Counters: [cache.hits], [cache.misses], [cache.reads],
    [cache.writes], [cache.delwri_flushes], [cache.sleeps]... *)

(** {1 Process-context operations} *)

val getblk : t -> Blkdev.t -> int -> Buf.t
(** [getblk t dev blkno] returns the buffer for [(dev, blkno)], marked
    busy. Sleeps while the buffer is busy or no buffer can be recycled.
    Contents are valid iff [Buf.valid]. Must run in a process. *)

val bread : t -> Blkdev.t -> int -> Buf.t
(** [bread t dev blkno] is [getblk] plus, on a miss, a read from the
    device and a [biowait]. Check [b_error] on return. *)

val breada : t -> Blkdev.t -> int -> ahead:int -> Buf.t
(** [breada t dev blkno ~ahead] is [bread] plus an asynchronous
    read-ahead of block [ahead] (ignored when [ahead] is cached, busy or
    out of range) — the FFS sequential read-ahead [cp] benefits from. *)

val bwrite : t -> Buf.t -> unit
(** Synchronous write: starts the I/O and sleeps until completion, then
    releases the buffer. *)

val bawrite : t -> Buf.t -> unit
(** Asynchronous write: starts the I/O and returns; the buffer is
    released by {!biodone}. *)

val bdwrite : t -> Buf.t -> unit
(** Delayed write: mark dirty and valid, release without I/O. The block
    is written when its buffer is about to be recycled, or by
    {!flush_blocks} / {!flush_dev}. *)

val brelse : t -> Buf.t -> unit
(** Release a busy buffer back to the free list (MRU position), waking
    anyone sleeping on it. [B_INVAL] buffers lose their identity. *)

val biowait : Buf.t -> (unit, Blkdev.error) result
(** Sleep until the buffer's I/O completes; report its outcome. *)

val flush_blocks : t -> Blkdev.t -> int list -> unit
(** Synchronously write out any delayed-write buffers among the given
    physical blocks (the [fsync] back end). When [max_cluster > 1],
    runs of adjacent dirty blocks in the work list are coalesced into
    single multi-block writes (4.3BSD [cluster_wbuild]). Process
    context. *)

val flush_dev : t -> Blkdev.t -> unit
(** {!flush_blocks} over every cached block of the device. *)

val invalidate_dev : t -> Blkdev.t -> unit
(** Forget every non-busy cached block of the device — used to ensure the
    cold-cache start of the paper's measurements. Raises
    [Invalid_argument] if the device has busy buffers. *)

val cached : t -> Blkdev.t -> int -> bool
(** Is [(dev, blkno)] present (valid or dirty) in the cache? *)

(** {1 Interrupt-context operations} *)

val biodone : t -> Buf.t -> Blkdev.error option -> unit
(** I/O completion: records the outcome, then runs the [B_CALL] handler
    if installed, else auto-releases [B_ASYNC] buffers, else wakes
    [biowait] sleepers. *)

(** {1 splice support (never sleep)} *)

val getblk_nb : t -> Blkdev.t -> int -> Buf.t option
(** Non-blocking [getblk]: [None] when the buffer is busy or nothing can
    be recycled right now (a delayed write may have been started to make
    progress). *)

val bread_nb :
  t ->
  Blkdev.t ->
  int ->
  iodone:(Buf.t -> unit) ->
  [ `Hit of Buf.t | `Started of Buf.t | `Busy ]
(** Non-blocking [bread] with the [biowait] removed (§5.3): on a cache
    hit returns the valid busy buffer; otherwise installs [iodone] as the
    [B_CALL] handler and starts the read, or reports [`Busy] when no
    buffer is available. With [`Started b], [b] is the in-flight buffer —
    the caller may tag [b_splice]/[b_lblkno] immediately (completion is
    never synchronous). *)

val breadn :
  t ->
  Blkdev.t ->
  int ->
  n:int ->
  iodone:(Buf.t -> unit) ->
  [ `Hit of Buf.t | `Started of Buf.t list | `Busy ]
(** Clustered {!bread_nb} (4.3BSD [cluster_rbuild]): on a miss, extend
    the read to up to [min n max_cluster] physically consecutive blocks
    — the run is truncated by a block already in the cache (valid, dirty
    or busy), by the end of the device, or by buffer shortage — and
    fetch the whole run with a single strategy call. The device raises
    one completion interrupt for the cluster; completion then fans out
    to every member buffer, invoking [iodone] on each. [`Started bs]
    lists the in-flight members in ascending block order; the caller may
    tag them immediately (completion is never synchronous). An I/O error
    breaks the cluster into single-block retries so only the failing
    block's buffer carries the error. With [n = 1] (or [max_cluster]
    1) this is exactly {!bread_nb}. *)

val awrite_call : t -> Buf.t -> iodone:(Buf.t -> unit) -> unit
(** Asynchronous write whose completion invokes [iodone] instead of
    auto-releasing ([B_CALL] wins over [B_ASYNC] in {!biodone}) — the
    splice write side: install the write handler in the header, then
    [bawrite] (§5.4). Works on cache buffers and {!getblk_hdr} headers. *)

val pin : t -> Buf.t -> unit
(** Take an alias reference on a busy buffer: its data area is about to
    be shared by one more downstream writer (splice-graph fan-out reads
    a source block once and aliases it to every outgoing edge). Each
    reference must be dropped with {!unpin}; while any are held,
    {!brelse} refuses the buffer, so the release happens exactly once —
    when the count drains. *)

val unpin : t -> Buf.t -> unit
(** Drop one alias reference; the reference that brings the count to
    zero releases the buffer ({!brelse}). Raises [Invalid_argument] if
    the buffer is not pinned — a double release. *)

val invalidate_cached : t -> Blkdev.t -> int -> unit
(** If [(dev, blkno)] is cached, discard it (sleeping while it is busy).
    Unlike [getblk]-then-invalidate, a block that is absent is left
    absent. Used by splice to keep the cache coherent with its
    write-around of the destination blocks. Process context. *)

val getblk_hdr : t -> Blkdev.t -> int -> Buf.t
(** A bare buffer header for the splice write side (§5.4): not indexed in
    the cache, owning no data area of its own — the caller points
    [b_data] at the read-side buffer's data. Release with
    {!release_hdr}. *)

val release_hdr : t -> Buf.t -> unit
(** Return a {!getblk_hdr} header to the header pool. *)

(** {1 Introspection} *)

val busy_count : t -> int
(** Buffers currently busy. *)

val pinned_count : t -> int
(** Buffers currently holding at least one alias reference. *)

val dirty_count : t -> int
(** Buffers currently marked delayed-write. *)

val check_invariants : t -> unit
(** Validate structural invariants (unique identities, busy buffers off
    the free list, hash consistency); raises [Failure] on violation.
    Testing aid. *)
