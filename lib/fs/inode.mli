(** In-core inodes (the paper's Ultrix "gnodes").

    An inode maps a file's logical blocks onto physical disk blocks
    through 12 direct pointers, one single-indirect and one
    double-indirect block — the structure [bmap] (in {!Fs}) walks, and
    whose walk splice repeats "by successive calls to bmap()" to build
    its block tables. Physical block number 0 (the superblock) doubles
    as the nil pointer. *)

type ftype =
  | Free  (** slot unused *)
  | Regular  (** regular file *)
  | Directory  (** directory *)

type t = {
  ino : int;  (** inode number *)
  mutable ftype : ftype;
  mutable nlink : int;
  mutable size : int;  (** file size in bytes *)
  direct : int array;  (** [Layout.ndirect] direct block pointers; 0 = nil *)
  mutable single : int;  (** single-indirect block, 0 = nil *)
  mutable double : int;  (** double-indirect block, 0 = nil *)
  mutable dirty : bool;  (** in-core copy differs from disk *)
  mutable locked : bool;  (** inode lock (see {!Fs.with_ilock}) *)
  mutable lock_waiters : (unit -> unit) list;
  mutable last_read_lblk : int;  (** sequential-read detector for read-ahead *)
}

val make : ino:int -> t
(** A fresh free inode. *)

val reset : t -> ftype -> unit
(** Re-initialise for a newly allocated file of the given type. *)

val serialize : t -> bytes -> int -> unit
(** [serialize i b off] writes the 128-byte on-disk form at [off]. *)

val deserialize : ino:int -> bytes -> int -> t
(** Read the on-disk form back. *)

val pp : Format.formatter -> t -> unit
