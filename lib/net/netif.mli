(** Network interfaces on a shared or switched segment.

    A {!net} models one Ethernet-class segment: every attached
    interface can send to every other by interface id. On a shared
    segment each interface serialises its own transmissions at the link
    bandwidth (the classic 10 Mbit/s bottleneck); on a {e switched}
    segment ([~switched:true]) each (source, destination) pair gets its
    own full-bandwidth lane, so flows to different destinations never
    queue behind each other — the fan-out topology a million-client
    simulation shards over. Either way a transmitted frame propagates
    with a small latency and is delivered to the destination through
    its receive interrupt. Delivery is a callback; {!Udp} and {!Tcp}
    demultiplex.

    Frames are mutable slab-pooled records. Beyond the inline
    [f_payload] header bytes, a frame can carry an offset+length view
    into a shared refcounted {!Kpath_sim.Payload.t} — the zero-copy
    path: one immutable block buffer backs every client's segments.
    Pooled frames ({!alloc_frame}) recycle to the net's free list the
    moment the receive upcall returns, so steady-state forwarding
    allocates nothing per frame; receive handlers must copy (or retain
    the payload), never stash the frame. *)

open Kpath_sim
open Kpath_dev

type net
(** A network segment. *)

type t
(** An attached interface. *)

type frame = {
  mutable f_src : int;  (** source interface id *)
  mutable f_dst : int;  (** destination interface id *)
  mutable f_proto : int;  (** transport protocol (17 = UDP, 6 = TCP) *)
  mutable f_port_src : int;
  mutable f_port_dst : int;
  mutable f_payload : bytes;
      (** inline payload (transport header, possibly data) — not
          copied; receivers must not mutate *)
  mutable f_len : int;  (** live bytes of [f_payload] *)
  mutable f_pl : Payload.t;
      (** shared payload view; {!Payload.none} when inline only *)
  mutable f_pl_off : int;
  mutable f_pl_len : int;
  f_pooled : bool;
  f_hdr : bytes;  (** owned by the pool — do not touch *)
  f_dlcb : unit -> unit;  (** owned by the pool — do not touch *)
  mutable f_next : frame;  (** owned by the pool — do not touch *)
}

val create_net :
  ?bandwidth:float ->
  ?latency:Time.span ->
  ?mtu:int ->
  ?switched:bool ->
  Engine.t ->
  net
(** A segment. Defaults: 10 Mbit/s (1.25 MB/s), 100 us latency,
    9000-byte MTU (an FDDI-class local segment, as a 1992 multimedia
    lab would covet), shared medium. [~switched:true] serialises
    transmissions per (source, destination) pair instead of per
    interface. *)

val attach :
  net ->
  name:string ->
  ?rx_intr_service:Time.span ->
  ?tx_intr_service:Time.span ->
  ?stats:Stats.t ->
  intr:Blkdev.intr ->
  unit ->
  t
(** Attach an interface. [intr] injects its interrupt costs into that
    host's CPU (stub hosts pass a free-running injector) and must run
    its callback synchronously. [stats] shares a registry across
    interfaces (a million clients need not each own a table); by
    default each interface gets a private one. *)

val id : t -> int
(** The interface id, unique on its segment. *)

val name : t -> string

val mtu : net -> int

val net : t -> net
(** The segment an interface is attached to. *)

val net_id : net -> int
(** The segment's globally unique id (transport demux registries key
    on it). *)

val engine : net -> Engine.t
(** The event engine driving the segment (for transport timers). *)

val switched : net -> bool

val set_proto_rx : t -> proto:int -> (frame -> unit) -> unit
(** Install the receive upcall for one transport protocol (runs in
    interrupt context; TCP and UDP dispatch through direct slots,
    other protocols through a small assoc list). Frames arriving for a
    protocol with no upcall are dropped and counted. The frame is only
    valid during the upcall: pooled frames recycle when it returns. *)

val send :
  t -> dst:int -> ?proto:int -> port_src:int -> port_dst:int -> bytes -> unit
(** Queue one frame for transmission (default protocol: UDP). The
    frame is unpooled — the payload may be aliased by the receiver
    indefinitely. Raises [Invalid_argument] if the payload exceeds the
    MTU or the destination id is unknown. *)

(** {1 Pooled zero-copy transmission} *)

val alloc_frame : net -> frame
(** Take a frame from the net's slab pool (growing it if empty). The
    caller fills in destination, protocol, ports and payload — either
    writing a transport header into [f_hdr] (32 bytes, set [f_payload]
    to it and [f_len] to the header size), or installing fresh bytes —
    optionally attaches a view with {!frame_set_view}, and hands the
    frame to {!transmit}. *)

val frame_set_view : frame -> Payload.t -> off:int -> len:int -> unit
(** Attach a zero-copy data view ([retain]s the payload; the reference
    drops when the frame is released after delivery or loss). *)

val frame_bytes : frame -> int
(** Total payload bytes on the wire: [f_len + f_pl_len]. *)

val transmit : t -> frame -> unit
(** Queue a prepared frame. Raises like {!send} (releasing the frame
    first). *)

val pool_size : net -> int
(** Pooled frames ever created for this net. *)

val pool_free : net -> int
(** Pooled frames currently on the free list. *)

val set_loss : net -> ?seed:int -> float -> unit
(** Drop each transmitted frame independently with the given probability
    (deterministic splitmix64 stream; [seed] defaults to 1) — for
    exercising retransmission. [0.0] disables loss. *)

val stats : t -> Stats.t
(** [netif.tx], [netif.rx], [netif.dropped_no_rx], [netif.tx_bytes],
    [netif.rx_bytes], [netif.tx_lost]. *)

val queued : t -> int
(** Frames waiting in this interface's transmit queue(s). *)
