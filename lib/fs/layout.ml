type superblock = {
  sb_magic : int;
  sb_block_size : int;
  sb_nblocks : int;
  sb_ninodes : int;
  sb_bitmap_start : int;
  sb_bitmap_blocks : int;
  sb_itable_start : int;
  sb_itable_blocks : int;
  sb_data_start : int;
}

let magic = 0x5350_4C43 (* "SPLC" *)

let inode_size = 128

let ndirect = 12

let dirent_size = 32

let name_max = dirent_size - 4 - 1

let root_ino = 1

let layout ~block_size ~nblocks ~ninodes =
  if block_size < 512 || block_size land (block_size - 1) <> 0 then
    invalid_arg "Layout: block size must be a power of two >= 512";
  if nblocks <= 4 then invalid_arg "Layout: filesystem too small";
  if ninodes < 2 then invalid_arg "Layout: need at least two inodes";
  let bits_per_block = block_size * 8 in
  let bitmap_blocks = (nblocks + bits_per_block - 1) / bits_per_block in
  let inodes_per_block = block_size / inode_size in
  let itable_blocks = (ninodes + inodes_per_block - 1) / inodes_per_block in
  let data_start = 1 + bitmap_blocks + itable_blocks in
  if data_start >= nblocks then invalid_arg "Layout: metadata exceeds device";
  {
    sb_magic = magic;
    sb_block_size = block_size;
    sb_nblocks = nblocks;
    sb_ninodes = ninodes;
    sb_bitmap_start = 1;
    sb_bitmap_blocks = bitmap_blocks;
    sb_itable_start = 1 + bitmap_blocks;
    sb_itable_blocks = itable_blocks;
    sb_data_start = data_start;
  }

let addrs_per_block sb = sb.sb_block_size / 4

let max_file_blocks sb =
  let apb = addrs_per_block sb in
  ndirect + apb + (apb * apb)

let put32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let get32 b off = Int32.to_int (Bytes.get_int32_le b off)

let write_superblock sb b =
  if Bytes.length b < sb.sb_block_size then invalid_arg "write_superblock";
  Bytes.fill b 0 (Bytes.length b) '\000';
  put32 b 0 sb.sb_magic;
  put32 b 4 sb.sb_block_size;
  put32 b 8 sb.sb_nblocks;
  put32 b 12 sb.sb_ninodes;
  put32 b 16 sb.sb_bitmap_start;
  put32 b 20 sb.sb_bitmap_blocks;
  put32 b 24 sb.sb_itable_start;
  put32 b 28 sb.sb_itable_blocks;
  put32 b 32 sb.sb_data_start

let read_superblock ~block_size b =
  let m = get32 b 0 in
  if m <> magic then
    Fs_error.raise_err (Fs_error.Einval "superblock: bad magic");
  let bs = get32 b 4 in
  if bs <> block_size then
    Fs_error.raise_err (Fs_error.Einval "superblock: block size mismatch");
  {
    sb_magic = m;
    sb_block_size = bs;
    sb_nblocks = get32 b 8;
    sb_ninodes = get32 b 12;
    sb_bitmap_start = get32 b 16;
    sb_bitmap_blocks = get32 b 20;
    sb_itable_start = get32 b 24;
    sb_itable_blocks = get32 b 28;
    sb_data_start = get32 b 32;
  }
