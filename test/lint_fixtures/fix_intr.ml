(* Known-bad fixture: an interrupt-context completion handler that
   reaches a blocking primitive through an intermediate call.
   Expected: exactly one [intr-blocks] finding, reporting the chain
   completion_handler -> Cache.biowait -> Process.block. *)

module Process = struct
  let[@kpath.blocks] block (_chan : string) = ()
end

module Cache = struct
  let biowait () = Process.block "biowait"
end

let[@kpath.intr] completion_handler () = Cache.biowait ()
