(* UDP relay: the paper's socket-to-socket splice (§5.1).

   A stub sender streams datagrams to a relay machine, which forwards
   them to a sink. First with a conventional recvfrom/sendto process,
   then with a socket-to-socket splice — compare the relay machine's
   CPU utilisation and loss.

   Run with: dune exec examples/udp_relay.exe *)

open Kpath_sim
open Kpath_net
open Kpath_core
open Kpath_kernel

let datagrams = 1000
let dgram_bytes = 4096
let interval = Time.us 2000 (* 2 MB/s offered load *)

let free_intr ~service:_ fn = fn ()

let run_relay mode =
  let m = Machine.create () in
  let net = Netif.create_net ~bandwidth:2.5e6 (Machine.engine m) in
  let relay_if = Netif.attach net ~name:"relay" ~intr:(Machine.intr m) () in
  let sender_if = Netif.attach net ~name:"sender" ~intr:free_intr () in
  let sink_if = Netif.attach net ~name:"sink" ~intr:free_intr () in
  let sink = Udp.create sink_if ~port:9 () in
  let received = ref 0 in
  Udp.set_upcall sink (Some (fun _ -> incr received));
  let relay_in = Udp.create relay_if ~port:7 () in
  let relay_out = Udp.create relay_if ~port:8 () in
  (match mode with
   | `Splice ->
     ignore
       (Splice.start (Machine.splice_ctx m)
          ~src:(Endpoint.Src_socket relay_in)
          ~dst:(Endpoint.Dst_socket { sock = relay_out; dst = Udp.addr sink })
          ~size:Splice.eof ())
   | `Process ->
     ignore
       (Machine.spawn m ~name:"relayd" (fun () ->
            let env = Syscall.make_env m in
            let fd_in = Syscall.socket_of env relay_in in
            let fd_out = Syscall.socket_of env relay_out in
            let buf = Bytes.create dgram_bytes in
            let rec go n =
              if n < datagrams then begin
                let got, _ = Syscall.recvfrom env fd_in buf ~pos:0 ~len:dgram_bytes in
                Syscall.sendto env fd_out (Udp.addr sink) buf ~pos:0 ~len:got;
                go (n + 1)
              end
            in
            go 0)));
  (* Stub sender. *)
  let sender = Udp.create sender_if ~port:5 () in
  let payload = Bytes.make dgram_bytes 'v' in
  let rec tick n =
    if n < datagrams then
      ignore
        (Engine.schedule_after (Machine.engine m) interval (fun () ->
             Udp.sendto sender ~dst:(Udp.addr relay_in) payload;
             tick (n + 1)))
  in
  tick 0;
  Machine.run ~until:(Time.scale interval (datagrams + 500)) m;
  let now = Machine.now m in
  let cpu = Kpath_proc.Sched.cpu (Machine.sched m) in
  Format.printf "%-8s relay: %4d/%d delivered, %d dropped, CPU %5.1f%%@."
    (match mode with `Splice -> "splice" | `Process -> "process")
    !received datagrams (Udp.drops relay_in)
    (Kpath_proc.Cpu.utilization cpu ~now *. 100.0)

let () =
  Format.printf "relaying %d datagrams of %d bytes at %.1f MB/s:@." datagrams
    dgram_bytes
    (float_of_int dgram_bytes /. Time.to_sec_f interval /. 1e6);
  run_relay `Process;
  run_relay `Splice;
  Format.printf
    "the splice relay forwards datagrams inside the kernel: no copies to \
     user space, no context switches.@."
