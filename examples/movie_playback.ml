(* The paper's §4 example, faithfully: play back a digitized movie.

   The audio track is spliced asynchronously (FASYNC + SPLICE_EOF) from
   its file to the audio DAC, which paces it at the recording rate; the
   video track is delivered one frame per interval-timer tick by
   bounded-size splices — "the calling process retains control of the
   transfer rate by making splice requests at appropriate intervals."

   Run with: dune exec examples/movie_playback.exe *)

open Kpath_sim
open Kpath_dev
open Kpath_kernel

(* A small movie: 5 seconds of 8 kHz mu-law-ish audio plus 15 fps video
   of 16 KB frames (a 1992-sized window). *)
let audio_rate = 8000.0
let seconds = 5
let fps = 15
let frame_bytes = 16 * 1024
let audio_bytes = int_of_float audio_rate * seconds
let video_bytes = fps * seconds * frame_bytes

let () =
  let m = Machine.create () in
  let drive = Machine.make_drive m ~name:"rz58-0" ~kind:`Rz58 () in

  (* Output devices: an audio DAC draining at the recording rate and a
     video DAC "capable of displaying frames at a maximum rate faster
     than the recording rate" (§4). *)
  let audio_dev =
    Chardev.create ~name:"speaker" ~drain_rate:audio_rate
      ~fifo_capacity:(16 * 1024) ~engine:(Machine.engine m)
      ~intr:(Machine.intr m) ()
  in
  let video_dev =
    Chardev.create ~name:"video_dac"
      ~drain_rate:(float_of_int (frame_bytes * fps * 4))
      ~fifo_capacity:(4 * frame_bytes) ~engine:(Machine.engine m)
      ~intr:(Machine.intr m) ()
  in
  Machine.register_chardev m "/dev/speaker" audio_dev;
  Machine.register_chardev m "/dev/video_dac" video_dev;

  let _player =
    Machine.spawn m ~name:"movie-player" (fun () ->
        let fs =
          Kpath_fs.Fs.mkfs ~cache:(Machine.cache m) (Machine.blkdev drive)
            ~ninodes:64
        in
        Machine.mount m "/" fs;
        let env = Syscall.make_env m in

        (* Produce the movie files. *)
        let make path bytes =
          let fd = Syscall.openf env path [ Syscall.O_CREAT; Syscall.O_WRONLY ] in
          let chunk = Bytes.create 65536 in
          let rec go off =
            if off < bytes then begin
              let n = min 65536 (bytes - off) in
              Kpath_workloads.Programs.fill_pattern chunk ~file_off:off;
              ignore (Syscall.write env fd chunk ~pos:0 ~len:n);
              go (off + n)
            end
          in
          go 0;
          Syscall.fsync env fd;
          Syscall.close env fd
        in
        make "/movie.audio" audio_bytes;
        make "/movie.video" video_bytes;

        (* --- the paper's code, transliterated --- *)
        let audiofile = Syscall.openf env "/movie.audio" [ Syscall.O_RDONLY ] in
        let videofile = Syscall.openf env "/movie.video" [ Syscall.O_RDONLY ] in
        let audio_fd = Syscall.openf env "/dev/speaker" [ Syscall.O_WRONLY ] in
        let video_fd = Syscall.openf env "/dev/video_dac" [ Syscall.O_WRONLY ] in

        (* fcntl(audiofile, F_SETFL, FASYNC): async operation. *)
        Syscall.fcntl_setfl env audiofile ~fasync:true;
        let audio_done = ref false in
        Syscall.sigaction env Kpath_proc.Signal.sigio
          (Some (fun () -> audio_done := true));

        (* splice(audiofile, audio_dev, SPLICE_EOF): returns at once. *)
        ignore (Syscall.splice env ~src:audiofile ~dst:audio_fd Syscall.splice_eof);

        (* Deliver one video frame per timer interval. *)
        let inter_frame = Time.of_sec_f (1.0 /. float_of_int fps) in
        Syscall.sigaction env Kpath_proc.Signal.sigalrm (Some (fun () -> ()));
        Syscall.setitimer env (Some inter_frame);
        let frames = ref 0 in
        let start = Machine.now m in
        let rec play () =
          let rval = Syscall.splice env ~src:videofile ~dst:video_fd frame_bytes in
          if rval > 0 then begin
            incr frames;
            Syscall.pause env;
            (* wait for the timer; it reloads automatically *)
            play ()
          end
        in
        play ();
        Syscall.setitimer env None;
        let play_time = Time.diff (Machine.now m) start in

        (* Let the DAC FIFOs drain, then report. *)
        Kpath_proc.Sched.sleep (Machine.sched m) (Time.sec 3);
        Format.printf "video: %d frames in %a (target %d fps, got %.1f fps)@."
          !frames Time.pp play_time fps
          (float_of_int !frames /. Time.to_sec_f play_time);
        Format.printf "audio: %d/%d bytes played, %d underruns%s@."
          (Chardev.consumed audio_dev) audio_bytes
          (Chardev.underruns audio_dev)
          (if !audio_done then ", SIGIO received" else "");
        Format.printf "video dac: %d/%d bytes played@."
          (Chardev.consumed video_dev) video_bytes;
        Syscall.close env audiofile;
        Syscall.close env videofile;
        Syscall.close env audio_fd;
        Syscall.close env video_fd)
  in
  Machine.run m;
  Format.printf "CPU: %a@." Kpath_proc.Cpu.pp
    (Kpath_proc.Sched.cpu (Machine.sched m))
