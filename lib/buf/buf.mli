(** Buffer headers.

    The kernel [struct buf]: identity of a disk block in transit, its
    data area, state flags, and the completion machinery ([B_CALL] /
    [b_iodone]) that splice hangs its read and write handlers on. The two
    fields the paper adds for splice are here too: the owning splice
    descriptor and the logical block number, which let several buffers be
    in flight simultaneously without being kept in order (§5.4). *)

open Kpath_dev

(** {1 Flags} *)

val b_busy : int
(** The buffer is owned (I/O in progress or held by a caller). *)

val b_done : int
(** The data area holds valid contents. *)

val b_delwri : int
(** Delayed write: dirty, to be written before reuse. *)

val b_async : int
(** Release automatically when I/O completes. *)

val b_call : int
(** Call [b_iodone] at completion instead of waking sleepers. *)

val b_read : int
(** Current operation is a read. *)

val b_error_flag : int
(** The last operation failed; see [b_error]. *)

val b_inval : int
(** Contents are not to be cached on release. *)

type t = {
  b_id : int;  (** header identity (diagnostics) *)
  mutable b_dev : Blkdev.t option;  (** device of the current identity *)
  mutable b_blkno : int;  (** physical (device) block number *)
  mutable b_lblkno : int;  (** splice: logical block within the transfer *)
  mutable b_splice : int;  (** splice: owning descriptor id, [-1] if none *)
  mutable b_refs : int;
      (** alias reference count ({!Cache.pin}/{!Cache.unpin}): downstream
          writers sharing [b_data]; the buffer is released when it drains *)
  mutable b_data : bytes;  (** data area — may alias another buffer's *)
  mutable b_bcount : int;  (** transfer size in bytes *)
  mutable b_flags : int;  (** flag bitmask *)
  mutable b_error : Blkdev.error option;  (** failure detail *)
  mutable b_iodone : (t -> unit) option;  (** [B_CALL] completion handler *)
  mutable b_waiters : (unit -> unit) list;  (** [biowait] sleepers *)
  mutable b_stamp : int;  (** LRU recency *)
  mutable b_in_hash : bool;  (** currently indexed by the cache *)
}

val make : id:int -> data_size:int -> t
(** A fresh header owning a zeroed data area of [data_size] bytes. *)

val has : t -> int -> bool
(** [has b f] tests flag [f]. *)

val set : t -> int -> unit
(** Set flag(s) [f]. *)

val clear : t -> int -> unit
(** Clear flag(s) [f]. *)

val valid : t -> bool
(** [valid b] is [has b b_done && not (has b b_error_flag)]. *)

val key : t -> int * int
(** [(device id, blkno)] of the current identity. Raises
    [Invalid_argument] when the buffer has no device. *)

val pp : Format.formatter -> t -> unit
(** One-line diagnostic rendering. *)
