(* kpath-verify: a BPF-verifier-style static analysis pass over the
   .cmt typedtrees dune produces for every module under lib/.

   The paper's contribution lives in kernel context: splice runs as
   B_CALL/b_iodone completion handlers chained off interrupts, where
   sleeping is forbidden and every buffer header acquired from the
   cache must be released exactly once. This checker proves those
   disciplines statically, the way the BPF verifier proves in-kernel
   handlers safe before they are allowed to run:

   - {b interrupt-context blocking} (rule [intr-blocks]): an
     inter-module call graph is built from every value binding; a
     function annotated [[@kpath.intr]] (a completion handler) must not
     reach a function annotated [[@kpath.blocks]] (biowait, process
     sleep) on any path. The offending call chain is reported.

   - {b buffer lifecycle} (rules [buf-leak], [buf-double-release]): an
     intra-procedural abstract interpretation checks that a buffer
     acquired via [bread]/[breadn]/[getblk] flows to exactly one of
     [brelse]/[bawrite]/[bdwrite]/[bwrite]/[release_hdr] on every path.
     Ownership handed elsewhere (stored, passed on, returned) leaves
     the checkable region and is accepted; [[@kpath.transfers]] makes
     the hand-off explicit, and on a function definition marks it as an
     acquire wrapper whose callers are tracked in turn.

   - {b determinism} (rules [rng], [wallclock], [poly-compare],
     [hashtbl-order]): [Random.*] is forbidden outside [lib/sim/rng],
     wall-clock primitives are forbidden everywhere, polymorphic
     [compare]/[Hashtbl.hash] must be instantiated at immutable base
     types, structural [=]/[<>]/[List.mem] must not be instantiated at
     a closure-carrying variant (comparing a functional constructor
     raises at run time), and every [Hashtbl.iter]/[Hashtbl.fold] must
     either feed directly into a [List.sort] (the sorted-fold idiom) or
     carry a justified [[@kpath.nolint "hashtbl-order: ..."]] escape.

   - {b domain sharing} (rule [domain-global-mutable]): a top-level
     value whose type is mutable — [ref], [Hashtbl.t], [Queue.t],
     [Stack.t], [Buffer.t], [bytes], [array], or a locally-declared
     record with a mutable field (closed as a fixpoint, so a record
     {i containing} a mutable record is mutable too) — is shared by
     every OCaml domain the sharded simulation spawns, and unsynchronized
     access is a data race. Such a binding must be [Atomic.t],
     [Domain.DLS.key] (per-domain state), or carry
     [[@kpath.domainsafe "<why>"]] stating why unsynchronized sharing
     is sound (e.g. a sentinel compared only by identity). An empty
     justification is a [bad-annotation] finding and does not suppress.

   Escapes: [[@kpath.nolint "<rule>: <justification>"]] on a binding or
   a parenthesized expression suppresses the named rule underneath it;
   a missing or malformed justification is itself a finding
   ([bad-annotation]). *)

(* {1 Findings} *)

type finding = {
  rule : string;
  file : string;
  line : int;
  msg : string;
}

let finding ~rule ~loc msg =
  let pos = loc.Location.loc_start in
  { rule; file = pos.Lexing.pos_fname; line = pos.Lexing.pos_lnum; msg }

let compare_findings a b =
  compare (a.file, a.line, a.rule, a.msg) (b.file, b.line, b.rule, b.msg)

let rules =
  [
    "intr-blocks";
    "buf-leak";
    "buf-double-release";
    "rng";
    "wallclock";
    "poly-compare";
    "hashtbl-order";
    "domain-global-mutable";
  ]

(* Rule families accepted by [@kpath.nolint] as shorthands. *)
let family = function
  | "lifecycle" -> [ "buf-leak"; "buf-double-release" ]
  | "determinism" -> [ "rng"; "wallclock"; "poly-compare"; "hashtbl-order" ]
  | "intr" -> [ "intr-blocks" ]
  | "domain-shared" -> [ "domain-global-mutable" ]
  | r -> [ r ]

(* {1 Annotation vocabulary} *)

type annots = {
  a_intr : bool;
  a_blocks : bool;
  a_transfers : bool;
  a_domainsafe : bool;  (* justified unsynchronized cross-domain sharing *)
  a_nolint : string list;  (* suppressed rule names, families expanded *)
}

let no_annots =
  {
    a_intr = false;
    a_blocks = false;
    a_transfers = false;
    a_domainsafe = false;
    a_nolint = [];
  }

let payload_string (p : Parsetree.payload) =
  match p with
  | Parsetree.PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    Some s
  | _ -> None

(* Parse the kpath.* attributes on [attrs]; malformed ones are reported
   through [bad]. *)
let parse_annots ~bad (attrs : Parsetree.attributes) =
  List.fold_left
    (fun acc (a : Parsetree.attribute) ->
      let name = a.attr_name.txt in
      if String.length name <= 6 || String.sub name 0 6 <> "kpath." then acc
      else
        match String.sub name 6 (String.length name - 6) with
        | "intr" -> { acc with a_intr = true }
        | "blocks" -> { acc with a_blocks = true }
        | "transfers" -> { acc with a_transfers = true }
        | "domainsafe" -> (
          match payload_string a.attr_payload with
          | None ->
            bad a.attr_loc
              "[@kpath.domainsafe] requires a justification string";
            acc
          | Some s when String.trim s = "" ->
            bad a.attr_loc "[@kpath.domainsafe \"\"]: empty justification";
            acc
          | Some _ -> { acc with a_domainsafe = true })
        | "nolint" -> (
          match payload_string a.attr_payload with
          | None ->
            bad a.attr_loc "[@kpath.nolint] requires a payload string";
            acc
          | Some s -> (
            match String.index_opt s ':' with
            | None ->
              bad a.attr_loc
                (Printf.sprintf
                   "[@kpath.nolint %S] must be \"<rule>: <justification>\"" s)
            ;
              acc
            | Some i ->
              let r = String.trim (String.sub s 0 i) in
              let just =
                String.trim (String.sub s (i + 1) (String.length s - i - 1))
              in
              if
                not
                  (List.mem r rules
                  || List.mem r
                       [ "lifecycle"; "determinism"; "intr"; "domain-shared" ])
              then begin
                bad a.attr_loc
                  (Printf.sprintf "[@kpath.nolint]: unknown rule %S" r);
                acc
              end
              else if just = "" then begin
                bad a.attr_loc
                  (Printf.sprintf
                     "[@kpath.nolint %S]: empty justification" s);
                acc
              end
              else { acc with a_nolint = family r @ acc.a_nolint }))
        | other ->
          bad a.attr_loc
            (Printf.sprintf "unknown annotation [@kpath.%s]" other);
          acc)
    no_annots attrs

let suppresses annots rule = List.mem rule annots.a_nolint

(* {1 Name normalization}

   Paths in the typedtree reflect how the source spelled an access
   ([Cache.biowait], [Kpath_buf__Cache.biowait], [Stdlib.Random.int]
   ...). Normalize to the last two components with dune's [lib__Module]
   mangling stripped, so every spelling of a function agrees on one
   key: ["Cache.biowait"], ["Random.int"], ["compare"]. *)

let strip_mangle s =
  match String.rindex_opt s '_' with
  | Some i when i > 0 && s.[i - 1] = '_' ->
    let tail = String.sub s (i + 1) (String.length s - i - 1) in
    if tail = "" then s else String.capitalize_ascii tail
  | _ -> s

let rec path_components (p : Path.t) =
  match p with
  | Path.Pident id -> [ strip_mangle (Ident.name id) ]
  | Path.Pdot (p, s) -> path_components p @ [ strip_mangle s ]
  | Path.Papply (p, _) -> path_components p
  | Path.Pextra_ty (p, _) -> path_components p

let normalize_components comps =
  match comps with
  | "Stdlib" :: (_ :: _ as rest) -> rest
  | comps -> comps

let key_of_components comps =
  match List.rev comps with
  | [] -> ""
  | [ x ] -> x
  | v :: m :: _ -> m ^ "." ^ v

let key_of_path p = key_of_components (normalize_components (path_components p))

let head_component p =
  match normalize_components (path_components p) with [] -> "" | h :: _ -> h

(* {1 The program model}

   One node per value binding (top-level, or nested when annotated),
   with its annotations and the set of global references in its body. *)

type node = {
  n_key : string;  (* "Cache.biowait" *)
  n_loc : Location.t;
  n_annots : annots;
  mutable n_refs : (string * Location.t) list;  (* callee key, site *)
}

type modl = {
  m_name : string;  (* "Cache" *)
  m_file : string;  (* "lib/buf/cache.ml" *)
  m_str : Typedtree.structure;
  (* Ident unique_name -> node key, for resolving same-module [Pident] refs. *)
  m_stamps : (string, string) Hashtbl.t;
}

type program = {
  nodes : (string, node) Hashtbl.t;
  mutable modls : modl list;
  mutable findings : finding list;
}

let add_finding prog f = prog.findings <- f :: prog.findings

let bad_annot prog loc msg =
  add_finding prog (finding ~rule:"bad-annotation" ~loc msg)

(* {2 Collection} *)

let binding_name (vb : Typedtree.value_binding) =
  match vb.vb_pat.pat_desc with
  | Typedtree.Tpat_var (id, { txt; _ }) -> Some (id, txt)
  | _ -> None

(* Walk one module: create nodes for top-level bindings (and nested
   annotated ones), recording every value reference under each node the
   source position sits in. *)
let collect_module prog (m : modl) =
  let bad loc msg = bad_annot prog loc msg in
  let stack : node list ref = ref [] in
  let add_node key loc annots =
    let n = { n_key = key; n_loc = loc; n_annots = annots; n_refs = [] } in
    Hashtbl.replace prog.nodes key n;
    n
  in
  let record_ref p loc =
    let target =
      match p with
      | Path.Pident id -> (
        match Hashtbl.find_opt m.m_stamps (Ident.unique_name id) with
        | Some key -> Some (key, true)
        | None -> None)
      | _ -> Some (key_of_path p, false)
    in
    match target with
    | Some (key, _) ->
      List.iter (fun n -> n.n_refs <- (key, loc) :: n.n_refs) !stack
    | None -> ()
  in
  let super = Tast_iterator.default_iterator in
  let rec expr_iter sub (e : Typedtree.expression) =
    (* Validate any kpath.* attributes that appear on expressions. *)
    let annots = parse_annots ~bad e.exp_attributes in
    (match e.exp_desc with
     | Typedtree.Texp_ident (p, _, _) -> record_ref p e.exp_loc
     | _ -> ());
    if annots.a_intr then begin
      (* An annotated anonymous handler: its body is a node of its own
         (and still contributes to the enclosing nodes). *)
      let parent = match !stack with [] -> m.m_name | n :: _ -> n.n_key in
      let key =
        Printf.sprintf "%s.<fun:%d>" parent
          e.exp_loc.Location.loc_start.Lexing.pos_lnum
      in
      let n = add_node key e.exp_loc annots in
      stack := n :: !stack;
      super.expr { sub with expr = expr_iter } e;
      stack := List.tl !stack
    end
    else super.expr { sub with expr = expr_iter } e
  and vb_iter sub (vb : Typedtree.value_binding) =
    (* Nested bindings: only annotated ones become nodes. *)
    let annots = parse_annots ~bad vb.vb_attributes in
    if annots.a_intr || annots.a_blocks || annots.a_transfers then
      match binding_name vb with
      | Some (id, name) ->
        let parent = match !stack with [] -> m.m_name | n :: _ -> n.n_key in
        let key = parent ^ "." ^ name in
        let n = add_node key vb.vb_loc annots in
        Hashtbl.replace m.m_stamps (Ident.unique_name id) key;
        stack := n :: !stack;
        super.value_binding { sub with expr = expr_iter; value_binding = vb_iter } vb;
        stack := List.tl !stack
      | None ->
        super.value_binding { sub with expr = expr_iter; value_binding = vb_iter } vb
    else
      super.value_binding { sub with expr = expr_iter; value_binding = vb_iter } vb
  in
  let iter = { super with expr = expr_iter; value_binding = vb_iter } in
  (* Top level: every binding is a node; nested modules contribute nodes
     under their own (innermost) module name. *)
  let rec do_structure mod_name (str : Typedtree.structure) =
    (* First pass: register stamps so forward refs inside [let rec]
       groups and across items resolve. *)
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Typedtree.Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match binding_name vb with
              | Some (id, name) ->
                Hashtbl.replace m.m_stamps (Ident.unique_name id)
                  (mod_name ^ "." ^ name)
              | None -> ())
            vbs
        | _ -> ())
      str.str_items;
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Typedtree.Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : Typedtree.value_binding) ->
              match binding_name vb with
              | Some (_, name) ->
                let annots = parse_annots ~bad vb.vb_attributes in
                let n = add_node (mod_name ^ "." ^ name) vb.vb_loc annots in
                stack := [ n ];
                iter.expr iter vb.vb_expr;
                stack := []
              | None ->
                stack := [];
                iter.value_binding iter vb)
            vbs
        | Typedtree.Tstr_module mb -> (
          let sub_name =
            match mb.mb_id with Some id -> Ident.name id | None -> mod_name
          in
          match mb.mb_expr.mod_desc with
          | Typedtree.Tmod_structure str -> do_structure sub_name str
          | _ -> ())
        | _ -> ())
      str.str_items
  in
  do_structure m.m_name m.m_str

(* {2 Divergence: functions that always raise}

   Needed so a [brelse b; err ...] branch does not look like it falls
   through to a later release. Computed as a fixpoint across modules so
   local wrappers ([Fs.err] -> [Fs_error.raise_err] -> [raise]) are
   recognized. *)

let raise_builtins =
  [ "raise"; "raise_notrace"; "failwith"; "invalid_arg"; "exit" ]

let apply_head (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
    Some (p, args)
  | _ -> None

let compute_raisers prog =
  let raisers : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  List.iter (fun k -> Hashtbl.replace raisers k ()) raise_builtins;
  let resolve m p =
    match p with
    | Path.Pident id -> Hashtbl.find_opt m.m_stamps (Ident.unique_name id)
    | _ -> Some (key_of_path p)
  in
  let rec always_raises m (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> (
      match resolve m p with
      | Some k -> Hashtbl.mem raisers k
      | None -> false)
    | Texp_match (_, cases, _) ->
      cases <> []
      && List.for_all (fun (c : _ Typedtree.case) -> always_raises m c.c_rhs) cases
    | Texp_ifthenelse (_, a, Some b) -> always_raises m a && always_raises m b
    | Texp_let (_, _, cont) | Texp_sequence (_, cont) -> always_raises m cont
    | Texp_assert
        ({ exp_desc = Texp_construct (_, { cstr_name = "false"; _ }, _); _ }, _)
      ->
      true
    | _ -> false
  in
  let body_of (e : Typedtree.expression) =
    (* Peel the function parameters off a definition. *)
    let rec peel (e : Typedtree.expression) =
      match e.exp_desc with
      | Typedtree.Texp_function { cases = [ c ]; _ } -> peel c.c_rhs
      | _ -> e
    in
    peel e
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun m ->
        let rec do_structure (str : Typedtree.structure) =
          List.iter
            (fun (item : Typedtree.structure_item) ->
              match item.str_desc with
              | Typedtree.Tstr_value (_, vbs) ->
                List.iter
                  (fun (vb : Typedtree.value_binding) ->
                    match binding_name vb with
                    | Some (id, _) -> (
                      match Hashtbl.find_opt m.m_stamps (Ident.unique_name id) with
                      | Some key when not (Hashtbl.mem raisers key) ->
                        if always_raises m (body_of vb.vb_expr) then begin
                          Hashtbl.replace raisers key ();
                          changed := true
                        end
                      | _ -> ())
                    | None -> ())
                  vbs
              | Typedtree.Tstr_module
                  { mb_expr = { mod_desc = Tmod_structure s; _ }; _ } ->
                do_structure s
              | _ -> ())
            str.str_items
        in
        do_structure m.m_str)
      prog.modls
  done;
  raisers

(* {1 Rule family 1: interrupt-context blocking} *)

(* Blocking leaves the checker knows about even without annotations. *)
let blocking_builtins = [ "Unix.sleep"; "Unix.sleepf"; "Thread.delay" ]

let check_intr prog =
  let node k = Hashtbl.find_opt prog.nodes k in
  let is_blocking k =
    List.mem k blocking_builtins
    || match node k with Some n -> n.n_annots.a_blocks | None -> false
  in
  let roots =
    Hashtbl.fold
      (fun _ n acc -> if n.n_annots.a_intr then n :: acc else acc)
      prog.nodes []
    |> List.sort (fun a b -> compare a.n_key b.n_key)
  in
  List.iter
    (fun root ->
      if root.n_annots.a_blocks then
        add_finding prog
          (finding ~rule:"bad-annotation" ~loc:root.n_loc
             (Printf.sprintf
                "%s is annotated both [@kpath.intr] and [@kpath.blocks]"
                root.n_key));
      if not (suppresses root.n_annots "intr-blocks") then begin
        (* BFS from the handler; the parent chain reconstructs the
           offending call path for the report. *)
        let visited : (string, unit) Hashtbl.t = Hashtbl.create 64 in
        let parent : (string, string) Hashtbl.t = Hashtbl.create 64 in
        let queue = Queue.create () in
        let hit = ref None in
        Queue.add root.n_key queue;
        Hashtbl.replace visited root.n_key ();
        while !hit = None && not (Queue.is_empty queue) do
          let k = Queue.take queue in
          match node k with
          | None -> ()
          | Some n ->
            List.iter
              (fun (callee, _loc) ->
                if !hit = None && not (Hashtbl.mem visited callee) then begin
                  Hashtbl.replace visited callee ();
                  Hashtbl.replace parent callee k;
                  if is_blocking callee then hit := Some callee
                  else
                    match node callee with
                    | Some cn
                      when (not cn.n_annots.a_intr)
                           && not (suppresses cn.n_annots "intr-blocks") ->
                      Queue.add callee queue
                    | _ -> ()
                end)
              (List.rev n.n_refs)
        done;
        match !hit with
        | None -> ()
        | Some blocker ->
          let rec chain k acc =
            match Hashtbl.find_opt parent k with
            | Some p -> chain p (k :: acc)
            | None -> k :: acc
          in
          add_finding prog
            (finding ~rule:"intr-blocks" ~loc:root.n_loc
               (Printf.sprintf
                  "interrupt-context %s can reach blocking %s: %s" root.n_key
                  blocker
                  (String.concat " -> " (chain blocker []))))
      end)
    roots

(* {1 Rule family 2: buffer lifecycle} *)

let acquire_keys =
  [
    "Cache.bread";
    "Cache.breada";
    "Cache.getblk";
    "Cache.getblk_hdr";
    "Cache.getblk_nb";
    "Cache.bread_nb";
    "Cache.breadn";
  ]

let release_keys =
  [ "Cache.brelse"; "Cache.bwrite"; "Cache.bawrite"; "Cache.bdwrite"; "Cache.release_hdr" ]

module IS = Set.Make (Int)

(* Is [ty] an immutable base shape (the whitelist for poly-compare,
   also used nowhere else)? *)
let rec immutable_base (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) -> (
    match Path.last p with
    | "int" | "char" | "bool" | "string" | "float" | "unit" | "int32"
    | "int64" | "nativeint" ->
      args = []
    | "list" | "option" | "array" -> List.for_all immutable_base args
    | _ -> false)
  | Ttuple ts -> List.for_all immutable_base ts
  | _ -> false

(* Does the type look like a buffer ([Buf.t])? *)
let is_buf_type (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> key_of_path p = "Buf.t"
  | _ -> false

let check_lifecycle prog raisers =
  List.iter
    (fun m ->
      let resolve p =
        match p with
        | Path.Pident id -> Hashtbl.find_opt m.m_stamps (Ident.unique_name id)
        | _ -> Some (key_of_path p)
      in
      let node_has_attr key pred =
        match Hashtbl.find_opt prog.nodes key with
        | Some n -> pred n.n_annots
        | None -> false
      in
      let is_acquire k =
        List.mem k acquire_keys || node_has_attr k (fun a -> a.a_transfers)
      in
      let is_release k = List.mem k release_keys in
      let is_raiser k = Hashtbl.mem raisers k in
      (* Occurrence scan: does [v] appear anywhere inside [e]? *)
      let free_in v (e : Typedtree.expression) =
        let found = ref false in
        let super = Tast_iterator.default_iterator in
        let expr sub (e : Typedtree.expression) =
          (match e.exp_desc with
           | Typedtree.Texp_ident (Path.Pident id, _, _) when Ident.same id v ->
             found := true
           | _ -> ());
          if not !found then super.expr sub e
        in
        let it = { super with expr } in
        it.expr it e;
        !found
      in
      let bare v (e : Typedtree.expression) =
        match e.exp_desc with
        | Typedtree.Texp_ident (Path.Pident id, _, _) -> Ident.same id v
        | _ -> false
      in
      (* Abstract interpretation of [e] w.r.t. tracked buffer [v]:
         returns the set of possible release counts (capped at 2) over
         the normal-exit paths; the empty set means every path raises.
         [escaped] latches when ownership leaves this function. *)
      let check_scope ~nolint v vloc (scope : Typedtree.expression) =
        let escaped = ref false in
        let seq a b =
          if IS.is_empty a then a
          else if IS.is_empty b then b
          else
            IS.fold
              (fun x acc -> IS.fold (fun y acc -> IS.add (min 2 (x + y)) acc) b acc)
              a IS.empty
        in
        let zero = IS.singleton 0 in
        let rec ev (e : Typedtree.expression) : IS.t =
          if !escaped then zero
          else
            match e.exp_desc with
            | Typedtree.Texp_ident (Path.Pident id, _, _) when Ident.same id v ->
              (* Bare occurrence outside a recognized context: the value
                 escapes (returned, aliased...). *)
              escaped := true;
              zero
            | Texp_ident _ | Texp_constant _ | Texp_instvar _ | Texp_unreachable
              ->
              zero
            | Texp_function _ ->
              (* The closure may run later, in another context. *)
              if free_in v e then escaped := true;
              zero
            | Texp_apply (head, args) -> (
              let head_key =
                match head.exp_desc with
                | Texp_ident (p, _, _) -> resolve p
                | _ -> None
              in
              let arg_exprs =
                List.filter_map (fun (_, a) -> a) args
              in
              let releases_v =
                match head_key with
                | Some k -> is_release k && List.exists (bare v) arg_exprs
                | None -> false
              in
              let s =
                List.fold_left
                  (fun acc a ->
                    if bare v a then
                      if releases_v then acc (* counted below *)
                      else begin
                        (* Passed whole to another function (pin, a
                           queue insert, a completion chain): ownership
                           leaves this scope. *)
                        escaped := true;
                        acc
                      end
                    else seq acc (ev a))
                  (ev head) arg_exprs
              in
              let s = if releases_v then seq s (IS.singleton 1) else s in
              match head_key with
              | Some k when is_raiser k -> IS.empty
              | _ -> s)
            | Texp_sequence (a, b) -> seq (ev a) (ev b)
            | Texp_let (_, vbs, cont) ->
              let s =
                List.fold_left
                  (fun acc (vb : Typedtree.value_binding) ->
                    if bare v vb.vb_expr then begin
                      escaped := true;  (* aliased under a new name *)
                      acc
                    end
                    else seq acc (ev vb.vb_expr))
                  zero vbs
              in
              seq s (ev cont)
            | Texp_ifthenelse (c, a, b) ->
              let sb = match b with Some b -> ev b | None -> zero in
              seq (ev c) (IS.union (ev a) sb)
            | Texp_match (scrut, cases, _) ->
              let s = ev scrut in
              let joined =
                List.fold_left
                  (fun acc (c : _ Typedtree.case) ->
                    let g = match c.c_guard with Some g -> ev g | None -> zero in
                    IS.union acc (seq g (ev c.c_rhs)))
                  IS.empty cases
              in
              seq s joined
            | Texp_field ({ exp_desc = Texp_ident _; _ }, _, _) -> zero
            | Texp_field (e, _, _) -> ev e
            | Texp_setfield (r, _, _, x) ->
              (* [v.f <- e] is fine; [r.f <- v] stores the buffer. *)
              let s = if bare v r then zero else ev r in
              if bare v x then begin
                escaped := true;
                s
              end
              else seq s (ev x)
            | Texp_assert
                ( { exp_desc = Texp_construct (_, { cstr_name = "false"; _ }, _);
                    _ },
                  _ ) ->
              IS.empty
            | Texp_assert (e, _) -> ev e
            | Texp_while (c, body) ->
              (* A release inside a loop body cannot be counted. *)
              let sb = ev body in
              if not (IS.equal sb zero) then escaped := true;
              ev c
            | Texp_for (_, _, lo, hi, _, body) ->
              let sb = ev body in
              if not (IS.equal sb zero) then escaped := true;
              seq (ev lo) (ev hi)
            | Texp_try (body, handlers) ->
              (* An exception can fire mid-body; give up unless nothing
                 in the region touches the buffer. *)
              let sb = ev body in
              let sh =
                List.fold_left
                  (fun acc (c : _ Typedtree.case) -> IS.union acc (ev c.c_rhs))
                  IS.empty handlers
              in
              if not (IS.equal sb zero && IS.subset sh zero) then escaped := true;
              zero
            | Texp_construct (_, _, es) | Texp_tuple es | Texp_array es ->
              List.fold_left
                (fun acc e ->
                  if bare v e then begin
                    escaped := true;
                    acc
                  end
                  else seq acc (ev e))
                zero es
            | Texp_variant (_, Some e) | Texp_lazy e ->
              if bare v e || free_in v e then begin
                escaped := true;
                zero
              end
              else ev e
            | Texp_variant (_, None) -> zero
            | Texp_record { fields; extended_expression; _ } ->
              let s =
                match extended_expression with
                | Some e when bare v e ->
                  escaped := true;
                  zero
                | Some e -> ev e
                | None -> zero
              in
              Array.fold_left
                (fun acc (_, def) ->
                  match def with
                  | Typedtree.Overridden (_, e) ->
                    if bare v e then begin
                      escaped := true;
                      acc
                    end
                    else seq acc (ev e)
                  | Typedtree.Kept _ -> acc)
                s fields
            | _ ->
              (* Anything unmodelled: safe only if the buffer is not
                 mentioned inside. *)
              if free_in v e then escaped := true;
              zero
        in
        let s = ev scope in
        if not !escaped then begin
          let leak_ok = List.mem "buf-leak" nolint in
          let dbl_ok = List.mem "buf-double-release" nolint in
          if IS.mem 2 s && not dbl_ok then
            add_finding prog
              (finding ~rule:"buf-double-release" ~loc:vloc
                 (Printf.sprintf
                    "buffer %s may be released more than once on some path"
                    (Ident.name v)));
          if IS.mem 0 s && not leak_ok then
            add_finding prog
              (finding ~rule:"buf-leak" ~loc:vloc
                 (if IS.cardinal s = 1 then
                    Printf.sprintf
                      "buffer %s acquired here is never released (brelse/bawrite/bdwrite)"
                      (Ident.name v)
                  else
                    Printf.sprintf
                      "buffer %s is released on some paths but leaks on others"
                      (Ident.name v)))
        end
      in
      (* Find the acquire points. Two shapes are tracked:
         [let b = Cache.bread ... in scope], and
         [match Cache.bread_nb ... with `Hit b -> scope | ...]. *)
      let nolint_stack = ref [] in
      let active_nolint () = List.concat !nolint_stack in
      let super = Tast_iterator.default_iterator in
      let rec expr_iter sub (e : Typedtree.expression) =
        let pushed =
          (parse_annots ~bad:(fun _ _ -> ()) e.exp_attributes).a_nolint
        in
        nolint_stack := pushed :: !nolint_stack;
        (match e.exp_desc with
         | Typedtree.Texp_let (_, vbs, cont) ->
           List.iter
             (fun (vb : Typedtree.value_binding) ->
               match (binding_name vb, apply_head vb.vb_expr) with
               | Some (id, _), Some (p, _) -> (
                 match resolve p with
                 | Some k
                   when is_acquire k && is_buf_type vb.vb_pat.pat_type ->
                   let annots =
                     parse_annots ~bad:(fun _ _ -> ()) vb.vb_attributes
                   in
                   if not annots.a_transfers then
                     check_scope
                       ~nolint:(annots.a_nolint @ active_nolint ())
                       id vb.vb_loc cont
                 | _ -> ())
               | _ -> ())
             vbs
         | Texp_match (scrut, cases, _) -> (
           match apply_head scrut with
           | Some (p, _) -> (
             match resolve p with
             | Some k when is_acquire k ->
               List.iter
                 (fun (c : _ Typedtree.case) ->
                   (* Track a single Buf.t-typed variable bound by the
                      case pattern ([Some b], [`Hit b]...). *)
                   let vars = ref [] in
                   let rec walk (p : Typedtree.pattern) =
                     match p.pat_desc with
                     | Typedtree.Tpat_var (id, _) ->
                       vars := (id, p.pat_type, p.pat_loc) :: !vars
                     | Tpat_alias (q, id, _) ->
                       vars := (id, p.pat_type, p.pat_loc) :: !vars;
                       walk q
                     | Tpat_construct (_, _, ps, _) -> List.iter walk ps
                     | Tpat_variant (_, Some q, _) -> walk q
                     | Tpat_tuple ps -> List.iter walk ps
                     | Tpat_or (a, b, _) ->
                       walk a;
                       walk b
                     | _ -> ()
                   in
                   (match Typedtree.split_pattern c.c_lhs with
                    | Some vp, _ -> walk vp
                    | None, _ -> ());
                   match
                     List.filter (fun (_, ty, _) -> is_buf_type ty) !vars
                   with
                   | [ (id, _, loc) ] ->
                     check_scope ~nolint:(active_nolint ()) id loc c.c_rhs
                   | _ -> ())
                 cases
             | _ -> ())
           | None -> ())
         | _ -> ());
        super.expr { sub with expr = expr_iter } e;
        nolint_stack := List.tl !nolint_stack
      in
      let vb_top (vb : Typedtree.value_binding) =
        let annots = parse_annots ~bad:(fun _ _ -> ()) vb.vb_attributes in
        nolint_stack := [ annots.a_nolint ];
        let it = { super with expr = expr_iter } in
        it.expr it vb.vb_expr;
        nolint_stack := []
      in
      let rec do_structure (str : Typedtree.structure) =
        List.iter
          (fun (item : Typedtree.structure_item) ->
            match item.str_desc with
            | Typedtree.Tstr_value (_, vbs) -> List.iter vb_top vbs
            | Typedtree.Tstr_module
                { mb_expr = { mod_desc = Tmod_structure s; _ }; _ } ->
              do_structure s
            | _ -> ())
          str.str_items
      in
      do_structure m.m_str)
    prog.modls

(* {1 Rule family 3: domain sharing}

   Sharded sweeps run one sub-simulation per OCaml domain
   (Kpath_sim.Shard); any top-level mutable value is then shared
   mutable state with no synchronization — a data race the memory model
   does not forgive. Flag every top-level binding whose type head is
   mutable unless it is [Atomic.t], per-domain [Domain.DLS.key] state,
   or carries a justified [[@kpath.domainsafe]].

   Mutability of locally-declared records is computed as a fixpoint
   over every module's type declarations: a record with a [mutable]
   field is mutable, and so is a record with a field of an
   already-mutable type (a pool holding frames). Marked types are keyed
   by [(module, name)] — references from outside spell the module in
   the path, references from inside resolve against the enclosing
   module's name — so an immutable [M.t] is never condemned by an
   unrelated mutable [N.t]. *)

let builtin_mutable_heads =
  [ "ref"; "Hashtbl.t"; "Queue.t"; "Stack.t"; "Buffer.t"; "bytes"; "Bytes.t";
    "array"; "floatarray" ]

let builtin_safe_heads = [ "Atomic.t"; "DLS.key"; "Mutex.t"; "Semaphore.t" ]

let rec type_mutable ~marked ~mod_name (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) -> (
    let key = key_of_path p in
    if List.mem key builtin_safe_heads then false
    else if List.mem key builtin_mutable_heads then true
    else
      let resolved =
        match normalize_components (path_components p) with
        | [ name ] -> (mod_name, name)
        | comps -> (
          match List.rev comps with
          | name :: m :: _ -> (m, name)
          | _ -> (mod_name, key))
      in
      Hashtbl.mem marked resolved
      ||
      match Path.last p with
      | "option" | "list" ->
        List.exists (type_mutable ~marked ~mod_name) args
      | _ -> false)
  | Ttuple ts -> List.exists (type_mutable ~marked ~mod_name) ts
  (* Record fields are stored [Tpoly]-wrapped in declarations. *)
  | Tpoly (ty, _) -> type_mutable ~marked ~mod_name ty
  | _ -> false

let compute_mutable_records prog =
  let marked : (string * string, unit) Hashtbl.t = Hashtbl.create 32 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun m ->
        let rec do_structure mod_name (str : Typedtree.structure) =
          List.iter
            (fun (item : Typedtree.structure_item) ->
              match item.str_desc with
              | Typedtree.Tstr_type (_, decls) ->
                List.iter
                  (fun (d : Typedtree.type_declaration) ->
                    match d.typ_kind with
                    | Typedtree.Ttype_record lds ->
                      let name = d.typ_name.txt in
                      if
                        (not (Hashtbl.mem marked (mod_name, name)))
                        && List.exists
                             (fun (ld : Typedtree.label_declaration) ->
                               ld.ld_mutable = Asttypes.Mutable
                               || type_mutable ~marked ~mod_name
                                    ld.ld_type.ctyp_type)
                             lds
                      then begin
                        Hashtbl.replace marked (mod_name, name) ();
                        changed := true
                      end
                    | _ -> ())
                  decls
              | Typedtree.Tstr_module mb -> (
                let sub_name =
                  match mb.mb_id with
                  | Some id -> Ident.name id
                  | None -> mod_name
                in
                match mb.mb_expr.mod_desc with
                | Typedtree.Tmod_structure s -> do_structure sub_name s
                | _ -> ())
              | _ -> ())
            str.str_items
        in
        do_structure m.m_name m.m_str)
      prog.modls
  done;
  marked

let check_domain_shared prog =
  let marked = compute_mutable_records prog in
  List.iter
    (fun m ->
      let rec do_structure mod_name (str : Typedtree.structure) =
        List.iter
          (fun (item : Typedtree.structure_item) ->
            match item.str_desc with
            | Typedtree.Tstr_value (_, vbs) ->
              List.iter
                (fun (vb : Typedtree.value_binding) ->
                  match binding_name vb with
                  | None -> ()
                  | Some (_, name) ->
                    let annots =
                      parse_annots ~bad:(fun _ _ -> ()) vb.vb_attributes
                    in
                    let ty = vb.vb_pat.pat_type in
                    let is_function =
                      match Types.get_desc ty with
                      | Types.Tarrow _ -> true
                      | _ -> false
                    in
                    if
                      (not is_function)
                      && (not annots.a_domainsafe)
                      && (not (suppresses annots "domain-global-mutable"))
                      && type_mutable ~marked ~mod_name ty
                    then
                      add_finding prog
                        (finding ~rule:"domain-global-mutable" ~loc:vb.vb_loc
                           (Printf.sprintf
                              "top-level %s.%s is mutable state shared by \
                               every simulation domain; make it Atomic, move \
                               it into Domain.DLS, or justify with \
                               [@kpath.domainsafe \"...\"]"
                              mod_name name)))
                vbs
            | Typedtree.Tstr_module mb -> (
              let sub_name =
                match mb.mb_id with Some id -> Ident.name id | None -> mod_name
              in
              match mb.mb_expr.mod_desc with
              | Typedtree.Tmod_structure s -> do_structure sub_name s
              | _ -> ())
            | _ -> ())
          str.str_items
      in
      do_structure m.m_name m.m_str)
    prog.modls

(* {1 Rule family 4: determinism} *)

(* {2 Closure-carrying variants}

   A variant with a constructor holding a function ([Tee of (bytes ->
   int -> unit)]) poisons structural equality: [=], [<>] and [List.mem]
   specialize polymorphic compare at the variant type, and the moment a
   closure-carrying constructor is compared the runtime raises
   [Invalid_argument "compare: functional value"]. The hazard is
   invisible at the call site -- the code typechecks and works until the
   first such value flows in -- so find the poisoned types by scanning
   every declaration, then flag the equality sites. Closed as a fixpoint
   so a variant embedding another poisoned variant is poisoned too.
   Types are keyed by their last path component; record types are left
   unmarked (a record of closures compared with [=] still raises, but
   records here are mutable state, already outside poly-compare's
   immutable whitelist for [compare]). *)

let rec mentions_closure marked (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tarrow _ -> true
  | Tconstr (p, args, _) ->
    Hashtbl.mem marked (Path.last p)
    || List.exists (mentions_closure marked) args
  | Ttuple ts -> List.exists (mentions_closure marked) ts
  | _ -> false

let compute_closure_variants prog =
  let marked : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let ctor_poisoned (c : Typedtree.constructor_declaration) =
    match c.cd_args with
    | Typedtree.Cstr_tuple cts ->
      List.exists (fun (ct : Typedtree.core_type) ->
          mentions_closure marked ct.ctyp_type)
        cts
    | Typedtree.Cstr_record lds ->
      List.exists (fun (ld : Typedtree.label_declaration) ->
          mentions_closure marked ld.ld_type.ctyp_type)
        lds
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun m ->
        let rec do_structure (str : Typedtree.structure) =
          List.iter
            (fun (item : Typedtree.structure_item) ->
              match item.str_desc with
              | Typedtree.Tstr_type (_, decls) ->
                List.iter
                  (fun (d : Typedtree.type_declaration) ->
                    match d.typ_kind with
                    | Typedtree.Ttype_variant ctors ->
                      let name = d.typ_name.txt in
                      if
                        (not (Hashtbl.mem marked name))
                        && List.exists ctor_poisoned ctors
                      then begin
                        Hashtbl.replace marked name ();
                        changed := true
                      end
                    | _ -> ())
                  decls
              | Typedtree.Tstr_module
                  { mb_expr = { mod_desc = Tmod_structure s; _ }; _ } ->
                do_structure s
              | _ -> ())
            str.str_items
        in
        do_structure m.m_str)
      prog.modls
  done;
  marked

let wallclock_keys =
  [ "Sys.time"; "Unix.gettimeofday"; "Unix.time"; "Unix.localtime"; "Unix.gmtime" ]

let sort_keys = [ "List.sort"; "List.stable_sort"; "List.fast_sort"; "List.sort_uniq" ]

let polyeq_keys = [ "="; "<>"; "List.mem" ]

let check_determinism prog =
  let closure_variants = compute_closure_variants prog in
  List.iter
    (fun m ->
      let in_rng_module =
        Filename.basename m.m_file = "rng.ml"
      in
      (* Pre-walk: mark Hashtbl.fold applications whose result feeds
         directly into a List.sort (the sorted-fold idiom). *)
      let exempt : (Location.t, unit) Hashtbl.t = Hashtbl.create 8 in
      let rec head_key (e : Typedtree.expression) =
        (* Look through curried application: [a |> List.sort cmp] types
           as [(List.sort cmp) a], an apply whose head is an apply. *)
        match e.exp_desc with
        | Typedtree.Texp_apply (h, _) -> head_key h
        | Texp_ident (p, _, _) -> Some (key_of_path p)
        | _ -> None
      in
      let is_fold_apply (e : Typedtree.expression) =
        match head_key e with
        | Some ("Hashtbl.fold" | "Hashtbl.iter") -> true
        | _ -> false
      in
      let debug = Sys.getenv_opt "KPATH_LINT_DEBUG" <> None in
      let prewalk =
        let super = Tast_iterator.default_iterator in
        let expr sub (e : Typedtree.expression) =
          (match e.exp_desc with
           | Typedtree.Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
             -> (
             if debug then
               Printf.eprintf "apply %s:%d head=%s args=%d\n%!" m.m_file
                 e.exp_loc.Location.loc_start.Lexing.pos_lnum (key_of_path p)
                 (List.length args);
             ignore args)
           | _ -> ());
          (match e.exp_desc with
           | Typedtree.Texp_apply (_, args) -> (
             match head_key e with
             | Some k when List.mem k sort_keys ->
               List.iter
                 (fun (_, a) ->
                   match a with
                   | Some a when is_fold_apply a ->
                     Hashtbl.replace exempt a.exp_loc ()
                   | _ -> ())
                 args
             | _ -> ())
           | _ -> ());
          super.expr sub e
        in
        { super with expr }
      in
      prewalk.structure prewalk m.m_str;
      (* Main walk, with the active [@kpath.nolint] context. *)
      let nolint_stack : string list list ref = ref [] in
      let suppressed rule = List.exists (List.mem rule) !nolint_stack in
      let report rule loc msg =
        if not (suppressed rule) then add_finding prog (finding ~rule ~loc msg)
      in
      let first_arrow_arg ty =
        match Types.get_desc ty with
        | Types.Tarrow (_, a, _, _) -> Some a
        | _ -> None
      in
      let super = Tast_iterator.default_iterator in
      let rec expr_iter sub (e : Typedtree.expression) =
        let pushed =
          (parse_annots ~bad:(fun _ _ -> ()) e.exp_attributes).a_nolint
        in
        nolint_stack := pushed :: !nolint_stack;
        (match e.exp_desc with
         | Typedtree.Texp_ident (p, _, _) -> (
           let comps = normalize_components (path_components p) in
           let key = key_of_components comps in
           (match comps with
            | "Random" :: _ when not in_rng_module ->
              report "rng" e.exp_loc
                (Printf.sprintf
                   "%s: nondeterministic PRNG outside lib/sim/rng (use Rng)"
                   (String.concat "." comps))
            | _ -> ());
           if List.mem key wallclock_keys then
             report "wallclock" e.exp_loc
               (Printf.sprintf
                  "%s: wall-clock time in simulator code (use Engine.now)" key);
           if key = "compare" || key = "Hashtbl.hash" then
             (match first_arrow_arg e.exp_type with
              | Some a when not (immutable_base a) ->
                report "poly-compare" e.exp_loc
                  (Printf.sprintf
                     "polymorphic %s instantiated at a non-immediate type \
                      (write a dedicated comparison)"
                     key)
              | _ -> ());
           if List.mem key polyeq_keys then
             match first_arrow_arg e.exp_type with
             | Some a when mentions_closure closure_variants a ->
               report "poly-compare" e.exp_loc
                 (Printf.sprintf
                    "structural %s instantiated at a closure-carrying type \
                     (comparing a functional constructor raises; match on \
                     the shape instead)"
                    key)
             | _ -> ())
         | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> (
           match key_of_path p with
           | ("Hashtbl.fold" | "Hashtbl.iter") as k ->
             if not (Hashtbl.mem exempt e.exp_loc) then
               report "hashtbl-order" e.exp_loc
                 (Printf.sprintf
                    "%s enumerates in hash order; sort the result (... |> \
                     List.sort ...) or justify with [@kpath.nolint \
                     \"hashtbl-order: ...\"]"
                    k)
           | _ -> ())
         | _ -> ());
        super.expr { sub with expr = expr_iter } e;
        nolint_stack := List.tl !nolint_stack
      in
      let rec vb_iter sub (vb : Typedtree.value_binding) =
        let pushed =
          (parse_annots ~bad:(fun _ _ -> ()) vb.vb_attributes).a_nolint
        in
        nolint_stack := pushed :: !nolint_stack;
        super.value_binding
          { sub with expr = expr_iter; value_binding = vb_iter }
          vb;
        nolint_stack := List.tl !nolint_stack
      in
      let it = { super with expr = expr_iter; value_binding = vb_iter } in
      it.structure it m.m_str)
    prog.modls

(* {1 Driver} *)

let load_cmt prog path =
  let cmt = Cmt_format.read_cmt path in
  match (cmt.cmt_annots, cmt.cmt_sourcefile) with
  | _, Some src when Filename.check_suffix src "-gen" -> ()
  | Cmt_format.Implementation str, src ->
    let name = strip_mangle cmt.cmt_modname in
    let file = match src with Some s -> s | None -> path in
    prog.modls <-
      { m_name = name; m_file = file; m_str = str; m_stamps = Hashtbl.create 64 }
      :: prog.modls
  | _ -> ()

type result = {
  r_findings : finding list;
  r_modules : int;
  r_nodes : int;
}

let run (paths : string list) : result =
  let prog = { nodes = Hashtbl.create 256; modls = []; findings = [] } in
  List.iter (load_cmt prog) paths;
  prog.modls <- List.sort (fun a b -> compare a.m_file b.m_file) prog.modls;
  List.iter (fun m -> collect_module prog m) prog.modls;
  let raisers = compute_raisers prog in
  check_intr prog;
  check_lifecycle prog raisers;
  check_domain_shared prog;
  check_determinism prog;
  {
    r_findings = List.sort_uniq compare_findings prog.findings;
    r_modules = List.length prog.modls;
    r_nodes = Hashtbl.length prog.nodes;
  }

let pp_finding fmt f =
  Format.fprintf fmt "%s:%d: [%s] %s" f.file f.line f.rule f.msg

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json (r : result) =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"tool\": \"kpath-verify\",\n";
  Buffer.add_string b (Printf.sprintf "  \"modules\": %d,\n" r.r_modules);
  Buffer.add_string b (Printf.sprintf "  \"functions\": %d,\n" r.r_nodes);
  Buffer.add_string b
    (Printf.sprintf "  \"findings\": %d,\n  \"results\": [\n"
       (List.length r.r_findings));
  List.iteri
    (fun i f ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, \
            \"message\": \"%s\"}%s\n"
           (json_escape f.rule) (json_escape f.file) f.line (json_escape f.msg)
           (if i = List.length r.r_findings - 1 then "" else ",")))
    r.r_findings;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b
