open Kpath_sim
open Kpath_proc
open Kpath_dev
open Kpath_fs
open Kpath_net
open Kpath_core
open Kpath_kernel
open Kpath_workloads

(* Rig: a machine with two drives and filesystems; [body] runs in a
   process after a patterned source file exists and caches are cold. *)
let with_machine ?(disk = `Ram) ?(file_bytes = 256 * 1024) body =
  let s = Experiments.make_setup ~disk ~file_bytes () in
  Experiments.cold_caches s;
  let m = s.Experiments.machine in
  let result = ref None in
  let p = Machine.spawn m ~name:"splice-test" (fun () -> result := Some (body s)) in
  Machine.run m;
  (match p.Process.exit_status with
   | Some (Process.Crashed e) -> raise e
   | _ -> ());
  Kpath_buf.Cache.check_invariants (Machine.cache m);
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "test body did not finish"

let file_endpoints s =
  let m = s.Experiments.machine in
  let src_fs, src_rel = Option.get (Machine.resolve m s.Experiments.src_path) in
  let src_ino = Fs.lookup src_fs src_rel in
  let dst_fs, dst_rel = Option.get (Machine.resolve m s.Experiments.dst_path) in
  let dst_ino =
    try Fs.lookup dst_fs dst_rel with Fs_error.Error Fs_error.Enoent ->
      Fs.create_file dst_fs dst_rel
  in
  (src_fs, src_ino, dst_fs, dst_ino)

let start_file_splice ?config ?(size = Splice.eof) s =
  let m = s.Experiments.machine in
  let src_fs, src_ino, dst_fs, dst_ino = file_endpoints s in
  Splice.start (Machine.splice_ctx m)
    ~src:(Endpoint.src_file src_fs src_ino ())
    ~dst:(Endpoint.dst_file dst_fs dst_ino ())
    ?config ~size ()

(* Run a verifier process over the destination (drives the machine). *)
let verify_runs s =
  let ok = ref false in
  let _v =
    Programs.spawn_verifier s.Experiments.machine ~path:s.Experiments.dst_path
      ~expect_bytes:s.Experiments.file_bytes (fun r -> ok := r)
  in
  Machine.run s.Experiments.machine;
  !ok

let test_whole_file_integrity () =
  let moved =
    with_machine (fun s ->
        let d = start_file_splice s in
        match Splice.wait d with
        | Ok n ->
          Alcotest.(check int) "pending drained" 0
            (Splice.pending_reads d + Splice.pending_writes d);
          Alcotest.(check int) "no buffers held" 0
            (List.length (Splice.inflight_buffers d));
          n
        | Error e -> Alcotest.fail e)
  in
  Alcotest.(check int) "whole file" (256 * 1024) moved

let test_data_verified_end_to_end () =
  List.iter
    (fun disk ->
      let ok =
        with_machine ~disk (fun s ->
            (match Splice.wait (start_file_splice s) with
             | Ok _ -> ()
             | Error e -> Alcotest.fail e);
            true)
      in
      Alcotest.(check bool) "splice ran" true ok)
    [ `Ram; `Rz56; `Rz58 ]

let test_verify_via_read_path () =
  (* End-to-end: splice then read the destination through the normal FS
     path and compare with the pattern. *)
  let s = Experiments.make_setup ~disk:`Rz58 ~file_bytes:(128 * 1024) () in
  Experiments.cold_caches s;
  let m = s.Experiments.machine in
  let _p =
    Machine.spawn m ~name:"driver" (fun () ->
        let d = start_file_splice s in
        match Splice.wait d with Ok _ -> () | Error e -> failwith e)
  in
  Machine.run m;
  Alcotest.(check bool) "pattern intact" true (verify_runs s)

let test_partial_size () =
  let moved =
    with_machine (fun s ->
        let d = start_file_splice ~size:40_000 s in
        Alcotest.(check int) "resolved size" 40_000 (Splice.total_bytes d);
        match Splice.wait d with Ok n -> n | Error e -> Alcotest.fail e)
  in
  Alcotest.(check int) "exact partial size (non-block multiple)" 40_000 moved

let test_eof_size_resolution () =
  with_machine (fun s ->
      let d = start_file_splice ~size:Splice.eof s in
      Alcotest.(check int) "resolved to file size" (256 * 1024)
        (Splice.total_bytes d);
      ignore (Splice.wait d))

let test_oversized_request_clips () =
  let moved =
    with_machine (fun s ->
        let d = start_file_splice ~size:(10 * 1024 * 1024) s in
        match Splice.wait d with Ok n -> n | Error e -> Alcotest.fail e)
  in
  Alcotest.(check int) "clipped at EOF" (256 * 1024) moved

let test_zero_size_completes_immediately () =
  with_machine (fun s ->
      let d = start_file_splice ~size:0 s in
      Alcotest.(check bool) "already done" true (Splice.state d = Splice.Completed);
      Alcotest.(check int) "zero moved" 0 (Splice.bytes_moved d))

let test_watermark_bounds () =
  with_machine ~disk:`Rz56 (fun s ->
      let config = Flowctl.default in
      let d = start_file_splice ~config s in
      (match Splice.wait d with Ok _ -> () | Error e -> Alcotest.fail e);
      Alcotest.(check bool) "peak reads bounded" true
        (Splice.peak_pending_reads d <= Flowctl.max_in_flight config);
      Alcotest.(check bool) "read pipeline used" true
        (Splice.peak_pending_reads d >= 2);
      Alcotest.(check bool) "peak writes bounded" true
        (Splice.peak_pending_writes d <= Flowctl.max_in_flight config + config.Flowctl.write_hi))

let test_lockstep_config () =
  with_machine (fun s ->
      let d = start_file_splice ~config:Flowctl.lockstep s in
      (match Splice.wait d with Ok _ -> () | Error e -> Alcotest.fail e);
      Alcotest.(check int) "one read at a time" 1 (Splice.peak_pending_reads d);
      Alcotest.(check int) "one write at a time" 1 (Splice.peak_pending_writes d))

let test_on_complete_fires_once () =
  with_machine (fun s ->
      let fires = ref 0 in
      let d = start_file_splice s in
      Splice.on_complete d (fun _ -> incr fires);
      (match Splice.wait d with Ok _ -> () | Error e -> Alcotest.fail e);
      Alcotest.(check int) "exactly once" 1 !fires;
      (* Late registration fires immediately. *)
      Splice.on_complete d (fun _ -> incr fires);
      Alcotest.(check int) "immediate for finished" 2 !fires)

(* Dedicated error rig with direct access to the concrete disks. *)
let error_rig ~poison () =
  let m = Machine.create () in
  let d0 = Machine.make_drive m ~name:"disk0" ~kind:`Rz58 () in
  let d1 = Machine.make_drive m ~name:"disk1" ~kind:`Rz58 () in
  let disk0 = match d0 with Machine.Scsi d -> d | Machine.Ram _ -> assert false in
  let disk1 = match d1 with Machine.Scsi d -> d | Machine.Ram _ -> assert false in
  let outcome = ref None in
  let _p =
    Machine.spawn m ~name:"driver" (fun () ->
        let fs0 = Fs.mkfs ~cache:(Machine.cache m) (Machine.blkdev d0) ~ninodes:16 in
        let fs1 = Fs.mkfs ~cache:(Machine.cache m) (Machine.blkdev d1) ~ninodes:16 in
        let src = Fs.create_file fs0 "/data" in
        let buf = Bytes.create 8192 in
        for i = 0 to 15 do
          Programs.fill_pattern buf ~file_off:(i * 8192);
          ignore (Fs.write fs0 src ~off:(i * 8192) ~len:8192 buf ~pos:0)
        done;
        Fs.sync fs0;
        Kpath_buf.Cache.invalidate_dev (Machine.cache m) (Machine.blkdev d0);
        let dst = Fs.create_file fs1 "/copy" in
        poison ~fs0 ~fs1 ~src ~dst ~disk0 ~disk1;
        let d =
          Splice.start (Machine.splice_ctx m)
            ~src:(Endpoint.src_file fs0 src ())
            ~dst:(Endpoint.dst_file fs1 dst ())
            ~size:Splice.eof ()
        in
        outcome := Some (Splice.wait d))
  in
  Machine.run m;
  Kpath_buf.Cache.check_invariants (Machine.cache m);
  !outcome

let test_read_error_aborts_rig () =
  match
    error_rig () ~poison:(fun ~fs0 ~fs1:_ ~src ~dst:_ ~disk0 ~disk1:_ ->
        let phys = Option.get (Fs.bmap fs0 src 8) in
        Disk.inject_error disk0 ~blkno:phys)
  with
  | Some (Error reason) ->
    Alcotest.(check bool) "mentions error" true (Util.contains reason "error")
  | Some (Ok _) -> Alcotest.fail "expected abort"
  | None -> Alcotest.fail "splice never finished"

let test_write_error_aborts_rig () =
  match
    error_rig () ~poison:(fun ~fs0:_ ~fs1 ~src:_ ~dst ~disk0:_ ~disk1 ->
        (* Map the destination to find a physical block to poison. *)
        let phys = Fs.bmap_alloc fs1 dst 4 ~zero:false in
        Disk.inject_error disk1 ~blkno:phys)
  with
  | Some (Error _) -> ()
  | Some (Ok _) -> Alcotest.fail "expected abort"
  | None -> Alcotest.fail "splice never finished"

let test_abort_midway () =
  with_machine ~disk:`Rz56 (fun s ->
      let m = s.Experiments.machine in
      let d = start_file_splice s in
      ignore
        (Engine.schedule_after (Machine.engine m) (Time.ms 50) (fun () ->
             Splice.abort d ~reason:"caller interrupt"));
      (match Splice.wait d with
       | Error "caller interrupt" -> ()
       | Error other -> Alcotest.failf "unexpected reason %s" other
       | Ok _ -> Alcotest.fail "expected abort");
      Alcotest.(check bool) "partial progress" true
        (Splice.bytes_moved d < 256 * 1024);
      Alcotest.(check int) "buffers drained" 0
        (List.length (Splice.inflight_buffers d));
      (* Abort is idempotent. *)
      Splice.abort d ~reason:"again")

let test_sparse_source_rejected () =
  with_machine (fun s ->
      let m = s.Experiments.machine in
      let src_fs, _, dst_fs, dst_ino = file_endpoints s in
      let sparse = Fs.create_file src_fs "/sparse" in
      ignore (Fs.bmap_alloc src_fs sparse 4 ~zero:true);
      sparse.Inode.size <- 5 * Fs.block_size src_fs;
      Alcotest.check_raises "sparse"
        (Fs_error.Error (Fs_error.Einval "splice: sparse source")) (fun () ->
          ignore
            (Splice.start (Machine.splice_ctx m)
               ~src:(Endpoint.src_file src_fs sparse ())
               ~dst:(Endpoint.dst_file dst_fs dst_ino ())
               ~size:Splice.eof ())))

let test_file_offsets () =
  with_machine (fun s ->
      let m = s.Experiments.machine in
      let src_fs, src_ino, dst_fs, dst_ino = file_endpoints s in
      (* Copy the second half of the file. *)
      let bs = Fs.block_size src_fs in
      let half_blocks = 256 * 1024 / bs / 2 in
      let d =
        Splice.start (Machine.splice_ctx m)
          ~src:(Endpoint.src_file src_fs src_ino ~off_blocks:half_blocks ())
          ~dst:(Endpoint.dst_file dst_fs dst_ino ())
          ~size:Splice.eof ()
      in
      (match Splice.wait d with
       | Ok n -> Alcotest.(check int) "half the file" (128 * 1024) n
       | Error e -> Alcotest.fail e);
      (* Check a byte: dst offset 0 == src offset 128K. *)
      let out = Bytes.create 1 in
      ignore (Fs.read dst_fs dst_ino ~off:0 ~len:1 out ~pos:0);
      Alcotest.(check char) "shifted contents"
        (Programs.pattern_byte (128 * 1024))
        (Bytes.get out 0))

let test_file_to_chardev () =
  with_machine ~file_bytes:(64 * 1024) (fun s ->
      let m = s.Experiments.machine in
      let cd =
        Chardev.create ~name:"dac" ~drain_rate:1e6 ~fifo_capacity:(32 * 1024)
          ~engine:(Machine.engine m) ~intr:(Machine.intr m) ()
      in
      let src_fs, src_ino, _, _ = file_endpoints s in
      let d =
        Splice.start (Machine.splice_ctx m)
          ~src:(Endpoint.src_file src_fs src_ino ())
          ~dst:(Endpoint.Dst_chardev cd) ~size:Splice.eof ()
      in
      (match Splice.wait d with
       | Ok n -> Alcotest.(check int) "all accepted" (64 * 1024) n
       | Error e -> Alcotest.fail e);
      (* Wait for the FIFO to play out. *)
      Sched.sleep (Machine.sched m) (Time.of_sec_f 0.1);
      Alcotest.(check int) "all played" (64 * 1024) (Chardev.consumed cd);
      (* Content check against the pattern. *)
      let captured = Chardev.captured cd in
      let ok = ref true in
      String.iteri
        (fun i c -> if c <> Programs.pattern_byte i then ok := false)
        captured;
      Alcotest.(check bool) "DAC heard the pattern" true !ok)

let test_socket_to_socket () =
  let m = Machine.create () in
  let net = Netif.create_net (Machine.engine m) in
  let nif = Netif.attach net ~name:"if0" ~intr:(Machine.intr m) () in
  let stub = Netif.attach net ~name:"stub" ~intr:Util.free_intr () in
  let src_sock = Udp.create nif ~port:10 () in
  let out_sock = Udp.create nif ~port:11 () in
  let sink = Udp.create stub ~port:12 () in
  let remote = Udp.create stub ~port:13 () in
  let received = ref [] in
  Udp.set_upcall sink
    (Some (fun dg -> received := Bytes.to_string dg.Udp.d_payload :: !received));
  let d =
    Splice.start (Machine.splice_ctx m) ~src:(Endpoint.Src_socket src_sock)
      ~dst:(Endpoint.Dst_socket { sock = out_sock; dst = Udp.addr sink })
      ~size:20 ()
  in
  (* Two 10-byte datagrams complete the 20-byte splice. *)
  Udp.sendto remote ~dst:(Udp.addr src_sock) (Bytes.of_string "helloworld");
  Udp.sendto remote ~dst:(Udp.addr src_sock) (Bytes.of_string "0123456789");
  Udp.sendto remote ~dst:(Udp.addr src_sock) (Bytes.of_string "ignored...");
  Machine.run m;
  Alcotest.(check bool) "completed" true (Splice.state d = Splice.Completed);
  Alcotest.(check int) "moved exactly" 20 (Splice.bytes_moved d);
  Alcotest.(check (list string)) "forwarded in order"
    [ "helloworld"; "0123456789" ] (List.rev !received)

let test_file_to_udp_socket () =
  let m = Machine.create () in
  let net = Netif.create_net ~bandwidth:10e6 (Machine.engine m) in
  let nif = Netif.attach net ~name:"if0" ~intr:(Machine.intr m) () in
  let stub = Netif.attach net ~name:"stub" ~intr:Util.free_intr () in
  let out_sock = Udp.create nif ~port:50 () in
  let sink = Udp.create stub ~port:51 () in
  let received = Buffer.create 1024 in
  Udp.set_upcall sink (Some (fun dg -> Buffer.add_bytes received dg.Udp.d_payload));
  let drive = Machine.make_drive m ~name:"d0" ~kind:`Ram () in
  let total = 100_000 in
  let _p =
    Machine.spawn m ~name:"driver" (fun () ->
        let fs = Fs.mkfs ~cache:(Machine.cache m) (Machine.blkdev drive) ~ninodes:8 in
        let f = Fs.create_file fs "/stream" in
        let buf = Bytes.create 8192 in
        let rec fill off =
          if off < total then begin
            let n = min 8192 (total - off) in
            Programs.fill_pattern buf ~file_off:off;
            ignore (Fs.write fs f ~off ~len:n buf ~pos:0);
            fill (off + n)
          end
        in
        fill 0;
        Fs.sync fs;
        Kpath_buf.Cache.invalidate_dev (Machine.cache m) (Machine.blkdev drive);
        let d =
          Splice.start (Machine.splice_ctx m)
            ~src:(Endpoint.src_file fs f ())
            ~dst:(Endpoint.Dst_socket { sock = out_sock; dst = Udp.addr sink })
            ~size:Splice.eof ()
        in
        match Splice.wait d with
        | Ok n -> Alcotest.(check int) "sent everything" total n
        | Error e -> Alcotest.fail e)
  in
  Machine.run m;
  Alcotest.(check int) "received everything" total (Buffer.length received);
  let data = Buffer.to_bytes received in
  let ok = ref true in
  Bytes.iteri (fun i c -> if c <> Programs.pattern_byte i then ok := false) data;
  Alcotest.(check bool) "in order and intact" true !ok;
  (* Endpoint descriptions render. *)
  Alcotest.(check bool) "describe" true
    (Util.contains (Endpoint.describe_sink (Endpoint.Dst_socket { sock = out_sock; dst = Udp.addr sink })) "udp")

let test_release_detaches_dgram_source () =
  let m = Machine.create () in
  let net = Netif.create_net (Machine.engine m) in
  let nif = Netif.attach net ~name:"if0" ~intr:(Machine.intr m) () in
  let stub = Netif.attach net ~name:"stub" ~intr:Util.free_intr () in
  let src_sock = Udp.create nif ~port:40 () in
  let out_sock = Udp.create nif ~port:41 () in
  let sink = Udp.create stub ~port:42 () in
  let remote = Udp.create stub ~port:43 () in
  let d =
    Splice.start (Machine.splice_ctx m) ~src:(Endpoint.Src_socket src_sock)
      ~dst:(Endpoint.Dst_socket { sock = out_sock; dst = Udp.addr sink })
      ~size:10 ()
  in
  Udp.sendto remote ~dst:(Udp.addr src_sock) (Bytes.create 10);
  Machine.run m;
  Alcotest.(check bool) "done" true (Splice.state d = Splice.Completed);
  Splice.release d;
  (* After release, arriving datagrams queue on the socket again. *)
  Udp.sendto remote ~dst:(Udp.addr src_sock) (Bytes.create 7);
  Machine.run m;
  Alcotest.(check int) "queued, not forwarded" 1 (Udp.pending src_sock)

let test_framebuffer_to_socket () =
  let m = Machine.create () in
  let net = Netif.create_net ~bandwidth:10e6 (Machine.engine m) in
  let nif = Netif.attach net ~name:"if0" ~intr:(Machine.intr m) () in
  let stub = Netif.attach net ~name:"stub" ~intr:Util.free_intr () in
  let out_sock = Udp.create nif ~port:20 () in
  let sink = Udp.create stub ~port:21 () in
  let bytes_seen = ref 0 in
  let reassembled = Buffer.create 1024 in
  Udp.set_upcall sink
    (Some
       (fun dg ->
         bytes_seen := !bytes_seen + Bytes.length dg.Udp.d_payload;
         Buffer.add_bytes reassembled dg.Udp.d_payload));
  let fb =
    Framebuffer.create ~name:"fb" ~frame_bytes:4096 ~frames_per_sec:30.0
      ~engine:(Machine.engine m) ()
  in
  let d =
    Splice.start (Machine.splice_ctx m) ~src:(Endpoint.Src_framebuffer fb)
      ~dst:(Endpoint.Dst_socket { sock = out_sock; dst = Udp.addr sink })
      ~size:(3 * 4096) ()
  in
  Machine.run ~until:(Time.sec 1) m;
  Alcotest.(check bool) "done" true (Splice.state d = Splice.Completed);
  Alcotest.(check int) "three frames" (3 * 4096) !bytes_seen;
  (* First frame's bytes match the deterministic pattern. *)
  let frame0 = Framebuffer.frame_pattern ~seq:0 ~size:4096 in
  Alcotest.(check bytes) "frame 0 intact" frame0
    (Bytes.of_string (String.sub (Buffer.contents reassembled) 0 4096));
  Framebuffer.stop fb

let recording_rig ~rate ~size ~k =
  let m = Machine.create () in
  let drive = Machine.make_drive m ~name:"d0" ~kind:`Rz58 () in
  let mic =
    Micdev.create ~name:"mic0" ~rate ~engine:(Machine.engine m)
      ~intr:(Machine.intr m) ()
  in
  let _p =
    Machine.spawn m ~name:"recorder" (fun () ->
        let fs = Fs.mkfs ~cache:(Machine.cache m) (Machine.blkdev drive) ~ninodes:8 in
        let f = Fs.create_file fs "/take1" in
        let d =
          Splice.start (Machine.splice_ctx m) ~src:(Endpoint.Src_mic mic)
            ~dst:(Endpoint.dst_file fs f ()) ~size ()
        in
        let r = Splice.wait d in
        k fs f d r)
  in
  Machine.run ~until:(Time.sec 300) m;
  Kpath_buf.Cache.check_invariants (Machine.cache m);
  Micdev.stop mic

let test_recording_splice () =
  (* 96,000 bytes at 64 KB/s: the disk easily keeps up, so the recording
     is gapless and matches the device's sample pattern exactly. *)
  let checked = ref false in
  recording_rig ~rate:64_000.0 ~size:96_000 ~k:(fun fs f d r ->
      (match r with
       | Ok n -> Alcotest.(check int) "whole take" 96_000 n
       | Error e -> Alcotest.fail e);
      Alcotest.(check int) "no overruns" 0 (Splice.overruns d);
      Alcotest.(check int) "file size" 96_000 f.Inode.size;
      let out = Bytes.create 96_000 in
      let n = Fs.read fs f ~off:0 ~len:96_000 out ~pos:0 in
      Alcotest.(check int) "read back" 96_000 n;
      Alcotest.(check bytes) "gapless samples"
        (Micdev.sample_pattern ~off:0 ~len:96_000)
        out;
      Alcotest.(check (list string)) "fsck" [] (Fs.fsck fs);
      checked := true);
  Alcotest.(check bool) "checks ran" true !checked

let test_recording_overrun () =
  (* A device far faster than the disk: the splice must survive, drop
     samples (overruns) rather than buffer unboundedly, and still fill
     the requested take. *)
  let checked = ref false in
  recording_rig ~rate:20e6 ~size:(512 * 1024) ~k:(fun fs _f d r ->
      (match r with
       | Ok n -> Alcotest.(check int) "take filled" (512 * 1024) n
       | Error e -> Alcotest.fail e);
      Alcotest.(check bool) "overruns recorded" true (Splice.overruns d > 0);
      Alcotest.(check (list string)) "fsck" [] (Fs.fsck fs);
      checked := true);
  Alcotest.(check bool) "checks ran" true !checked

let test_recording_einval () =
  let m = Machine.create () in
  let mic =
    Micdev.create ~name:"mic0" ~rate:8000.0 ~engine:(Machine.engine m)
      ~intr:(Machine.intr m) ()
  in
  let drive = Machine.make_drive m ~name:"d0" ~kind:`Ram () in
  let _p =
    Machine.spawn m ~name:"t" (fun () ->
        let fs = Fs.mkfs ~cache:(Machine.cache m) (Machine.blkdev drive) ~ninodes:8 in
        let f = Fs.create_file fs "/x" in
        Alcotest.check_raises "unbounded capture"
          (Fs_error.Error
             (Fs_error.Einval "splice: device capture requires a bounded size"))
          (fun () ->
            ignore
              (Splice.start (Machine.splice_ctx m) ~src:(Endpoint.Src_mic mic)
                 ~dst:(Endpoint.dst_file fs f ()) ~size:Splice.eof ())))
  in
  Machine.run m

let test_unsupported_combinations () =
  let m = Machine.create () in
  let net = Netif.create_net (Machine.engine m) in
  let nif = Netif.attach net ~name:"if0" ~intr:(Machine.intr m) () in
  let sock = Udp.create nif ~port:30 () in
  let fb =
    Framebuffer.create ~name:"fb" ~frame_bytes:64 ~frames_per_sec:1.0
      ~engine:(Machine.engine m) ()
  in
  (try
     ignore
       (Splice.start (Machine.splice_ctx m) ~src:(Endpoint.Src_socket sock)
          ~dst:(Endpoint.Dst_file { fs = Obj.magic (); ino = Obj.magic (); off_blocks = 0 })
          ~size:10 ());
     Alcotest.fail "socket-to-file accepted"
   with Invalid_argument _ -> ());
  try
    ignore
      (Splice.start (Machine.splice_ctx m) ~src:(Endpoint.Src_framebuffer fb)
         ~dst:(Endpoint.Dst_chardev (Obj.magic ())) ~size:10 ());
    Alcotest.fail "framebuffer-to-chardev accepted"
  with Invalid_argument _ -> ()

let test_same_disk_splice () =
  (* Source and destination files on one drive/filesystem: the head
     thrashes but the data must still arrive intact. *)
  let meas =
    Experiments.measure_copy ~mode:`Scp ~disk:`Rz56 ~file_bytes:(128 * 1024)
      ~same_disk:true ()
  in
  Alcotest.(check bool) "verified" true meas.Experiments.cm_verified

let test_splice_stats_counted () =
  with_machine (fun s ->
      let m = s.Experiments.machine in
      let before = Stats.get (Splice.ctx_stats (Machine.splice_ctx m)) "splice.started" in
      let d = start_file_splice s in
      ignore (Splice.wait d);
      let stats = Splice.ctx_stats (Machine.splice_ctx m) in
      let lat = Stats.histogram stats "splice.block_latency_us" in
      Alcotest.(check int) "latency sample per block" 32 (Histogram.count lat);
      Alcotest.(check bool) "latencies positive" true
        (match Histogram.min_value lat with Some v -> v > 0 | None -> false);
      Alcotest.(check int) "started" (before + 1) (Stats.get stats "splice.started");
      Alcotest.(check bool) "reads counted" true
        (Stats.get stats "splice.reads_issued" > 0);
      Alcotest.(check bool) "writes counted" true
        (Stats.get stats "splice.writes_issued" > 0);
      Alcotest.(check bool) "completed" true (Stats.get stats "splice.completed" > 0))

let test_buffer_shortage_retry () =
  (* A cache far smaller than the watermark burst forces the paper's
     `Busy path: reads are retried off the callout list until buffers
     free up, and the transfer still completes intact. *)
  let e = Kpath_sim.Engine.create () in
  let sched = Kpath_proc.Sched.create e in
  let intr ~service fn = Kpath_proc.Sched.interrupt sched ~service fn in
  let disk =
    Kpath_dev.Disk.create ~name:"d0" ~geometry:Kpath_dev.Disk.rz58
      ~block_size:4096 ~nblocks:256 ~intr_service:(Kpath_sim.Time.us 60)
      ~engine:e ~intr ()
  in
  let disk2 =
    Kpath_dev.Disk.create ~name:"d1" ~geometry:Kpath_dev.Disk.rz58
      ~block_size:4096 ~nblocks:256 ~intr_service:(Kpath_sim.Time.us 60)
      ~engine:e ~intr ()
  in
  let cache = Kpath_buf.Cache.create ~block_size:4096 ~nbufs:4 () in
  let callout = Kpath_sim.Callout.create e in
  let ctx =
    Splice.make_ctx ~engine:e ~callout ~cache ~intr ()
  in
  let outcome = ref None in
  let retries = ref 0 in
  let _p =
    Kpath_proc.Sched.spawn sched ~name:"driver" (fun () ->
        let fs0 = Fs.mkfs ~cache (Kpath_dev.Disk.blkdev disk) ~ninodes:8 in
        let fs1 = Fs.mkfs ~cache (Kpath_dev.Disk.blkdev disk2) ~ninodes:8 in
        let src = Fs.create_file fs0 "/s" in
        let buf = Bytes.create 4096 in
        for i = 0 to 31 do
          Programs.fill_pattern buf ~file_off:(i * 4096);
          ignore (Fs.write fs0 src ~off:(i * 4096) ~len:4096 buf ~pos:0)
        done;
        Fs.sync fs0;
        Kpath_buf.Cache.invalidate_dev cache (Kpath_dev.Disk.blkdev disk);
        let dst = Fs.create_file fs1 "/d" in
        let d =
          Splice.start ctx
            ~src:(Endpoint.src_file fs0 src ())
            ~dst:(Endpoint.dst_file fs1 dst ())
            ~size:Splice.eof ()
        in
        outcome := Some (Splice.wait d);
        retries := Kpath_sim.Stats.get (Splice.ctx_stats ctx) "splice.retries";
        (* Verify. *)
        let out = Bytes.create 4096 in
        let ok = ref true in
        for i = 0 to 31 do
          ignore (Fs.read fs1 dst ~off:(i * 4096) ~len:4096 out ~pos:0);
          for j = 0 to 4095 do
            if Bytes.get out j <> Programs.pattern_byte ((i * 4096) + j) then
              ok := false
          done
        done;
        Alcotest.(check bool) "intact under buffer famine" true !ok)
  in
  Kpath_sim.Engine.run e;
  Kpath_proc.Sched.check_deadlock sched;
  Kpath_buf.Cache.check_invariants cache;
  (match !outcome with
   | Some (Ok n) -> Alcotest.(check int) "all moved" (32 * 4096) n
   | Some (Error reason) -> Alcotest.fail reason
   | None -> Alcotest.fail "splice never finished");
  Alcotest.(check bool) "the retry path actually ran" true (!retries > 0)

let test_abort_chardev_sink () =
  (* Abort while blocks are parked in a slow DAC's writer queue. *)
  with_machine ~file_bytes:(64 * 1024) (fun s ->
      let m = s.Experiments.machine in
      let cd =
        Chardev.create ~name:"slow" ~drain_rate:1000.0 ~fifo_capacity:4096
          ~engine:(Machine.engine m) ~intr:(Machine.intr m) ()
      in
      let src_fs, src_ino, _, _ = file_endpoints s in
      let d =
        Splice.start (Machine.splice_ctx m)
          ~src:(Endpoint.src_file src_fs src_ino ())
          ~dst:(Endpoint.Dst_chardev cd) ~size:Splice.eof ()
      in
      ignore
        (Engine.schedule_after (Machine.engine m) (Time.ms 100) (fun () ->
             Splice.abort d ~reason:"enough"));
      match Splice.wait d with
      | Error "enough" ->
        Alcotest.(check bool) "partial" true (Splice.bytes_moved d < 64 * 1024)
      | Error other -> Alcotest.failf "unexpected: %s" other
      | Ok _ -> Alcotest.fail "expected abort")

let test_concurrent_splices () =
  (* Two simultaneous splices over one shared buffer cache, different
     file pairs, both verified. *)
  let m = Machine.create () in
  let d0 = Machine.make_drive m ~name:"d0" ~kind:`Rz58 () in
  let d1 = Machine.make_drive m ~name:"d1" ~kind:`Rz58 () in
  let results = ref [] in
  let _p =
    Machine.spawn m ~name:"driver" (fun () ->
        let fs0 = Fs.mkfs ~cache:(Machine.cache m) (Machine.blkdev d0) ~ninodes:16 in
        let fs1 = Fs.mkfs ~cache:(Machine.cache m) (Machine.blkdev d1) ~ninodes:16 in
        let mkfile fs name seed blocks =
          let f = Fs.create_file fs name in
          let buf = Bytes.create 8192 in
          for i = 0 to blocks - 1 do
            Programs.fill_pattern buf ~file_off:(seed + (i * 8192));
            ignore (Fs.write fs f ~off:(i * 8192) ~len:8192 buf ~pos:0)
          done;
          f
        in
        let a = mkfile fs0 "/a" 0 24 in
        let b = mkfile fs0 "/b" 977 24 in
        let da = Fs.create_file fs1 "/ca" in
        let db = Fs.create_file fs1 "/cb" in
        Fs.sync fs0;
        Kpath_buf.Cache.invalidate_dev (Machine.cache m) (Machine.blkdev d0);
        let start src dst =
          Splice.start (Machine.splice_ctx m)
            ~src:(Endpoint.src_file fs0 src ())
            ~dst:(Endpoint.dst_file fs1 dst ())
            ~size:Splice.eof ()
        in
        let sa = start a da and sb = start b db in
        results := [ Splice.wait sa; Splice.wait sb ];
        (* Verify both destinations byte for byte. *)
        let check f seed blocks =
          let out = Bytes.create 8192 in
          let ok = ref true in
          for i = 0 to blocks - 1 do
            ignore (Fs.read fs1 f ~off:(i * 8192) ~len:8192 out ~pos:0);
            for j = 0 to 8191 do
              if Bytes.get out j <> Programs.pattern_byte (seed + (i * 8192) + j)
              then ok := false
            done
          done;
          !ok
        in
        Alcotest.(check bool) "A intact" true (check da 0 24);
        Alcotest.(check bool) "B intact" true (check db 977 24))
  in
  Machine.run m;
  Kpath_buf.Cache.check_invariants (Machine.cache m);
  match !results with
  | [ Ok na; Ok nb ] ->
    Alcotest.(check int) "A bytes" (24 * 8192) na;
    Alcotest.(check int) "B bytes" (24 * 8192) nb
  | _ -> Alcotest.fail "a splice failed"

let prop_splice_integrity =
  QCheck.Test.make ~name:"splice of random size/watermarks is byte-exact"
    ~count:25
    QCheck.(
      quad (int_range 1 (200 * 1024)) (int_range 1 4) (int_range 1 6)
        (int_range 1 6))
    (fun (size, lo, hi, burst) ->
      let config = Flowctl.make ~read_lo:lo ~write_hi:hi ~read_burst:burst in
      let s = Experiments.make_setup ~disk:`Ram ~file_bytes:(256 * 1024) () in
      Experiments.cold_caches s;
      let m = s.Experiments.machine in
      let verdict = ref false in
      let _p =
        Machine.spawn m ~name:"q" (fun () ->
            let src_fs, src_ino, dst_fs, dst_ino = file_endpoints s in
            let d =
              Splice.start (Machine.splice_ctx m)
                ~src:(Endpoint.src_file src_fs src_ino ())
                ~dst:(Endpoint.dst_file dst_fs dst_ino ())
                ~config ~size ()
            in
            (match Splice.wait d with
             | Ok n when n = size ->
               (* Read back and compare. *)
               let out = Bytes.create 8192 in
               let ok = ref true in
               let off = ref 0 in
               while !off < size do
                 let want = min 8192 (size - !off) in
                 let n = Fs.read dst_fs dst_ino ~off:!off ~len:want out ~pos:0 in
                 if n <> want then ok := false
                 else
                   for j = 0 to n - 1 do
                     if Bytes.get out j <> Programs.pattern_byte (!off + j) then
                       ok := false
                   done;
                 off := !off + want
               done;
               verdict :=
                 !ok
                 && Splice.peak_pending_reads d <= Flowctl.max_in_flight config
             | Ok _ | Error _ -> verdict := false))
      in
      Machine.run m;
      !verdict)

let suite =
  [
    Alcotest.test_case "whole-file integrity" `Quick test_whole_file_integrity;
    Alcotest.test_case "all disk types" `Quick test_data_verified_end_to_end;
    Alcotest.test_case "read-path verification" `Quick test_verify_via_read_path;
    Alcotest.test_case "partial size" `Quick test_partial_size;
    Alcotest.test_case "EOF size" `Quick test_eof_size_resolution;
    Alcotest.test_case "oversized clips" `Quick test_oversized_request_clips;
    Alcotest.test_case "zero size" `Quick test_zero_size_completes_immediately;
    Alcotest.test_case "watermark bounds" `Quick test_watermark_bounds;
    Alcotest.test_case "lockstep config" `Quick test_lockstep_config;
    Alcotest.test_case "completion callback" `Quick test_on_complete_fires_once;
    Alcotest.test_case "read error aborts" `Quick test_read_error_aborts_rig;
    Alcotest.test_case "write error aborts" `Quick test_write_error_aborts_rig;
    Alcotest.test_case "abort midway" `Quick test_abort_midway;
    Alcotest.test_case "sparse source rejected" `Quick test_sparse_source_rejected;
    Alcotest.test_case "block-aligned offsets" `Quick test_file_offsets;
    Alcotest.test_case "file to chardev" `Quick test_file_to_chardev;
    Alcotest.test_case "socket to socket" `Quick test_socket_to_socket;
    Alcotest.test_case "file to UDP socket" `Quick test_file_to_udp_socket;
    Alcotest.test_case "dgram release" `Quick test_release_detaches_dgram_source;
    Alcotest.test_case "framebuffer to socket" `Quick test_framebuffer_to_socket;
    Alcotest.test_case "recording splice" `Quick test_recording_splice;
    Alcotest.test_case "recording overruns" `Quick test_recording_overrun;
    Alcotest.test_case "recording EINVAL" `Quick test_recording_einval;
    Alcotest.test_case "unsupported pairs" `Quick test_unsupported_combinations;
    Alcotest.test_case "same-disk splice" `Quick test_same_disk_splice;
    Alcotest.test_case "stats counted" `Quick test_splice_stats_counted;
    Alcotest.test_case "concurrent splices" `Quick test_concurrent_splices;
    Alcotest.test_case "buffer-shortage retry" `Quick test_buffer_shortage_retry;
    Alcotest.test_case "abort with chardev sink" `Quick test_abort_chardev_sink;
    Util.qcheck prop_splice_integrity;
  ]
