open Kpath_sim

type error = Io_error of string

let pp_error fmt (Io_error msg) = Format.fprintf fmt "I/O error: %s" msg

type req = {
  r_blkno : int;
  r_data : bytes;
  r_count : int;
  r_write : bool;
  r_done : error option -> unit;
}

type intr = service:Time.span -> (unit -> unit) -> unit

type t = {
  dv_name : string;
  dv_id : int;
  dv_block_size : int;
  dv_nblocks : int;
  dv_strategy : req -> unit;
  dv_pending : unit -> int;
  dv_stats : Stats.t;
}

(* Atomic: device ids must stay unique when simulation shards create
   their devices from concurrent domains. *)
let id_counter = Atomic.make 0

let next_id () = Atomic.fetch_and_add id_counter 1 + 1

let check_req t req =
  if req.r_count <= 0 then invalid_arg "Blkdev: r_count <= 0";
  if req.r_count mod t.dv_block_size <> 0 then
    invalid_arg "Blkdev: r_count not a whole number of blocks";
  if req.r_count > Bytes.length req.r_data then
    invalid_arg "Blkdev: r_count exceeds data area";
  let nblk = req.r_count / t.dv_block_size in
  if req.r_blkno < 0 || req.r_blkno + nblk > t.dv_nblocks then
    invalid_arg
      (Printf.sprintf "Blkdev %s: block range [%d,%d) out of [0,%d)" t.dv_name
         req.r_blkno (req.r_blkno + nblk) t.dv_nblocks)

let blocks_of_req t req = req.r_count / t.dv_block_size
