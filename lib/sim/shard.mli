(** Domain-sharded execution with a deterministic merge.

    Partition independent sub-simulations over OCaml 5 domains and join
    their sorted outputs with a k-way merge under a caller-supplied
    total order — results are a pure function of the inputs, identical
    at every domain count. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val run : domains:int -> tasks:int -> (int -> 'a) -> 'a list
(** [run ~domains ~tasks f] evaluates [f 0 .. f (tasks-1)], spread
    round-robin over [min domains tasks] domains ([domains = 1] runs
    everything in the calling domain), and returns the results in task
    order. Each task must be self-contained: its own engine and state,
    no mutable sharing across tasks (see kpath-verify's domain-shared
    rule). An exception in any task is re-raised after all domains are
    joined. *)

val merge : cmp:('a -> 'a -> int) -> 'a array list -> 'a array
(** [merge ~cmp parts] k-way-merges per-shard arrays, each already
    sorted under [cmp], into one sorted array. Ties resolve to the
    lowest shard index, so the result is deterministic whatever
    produced the parts. *)
