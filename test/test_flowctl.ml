open Kpath_core

let test_defaults_match_paper () =
  Alcotest.(check int) "read watermark" 3 Flowctl.default.Flowctl.read_lo;
  Alcotest.(check int) "write watermark" 5 Flowctl.default.Flowctl.write_hi;
  Alcotest.(check int) "burst" 5 Flowctl.default.Flowctl.read_burst

let test_reads_to_issue () =
  let c = Flowctl.default in
  Alcotest.(check int) "both low" 5
    (Flowctl.reads_to_issue c ~pending_reads:0 ~pending_writes:0);
  Alcotest.(check int) "reads at watermark" 0
    (Flowctl.reads_to_issue c ~pending_reads:3 ~pending_writes:0);
  Alcotest.(check int) "writes at watermark" 0
    (Flowctl.reads_to_issue c ~pending_reads:0 ~pending_writes:5);
  Alcotest.(check int) "just below both" 5
    (Flowctl.reads_to_issue c ~pending_reads:2 ~pending_writes:4)

let test_lockstep () =
  let c = Flowctl.lockstep in
  Alcotest.(check int) "single" 1
    (Flowctl.reads_to_issue c ~pending_reads:0 ~pending_writes:0);
  Alcotest.(check int) "gated" 0
    (Flowctl.reads_to_issue c ~pending_reads:1 ~pending_writes:0);
  Alcotest.(check int) "max in flight" 1 (Flowctl.max_in_flight c)

let test_max_in_flight () =
  Alcotest.(check int) "paper config bound" 7
    (Flowctl.max_in_flight Flowctl.default)

let test_validation () =
  Alcotest.check_raises "zero burst"
    (Invalid_argument "Flowctl.make: watermarks must be positive") (fun () ->
      ignore (Flowctl.make ~read_lo:1 ~write_hi:1 ~read_burst:0))

let prop_never_negative =
  QCheck.Test.make ~name:"reads_to_issue is 0 or burst" ~count:300
    QCheck.(
      quad (int_range 1 10) (int_range 1 10) (int_range 1 10)
        (pair (int_bound 20) (int_bound 20)))
    (fun (lo, hi, burst, (r, w)) ->
      let c = Flowctl.make ~read_lo:lo ~write_hi:hi ~read_burst:burst in
      let n = Flowctl.reads_to_issue c ~pending_reads:r ~pending_writes:w in
      n = 0 || n = burst)

(* Drive the watermark policy through a random schedule of issue /
   read-completion / write-completion events, tracking what a splice
   pump would track. The in-flight read count must never exceed
   [max_in_flight], whatever the completion order. *)
type sched_op = Issue | Read_done | Write_done

let op_gen =
  QCheck.Gen.map
    (function 0 -> Issue | 1 -> Read_done | _ -> Write_done)
    (QCheck.Gen.int_range 0 2)

let schedule_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ""
        (List.map (function Issue -> "I" | Read_done -> "R" | Write_done -> "W") ops))
    (QCheck.Gen.list_size (QCheck.Gen.int_range 1 200) op_gen)

let run_schedule c ops ~invariant =
  let r = ref 0 and w = ref 0 in
  List.iter
    (fun op ->
      (match op with
       | Issue ->
         let n = Flowctl.reads_to_issue c ~pending_reads:!r ~pending_writes:!w in
         r := !r + n
       | Read_done ->
         (* A completed read becomes a pending write (the pump hands the
            block to the write side). *)
         if !r > 0 then begin
           decr r;
           incr w
         end
       | Write_done -> if !w > 0 then decr w);
      invariant !r !w)
    ops;
  true

let prop_in_flight_bounded =
  QCheck.Test.make ~name:"in-flight reads never exceed max_in_flight" ~count:500
    QCheck.(
      pair
        (triple (int_range 1 8) (int_range 1 8) (int_range 1 8))
        schedule_arb)
    (fun ((lo, hi, burst), ops) ->
      let c = Flowctl.make ~read_lo:lo ~write_hi:hi ~read_burst:burst in
      let bound = Flowctl.max_in_flight c in
      run_schedule c ops ~invariant:(fun r _ ->
          if r > bound then
            QCheck.Test.fail_reportf "%d reads in flight, bound %d" r bound))

let prop_lockstep_one_outstanding =
  QCheck.Test.make ~name:"lockstep never has more than one block in flight"
    ~count:500 schedule_arb (fun ops ->
      run_schedule Flowctl.lockstep ops ~invariant:(fun r w ->
          if r + w > 1 then
            QCheck.Test.fail_reportf "%d blocks outstanding under lockstep"
              (r + w)))

let suite =
  [
    Alcotest.test_case "paper defaults" `Quick test_defaults_match_paper;
    Alcotest.test_case "issue policy" `Quick test_reads_to_issue;
    Alcotest.test_case "lockstep" `Quick test_lockstep;
    Alcotest.test_case "max in flight" `Quick test_max_in_flight;
    Alcotest.test_case "validation" `Quick test_validation;
    Util.qcheck prop_never_negative;
    Util.qcheck prop_in_flight_bounded;
    Util.qcheck prop_lockstep_one_outstanding;
  ]
