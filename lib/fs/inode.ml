type ftype = Free | Regular | Directory

type t = {
  ino : int;
  mutable ftype : ftype;
  mutable nlink : int;
  mutable size : int;
  direct : int array;
  mutable single : int;
  mutable double : int;
  mutable dirty : bool;
  mutable locked : bool;
  mutable lock_waiters : (unit -> unit) list;
  mutable last_read_lblk : int;
}

let make ~ino =
  {
    ino;
    ftype = Free;
    nlink = 0;
    size = 0;
    direct = Array.make Layout.ndirect 0;
    single = 0;
    double = 0;
    dirty = false;
    locked = false;
    lock_waiters = [];
    last_read_lblk = -2;
  }

let reset t ftype =
  t.ftype <- ftype;
  t.nlink <- 1;
  t.size <- 0;
  Array.fill t.direct 0 Layout.ndirect 0;
  t.single <- 0;
  t.double <- 0;
  t.dirty <- true;
  t.last_read_lblk <- -2

let ftype_code = function Free -> 0 | Regular -> 1 | Directory -> 2

let ftype_of_code = function
  | 0 -> Free
  | 1 -> Regular
  | 2 -> Directory
  | n -> Fs_error.raise_err (Fs_error.Einval (Printf.sprintf "bad ftype %d" n))

let put32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let get32 b off = Int32.to_int (Bytes.get_int32_le b off)

let serialize t b off =
  Bytes.fill b off Layout.inode_size '\000';
  put32 b off (ftype_code t.ftype);
  put32 b (off + 4) t.nlink;
  Bytes.set_int64_le b (off + 8) (Int64.of_int t.size);
  for i = 0 to Layout.ndirect - 1 do
    put32 b (off + 16 + (4 * i)) t.direct.(i)
  done;
  put32 b (off + 16 + (4 * Layout.ndirect)) t.single;
  put32 b (off + 20 + (4 * Layout.ndirect)) t.double

let deserialize ~ino b off =
  let t = make ~ino in
  t.ftype <- ftype_of_code (get32 b off);
  t.nlink <- get32 b (off + 4);
  t.size <- Int64.to_int (Bytes.get_int64_le b (off + 8));
  for i = 0 to Layout.ndirect - 1 do
    t.direct.(i) <- get32 b (off + 16 + (4 * i))
  done;
  t.single <- get32 b (off + 16 + (4 * Layout.ndirect));
  t.double <- get32 b (off + 20 + (4 * Layout.ndirect));
  t

let pp fmt t =
  Format.fprintf fmt "ino%d %s nlink=%d size=%d" t.ino
    (match t.ftype with Free -> "free" | Regular -> "reg" | Directory -> "dir")
    t.nlink t.size
