(* Video server: stream a file to a network client with file-to-socket
   splices — the delivery half of the paper's multimedia story (§5.1
   implemented framebuffer/file sources feeding sockets "for sending
   graphical images and video").

   A server machine paces bounded splices of a movie file straight from
   its filesystem into a UDP socket; a stub client reassembles the
   stream and verifies every byte. Compare the server CPU against a
   read/sendto loop doing the same job.

   Run with: dune exec examples/video_server.exe *)

open Kpath_sim
open Kpath_net
open Kpath_kernel
open Kpath_workloads

let movie_bytes = 2 * 1024 * 1024
let chunk = 64 * 1024 (* one paced burst *)
let rate = 1.5e6 (* 1.5 MB/s: generous MPEG-1-era video *)

let free_intr ~service:_ fn = fn ()

let run ~mode =
  let m = Machine.create () in
  let drive = Machine.make_drive m ~name:"rz58-0" ~kind:`Rz58 () in
  let net = Netif.create_net ~bandwidth:2.5e6 (Machine.engine m) in
  let server_if = Netif.attach net ~name:"server" ~intr:(Machine.intr m) () in
  let client_if = Netif.attach net ~name:"client" ~intr:free_intr () in
  (* Stub client: reassemble and verify against the pattern. *)
  let client = Udp.create client_if ~port:9 ~rcvbuf:(256 * 1024) () in
  let received = ref 0 and corrupt = ref 0 in
  Udp.set_upcall client
    (Some
       (fun dg ->
         let payload = dg.Udp.d_payload in
         for i = 0 to Bytes.length payload - 1 do
           if Bytes.get payload i <> Programs.pattern_byte (!received + i) then
             incr corrupt
         done;
         received := !received + Bytes.length payload));
  let client_addr = Udp.addr client in
  let _server =
    Machine.spawn m ~name:"video-server" (fun () ->
        let fs =
          Kpath_fs.Fs.mkfs ~cache:(Machine.cache m) (Machine.blkdev drive)
            ~ninodes:16
        in
        Machine.mount m "/" fs;
        let env = Syscall.make_env m in
        (* Produce the movie. *)
        let fd = Syscall.openf env "/movie" [ Syscall.O_CREAT; Syscall.O_WRONLY ] in
        let buf = Bytes.create 65536 in
        let rec fill off =
          if off < movie_bytes then begin
            Programs.fill_pattern buf ~file_off:off;
            ignore (Syscall.write env fd buf ~pos:0 ~len:65536);
            fill (off + 65536)
          end
        in
        fill 0;
        Syscall.fsync env fd;
        Syscall.close env fd;
        Kpath_buf.Cache.invalidate_dev (Machine.cache m) (Machine.blkdev drive);
        (* Serve it, paced to the video rate. *)
        let src = Syscall.openf env "/movie" [ Syscall.O_RDONLY ] in
        let sock = Syscall.socket env server_if ~port:5 () in
        Syscall.connect env sock client_addr;
        let started = Machine.now m in
        let pace sent =
          let target =
            Time.add started (Time.span_of_bytes ~bytes_per_sec:rate sent)
          in
          let now = Machine.now m in
          if Time.(target > now) then
            Kpath_proc.Sched.sleep (Machine.sched m) (Time.diff target now)
        in
        (match mode with
         | `Splice ->
           let rec serve sent =
             if sent < movie_bytes then begin
               let n =
                 Syscall.splice env ~src ~dst:sock
                   (min chunk (movie_bytes - sent))
               in
               pace (sent + n);
               serve (sent + n)
             end
           in
           serve 0
         | `Process ->
           let dgram = Bytes.create 8192 in
           let rec serve sent =
             if sent < movie_bytes then begin
               let n = Syscall.read env src dgram ~pos:0 ~len:8192 in
               if n > 0 then begin
                 ignore (Syscall.write env sock dgram ~pos:0 ~len:n);
                 pace (sent + n);
                 serve (sent + n)
               end
             end
           in
           serve 0);
        Syscall.close env src;
        Syscall.close env sock)
  in
  Machine.run m;
  let cpu = Kpath_proc.Sched.cpu (Machine.sched m) in
  Format.printf "%-8s server: %d/%d bytes delivered, %d corrupt, CPU %a@."
    (match mode with `Splice -> "splice" | `Process -> "process")
    !received movie_bytes !corrupt Kpath_proc.Cpu.pp cpu

let () =
  Format.printf "streaming a %d MB movie at %.1f MB/s to a network client:@."
    (movie_bytes / 1024 / 1024)
    (rate /. 1e6);
  run ~mode:`Process;
  run ~mode:`Splice
