(** Discrete-event simulation engine.

    The engine owns the simulated clock and a queue of pending events.
    Events scheduled for the same instant fire in scheduling order
    (FIFO), which makes every simulation fully deterministic. Event
    handles support O(1) cancellation (lazily removed from the queue).

    Two interchangeable queue backends are provided; both produce
    event-for-event identical executions:

    - [`Heap]: a binary heap keyed on (time, seq) — O(log n) per event.
    - [`Wheel]: a hierarchical timing wheel (Varghese & Lauck) keyed on
      the callout tick, with far-future events spilling to an overflow
      heap — O(1) amortised per event for the timeout-dense workloads
      the splice paths generate.

    Event records are pooled on a freelist and handles are immediate
    integers, so steady-state scheduling performs no OCaml heap
    allocation under either backend. *)

type t
(** An engine: a clock plus an event queue. *)

type handle
(** A scheduled event, usable for cancellation. Handles are immediate
    (unboxed) values carrying a generation stamp: operations on a
    handle whose event finished long ago are safe no-ops. *)

type backend = [ `Heap | `Wheel ]

val create : ?backend:backend -> ?tick:Time.span -> unit -> t
(** A fresh engine with the clock at {!Time.zero} and no events.
    [backend] selects the queue implementation (default [`Heap]);
    [tick] is the wheel's slot granularity (default 1 ms — pass the
    callout tick so level 0 resolves one callout slot per tick).
    Raises [Invalid_argument] if [tick <= 0]. *)

val backend : t -> backend
(** Which queue implementation this engine runs on. *)

val now : t -> Time.t
(** Current simulated time. *)

val pending : t -> int
(** Number of scheduled, not-yet-cancelled events. *)

val schedule : t -> at:Time.t -> (unit -> unit) -> handle
(** [schedule t ~at fn] arranges for [fn ()] to run when the clock
    reaches [at]. Raises [Invalid_argument] if [at] is in the past. *)

val schedule_after : t -> Time.span -> (unit -> unit) -> handle
(** [schedule_after t d fn] is [schedule t ~at:(Time.add (now t) d) fn]. *)

val cancel : t -> handle -> unit
(** [cancel t h] prevents the event from firing. Cancelling an event that
    already fired (or was already cancelled) is a no-op. *)

val cancelled : t -> handle -> bool
(** [cancelled t h] is [true] iff [h] was cancelled before firing.
    Exact until the handle's pool slot is recycled by later scheduling;
    a recycled handle reports [false]. *)

val fired : t -> handle -> bool
(** [fired t h] is [true] iff the event's callback has run. Same
    recycling caveat as {!cancelled}. *)

val run : ?until:Time.t -> t -> unit
(** [run t] processes events in time order until the queue is empty, or —
    when [until] is given — until the next event lies strictly beyond
    [until], in which case the clock is advanced to exactly [until].
    Callbacks may schedule further events. *)

val step : t -> bool
(** [step t] processes the single next event. Returns [false] when the
    queue was empty (the clock does not move). *)

exception Stopped
(** Raised by a callback to abort {!run} early; the clock stays at the
    aborting event's time and remaining events stay queued. *)

val stop : unit -> 'a
(** [stop ()] raises {!Stopped}; sugar for use inside callbacks. *)

(** {1 Introspection} *)

val events_fired : t -> int
(** Total callbacks run since creation — the numerator of events/sec. *)

val pool_size : t -> int
(** Event records ever allocated (high-water mark of concurrent
    events, including cancelled tombstones awaiting collection). *)

val pool_free : t -> int
(** Records currently parked on the freelist. *)
