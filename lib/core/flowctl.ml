type config = { read_lo : int; write_hi : int; read_burst : int }

let make ~read_lo ~write_hi ~read_burst =
  if read_lo < 1 || write_hi < 1 || read_burst < 1 then
    invalid_arg "Flowctl.make: watermarks must be positive";
  { read_lo; write_hi; read_burst }

let default = { read_lo = 3; write_hi = 5; read_burst = 5 }

let lockstep = { read_lo = 1; write_hi = 1; read_burst = 1 }

let reads_to_issue cfg ~pending_reads ~pending_writes =
  if pending_reads < cfg.read_lo && pending_writes < cfg.write_hi then
    cfg.read_burst
  else 0

let max_in_flight cfg = cfg.read_lo - 1 + cfg.read_burst
