(** Per-process file descriptor tables. *)

open Kpath_dev
open Kpath_fs
open Kpath_net

type file_handle = {
  fs : Fs.t;
  ino : Inode.t;
  mutable offset : int;
  readable : bool;
  writable : bool;
}

type socket_handle = { sock : Udp.t; mutable peer : Udp.addr option }

type kind =
  | File of file_handle
  | Chardev of Chardev.t
  | Socket of socket_handle
  | Tcp of Tcp.conn
  | Framebuffer of Framebuffer.t

type openfile = {
  of_kind : kind;
  mutable of_fasync : bool;  (** FASYNC set via [fcntl] *)
}

type table
(** A descriptor table. *)

val create : unit -> table
(** An empty table; descriptors are allocated from 3 upwards (0–2
    reserved in the UNIX spirit). *)

val alloc : table -> kind -> int
(** Install an open file; returns its descriptor. *)

val get : table -> int -> openfile
(** Raises [Errno.Unix_error (EBADF, _)] for unknown descriptors. *)

val close : table -> int -> openfile
(** Remove and return the entry (caller finishes teardown). Raises
    [EBADF] when absent. *)

val open_count : table -> int

val all_fds : table -> int list
(** Currently open descriptors, ascending. *)
