open Kpath_sim
open Kpath_proc

let test_pending_and_take () =
  let hits = ref [] in
  Util.run_in_process_with (fun _ sched ->
      let self = Process.self () in
      Signal.handle self Signal.sigio (fun () -> hits := "io" :: !hits);
      Signal.handle self Signal.sigalrm (fun () -> hits := "alrm" :: !hits);
      Signal.deliver sched self Signal.sigio;
      Signal.deliver sched self Signal.sigalrm;
      Alcotest.(check (list int)) "pending set"
        [ Signal.sigalrm; Signal.sigio ]
        (Signal.pending self);
      Signal.take_pending self;
      Alcotest.(check (list int)) "cleared" [] (Signal.pending self));
  Alcotest.(check (list string)) "both handlers ran, ascending signo"
    [ "alrm"; "io" ] (List.rev !hits)

let test_unhandled_discarded () =
  Util.run_in_process_with (fun _ sched ->
      let self = Process.self () in
      Signal.deliver sched self Signal.sigint;
      Signal.take_pending self;
      Alcotest.(check (list int)) "discarded" [] (Signal.pending self))

let test_handler_replacement_and_ignore () =
  let hits = ref 0 in
  Util.run_in_process_with (fun _ sched ->
      let self = Process.self () in
      Signal.handle self Signal.sigio (fun () -> hits := 100);
      Signal.handle self Signal.sigio (fun () -> incr hits);
      Signal.deliver sched self Signal.sigio;
      Signal.take_pending self;
      Signal.ignore_signal self Signal.sigio;
      Signal.deliver sched self Signal.sigio;
      Signal.take_pending self);
  Alcotest.(check int) "replacement won; ignore dropped" 1 !hits

let test_deliver_wakes_interruptible_sleep () =
  let e = Engine.create () in
  let sched = Sched.create e in
  let full = ref None in
  let woke_at = ref Time.zero in
  let p =
    Sched.spawn sched ~name:"sleeper" (fun () ->
        full := Some (Sched.sleep_interruptible sched (Time.sec 100));
        woke_at := Engine.now e)
  in
  ignore
    (Engine.schedule e ~at:(Time.ms 3) (fun () ->
         Signal.deliver sched p Signal.sigio));
  Engine.run e;
  Sched.check_deadlock sched;
  Alcotest.(check (option bool)) "interrupted early" (Some false) !full;
  Alcotest.(check bool) "woke at delivery" true
    Time.(!woke_at >= Time.ms 3 && !woke_at < Time.sec 1);
  (* The stale 100 s timer was cancelled, so the run ends promptly. *)
  Alcotest.(check bool) "timer cancelled" true Time.(Engine.now e < Time.sec 1)

let test_deliver_does_not_wake_uninterruptible () =
  let e = Engine.create () in
  let sched = Sched.create e in
  let woke_at = ref Time.zero in
  let p =
    Sched.spawn sched ~name:"sleeper" (fun () ->
        Sched.sleep sched (Time.ms 50);
        woke_at := Engine.now e)
  in
  ignore
    (Engine.schedule e ~at:(Time.ms 1) (fun () ->
         Signal.deliver sched p Signal.sigio));
  Engine.run e;
  Alcotest.(check bool) "slept through" true Time.(!woke_at >= Time.ms 50);
  Alcotest.(check (list int)) "still pending" [ Signal.sigio ] (Signal.pending p)

let test_pause_wakes_on_signal () =
  let e = Engine.create () in
  let sched = Sched.create e in
  let resumed = ref Time.zero in
  let p =
    Sched.spawn sched ~name:"pauser" (fun () ->
        Sched.pause sched;
        resumed := Engine.now e)
  in
  ignore
    (Engine.schedule e ~at:(Time.ms 9) (fun () ->
         Signal.deliver sched p Signal.sigalrm));
  Engine.run e;
  Sched.check_deadlock sched;
  Alcotest.(check bool) "resumed at delivery" true Time.(!resumed >= Time.ms 9)

let test_deliver_to_zombie_noop () =
  let e = Engine.create () in
  let sched = Sched.create e in
  let p = Sched.spawn sched ~name:"gone" (fun () -> ()) in
  Engine.run e;
  Signal.deliver sched p Signal.sigio;
  Alcotest.(check (list int)) "nothing pending" [] (Signal.pending p)

let suite =
  [
    Alcotest.test_case "pending and take" `Quick test_pending_and_take;
    Alcotest.test_case "unhandled discarded" `Quick test_unhandled_discarded;
    Alcotest.test_case "replace and ignore" `Quick test_handler_replacement_and_ignore;
    Alcotest.test_case "wakes interruptible sleep" `Quick test_deliver_wakes_interruptible_sleep;
    Alcotest.test_case "uninterruptible sleeps through" `Quick test_deliver_does_not_wake_uninterruptible;
    Alcotest.test_case "pause" `Quick test_pause_wakes_on_signal;
    Alcotest.test_case "zombie delivery no-op" `Quick test_deliver_to_zombie_noop;
  ]
