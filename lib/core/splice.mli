(** splice() — in-kernel data paths between I/O objects.

    The paper's contribution: move data between two I/O objects entirely
    inside the kernel, asynchronously, with no user-space buffer and no
    per-block process context. For a file-to-file splice the
    implementation follows §5 exactly:

    + setup (process context): determine the size from the source inode,
      allocate a splice descriptor, build the complete physical block
      tables of source and destination by successive [bmap] calls (the
      destination through the special allocating bmap that skips
      zero-fill delayed writes), then return to the caller;
    + read side: a non-blocking [bread] schedules a device read whose
      [B_CALL] handler is the read handler;
    + the read handler schedules the write side at the head of the
      callout list, decoupling source and destination devices;
    + the write side takes a bare buffer header, points its data area at
      the read buffer's data (no copy), installs the write handler and
      issues an asynchronous write;
    + the write handler releases both buffers and applies rate-based
      flow control: when pending reads and writes are below their
      watermarks, it issues a burst of new reads;
    + when the last block completes the descriptor fires its completion
      callbacks (the syscall layer turns these into SIGIO for [FASYNC]
      splices or a wakeup for synchronous ones).

    Datagram (socket-to-socket), framebuffer-to-socket and
    file-to-character-device splices are pumped analogously; see
    {!start} for the supported endpoint matrix. *)

open Kpath_sim
open Kpath_buf

type ctx
(** Shared splice machinery: buffer cache, callout list, CPU-interrupt
    injection and cost parameters. One per machine. *)

val make_ctx :
  engine:Engine.t ->
  callout:Callout.t ->
  cache:Cache.t ->
  intr:(service:Time.span -> (unit -> unit) -> unit) ->
  ?handler_cost:Time.span ->
  ?trace:Trace.t ->
  unit ->
  ctx
(** [make_ctx ()] wires the splice machinery. [handler_cost] is the CPU
    charged per read/write handler activation (default 25 us — a few
    hundred R3000 instructions). Pass [trace] to record per-block events
    under the ["splice"] category. *)

val ctx_stats : ctx -> Stats.t
(** Machinery-wide counters: [splice.started], [splice.reads_issued],
    [splice.writes_issued], [splice.retries], [splice.completed],
    [splice.aborted]; plus the [splice.block_latency_us] histogram of
    read-issue to write-completion times per block. *)

type state =
  | Running
  | Completed
  | Aborted of string  (** I/O error or caller interruption *)

type t
(** A splice descriptor. *)

val eof : int
(** Size sentinel: splice until end-of-file (files, framebuffer) or until
    aborted (sockets). *)

val start :
  ctx ->
  src:Endpoint.source ->
  dst:Endpoint.sink ->
  ?config:Flowctl.config ->
  size:int ->
  unit ->
  t
(** [start ctx ~src ~dst ~size ()] sets up and launches a splice of
    [size] bytes ({!eof} for end-of-file semantics). Process context
    (the block maps are built here); returns as soon as the transfer is
    self-sustaining.

    Supported endpoint pairs: file→file, file→chardev, file→socket
    (UDP or TCP), socket→socket, socket→chardev, framebuffer→socket,
    and input-device→file (recording; bounded size required, with
    real-time overrun semantics — see {!overruns}). Anything else
    raises [Invalid_argument]. File offsets must be block-aligned
    (enforced by {!Endpoint}); sparse sources and same-file overlapping
    ranges raise [Fs_error.Error (Einval _)]; destination allocation may
    raise [Fs_error.Error Enospc]. *)

val state : t -> state

val id : t -> int

val bytes_moved : t -> int
(** Bytes fully transferred (source read, sink accepted). *)

val total_bytes : t -> int
(** The resolved transfer size; [max_int] for unbounded splices. *)

val pending_reads : t -> int

val pending_writes : t -> int

val peak_pending_reads : t -> int
(** High-water mark of in-flight reads — bounded by
    [Flowctl.max_in_flight] (tested invariant). *)

val peak_pending_writes : t -> int

val overruns : t -> int
(** Recording splices only: bytes dropped because the sink could not
    keep up with the device (pending writes at the watermark when a
    block filled). *)

val on_complete : t -> (t -> unit) -> unit
(** Register a callback fired (in interrupt context) exactly once, when
    the splice completes or aborts. Fires immediately if already done. *)

val wait : t -> (int, string) result
(** Block the calling process until the splice finishes; [Ok bytes] or
    [Error reason] with the abort reason. Process context. *)

val abort : t -> reason:string -> unit
(** Interrupt the transfer; in-flight blocks are drained, then the
    descriptor completes as [Aborted]. Idempotent. *)

val release : t -> unit
(** Detach a finished datagram/framebuffer splice from its source
    (uninstall upcalls). File splices release resources automatically;
    calling this on them is a no-op. *)

(** {1 Introspection for tests} *)

val inflight_buffers : t -> Buf.t list
(** Source-side buffers currently held (read done, write not yet
    complete). *)
