open Kpath_sim

let test_empty () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let test_ordering () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  Alcotest.(check int) "length" 7 (Heap.length h);
  let drained = List.init 7 (fun _ -> Heap.pop_exn h) in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] drained;
  Alcotest.(check bool) "emptied" true (Heap.is_empty h)

let test_interleaved () =
  let h = Heap.create ~cmp:Int.compare in
  Heap.push h 10;
  Heap.push h 5;
  Alcotest.(check (option int)) "min" (Some 5) (Heap.pop h);
  Heap.push h 1;
  Alcotest.(check (option int)) "new min" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "rest" (Some 10) (Heap.pop h)

let test_clear_iter () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  let sum = ref 0 in
  Heap.iter (fun x -> sum := !sum + x) h;
  Alcotest.(check int) "iter visits all" 6 !sum;
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:300
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) xs;
      let out = List.init (List.length xs) (fun _ -> Heap.pop_exn h) in
      out = List.sort Int.compare xs)

let prop_heap_min_invariant =
  QCheck.Test.make ~name:"peek is always the minimum" ~count:300
    QCheck.(list_of_size Gen.(1 -- 50) int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) xs;
      Heap.peek h = Some (List.fold_left min (List.hd xs) xs))

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "drains sorted" `Quick test_ordering;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    Alcotest.test_case "clear and iter" `Quick test_clear_iter;
    Util.qcheck prop_heap_sorts;
    Util.qcheck prop_heap_min_invariant;
  ]
