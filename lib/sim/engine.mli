(** Discrete-event simulation engine.

    The engine owns the simulated clock and a queue of pending events.
    Events scheduled for the same instant fire in scheduling order
    (FIFO), which makes every simulation fully deterministic. Event
    handles support O(1) cancellation (lazily removed from the queue). *)

type t
(** An engine: a clock plus an event queue. *)

type handle
(** A scheduled event, usable for cancellation. *)

val create : unit -> t
(** A fresh engine with the clock at {!Time.zero} and no events. *)

val now : t -> Time.t
(** Current simulated time. *)

val pending : t -> int
(** Number of scheduled, not-yet-cancelled events. *)

val schedule : t -> at:Time.t -> (unit -> unit) -> handle
(** [schedule t ~at fn] arranges for [fn ()] to run when the clock
    reaches [at]. Raises [Invalid_argument] if [at] is in the past. *)

val schedule_after : t -> Time.span -> (unit -> unit) -> handle
(** [schedule_after t d fn] is [schedule t ~at:(Time.add (now t) d) fn]. *)

val cancel : t -> handle -> unit
(** [cancel t h] prevents the event from firing. Cancelling an event that
    already fired (or was already cancelled) is a no-op. *)

val cancelled : handle -> bool
(** [cancelled h] is [true] iff [h] was cancelled before firing. *)

val fired : handle -> bool
(** [fired h] is [true] iff the event's callback has run. *)

val run : ?until:Time.t -> t -> unit
(** [run t] processes events in time order until the queue is empty, or —
    when [until] is given — until the next event lies strictly beyond
    [until], in which case the clock is advanced to exactly [until].
    Callbacks may schedule further events. *)

val step : t -> bool
(** [step t] processes the single next event. Returns [false] when the
    queue was empty (the clock does not move). *)

exception Stopped
(** Raised by a callback to abort {!run} early; the clock stays at the
    aborting event's time and remaining events stay queued. *)

val stop : unit -> 'a
(** [stop ()] raises {!Stopped}; sugar for use inside callbacks. *)
