(* Differential suite: the closure-compiled VM backend must be
   observationally identical to the interpreter — same verdict, same
   r_steps (CPU accounting), same emit sequence, same payload bytes,
   same copy-on-write identity on r_data — over the canned samples,
   the fixture ok-corpus, hand-picked fault cases and random accepted
   programs. CI runs this suite on its own as the vm-backend-parity
   step. *)

module Vm = Kpath_vm.Vm
module Compile = Kpath_vm.Compile
module Asm = Kpath_vm.Asm
module Samples = Kpath_vm.Samples

let pp_verdict fmt = function
  | Vm.Pass -> Format.fprintf fmt "Pass"
  | Vm.Drop -> Format.fprintf fmt "Drop"
  | Vm.Redirect k -> Format.fprintf fmt "Redirect %d" k
  | Vm.Fault m -> Format.fprintf fmt "Fault %S" m

let verdict = Alcotest.testable pp_verdict ( = )

(* Run [p] under the interpreter and THREE compiled variants — the
   full compiler, the idiom-free one (generic fused paths only) and
   the checks-kept one (no range-analysis elision) — over the same
   block sequence (one persistent state each, so scratch carry-over is
   compared too) and assert every observable of every run matches the
   interpreter's. The no-idiom variant is what every idiom falls back
   to, and the checked variant is what elision claims to be equivalent
   to, so any divergence between the four is a compiler bug by
   construction. [what] names the program in failures. *)
let assert_parity ?(what = "prog") p blocks =
  let ist = Vm.new_state p in
  let variants =
    List.map
      (fun (vname, code) -> (vname, code, Compile.new_state code))
      [
        ("compiled", Compile.compile p);
        ("compiled[no-idiom]", Compile.compile ~idioms:false p);
        ("compiled[checked]", Compile.compile ~idioms:false ~elide:false p);
      ]
  in
  List.iteri
    (fun i (data, lblk) ->
      let data = Bytes.of_string data in
      let len = Bytes.length data in
      let iemits = ref [] in
      let ir =
        Vm.exec p ist ~data ~len ~lblk ~emit:(fun k v ->
            iemits := (k, v) :: !iemits)
      in
      List.iter
        (fun (vname, code, cst) ->
          let tag fmt =
            Printf.ksprintf
              (fun s -> s)
              ("%s block %d [%s]: " ^^ fmt)
              what i vname
          in
          let cemits = ref [] in
          let cr =
            Compile.exec code cst ~data ~len ~lblk ~emit:(fun k v ->
                cemits := (k, v) :: !cemits)
          in
          Alcotest.check verdict (tag "verdict") ir.Vm.r_verdict
            cr.Vm.r_verdict;
          Alcotest.(check int) (tag "steps") ir.Vm.r_steps cr.Vm.r_steps;
          Alcotest.(check (list (pair int int)))
            (tag "emits") (List.rev !iemits) (List.rev !cemits);
          Alcotest.(check string)
            (tag "payload bytes")
            (Bytes.to_string ir.Vm.r_data)
            (Bytes.to_string cr.Vm.r_data);
          (* Copy-on-write contract: both backends either alias the
             input buffer or both cloned it. *)
          Alcotest.(check bool)
            (tag "r_data aliases input")
            (ir.Vm.r_data == data) (cr.Vm.r_data == data))
        variants)
    blocks

let block n seed =
  String.init n (fun i -> Char.chr ((seed + (i * 31) + (i / 7)) land 0xff))

let standard_blocks =
  [ (block 512 3, 0); (block 64 91, 1); ("", 2); (block 300 17, 12345) ]

(* {1 Samples and fixtures} *)

let test_samples () =
  List.iter
    (fun (what, p) -> assert_parity ~what p standard_blocks)
    [
      ("checksum", Samples.checksum ());
      ("tee_hash", Samples.tee_hash ());
      ("dropper", Samples.dropper ~modulo:3);
      ("router", Samples.router ~fanout:4);
      ("xor_mask", Samples.xor_mask ~key:0x5a);
      ("oob_probe", Samples.oob_probe ());
      ("xor_stream", Samples.xor_stream ~key:0x6b);
      ("histogram", Samples.histogram ());
      ("dedup_chunks", Samples.dedup_chunks ~bits:4);
      ("bounded_copy", Samples.bounded_copy ());
    ]

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_ok_corpus () =
  let dir = "vm_fixtures" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".kvm")
    |> List.sort String.compare
  in
  let ran = ref 0 in
  List.iter
    (fun f ->
      match Asm.load (read_file (Filename.concat dir f)) with
      | Error _ -> ()  (* the rejected corpus is test_vm's business *)
      | Ok p ->
        incr ran;
        assert_parity ~what:f p standard_blocks)
    files;
  Alcotest.(check bool) "ok-corpus is non-empty" true (!ran >= 2)

(* {1 Fault and verdict corners} *)

let test_fault_parity () =
  (* Each case must fault with a byte-identical reason and identical
     partial step count under both backends. *)
  let cases =
    [
      ( "payload load oob",
        [ Vm.Len 0; Vm.Ldp (1, Reg 0); Vm.Ret ] );
      ( "payload store oob",
        (* The offset is -lblk - 1: always negative at run time, but
           opaque to the range analysis (Blkno is unbounded), so the
           program stays verifiable and faults in both backends. *)
        [
          Vm.Blkno 0;
          Vm.Mov (1, Imm 0);
          Vm.Sub (1, Reg 0);
          Vm.Sub (1, Imm 1);
          Vm.Stp (Reg 1, Imm 7);
          Vm.Ret;
        ] );
      ( "div by zero",
        [ Vm.Mov (0, Imm 9); Vm.Mov (1, Imm 0); Vm.Div (0, Reg 1); Vm.Ret ] );
      ( "rem by zero mid-loop",
        [
          Vm.Mov (0, Imm 4);
          Vm.Mov (1, Imm 2);
          Vm.Loop (Imm 8, 8);
          Vm.Sub (1, Imm 1);
          Vm.Rem (0, Reg 1);
          Vm.End;
          Vm.Ret;
        ] );
    ]
  in
  List.iter
    (fun (what, insns) ->
      let spec =
        { Vm.s_insns = Array.of_list insns; s_fuel = 1000; s_scratch = 0;
          s_context = Vm.Edge }
      in
      match Vm.verify spec with
      | Error d ->
        Alcotest.failf "%s: unexpected rejection: %s" what
          (Vm.diag_to_string d)
      | Ok p -> assert_parity ~what p standard_blocks)
    cases

let test_verdict_parity () =
  let progs =
    [
      ("drop", [ (Vm.Drop : Vm.insn) ]);
      ("redirect reg", [ Vm.Blkno 0; Vm.Rem (0, Imm 3); Vm.Redirect (Reg 0) ]);
      ("redirect imm", [ Vm.Redirect (Imm 2) ]);
      ("empty", []);
      ( "jump skips drop",
        [ Vm.Len 0; Vm.Jge (0, Imm 1, 2); Vm.Drop; Vm.Ret ] );
      ( "scratch carries across blocks",
        [ Vm.Lds (0, 0); Vm.Add (0, Imm 1); Vm.Sts (0, Reg 0);
          Vm.Emit (Imm 7, Reg 0); Vm.Ret ] );
    ]
  in
  List.iter
    (fun (what, insns) ->
      let spec =
        { Vm.s_insns = Array.of_list insns; s_fuel = 1000; s_scratch = 2;
          s_context = Vm.Edge }
      in
      match Vm.verify spec with
      | Error d ->
        Alcotest.failf "%s: unexpected rejection: %s" what
          (Vm.diag_to_string d)
      | Ok p -> assert_parity ~what p standard_blocks)
    progs

let test_fold_idiom () =
  (* The compiler recognizes the byte-scan multiplicative fold and runs
     it register-resident behind an entry bounds test. Exercise the
     fast path (count within bounds, zero and mid-payload starts), the
     fallback (overruns and negative starts must fault bit-identically
     mid-loop), and near-miss shapes that must not be specialized. *)
  let fold ~start ~loop ~body =
    [ Vm.Len 1; Vm.Mov (2, Imm 0x811c9dc5); Vm.Mov (0, Imm start); loop ]
    @ body
    @ [ Vm.End; Vm.Emit (Imm 0, Reg 2); Vm.Emit (Imm 1, Reg 3);
        Vm.Emit (Imm 2, Reg 0); Vm.Ret ]
  in
  let fnv_body =
    [ Vm.Ldp (3, Reg 0); Vm.Xor (2, Reg 3); Vm.Mul (2, Imm 0x01000193);
      Vm.And (2, Imm 0xffffffff); Vm.Add (0, Imm 1) ]
  in
  let cases =
    [
      ( "fold whole payload",
        fold ~start:0 ~loop:(Vm.Loop (Reg 1, 65536)) ~body:fnv_body );
      ( "fold overruns payload",
        fold ~start:0 ~loop:(Vm.Loop (Imm 600, 65536)) ~body:fnv_body );
      ( "fold from mid-payload",
        fold ~start:100 ~loop:(Vm.Loop (Imm 100, 65536)) ~body:fnv_body );
      ( "fold from negative offset",
        fold ~start:(-1) ~loop:(Vm.Loop (Imm 5, 65536)) ~body:fnv_body );
      ( "near miss: counter is not the offset",
        fold ~start:0
          ~loop:(Vm.Loop (Imm 8, 65536))
          ~body:
            [ Vm.Ldp (3, Reg 0); Vm.Xor (2, Reg 3);
              Vm.Mul (2, Imm 0x01000193); Vm.And (2, Imm 0xffffffff);
              Vm.Add (4, Imm 1) ] );
      ( "near miss: byte register is the accumulator",
        fold ~start:0
          ~loop:(Vm.Loop (Imm 8, 65536))
          ~body:
            [ Vm.Ldp (2, Reg 0); Vm.Xor (2, Reg 2);
              Vm.Mul (2, Imm 0x01000193); Vm.And (2, Imm 0xffffffff);
              Vm.Add (0, Imm 1) ] );
    ]
  in
  List.iter
    (fun (what, insns) ->
      let spec =
        { Vm.s_insns = Array.of_list insns; s_fuel = Vm.max_fuel;
          s_scratch = 0; s_context = Vm.Edge }
      in
      match Vm.verify spec with
      | Error d ->
        Alcotest.failf "%s: unexpected rejection: %s" what
          (Vm.diag_to_string d)
      | Ok p -> assert_parity ~what p standard_blocks)
    cases

let test_scatter_idiom () =
  (* The scatter/store idiom rewrites Ldp/transform/Stp/Add loops into
     one entry bounds test plus a host loop writing the copy-on-write
     clone directly. Exercise every transform op, immediate and
     register-held keys, mid-payload starts, overruns that fault
     mid-loop after partial writes, and near-miss shapes that must stay
     on the generic per-store-checked path — including a store that
     bounds-faults before the clone would happen, so the CoW hoist may
     not clone early. *)
  let scatter ?(pre = []) ~start ~loop ~body () =
    [ Vm.Len 1 ] @ pre
    @ [ Vm.Mov (0, Imm start); loop ]
    @ body
    @ [ Vm.End; Vm.Emit (Imm 0, Reg 2); Vm.Emit (Imm 1, Reg 0); Vm.Ret ]
  in
  let body op = [ Vm.Ldp (2, Reg 0); op; Vm.Stp (Reg 0, Reg 2); Vm.Add (0, Imm 1) ] in
  let whole = Vm.Loop (Reg 1, 65536) in
  let cases =
    [
      ("scatter xor whole payload", scatter ~start:0 ~loop:whole ~body:(body (Vm.Xor (2, Imm 0x5a))) ());
      ("scatter add whole payload", scatter ~start:0 ~loop:whole ~body:(body (Vm.Add (2, Imm 0x21))) ());
      ("scatter sub whole payload", scatter ~start:0 ~loop:whole ~body:(body (Vm.Sub (2, Imm 0x13))) ());
      ("scatter and whole payload", scatter ~start:0 ~loop:whole ~body:(body (Vm.And (2, Imm 0x7f))) ());
      ("scatter or whole payload", scatter ~start:0 ~loop:whole ~body:(body (Vm.Or (2, Imm 0x80))) ());
      ( "scatter with register-held key",
        scatter ~pre:[ Vm.Mov (4, Imm 0xa7) ] ~start:0 ~loop:whole
          ~body:(body (Vm.Xor (2, Reg 4))) () );
      ( "scatter from mid-payload",
        scatter ~start:100 ~loop:(Vm.Loop (Imm 150, 65536))
          ~body:(body (Vm.Xor (2, Imm 0x33))) () );
      ( "scatter overruns payload",
        scatter ~start:0 ~loop:(Vm.Loop (Imm 600, 65536))
          ~body:(body (Vm.Xor (2, Imm 0x5a))) () );
      ( "scatter from negative offset",
        scatter ~start:(-1) ~loop:(Vm.Loop (Imm 5, 65536))
          ~body:(body (Vm.Xor (2, Imm 0x5a))) () );
      ( "scatter store faults before the clone",
        (* First Stp is out of bounds: the bounds check fires before the
           copy-on-write clone, so the input must stay aliased. *)
        scatter ~pre:[ Vm.Mov (4, Imm 1000) ] ~start:0 ~loop:whole
          ~body:
            [ Vm.Ldp (2, Reg 0); Vm.Xor (2, Imm 3); Vm.Stp (Reg 4, Reg 2);
              Vm.Add (0, Imm 1) ]
          () );
      ( "near miss: store offset is not the counter",
        scatter ~pre:[ Vm.Mov (3, Imm 0) ] ~start:0 ~loop:whole
          ~body:
            [ Vm.Ldp (2, Reg 0); Vm.Xor (2, Imm 1); Vm.Stp (Reg 3, Reg 2);
              Vm.Add (0, Imm 1) ]
          () );
      ( "near miss: key register is the byte register",
        scatter ~start:0 ~loop:whole ~body:(body (Vm.Xor (2, Reg 2))) () );
      ( "near miss: counter strides by 2",
        scatter ~start:0
          ~loop:(Vm.Loop (Imm 100, 65536))
          ~body:
            [ Vm.Ldp (2, Reg 0); Vm.Xor (2, Imm 9); Vm.Stp (Reg 0, Reg 2);
              Vm.Add (0, Imm 2) ]
          () );
    ]
  in
  List.iter
    (fun (what, insns) ->
      let spec =
        { Vm.s_insns = Array.of_list insns; s_fuel = Vm.max_fuel;
          s_scratch = 0; s_context = Vm.Edge }
      in
      match Vm.verify spec with
      | Error d ->
        Alcotest.failf "%s: unexpected rejection: %s" what
          (Vm.diag_to_string d)
      | Ok p -> assert_parity ~what p standard_blocks)
    cases

let test_histogram_idiom () =
  (* The histogram idiom turns Ldp/Ldsx/Add/Stsx/Add loops into host
     array increments over the scratch arena; the verifier's
     power-of-two proof is what justifies the unchecked indexing.
     After the counted loop every program dumps the whole arena through
     a second (generic) loop so scratch contents take part in parity.
     Cover the arena at its static bound (a block of 0xff bytes hits
     the last cell of a 256-cell table), masked wrap-around on small
     arenas, the degenerate 1-cell arena, overruns and negative starts
     on the fallback path, and near misses. *)
  let hist ~scratch ~start ~loop ~body =
    let insns =
      [ Vm.Len 1; Vm.Mov (0, Imm start); loop ]
      @ body
      @ [ Vm.End; Vm.Emit (Imm 0, Reg 2); Vm.Emit (Imm 1, Reg 3);
          Vm.Emit (Imm 2, Reg 0); Vm.Mov (4, Imm 0);
          Vm.Loop (Imm scratch, 1024); Vm.Ldsx (5, 4);
          Vm.Emit (Imm 9, Reg 5); Vm.Add (4, Imm 1); Vm.End; Vm.Ret ]
    in
    (scratch, insns)
  in
  let body =
    [ Vm.Ldp (2, Reg 0); Vm.Ldsx (3, 2); Vm.Add (3, Imm 1);
      Vm.Stsx (2, Reg 3); Vm.Add (0, Imm 1) ]
  in
  let whole = Vm.Loop (Reg 1, 65536) in
  let cases =
    [
      ("histogram over 256 cells", hist ~scratch:256 ~start:0 ~loop:whole ~body);
      ("histogram wraps a 16-cell arena", hist ~scratch:16 ~start:0 ~loop:whole ~body);
      ("histogram into a single cell", hist ~scratch:1 ~start:0 ~loop:whole ~body);
      ( "histogram overruns payload",
        hist ~scratch:256 ~start:0 ~loop:(Vm.Loop (Imm 600, 65536)) ~body );
      ( "histogram from negative offset",
        hist ~scratch:256 ~start:(-1) ~loop:(Vm.Loop (Imm 5, 65536)) ~body );
      ( "near miss: count register aliases the byte register",
        hist ~scratch:256 ~start:0 ~loop:whole
          ~body:
            [ Vm.Ldp (2, Reg 0); Vm.Ldsx (2, 2); Vm.Add (2, Imm 1);
              Vm.Stsx (2, Reg 2); Vm.Add (0, Imm 1) ] );
      ( "near miss: store indexed by the counter",
        hist ~scratch:256 ~start:0 ~loop:whole
          ~body:
            [ Vm.Ldp (2, Reg 0); Vm.Ldsx (3, 2); Vm.Add (3, Imm 1);
              Vm.Stsx (0, Reg 3); Vm.Add (0, Imm 1) ] );
      ( "near miss: increment is not 1",
        hist ~scratch:256 ~start:0 ~loop:whole
          ~body:
            [ Vm.Ldp (2, Reg 0); Vm.Ldsx (3, 2); Vm.Add (3, Imm 2);
              Vm.Stsx (2, Reg 3); Vm.Add (0, Imm 1) ] );
    ]
  in
  let blocks = standard_blocks @ [ (String.make 9 '\xff', 77) ] in
  List.iter
    (fun (what, (scratch, insns)) ->
      let spec =
        { Vm.s_insns = Array.of_list insns; s_fuel = Vm.max_fuel;
          s_scratch = scratch; s_context = Vm.Edge }
      in
      match Vm.verify spec with
      | Error d ->
        Alcotest.failf "%s: unexpected rejection: %s" what
          (Vm.diag_to_string d)
      | Ok p -> assert_parity ~what p blocks)
    cases

let test_rolling_idiom () =
  (* The rolling-hash idiom recognizes the content-defined-chunking
     region at its Loop — the conditional Emit keeps the body from ever
     fusing — and runs it with the window state in host registers.
     Cover every emit-value selector, dense and absent boundaries,
     payload edges (empty and one-byte blocks ride along in the block
     list), overruns and negative starts on the block-chained fallback,
     and near misses that must stay on the chain. *)
  let roll ?(m2 = 0x3) ?(tv = 0x3) ?(emitv = (Vm.Reg 2 : Vm.operand))
      ?(key = (Vm.Imm 3 : Vm.operand)) ?(jne = true) ?(start = 0)
      ?(loop = Vm.Loop (Reg 1, 65536)) () =
    [ Vm.Len 1; Vm.Mov (2, Imm 0); Vm.Mov (0, Imm start); loop;
      Vm.Ldp (3, Reg 0); Vm.Mul (2, Imm 0x01000193); Vm.Add (2, Reg 3);
      Vm.And (2, Imm 0xffffff); Vm.Add (0, Imm 1); Vm.Mov (4, Reg 2);
      Vm.And (4, Imm m2);
      (if jne then Vm.Jne (4, Imm tv, 2) else Vm.Jeq (4, Imm tv, 2));
      Vm.Emit (key, emitv); Vm.End; Vm.Emit (Imm 0, Reg 2);
      Vm.Emit (Imm 1, Reg 0); Vm.Emit (Imm 2, Reg 3); Vm.Emit (Imm 4, Reg 4);
      Vm.Ret ]
  in
  let cases =
    [
      ("rolling hash emits the window hash", roll ());
      ("rolling hash emits the position", roll ~emitv:(Vm.Reg 0) ());
      ("rolling hash emits the byte", roll ~emitv:(Vm.Reg 3) ());
      ("rolling hash emits the test register", roll ~emitv:(Vm.Reg 4) ());
      ("rolling hash emits an immediate", roll ~emitv:(Vm.Imm 42) ());
      ("rolling hash with boundaries every byte", roll ~m2:0 ~tv:0 ());
      ("rolling hash with no boundaries", roll ~m2:0xffffff ~tv:1 ());
      ( "rolling hash overruns payload",
        roll ~loop:(Vm.Loop (Imm 600, 65536)) () );
      ( "rolling hash from negative offset",
        roll ~start:(-1) ~loop:(Vm.Loop (Imm 5, 65536)) () );
      ("near miss: boundary test is inverted", roll ~jne:false ());
      ("near miss: emit key is a register", roll ~key:(Vm.Reg 4) ());
      ("near miss: emit value register is dead", roll ~emitv:(Vm.Reg 5) ());
    ]
  in
  let blocks = standard_blocks @ [ ("A", 9); (block 1 200, 10) ] in
  List.iter
    (fun (what, insns) ->
      let spec =
        { Vm.s_insns = Array.of_list insns; s_fuel = Vm.max_fuel;
          s_scratch = 0; s_context = Vm.Edge }
      in
      match Vm.verify spec with
      | Error d ->
        Alcotest.failf "%s: unexpected rejection: %s" what
          (Vm.diag_to_string d)
      | Ok p -> assert_parity ~what p blocks)
    cases

(* {1 Basic-block structure} *)

let test_block_structure () =
  (* Blocks tile the program: contiguous, in order, no gaps. *)
  List.iter
    (fun (what, p) ->
      let code = Compile.compile p in
      let bs = Compile.blocks code in
      let n = Array.length (Vm.insns p) in
      Alcotest.(check bool) (what ^ ": has blocks") true (Array.length bs > 0);
      Array.iteri
        (fun i { Compile.bb_first; bb_last } ->
          if i = 0 then
            Alcotest.(check int) (what ^ ": starts at 0") 0 bb_first
          else
            Alcotest.(check int)
              (what ^ ": contiguous")
              (bs.(i - 1).Compile.bb_last + 1)
              bb_first;
          Alcotest.(check bool) (what ^ ": ordered") true (bb_last >= bb_first))
        bs;
      Alcotest.(check int)
        (what ^ ": covers program")
        (n - 1)
        bs.(Array.length bs - 1).Compile.bb_last)
    [
      ("checksum", Samples.checksum ());
      ("dropper", Samples.dropper ~modulo:2);
      ("xor_mask", Samples.xor_mask ~key:1);
      ("xor_stream", Samples.xor_stream ~key:1);
      ("histogram", Samples.histogram ());
      ("dedup_chunks", Samples.dedup_chunks ~bits:11);
    ]

(* {1 Steady-state allocation}

   Both backends must run without per-block allocation: nothing beyond
   the run record and a handful of words per run, independent of the
   payload size. A per-byte or per-insn allocation would show up as
   thousands of words per 4 KB block. *)

let minor_words_per_run exec_once =
  let runs = 200 in
  exec_once ();  (* warm up *)
  let before = Gc.minor_words () in
  for _ = 1 to runs do
    exec_once ()
  done;
  (Gc.minor_words () -. before) /. float_of_int runs

let test_zero_alloc () =
  (* Read-only programs only: a store-bearing program clones the 4 KB
     payload, which is a (major-heap) allocation by design. *)
  List.iter
    (fun (what, p) ->
      let code = Compile.compile p in
      let ist = Vm.new_state p and cst = Compile.new_state code in
      let data = Bytes.make 4096 '\x55' in
      let emit _ _ = () in
      let interp () =
        ignore (Vm.exec p ist ~data ~len:4096 ~lblk:3 ~emit : Vm.run)
      in
      let compiled () =
        ignore (Compile.exec code cst ~data ~len:4096 ~lblk:3 ~emit : Vm.run)
      in
      let wi = minor_words_per_run interp in
      let wc = minor_words_per_run compiled in
      Alcotest.(check bool)
        (Printf.sprintf "%s: interpreter allocates O(1) per run (%.1f words)"
           what wi)
        true (wi < 64.0);
      Alcotest.(check bool)
        (Printf.sprintf "%s: compiled allocates O(1) per run (%.1f words)"
           what wc)
        true (wc < 64.0))
    [
      ("checksum", Samples.checksum ());
      ("histogram", Samples.histogram ());
      ("dedup_chunks", Samples.dedup_chunks ~bits:11);
    ]

(* {1 Random programs} *)

let prop_differential =
  QCheck.Test.make ~count:400 ~name:"random accepted programs: backends agree"
    Test_vm.arb_program (fun (insns, payload) ->
      let spec =
        { Vm.s_insns = Array.of_list insns; s_fuel = Vm.max_fuel;
          s_scratch = 4; s_context = Vm.Edge }
      in
      match Vm.verify spec with
      | Error { Vm.d_rule = "range-oob"; _ } ->
        (* Constant negative payload offsets out of the generator are
           now (correctly) rejected statically; nothing to compare. *)
        true
      | Error d ->
        QCheck.Test.fail_reportf "generator produced a rejected program: %s"
          (Vm.diag_to_string d)
      | Ok p ->
        let ist = Vm.new_state p in
        let variants =
          List.map
            (fun (vname, code) -> (vname, code, Compile.new_state code))
            [
              ("compiled", Compile.compile p);
              ("compiled[no-idiom]", Compile.compile ~idioms:false p);
              ( "compiled[checked]",
                Compile.compile ~idioms:false ~elide:false p );
            ]
        in
        let check_block data lblk =
          let len = Bytes.length data in
          let iemits = ref [] in
          let ir =
            Vm.exec p ist ~data ~len ~lblk ~emit:(fun k v ->
                iemits := (k, v) :: !iemits)
          in
          List.iter
            (fun (vname, code, cst) ->
              let cemits = ref [] in
              let cr =
                Compile.exec code cst ~data ~len ~lblk ~emit:(fun k v ->
                    cemits := (k, v) :: !cemits)
              in
              if ir.Vm.r_verdict <> cr.Vm.r_verdict then
                QCheck.Test.fail_reportf "[%s] verdicts differ: %s vs %s"
                  vname
                  (Format.asprintf "%a" pp_verdict ir.Vm.r_verdict)
                  (Format.asprintf "%a" pp_verdict cr.Vm.r_verdict);
              if ir.Vm.r_steps <> cr.Vm.r_steps then
                QCheck.Test.fail_reportf "[%s] steps differ: %d vs %d" vname
                  ir.Vm.r_steps cr.Vm.r_steps;
              if !iemits <> !cemits then
                QCheck.Test.fail_reportf
                  "[%s] emit sequences differ (%d vs %d emits)" vname
                  (List.length !iemits) (List.length !cemits);
              if not (Bytes.equal ir.Vm.r_data cr.Vm.r_data) then
                QCheck.Test.fail_reportf "[%s] payloads differ" vname;
              if ir.Vm.r_data == data && cr.Vm.r_data != data then
                QCheck.Test.fail_reportf
                  "[%s] compiled cloned, interpreter aliased" vname;
              if ir.Vm.r_data != data && cr.Vm.r_data == data then
                QCheck.Test.fail_reportf
                  "[%s] interpreter cloned, compiled aliased" vname)
            variants
        in
        (* Two blocks through the same states: scratch carry-over too. *)
        check_block (Bytes.of_string payload) 7;
        check_block (Bytes.of_string payload) 8;
        true)

(* {1 Guard-biased programs: the range analysis is sound}

   The generator builds programs shaped like real filters — a length
   guard up front, then strided counter loops, masked block-dependent
   probes and len-relative accesses — exactly the refinement shapes
   the range analysis exists for. Some fragments are provable under
   the guard, some are not, and some are provably wrong (tolerated as
   range-oob rejections). For every accepted program and a ladder of
   adversarial payload lengths clustered around the guard bound, the
   property asserts the soundness contract directly: the interpreter
   runs FIRST, and a fault whose pc the analysis marked [`Proven] fails
   the suite before any unchecked compiled code runs. Then all three
   compiled variants (idioms, no-idiom, checks-kept) must match the
   interpreter on every observable. *)

let fault_pc msg =
  (* Fault reasons carry their site as "... pc N" (the payload strings
     close a paren after it); take the last occurrence. *)
  let n = String.length msg in
  let last = ref None in
  for i = 0 to n - 3 do
    if String.sub msg i 3 = "pc " then begin
      let j = ref (i + 3) in
      let v = ref 0 in
      let any = ref false in
      while
        !j < n && msg.[!j] >= '0' && msg.[!j] <= '9'
      do
        v := (!v * 10) + (Char.code msg.[!j] - Char.code '0');
        incr j;
        any := true
      done;
      if !any then last := Some !v
    end
  done;
  !last

let arb_guarded =
  QCheck.Gen.(
    let reg = int_range 2 (Vm.max_regs - 1) in
    let fragment =
      frequency
        [
          ( 4,
            (* Strided counter scan: offsets base, base+s, ...,
               base+(c-1)s — provable when the envelope fits under the
               guard, checked (or rejected) when it does not. *)
            let* c = int_range 1 64 in
            let* stride = int_range 1 4 in
            let* base = int_range (-2) 8 in
            let* dst = reg in
            let* store = bool in
            return
              ([ Vm.Mov (0, Imm base); Vm.Loop (Imm c, c); Vm.Ldp (dst, Reg 0) ]
              @ (if store then [ Vm.Stp (Reg 0, Reg dst) ] else [])
              @ [ Vm.Add (0, Imm stride); Vm.End ]) );
          ( 2,
            (* Masked block-dependent probe: the offset register is
               unbounded until the And. *)
            let* mask = oneofl [ 0x0f; 0x1f; 0x3f; 0x7f; 0xff; 0x1ff ] in
            let* dst = reg in
            return
              [
                Vm.Blkno dst; Vm.Mul (dst, Imm 0x9e3779b9);
                Vm.And (dst, Imm mask); Vm.Ldp (dst, Reg dst);
              ] );
          ( 2,
            (* len-relative tail probe: off = len - k. *)
            let* k = int_range 1 8 in
            let* dst = reg in
            return
              [
                Vm.Len dst; Vm.Sub (dst, Imm k); Vm.Ldp (dst, Reg dst);
                Vm.Emit (Imm 1, Reg dst);
              ] );
          ( 1,
            (* Direct immediate access, sometimes past the guard. *)
            let* off = int_range 0 350 in
            let* dst = reg in
            return [ Vm.Ldp (dst, Imm off) ] );
        ]
    in
    let* g = int_range 1 300 in
    let* frags = list_size (int_range 1 4) fragment in
    let insns =
      [ Vm.Len 1; Vm.Jge (1, Imm g, 2); Vm.Ret ]
      @ List.concat frags @ [ Vm.Ret ]
    in
    let* extra_len = int_range 0 511 in
    return (g, insns, extra_len))

let prop_guarded_sound =
  QCheck.Test.make ~count:400
    ~name:"guard-biased programs: proven sites never fault; backends agree"
    (QCheck.make
       ~print:(fun (g, insns, extra_len) ->
         Printf.sprintf "guard %d, %d instructions, extra len %d" g
           (List.length insns) extra_len)
       arb_guarded)
    (fun (g, insns, extra_len) ->
      let spec =
        { Vm.s_insns = Array.of_list insns; s_fuel = Vm.max_fuel;
          s_scratch = 0; s_context = Vm.Edge }
      in
      match Vm.verify spec with
      | Error { Vm.d_rule = "range-oob"; _ } ->
        (* Provably-wrong fragments are meant to be generated; the
           static rejection is the right answer. *)
        true
      | Error d ->
        QCheck.Test.fail_reportf "generator produced a rejected program: %s"
          (Vm.diag_to_string d)
      | Ok p ->
        let check_len l =
          let data = Bytes.init l (fun i -> Char.chr ((i * 37) land 0xff)) in
          let iemits = ref [] in
          let ir =
            Vm.exec p (Vm.new_state p) ~data ~len:l ~lblk:13
              ~emit:(fun k v -> iemits := (k, v) :: !iemits)
          in
          (* Soundness first, before any unchecked code runs: a fault
             at a pc the analysis called Proven is an analysis bug. *)
          (match ir.Vm.r_verdict with
           | Vm.Fault m -> (
             match fault_pc m with
             | Some pc -> (
               match Vm.bounds_at p pc with
               | `Proven ->
                 QCheck.Test.fail_reportf
                   "len %d: proven site faulted: %s" l m
               | `Checked -> ())
             | None -> ())
           | _ -> ());
          List.iter
            (fun (vname, code) ->
              let cemits = ref [] in
              let cr =
                Compile.exec code (Compile.new_state code) ~data ~len:l
                  ~lblk:13 ~emit:(fun k v -> cemits := (k, v) :: !cemits)
              in
              if ir.Vm.r_verdict <> cr.Vm.r_verdict then
                QCheck.Test.fail_reportf "len %d [%s] verdicts differ: %s vs %s"
                  l vname
                  (Format.asprintf "%a" pp_verdict ir.Vm.r_verdict)
                  (Format.asprintf "%a" pp_verdict cr.Vm.r_verdict);
              if ir.Vm.r_steps <> cr.Vm.r_steps then
                QCheck.Test.fail_reportf "len %d [%s] steps differ: %d vs %d" l
                  vname ir.Vm.r_steps cr.Vm.r_steps;
              if !iemits <> !cemits then
                QCheck.Test.fail_reportf "len %d [%s] emit sequences differ" l
                  vname;
              if not (Bytes.equal ir.Vm.r_data cr.Vm.r_data) then
                QCheck.Test.fail_reportf "len %d [%s] payloads differ" l vname;
              if (ir.Vm.r_data == data) <> (cr.Vm.r_data == data) then
                QCheck.Test.fail_reportf
                  "len %d [%s] copy-on-write identity differs" l vname)
            [
              ("compiled", Compile.compile p);
              ("compiled[no-idiom]", Compile.compile ~idioms:false p);
              ( "compiled[checked]",
                Compile.compile ~idioms:false ~elide:false p );
            ]
        in
        (* Adversarial lengths cluster around the guard bound, where a
           refinement off-by-one would show. *)
        List.iter check_len
          (List.sort_uniq compare
             [ 0; 1; max 0 (g - 1); g; g + 1; extra_len; 509 ]);
        true)

let suite =
  [
    Alcotest.test_case "samples agree under both backends" `Quick test_samples;
    Alcotest.test_case "fixture ok-corpus agrees" `Quick test_ok_corpus;
    Alcotest.test_case "fault reasons and steps agree" `Quick test_fault_parity;
    Alcotest.test_case "verdict corners agree" `Quick test_verdict_parity;
    Alcotest.test_case "fold idiom: fast path and fallbacks agree" `Quick
      test_fold_idiom;
    Alcotest.test_case "scatter idiom: fast path and fallbacks agree" `Quick
      test_scatter_idiom;
    Alcotest.test_case "histogram idiom: fast path and fallbacks agree" `Quick
      test_histogram_idiom;
    Alcotest.test_case "rolling-hash idiom: fast path and fallbacks agree"
      `Quick test_rolling_idiom;
    Alcotest.test_case "basic blocks tile the program" `Quick
      test_block_structure;
    Alcotest.test_case "both backends run without per-block allocation" `Quick
      test_zero_alloc;
    QCheck_alcotest.to_alcotest prop_differential;
    QCheck_alcotest.to_alcotest prop_guarded_sound;
  ]
