open Kpath_sim

type t = {
  fb_name : string;
  frame_bytes : int;
  interval : Time.span;
  engine : Engine.t;
  mutable seq : int;
  mutable waiters : (seq:int -> bytes -> unit) list;
  mutable running : bool;
  mutable armed : bool;
}

let frame_pattern ~seq ~size =
  let b = Bytes.create size in
  for i = 0 to size - 1 do
    Bytes.set b i (Char.chr ((seq * 131 + i * 7) land 0xff))
  done;
  b

let frame_bytes t = t.frame_bytes

let frames_captured t = t.seq

let rec arm t =
  if t.running && not t.armed then begin
    t.armed <- true;
    ignore
      (Engine.schedule_after t.engine t.interval (fun () ->
           t.armed <- false;
           if t.running then begin
             let seq = t.seq in
             t.seq <- seq + 1;
             let frame = frame_pattern ~seq ~size:t.frame_bytes in
             let waiters = List.rev t.waiters in
             t.waiters <- [];
             List.iter (fun k -> k ~seq frame) waiters;
             (match (t.waiters, waiters) with
              | [], [] -> ()
              | _ -> arm t)
           end))
  end

let create ~name ~frame_bytes ~frames_per_sec ~engine () =
  if frame_bytes <= 0 then invalid_arg "Framebuffer.create: frame_bytes <= 0";
  if frames_per_sec <= 0.0 then invalid_arg "Framebuffer.create: rate <= 0";
  {
    fb_name = name;
    frame_bytes;
    interval = Time.of_sec_f (1.0 /. frames_per_sec);
    engine;
    seq = 0;
    waiters = [];
    running = true;
    armed = false;
  }

let next_frame t k =
  if not t.running then invalid_arg (t.fb_name ^ ": stopped");
  t.waiters <- k :: t.waiters;
  arm t

let stop t =
  t.running <- false;
  t.waiters <- []
