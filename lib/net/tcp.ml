open Kpath_sim
open Kpath_proc

type addr = { a_if : int; a_port : int }

let protocol_number = 6

let header_bytes = 21

let mss net = Netif.mtu net - header_bytes

(* {1 Sliding byte buffer}

   A circular window of the byte stream supporting append at the tail,
   random peeks, and drop-front (on acknowledgement). Being a ring, a
   buffer that sits near-full (a send buffer against a slow receiver)
   costs one blit of the appended bytes per append — never a whole-
   buffer compaction — and its capacity tracks the peak occupancy
   instead of growing with the stream. *)
module Sbuf = struct
  type t = { mutable data : Bytes.t; mutable start : int; mutable len : int }

  (* Storage is allocated lazily: a connection advertising a large
     window whose queue stays shallow (the common case — readers drain
     as data lands) never materialises the full capacity. *)
  let create cap = { data = Bytes.create (max 64 (min cap 4096)); start = 0; len = 0 }

  let length b = b.len

  let grow b need =
    let cap = Bytes.length b.data in
    if need > cap then begin
      let ndata = Bytes.create (max need (2 * cap)) in
      let tail = min b.len (cap - b.start) in
      Bytes.blit b.data b.start ndata 0 tail;
      Bytes.blit b.data 0 ndata tail (b.len - tail);
      b.data <- ndata;
      b.start <- 0
    end

  let append b src pos n =
    grow b (b.len + n);
    let cap = Bytes.length b.data in
    let tpos = b.start + b.len in
    let tpos = if tpos >= cap then tpos - cap else tpos in
    let first = min n (cap - tpos) in
    Bytes.blit src pos b.data tpos first;
    if n > first then Bytes.blit src (pos + first) b.data 0 (n - first);
    b.len <- b.len + n

  (* Copy [n] bytes at logical offset [off] into [dst] at [dpos]. *)
  let peek b ~off ~n dst dpos =
    if off < 0 || n < 0 || off + n > b.len then invalid_arg "Sbuf.peek";
    let cap = Bytes.length b.data in
    let p = b.start + off in
    let p = if p >= cap then p - cap else p in
    let first = min n (cap - p) in
    Bytes.blit b.data p dst dpos first;
    if n > first then Bytes.blit b.data 0 dst (dpos + first) (n - first)

  let drop b n =
    if n < 0 || n > b.len then invalid_arg "Sbuf.drop";
    let s = b.start + n in
    b.start <- (if s >= Bytes.length b.data then s - Bytes.length b.data else s);
    b.len <- b.len - n;
    if b.len = 0 then b.start <- 0
end

(* {1 Wire format}

   Frame payload = 21-byte header + data:
   byte 0: flags (1 SYN, 2 ACK, 4 FIN); 1-8: seq; 9-16: ack; 17-20: wnd. *)

let f_syn = 1
let f_ack = 2
let f_fin = 4

let set_header b ~flags ~seq ~ack ~wnd =
  Bytes.set b 0 (Char.chr flags);
  Bytes.set_int64_le b 1 (Int64.of_int seq);
  Bytes.set_int64_le b 9 (Int64.of_int ack);
  Bytes.set_int32_le b 17 (Int32.of_int wnd)

let encode ~flags ~seq ~ack ~wnd data pos len =
  let b = Bytes.create (header_bytes + len) in
  set_header b ~flags ~seq ~ack ~wnd;
  if len > 0 then Bytes.blit data pos b header_bytes len;
  b

(* A decoded segment aliases the frame payload rather than copying the
   data out: [g_len] data bytes start at [header_bytes] in [g_payload].
   Frames are never mutated after transmission, so the alias is safe,
   and the receive path performs exactly one copy (into the receive
   queue). *)
type seg = {
  g_flags : int;
  g_seq : int;
  g_ack : int;
  g_wnd : int;
  g_payload : bytes;
  g_len : int;
}

let decode payload =
  if Bytes.length payload < header_bytes then None
  else
    Some
      {
        g_flags = Char.code (Bytes.get payload 0);
        g_seq = Int64.to_int (Bytes.get_int64_le payload 1);
        g_ack = Int64.to_int (Bytes.get_int64_le payload 9);
        g_wnd = Int32.to_int (Bytes.get_int32_le payload 17);
        g_payload = payload;
        g_len = Bytes.length payload - header_bytes;
      }

(* {1 Connections} *)

type state = Syn_sent | Syn_rcvd | Established | Fin_wait | Closed

type pending_write = {
  pw_data : bytes;
  mutable pw_pos : int;
  mutable pw_len : int;
  pw_done : unit -> unit;
}

type conn = {
  nif : Netif.t;
  net : Netif.net;
  engine : Engine.t;
  lport : int;
  rif : int;
  rport : int;
  mutable st : state;
  (* send side: the stream interval [snd_una, accepted) lives in sndbuf *)
  sndbuf_cap : int;
  sndbuf : Sbuf.t;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable accepted : int; (* stream bytes taken from the application *)
  mutable peer_wnd : int;
  mutable app_closed : bool;
  mutable fin_seq : int option; (* our FIN's sequence position *)
  pending : pending_write Queue.t;
  (* receive side *)
  rcvbuf_cap : int;
  rcvq : Sbuf.t;
  mutable rcv_nxt : int;
  ooo : (int, bytes) Hashtbl.t;
  mutable fin_at : int option; (* peer FIN position in its stream *)
  mutable fin_taken : bool;
  mutable rcv_waiters : (unit -> unit) list;
  mutable est_waiters : (unit -> unit) list;
  mutable last_wnd_sent : int;
  (* congestion control *)
  mutable cwnd : int;
  mutable ssthresh : int;
  (* RTT estimation (RFC 6298 shape); one timed segment at a time,
     Karn's rule: samples are discarded across retransmissions *)
  mutable srtt : float; (* seconds; negative = no sample yet *)
  mutable rttvar : float;
  mutable rtt_seq : int; (* sequence the running sample will be acked at *)
  mutable rtt_sent : Time.t;
  mutable rtt_valid : bool;
  (* retransmission *)
  mutable rto : Time.span;
  mutable timer : Engine.handle option;
  mutable retransmits : int;
  mutable dup_acks : int;
  mutable syn_tries : int;
  stats : Stats.t;
}

type listener = {
  l_nif : Netif.t;
  l_port : int;
  l_backlog : int;
  l_queue : conn Queue.t;
  mutable l_waiters : (unit -> unit) list;
}

(* Per-interface demux tables, keyed by the globally unique interface
   id (like {!Udp}). *)
type tbl = {
  listeners : (int, listener) Hashtbl.t;
  conns : (int * int * int, conn) Hashtbl.t; (* lport, rif, rport *)
}

let tables : (int, tbl) Hashtbl.t = Hashtbl.create 16

let base_rto = Time.ms 200

let max_rto = Time.sec 2

let count c name = Stats.incr (Stats.counter c.stats name)

let rwnd c = max 0 (c.rcvbuf_cap - Sbuf.length c.rcvq)

let min_rto = Time.ms 50

(* RFC 6298-shaped RTO from a fresh RTT sample. *)
let rtt_sample c sample_s =
  if c.srtt < 0.0 then begin
    c.srtt <- sample_s;
    c.rttvar <- sample_s /. 2.0
  end
  else begin
    c.rttvar <- (0.75 *. c.rttvar) +. (0.25 *. Float.abs (c.srtt -. sample_s));
    c.srtt <- (0.875 *. c.srtt) +. (0.125 *. sample_s)
  end;
  let rto_s = c.srtt +. (4.0 *. c.rttvar) in
  c.rto <- Time.max min_rto (Time.min max_rto (Time.of_sec_f rto_s))

let in_flight c = c.snd_nxt - c.snd_una

let unsent c = c.accepted - c.snd_nxt

(* Raw segment transmission. *)
let tx c ~flags ?(seq = 0) ?(data_off = 0) ?(data_len = 0) () =
  let wnd = rwnd c in
  c.last_wnd_sent <- wnd;
  let payload =
    if data_len > 0 then begin
      (* Data lives in sndbuf at logical offset seq - snd_una; peek it
         straight into the frame after the header — one copy, one
         allocation per segment. *)
      let b = Bytes.create (header_bytes + data_len) in
      set_header b ~flags ~seq ~ack:c.rcv_nxt ~wnd;
      Sbuf.peek c.sndbuf ~off:data_off ~n:data_len b header_bytes;
      b
    end
    else encode ~flags ~seq ~ack:c.rcv_nxt ~wnd Bytes.empty 0 0
  in
  count c "tcp.segs_out";
  Netif.send c.nif ~dst:c.rif ~proto:protocol_number ~port_src:c.lport
    ~port_dst:c.rport payload

let send_pure_ack c = tx c ~flags:f_ack ()

(* {1 Timers} *)

let stop_timer c =
  match c.timer with
  | Some h ->
    Engine.cancel c.engine h;
    c.timer <- None
  | None -> ()

let rec arm_timer c =
  if c.timer = None then
    c.timer <-
      Some
        (Engine.schedule_after c.engine c.rto (fun () ->
             c.timer <- None;
             on_timeout c))

and on_timeout c =
  match c.st with
  | Closed -> ()
  | Syn_sent ->
    c.syn_tries <- c.syn_tries + 1;
    if c.syn_tries > 8 then begin
      c.st <- Closed;
      wake_established c
    end
    else begin
      count c "tcp.syn_retx";
      tx c ~flags:f_syn ();
      c.rto <- Time.min max_rto (Time.scale c.rto 2);
      arm_timer c
    end
  | Syn_rcvd ->
    tx c ~flags:(f_syn lor f_ack) ();
    c.rto <- Time.min max_rto (Time.scale c.rto 2);
    arm_timer c
  | Established | Fin_wait ->
    if in_flight c > 0 then begin
      c.retransmits <- c.retransmits + 1;
      count c "tcp.retx";
      (* Timeout: multiplicative decrease to one segment. *)
      let seg = mss c.net in
      c.ssthresh <- max (in_flight c / 2) (2 * seg);
      c.cwnd <- seg;
      c.rtt_valid <- false;
      (* Go-back-N restart: resend the first unacknowledged segment. *)
      let data_bytes = min (Sbuf.length c.sndbuf) (in_flight c) in
      let n = min data_bytes (mss c.net) in
      if n > 0 then tx c ~flags:f_ack ~seq:c.snd_una ~data_off:0 ~data_len:n ()
      else begin
        (* Only the FIN is outstanding. *)
        match c.fin_seq with
        | Some fs when c.snd_una >= fs -> tx c ~flags:(f_fin lor f_ack) ~seq:fs ()
        | _ -> ()
      end;
      c.rto <- Time.min max_rto (Time.scale c.rto 2);
      arm_timer c
    end

and wake_established c =
  let ws = c.est_waiters in
  c.est_waiters <- [];
  List.iter (fun w -> w ()) ws

(* {1 Send machinery} *)

let wake_readers c =
  let ws = c.rcv_waiters in
  c.rcv_waiters <- [];
  List.iter (fun w -> w ()) ws

(* Push out whatever the flow-control window allows. The effective
   window has a floor of one byte: with a zero peer window we keep one
   probe byte in flight, and the retransmission timer carries it until
   the peer reopens (classic persist behaviour, simplified). *)
let rec pump c =
  if c.st = Established || c.st = Fin_wait then begin
    let seg_mss = mss c.net in
    let progress = ref true in
    while !progress do
      progress := false;
      let wnd = max (min c.peer_wnd c.cwnd) 1 in
      let can = min (unsent c) (min (wnd - in_flight c) seg_mss) in
      if can > 0 then begin
        let off = c.snd_nxt - c.snd_una in
        (* Time this segment if no sample is running (Karn's rule:
           retransmitted ranges never produce samples). *)
        if not c.rtt_valid then begin
          c.rtt_valid <- true;
          c.rtt_seq <- c.snd_nxt + can;
          c.rtt_sent <- Engine.now c.engine
        end;
        tx c ~flags:f_ack ~seq:c.snd_nxt ~data_off:off ~data_len:can ();
        c.snd_nxt <- c.snd_nxt + can;
        progress := true
      end
    done;
    (* FIN once every byte is out. *)
    (if c.app_closed && unsent c = 0 && c.fin_seq = None then begin
       c.fin_seq <- Some c.snd_nxt;
       c.snd_nxt <- c.snd_nxt + 1;
       tx c ~flags:(f_fin lor f_ack) ~seq:(c.snd_nxt - 1) ()
     end);
    if in_flight c > 0 then arm_timer c
  end

and admit_writers c =
  let progressing = ref true in
  while !progressing && not (Queue.is_empty c.pending) do
    let space = c.sndbuf_cap - Sbuf.length c.sndbuf in
    if space = 0 then progressing := false
    else begin
      let p = Queue.peek c.pending in
      let n = min space p.pw_len in
      Sbuf.append c.sndbuf p.pw_data p.pw_pos n;
      c.accepted <- c.accepted + n;
      p.pw_pos <- p.pw_pos + n;
      p.pw_len <- p.pw_len - n;
      if p.pw_len = 0 then begin
        ignore (Queue.pop c.pending);
        p.pw_done ()
      end
    end
  done;
  pump c

(* {1 Input processing} *)

(* Resend the first unacknowledged segment (fast retransmit / RTO). *)
let retransmit_head c =
  c.retransmits <- c.retransmits + 1;
  count c "tcp.retx";
  let data_bytes = min (Sbuf.length c.sndbuf) (in_flight c) in
  let n = min data_bytes (mss c.net) in
  if n > 0 then tx c ~flags:f_ack ~seq:c.snd_una ~data_off:0 ~data_len:n ()
  else
    match c.fin_seq with
    | Some fs when c.snd_una >= fs -> tx c ~flags:(f_fin lor f_ack) ~seq:fs ()
    | _ -> ()

let process_ack c (g : seg) =
  if g.g_flags land f_ack <> 0 then begin
    if g.g_ack > c.snd_una then begin
      c.dup_acks <- 0;
      let advance = g.g_ack - c.snd_una in
      (* RTT sample once the timed segment is covered. *)
      if c.rtt_valid && g.g_ack >= c.rtt_seq then begin
        c.rtt_valid <- false;
        rtt_sample c (Time.to_sec_f (Time.diff (Engine.now c.engine) c.rtt_sent))
      end;
      (* Congestion window growth. *)
      let seg = mss c.net in
      (if c.cwnd < c.ssthresh then c.cwnd <- c.cwnd + min advance seg
       else c.cwnd <- c.cwnd + max 1 (seg * seg / c.cwnd));
      c.cwnd <- min c.cwnd (8 * 1024 * 1024);
      (* The FIN occupies one virtual position past the data. *)
      let data_part = min advance (Sbuf.length c.sndbuf) in
      Sbuf.drop c.sndbuf data_part;
      c.snd_una <- g.g_ack;
      stop_timer c;
      if in_flight c > 0 then arm_timer c;
      (match c.fin_seq with
       | Some fs when c.snd_una > fs && c.st = Fin_wait ->
         (* Our FIN is acknowledged; sending side is done. *)
         if c.fin_taken then c.st <- Closed
       | _ -> ());
      wake_readers c (* close() waits on rcv_waiters for the fin ack *)
    end
    else if g.g_ack = c.snd_una && in_flight c > 0 then begin
      (* Duplicate ACK: three in a row trigger fast retransmit. *)
      c.dup_acks <- c.dup_acks + 1;
      if c.dup_acks = 3 then begin
        c.dup_acks <- 0;
        count c "tcp.fast_retx";
        (* Fast recovery: halve the window. *)
        let seg = mss c.net in
        c.ssthresh <- max (in_flight c / 2) (2 * seg);
        c.cwnd <- c.ssthresh;
        c.rtt_valid <- false;
        retransmit_head c;
        stop_timer c;
        arm_timer c
      end
    end;
    c.peer_wnd <- g.g_wnd;
    admit_writers c
  end
  else c.peer_wnd <- g.g_wnd

(* Deliver in-order data and any out-of-order segments it unlocks. *)
let rec drain_ooo c =
  match Hashtbl.find_opt c.ooo c.rcv_nxt with
  | Some data ->
    Hashtbl.remove c.ooo c.rcv_nxt;
    let space = c.rcvbuf_cap - Sbuf.length c.rcvq in
    let n = min space (Bytes.length data) in
    if n = Bytes.length data then begin
      Sbuf.append c.rcvq data 0 n;
      c.rcv_nxt <- c.rcv_nxt + n;
      drain_ooo c
    end
    else
      (* No room: put it back and stop. *)
      Hashtbl.replace c.ooo c.rcv_nxt data
  | None -> ()

let check_fin c =
  match c.fin_at with
  | Some fs when c.rcv_nxt = fs && not c.fin_taken ->
    c.fin_taken <- true;
    c.rcv_nxt <- c.rcv_nxt + 1;
    (match c.fin_seq with
     | Some our_fs when c.snd_una > our_fs -> c.st <- Closed
     | _ -> ());
    wake_readers c
  | _ -> ()

let process_data c (g : seg) =
  let len = g.g_len in
  (if len > 0 then begin
     count c "tcp.segs_data_in";
     if g.g_seq = c.rcv_nxt then begin
       let space = c.rcvbuf_cap - Sbuf.length c.rcvq in
       let n = min space len in
       if n > 0 then begin
         Sbuf.append c.rcvq g.g_payload header_bytes n;
         c.rcv_nxt <- c.rcv_nxt + n;
         drain_ooo c;
         wake_readers c
       end
     end
     else if
       g.g_seq > c.rcv_nxt
       && g.g_seq - c.rcv_nxt < c.rcvbuf_cap
       && Hashtbl.length c.ooo < 64
     then
       (* Out-of-order (rare): copy the data, the hold can be long. *)
       Hashtbl.replace c.ooo g.g_seq (Bytes.sub g.g_payload header_bytes len)
   end);
  (if g.g_flags land f_fin <> 0 then begin
     let fin_pos = g.g_seq + len in
     (match c.fin_at with None -> c.fin_at <- Some fin_pos | Some _ -> ())
   end);
  check_fin c;
  if len > 0 || g.g_flags land f_fin <> 0 then send_pure_ack c

let conn_input c (g : seg) =
  count c "tcp.segs_in";
  match c.st with
  | Syn_sent ->
    if g.g_flags land f_syn <> 0 && g.g_flags land f_ack <> 0 then begin
      c.st <- Established;
      stop_timer c;
      c.rto <- base_rto;
      c.peer_wnd <- g.g_wnd;
      send_pure_ack c;
      wake_established c
    end
  | Syn_rcvd ->
    (* Anything from the peer confirms establishment. *)
    c.st <- Established;
    stop_timer c;
    c.rto <- base_rto;
    c.peer_wnd <- g.g_wnd;
    process_ack c g;
    process_data c g;
    wake_established c
  | Established | Fin_wait ->
    process_ack c g;
    process_data c g
  | Closed -> ()

(* {1 Construction and demux} *)

let make_conn ~nif ~lport ~rif ~rport ~rcvbuf ~sndbuf ~st =
  let net = Netif.net nif in
  let c = {
    nif;
    net;
    engine = Netif.engine net;
    lport;
    rif;
    rport;
    st;
    sndbuf_cap = sndbuf;
    sndbuf = Sbuf.create sndbuf;
    snd_una = 0;
    snd_nxt = 0;
    accepted = 0;
    peer_wnd = 0;
    app_closed = false;
    fin_seq = None;
    pending = Queue.create ();
    rcvbuf_cap = rcvbuf;
    rcvq = Sbuf.create rcvbuf;
    rcv_nxt = 0;
    ooo = Hashtbl.create 8;
    fin_at = None;
    fin_taken = false;
    rcv_waiters = [];
    est_waiters = [];
    last_wnd_sent = rcvbuf;
    cwnd = 2 * 8979 (* refined to 2*MSS at connect/accept *);
    ssthresh = 64 * 1024;
    srtt = -1.0;
    rttvar = 0.0;
    rtt_seq = 0;
    rtt_sent = Time.zero;
    rtt_valid = false;
    rto = base_rto;
    timer = None;
    retransmits = 0;
    dup_acks = 0;
    syn_tries = 0;
    stats = Stats.create ();
  }
  in
  c.cwnd <- 2 * mss net;
  c

let default_buf = 64 * 1024

let rec table_for nif =
  match Hashtbl.find_opt tables (Netif.id nif) with
  | Some tbl -> tbl
  | None ->
    let tbl = { listeners = Hashtbl.create 8; conns = Hashtbl.create 16 } in
    Hashtbl.add tables (Netif.id nif) tbl;
    Netif.set_proto_rx nif ~proto:protocol_number (fun frame ->
        match decode frame.Netif.f_payload with
        | None -> ()
        | Some g -> demux nif tbl frame g);
    tbl

and demux nif tbl (frame : Netif.frame) g =
  let key = (frame.Netif.f_port_dst, frame.Netif.f_src, frame.Netif.f_port_src) in
  match Hashtbl.find_opt tbl.conns key with
  | Some c -> conn_input c g
  | None ->
    if g.g_flags land f_syn <> 0 && g.g_flags land f_ack = 0 then begin
      match Hashtbl.find_opt tbl.listeners frame.Netif.f_port_dst with
      | Some l when Queue.length l.l_queue < l.l_backlog ->
        let c =
          make_conn ~nif ~lport:frame.Netif.f_port_dst ~rif:frame.Netif.f_src
            ~rport:frame.Netif.f_port_src ~rcvbuf:default_buf
            ~sndbuf:default_buf ~st:Syn_rcvd
        in
        c.peer_wnd <- g.g_wnd;
        Hashtbl.replace tbl.conns key c;
        Queue.push c l.l_queue;
        tx c ~flags:(f_syn lor f_ack) ();
        arm_timer c;
        let ws = l.l_waiters in
        l.l_waiters <- [];
        List.iter (fun w -> w ()) ws
      | Some _ | None -> ()
    end

(* {1 Public API} *)

let listen nif ~port ?(backlog = 8) () =
  let tbl = table_for nif in
  if Hashtbl.mem tbl.listeners port then
    invalid_arg (Printf.sprintf "Tcp.listen: port %d in use" port);
  let l =
    { l_nif = nif; l_port = port; l_backlog = backlog; l_queue = Queue.create (); l_waiters = [] }
  in
  Hashtbl.replace tbl.listeners port l;
  l

let rec accept l =
  match Queue.take_opt l.l_queue with
  | Some c -> c
  | None ->
    Process.block "tcp-accept" (fun w -> l.l_waiters <- w :: l.l_waiters);
    accept l

let connect nif ~port ~dst ?(rcvbuf = default_buf) ?(sndbuf = default_buf) () =
  let tbl = table_for nif in
  let key = (port, dst.a_if, dst.a_port) in
  if Hashtbl.mem tbl.conns key then
    invalid_arg "Tcp.connect: connection already exists";
  let c =
    make_conn ~nif ~lport:port ~rif:dst.a_if ~rport:dst.a_port ~rcvbuf ~sndbuf
      ~st:Syn_sent
  in
  Hashtbl.replace tbl.conns key c;
  tx c ~flags:f_syn ();
  arm_timer c;
  let rec wait () =
    match c.st with
    | Established | Fin_wait -> ()
    | Closed -> failwith "Tcp.connect: connection timed out"
    | Syn_sent | Syn_rcvd ->
      Process.block "tcp-connect" (fun w -> c.est_waiters <- w :: c.est_waiters);
      wait ()
  in
  wait ();
  c

let send_async c data ~pos ~len k =
  if pos < 0 || len < 0 || pos + len > Bytes.length data then
    invalid_arg "Tcp.send_async: bad range";
  (match c.st with
   | Established | Syn_sent | Syn_rcvd -> ()
   | Fin_wait | Closed -> invalid_arg "Tcp.send_async: closed connection");
  if c.app_closed then invalid_arg "Tcp.send_async: after close";
  Queue.push { pw_data = data; pw_pos = pos; pw_len = len; pw_done = k } c.pending;
  admit_writers c

let send c data ~pos ~len =
  if len > 0 then
    Process.block "tcp-send" (fun waker -> send_async c data ~pos ~len waker)

(* Window-update heuristic: tell the peer when a closed (or nearly
   closed) window has reopened meaningfully. *)
let maybe_window_update c =
  let seg = mss c.net in
  if c.last_wnd_sent < seg && rwnd c >= seg then send_pure_ack c

let rec recv c buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Tcp.recv: bad range";
  let avail = Sbuf.length c.rcvq in
  if avail > 0 then begin
    let n = min avail len in
    Sbuf.peek c.rcvq ~off:0 ~n buf pos;
    Sbuf.drop c.rcvq n;
    maybe_window_update c;
    n
  end
  else if c.fin_taken then 0
  else if c.st = Closed then 0
  else begin
    Process.block "tcp-recv" (fun w -> c.rcv_waiters <- w :: c.rcv_waiters);
    recv c buf ~pos ~len
  end

let close c =
  match c.st with
  | Closed -> ()
  | Fin_wait -> ()
  | Syn_sent | Syn_rcvd ->
    c.st <- Closed;
    stop_timer c
  | Established ->
    c.app_closed <- true;
    c.st <- Fin_wait;
    pump c;
    (* Linger until our data and FIN are acknowledged. *)
    let rec wait () =
      match c.fin_seq with
      | Some fs when c.snd_una > fs -> ()
      | _ ->
        if c.st = Closed then ()
        else begin
          Process.block "tcp-close" (fun w ->
              c.rcv_waiters <- w :: c.rcv_waiters);
          wait ()
        end
    in
    wait ()

let state_name c =
  match c.st with
  | Syn_sent -> "syn_sent"
  | Syn_rcvd -> "syn_rcvd"
  | Established -> "established"
  | Fin_wait -> "fin_wait"
  | Closed -> "closed"

let local_addr c = { a_if = Netif.id c.nif; a_port = c.lport }

let remote_addr c = { a_if = c.rif; a_port = c.rport }

let bytes_sent c = c.accepted

let bytes_acked c = min c.snd_una c.accepted

let retransmits c = c.retransmits

let cwnd c = c.cwnd

let srtt c = if c.srtt < 0.0 then None else Some c.srtt

let rto c = c.rto

let stats c = c.stats
