open Kpath_sim
open Kpath_proc
open Kpath_dev
open Kpath_net
open Kpath_kernel

(* Rig: machine with one RAM-backed filesystem mounted at /, a chardev
   at /dev/dac and a framebuffer at /dev/fb; body runs in a process. *)
let with_kernel body =
  let m = Machine.create () in
  let drive = Machine.make_drive m ~name:"disk0" ~kind:`Ram () in
  let cd =
    Chardev.create ~name:"dac" ~drain_rate:1e6 ~fifo_capacity:(64 * 1024)
      ~engine:(Machine.engine m) ~intr:(Machine.intr m) ()
  in
  Machine.register_chardev m "/dev/dac" cd;
  let fb =
    Framebuffer.create ~name:"fb" ~frame_bytes:4096 ~frames_per_sec:25.0
      ~engine:(Machine.engine m) ()
  in
  Machine.register_framebuffer m "/dev/fb" fb;
  let result = ref None in
  let p =
    Machine.spawn m ~name:"ktest" (fun () ->
        let fs =
          Kpath_fs.Fs.mkfs ~cache:(Machine.cache m) (Machine.blkdev drive)
            ~ninodes:32
        in
        Machine.mount m "/" fs;
        let env = Syscall.make_env m in
        result := Some (body m env))
  in
  Machine.run m;
  (match p.Process.exit_status with
   | Some (Process.Crashed e) -> raise e
   | _ -> ());
  Option.get !result

let errno = Alcotest.testable Errno.pp ( = )

let expect_errno code f =
  match f () with
  | _ -> Alcotest.failf "expected %s" (Errno.to_string code)
  | exception Errno.Unix_error (got, _) -> Alcotest.check errno "errno" code got

let test_open_read_write () =
  with_kernel (fun _ env ->
      let fd = Syscall.openf env "/f" [ Syscall.O_CREAT; Syscall.O_WRONLY ] in
      let data = Bytes.of_string "system call data" in
      let n = Syscall.write env fd data ~pos:0 ~len:(Bytes.length data) in
      Alcotest.(check int) "written" (Bytes.length data) n;
      Syscall.close env fd;
      let fd = Syscall.openf env "/f" [ Syscall.O_RDONLY ] in
      let out = Bytes.create 64 in
      let n = Syscall.read env fd out ~pos:0 ~len:64 in
      Alcotest.(check string) "read back" "system call data"
        (Bytes.sub_string out 0 n);
      Alcotest.(check int) "eof" 0 (Syscall.read env fd out ~pos:0 ~len:64);
      Alcotest.(check int) "size" 16 (Syscall.file_size env fd);
      Syscall.close env fd)

let test_offsets_and_lseek () =
  with_kernel (fun _ env ->
      let fd = Syscall.openf env "/f" [ Syscall.O_CREAT; Syscall.O_RDWR ] in
      ignore (Syscall.write env fd (Bytes.of_string "abcdef") ~pos:0 ~len:6);
      ignore (Syscall.lseek env fd 2);
      let out = Bytes.create 2 in
      ignore (Syscall.read env fd out ~pos:0 ~len:2);
      Alcotest.(check string) "seeked read" "cd" (Bytes.to_string out);
      Syscall.close env fd)

let test_errnos () =
  with_kernel (fun _ env ->
      expect_errno Errno.ENOENT (fun () ->
          Syscall.openf env "/missing" [ Syscall.O_RDONLY ]);
      expect_errno Errno.EBADF (fun () ->
          Syscall.read env 99 (Bytes.create 1) ~pos:0 ~len:1);
      let fd = Syscall.openf env "/ro" [ Syscall.O_CREAT ] in
      Syscall.close env fd;
      expect_errno Errno.EBADF (fun () ->
          Syscall.read env fd (Bytes.create 1) ~pos:0 ~len:1);
      let ro = Syscall.openf env "/ro" [ Syscall.O_RDONLY ] in
      expect_errno Errno.EBADF (fun () ->
          Syscall.write env ro (Bytes.create 1) ~pos:0 ~len:1);
      expect_errno Errno.EINVAL (fun () ->
          Syscall.read env ro (Bytes.create 1) ~pos:0 ~len:5);
      Syscall.close env ro)

let test_o_trunc () =
  with_kernel (fun _ env ->
      let fd = Syscall.openf env "/t" [ Syscall.O_CREAT; Syscall.O_WRONLY ] in
      ignore (Syscall.write env fd (Bytes.make 100 'x') ~pos:0 ~len:100);
      Syscall.close env fd;
      let fd = Syscall.openf env "/t" [ Syscall.O_WRONLY; Syscall.O_TRUNC ] in
      Alcotest.(check int) "truncated" 0 (Syscall.file_size env fd);
      Syscall.close env fd)

let test_unlink_mkdir () =
  with_kernel (fun _ env ->
      Syscall.mkdir env "/dir";
      let fd = Syscall.openf env "/dir/x" [ Syscall.O_CREAT ] in
      Syscall.close env fd;
      Syscall.unlink env "/dir/x";
      expect_errno Errno.ENOENT (fun () ->
          Syscall.openf env "/dir/x" [ Syscall.O_RDONLY ]))

let test_link_rename_syscalls () =
  with_kernel (fun _ env ->
      let fd = Syscall.openf env "/orig" [ Syscall.O_CREAT; Syscall.O_WRONLY ] in
      ignore (Syscall.write env fd (Bytes.of_string "payload") ~pos:0 ~len:7);
      Syscall.close env fd;
      Syscall.hardlink env "/orig" "/alias";
      let rd = Syscall.openf env "/alias" [ Syscall.O_RDONLY ] in
      let out = Bytes.create 16 in
      let n = Syscall.read env rd out ~pos:0 ~len:16 in
      Alcotest.(check string) "via link" "payload" (Bytes.sub_string out 0 n);
      Syscall.close env rd;
      Syscall.rename env "/orig" "/moved";
      expect_errno Errno.ENOENT (fun () ->
          Syscall.openf env "/orig" [ Syscall.O_RDONLY ]);
      let rd = Syscall.openf env "/moved" [ Syscall.O_RDONLY ] in
      Alcotest.(check int) "size intact" 7 (Syscall.file_size env rd);
      Syscall.close env rd;
      expect_errno Errno.EEXIST (fun () -> Syscall.hardlink env "/moved" "/alias"))

let test_chardev_write_and_lseek_espipe () =
  with_kernel (fun _ env ->
      let fd = Syscall.openf env "/dev/dac" [ Syscall.O_WRONLY ] in
      let n = Syscall.write env fd (Bytes.make 1000 'm') ~pos:0 ~len:1000 in
      Alcotest.(check int) "accepted" 1000 n;
      expect_errno Errno.ESPIPE (fun () -> Syscall.lseek env fd 0);
      expect_errno Errno.EINVAL (fun () ->
          Syscall.read env fd (Bytes.create 1) ~pos:0 ~len:1);
      Syscall.close env fd)

let test_framebuffer_read () =
  with_kernel (fun _ env ->
      let fd = Syscall.openf env "/dev/fb" [ Syscall.O_RDONLY ] in
      let out = Bytes.create 4096 in
      let n = Syscall.read env fd out ~pos:0 ~len:4096 in
      Alcotest.(check int) "one frame" 4096 n;
      Alcotest.(check bytes) "frame pattern"
        (Framebuffer.frame_pattern ~seq:0 ~size:4096)
        out;
      Syscall.close env fd)

let test_syscalls_cost_cpu () =
  with_kernel (fun m env ->
      let cpu = Sched.cpu (Machine.sched m) in
      let before = Cpu.sys cpu in
      let fd = Syscall.openf env "/c" [ Syscall.O_CREAT; Syscall.O_WRONLY ] in
      ignore (Syscall.write env fd (Bytes.create 8192) ~pos:0 ~len:8192);
      Syscall.close env fd;
      let spent = Time.diff (Cpu.sys cpu) before in
      (* At least the copyin of 8 KB at the memory copy rate. *)
      let copy = Config.copy_cost (Machine.config m) 8192 in
      Alcotest.(check bool) "copyin charged" true Time.(spent >= copy))

let test_sockets_syscalls () =
  with_kernel (fun m env ->
      let net = Netif.create_net (Machine.engine m) in
      let nif = Netif.attach net ~name:"if0" ~intr:(Machine.intr m) () in
      let fd_a = Syscall.socket env nif ~port:100 () in
      let fd_b = Syscall.socket env nif ~port:200 () in
      let addr_b = Syscall.socket_addr env fd_b in
      Syscall.sendto env fd_a addr_b (Bytes.of_string "ping") ~pos:0 ~len:4;
      let out = Bytes.create 16 in
      let n, from = Syscall.recvfrom env fd_b out ~pos:0 ~len:16 in
      Alcotest.(check string) "payload" "ping" (Bytes.sub_string out 0 n);
      Alcotest.(check int) "from port" 100 from.Udp.a_port;
      (* connect + write path *)
      Syscall.connect env fd_a addr_b;
      ignore (Syscall.write env fd_a (Bytes.of_string "pong") ~pos:0 ~len:4);
      let n, _ = Syscall.recvfrom env fd_b out ~pos:0 ~len:16 in
      Alcotest.(check string) "via write" "pong" (Bytes.sub_string out 0 n);
      expect_errno Errno.EINVAL (fun () ->
          Syscall.write env fd_b (Bytes.create 1) ~pos:0 ~len:1);
      Syscall.close env fd_a;
      Syscall.close env fd_b)

let test_splice_syscall_sync () =
  with_kernel (fun _ env ->
      let fd = Syscall.openf env "/src" [ Syscall.O_CREAT; Syscall.O_WRONLY ] in
      let data = Bytes.create (64 * 1024) in
      Kpath_workloads.Programs.fill_pattern data ~file_off:0;
      ignore (Syscall.write env fd data ~pos:0 ~len:(Bytes.length data));
      Syscall.fsync env fd;
      Syscall.close env fd;
      let sfd = Syscall.openf env "/src" [ Syscall.O_RDONLY ] in
      let dfd = Syscall.openf env "/dst" [ Syscall.O_CREAT; Syscall.O_WRONLY ] in
      let n = Syscall.splice env ~src:sfd ~dst:dfd Syscall.splice_eof in
      Alcotest.(check int) "moved" (64 * 1024) n;
      Syscall.close env sfd;
      Syscall.close env dfd;
      (* Read back through the fs. *)
      let rfd = Syscall.openf env "/dst" [ Syscall.O_RDONLY ] in
      let out = Bytes.create (64 * 1024) in
      let n = Syscall.read env rfd out ~pos:0 ~len:(64 * 1024) in
      Alcotest.(check int) "full" (64 * 1024) n;
      Alcotest.(check bytes) "identical" data out;
      Syscall.close env rfd)

let test_splice_async_sigio () =
  with_kernel (fun m env ->
      let fd = Syscall.openf env "/src" [ Syscall.O_CREAT; Syscall.O_WRONLY ] in
      ignore (Syscall.write env fd (Bytes.create (32 * 1024)) ~pos:0 ~len:(32 * 1024));
      Syscall.close env fd;
      let sfd = Syscall.openf env "/src" [ Syscall.O_RDONLY ] in
      let dfd = Syscall.openf env "/dst" [ Syscall.O_CREAT; Syscall.O_WRONLY ] in
      let sigio_seen = ref false in
      Syscall.sigaction env Signal.sigio (Some (fun () -> sigio_seen := true));
      (* The paper's idiom: fcntl(FASYNC) then splice returns at once. *)
      Syscall.fcntl_setfl env sfd ~fasync:true;
      let t0 = Machine.now m in
      let scheduled = Syscall.splice env ~src:sfd ~dst:dfd Syscall.splice_eof in
      Alcotest.(check int) "whole transfer scheduled" (32 * 1024) scheduled;
      (* The call charges only setup plus the first read burst -- far
         less than the full transfer. *)
      Alcotest.(check bool) "returned before the transfer" true
        Time.(Time.diff (Machine.now m) t0 < Time.ms 20);
      Alcotest.(check bool) "not yet delivered" false !sigio_seen;
      (* pause() until SIGIO announces completion. *)
      Syscall.pause env;
      Alcotest.(check bool) "SIGIO delivered" true !sigio_seen;
      Syscall.close env sfd;
      Syscall.close env dfd)

let test_splice_unaligned_offset_einval () =
  with_kernel (fun _ env ->
      let fd = Syscall.openf env "/src" [ Syscall.O_CREAT; Syscall.O_WRONLY ] in
      ignore (Syscall.write env fd (Bytes.create 9000) ~pos:0 ~len:9000);
      Syscall.close env fd;
      let sfd = Syscall.openf env "/src" [ Syscall.O_RDONLY ] in
      let dfd = Syscall.openf env "/dst" [ Syscall.O_CREAT; Syscall.O_WRONLY ] in
      ignore (Syscall.lseek env sfd 100);
      expect_errno Errno.EINVAL (fun () ->
          Syscall.splice env ~src:sfd ~dst:dfd 1000))

let test_splice_advances_offsets () =
  with_kernel (fun _ env ->
      let fd = Syscall.openf env "/src" [ Syscall.O_CREAT; Syscall.O_WRONLY ] in
      ignore (Syscall.write env fd (Bytes.create (32 * 1024)) ~pos:0 ~len:(32 * 1024));
      Syscall.close env fd;
      let sfd = Syscall.openf env "/src" [ Syscall.O_RDONLY ] in
      let dfd = Syscall.openf env "/dst" [ Syscall.O_CREAT; Syscall.O_WRONLY ] in
      let n1 = Syscall.splice env ~src:sfd ~dst:dfd (16 * 1024) in
      let n2 = Syscall.splice env ~src:sfd ~dst:dfd Syscall.splice_eof in
      Alcotest.(check int) "first half" (16 * 1024) n1;
      Alcotest.(check int) "second half" (16 * 1024) n2;
      Alcotest.(check int) "dst size" (32 * 1024) (Syscall.file_size env dfd))

let test_splice_socket_to_socket_syscall () =
  with_kernel (fun m env ->
      let net = Netif.create_net (Machine.engine m) in
      let nif = Netif.attach net ~name:"if0" ~intr:(Machine.intr m) () in
      let stub = Netif.attach net ~name:"stub" ~intr:(fun ~service:_ f -> f ()) () in
      let src_fd = Syscall.socket env nif ~port:300 () in
      let out_fd = Syscall.socket env nif ~port:301 () in
      let sink = Udp.create stub ~port:302 () in
      let remote = Udp.create stub ~port:303 () in
      let got = ref 0 in
      Udp.set_upcall sink (Some (fun dg -> got := !got + Bytes.length dg.Udp.d_payload));
      Syscall.connect env out_fd (Udp.addr sink);
      (* Unbounded async relay: returns 0 immediately. *)
      Syscall.fcntl_setfl env src_fd ~fasync:true;
      let scheduled = Syscall.splice env ~src:src_fd ~dst:out_fd Syscall.splice_eof in
      Alcotest.(check int) "unbounded async returns 0" 0 scheduled;
      (* Feed datagrams from the stub and let them flow. *)
      let src_addr =
        let s = Syscall.socket_addr env src_fd in
        ignore s;
        s
      in
      for _ = 1 to 5 do
        Udp.sendto remote ~dst:src_addr (Bytes.make 1000 'r')
      done;
      Syscall.sleep env (Time.ms 100);
      Alcotest.(check int) "relayed through the kernel" 5000 !got)

let test_setitimer_pause_loop () =
  with_kernel (fun m env ->
      let ticks = ref 0 in
      Syscall.sigaction env Signal.sigalrm (Some (fun () -> incr ticks));
      Syscall.setitimer env (Some (Time.ms 10));
      let t0 = Machine.now m in
      for _ = 1 to 5 do
        Syscall.pause env
      done;
      Syscall.setitimer env None;
      Alcotest.(check int) "five alarms" 5 !ticks;
      let elapsed = Time.diff (Machine.now m) t0 in
      Alcotest.(check bool) "about 50 ms" true
        Time.(elapsed >= Time.ms 50 && elapsed < Time.ms 80))

let test_interruptible_sleep () =
  with_kernel (fun m env ->
      Syscall.sigaction env Signal.sigalrm (Some (fun () -> ()));
      Syscall.setitimer env (Some (Time.ms 5));
      let t0 = Machine.now m in
      Syscall.sleep env (Time.sec 10);
      Syscall.setitimer env None;
      Alcotest.(check bool) "cut short by SIGALRM" true
        Time.(Time.diff (Machine.now m) t0 < Time.sec 1))

let test_getpid_and_mounts () =
  with_kernel (fun m env ->
      Alcotest.(check bool) "pid positive" true (Syscall.getpid env > 0);
      Alcotest.(check bool) "resolve /" true (Machine.resolve m "/f" <> None);
      Alcotest.(check bool) "resolve missing mount" true
        (Machine.resolve m "/f" <> None))

let suite =
  [
    Alcotest.test_case "open/read/write" `Quick test_open_read_write;
    Alcotest.test_case "offsets and lseek" `Quick test_offsets_and_lseek;
    Alcotest.test_case "errnos" `Quick test_errnos;
    Alcotest.test_case "O_TRUNC" `Quick test_o_trunc;
    Alcotest.test_case "unlink/mkdir" `Quick test_unlink_mkdir;
    Alcotest.test_case "link/rename syscalls" `Quick test_link_rename_syscalls;
    Alcotest.test_case "chardev descriptor" `Quick test_chardev_write_and_lseek_espipe;
    Alcotest.test_case "framebuffer descriptor" `Quick test_framebuffer_read;
    Alcotest.test_case "syscall CPU charging" `Quick test_syscalls_cost_cpu;
    Alcotest.test_case "socket syscalls" `Quick test_sockets_syscalls;
    Alcotest.test_case "splice(2) synchronous" `Quick test_splice_syscall_sync;
    Alcotest.test_case "splice(2) FASYNC + SIGIO" `Quick test_splice_async_sigio;
    Alcotest.test_case "splice(2) EINVAL unaligned" `Quick test_splice_unaligned_offset_einval;
    Alcotest.test_case "splice(2) advances offsets" `Quick test_splice_advances_offsets;
    Alcotest.test_case "splice(2) socket relay" `Quick test_splice_socket_to_socket_syscall;
    Alcotest.test_case "setitimer + pause" `Quick test_setitimer_pause_loop;
    Alcotest.test_case "interruptible sleep" `Quick test_interruptible_sleep;
    Alcotest.test_case "getpid and mounts" `Quick test_getpid_and_mounts;
  ]
